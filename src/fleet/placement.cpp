#include "fleet/placement.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ssdk::fleet {

namespace {

void check_capacity(std::size_t tenants, std::uint32_t devices,
                    std::uint32_t slots_per_device) {
  if (devices == 0) {
    throw std::invalid_argument("placement: fleet has no devices");
  }
  if (slots_per_device == 0) {
    throw std::invalid_argument("placement: slots_per_device must be > 0");
  }
  if (tenants > static_cast<std::size_t>(devices) * slots_per_device) {
    throw std::invalid_argument(
        "placement: more tenants than fleet slots");
  }
}

/// Tenant indices ordered heaviest-first by `pressure`, ties broken by
/// tenant id so the order (and therefore the placement) is deterministic.
std::vector<std::size_t> heaviest_first(
    std::span<const TenantLoad> tenants,
    const std::function<double(const TenantLoad&)>& pressure) {
  std::vector<std::size_t> order(tenants.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              const double pa = pressure(tenants[a]);
              const double pb = pressure(tenants[b]);
              if (pa != pb) return pa > pb;
              return tenants[a].tenant < tenants[b].tenant;
            });
  return order;
}

}  // namespace

TenantLoad load_of(std::uint32_t tenant, const core::TenantStreamStats& s) {
  TenantLoad load;
  load.tenant = tenant;
  load.read_dominated = s.read_dominated();
  load.write_fraction = s.write_fraction();
  load.intensity_rps = s.requests_per_s;
  load.requests = s.requests();
  return load;
}

std::vector<std::uint32_t> RoundRobinPlacement::place(
    std::span<const TenantLoad> tenants, std::uint32_t devices,
    std::uint32_t slots_per_device) const {
  check_capacity(tenants.size(), devices, slots_per_device);
  std::vector<std::uint32_t> out(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(i % devices);
  }
  return out;
}

std::vector<std::uint32_t> LeastLoadedPlacement::place(
    std::span<const TenantLoad> tenants, std::uint32_t devices,
    std::uint32_t slots_per_device) const {
  check_capacity(tenants.size(), devices, slots_per_device);
  std::vector<std::uint32_t> out(tenants.size());
  std::vector<double> load(devices, 0.0);
  std::vector<std::uint32_t> occupancy(devices, 0);
  const auto order = heaviest_first(
      tenants, [](const TenantLoad& t) { return t.intensity_rps; });
  for (const std::size_t i : order) {
    std::uint32_t best = devices;
    double best_load = std::numeric_limits<double>::infinity();
    for (std::uint32_t d = 0; d < devices; ++d) {
      if (occupancy[d] >= slots_per_device) continue;
      if (load[d] < best_load) {
        best_load = load[d];
        best = d;
      }
    }
    out[i] = best;
    load[best] += tenants[i].intensity_rps;
    ++occupancy[best];
  }
  return out;
}

std::vector<std::uint32_t> WorkloadAwarePlacement::place(
    std::span<const TenantLoad> tenants, std::uint32_t devices,
    std::uint32_t slots_per_device) const {
  check_capacity(tenants.size(), devices, slots_per_device);
  std::vector<std::uint32_t> out(tenants.size());
  std::vector<double> write_rps(devices, 0.0);
  std::vector<double> total_rps(devices, 0.0);
  std::vector<std::uint32_t> occupancy(devices, 0);
  // Heaviest tenants first, where "heavy" already reflects the write
  // weighting — a modest writer can be harder to place than a fast
  // reader.
  const double w = write_weight_;
  const auto order = heaviest_first(tenants, [w](const TenantLoad& t) {
    return w * t.write_rps() + t.intensity_rps;
  });
  for (const std::size_t i : order) {
    const TenantLoad& t = tenants[i];
    std::uint32_t best = devices;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::uint32_t d = 0; d < devices; ++d) {
      if (occupancy[d] >= slots_per_device) continue;
      const double cost = w * (write_rps[d] + t.write_rps()) +
                          (total_rps[d] + t.intensity_rps);
      if (cost < best_cost) {
        best_cost = cost;
        best = d;
      }
    }
    out[i] = best;
    write_rps[best] += t.write_rps();
    total_rps[best] += t.intensity_rps;
    ++occupancy[best];
  }
  return out;
}

std::unique_ptr<PlacementPolicy> make_policy(const std::string& name) {
  if (name == "round_robin") {
    return std::make_unique<RoundRobinPlacement>();
  }
  if (name == "least_loaded") {
    return std::make_unique<LeastLoadedPlacement>();
  }
  if (name == "workload_aware") {
    return std::make_unique<WorkloadAwarePlacement>();
  }
  throw std::invalid_argument("placement: unknown policy '" + name + "'");
}

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> names = {
      "round_robin", "least_loaded", "workload_aware"};
  return names;
}

}  // namespace ssdk::fleet
