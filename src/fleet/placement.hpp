// Tenant-to-device placement for the fleet tier (Serifos-style workload
// consolidation, PAPERS.md).
//
// A fleet run starts by assigning every tenant to one device; the policy
// decides which. Placement is the fleet's first-order lever: SSDKeeper can
// re-partition channels *inside* a device, but a device saturated with
// four write-heavy tenants has no good partition — the consolidation tier
// must avoid creating that device in the first place. Three policies
// bracket the space: feature-blind round-robin, intensity-only
// least-loaded, and the workload-aware consolidator that balances write
// pressure (the channel-monopolizing traffic class) across devices using
// the per-tenant read/write-ratio features from core/features.
//
// Every policy is a pure function of its arguments: same tenants + same
// device count => same placement, on every run and thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/features.hpp"

namespace ssdk::fleet {

/// What the placement tier knows about one tenant before it runs: the
/// shape of its request stream, extracted via core::per_tenant_stats.
struct TenantLoad {
  std::uint32_t tenant = 0;  ///< fleet-wide tenant id
  bool read_dominated = true;
  /// Continuous write ratio (MixFeatures quantizes this to one bit; the
  /// consolidator needs the magnitude).
  double write_fraction = 0.0;
  double intensity_rps = 0.0;  ///< mean arrival rate
  std::uint64_t requests = 0;

  /// Write-request pressure — the traffic class that monopolizes shared
  /// channels (the paper's motivation experiment).
  double write_rps() const { return intensity_rps * write_fraction; }
};

/// TenantLoad from a single-tenant stream's measured stats.
TenantLoad load_of(std::uint32_t tenant, const core::TenantStreamStats& s);

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual std::string name() const = 0;

  /// Assign every tenant to a device: result[i] is the device index for
  /// tenants[i]. No device may receive more than `slots_per_device`
  /// tenants; implementations throw std::invalid_argument when the fleet
  /// cannot hold the tenant set. Must be deterministic in its arguments.
  virtual std::vector<std::uint32_t> place(
      std::span<const TenantLoad> tenants, std::uint32_t devices,
      std::uint32_t slots_per_device) const = 0;
};

/// Feature-blind striping: tenant i lands on device i % devices. The
/// baseline every consolidation paper argues against — correlated heavy
/// tenants (every D-th tenant in arrival order) all pile onto one device.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "round_robin"; }
  std::vector<std::uint32_t> place(std::span<const TenantLoad> tenants,
                                   std::uint32_t devices,
                                   std::uint32_t slots_per_device)
      const override;
};

/// Intensity-only balancing: tenants are placed heaviest-first onto the
/// device with the lowest accumulated request rate. Blind to read/write
/// mix — two write-heavy tenants of equal rate look identical to two
/// readers.
class LeastLoadedPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "least_loaded"; }
  std::vector<std::uint32_t> place(std::span<const TenantLoad> tenants,
                                   std::uint32_t devices,
                                   std::uint32_t slots_per_device)
      const override;
};

/// Serifos-style workload-aware consolidation: tenants are placed
/// heaviest-first onto the device minimizing a cost that weights write
/// pressure `write_weight` times as heavily as total pressure. Spreading
/// writers apart (and pairing them with readers) leaves every device with
/// a mix the per-device keeper can actually partition.
class WorkloadAwarePlacement final : public PlacementPolicy {
 public:
  explicit WorkloadAwarePlacement(double write_weight = 4.0)
      : write_weight_(write_weight) {}

  std::string name() const override { return "workload_aware"; }
  std::vector<std::uint32_t> place(std::span<const TenantLoad> tenants,
                                   std::uint32_t devices,
                                   std::uint32_t slots_per_device)
      const override;

 private:
  double write_weight_;
};

/// Policy by name ("round_robin", "least_loaded", "workload_aware");
/// throws std::invalid_argument for unknown names.
std::unique_ptr<PlacementPolicy> make_policy(const std::string& name);

/// The names make_policy accepts, in ablation order.
const std::vector<std::string>& policy_names();

}  // namespace ssdk::fleet
