#include "fleet/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"

namespace ssdk::fleet {

namespace {

std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace

std::string format_report(const FleetResult& result) {
  std::ostringstream os;
  os << "# Fleet run: " << result.policy << "\n\n";
  os << "- devices: " << result.devices << ", tenants: " << result.tenants
     << ", epochs: " << result.epochs << ", seed: " << result.seed << "\n";
  os << "- total host requests: " << result.total_requests << "\n";
  os << "- aggregate p99 read/write: " << fmt(result.aggregate_p99_read_us)
     << " / " << fmt(result.aggregate_p99_write_us) << " us\n";
  os << "- aggregate total latency: " << fmt(result.aggregate_total_us)
     << " us\n";
  if (result.mean_slowdown > 0.0) {
    os << "- mean slowdown vs isolated: " << fmt(result.mean_slowdown)
       << "x\n";
    os << "- fairness: jain " << fmt(result.jain_index, 4)
       << ", worst slowdown " << fmt(result.worst_slowdown) << "x\n";
  }
  os << "- migrations committed: " << result.migrations.size() << "\n\n";

  os << "## Devices\n\n";
  os << "| device | faulty | avg read us | avg write us | p99 read us "
        "| p99 write us | conflicts | gc migrations | full |\n";
  os << "|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& d : result.device_results) {
    os << "| " << d.device << " | " << (d.faulty ? "yes" : "no") << " | "
       << fmt(d.run.avg_read_us) << " | " << fmt(d.run.avg_write_us)
       << " | " << fmt(d.run.p99_read_us) << " | "
       << fmt(d.run.p99_write_us) << " | " << d.run.counters.conflicts
       << " | " << d.run.counters.gc_migrations << " | "
       << (d.run.device_full ? "yes" : "no") << " |\n";
  }

  os << "\n## Tenants\n\n";
  os << "| tenant | placed | final | moves | reads | writes "
        "| total us | p99 read us | p99 write us | slowdown |\n";
  os << "|---|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& t : result.tenant_results) {
    os << "| " << t.tenant << " | " << t.initial_device << " | "
       << t.final_device << " | " << t.migrations << " | " << t.reads
       << " | " << t.writes << " | " << fmt(t.total_us) << " | "
       << fmt(t.p99_read_us) << " | " << fmt(t.p99_write_us) << " | "
       << (t.slowdown > 0.0 ? fmt(t.slowdown) + "x" : std::string("-"))
       << " |\n";
  }

  os << "\n## Migrations\n\n";
  if (result.migrations.empty()) {
    os << "(none committed)\n";
  } else {
    os << "| epoch | tenant | from | to | stay us | move us "
          "| footprint pages | injected pages | modeled cost ms |\n";
    os << "|---|---|---|---|---|---|---|---|---|\n";
    for (const auto& m : result.migrations) {
      os << "| " << m.epoch << " | " << m.tenant << " | " << m.from_device
         << ":" << m.from_slot << " | " << m.to_device << ":" << m.to_slot
         << " | " << fmt(m.stay_score_us) << " | " << fmt(m.move_score_us)
         << " | " << m.footprint_pages << " | " << m.injected_pages
         << " | "
         << fmt(static_cast<double>(m.modeled_cost_ns) / 1e6, 3)
         << " |\n";
    }
  }
  return os.str();
}

void write_device_csv(std::ostream& os, const FleetResult& result) {
  CsvWriter csv(os);
  csv.write_row({"device", "faulty", "avg_read_us", "avg_write_us",
                 "total_us", "p99_read_us", "p99_write_us", "conflicts",
                 "gc_migrations", "host_reads", "host_writes",
                 "final_heat_us", "final_mean_bus_util", "device_full"});
  for (const auto& d : result.device_results) {
    const telemetry::RollupSummary last = d.epoch_summaries.empty()
                                              ? telemetry::RollupSummary{}
                                              : d.epoch_summaries.back();
    csv.write_row({std::to_string(d.device), d.faulty ? "1" : "0",
                   fmt(d.run.avg_read_us, 4), fmt(d.run.avg_write_us, 4),
                   fmt(d.run.total_us, 4), fmt(d.run.p99_read_us, 4),
                   fmt(d.run.p99_write_us, 4),
                   std::to_string(d.run.counters.conflicts),
                   std::to_string(d.run.counters.gc_migrations),
                   std::to_string(d.run.counters.host_reads),
                   std::to_string(d.run.counters.host_writes),
                   fmt(last.heat(), 4), fmt(last.mean_bus_util, 4),
                   d.run.device_full ? "1" : "0"});
  }
}

void write_tenant_csv(std::ostream& os, const FleetResult& result) {
  CsvWriter csv(os);
  csv.write_row({"tenant", "initial_device", "final_device", "migrations",
                 "reads", "writes", "avg_read_us", "avg_write_us",
                 "total_us", "p99_read_us", "p99_write_us",
                 "isolated_total_us", "slowdown"});
  for (const auto& t : result.tenant_results) {
    csv.write_row({std::to_string(t.tenant),
                   std::to_string(t.initial_device),
                   std::to_string(t.final_device),
                   std::to_string(t.migrations), std::to_string(t.reads),
                   std::to_string(t.writes), fmt(t.avg_read_us, 4),
                   fmt(t.avg_write_us, 4), fmt(t.total_us, 4),
                   fmt(t.p99_read_us, 4), fmt(t.p99_write_us, 4),
                   fmt(t.isolated_total_us, 4), fmt(t.slowdown, 4)});
  }
}

void write_rollup_csv(std::ostream& os, const FleetResult& result) {
  CsvWriter csv(os);
  csv.write_row({"device", "epoch", "reads", "writes", "conflicts", "iops",
                 "read_p99_us", "write_p99_us", "mean_bus_util",
                 "peak_bus_util", "heat_us", "tenant_share_jain",
                 "sched_waits"});
  for (const auto& d : result.device_results) {
    for (std::size_t e = 0; e < d.epoch_summaries.size(); ++e) {
      const auto& s = d.epoch_summaries[e];
      csv.write_row({std::to_string(d.device), std::to_string(e),
                     std::to_string(s.reads), std::to_string(s.writes),
                     std::to_string(s.conflicts), fmt(s.iops, 2),
                     fmt(s.read_p99_us, 4), fmt(s.write_p99_us, 4),
                     fmt(s.mean_bus_util, 4), fmt(s.peak_bus_util, 4),
                     fmt(s.heat(), 4), fmt(s.tenant_share_jain, 4),
                     std::to_string(s.sched_waits)});
    }
  }
}

}  // namespace ssdk::fleet
