#include "fleet/fleet.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/features.hpp"
#include "ftl/ftl.hpp"
#include "sched/fairness.hpp"

namespace ssdk::fleet {

namespace {

constexpr int kSlotFree = -1;
/// A slot a tenant migrated out of. Never reused: keeping (device, slot)
/// unique per tenant lets the final report attribute a slot's cumulative
/// metrics to exactly one tenant.
constexpr int kSlotDead = -2;

constexpr std::uint32_t kBulkRequestPages = 16;

/// Mutable per-device state owned by run_fleet. Epoch workers touch only
/// their own entry; the serial consolidation step at epoch boundaries is
/// the only cross-device reader/writer. The parallel_for barrier between
/// the two phases is the sole synchronization — owner-partitioned state,
/// no mutexes, so thread-safety annotations (SSDK_GUARDED_BY) do not
/// apply here; the 1/4/16-worker fingerprint tests and the TSan preset
/// are what police this discipline.
struct DeviceState {
  std::unique_ptr<ssd::Ssd> device;
  std::unique_ptr<telemetry::Tracer> tracer;
  std::unique_ptr<core::SsdKeeper> keeper;
  bool faulty = false;
  /// slot -> fleet tenant id, kSlotFree, or kSlotDead.
  std::array<int, kMaxSlots> slot_tenant{};
  /// Logical pages each slot's tenant has written so far (from the
  /// generated traffic — deterministic, no device introspection needed).
  std::array<std::uint64_t, kMaxSlots> footprint_pages{};
  /// Write pages per slot in the most recent epoch (victim selection).
  std::array<std::uint64_t, kMaxSlots> epoch_write_pages{};
  /// Migration copy traffic to replay at the next epoch start.
  std::vector<sim::IoRequest> pending_bulk;
  std::uint64_t next_request_id = 0;
  std::vector<telemetry::RollupSummary> epoch_summaries;
  /// The device aborted with DeviceFullError; it stops receiving traffic
  /// and drops out of consolidation. The partial result is kept.
  bool full = false;
  core::RunResult full_result;
};

/// Where one tenant lives and has lived.
struct TenantState {
  std::uint32_t device = 0;
  std::uint32_t slot = 0;
  std::uint32_t initial_device = 0;
  std::uint32_t migrations = 0;
  /// Every (device, slot) this tenant occupied, in order. Metrics of all
  /// segments merge into the tenant's fleet-wide latency distribution.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> segments;
};

std::uint64_t epoch_seed(std::uint64_t fleet_seed, std::uint32_t tenant,
                         std::uint32_t epoch) {
  // Distinct co-prime strides keep (tenant, epoch) streams disjoint for
  // any realistic fleet size; the +1 keeps seed 0 out of the generator.
  return fleet_seed * 1000003ULL +
         static_cast<std::uint64_t>(tenant) * 1009ULL + epoch + 1;
}

void validate(const FleetConfig& config, std::size_t tenant_count) {
  if (config.devices == 0) {
    throw std::invalid_argument("fleet: devices must be > 0");
  }
  if (config.slots_per_device == 0 ||
      config.slots_per_device > kMaxSlots) {
    throw std::invalid_argument("fleet: slots_per_device must be 1..4");
  }
  if (config.epochs == 0) {
    throw std::invalid_argument("fleet: epochs must be > 0");
  }
  if (config.epoch_ns <= 0) {
    throw std::invalid_argument("fleet: epoch_ns must be > 0");
  }
  if (tenant_count == 0) {
    throw std::invalid_argument("fleet: no tenants");
  }
  // Migrations need headroom (a never-used destination slot); placement
  // capacity itself is checked by the policy.
}

/// FNV-1a accumulator over the result's numeric fields.
struct Fnv {
  std::uint64_t h = 14695981039346656037ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(std::uint32_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }
};

std::vector<sim::IoRequest> records_to_requests(
    std::span<const trace::TraceRecord> records, sim::TenantId slot) {
  std::vector<sim::IoRequest> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    sim::IoRequest req;
    req.tenant = slot;
    req.type = r.type;
    req.lpn = r.lpn;
    req.page_count = r.pages;
    req.arrival = r.arrival;
    out.push_back(req);
  }
  return out;
}

/// Merge per-slot request vectors by arrival. Appending in slot order and
/// stable-sorting keeps ties in slot order — a fixed rule, so the merged
/// stream is identical on every run.
void sort_by_arrival(std::vector<sim::IoRequest>& requests) {
  std::stable_sort(requests.begin(), requests.end(),
                   [](const sim::IoRequest& a, const sim::IoRequest& b) {
                     return a.arrival < b.arrival;
                   });
}

/// The next epoch's traffic of every live slot of a device, merged —
/// the what-if trials' preview stream.
std::vector<sim::IoRequest> next_epoch_preview(
    const DeviceState& st, std::span<const TenantSpec> specs,
    const FleetConfig& config, std::uint32_t next_epoch) {
  std::vector<sim::IoRequest> preview;
  for (std::uint32_t s = 0; s < config.slots_per_device; ++s) {
    if (st.slot_tenant[s] < 0) continue;
    const auto& spec = specs[static_cast<std::size_t>(st.slot_tenant[s])];
    const auto records =
        epoch_records(spec, config.seed, next_epoch, config.epoch_ns);
    auto reqs = records_to_requests(records, s);
    preview.insert(preview.end(), reqs.begin(), reqs.end());
  }
  sort_by_arrival(preview);
  return preview;
}

void truncate_trial(std::vector<sim::IoRequest>& trial,
                    std::uint64_t limit) {
  if (limit > 0 && trial.size() > limit) {
    trial.resize(static_cast<std::size_t>(limit));
  }
  for (std::size_t i = 0; i < trial.size(); ++i) trial[i].id = i;
}

/// Advance one device through one epoch. Runs on a pool worker; touches
/// only this device's state.
void run_epoch_on_device(DeviceState& st,
                         std::span<const TenantSpec> specs,
                         const FleetConfig& config, std::uint32_t epoch) {
  st.epoch_write_pages = {};
  if (st.full) {
    st.epoch_summaries.emplace_back();  // all-zero: never hot, never a target
    return;
  }
  st.tracer->clear();

  std::vector<sim::IoRequest> requests = std::move(st.pending_bulk);
  st.pending_bulk.clear();
  for (std::uint32_t s = 0; s < config.slots_per_device; ++s) {
    if (st.slot_tenant[s] < 0) continue;
    const auto& spec = specs[static_cast<std::size_t>(st.slot_tenant[s])];
    const auto records =
        epoch_records(spec, config.seed, epoch, config.epoch_ns);
    for (const auto& r : records) {
      if (r.type == sim::OpType::kWrite) {
        st.epoch_write_pages[s] += r.pages;
        st.footprint_pages[s] += r.pages;
      }
    }
    auto reqs = records_to_requests(records, s);
    requests.insert(requests.end(), reqs.begin(), reqs.end());
  }
  sort_by_arrival(requests);
  for (auto& r : requests) r.id = st.next_request_id++;

  try {
    st.device->submit(requests);
    st.device->run_to_completion();
  } catch (const ftl::DeviceFullError& e) {
    st.full = true;
    st.full_result = core::summarize_device_full(*st.device, e, "fleet");
  }

  telemetry::RollupConfig rollup = config.rollup;
  rollup.channels = st.device->options().geometry.channels;
  const auto events = st.tracer->events();
  st.epoch_summaries.push_back(
      telemetry::summarize_rollup(telemetry::build_rollup(events, rollup)));
}

/// Serial consolidation step at the boundary after `epoch`: detect hot
/// devices, pick victims, score destinations via fork trials, commit the
/// winning moves. All inputs are merged per-device state in device-id
/// order, so the decisions are independent of worker scheduling.
void consolidate(std::vector<DeviceState>& states,
                 std::vector<TenantState>& tenants,
                 std::span<const TenantSpec> specs,
                 const FleetConfig& config, std::uint32_t epoch,
                 std::vector<MigrationRecord>& out) {
  const std::uint32_t next_epoch = epoch + 1;
  std::vector<telemetry::RollupSummary> summaries;
  summaries.reserve(states.size());
  for (const auto& st : states) summaries.push_back(st.epoch_summaries.back());
  const auto hot = detect_hot_devices(summaries, config.migration);

  std::uint32_t committed = 0;
  for (std::uint32_t d = 0;
       d < states.size() && committed < config.migration.max_per_epoch; ++d) {
    if (!hot[d] || states[d].full) continue;
    DeviceState& src = states[d];

    // Victim: the slot that wrote the most pages last epoch — writes are
    // the channel-monopolizing traffic class, so shedding the heaviest
    // writer relieves the most contention per move.
    int victim_slot = -1;
    std::uint64_t victim_writes = 0;
    std::uint32_t residents = 0;
    for (std::uint32_t s = 0; s < config.slots_per_device; ++s) {
      if (src.slot_tenant[s] < 0) continue;
      ++residents;
      if (victim_slot < 0 || src.epoch_write_pages[s] > victim_writes) {
        victim_slot = static_cast<int>(s);
        victim_writes = src.epoch_write_pages[s];
      }
    }
    if (residents < 2 || victim_slot < 0) continue;  // nothing to shed
    const auto vslot = static_cast<std::uint32_t>(victim_slot);
    const auto tenant_id =
        static_cast<std::uint32_t>(src.slot_tenant[vslot]);
    const TenantSpec& vspec = specs[tenant_id];

    // Candidate destinations: cold devices with a never-used slot,
    // coldest first (ties toward the lower device id).
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t c = 0; c < states.size(); ++c) {
      if (c == d || hot[c] || states[c].full) continue;
      bool has_free = false;
      for (std::uint32_t s = 0; s < config.slots_per_device; ++s) {
        if (states[c].slot_tenant[s] == kSlotFree) has_free = true;
      }
      if (has_free) candidates.push_back(c);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return summaries[a].heat() < summaries[b].heat();
                     });
    if (candidates.size() > config.migration.candidates) {
      candidates.resize(config.migration.candidates);
    }
    if (candidates.empty()) continue;

    const auto victim_records =
        epoch_records(vspec, config.seed, next_epoch, config.epoch_ns);

    // "Stay" trial: the source replays its own next epoch unchanged.
    auto stay_trial = next_epoch_preview(src, specs, config, next_epoch);
    truncate_trial(stay_trial, config.migration.trial_requests);
    const double stay_score = score_placement(*src.device, stay_trial);

    MigrationRecord record;
    record.epoch = epoch;
    record.tenant = tenant_id;
    record.from_device = d;
    record.from_slot = vslot;
    record.stay_score_us = stay_score;

    std::uint32_t best_device = 0;
    std::uint32_t best_slot = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (const std::uint32_t c : candidates) {
      std::uint32_t free_slot = kMaxSlots;
      for (std::uint32_t s = 0; s < config.slots_per_device; ++s) {
        if (states[c].slot_tenant[s] == kSlotFree) {
          free_slot = s;
          break;
        }
      }
      auto trial = next_epoch_preview(states[c], specs, config, next_epoch);
      auto victim_reqs = records_to_requests(victim_records, free_slot);
      trial.insert(trial.end(), victim_reqs.begin(), victim_reqs.end());
      sort_by_arrival(trial);
      truncate_trial(trial, config.migration.trial_requests);
      const double score = score_placement(*states[c].device, trial);
      record.trials.push_back({c, score});
      if (score < best_score) {
        best_score = score;
        best_device = c;
        best_slot = free_slot;
      }
    }

    if (best_score >= stay_score) continue;  // staying measured no worse

    // Commit: retire the source slot, occupy the destination slot, and
    // queue the (capped) copy traffic for the next epoch start.
    record.to_device = best_device;
    record.to_slot = best_slot;
    record.move_score_us = best_score;
    record.footprint_pages = src.footprint_pages[vslot];
    record.injected_pages =
        std::min<std::uint64_t>(record.footprint_pages,
                                config.migration.bulk_pages_cap);
    const auto& opts = states[best_device].device->options();
    record.modeled_cost_ns =
        static_cast<Duration>(record.footprint_pages) *
        opts.timing.write_service_ns(opts.geometry);

    DeviceState& dst = states[best_device];
    src.slot_tenant[vslot] = kSlotDead;
    dst.slot_tenant[best_slot] = static_cast<int>(tenant_id);
    dst.footprint_pages[best_slot] = record.footprint_pages;

    const SimTime bulk_at =
        static_cast<SimTime>(next_epoch) * config.epoch_ns;
    const std::uint64_t space = vspec.traffic.address_space_pages;
    std::uint64_t remaining = record.injected_pages;
    std::uint64_t lpn = 0;
    while (remaining > 0) {
      sim::IoRequest req;
      req.tenant = best_slot;
      req.type = sim::OpType::kWrite;
      req.lpn = lpn % space;
      req.page_count = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kBulkRequestPages, remaining));
      req.arrival = bulk_at;
      dst.pending_bulk.push_back(req);
      lpn += req.page_count;
      remaining -= req.page_count;
    }

    TenantState& ts = tenants[tenant_id];
    ts.device = best_device;
    ts.slot = best_slot;
    ++ts.migrations;
    ts.segments.emplace_back(best_device, best_slot);

    out.push_back(std::move(record));
    ++committed;
  }
}

}  // namespace

std::vector<trace::TraceRecord> epoch_records(const TenantSpec& spec,
                                              std::uint64_t fleet_seed,
                                              std::uint32_t epoch,
                                              Duration epoch_ns) {
  trace::SyntheticSpec s = spec.traffic;
  s.seed = epoch_seed(fleet_seed, spec.id, epoch);
  trace::Workload records = trace::generate_synthetic(s);
  std::erase_if(records, [epoch_ns](const trace::TraceRecord& r) {
    return r.arrival >= epoch_ns;
  });
  const SimTime base = static_cast<SimTime>(epoch) * epoch_ns;
  for (auto& r : records) r.arrival += base;
  return records;
}

std::vector<TenantSpec> make_tenant_specs(std::uint32_t count,
                                          std::uint32_t writer_stride,
                                          Duration epoch_ns) {
  const double epoch_s = static_cast<double>(epoch_ns) / 1e9;
  std::vector<TenantSpec> specs;
  specs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TenantSpec spec;
    spec.id = i;
    trace::SyntheticSpec& t = spec.traffic;
    if (writer_stride > 0 && i % writer_stride == 0) {
      // Heavy sequential writer — the tenant class that saturates shared
      // channels and forces consolidation decisions.
      t.name = "writer";
      t.write_fraction = 0.9;
      t.intensity_rps = 9'000.0;
      t.mean_request_pages = 4.0;
      t.sequential_fraction = 0.7;
    } else if (i % 2 == 1) {
      t.name = "reader";
      t.write_fraction = 0.1;
      t.intensity_rps = 6'000.0;
      t.mean_request_pages = 2.0;
    } else {
      t.name = "mixed";
      t.write_fraction = 0.4;
      t.intensity_rps = 4'000.0;
      t.mean_request_pages = 2.0;
    }
    // ~1.5x the expected count so the epoch window is always filled; the
    // overhang past epoch_ns is clipped by epoch_records.
    t.request_count = static_cast<std::uint64_t>(
        t.intensity_rps * epoch_s * 1.5) + 16;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::uint64_t FleetResult::fingerprint() const {
  Fnv f;
  f.mix(devices);
  f.mix(tenants);
  f.mix(epochs);
  f.mix(seed);
  f.mix(total_requests);
  f.mix(aggregate_p99_read_us);
  f.mix(aggregate_p99_write_us);
  f.mix(aggregate_total_us);
  f.mix(mean_slowdown);
  f.mix(jain_index);
  f.mix(worst_slowdown);
  for (const auto& d : device_results) {
    f.mix(d.device);
    f.mix(d.faulty);
    f.mix(d.run.avg_read_us);
    f.mix(d.run.avg_write_us);
    f.mix(d.run.total_us);
    f.mix(d.run.p99_read_us);
    f.mix(d.run.p99_write_us);
    f.mix(d.run.counters.host_reads);
    f.mix(d.run.counters.host_writes);
    f.mix(d.run.counters.conflicts);
    f.mix(d.run.counters.gc_migrations);
    f.mix(d.run.device_full);
    for (const auto& s : d.epoch_summaries) {
      f.mix(s.reads);
      f.mix(s.writes);
      f.mix(s.conflicts);
      f.mix(s.iops);
      f.mix(s.read_p99_us);
      f.mix(s.write_p99_us);
      f.mix(s.mean_bus_util);
      f.mix(s.peak_bus_util);
    }
  }
  for (const auto& t : tenant_results) {
    f.mix(t.tenant);
    f.mix(t.initial_device);
    f.mix(t.final_device);
    f.mix(t.migrations);
    f.mix(t.reads);
    f.mix(t.writes);
    f.mix(t.avg_read_us);
    f.mix(t.avg_write_us);
    f.mix(t.total_us);
    f.mix(t.p99_read_us);
    f.mix(t.p99_write_us);
    f.mix(t.isolated_total_us);
    f.mix(t.slowdown);
  }
  for (const auto& m : migrations) {
    f.mix(m.epoch);
    f.mix(m.tenant);
    f.mix(m.from_device);
    f.mix(m.to_device);
    f.mix(m.from_slot);
    f.mix(m.to_slot);
    f.mix(m.stay_score_us);
    f.mix(m.move_score_us);
    f.mix(m.footprint_pages);
    f.mix(m.injected_pages);
    f.mix(static_cast<std::uint64_t>(m.modeled_cost_ns));
    for (const auto& trial : m.trials) {
      f.mix(trial.device);
      f.mix(trial.score_us);
    }
  }
  return f.h;
}

FleetResult run_fleet(const FleetConfig& config,
                      std::span<const TenantSpec> tenants,
                      const PlacementPolicy& policy, ThreadPool& pool) {
  validate(config, tenants.size());

  // Placement input: each tenant's first-epoch traffic, measured by the
  // per-tenant feature extractor (the same signal the keeper's collector
  // quantizes, kept continuous here).
  std::vector<TenantLoad> loads;
  loads.reserve(tenants.size());
  for (const auto& spec : tenants) {
    const auto records =
        epoch_records(spec, config.seed, 0, config.epoch_ns);
    std::vector<sim::IoRequest> reqs;
    reqs.reserve(records.size());
    for (const auto& r : records) {
      sim::IoRequest req;
      req.tenant = spec.id;
      req.type = r.type;
      req.lpn = r.lpn;
      req.page_count = r.pages;
      req.arrival = r.arrival;
      reqs.push_back(req);
    }
    const auto stats = core::per_tenant_stats(reqs);
    TenantLoad load;
    load.tenant = spec.id;
    if (!stats.empty()) load = load_of(spec.id, stats.front());
    loads.push_back(load);
  }
  const auto placement =
      policy.place(loads, config.devices, config.slots_per_device);

  // Build the fleet: one device (+ tracer, + optional keeper) per slot of
  // the device vector, tenants assigned to slots in tenant-id order.
  std::vector<DeviceState> states(config.devices);
  std::vector<TenantState> tenant_states(tenants.size());
  for (std::uint32_t d = 0; d < config.devices; ++d) {
    DeviceState& st = states[d];
    ssd::SsdOptions options = config.ssd;
    if (config.faulty_device_stride > 0 &&
        d % config.faulty_device_stride == 0) {
      options.faults = config.faults;
      st.faulty = true;
    }
    st.device = std::make_unique<ssd::Ssd>(options);
    st.tracer = std::make_unique<telemetry::Tracer>(telemetry::TelemetryConfig{
        .capacity_events = config.tracer_capacity_events});
    st.device->set_tracer(st.tracer.get());
    if (config.allocator != nullptr) {
      st.keeper =
          std::make_unique<core::SsdKeeper>(*config.allocator, config.keeper);
      st.keeper->attach(*st.device);
    }
    st.slot_tenant.fill(kSlotFree);
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const std::uint32_t d = placement[i];
    DeviceState& st = states[d];
    std::uint32_t slot = kMaxSlots;
    for (std::uint32_t s = 0; s < config.slots_per_device; ++s) {
      if (st.slot_tenant[s] == kSlotFree) {
        slot = s;
        break;
      }
    }
    if (slot >= kMaxSlots) {
      throw std::logic_error("fleet: placement oversubscribed a device");
    }
    st.slot_tenant[slot] = static_cast<int>(tenants[i].id);
    TenantState& ts = tenant_states[i];
    ts.device = ts.initial_device = d;
    ts.slot = slot;
    ts.segments.emplace_back(d, slot);
  }

  FleetResult result;
  result.policy = policy.name();
  result.devices = config.devices;
  result.tenants = static_cast<std::uint32_t>(tenants.size());
  result.epochs = config.epochs;
  result.seed = config.seed;

  for (std::uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    parallel_map(pool, states.size(), [&](std::size_t d) {
      run_epoch_on_device(states[d], tenants, config, epoch);
      return 0;
    });
    if (config.migration.enabled && epoch + 1 < config.epochs) {
      consolidate(states, tenant_states, tenants, config, epoch,
                  result.migrations);
    }
  }

  // Per-device results, merged in device-id order.
  double p99r_w = 0.0, p99w_w = 0.0, total_w = 0.0;
  double read_n = 0.0, write_n = 0.0, req_n = 0.0;
  for (std::uint32_t d = 0; d < config.devices; ++d) {
    DeviceState& st = states[d];
    FleetDeviceResult dr;
    dr.device = d;
    dr.faulty = st.faulty;
    dr.run = st.full ? st.full_result : core::summarize(*st.device);
    dr.epoch_summaries = st.epoch_summaries;
    const auto agg = st.device->metrics().aggregate();
    const double reads = static_cast<double>(agg.read_latency_us.count());
    const double writes = static_cast<double>(agg.write_latency_us.count());
    read_n += reads;
    write_n += writes;
    req_n += reads + writes;
    p99r_w += dr.run.p99_read_us * reads;
    p99w_w += dr.run.p99_write_us * writes;
    total_w += dr.run.total_us * (reads + writes);
    result.total_requests += st.device->metrics().counters().host_reads +
                             st.device->metrics().counters().host_writes;
    result.device_results.push_back(std::move(dr));
  }
  if (read_n > 0.0) result.aggregate_p99_read_us = p99r_w / read_n;
  if (write_n > 0.0) result.aggregate_p99_write_us = p99w_w / write_n;
  if (req_n > 0.0) result.aggregate_total_us = total_w / req_n;

  // Isolated baselines: each tenant alone on a fresh (fault-free) device,
  // replaying all epochs of its own traffic — the denominator of the
  // slowdown column. Independent per tenant, so it fans out on the pool.
  std::vector<double> isolated(tenants.size(), 0.0);
  if (config.isolated_baseline) {
    isolated = parallel_map(pool, tenants.size(), [&](std::size_t i) {
      ssd::Ssd device(config.ssd);
      std::vector<sim::IoRequest> reqs;
      for (std::uint32_t e = 0; e < config.epochs; ++e) {
        const auto records =
            epoch_records(tenants[i], config.seed, e, config.epoch_ns);
        auto epoch_reqs = records_to_requests(records, 0);
        reqs.insert(reqs.end(), epoch_reqs.begin(), epoch_reqs.end());
      }
      for (std::size_t r = 0; r < reqs.size(); ++r) reqs[r].id = r;
      try {
        device.submit(reqs);
        device.run_to_completion();
      } catch (const ftl::DeviceFullError&) {
        // Partial metrics still give a usable denominator.
      }
      const auto agg = device.metrics().aggregate();
      return agg.total_us();
    });
  }

  double slowdown_sum = 0.0;
  std::uint32_t slowdown_n = 0;
  std::vector<double> slowdowns;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantState& ts = tenant_states[i];
    FleetTenantResult tr;
    tr.tenant = tenants[i].id;
    tr.initial_device = ts.initial_device;
    tr.final_device = ts.device;
    tr.migrations = ts.migrations;
    sim::TenantMetrics merged;
    for (const auto& [dev, slot] : ts.segments) {
      const auto& metrics = states[dev].device->metrics();
      if (!metrics.has_tenant(slot)) continue;
      const auto& tm = metrics.tenant(slot);
      merged.read_latency_us.merge(tm.read_latency_us);
      merged.write_latency_us.merge(tm.write_latency_us);
    }
    tr.reads = merged.read_latency_us.count();
    tr.writes = merged.write_latency_us.count();
    tr.avg_read_us = merged.avg_read_us();
    tr.avg_write_us = merged.avg_write_us();
    tr.total_us = merged.total_us();
    tr.p99_read_us = merged.read_latency_us.empty()
                         ? 0.0
                         : merged.read_latency_us.percentile(99.0);
    tr.p99_write_us = merged.write_latency_us.empty()
                          ? 0.0
                          : merged.write_latency_us.percentile(99.0);
    tr.isolated_total_us = isolated[i];
    if (tr.isolated_total_us > 0.0) {
      tr.slowdown = tr.total_us / tr.isolated_total_us;
      slowdown_sum += tr.slowdown;
      ++slowdown_n;
      slowdowns.push_back(tr.slowdown);
      result.worst_slowdown = std::max(result.worst_slowdown, tr.slowdown);
    }
    result.tenant_results.push_back(std::move(tr));
  }
  if (slowdown_n > 0) {
    result.mean_slowdown = slowdown_sum / slowdown_n;
    result.jain_index = sched::jain_index(slowdowns);
  }
  return result;
}

FleetResult run_fleet(const FleetConfig& config,
                      std::span<const TenantSpec> tenants,
                      const PlacementPolicy& policy, std::size_t threads) {
  ThreadPool pool(threads);
  return run_fleet(config, tenants, policy, pool);
}

}  // namespace ssdk::fleet
