// Human- and machine-readable views of a FleetResult: a markdown summary
// (per-device table, per-tenant table with slowdown vs. isolated,
// migration log) and RFC 4180 CSV exports for plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "fleet/fleet.hpp"

namespace ssdk::fleet {

/// Markdown report: fleet header, per-device table, per-tenant table,
/// migration log (empty section when no move committed).
std::string format_report(const FleetResult& result);

/// One CSV row per device: cumulative latency stats plus the final
/// epoch's rollup summary.
void write_device_csv(std::ostream& os, const FleetResult& result);

/// One CSV row per tenant: placement history, latency, slowdown.
void write_tenant_csv(std::ostream& os, const FleetResult& result);

/// One CSV row per (device, epoch) rollup summary — the hot-device
/// detector's input, exported for plotting heat over time.
void write_rollup_csv(std::ostream& os, const FleetResult& result);

}  // namespace ssdk::fleet
