#include "fleet/migration.hpp"

#include <algorithm>
#include <limits>

#include "ftl/ftl.hpp"
#include "sim/metrics.hpp"

namespace ssdk::fleet {

std::vector<bool> detect_hot_devices(
    std::span<const telemetry::RollupSummary> summaries,
    const MigrationConfig& config) {
  std::vector<bool> hot(summaries.size(), false);
  if (summaries.empty()) return hot;

  std::vector<double> heats;
  heats.reserve(summaries.size());
  for (const auto& s : summaries) heats.push_back(s.heat());
  std::sort(heats.begin(), heats.end());
  const std::size_t n = heats.size();
  const double median = n % 2 == 1
                            ? heats[n / 2]
                            : 0.5 * (heats[n / 2 - 1] + heats[n / 2]);

  for (std::size_t d = 0; d < summaries.size(); ++d) {
    const bool heat_hot = median > 0.0 &&
                          summaries[d].heat() >=
                              config.hot_heat_ratio * median &&
                          summaries[d].heat() > 0.0;
    const bool bus_hot =
        summaries[d].mean_bus_util >= config.hot_bus_util;
    hot[d] = heat_hot || bus_hot;
  }
  return hot;
}

double score_placement(const ssd::Ssd& device,
                       std::span<const sim::IoRequest> trial) {
  if (trial.empty()) return 0.0;
  // Same scoring discipline as SsdKeeper::measure_best: the fork inherits
  // the parent's completed history, so the candidate is judged on the
  // *suffix* latency the trial adds, not on history it cannot change.
  const sim::TenantMetrics before = device.metrics().aggregate();
  const double read_sum0 = before.read_latency_us.sum();
  const double write_sum0 = before.write_latency_us.sum();
  const double read_n0 =
      static_cast<double>(before.read_latency_us.count());
  const double write_n0 =
      static_cast<double>(before.write_latency_us.count());

  auto forked = device.fork();
  try {
    forked->submit(trial);
    forked->run_to_completion();
  } catch (const ftl::DeviceFullError&) {
    return std::numeric_limits<double>::infinity();
  }
  const sim::TenantMetrics after = forked->metrics().aggregate();
  const double reads =
      static_cast<double>(after.read_latency_us.count()) - read_n0;
  const double writes =
      static_cast<double>(after.write_latency_us.count()) - write_n0;
  const double suffix_read =
      reads > 0.0 ? (after.read_latency_us.sum() - read_sum0) / reads : 0.0;
  const double suffix_write =
      writes > 0.0 ? (after.write_latency_us.sum() - write_sum0) / writes
                   : 0.0;
  return suffix_read + suffix_write;
}

}  // namespace ssdk::fleet
