// Hot-device detection and fork-measured migration trials — the fleet
// tier's load-balancing half (Serifos' migration protocol, adapted to the
// simulator).
//
// Hotness is read from the telemetry rollup engine: each device's
// per-epoch rollup collapses to a RollupSummary whose heat() (weighted
// read+write p99 over rolling windows) ranks devices against the fleet
// median. Destination choice is not guessed from counters: every
// candidate is scored by fork()ing the destination device and replaying a
// trial slice of the would-be-migrated tenant's upcoming traffic next to
// the destination's own — the same what-if methodology as the keeper's
// fork-measured mode, so a migration is committed only when the measured
// trial beats staying put.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/request.hpp"
#include "ssd/ssd.hpp"
#include "telemetry/rollup.hpp"
#include "util/time_types.hpp"

namespace ssdk::fleet {

struct MigrationConfig {
  bool enabled = true;
  /// A device is hot when its heat() is at least this multiple of the
  /// fleet's median heat (and non-zero) ...
  double hot_heat_ratio = 1.3;
  /// ... or when its rolling-window mean bus utilization crosses this
  /// (saturated devices are hot even when every device is equally slow).
  double hot_bus_util = 0.9;
  /// Migrations committed per epoch boundary, fleet-wide.
  std::uint32_t max_per_epoch = 2;
  /// Candidate destinations trialed per migration (coldest-first).
  std::uint32_t candidates = 3;
  /// Requests replayed per what-if trial (victim + destination natives).
  std::uint64_t trial_requests = 1500;
  /// Cap on the copy traffic injected on the destination when a
  /// migration commits (pages). The modeled cost reports the full
  /// footprint; the injected bulk load is capped so one migration cannot
  /// dominate an epoch.
  std::uint64_t bulk_pages_cap = 1024;
};

/// Flag hot devices: heat >= hot_heat_ratio x (fleet median heat) and
/// non-zero, or mean bus utilization >= hot_bus_util. Index-aligned with
/// `summaries` (one entry per device, ordered by device id).
std::vector<bool> detect_hot_devices(
    std::span<const telemetry::RollupSummary> summaries,
    const MigrationConfig& config);

/// What-if trial: fork `device`, replay `trial` on the fork, and return
/// the mean total latency (avg read + avg write, us) of the trial's
/// completions — the suffix the trial adds beyond the parent's history.
/// A trial that fills the device scores +infinity. The parent is not
/// mutated; the fork is discarded.
double score_placement(const ssd::Ssd& device,
                       std::span<const sim::IoRequest> trial);

}  // namespace ssdk::fleet
