// Fleet-scale simulation: tens-to-hundreds of independent device
// simulations driven concurrently on one thread pool, with a
// consolidation tier on top (DESIGN.md §15).
//
// One fleet run is a sequence of epochs. Within an epoch every device
// advances independently — one deterministic, seeded Ssd (plus optional
// per-device SSDKeeper) per device, executed as a parallel_map task so
// results merge in device-id order no matter which worker finishes first.
// Between epochs the fleet tier runs serially on the merged telemetry:
// rollup summaries rank devices by heat, hot devices nominate their
// heaviest writer for migration, and candidate destinations are scored by
// Ssd::fork() what-if trials before any move commits. Every cross-device
// decision therefore sees the same inputs in the same order on every
// thread count, which is what makes a fleet run bit-reproducible at 1, 4
// or 16 workers (tested).
//
// Tenant traffic is a pure function of (fleet seed, tenant id, epoch):
// epoch workloads are regenerated per epoch from a per-tenant
// SyntheticSpec template, so a migrated tenant's future traffic replays
// identically on its new device and what-if trials can preview the next
// epoch without consuming shared RNG state.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "core/keeper.hpp"
#include "core/runner.hpp"
#include "fleet/migration.hpp"
#include "fleet/placement.hpp"
#include "ssd/ssd.hpp"
#include "telemetry/rollup.hpp"
#include "telemetry/tracer.hpp"
#include "trace/synthetic.hpp"
#include "util/thread_pool.hpp"
#include "util/time_types.hpp"

namespace ssdk::fleet {

/// Device slots per device are capped by the features collector's
/// four-tenant limit: a device's local tenant ids are its slot numbers.
inline constexpr std::uint32_t kMaxSlots = 4;

/// One fleet tenant: a stable fleet-wide id plus the synthetic-traffic
/// template its per-epoch workload is generated from. `traffic.seed` is
/// ignored — the per-epoch seed derives from (fleet seed, id, epoch).
struct TenantSpec {
  std::uint32_t id = 0;
  trace::SyntheticSpec traffic;
};

struct FleetConfig {
  std::uint32_t devices = 4;
  /// Tenants a device can host at once (1..kMaxSlots).
  std::uint32_t slots_per_device = kMaxSlots;
  std::uint32_t epochs = 3;
  /// Epoch length in simulated time. Generated arrivals beyond the epoch
  /// are dropped, so every epoch's traffic lies in
  /// [e * epoch_ns, (e+1) * epoch_ns).
  Duration epoch_ns = 50 * kMillisecond;
  std::uint64_t seed = 1;
  /// Per-device construction options (geometry, timing, FTL, ...).
  ssd::SsdOptions ssd;
  /// Per-device online keeper. Null = no keeper: tenants keep the FTL
  /// default policy (all channels, Shared) and only the fleet tier acts.
  /// One allocator is shared by every device's keeper, including devices
  /// running concurrently on different epoch workers — safe because the
  /// allocator is immutable after construction and its predict paths use
  /// per-call inference scratch.
  const core::ChannelAllocator* allocator = nullptr;
  core::KeeperConfig keeper;
  MigrationConfig migration;
  /// Rolling-window rollup used for hot-device detection. `channels` is
  /// overwritten from the device geometry.
  telemetry::RollupConfig rollup;
  /// Per-device trace ring. The fleet only needs the most recent epoch
  /// (the ring is cleared at each epoch start), so the default is much
  /// smaller than the Tracer's own.
  std::size_t tracer_capacity_events = 1u << 16;
  /// Fault injection on a device subset: every `faulty_device_stride`-th
  /// device (ids 0, s, 2s, ...) runs with `faults`; 0 disables. The subset
  /// is part of the configuration, so runs stay bit-reproducible.
  std::uint32_t faulty_device_stride = 0;
  sim::FaultModel faults;
  /// Also run every tenant alone on a fresh device (same traffic, same
  /// options) to report per-tenant slowdown vs. isolated execution.
  bool isolated_baseline = true;
};

/// One fork-measured destination trial.
struct MigrationTrial {
  std::uint32_t device = 0;
  double score_us = 0.0;
};

/// One committed (or evaluated) tenant move.
struct MigrationRecord {
  std::uint32_t epoch = 0;  ///< boundary after this epoch
  std::uint32_t tenant = 0;
  std::uint32_t from_device = 0;
  std::uint32_t to_device = 0;
  std::uint32_t from_slot = 0;
  std::uint32_t to_slot = 0;
  double stay_score_us = 0.0;  ///< fork-measured "do nothing" score
  double move_score_us = 0.0;  ///< winning destination's score
  /// Logical pages the tenant had written so far — the full copy
  /// footprint a real migration would move.
  std::uint64_t footprint_pages = 0;
  /// Copy traffic actually replayed on the destination (footprint capped
  /// by MigrationConfig::bulk_pages_cap).
  std::uint64_t injected_pages = 0;
  /// Modeled cost of the full copy: footprint x (transfer + program).
  Duration modeled_cost_ns = 0;
  std::vector<MigrationTrial> trials;  ///< every scored destination
};

struct FleetDeviceResult {
  std::uint32_t device = 0;
  bool faulty = false;
  core::RunResult run;  ///< cumulative over all epochs
  /// Rollup summary of each epoch (hot-device detection input).
  std::vector<telemetry::RollupSummary> epoch_summaries;
};

struct FleetTenantResult {
  std::uint32_t tenant = 0;
  std::uint32_t initial_device = 0;
  std::uint32_t final_device = 0;
  std::uint32_t migrations = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double avg_read_us = 0.0;
  double avg_write_us = 0.0;
  double total_us = 0.0;  ///< avg read + avg write (paper Section III.B)
  double p99_read_us = 0.0;
  double p99_write_us = 0.0;
  /// Isolated-baseline total latency (0 when the baseline is disabled).
  double isolated_total_us = 0.0;
  /// total_us / isolated_total_us — the consolidation penalty this tenant
  /// paid for sharing a device (0 when the baseline is disabled).
  double slowdown = 0.0;
};

struct FleetResult {
  std::string policy;
  std::uint32_t devices = 0;
  std::uint32_t tenants = 0;
  std::uint32_t epochs = 0;
  std::uint64_t seed = 0;
  std::uint64_t total_requests = 0;
  std::vector<FleetDeviceResult> device_results;
  std::vector<FleetTenantResult> tenant_results;
  std::vector<MigrationRecord> migrations;
  /// Request-weighted aggregates across devices.
  double aggregate_p99_read_us = 0.0;
  double aggregate_p99_write_us = 0.0;
  double aggregate_total_us = 0.0;
  /// Mean per-tenant slowdown vs. isolated (0 when baseline disabled).
  double mean_slowdown = 0.0;
  /// Fairness over the per-tenant slowdowns: Jain index (1 = every tenant
  /// pays the same consolidation penalty) and the single worst slowdown.
  /// Both 0 when the isolated baseline is disabled.
  double jain_index = 0.0;
  double worst_slowdown = 0.0;

  /// FNV-1a over every numeric field (device, tenant and migration rows
  /// included). Two runs are treated as bit-identical iff their
  /// fingerprints match — the determinism tests compare this across
  /// thread counts.
  std::uint64_t fingerprint() const;
};

/// Deterministic synthetic tenant population for demos/benches: tenants
/// alternate read-heavy and moderate profiles, with a heavy sequential
/// writer at every `writer_stride`-th index (stride 0 = no heavy
/// writers). Request counts are sized to roughly fill `epoch_ns` at each
/// tenant's intensity.
std::vector<TenantSpec> make_tenant_specs(std::uint32_t count,
                                          std::uint32_t writer_stride,
                                          Duration epoch_ns);

/// Epoch traffic of one tenant: generated from the spec with seed
/// (fleet_seed, spec.id, epoch), clipped to the epoch and shifted to
/// absolute time. Pure function — used by the epoch workers and by
/// migration what-if trials alike.
std::vector<trace::TraceRecord> epoch_records(const TenantSpec& spec,
                                              std::uint64_t fleet_seed,
                                              std::uint32_t epoch,
                                              Duration epoch_ns);

/// Run a fleet: place tenants with `policy`, advance all devices epoch by
/// epoch on `pool`, consolidate between epochs. The result is
/// bit-identical for a fixed (config, tenants, policy) regardless of the
/// pool's thread count.
FleetResult run_fleet(const FleetConfig& config,
                      std::span<const TenantSpec> tenants,
                      const PlacementPolicy& policy, ThreadPool& pool);

/// Convenience overload owning a pool with `threads` workers.
FleetResult run_fleet(const FleetConfig& config,
                      std::span<const TenantSpec> tenants,
                      const PlacementPolicy& policy, std::size_t threads);

}  // namespace ssdk::fleet
