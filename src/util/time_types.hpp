// Simulation time primitives.
//
// All simulator timestamps and durations are unsigned 64-bit nanosecond
// counts. A dedicated strong-ish typedef (plain alias, zero overhead) keeps
// the unit explicit at API boundaries; helper literals avoid magic numbers.
#pragma once

#include <cstdint>

namespace ssdk {

/// Absolute simulation time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// Duration in nanoseconds.
using Duration = std::uint64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Convert a nanosecond duration to fractional microseconds (for reporting).
constexpr double to_us(Duration ns) { return static_cast<double>(ns) / 1e3; }

/// Convert a nanosecond duration to fractional milliseconds (for reporting).
constexpr double to_ms(Duration ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace ssdk
