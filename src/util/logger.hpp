// Leveled logging to stderr, thread-safe, globally filterable.
//
// Deliberately minimal: simulation hot paths never log; logging exists for
// harness progress lines and debugging, so a mutexed stream is fine.
#pragma once

#include <sstream>
#include <string>

namespace ssdk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at the given level (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace ssdk
