// Checked-build invariant assertions.
//
// Two tiers, by cost and audience:
//
//   * SSDK_ASSERT / SSDK_ASSERT_MSG — hot-path assertions, compiled to
//     nothing (condition not even evaluated) unless the build defines
//     SSDK_CHECKED. Use them where a plain assert() would vanish in
//     Release builds but the property is cheap enough to keep in the
//     `checked` preset (Release + SSDK_CHECKED), which runs the full test
//     suite with them armed.
//
//   * SSDK_CHECK_MSG — always compiled, used inside the explicit audit
//     walks (Ssd::check_invariants and friends). Those run only when a
//     caller asks for an audit, so they pay for themselves in any build;
//     tests can therefore corrupt a device and prove an invariant fires
//     without needing a special configuration.
//
// Failures throw InvariantViolation (a std::logic_error) rather than
// aborting: a violated invariant is a simulator bug, but tests need to
// observe it, and campaign drivers prefer a catchable diagnosis over a
// core dump mid-sweep.
#pragma once

#include <stdexcept>
#include <string>

namespace ssdk::util {

/// A checked-build audit found simulator state that breaks a structural
/// invariant (L2P bijection, count conservation, queue consistency, ...).
/// The message carries file:line, the failed condition, and a description.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// Build-time flag mirror, usable in ordinary `if` conditions so callers
/// can gate periodic audits without preprocessor blocks at every site.
#if defined(SSDK_CHECKED)
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

/// Compose the diagnostic and throw InvariantViolation. Out of line so the
/// failure path adds one call per assertion site, not a string build.
[[noreturn]] void raise_invariant_violation(const char* file, int line,
                                            const char* condition,
                                            const std::string& message);

}  // namespace ssdk::util

/// Always-on invariant check for explicit audit code paths.
#define SSDK_CHECK_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::ssdk::util::raise_invariant_violation(__FILE__, __LINE__, #cond, \
                                              (msg));                   \
    }                                                                   \
  } while (0)

#if defined(SSDK_CHECKED)
#define SSDK_ASSERT(cond) SSDK_CHECK_MSG(cond, std::string{})
#define SSDK_ASSERT_MSG(cond, msg) SSDK_CHECK_MSG(cond, (msg))
#else
// Zero-cost when off: the condition is not evaluated. sizeof in an
// unevaluated context still type-checks the expression, so a checked
// build cannot be the first to discover the assertion does not compile.
#define SSDK_ASSERT(cond) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))
#define SSDK_ASSERT_MSG(cond, msg) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))
#endif
