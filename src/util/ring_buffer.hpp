// Grow-on-demand circular FIFO over a power-of-two array.
//
// The device model keeps many small op-id queues (per-channel read queues,
// per-unit read/write/erase waits, the write-buffer eviction FIFO) that
// std::deque served with chunked heap allocation on every refill. A ring
// reuses one flat buffer: after warm-up the capacity stops changing and
// steady-state push/pop performs zero allocations. Only the deque
// operations the simulator uses are provided (push_back / front /
// pop_front); elements are assumed cheap to copy (op ids, packed keys).
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <vector>

namespace ssdk::util {

template <typename T>
class RingBuffer {
 public:
  /// Ensure capacity for at least `n` elements without regrowing.
  void reserve(std::size_t n) {
    if (n > data_.size()) regrow(std::bit_ceil(n));
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return data_.size(); }

  T& front() {
    assert(count_ > 0);
    return data_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return data_[head_];
  }

  void push_back(const T& value) {
    if (count_ == data_.size()) {
      regrow(data_.empty() ? kMinCapacity : data_.size() * 2);
    }
    data_[(head_ + count_) & (data_.size() - 1)] = value;
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & (data_.size() - 1);
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

  /// Element at logical position `i` from the front (0 == front()).
  /// Lets a snapshot serialize the queue in FIFO order — the physical
  /// head position is an implementation detail that need not survive a
  /// save/restore round trip.
  const T& at(std::size_t i) const {
    assert(i < count_);
    return data_[(head_ + i) & (data_.size() - 1)];
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  void regrow(std::size_t new_capacity) {
    assert(std::has_single_bit(new_capacity));
    std::vector<T> next(new_capacity);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = data_[(head_ + i) & (data_.size() - 1)];
    }
    data_ = std::move(next);
    head_ = 0;
  }

  // Snapshot note: rings are serialized element-wise in logical order via
  // the public API; capacity and head position are storage details a
  // restored ring is free to choose differently.
  // ssdk-snap: skip(data_): serialized element-wise in logical order through the public API
  std::vector<T> data_;  ///< capacity; always empty or a power of two
  // ssdk-snap: skip(head_): storage-layout detail; a restored ring re-packs from index 0
  std::size_t head_ = 0;
  // ssdk-snap: skip(count_): implied by the serialized element count
  std::size_t count_ = 0;
};

}  // namespace ssdk::util
