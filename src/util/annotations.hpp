// Clang thread-safety analysis annotations, no-ops everywhere else.
//
// The macros wrap Clang's capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so that
// mutex-protected structures can declare, in the type system, which lock
// guards which field and which functions expect a lock to be held. Clang
// builds compile with -Wthread-safety (see the ssdkeeper_warnings target),
// turning a forgotten lock into a build error; GCC expands every macro to
// nothing and sees the same code it always did.
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot see through it. util/mutex.hpp provides the annotated
// Mutex/MutexLock/CondVar wrappers these macros are designed for.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SSDK_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SSDK_THREAD_ANNOTATION
#define SSDK_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define SSDK_CAPABILITY(name) SSDK_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SSDK_SCOPED_CAPABILITY SSDK_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member may only be touched while `mu` is held.
#define SSDK_GUARDED_BY(mu) SSDK_THREAD_ANNOTATION(guarded_by(mu))

/// Declares that the pointed-to data is guarded by `mu` (the pointer
/// itself is not).
#define SSDK_PT_GUARDED_BY(mu) SSDK_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Declares that callers must hold the given capabilities on entry.
#define SSDK_REQUIRES(...) \
  SSDK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that the function acquires the given capabilities.
#define SSDK_ACQUIRE(...) \
  SSDK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Declares that the function releases the given capabilities.
#define SSDK_RELEASE(...) \
  SSDK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares a try-lock: acquires the capability iff the return value
/// equals `result`.
#define SSDK_TRY_ACQUIRE(...) \
  SSDK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the given capabilities (guards
/// against self-deadlock on non-recursive mutexes).
#define SSDK_EXCLUDES(...) SSDK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define SSDK_NO_THREAD_SAFETY_ANALYSIS \
  SSDK_THREAD_ANNOTATION(no_thread_safety_analysis)
