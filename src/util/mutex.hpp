// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// Thin shims over std::mutex and std::condition_variable that carry the
// Clang thread-safety capability attributes (util/annotations.hpp), so
// `SSDK_GUARDED_BY(mutex_)` declarations are actually enforced on Clang
// builds. Two deliberate departures from the std API follow from how the
// analysis works:
//
//  - CondVar::wait takes the Mutex directly (not a unique_lock) and is
//    annotated SSDK_REQUIRES(m): the caller keeps an ordinary MutexLock in
//    scope and the analysis can see the lock is held across the wait.
//  - There is no predicate overload. A `wait(lock, pred)` lambda body is
//    invisible to the analysis (it cannot prove the lambda runs under the
//    lock), so waits are written as explicit while-loops at the call site,
//    where every guarded read is checked.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace ssdk::util {

/// std::mutex with capability attributes. Non-recursive.
class SSDK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SSDK_ACQUIRE() { m_.lock(); }
  void unlock() SSDK_RELEASE() { m_.unlock(); }
  bool try_lock() SSDK_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII scoped lock over Mutex (the std::lock_guard equivalent).
class SSDK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) SSDK_ACQUIRE(m) : mutex_(m) { mutex_.lock(); }
  ~MutexLock() SSDK_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to Mutex at each wait call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `m`, sleep, and re-acquire `m` before returning.
  /// Spurious wakeups happen; callers loop on their predicate.
  void wait(Mutex& m) SSDK_REQUIRES(m) {
    // Adopt the already-held mutex for the duration of the wait, then
    // release the unique_lock's ownership claim so the caller's MutexLock
    // remains the one true owner. The lock is held at both edges, so the
    // capability bookkeeping in the caller stays accurate.
    std::unique_lock<std::mutex> native(m.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ssdk::util
