#include "util/csv.hpp"

#include <charconv>
#include <ostream>
#include <stdexcept>

namespace ssdk {

std::vector<std::string> split_csv_line(std::string_view line, char sep) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';  // doubled quote = literal quote
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;  // opening quote only at field start
    } else if (c == sep) {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(std::move(field));
  return out;
}

namespace {
[[noreturn]] void fail(std::string_view what, std::string_view field) {
  throw std::invalid_argument(std::string("csv: cannot parse ") +
                              std::string(what) + " from '" +
                              std::string(field) + "'");
}
}  // namespace

std::int64_t parse_i64(std::string_view field) {
  std::int64_t v{};
  auto [p, ec] = std::from_chars(field.begin(), field.end(), v);
  if (ec != std::errc{} || p != field.end()) fail("int64", field);
  return v;
}

std::uint64_t parse_u64(std::string_view field) {
  std::uint64_t v{};
  auto [p, ec] = std::from_chars(field.begin(), field.end(), v);
  if (ec != std::errc{} || p != field.end()) fail("uint64", field);
  return v;
}

double parse_double(std::string_view field) {
  double v{};
  auto [p, ec] = std::from_chars(field.begin(), field.end(), v);
  if (ec != std::errc{} || p != field.end()) fail("double", field);
  return v;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const auto& f = fields[i];
    if (i) os_ << sep_;
    const bool needs_quoting =
        f.find(sep_) != std::string::npos ||
        f.find('"') != std::string::npos ||
        f.find('\n') != std::string::npos ||
        f.find('\r') != std::string::npos;
    if (needs_quoting) {
      os_ << '"';
      for (const char c : f) {
        if (c == '"') os_ << '"';
        os_ << c;
      }
      os_ << '"';
    } else {
      os_ << f;
    }
  }
  os_ << '\n';
}

}  // namespace ssdk
