// Fixed-width and log-scale histograms for latency distributions.
//
// The log histogram covers [1ns, ~18s] with configurable sub-bucket
// resolution, similar in spirit to HdrHistogram but intentionally small.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ssdk {

/// Linear histogram over [lo, hi) with `bins` equal-width buckets.
/// Out-of-range samples land in saturating under/overflow buckets.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }

  /// Lower edge of bucket i.
  double bucket_lo(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Base-2 logarithmic histogram for positive integer samples (nanoseconds).
/// Each power-of-two range is split into `sub_buckets` linear sub-buckets.
class LogHistogram {
 public:
  explicit LogHistogram(std::size_t sub_buckets = 8);

  void add(std::uint64_t x);
  void merge(const LogHistogram& other);

  std::uint64_t total() const { return total_; }

  /// Approximate percentile from bucket midpoints, p in [0, 100].
  /// Returns 0 for an empty histogram.
  std::uint64_t percentile(double p) const;

  /// Render an ASCII sketch (one row per populated power-of-two decade).
  std::string ascii(std::size_t width = 48) const;

 private:
  std::size_t index_of(std::uint64_t x) const;
  std::uint64_t bucket_mid(std::size_t idx) const;

  std::size_t sub_buckets_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ssdk
