// Key=value configuration store.
//
// Examples and benches accept overrides (request counts, seeds, channel
// counts) either from "key=value" command-line tokens or from a config file
// with one pair per line ('#' comments). Typed getters validate on access.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ssdk {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens; unrecognized tokens throw.
  static Config from_args(int argc, const char* const* argv);

  /// Parse a file of "key = value" lines; '#' starts a comment.
  static Config from_file(const std::string& path);

  void set(std::string key, std::string value);
  bool has(std::string_view key) const;

  /// Typed getters: return `fallback` when the key is absent; throw
  /// std::invalid_argument when present but malformed.
  std::string get_string(std::string_view key, std::string fallback) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  std::uint64_t get_uint(std::string_view key, std::uint64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  /// All keys in lexicographic order (for echo/debug output).
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace ssdk
