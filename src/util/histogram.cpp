#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>

namespace ssdk {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void LinearHistogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // FP edge case
  ++counts_[idx];
}

double LinearHistogram::bucket_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

LogHistogram::LogHistogram(std::size_t sub_buckets)
    : sub_buckets_(sub_buckets), counts_(64 * sub_buckets, 0) {
  assert(sub_buckets > 0);
}

std::size_t LogHistogram::index_of(std::uint64_t x) const {
  if (x == 0) return 0;
  const auto msb = static_cast<std::size_t>(63 - std::countl_zero(x));
  std::size_t sub = 0;
  if (msb > 0) {
    // Fraction below the leading bit selects the sub-bucket.
    const std::uint64_t below = x & ((1ULL << msb) - 1);
    sub = static_cast<std::size_t>(
        (static_cast<__uint128_t>(below) * sub_buckets_) >> msb);
  }
  return msb * sub_buckets_ + sub;
}

std::uint64_t LogHistogram::bucket_mid(std::size_t idx) const {
  const std::size_t msb = idx / sub_buckets_;
  const std::size_t sub = idx % sub_buckets_;
  const std::uint64_t base = msb == 0 ? 0 : (1ULL << msb);
  const std::uint64_t width =
      msb == 0 ? 1 : (1ULL << msb) / sub_buckets_;
  return base + width * sub + width / 2;
}

void LogHistogram::add(std::uint64_t x) {
  ++counts_[index_of(x)];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  assert(sub_buckets_ == other.sub_buckets_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::uint64_t LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return bucket_mid(i);
  }
  return bucket_mid(counts_.size() - 1);
}

std::string LogHistogram::ascii(std::size_t width) const {
  std::ostringstream os;
  // Aggregate per power-of-two decade for readability.
  std::vector<std::uint64_t> decade(64, 0);
  std::uint64_t peak = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    decade[i / sub_buckets_] += counts_[i];
  }
  for (auto c : decade) peak = std::max(peak, c);
  if (peak == 0) return "(empty)\n";
  for (std::size_t d = 0; d < 64; ++d) {
    if (decade[d] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(decade[d]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "2^" << d << (d < 10 ? "  | " : " | ");
    for (std::size_t i = 0; i < std::max<std::size_t>(bar, 1); ++i) os << '#';
    os << ' ' << decade[d] << '\n';
  }
  return os.str();
}

}  // namespace ssdk
