#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ssdk {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid xoshiro state; splitmix64 cannot
  // produce four zero outputs from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

void Rng::set_state(const std::array<std::uint64_t, 4>& s) {
  s_ = s;
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_ = Rng{}.s_;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draw u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  const double u = 1.0 - next_double();  // (0, 1]
  return -std::log(u) / rate;
}

Rng Rng::split() {
  std::uint64_t child_seed = next_u64();
  return Rng(child_seed);
}

void Rng::shuffle(std::vector<std::size_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = next_below(i);
    std::swap(v[i - 1], v[j]);
  }
}

double ZipfGenerator::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0.0 && theta < 1.0);
  zetan_ = zeta(n, theta);
  const double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfGenerator::operator()(Rng& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto v = static_cast<std::uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace ssdk
