// Deterministic, splittable random number generation.
//
// The simulator, the workload generators and the neural-network trainer all
// need reproducible randomness. std::mt19937_64 is heavyweight to copy and
// its distributions are not guaranteed bit-identical across standard library
// implementations, so we ship our own small generator (xoshiro256**) plus the
// handful of distributions the project needs. Every component takes an
// explicit seed; identical seeds give bit-identical streams on every platform.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ssdk {

/// splitmix64: used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds (the "split" in splittable RNG).
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Copyable value type: simulations snapshot and fork RNGs freely.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponentially distributed value with the given rate (mean = 1/rate).
  double exponential(double rate);

  /// Derive an independent child generator; deterministic function of the
  /// parent's current state. Advances the parent.
  Rng split();

  /// Fisher–Yates shuffle of an index vector (used by the NN trainer).
  void shuffle(std::vector<std::size_t>& v);

  /// Full 256-bit generator state, for checkpoint/restore. Unlike
  /// re-seeding, round-tripping through state()/set_state() resumes the
  /// stream exactly where it left off.
  std::array<std::uint64_t, 4> state() const { return s_; }

  /// Restore state captured by state(). An all-zero state is invalid for
  /// xoshiro256** (the stream would be stuck at zero) and is replaced by
  /// the default-seed state, mirroring the constructor's guard.
  void set_state(const std::array<std::uint64_t, 4>& s);

 private:
  // ssdk-snap: skip(s_): owners capture the stream via state()/set_state(); the raw array is never serialized directly
  std::array<std::uint64_t, 4> s_{};
};

/// Zipfian integer distribution over [0, n) with skew theta in [0, 1).
/// theta = 0 degenerates to uniform. Uses the Gray et al. rejection-free
/// computation with cached zeta constants; O(1) per sample.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace ssdk
