#include "util/logger.hpp"

#include <atomic>
#include <iostream>

#include "util/mutex.hpp"

namespace ssdk {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
// Serializes whole lines onto std::cerr. The stream itself cannot carry a
// GUARDED_BY (it is external), so the capability discipline is: the only
// writes to std::cerr in this library happen in log_message below, under
// this mutex.
util::Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  util::MutexLock lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace ssdk
