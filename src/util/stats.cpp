#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace ssdk {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::merge(const SampleSet& other) {
  if (other.samples_.empty()) return;
  if (samples_.empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

void SampleSet::restore(std::vector<double> samples) {
  samples_ = std::move(samples);
  sum_ = 0.0;
  min_ = max_ = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double x = samples_[i];
    if (i == 0) {
      min_ = max_ = x;
    } else if (x < min_) {
      min_ = x;
    } else if (x > max_) {
      max_ = x;
    }
    sum_ += x;
  }
}

double SampleSet::percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  const std::size_t n = samples_.size();
  if (n == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= n) return max_;
  // Two order statistics via selection on a scratch copy: O(n) per query
  // instead of a cached full sort. The selected values are exact order
  // statistics, so the interpolated result matches the sorted-array
  // formula bit for bit.
  scratch_.assign(samples_.begin(), samples_.end());
  const auto nth = scratch_.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(scratch_.begin(), nth, scratch_.end());
  const double low = *nth;
  const double high = *std::min_element(nth + 1, scratch_.end());
  return low * (1.0 - frac) + high * frac;
}

std::string summarize(const SampleSet& s) {
  std::ostringstream os;
  if (s.empty()) {
    os << "n=0";
    return os.str();
  }
  os << "n=" << s.count() << " mean=" << s.mean() << " p50=" << s.median()
     << " p99=" << s.percentile(99.0) << " max=" << s.max();
  return os.str();
}

}  // namespace ssdk
