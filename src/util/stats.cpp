#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace ssdk {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::merge(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double SampleSet::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank =
      p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::string summarize(const SampleSet& s) {
  std::ostringstream os;
  if (s.empty()) {
    os << "n=0";
    return os.str();
  }
  os << "n=" << s.count() << " mean=" << s.mean() << " p50=" << s.median()
     << " p99=" << s.percentile(99.0) << " max=" << s.max();
  return os.str();
}

}  // namespace ssdk
