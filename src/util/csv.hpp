// Minimal CSV reading/writing: enough for MSR-Cambridge block traces, for
// dumping benchmark series, and for telemetry rollup exports. RFC 4180
// quoting is supported both ways: fields containing the separator, a quote
// or a newline are written inside double quotes (embedded quotes doubled),
// and split_csv_line undoes the same encoding.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ssdk {

/// Split one CSV line on `sep`. Trims trailing '\r' (CRLF input). Fields
/// may be RFC 4180 quoted: "a ""b"", c" parses to the single field
/// `a "b", c`. A lone quote mid-field is kept literally (MSR traces are
/// unquoted; nothing there should start throwing).
std::vector<std::string> split_csv_line(std::string_view line, char sep = ',');

/// Parse helpers with explicit error reporting (throws std::invalid_argument
/// with the offending text on failure).
std::int64_t parse_i64(std::string_view field);
std::uint64_t parse_u64(std::string_view field);
double parse_double(std::string_view field);

/// Row-at-a-time CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os, char sep = ',') : os_(os), sep_(sep) {}

  /// Write one row. Fields containing the separator, a double quote, a
  /// newline or a carriage return are RFC 4180 quoted so the row always
  /// round-trips through split_csv_line.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& os_;
  char sep_;
};

}  // namespace ssdk
