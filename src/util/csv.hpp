// Minimal CSV reading/writing: enough for MSR-Cambridge block traces and for
// dumping benchmark series. No quoting support is needed by those formats;
// fields containing separators are rejected on write.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ssdk {

/// Split one CSV line on `sep`. Trims trailing '\r' (CRLF input).
std::vector<std::string> split_csv_line(std::string_view line, char sep = ',');

/// Parse helpers with explicit error reporting (throws std::invalid_argument
/// with the offending text on failure).
std::int64_t parse_i64(std::string_view field);
std::uint64_t parse_u64(std::string_view field);
double parse_double(std::string_view field);

/// Row-at-a-time CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os, char sep = ',') : os_(os), sep_(sep) {}

  /// Write one row; throws std::invalid_argument if any field contains the
  /// separator or a newline.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& os_;
  char sep_;
};

}  // namespace ssdk
