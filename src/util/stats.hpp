// Streaming and batch statistics used across the simulator and the
// benchmark harness: Welford running moments, reservoir-free percentile
// computation over collected samples, and simple summary containers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ssdk {

/// Numerically stable running mean/variance (Welford). Value type; merging
/// two accumulators is supported so per-thread stats can be combined.
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator into this one (parallel reduction step).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Population variance; 0 if n < 2.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples and answers percentile queries. Intended for
/// latency distributions where the full sample set fits in memory.
///
/// sum/mean/min/max are maintained incrementally and cost O(1); percentile
/// selects order statistics out of place (the sample order is never
/// disturbed, so samples() is always insertion order). Note merge() adds
/// the other set's running sum in one step, so a merged mean can differ
/// from re-accumulating the concatenated samples by rounding only.
class SampleSet {
 public:
  void add(double x) {
    if (samples_.empty()) {
      min_ = max_ = x;
    } else if (x < min_) {
      min_ = x;
    } else if (x > max_) {
      max_ = x;
    }
    sum_ += x;
    samples_.push_back(x);
  }
  void reserve(std::size_t n) { samples_.reserve(n); }
  void merge(const SampleSet& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const {
    return samples_.empty()
               ? 0.0
               : sum_ / static_cast<double>(samples_.size());
  }
  double sum() const { return sum_; }
  double min() const { return samples_.empty() ? 0.0 : min_; }
  double max() const { return samples_.empty() ? 0.0 : max_; }

  /// Linear-interpolated percentile, p in [0, 100]. Requires non-empty set.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Samples in insertion order.
  const std::vector<double>& samples() const { return samples_; }

  /// Replace the sample set wholesale (snapshot restore). The samples are
  /// taken in the given order; the running aggregates are rebuilt by one
  /// left-to-right pass, matching what add() in that order would produce.
  void restore(std::vector<double> samples);

 private:
  // Snapshot note: owners serialize via samples() and restore(); restore()
  // rebuilds every running aggregate from the sample list.
  // ssdk-snap: skip(samples_): serialized through samples()/restore() by owners
  std::vector<double> samples_;
  // ssdk-snap: skip(sum_): running aggregate rebuilt by restore()
  double sum_ = 0.0;
  // ssdk-snap: skip(min_): running aggregate rebuilt by restore()
  double min_ = 0.0;
  // ssdk-snap: skip(max_): running aggregate rebuilt by restore()
  double max_ = 0.0;
  // ssdk-snap: skip(scratch_): percentile scratch buffer, not state
  mutable std::vector<double> scratch_;  ///< percentile selection buffer
};

/// One-line human-readable summary: "n=... mean=... p50=... p99=... max=...".
std::string summarize(const SampleSet& s);

}  // namespace ssdk
