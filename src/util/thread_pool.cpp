#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace ssdk {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t tasks = std::min(pool.size(), (n + chunk - 1) / chunk);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(pool.submit([&] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk);
        if (begin >= n) return;
        const std::size_t end = std::min(begin + chunk, n);
        for (std::size_t i = begin; i < end; ++i) {
          try {
            fn(i);
          } catch (...) {
            std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ssdk
