#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace ssdk {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      util::MutexLock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  util::MutexLock lock(mutex_);
  while (!tasks_.empty() || active_ != 0) idle_cv_.wait(mutex_);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);

  // Nested-safe fan-out. The caller claims chunks alongside the pooled
  // helpers and the return condition is "every index completed", not
  // "every helper ran" — so a parallel_for issued from *inside* a pool
  // task makes progress even when every worker is busy (the caller drains
  // the chunks itself and the queued helpers wake up to nothing). The
  // shared state outlives the call via shared_ptr because late helpers
  // may still probe `next` after the caller has returned.
  struct State {
    std::function<void(std::size_t)> fn;
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> next{0};
    util::Mutex mutex;
    util::CondVar done_cv;
    std::size_t done SSDK_GUARDED_BY(mutex) = 0;
    std::exception_ptr error SSDK_GUARDED_BY(mutex);
  };
  auto st = std::make_shared<State>();
  st->fn = fn;
  st->n = n;
  st->chunk = chunk;

  const auto run_chunks = [](State& s) {
    for (;;) {
      const std::size_t begin = s.next.fetch_add(s.chunk);
      if (begin >= s.n) return;
      const std::size_t end = std::min(begin + s.chunk, s.n);
      std::exception_ptr err;
      for (std::size_t i = begin; i < end && !err; ++i) {
        try {
          s.fn(i);
        } catch (...) {
          err = std::current_exception();
        }
      }
      util::MutexLock lock(s.mutex);
      if (err && !s.error) s.error = err;
      // A chunk that threw still counts every index as settled; other
      // chunks keep running (matching the old semantics: first exception
      // is reported, the rest of the range is best-effort).
      s.done += end - begin;
      if (s.done == s.n) s.done_cv.notify_all();
    }
  };

  const std::size_t total_chunks = (n + chunk - 1) / chunk;
  const std::size_t helpers =
      std::min(pool.size(), total_chunks > 0 ? total_chunks - 1 : 0);
  for (std::size_t t = 0; t < helpers; ++t) {
    pool.submit([st, run_chunks] { run_chunks(*st); });
  }
  run_chunks(*st);
  std::exception_ptr error;
  {
    util::MutexLock lock(st->mutex);
    while (st->done != st->n) st->done_cv.wait(st->mutex);
    error = st->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ssdk
