// Work-queue thread pool and a blocking parallel_for on top of it.
//
// Used by SSDKeeper's label generator (one simulator instance per
// (workload, strategy) pair) and by the dataset-generation benches. The pool
// is deliberately simple: a single mutex-protected FIFO is ample because
// every task here is coarse (milliseconds to seconds of simulation).
//
// All shared state is declared SSDK_GUARDED_BY its mutex (util/mutex.hpp),
// so Clang's -Wthread-safety proves at compile time that no path touches
// the queue or the counters without the lock.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace ssdk {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      util::MutexLock lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Block until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  util::CondVar cv_;       ///< signalled on task enqueue and shutdown
  util::CondVar idle_cv_;  ///< signalled when the pool drains fully
  std::queue<std::function<void()>> tasks_ SSDK_GUARDED_BY(mutex_);
  std::size_t active_ SSDK_GUARDED_BY(mutex_) = 0;
  bool stop_ SSDK_GUARDED_BY(mutex_) = false;
};

/// Run fn(i) for i in [0, n) across the pool; blocks until all complete.
/// Indices are chunked to limit task overhead. Exceptions from fn propagate
/// (the first one encountered is rethrown).
///
/// Safe to call from inside a pool task (nested fan-out): the caller
/// participates in the work and returns when every index has run, so
/// progress never depends on a free worker. Pooled helpers that arrive
/// after the range is drained are no-ops.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk = 1);

/// Completion-order-independent fan-out: run fn(i) for i in [0, n) across
/// the pool and return the results merged by index — results[i] == fn(i)
/// regardless of which worker finished first or how many workers the pool
/// has. This is the merge discipline that makes pooled runs (label sweeps,
/// fleet device workers) bit-reproducible across thread counts: every
/// task writes only its own slot, and the caller consumes the vector in
/// index order. R must be default-constructible and movable. Exceptions
/// from fn propagate (the first one encountered is rethrown).
template <typename F,
          typename R = std::invoke_result_t<F&, std::size_t>>
std::vector<R> parallel_map(ThreadPool& pool, std::size_t n, F&& fn,
                            std::size_t chunk = 1) {
  std::vector<R> results(n);
  parallel_for(
      pool, n, [&](std::size_t i) { results[i] = fn(i); }, chunk);
  return results;
}

}  // namespace ssdk
