#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace ssdk {

namespace {
std::string trim(std::string_view s) {
  const auto* b = s.begin();
  const auto* e = s.end();
  while (b != e && std::isspace(static_cast<unsigned char>(*b))) ++b;
  while (e != b && std::isspace(static_cast<unsigned char>(*(e - 1)))) --e;
  return std::string(b, e);
}
}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string_view tok(argv[i]);
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("config: expected key=value, got '" +
                                  std::string(tok) + "'");
    }
    cfg.set(std::string(tok.substr(0, eq)), std::string(tok.substr(eq + 1)));
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  Config cfg;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("config: bad line '" + line + "' in " +
                                  path);
    }
    cfg.set(trim(trimmed.substr(0, eq)), trim(trimmed.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::string Config::get_string(std::string_view key,
                               std::string fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::int64_t Config::get_int(std::string_view key,
                             std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : parse_i64(it->second);
}

std::uint64_t Config::get_uint(std::string_view key,
                               std::uint64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : parse_u64(it->second);
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : parse_double(it->second);
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config: bad bool '" + it->second + "' for " +
                              std::string(key));
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace ssdk
