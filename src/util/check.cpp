#include "util/check.hpp"

#include <sstream>

namespace ssdk::util {

void raise_invariant_violation(const char* file, int line,
                               const char* condition,
                               const std::string& message) {
  std::ostringstream os;
  os << "invariant violation at " << file << ":" << line << ": "
     << condition;
  if (!message.empty()) os << " — " << message;
  throw InvariantViolation(os.str());
}

}  // namespace ssdk::util
