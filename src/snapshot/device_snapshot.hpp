// Whole-device checkpoints in the SSDKSNP1 container format.
//
// A device snapshot is self-describing: the payload carries the full
// SsdOptions (geometry, timing, FTL config, write buffer, mode flags,
// fault model) followed by the complete mutable device state, so
// load_device() reconstructs a device from the file alone. A restored
// device replays the remainder of its submitted trace bit-identically to
// the original (the determinism-verification protocol in DESIGN.md §12).
//
// Observers (hooks, tracer) are never part of a snapshot — callers attach
// fresh ones after restore.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "snapshot/archive.hpp"
#include "ssd/ssd.hpp"

namespace ssdk::snapshot {

/// Serialize the construction-time options (everything Ssd derives its
/// fixed structure from). Exposed for campaign checkpoints, which embed
/// options fingerprints.
void save_options(StateWriter& w, const ssd::SsdOptions& options);
ssd::SsdOptions load_options(StateReader& r);

/// Full device checkpoint as an SSDKSNP1 byte buffer.
std::vector<char> save_device(const ssd::Ssd& device);

/// Reconstruct a device from save_device() output. Throws SnapshotError
/// (offset + expected/found) on any malformed input.
std::unique_ptr<ssd::Ssd> load_device(std::span<const char> buffer);

/// File variants (container written/validated via the SSDKSNP1 header).
void save_device_file(const std::string& path, const ssd::Ssd& device);
std::unique_ptr<ssd::Ssd> load_device_file(const std::string& path);

}  // namespace ssdk::snapshot
