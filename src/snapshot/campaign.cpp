#include "snapshot/campaign.hpp"

#include <cassert>
#include <filesystem>

#include "snapshot/device_snapshot.hpp"

namespace ssdk::snapshot {

namespace {

// The two config serializers below exist only to feed campaign_fingerprint:
// their bytes are hashed so a checkpoint refuses to resume under a different
// generation config. The configs themselves always come from the caller and
// are never reloaded, so no load_* counterpart exists by design.
// ssdk-snap: ignore-type(LabelGenConfig): write-only fingerprint record, never deserialized
// ssdk-snap: ignore-type(DatasetGenConfig): write-only fingerprint record, never deserialized

void save_label_config(StateWriter& w, const core::LabelGenConfig& c) {
  save_options(w, c.run.ssd);
  w.boolean(c.run.hybrid_page_allocation);
  w.f64(c.run.warmup_fraction);
  w.u64(c.run.reserve_requests);
  w.u32(c.features.max_tenants);
  w.u32(c.features.intensity_levels);
  w.f64(c.features.max_intensity_rps);
  w.f64(c.fork_point);
  w.boolean(c.shared_prefix_fork);
  w.u8(static_cast<std::uint8_t>(c.base_strategy.kind));
  for (const std::uint32_t p : c.base_strategy.parts) w.u32(p);
}

void save_gen_config(StateWriter& w, const core::DatasetGenConfig& c) {
  w.u32(c.tenants);
  w.u64(c.workloads);
  w.f64(c.workload_duration_s);
  w.u64(c.requests_per_workload);
  w.f64(c.min_rate_rps);
  w.f64(c.max_rate_rps);
  w.f64(c.read_band_lo);
  w.f64(c.read_band_hi);
  w.f64(c.write_band_lo);
  w.f64(c.write_band_hi);
  w.u64(c.address_space_pages);
  w.f64(c.mean_pages_lo);
  w.f64(c.mean_pages_hi);
  w.f64(c.seq_lo);
  w.f64(c.seq_hi);
  w.f64(c.zipf_lo);
  w.f64(c.zipf_hi);
  w.u64(c.seed);
  save_label_config(w, c.label);
}

void save_sample(StateWriter& w, const core::LabeledSample& s) {
  w.u32(s.features.intensity_level);
  for (const std::uint8_t d : s.features.read_dominated) w.u8(d);
  for (const double p : s.features.proportion) w.f64(p);
  w.u32(s.label);
  w.vec_f64(s.strategy_total_us);
  w.vec_f64(s.strategy_score);
}

core::LabeledSample load_sample(StateReader& r) {
  core::LabeledSample s;
  s.features.intensity_level = r.u32();
  for (std::uint8_t& d : s.features.read_dominated) d = r.u8();
  for (double& p : s.features.proportion) p = r.f64();
  s.label = r.u32();
  s.strategy_total_us = r.vec_f64();
  s.strategy_score = r.vec_f64();
  return s;
}

/// Shared tail of generate_dataset_resumable and core::generate_dataset:
/// pack samples into the nn::Dataset.
core::GeneratedDataset pack_dataset(std::vector<core::LabeledSample> samples) {
  core::GeneratedDataset out;
  out.samples = std::move(samples);
  nn::Matrix features(out.samples.size(), core::kFeatureDim);
  std::vector<std::uint32_t> labels(out.samples.size());
  for (std::size_t i = 0; i < out.samples.size(); ++i) {
    const auto row = out.samples[i].features.to_vector();
    assert(row.size() == core::kFeatureDim);
    for (std::size_t c = 0; c < core::kFeatureDim; ++c) {
      features(i, c) = row[c];
    }
    labels[i] = out.samples[i].label;
  }
  out.data = nn::Dataset(std::move(features), std::move(labels));
  return out;
}

}  // namespace

std::uint64_t campaign_fingerprint(const core::DatasetGenConfig& config) {
  StateWriter w;
  save_gen_config(w, config);
  return fnv1a(w.buffer());
}

void save_campaign_file(const std::string& path,
                        const core::DatasetGenConfig& config,
                        std::span<const core::LabeledSample> samples) {
  StateWriter payload;
  payload.tag("CAMP");
  payload.u64(campaign_fingerprint(config));
  payload.u64(config.workloads);
  payload.u64(samples.size());
  for (const core::LabeledSample& s : samples) save_sample(payload, s);
  write_container_file(path, PayloadKind::kCampaign, payload.buffer());
}

std::vector<core::LabeledSample> load_campaign_file(
    const std::string& path, const core::DatasetGenConfig& config) {
  const std::vector<char> payload =
      read_container_file(path, PayloadKind::kCampaign);
  StateReader r(payload);
  r.tag("CAMP");
  const std::uint64_t fingerprint = r.u64();
  const std::uint64_t expected = campaign_fingerprint(config);
  if (fingerprint != expected) {
    throw SnapshotError(
        "snapshot: campaign fingerprint mismatch at offset 4: expected " +
            std::to_string(expected) + ", found " +
            std::to_string(fingerprint) +
            " — checkpoint was produced by a different generation config",
        4);
  }
  const std::uint64_t total = r.u64();
  const std::uint64_t completed = r.checked_count(1);
  if (completed > total || total != config.workloads) {
    throw SnapshotError(
        "snapshot: campaign progress out of range: " +
            std::to_string(completed) + " of " + std::to_string(total) +
            " workloads (config expects " +
            std::to_string(config.workloads) + ")",
        r.offset());
  }
  std::vector<core::LabeledSample> samples;
  samples.reserve(completed);
  for (std::uint64_t i = 0; i < completed; ++i) {
    samples.push_back(load_sample(r));
  }
  return samples;
}

core::GeneratedDataset generate_dataset_resumable(
    const core::StrategySpace& space, const core::DatasetGenConfig& config,
    ThreadPool& pool, const CampaignOptions& options) {
  std::vector<core::LabeledSample> samples;
  if (options.resume && !options.checkpoint_path.empty() &&
      std::filesystem::exists(options.checkpoint_path)) {
    samples = load_campaign_file(options.checkpoint_path, config);
  }

  const std::uint64_t batch =
      options.checkpoint_every > 0 ? options.checkpoint_every
                                   : config.workloads;
  while (samples.size() < config.workloads) {
    const std::uint64_t start = samples.size();
    const std::uint64_t count =
        std::min<std::uint64_t>(batch, config.workloads - start);
    samples.resize(start + count);
    // Same per-workload task shape as core::generate_dataset: the
    // synthesized stream is a pure function of (seed, index), so a
    // resumed batch picks up exactly where the checkpoint left off.
    parallel_for(pool, count, [&](std::size_t i) {
      const auto requests = core::synthesize_mix(config, start + i);
      samples[start + i] =
          core::label_workload(requests, space, config.label, nullptr);
    });
    if (!options.checkpoint_path.empty()) {
      save_campaign_file(options.checkpoint_path, config, samples);
    }
    if (options.on_progress) {
      options.on_progress(samples.size(), config.workloads);
    }
  }

  return pack_dataset(std::move(samples));
}

}  // namespace ssdk::snapshot
