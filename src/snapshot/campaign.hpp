// Resumable dataset-generation campaigns.
//
// Generating the training set means labeling hundreds of synthesized
// workloads, each via a 42-strategy sweep — hours of simulation at paper
// scale. A campaign checkpoint captures everything needed to pick the work
// back up after a crash: a fingerprint of the generation config (a resume
// against different parameters must be refused, not silently blended), the
// count of completed workloads, and their LabeledSamples. Workload
// synthesis is deterministic in (config.seed, index), so the remaining
// indices regenerate their inputs from the config alone — the checkpoint
// never stores raw request streams.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/label_gen.hpp"
#include "core/strategy.hpp"
#include "snapshot/archive.hpp"
#include "util/thread_pool.hpp"

namespace ssdk::snapshot {

/// Order-independent-input hash of every generation parameter (device
/// options, feature config, sweep mode, synthesis knobs, seed). Two
/// configs with equal fingerprints synthesize and label identically.
std::uint64_t campaign_fingerprint(const core::DatasetGenConfig& config);

/// Write campaign progress to `path` (SSDKSNP1, kCampaign payload):
/// fingerprint + the first `samples.size()` workloads' labeled results.
void save_campaign_file(const std::string& path,
                        const core::DatasetGenConfig& config,
                        std::span<const core::LabeledSample> samples);

/// Read campaign progress back. Throws SnapshotError on malformed input
/// or when the stored fingerprint does not match `config` (a checkpoint
/// from a different campaign must not seed this one).
std::vector<core::LabeledSample> load_campaign_file(
    const std::string& path, const core::DatasetGenConfig& config);

struct CampaignOptions {
  /// Checkpoint file. Empty disables both checkpointing and resume.
  std::string checkpoint_path;
  /// Workloads labeled between checkpoint writes.
  std::uint64_t checkpoint_every = 64;
  /// Load checkpoint_path (when it exists) and skip completed workloads.
  bool resume = false;
  /// Progress callback after each batch: (completed, total).
  std::function<void(std::uint64_t, std::uint64_t)> on_progress;
};

/// generate_dataset with batch-wise checkpointing. Produces the identical
/// GeneratedDataset as core::generate_dataset for the same config — the
/// batching only bounds how much work a crash can lose.
core::GeneratedDataset generate_dataset_resumable(
    const core::StrategySpace& space, const core::DatasetGenConfig& config,
    ThreadPool& pool, const CampaignOptions& options);

}  // namespace ssdk::snapshot
