// Binary state archive: the primitive layer of the snapshot subsystem.
//
// A StateWriter appends little-endian scalar fields and length-prefixed
// arrays into a flat byte buffer; a StateReader consumes the same stream
// with bounds checking on every read. Components serialize themselves
// field-by-field (never by memcpy of whole structs), so the format has no
// padding bytes and a layout change is caught by the container version,
// not by silent misreads.
//
// Error philosophy: a corrupted or truncated snapshot must never be UB.
// Every decode failure throws SnapshotError carrying the byte offset and
// an expected/found description, so "the file is bad" is diagnosable from
// the message alone.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ssdk::snapshot {

/// Thrown on any malformed snapshot: bad magic, unsupported version,
/// truncated payload, checksum mismatch, or a section tag out of place.
/// `offset` is the byte position in the payload (or file) where decoding
/// failed.
// ssdk-snap: ignore-type(SnapshotError): exception type thrown by serializers, not snapshotted state
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(std::string message, std::uint64_t offset)
      : std::runtime_error(std::move(message)), offset_(offset) {}

  std::uint64_t offset() const { return offset_; }

 private:
  std::uint64_t offset_;
};

/// Appends fields to a growable byte buffer. All integers are encoded
/// little-endian regardless of host order; doubles are encoded via their
/// IEEE-754 bit pattern.
class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// 4-character section tag; the reader checks it by name, which turns a
  /// desynchronized stream into a descriptive error instead of garbage.
  void tag(const char (&name)[5]) {
    buf_.insert(buf_.end(), name, name + 4);
  }

  void bytes(const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Length-prefixed vector of uint64 values.
  void vec_u64(std::span<const std::uint64_t> v) {
    u64(v.size());
    for (const auto x : v) u64(x);
  }
  void vec_u32(std::span<const std::uint32_t> v) {
    u64(v.size());
    for (const auto x : v) u32(x);
  }
  void vec_f64(std::span<const double> v) {
    u64(v.size());
    for (const auto x : v) f64(x);
  }

  const std::vector<char>& buffer() const { return buf_; }
  std::vector<char> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::vector<char> buf_;
};

/// Consumes a byte buffer produced by StateWriter. Every read is bounds
/// checked; running past the end throws SnapshotError with the offset,
/// the number of bytes needed and the number available.
class StateReader {
 public:
  explicit StateReader(std::span<const char> data) : data_(data) {}

  std::uint8_t u8() {
    require(1, "u8");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() { return get_le<std::uint32_t>("u32"); }
  std::uint64_t u64() { return get_le<std::uint64_t>("u64"); }
  std::int64_t i64() {
    return static_cast<std::int64_t>(get_le<std::uint64_t>("i64"));
  }
  double f64() {
    const std::uint64_t bits = get_le<std::uint64_t>("f64");
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) {
      throw SnapshotError("snapshot: invalid bool at offset " +
                              std::to_string(pos_ - 1) + ": expected 0|1, found " +
                              std::to_string(v),
                          pos_ - 1);
    }
    return v != 0;
  }

  /// Check a 4-character section tag; mismatch names both tags.
  void tag(const char (&name)[5]) {
    const std::uint64_t at = pos_;
    require(4, name);
    if (std::memcmp(data_.data() + pos_, name, 4) != 0) {
      const std::string found(data_.data() + pos_, 4);
      throw SnapshotError("snapshot: section tag mismatch at offset " +
                              std::to_string(at) + ": expected '" + name +
                              "', found '" + printable(found) + "'",
                          at);
    }
    pos_ += 4;
  }

  void bytes(void* out, std::size_t n) {
    require(n, "bytes");
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  std::vector<std::uint64_t> vec_u64() {
    const std::uint64_t n = checked_count(sizeof(std::uint64_t));
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = u64();
    return v;
  }
  std::vector<std::uint32_t> vec_u32() {
    const std::uint64_t n = checked_count(sizeof(std::uint32_t));
    std::vector<std::uint32_t> v(n);
    for (auto& x : v) x = u32();
    return v;
  }
  std::vector<double> vec_f64() {
    const std::uint64_t n = checked_count(sizeof(double));
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }

  std::uint64_t offset() const { return pos_; }
  std::uint64_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  /// Escape non-printable bytes for error messages.
  static std::string printable(const std::string& s);

  /// Length prefix whose payload must fit in the remaining bytes — rejects
  /// absurd counts from corrupted streams before any allocation.
  std::uint64_t checked_count(std::size_t element_size) {
    const std::uint64_t at = pos_;
    const std::uint64_t n = u64();
    if (element_size != 0 && n > remaining() / element_size) {
      throw SnapshotError(
          "snapshot: implausible element count at offset " +
              std::to_string(at) + ": " + std::to_string(n) + " x " +
              std::to_string(element_size) + " bytes, only " +
              std::to_string(remaining()) + " bytes remain",
          at);
    }
    return n;
  }

 private:
  void require(std::size_t n, const char* what) const {
    if (data_.size() - pos_ < n) {
      throw SnapshotError("snapshot: truncated at offset " +
                              std::to_string(pos_) + ": reading " + what +
                              " needs " + std::to_string(n) + " bytes, " +
                              std::to_string(data_.size() - pos_) +
                              " available",
                          pos_);
    }
  }

  template <typename T>
  T get_le(const char* what) {
    require(sizeof(T), what);
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const char> data_;
  std::uint64_t pos_ = 0;
};

// --- SSDKSNP1 file container -------------------------------------------------
//
// Layout: 8-byte magic "SSDKSNP1", u32 format version, u32 payload kind,
// u64 payload size, u64 FNV-1a checksum of the payload, then the payload.
// The checksum catches silent mid-file corruption that field-level bounds
// checks would misread as valid data.

inline constexpr char kSnapshotMagic[8] = {'S', 'S', 'D', 'K',
                                           'S', 'N', 'P', '1'};
// Version 2: OPTS carries the power model; campaign samples carry
// per-strategy objective scores.
inline constexpr std::uint32_t kSnapshotVersion = 2;

enum class PayloadKind : std::uint32_t {
  kDevice = 1,    ///< full SSD device state
  kCampaign = 2,  ///< dataset-generation campaign progress
};

std::uint64_t fnv1a(std::span<const char> data);

/// Write magic + header + payload to `os`.
void write_container(std::ostream& os, PayloadKind kind,
                     std::span<const char> payload);
void write_container_file(const std::string& path, PayloadKind kind,
                          std::span<const char> payload);

/// Read and validate a container; returns the payload. Throws
/// SnapshotError (with file offset and expected/found details) on bad
/// magic, unsupported version, wrong payload kind, truncation or checksum
/// mismatch.
std::vector<char> read_container(std::istream& in, PayloadKind expected);
std::vector<char> read_container_file(const std::string& path,
                                      PayloadKind expected);

}  // namespace ssdk::snapshot
