#include "snapshot/archive.hpp"

#include <fstream>
#include <ostream>

namespace ssdk::snapshot {

std::string StateReader::printable(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c >= 0x20 && c < 0x7F) {
      out.push_back(c);
    } else {
      static const char hex[] = "0123456789abcdef";
      out += "\\x";
      out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
      out.push_back(hex[static_cast<unsigned char>(c) & 0xF]);
    }
  }
  return out;
}

std::uint64_t fnv1a(std::span<const char> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// Container header fields after the magic, encoded via StateWriter so the
// endianness rules match the payload's.
constexpr std::uint64_t kHeaderSize =
    sizeof(kSnapshotMagic) + 4 + 4 + 8 + 8;  // magic, version, kind, size, checksum

const char* kind_name(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kDevice:
      return "device";
    case PayloadKind::kCampaign:
      return "campaign";
  }
  return "unknown";
}

}  // namespace

void write_container(std::ostream& os, PayloadKind kind,
                     std::span<const char> payload) {
  StateWriter header;
  header.bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  header.u32(kSnapshotVersion);
  header.u32(static_cast<std::uint32_t>(kind));
  header.u64(payload.size());
  header.u64(fnv1a(payload));
  os.write(header.buffer().data(),
           static_cast<std::streamsize>(header.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

void write_container_file(const std::string& path, PayloadKind kind,
                          std::span<const char> payload) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw SnapshotError("snapshot: cannot open '" + path + "' for writing", 0);
  }
  write_container(os, kind, payload);
  os.flush();
  if (!os) {
    throw SnapshotError("snapshot: write to '" + path + "' failed", 0);
  }
}

std::vector<char> read_container(std::istream& in, PayloadKind expected) {
  std::vector<char> header(kHeaderSize);
  in.read(header.data(), static_cast<std::streamsize>(header.size()));
  const std::uint64_t header_got = static_cast<std::uint64_t>(in.gcount());
  if (header_got < kHeaderSize) {
    throw SnapshotError("snapshot: truncated header: expected " +
                            std::to_string(kHeaderSize) + " bytes, found " +
                            std::to_string(header_got),
                        header_got);
  }

  StateReader r(header);
  char magic[sizeof(kSnapshotMagic)];
  r.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    throw SnapshotError(
        "snapshot: bad magic at offset 0: expected 'SSDKSNP1', found '" +
            StateReader::printable(std::string(magic, sizeof(magic))) + "'",
        0);
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot: unsupported version at offset 8: expected " +
                            std::to_string(kSnapshotVersion) + ", found " +
                            std::to_string(version),
                        8);
  }
  const std::uint32_t kind = r.u32();
  if (kind != static_cast<std::uint32_t>(expected)) {
    throw SnapshotError(
        "snapshot: payload kind mismatch at offset 12: expected " +
            std::to_string(static_cast<std::uint32_t>(expected)) + " (" +
            kind_name(expected) + "), found " + std::to_string(kind),
        12);
  }
  const std::uint64_t payload_size = r.u64();
  const std::uint64_t checksum = r.u64();

  std::vector<char> payload(payload_size);
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint64_t got = static_cast<std::uint64_t>(in.gcount());
  if (got < payload_size) {
    throw SnapshotError("snapshot: truncated payload at offset " +
                            std::to_string(kHeaderSize + got) + ": expected " +
                            std::to_string(payload_size) + " bytes, found " +
                            std::to_string(got),
                        kHeaderSize + got);
  }
  const std::uint64_t actual = fnv1a(payload);
  if (actual != checksum) {
    throw SnapshotError(
        "snapshot: checksum mismatch over payload at offset " +
            std::to_string(kHeaderSize) + ": expected " +
            std::to_string(checksum) + ", found " + std::to_string(actual),
        kHeaderSize);
  }
  return payload;
}

std::vector<char> read_container_file(const std::string& path,
                                      PayloadKind expected) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("snapshot: cannot open '" + path + "' for reading", 0);
  }
  return read_container(in, expected);
}

}  // namespace ssdk::snapshot
