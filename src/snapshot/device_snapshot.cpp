#include "snapshot/device_snapshot.hpp"

#include <sstream>

namespace ssdk::snapshot {

void save_options(StateWriter& w, const ssd::SsdOptions& o) {
  w.tag("OPTS");
  // Geometry.
  w.u32(o.geometry.channels);
  w.u32(o.geometry.chips_per_channel);
  w.u32(o.geometry.planes_per_chip);
  w.u32(o.geometry.blocks_per_plane);
  w.u32(o.geometry.pages_per_block);
  w.u32(o.geometry.page_size_bytes);
  // Timing.
  w.u64(o.timing.read_ns);
  w.u64(o.timing.program_ns);
  w.u64(o.timing.erase_ns);
  w.f64(o.timing.xfer_ns_per_byte);
  w.u64(o.timing.cmd_overhead_ns);
  w.u64(o.timing.read_retry_base_ns);
  w.u64(o.timing.read_retry_step_ns);
  // FTL config.
  w.u32(o.ftl.gc_trigger_free_blocks);
  w.u32(o.ftl.gc_target_free_blocks);
  w.u64(o.ftl.wear_gap_threshold);
  // Write buffer.
  w.u32(o.write_buffer.capacity_pages);
  w.u64(o.write_buffer.dram_ns);
  w.f64(o.write_buffer.high_watermark);
  w.f64(o.write_buffer.low_watermark);
  // Mode flags.
  w.boolean(o.read_priority);
  w.boolean(o.gc_enabled);
  w.boolean(o.multiplane_program);
  w.boolean(o.pipelined_writes);
  // Fault model.
  w.f64(o.faults.read_ber);
  w.f64(o.faults.read_ber_per_pe);
  w.f64(o.faults.program_fail);
  w.f64(o.faults.erase_fail);
  w.u32(o.faults.max_read_retries);
  w.u32(o.faults.program_fails_to_retire);
  w.u32(o.faults.erase_fails_to_retire);
  w.u64(o.faults.max_pe_cycles);
  w.u64(o.faults.seed);
  // Power model. A resumed run must keep its scheduled cut and recovery
  // behaviour: a crash campaign restarted from a checkpoint would
  // otherwise silently drop its pending power-loss injection.
  w.boolean(o.power.enabled);
  w.u64(o.power.cut_at_time);
  w.u64(o.power.cut_at_arrival);
  w.boolean(o.power.auto_recover);
  // Scheduler config. Must travel with the snapshot: load_device
  // reconstructs the Ssd from these options, and the scheduler's own
  // SCHD state section refuses to load under a different policy.
  w.u8(static_cast<std::uint8_t>(o.sched.policy));
  w.u32(o.sched.max_outstanding_requests);
  w.u32(o.sched.drr_quantum_pages);
  w.u64(o.sched.shares.size());
  for (const auto& s : o.sched.shares) {
    w.u32(s.tenant);
    w.u32(s.weight);
    w.u64(s.slo_target_us);
  }
}

ssd::SsdOptions load_options(StateReader& r) {
  r.tag("OPTS");
  ssd::SsdOptions o;
  o.geometry.channels = r.u32();
  o.geometry.chips_per_channel = r.u32();
  o.geometry.planes_per_chip = r.u32();
  o.geometry.blocks_per_plane = r.u32();
  o.geometry.pages_per_block = r.u32();
  o.geometry.page_size_bytes = r.u32();
  o.timing.read_ns = r.u64();
  o.timing.program_ns = r.u64();
  o.timing.erase_ns = r.u64();
  o.timing.xfer_ns_per_byte = r.f64();
  o.timing.cmd_overhead_ns = r.u64();
  o.timing.read_retry_base_ns = r.u64();
  o.timing.read_retry_step_ns = r.u64();
  o.ftl.gc_trigger_free_blocks = r.u32();
  o.ftl.gc_target_free_blocks = r.u32();
  o.ftl.wear_gap_threshold = r.u64();
  o.write_buffer.capacity_pages = r.u32();
  o.write_buffer.dram_ns = r.u64();
  o.write_buffer.high_watermark = r.f64();
  o.write_buffer.low_watermark = r.f64();
  o.read_priority = r.boolean();
  o.gc_enabled = r.boolean();
  o.multiplane_program = r.boolean();
  o.pipelined_writes = r.boolean();
  o.faults.read_ber = r.f64();
  o.faults.read_ber_per_pe = r.f64();
  o.faults.program_fail = r.f64();
  o.faults.erase_fail = r.f64();
  o.faults.max_read_retries = r.u32();
  o.faults.program_fails_to_retire = r.u32();
  o.faults.erase_fails_to_retire = r.u32();
  o.faults.max_pe_cycles = r.u64();
  o.faults.seed = r.u64();
  o.power.enabled = r.boolean();
  o.power.cut_at_time = r.u64();
  o.power.cut_at_arrival = r.u64();
  o.power.auto_recover = r.boolean();
  o.sched.policy = static_cast<sched::Policy>(r.u8());
  o.sched.max_outstanding_requests = r.u32();
  o.sched.drr_quantum_pages = r.u32();
  const std::uint64_t n_shares = r.checked_count(4 + 4 + 8);
  o.sched.shares.clear();
  o.sched.shares.reserve(n_shares);
  for (std::uint64_t i = 0; i < n_shares; ++i) {
    sched::TenantShare s;
    s.tenant = r.u32();
    s.weight = r.u32();
    s.slo_target_us = r.u64();
    o.sched.shares.push_back(s);
  }
  return o;
}

std::vector<char> save_device(const ssd::Ssd& device) {
  StateWriter payload;
  save_options(payload, device.options());
  device.save_state(payload);

  std::ostringstream os(std::ios::binary);
  write_container(os, PayloadKind::kDevice, payload.buffer());
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

std::unique_ptr<ssd::Ssd> load_device(std::span<const char> buffer) {
  std::istringstream in(std::string(buffer.begin(), buffer.end()),
                        std::ios::binary);
  const std::vector<char> payload =
      read_container(in, PayloadKind::kDevice);
  StateReader r(payload);
  auto device = std::make_unique<ssd::Ssd>(load_options(r));
  device->load_state(r);
  if (!r.exhausted()) {
    throw SnapshotError("snapshot: trailing garbage after device state at "
                        "offset " +
                            std::to_string(r.offset()) + ": " +
                            std::to_string(r.remaining()) +
                            " unread bytes",
                        r.offset());
  }
  return device;
}

void save_device_file(const std::string& path, const ssd::Ssd& device) {
  StateWriter payload;
  save_options(payload, device.options());
  device.save_state(payload);
  write_container_file(path, PayloadKind::kDevice, payload.buffer());
}

std::unique_ptr<ssd::Ssd> load_device_file(const std::string& path) {
  const std::vector<char> payload =
      read_container_file(path, PayloadKind::kDevice);
  StateReader r(payload);
  auto device = std::make_unique<ssd::Ssd>(load_options(r));
  device->load_state(r);
  if (!r.exhausted()) {
    throw SnapshotError("snapshot: trailing garbage after device state at "
                        "offset " +
                            std::to_string(r.offset()) + ": " +
                            std::to_string(r.remaining()) +
                            " unread bytes",
                        r.offset());
  }
  return device;
}

}  // namespace ssdk::snapshot
