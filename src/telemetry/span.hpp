// Request-lifecycle span taxonomy.
//
// Every phase a page op (or a whole host request) passes through is one
// TraceEvent: a fixed-width POD so a preallocated ring buffer can hold
// millions of them without touching the allocator on the hot path. Point
// events (decisions) use begin == end.
//
// Taxonomy (DESIGN.md §10):
//   kRequest      arrival -> completion of one host request (per tenant)
//   kQueueWait    dispatch -> first resource grant (recorded only when > 0)
//   kBusTransfer  channel-bus occupancy of one page transfer
//   kFlashRead    flash-array read sense on one execution unit
//   kFlashProgram unit occupancy of one write (transfer + program)
//   kFlashErase   block erase on one execution unit
//   kRetrySense   one read-retry re-sense (detail = attempt number)
//   kBufferHit    DRAM write-buffer absorption / read hit
//   kGcVictim     point: GC round started (detail = victim block | pages<<32)
//   kBlockRetire  point: block taken out of rotation (detail = block)
//   kPageAlloc    point: FTL placed a write (detail = lpn)
//   kKeeperDecision point: keeper window decision (detail = decision index)
//   kMountScan    power-up OOB recovery scan (detail = pages scanned)
//   kRecovery     point: recovery finished (detail = pages recovered)
//   kPowerLoss    point: sudden power cut (detail = torn pages)
//   kVolatileLoss point: per-tenant acked-volatile pages lost at a cut
//                 (detail = page count)
//   kSchedWait    admission wait: arrival -> scheduler grant (recorded
//                 only when > 0, i.e. a finite admission window made the
//                 request queue; detail = grant decision seq)
#pragma once

#include <cstdint>

#include "sim/request.hpp"
#include "util/time_types.hpp"

namespace ssdk::telemetry {

enum class SpanKind : std::uint8_t {
  kRequest,
  kQueueWait,
  kBusTransfer,
  kFlashRead,
  kFlashProgram,
  kFlashErase,
  kRetrySense,
  kBufferHit,
  kGcVictim,
  kBlockRetire,
  kPageAlloc,
  kKeeperDecision,
  kMountScan,
  kRecovery,
  kPowerLoss,
  kVolatileLoss,
  kSchedWait,
};

/// Traffic class of the op a span belongs to (mirrors the device's op
/// kinds; kNone for events not tied to one op).
enum class OpClass : std::uint8_t {
  kNone,
  kHostRead,
  kHostWrite,
  kHostTrim,
  kGcRead,
  kGcWrite,
  kErase,
  kFlushWrite,
  kHostFlush,  ///< host durability barrier (fsync-style)
};

inline constexpr std::uint64_t kNoRequestId = ~std::uint64_t{0};
inline constexpr std::uint32_t kNoResource = ~std::uint32_t{0};

struct TraceEvent {
  SimTime begin = 0;
  SimTime end = 0;
  std::uint64_t request_id = kNoRequestId;  ///< host request id, if any
  std::uint64_t detail = 0;  ///< kind-specific payload (lpn, block, ...)
  std::uint32_t channel = kNoResource;
  std::uint32_t unit = kNoResource;  ///< flash execution unit
  sim::TenantId tenant = 0;
  SpanKind kind = SpanKind::kRequest;
  OpClass op = OpClass::kNone;

  Duration duration() const { return end - begin; }

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

const char* span_kind_name(SpanKind kind);
const char* op_class_name(OpClass op);

}  // namespace ssdk::telemetry
