#include "telemetry/binary_trace.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ssdk::telemetry {

namespace {

constexpr char kMagic[8] = {'S', 'S', 'D', 'K', 'T', 'R', 'B', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kRecordBytes = 46;

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void write_binary_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::uint64_t dropped) {
  std::string buf;
  buf.reserve(32 + events.size() * kRecordBytes);
  buf.append(kMagic, sizeof kMagic);
  put_u32(buf, kVersion);
  put_u32(buf, kRecordBytes);
  put_u64(buf, events.size());
  put_u64(buf, dropped);
  for (const auto& e : events) {
    put_u64(buf, e.begin);
    put_u64(buf, e.end);
    put_u64(buf, e.request_id);
    put_u64(buf, e.detail);
    put_u32(buf, e.channel);
    put_u32(buf, e.unit);
    put_u32(buf, e.tenant);
    buf.push_back(static_cast<char>(e.kind));
    buf.push_back(static_cast<char>(e.op));
  }
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void write_binary_trace(std::ostream& os, const Tracer& tracer) {
  const auto events = tracer.events();
  write_binary_trace(os, events, tracer.dropped());
}

void write_binary_trace_file(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("telemetry: cannot open " + path);
  write_binary_trace(out, tracer);
}

BinaryTrace read_binary_trace(std::istream& in) {
  std::array<char, 32> header{};
  if (!in.read(header.data(), header.size())) {
    throw std::runtime_error("telemetry: truncated trace header");
  }
  if (std::memcmp(header.data(), kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("telemetry: bad trace magic");
  }
  const auto* h = reinterpret_cast<const unsigned char*>(header.data());
  const std::uint32_t version = get_u32(h + 8);
  const std::uint32_t record_bytes = get_u32(h + 12);
  if (version != kVersion || record_bytes != kRecordBytes) {
    throw std::runtime_error("telemetry: unsupported trace version");
  }
  BinaryTrace out;
  const std::uint64_t count = get_u64(h + 16);
  out.dropped = get_u64(h + 24);
  out.events.reserve(count);
  std::array<char, kRecordBytes> rec{};
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!in.read(rec.data(), rec.size())) {
      throw std::runtime_error("telemetry: truncated trace body");
    }
    const auto* p = reinterpret_cast<const unsigned char*>(rec.data());
    TraceEvent e;
    e.begin = get_u64(p);
    e.end = get_u64(p + 8);
    e.request_id = get_u64(p + 16);
    e.detail = get_u64(p + 24);
    e.channel = get_u32(p + 32);
    e.unit = get_u32(p + 36);
    e.tenant = get_u32(p + 40);
    e.kind = static_cast<SpanKind>(p[44]);
    e.op = static_cast<OpClass>(p[45]);
    out.events.push_back(e);
  }
  return out;
}

BinaryTrace read_binary_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("telemetry: cannot open " + path);
  return read_binary_trace(in);
}

std::size_t first_divergence(std::span<const TraceEvent> a,
                             std::span<const TraceEvent> b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) return i;
  }
  return a.size() == b.size() ? kNoDivergence : n;
}

}  // namespace ssdk::telemetry
