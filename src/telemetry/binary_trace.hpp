// Compact binary trace format (".ssdktrc"): a fixed 32-byte header
// followed by fixed-width little-endian event records (46 bytes each), so
// two runs of the same workload can be diffed byte-for-byte or event-by-
// event without JSON parsing. Keeper decisions are not serialized (they
// carry strings and belong to the Chrome export); the reader returns
// exactly the span stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "telemetry/tracer.hpp"

namespace ssdk::telemetry {

struct BinaryTrace {
  std::vector<TraceEvent> events;
  /// Events the recording ring lost (wrap or drop) before export.
  std::uint64_t dropped = 0;
};

void write_binary_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::uint64_t dropped = 0);
void write_binary_trace(std::ostream& os, const Tracer& tracer);
void write_binary_trace_file(const std::string& path, const Tracer& tracer);

/// Throws std::runtime_error on bad magic, version or truncation.
BinaryTrace read_binary_trace(std::istream& in);
BinaryTrace read_binary_trace_file(const std::string& path);

/// Index of the first differing event between two traces, or npos when one
/// is a prefix of the other of equal length (identical). Lengths differing
/// with a common prefix report the shorter length.
std::size_t first_divergence(std::span<const TraceEvent> a,
                             std::span<const TraceEvent> b);
inline constexpr std::size_t kNoDivergence = ~std::size_t{0};

}  // namespace ssdk::telemetry
