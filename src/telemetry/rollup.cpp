#include "telemetry/rollup.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "sched/fairness.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace ssdk::telemetry {

namespace {
struct Cell {
  SampleSet read_us;
  SampleSet write_us;
  std::uint64_t conflicts = 0;
  Duration wait_ns = 0;
  std::uint64_t volatile_lost = 0;
  std::uint64_t sched_waits = 0;
  Duration sched_wait_ns = 0;
};
}  // namespace

std::vector<RollupRow> build_rollup(std::span<const TraceEvent> events,
                                    const RollupConfig& config) {
  if (config.window_ns == 0) {
    throw std::invalid_argument("rollup: window_ns must be positive");
  }
  const Duration w = config.window_ns;
  // (window index, tenant) -> accumulators; std::map keeps output order
  // deterministic (by window, then tenant).
  std::map<std::pair<std::uint64_t, sim::TenantId>, Cell> cells;
  std::map<std::uint64_t, Duration> bus_busy;
  for (const auto& e : events) {
    switch (e.kind) {
      case SpanKind::kRequest: {
        if (e.op == OpClass::kHostTrim) break;  // metadata-only
        Cell& c = cells[{e.end / w, e.tenant}];
        const double us = to_us(e.duration());
        if (e.op == OpClass::kHostRead) {
          c.read_us.add(us);
        } else {
          c.write_us.add(us);
        }
        break;
      }
      case SpanKind::kQueueWait: {
        Cell& c = cells[{e.end / w, e.tenant}];
        ++c.conflicts;
        c.wait_ns += e.duration();
        break;
      }
      case SpanKind::kBusTransfer: {
        if (e.end <= e.begin) break;
        // A transfer can straddle a window edge; clip it to each window
        // it overlaps so utilization never exceeds 1.
        for (std::uint64_t win = e.begin / w; win <= (e.end - 1) / w;
             ++win) {
          const SimTime lo = std::max<SimTime>(e.begin, win * w);
          const SimTime hi = std::min<SimTime>(e.end, (win + 1) * w);
          if (hi > lo) bus_busy[win] += hi - lo;
        }
        break;
      }
      case SpanKind::kVolatileLoss: {
        Cell& c = cells[{e.end / w, e.tenant}];
        c.volatile_lost += e.detail;
        break;
      }
      case SpanKind::kSchedWait: {
        Cell& c = cells[{e.end / w, e.tenant}];
        ++c.sched_waits;
        c.sched_wait_ns += e.duration();
        break;
      }
      default:
        break;
    }
  }

  std::vector<RollupRow> rows;
  rows.reserve(cells.size());
  const double denom =
      static_cast<double>(w) * std::max<std::uint32_t>(config.channels, 1);
  for (const auto& [key, c] : cells) {
    RollupRow r;
    r.window_start = key.first * w;
    r.tenant = key.second;
    r.reads = c.read_us.count();
    r.writes = c.write_us.count();
    if (!c.read_us.empty()) {
      r.read_mean_us = c.read_us.mean();
      r.read_p99_us = c.read_us.percentile(99.0);
    }
    if (!c.write_us.empty()) {
      r.write_mean_us = c.write_us.mean();
      r.write_p99_us = c.write_us.percentile(99.0);
    }
    r.iops = static_cast<double>(r.reads + r.writes) /
             (static_cast<double>(w) / 1e9);
    r.conflicts = c.conflicts;
    r.wait_ns = c.wait_ns;
    r.volatile_lost = c.volatile_lost;
    r.sched_waits = c.sched_waits;
    r.sched_wait_ns = c.sched_wait_ns;
    const auto it = bus_busy.find(key.first);
    if (it != bus_busy.end()) {
      r.bus_util = static_cast<double>(it->second) / denom;
    }
    rows.push_back(r);
  }
  return rows;
}

RollupSummary summarize_rollup(std::span<const RollupRow> rows) {
  RollupSummary s;
  // Distinct windows that saw traffic (rows are ordered by window, then
  // tenant) and per-window bus utilization for the peak/mean stats.
  std::uint64_t windows = 0;
  SimTime last_window = 0;
  bool any_window = false;
  double weighted_read_p99 = 0.0;
  double weighted_write_p99 = 0.0;
  double weighted_bus = 0.0;
  std::uint64_t bus_weight = 0;
  // Per-tenant completed-request counts for the throughput-share Jain
  // index; std::map for deterministic order (value order is irrelevant to
  // Jain, but determinism everywhere is cheaper than reasoning about it).
  std::map<sim::TenantId, std::uint64_t> tenant_requests;
  for (const auto& r : rows) {
    if (!any_window || r.window_start != last_window) {
      ++windows;
      last_window = r.window_start;
      any_window = true;
    }
    s.reads += r.reads;
    s.writes += r.writes;
    s.conflicts += r.conflicts;
    weighted_read_p99 += r.read_p99_us * static_cast<double>(r.reads);
    weighted_write_p99 += r.write_p99_us * static_cast<double>(r.writes);
    weighted_bus += r.bus_util * static_cast<double>(r.reads + r.writes);
    bus_weight += r.reads + r.writes;
    s.peak_bus_util = std::max(s.peak_bus_util, r.bus_util);
    s.sched_waits += r.sched_waits;
    s.sched_wait_ns += r.sched_wait_ns;
    if (r.reads + r.writes > 0) {
      tenant_requests[r.tenant] += r.reads + r.writes;
    }
    const double window_iops = r.iops;
    s.iops += window_iops;  // summed per row; normalized below
  }
  std::vector<double> shares;
  shares.reserve(tenant_requests.size());
  for (const auto& [tenant, count] : tenant_requests) {
    shares.push_back(static_cast<double>(count));
  }
  s.tenant_share_jain = sched::jain_index(shares);
  if (s.reads > 0) weighted_read_p99 /= static_cast<double>(s.reads);
  if (s.writes > 0) weighted_write_p99 /= static_cast<double>(s.writes);
  s.read_p99_us = weighted_read_p99;
  s.write_p99_us = weighted_write_p99;
  if (bus_weight > 0) {
    s.mean_bus_util = weighted_bus / static_cast<double>(bus_weight);
  }
  // Each row's iops is requests/window-second for one tenant, so summing
  // rows and dividing by the distinct window count yields the device's
  // mean requests/s over active windows.
  s.iops = windows > 0 ? s.iops / static_cast<double>(windows) : 0.0;
  return s;
}

void write_rollup_csv(std::ostream& os, std::span<const RollupRow> rows) {
  CsvWriter writer(os);
  writer.write_row({"window_start_us", "tenant", "reads", "writes",
                    "read_mean_us", "read_p99_us", "write_mean_us",
                    "write_p99_us", "iops", "conflicts", "wait_us",
                    "bus_util", "volatile_lost", "sched_waits",
                    "sched_wait_us"});
  for (const auto& r : rows) {
    writer.write_row({std::to_string(to_us(r.window_start)),
                      std::to_string(r.tenant), std::to_string(r.reads),
                      std::to_string(r.writes),
                      std::to_string(r.read_mean_us),
                      std::to_string(r.read_p99_us),
                      std::to_string(r.write_mean_us),
                      std::to_string(r.write_p99_us),
                      std::to_string(r.iops), std::to_string(r.conflicts),
                      std::to_string(to_us(r.wait_ns)),
                      std::to_string(r.bus_util),
                      std::to_string(r.volatile_lost),
                      std::to_string(r.sched_waits),
                      std::to_string(to_us(r.sched_wait_ns))});
  }
}

void write_rollup_csv_file(const std::string& path,
                           std::span<const RollupRow> rows) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("rollup: cannot open " + path);
  write_rollup_csv(out, rows);
}

}  // namespace ssdk::telemetry
