#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <stdexcept>

namespace ssdk::telemetry {

namespace {

constexpr int kPidBuses = 1;
constexpr int kPidUnits = 2;
constexpr int kPidTenants = 3;
constexpr int kPidKeeper = 4;

/// Microsecond timestamp with nanosecond precision (ts/dur units of the
/// trace-event format are microseconds).
std::string us(SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

void meta(std::ostream& os, const char* what, int pid, std::uint64_t tid,
          const std::string& name, bool thread) {
  os << "{\"ph\":\"M\",\"name\":\"" << what << "\",\"pid\":" << pid;
  if (thread) os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}},\n";
}

void common_args(std::ostream& os, const TraceEvent& e) {
  os << "\"args\":{\"tenant\":" << e.tenant << ",\"op\":\""
     << op_class_name(e.op) << "\"";
  if (e.request_id != kNoRequestId) os << ",\"request\":" << e.request_id;
  if (e.detail != 0) os << ",\"detail\":" << e.detail;
  os << "}";
}

void complete_event(std::ostream& os, const TraceEvent& e, int pid,
                    std::uint64_t tid) {
  os << "{\"ph\":\"X\",\"name\":\"" << span_kind_name(e.kind)
     << "\",\"cat\":\"" << op_class_name(e.op) << "\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"ts\":" << us(e.begin)
     << ",\"dur\":" << us(e.duration()) << ",";
  common_args(os, e);
  os << "},\n";
}

void instant_event(std::ostream& os, const TraceEvent& e, int pid,
                   std::uint64_t tid) {
  os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << span_kind_name(e.kind)
     << "\",\"cat\":\"decision\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << us(e.begin) << ",";
  common_args(os, e);
  os << "},\n";
}

/// Async begin/end pair: concurrent spans on one tenant row stack instead
/// of colliding. `id` must be unique among in-flight async events.
void async_event(std::ostream& os, const TraceEvent& e, std::uint64_t id) {
  const char* name = span_kind_name(e.kind);
  os << "{\"ph\":\"b\",\"cat\":\"lifecycle\",\"name\":\"" << name
     << "\",\"id\":" << id << ",\"pid\":" << kPidTenants
     << ",\"tid\":" << e.tenant << ",\"ts\":" << us(e.begin) << ",";
  common_args(os, e);
  os << "},\n";
  os << "{\"ph\":\"e\",\"cat\":\"lifecycle\",\"name\":\"" << name
     << "\",\"id\":" << id << ",\"pid\":" << kPidTenants
     << ",\"tid\":" << e.tenant << ",\"ts\":" << us(e.end) << "},\n";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceEvent> events,
                        std::span<const KeeperDecision> decisions) {
  os << "{\"traceEvents\":[\n";

  meta(os, "process_name", kPidBuses, 0, "channel buses", false);
  meta(os, "process_name", kPidUnits, 0, "flash units", false);
  meta(os, "process_name", kPidTenants, 0, "tenants", false);
  if (!decisions.empty()) {
    meta(os, "process_name", kPidKeeper, 0, "keeper", false);
    meta(os, "thread_name", kPidKeeper, 0, "decisions", true);
  }
  std::set<std::uint32_t> channels, units;
  std::set<sim::TenantId> tenants;
  for (const auto& e : events) {
    if (e.channel != kNoResource) channels.insert(e.channel);
    if (e.unit != kNoResource) units.insert(e.unit);
    if (e.kind == SpanKind::kRequest || e.kind == SpanKind::kQueueWait ||
        e.kind == SpanKind::kBufferHit) {
      tenants.insert(e.tenant);
    }
  }
  for (const auto ch : channels) {
    meta(os, "thread_name", kPidBuses, ch, "channel " + std::to_string(ch),
         true);
  }
  for (const auto u : units) {
    meta(os, "thread_name", kPidUnits, u, "unit " + std::to_string(u), true);
  }
  for (const auto t : tenants) {
    meta(os, "thread_name", kPidTenants, t,
         t == sim::kInternalTenant ? "internal (GC)"
                                   : "tenant " + std::to_string(t),
         true);
  }

  std::uint64_t async_id = 0;
  for (const auto& e : events) {
    switch (e.kind) {
      case SpanKind::kBusTransfer:
        complete_event(os, e, kPidBuses, e.channel);
        break;
      case SpanKind::kFlashRead:
      case SpanKind::kFlashProgram:
      case SpanKind::kFlashErase:
      case SpanKind::kRetrySense:
        complete_event(os, e, kPidUnits, e.unit);
        break;
      case SpanKind::kGcVictim:
      case SpanKind::kBlockRetire:
      case SpanKind::kPageAlloc:
      case SpanKind::kRecovery:
      case SpanKind::kPowerLoss:
      case SpanKind::kVolatileLoss:
        instant_event(os, e, kPidUnits,
                      e.unit == kNoResource ? 0 : e.unit);
        break;
      case SpanKind::kMountScan:
        complete_event(os, e, kPidUnits,
                       e.unit == kNoResource ? 0 : e.unit);
        break;
      case SpanKind::kRequest:
      case SpanKind::kQueueWait:
      case SpanKind::kBufferHit:
        async_event(os, e, async_id++);
        break;
      case SpanKind::kKeeperDecision:
        break;  // rendered from the decision side-list below
    }
  }

  for (const auto& d : decisions) {
    os << "{\"ph\":\"i\",\"s\":\"g\",\"name\":\"strategy "
       << json_escape(d.strategy) << "\",\"cat\":\"keeper\",\"pid\":"
       << kPidKeeper << ",\"tid\":0,\"ts\":" << us(d.time)
       << ",\"args\":{\"strategy\":\"" << json_escape(d.strategy)
       << "\",\"features\":\"" << json_escape(d.features)
       << "\",\"changed\":" << (d.changed ? "true" : "false") << "}},\n";
  }

  // Trailing element so every real event line can end with a comma.
  os << "{\"ph\":\"M\",\"name\":\"trace_done\",\"pid\":" << kPidBuses
     << ",\"args\":{}}\n]}\n";
}

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  const auto events = tracer.events();
  write_chrome_trace(os, events, tracer.decisions());
}

void write_chrome_trace_file(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("telemetry: cannot open " + path);
  write_chrome_trace(out, tracer);
}

}  // namespace ssdk::telemetry
