// Chrome trace-event JSON export (viewable in chrome://tracing and
// https://ui.perfetto.dev).
//
// Track layout:
//   pid 1 "channel buses"  one thread per channel; bus-transfer spans
//                          (exclusive by construction, so plain X events)
//   pid 2 "flash units"    one thread per execution unit; array reads,
//                          programs, erases, retry senses + GC/retire/
//                          placement point events
//   pid 3 "tenants"        one thread per tenant; request lifecycle,
//                          queue waits and buffer hits as async (b/e)
//                          events so concurrent requests stack
//   pid 4 "keeper"         strategy decisions as instant events with the
//                          window's features and chosen strategy in args
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "telemetry/tracer.hpp"

namespace ssdk::telemetry {

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceEvent> events,
                        std::span<const KeeperDecision> decisions);
void write_chrome_trace(std::ostream& os, const Tracer& tracer);
void write_chrome_trace_file(const std::string& path, const Tracer& tracer);

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace ssdk::telemetry
