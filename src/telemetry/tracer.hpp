// Low-overhead lifecycle tracer: a preallocated ring buffer of TraceEvents
// plus a small side list of keeper decisions (rare, carry strings).
//
// The device and FTL hold a `Tracer*` that is null when telemetry is off;
// every instrumentation site is `if (tracer_) tracer_->record(...)`, so a
// disabled run costs one predictable branch per site and allocates
// nothing. Recording never perturbs simulation state or timing — traced
// and untraced runs produce bit-identical schedules (tested).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "telemetry/span.hpp"

namespace ssdk::telemetry {

struct TelemetryConfig {
  /// Ring capacity in events. Sizing: one host write in held-bus mode
  /// emits up to 4 events (alloc, wait, bus, program), a read up to 4, so
  /// the default ~1M events covers roughly 250k requests of full detail
  /// at 48 bytes/event ≈ 48 MB.
  std::size_t capacity_events = 1u << 20;
  /// true: the ring overwrites the oldest events when full (keep the tail
  /// of the run); false: new events are dropped (keep the head).
  bool overwrite_oldest = true;
  /// Record FTL placement decisions (kPageAlloc) — one point event per
  /// write; off by default to keep the ring for timing spans.
  bool ftl_decisions = false;
};

/// One keeper window decision, mirrored into the trace so strategy
/// switches are visible on the timeline next to the latency they caused.
struct KeeperDecision {
  SimTime time = 0;
  std::string strategy;  ///< strategy name, e.g. "4:4"
  std::string features;  ///< MixFeatures::describe() of the window
  bool changed = false;  ///< did the allocation actually switch?
};

class Tracer {
 public:
  explicit Tracer(TelemetryConfig config = {});

  const TelemetryConfig& config() const { return config_; }

  /// Append one event (O(1), no allocation after construction).
  void record(const TraceEvent& event);

  /// Convenience for point events (begin == end).
  void record_point(SimTime at, SpanKind kind, sim::TenantId tenant,
                    std::uint32_t channel, std::uint32_t unit,
                    std::uint64_t detail);

  void record_decision(KeeperDecision decision);

  /// Events in chronological record order (oldest surviving first).
  std::vector<TraceEvent> events() const;
  const std::vector<KeeperDecision>& decisions() const { return decisions_; }

  std::size_t size() const { return size_; }
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring wrap/drop: recorded() - size().
  std::uint64_t dropped() const { return recorded_ - size_; }

  void clear();

 private:
  // Concurrency: a Tracer is owner-partitioned, not mutex-protected —
  // each device (and each fleet worker's devices) writes to its own
  // tracer, and readers consume it only after the owning run returns.
  // Thread-safety annotations (SSDK_GUARDED_BY) would assert a locking
  // discipline this type neither has nor needs; do not share one tracer
  // across concurrently-running devices.
  TelemetryConfig config_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write slot (overwrite mode)
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::vector<KeeperDecision> decisions_;
};

}  // namespace ssdk::telemetry
