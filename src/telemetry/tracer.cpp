#include "telemetry/tracer.hpp"

namespace ssdk::telemetry {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kBusTransfer: return "bus_transfer";
    case SpanKind::kFlashRead: return "flash_read";
    case SpanKind::kFlashProgram: return "flash_program";
    case SpanKind::kFlashErase: return "flash_erase";
    case SpanKind::kRetrySense: return "retry_sense";
    case SpanKind::kBufferHit: return "buffer_hit";
    case SpanKind::kGcVictim: return "gc_victim";
    case SpanKind::kBlockRetire: return "block_retire";
    case SpanKind::kPageAlloc: return "page_alloc";
    case SpanKind::kKeeperDecision: return "keeper_decision";
    case SpanKind::kMountScan: return "mount_scan";
    case SpanKind::kRecovery: return "recovery";
    case SpanKind::kPowerLoss: return "power_loss";
    case SpanKind::kVolatileLoss: return "volatile_loss";
    case SpanKind::kSchedWait: return "sched_wait";
  }
  return "unknown";
}

const char* op_class_name(OpClass op) {
  switch (op) {
    case OpClass::kNone: return "none";
    case OpClass::kHostRead: return "host_read";
    case OpClass::kHostWrite: return "host_write";
    case OpClass::kHostTrim: return "host_trim";
    case OpClass::kGcRead: return "gc_read";
    case OpClass::kGcWrite: return "gc_write";
    case OpClass::kErase: return "erase";
    case OpClass::kFlushWrite: return "flush_write";
    case OpClass::kHostFlush: return "host_flush";
  }
  return "unknown";
}

Tracer::Tracer(TelemetryConfig config) : config_(config) {
  if (config_.capacity_events == 0) config_.capacity_events = 1;
  ring_.resize(config_.capacity_events);
}

void Tracer::record(const TraceEvent& event) {
  ++recorded_;
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = event;
    ++size_;
    return;
  }
  if (!config_.overwrite_oldest) return;  // ring full: drop the newcomer
  ring_[head_] = event;  // overwrite the oldest; head advances
  head_ = (head_ + 1) % ring_.size();
}

void Tracer::record_point(SimTime at, SpanKind kind, sim::TenantId tenant,
                          std::uint32_t channel, std::uint32_t unit,
                          std::uint64_t detail) {
  TraceEvent e;
  e.begin = at;
  e.end = at;
  e.kind = kind;
  e.tenant = tenant;
  e.channel = channel;
  e.unit = unit;
  e.detail = detail;
  record(e);
}

void Tracer::record_decision(KeeperDecision decision) {
  record_point(decision.time, SpanKind::kKeeperDecision, 0, kNoResource,
               kNoResource, decisions_.size());
  decisions_.push_back(std::move(decision));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  decisions_.clear();
}

}  // namespace ssdk::telemetry
