// Rolling-window rollups over a recorded trace: per-tenant IOPS and
// latency plus conflict/utilization counters per fixed window, exported as
// CSV for plotting. This is the "how did conflicts evolve across the run"
// view Figures 2/5 argue about, computed offline from the span stream so
// the simulation hot path never touches it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "telemetry/tracer.hpp"

namespace ssdk::telemetry {

struct RollupConfig {
  Duration window_ns = 100 * kMillisecond;
  /// Channel count of the device the trace came from (bus-utilization
  /// denominator).
  std::uint32_t channels = 8;
};

/// One (window, tenant) cell. Requests are bucketed by completion time;
/// queue waits by grant time; bus busy time is clipped to the window.
struct RollupRow {
  SimTime window_start = 0;
  sim::TenantId tenant = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double read_mean_us = 0.0;
  double read_p99_us = 0.0;
  double write_mean_us = 0.0;
  double write_p99_us = 0.0;
  /// Completed requests per second of window.
  double iops = 0.0;
  /// Page ops of this tenant that waited for a resource (queue-wait spans
  /// are only emitted when the wait is non-zero — the device's "access
  /// conflicts" seen per window).
  std::uint64_t conflicts = 0;
  Duration wait_ns = 0;  ///< summed queue-wait time
  /// Device-wide bus-busy fraction of the window (same value on every
  /// tenant row of one window).
  double bus_util = 0.0;
  /// Acked-volatile pages this tenant lost to power cuts in this window
  /// (kVolatileLoss point events, bucketed by cut time).
  std::uint64_t volatile_lost = 0;
};

std::vector<RollupRow> build_rollup(std::span<const TraceEvent> events,
                                    const RollupConfig& config);

/// CSV with a fixed header; one row per (window, tenant).
void write_rollup_csv(std::ostream& os, std::span<const RollupRow> rows);
void write_rollup_csv_file(const std::string& path,
                           std::span<const RollupRow> rows);

}  // namespace ssdk::telemetry
