// Rolling-window rollups over a recorded trace: per-tenant IOPS and
// latency plus conflict/utilization counters per fixed window, exported as
// CSV for plotting. This is the "how did conflicts evolve across the run"
// view Figures 2/5 argue about, computed offline from the span stream so
// the simulation hot path never touches it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "telemetry/tracer.hpp"

namespace ssdk::telemetry {

struct RollupConfig {
  Duration window_ns = 100 * kMillisecond;
  /// Channel count of the device the trace came from (bus-utilization
  /// denominator).
  std::uint32_t channels = 8;
};

/// One (window, tenant) cell. Requests are bucketed by completion time;
/// queue waits by grant time; bus busy time is clipped to the window.
struct RollupRow {
  SimTime window_start = 0;
  sim::TenantId tenant = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double read_mean_us = 0.0;
  double read_p99_us = 0.0;
  double write_mean_us = 0.0;
  double write_p99_us = 0.0;
  /// Completed requests per second of window.
  double iops = 0.0;
  /// Page ops of this tenant that waited for a resource (queue-wait spans
  /// are only emitted when the wait is non-zero — the device's "access
  /// conflicts" seen per window).
  std::uint64_t conflicts = 0;
  Duration wait_ns = 0;  ///< summed queue-wait time
  /// Device-wide bus-busy fraction of the window (same value on every
  /// tenant row of one window).
  double bus_util = 0.0;
  /// Acked-volatile pages this tenant lost to power cuts in this window
  /// (kVolatileLoss point events, bucketed by cut time).
  std::uint64_t volatile_lost = 0;
  /// Requests of this tenant that waited for a scheduler admission grant
  /// (kSchedWait spans, bucketed by grant time) and their summed wait.
  /// Zero unless the device ran with a finite admission window.
  std::uint64_t sched_waits = 0;
  Duration sched_wait_ns = 0;
};

std::vector<RollupRow> build_rollup(std::span<const TraceEvent> events,
                                    const RollupConfig& config);

/// Device-level aggregation of a rollup — the load signal the fleet tier
/// reads when ranking devices for hotness and migration targets. All
/// fields derive from the rollup rows alone, so one device's summary is
/// independent of every other device (and of thread scheduling).
struct RollupSummary {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t conflicts = 0;
  /// Completed requests per second, averaged over the windows that saw
  /// traffic.
  double iops = 0.0;
  /// Request-weighted mean of the per-window p99s — a rolling-window tail
  /// signal that reacts to sustained congestion rather than one bad
  /// window.
  double read_p99_us = 0.0;
  double write_p99_us = 0.0;
  /// Bus utilization over windows with traffic: traffic-weighted mean and
  /// the single worst window.
  double mean_bus_util = 0.0;
  double peak_bus_util = 0.0;
  /// Scheduler admission waits summed over the trace (zero without a
  /// finite admission window).
  std::uint64_t sched_waits = 0;
  Duration sched_wait_ns = 0;
  /// Jain fairness index over per-tenant completed-request counts: 1 when
  /// every host tenant got an equal share of the device's throughput, 1/n
  /// when one tenant monopolized it. 0 on an idle trace.
  double tenant_share_jain = 0.0;

  /// Scalar heat score the fleet tier ranks devices by: the summed
  /// weighted read/write p99 (us). Zero on an idle device.
  double heat() const { return read_p99_us + write_p99_us; }
};

/// Collapse per-(window, tenant) rows into one device summary.
RollupSummary summarize_rollup(std::span<const RollupRow> rows);

/// CSV with a fixed header; one row per (window, tenant).
void write_rollup_csv(std::ostream& os, std::span<const RollupRow> rows);
void write_rollup_csv_file(const std::string& path,
                           std::span<const RollupRow> rows);

}  // namespace ssdk::telemetry
