#include "sim/geometry.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace ssdk::sim {

Geometry Geometry::paper() {
  return Geometry{};  // defaults are Table I
}

Geometry Geometry::small() {
  Geometry g;
  g.blocks_per_plane = 256;
  g.pages_per_block = 64;
  return g;
}

Geometry Geometry::tiny() {
  Geometry g;
  g.channels = 2;
  g.chips_per_channel = 1;
  g.planes_per_chip = 1;
  g.blocks_per_plane = 8;
  g.pages_per_block = 8;
  return g;
}

void Geometry::validate() const {
  if (channels == 0 || chips_per_channel == 0 || planes_per_chip == 0 ||
      blocks_per_plane == 0 || pages_per_block == 0 ||
      page_size_bytes == 0) {
    throw std::invalid_argument("geometry: all dimensions must be non-zero");
  }
}

std::string Geometry::describe() const {
  std::ostringstream os;
  os << channels << " channels x " << chips_per_channel << " chips x "
     << planes_per_chip << " planes x " << blocks_per_plane << " blocks x "
     << pages_per_block << " pages x " << page_size_bytes << " B = "
     << static_cast<double>(capacity_bytes()) / (1024.0 * 1024.0 * 1024.0)
     << " GiB";
  return os.str();
}

}  // namespace ssdk::sim
