// Discrete-event kernel: a calendar queue of typed events ordered by
// (time, sequence). Sequence numbers make ordering of simultaneous events
// deterministic, which in turn makes every simulation bit-reproducible.
//
// (time, seq) is a *unique* total order — no two events ever compare
// equal — so the pop sequence is independent of the container's internal
// layout. The calendar layout exploits the simulator's near-monotonic
// timestamp distribution: events live at most one erase latency (~3.5 ms)
// past the clock, so a ring of kBuckets time slots of kSlotShift width
// (64 x 8.192 us ~= 524 us) covers the dense pending window: reads,
// transfers, and programs all schedule well inside it, keeping buckets
// at ~1 entry so the pop-time min-scan stays trivial (wider slots make
// the scan, not the ring, the bottleneck). Push drops an event into its
// slot's bucket in O(1); pop takes the cached minimum and re-finds the
// next one with a single countr_zero over the occupancy bitmask plus a
// scan of one (typically 1-2 entry) bucket. Events beyond the ring's
// horizon — erases and epoch timers, rare next to page traffic — wait
// in an overflow list until the window reaches them. next_time() is a cached load, which
// matters because the run loop compares it against the arrival cursor on
// every iteration.
//
// The previous 4-ary binary-heap implementation is preserved verbatim as
// sim::HeapEventQueue (heap_event_queue.hpp) and drives the randomized
// differential test that pins the two pop orders together.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "snapshot/archive.hpp"
#include "util/check.hpp"
#include "util/time_types.hpp"

namespace ssdk::sim {

enum class EventKind : std::uint8_t {
  kArrival,     ///< host request enters the device; a = request index
  kFlashDone,   ///< plane finished its flash phase; a = plane, b = op id
  kBusFree,     ///< channel bus released; a = channel, b = op id or kNoOp
  kBufferDone,  ///< DRAM write-buffer latency elapsed; a = request index,
                ///< b = number of pages completing
  kWriteDone,   ///< non-pipelined write: bus release + program completion
                ///< collapsed into one event (they share a timestamp and
                ///< adjacent seqs, so nothing can pop between them);
                ///< a = unit, b = op id
};

inline constexpr std::uint64_t kNoOp = ~std::uint64_t{0};

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kArrival;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class EventQueue {
 public:
  /// Pre-size the per-slot buckets so steady-state pushes never
  /// reallocate. The pending set is bounded by in-flight hardware (units +
  /// channels), not by the submitted trace, so a small per-bucket reserve
  /// is enough regardless of `capacity`.
  void reserve(std::size_t capacity) {
    const std::size_t per_bucket =
        std::min<std::size_t>(64, std::max<std::size_t>(8, capacity / kBuckets));
    for (auto& b : buckets_) b.reserve(per_bucket);
    overflow_.reserve(8);
  }

  void push(SimTime time, EventKind kind, std::uint64_t a,
            std::uint64_t b = 0) {
    insert(Event{time, next_seq_++, kind, a, b});
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Drop every pending event (power loss: in-flight work vanishes). The
  /// sequence counter is preserved so post-recovery events keep the unique
  /// total order with anything already recorded.
  void clear() {
    std::uint64_t occ = occ_;
    while (occ != 0) {
      const unsigned i = static_cast<unsigned>(std::countr_zero(occ));
      buckets_[i].clear();
      occ &= occ - 1;
    }
    overflow_.clear();
    occ_ = 0;
    size_ = 0;
    base_slot_ = 0;
  }

  /// Earliest event time; queue must be non-empty.
  SimTime next_time() const {
    assert(size_ != 0);
    return min_time_;
  }

  /// Remove and return the earliest event; queue must be non-empty.
  Event pop() {
    assert(size_ != 0);
    auto& bucket = buckets_[min_bucket_];
    const Event out = bucket[min_pos_];
    bucket[min_pos_] = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) occ_ &= ~(std::uint64_t{1} << min_bucket_);
    --size_;
    if (size_ != 0) {
      // Every remaining event is later than the one just popped, so the
      // window can slide up to its slot — future pushes are >= now and
      // therefore >= this slot as well.
      base_slot_ = slot_of(out.time);
      recompute_min();
    }
    return out;
  }

  /// Audit the queue against the simulation clock: every pending event is
  /// in the bucket its time slot maps to (or parked in overflow beyond the
  /// ring's horizon), no event is scheduled before `now` (time only moves
  /// forward), sequence numbers are unique and below the allocation
  /// cursor, and the cached minimum / occupancy mask match a brute-force
  /// rescan — the properties the unique (time, seq) total order and
  /// bit-reproducibility rest on. Throws util::InvariantViolation on the
  /// first breach.
  void check_invariants(SimTime now) const {
    std::size_t counted = 0;
    std::vector<std::uint64_t> seqs;
    seqs.reserve(size_);
    const Event* min_seen = nullptr;
    auto audit_event = [&](const Event& e, const std::string& where) {
      SSDK_CHECK_MSG(e.time >= now,
                     "event_queue: event in " + where + " scheduled at " +
                         std::to_string(e.time) + " which is before now " +
                         std::to_string(now));
      SSDK_CHECK_MSG(e.seq < next_seq_,
                     "event_queue: " + where + " carries seq " +
                         std::to_string(e.seq) + " >= next_seq " +
                         std::to_string(next_seq_));
      if (min_seen == nullptr || earlier(e, *min_seen)) min_seen = &e;
      seqs.push_back(e.seq);
      ++counted;
    };
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const bool occupied = (occ_ >> i) & 1;
      SSDK_CHECK_MSG(occupied == !buckets_[i].empty(),
                     "event_queue: occupancy bit " + std::to_string(i) +
                         " disagrees with bucket contents");
      for (const Event& e : buckets_[i]) {
        const std::uint64_t s = slot_of(e.time);
        SSDK_CHECK_MSG(s >= base_slot_ && s - base_slot_ < kBuckets,
                       "event_queue: bucket " + std::to_string(i) +
                           " event at slot " + std::to_string(s) +
                           " outside window at base " +
                           std::to_string(base_slot_));
        SSDK_CHECK_MSG((s & kBucketMask) == i,
                       "event_queue: event at slot " + std::to_string(s) +
                           " filed in bucket " + std::to_string(i));
        audit_event(e, "bucket " + std::to_string(i));
      }
    }
    for (const Event& e : overflow_) {
      SSDK_CHECK_MSG(slot_of(e.time) >= base_slot_,
                     "event_queue: overflow event at slot " +
                         std::to_string(slot_of(e.time)) +
                         " before window base " + std::to_string(base_slot_));
      audit_event(e, "overflow");
    }
    SSDK_CHECK_MSG(counted == size_,
                   "event_queue: size counter " + std::to_string(size_) +
                       " != stored events " + std::to_string(counted));
    if (size_ != 0) {
      SSDK_CHECK_MSG(min_seen->time == min_time_ && min_seen->seq == min_seq_,
                     "event_queue: cached minimum (t=" +
                         std::to_string(min_time_) + ", seq=" +
                         std::to_string(min_seq_) +
                         ") is not the earliest pending event");
      SSDK_CHECK_MSG(min_bucket_ < kBuckets &&
                         min_pos_ < buckets_[min_bucket_].size() &&
                         buckets_[min_bucket_][min_pos_].seq == min_seq_,
                     "event_queue: cached minimum location is stale");
    }
    std::sort(seqs.begin(), seqs.end());
    SSDK_CHECK_MSG(std::adjacent_find(seqs.begin(), seqs.end()) == seqs.end(),
                   "event_queue: duplicate event sequence number");
  }

  /// Serialize in canonical ascending (time, seq) order (field-wise —
  /// Event has padding). The pop sequence does not depend on the internal
  /// layout, and the canonical order makes save(load(save)) byte-identical
  /// even though buckets use order-insensitive swap-removal. The wire
  /// format is unchanged from the binary-heap implementation.
  void save_state(snapshot::StateWriter& w) const {
    std::vector<Event> events;
    events.reserve(size_);
    std::uint64_t occ = occ_;
    while (occ != 0) {
      const unsigned i = static_cast<unsigned>(std::countr_zero(occ));
      events.insert(events.end(), buckets_[i].begin(), buckets_[i].end());
      occ &= occ - 1;
    }
    events.insert(events.end(), overflow_.begin(), overflow_.end());
    std::sort(events.begin(), events.end(),
              [](const Event& x, const Event& y) { return earlier(x, y); });
    w.tag("EVTQ");
    w.u64(next_seq_);
    w.u64(events.size());
    for (const Event& e : events) {
      w.u64(e.time);
      w.u64(e.seq);
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.u64(e.a);
      w.u64(e.b);
    }
  }

  void load_state(snapshot::StateReader& r) {
    r.tag("EVTQ");
    clear();
    next_seq_ = r.u64();
    const std::uint64_t n = r.checked_count(8 + 8 + 1 + 8 + 8);
    for (std::uint64_t i = 0; i < n; ++i) {
      Event e;
      e.time = r.u64();
      e.seq = r.u64();
      e.kind = static_cast<EventKind>(r.u8());
      e.a = r.u64();
      e.b = r.u64();
      insert(e);
    }
  }

 private:
  static constexpr unsigned kSlotShift = 13;  ///< 8.192 us per slot
  static constexpr std::size_t kBuckets = 64;
  static constexpr std::uint64_t kBucketMask = kBuckets - 1;

  static std::uint64_t slot_of(SimTime t) { return t >> kSlotShift; }

  static bool earlier(const Event& x, const Event& y) {
    if (x.time != y.time) return x.time < y.time;
    return x.seq < y.seq;
  }

  void insert(const Event& e) {
    const std::uint64_t s = slot_of(e.time);
    if (size_ == 0) {
      base_slot_ = s;
      auto& bucket = buckets_[s & kBucketMask];
      bucket.push_back(e);
      occ_ |= std::uint64_t{1} << (s & kBucketMask);
      size_ = 1;
      min_time_ = e.time;
      min_seq_ = e.seq;
      min_bucket_ = static_cast<std::uint32_t>(s & kBucketMask);
      min_pos_ = 0;
      return;
    }
    if (s < base_slot_) {
      // Only snapshot load or out-of-order test traffic lands here — the
      // simulator never schedules before its clock. Slide the window down
      // by rebuilding around the new earliest slot.
      rebuild(e);
      return;
    }
    ++size_;
    if (s - base_slot_ >= kBuckets) {
      overflow_.push_back(e);
      if (overflow_.size() == 1 || earlier(e, overflow_min_)) {
        overflow_min_ = e;
      }
      return;
    }
    auto& bucket = buckets_[s & kBucketMask];
    bucket.push_back(e);
    occ_ |= std::uint64_t{1} << (s & kBucketMask);
    if (earlier(e, Event{min_time_, min_seq_})) {
      min_time_ = e.time;
      min_seq_ = e.seq;
      min_bucket_ = static_cast<std::uint32_t>(s & kBucketMask);
      min_pos_ = static_cast<std::uint32_t>(bucket.size() - 1);
    }
  }

  /// Re-find the earliest pending event after a pop. The first occupied
  /// bucket at or after base_slot_ (one rotate + countr_zero on the
  /// occupancy mask) holds the earliest slot in the window; ties within a
  /// slot are broken by scanning its handful of entries. Overflow events
  /// sit at least a full window past base_slot_ when parked, but the base
  /// advances — once the ring catches up to them the queue is rebuilt
  /// around the new minimum so the cached min always lives in a bucket.
  void recompute_min() {
    if (occ_ == 0) {
      rebuild();
      return;
    }
    const unsigned start = static_cast<unsigned>(base_slot_ & kBucketMask);
    const unsigned offset =
        static_cast<unsigned>(std::countr_zero(std::rotr(occ_, start)));
    const unsigned bucket_index = (start + offset) & kBucketMask;
    const auto& bucket = buckets_[bucket_index];
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < bucket.size(); ++i) {
      if (earlier(bucket[i], bucket[best])) best = i;
    }
    if (!overflow_.empty() && earlier(overflow_min_, bucket[best])) {
      rebuild();
      return;
    }
    min_time_ = bucket[best].time;
    min_seq_ = bucket[best].seq;
    min_bucket_ = bucket_index;
    min_pos_ = best;
  }

  /// Collect every stored event and re-insert around the true earliest
  /// slot. Rare by construction: it runs only when the ring drains into
  /// overflow-only state, when a parked overflow event becomes the
  /// minimum, or on an out-of-order insert below the window base.
  void rebuild() { rebuild_with(nullptr); }
  void rebuild(const Event& extra) { rebuild_with(&extra); }

  void rebuild_with(const Event* extra) {
    std::vector<Event> events;
    events.reserve(size_ + 1);
    std::uint64_t occ = occ_;
    while (occ != 0) {
      const unsigned i = static_cast<unsigned>(std::countr_zero(occ));
      events.insert(events.end(), buckets_[i].begin(), buckets_[i].end());
      buckets_[i].clear();
      occ &= occ - 1;
    }
    events.insert(events.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();
    if (extra != nullptr) events.push_back(*extra);
    occ_ = 0;
    size_ = 0;
    SSDK_ASSERT(!events.empty());
    // Re-insert an earliest-slot event first: the empty-queue insert path
    // re-bases the window on it, and everything else then lands at or
    // above the base without triggering another rebuild.
    std::size_t first = 0;
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (slot_of(events[i].time) < slot_of(events[first].time)) first = i;
    }
    std::swap(events[0], events[first]);
    for (const Event& e : events) insert(e);
  }

  // Snapshot note: save_state writes the canonical (time, seq)-sorted
  // event list plus next_seq_; every layout member below is rebuilt by
  // load_state's insert() calls, so the wire format stays independent of
  // the calendar's bucketing.
  // ssdk-snap: skip(buckets_): layout rebuilt by insert() on load; wire format is the canonical event list
  std::array<std::vector<Event>, kBuckets> buckets_;
  // ssdk-snap: skip(overflow_): layout rebuilt by insert() on load
  std::vector<Event> overflow_;  ///< events at slots >= base_slot_ + kBuckets
  // ssdk-snap: skip(overflow_min_): cache rebuilt by insert() on load
  Event overflow_min_;           ///< earliest parked event (valid iff any)
  // ssdk-snap: skip(occ_): occupancy bitmap rebuilt by insert() on load
  std::uint64_t occ_ = 0;        ///< bit i set iff buckets_[i] is non-empty
  // ssdk-snap: skip(base_slot_): window base re-established by the first insert() on load
  std::uint64_t base_slot_ = 0;  ///< lowest slot the window admits
  // ssdk-snap: skip(size_): recomputed by insert() on load; equals the serialized event count
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  // Cached minimum (valid iff size_ > 0); always resident in a bucket.
  // ssdk-snap: skip(min_time_): cached minimum rebuilt by insert() on load
  SimTime min_time_ = 0;
  // ssdk-snap: skip(min_seq_): cached minimum rebuilt by insert() on load
  std::uint64_t min_seq_ = 0;
  // ssdk-snap: skip(min_bucket_): cached minimum position rebuilt by insert() on load
  std::uint32_t min_bucket_ = 0;
  // ssdk-snap: skip(min_pos_): cached minimum position rebuilt by insert() on load
  std::uint32_t min_pos_ = 0;
};

}  // namespace ssdk::sim
