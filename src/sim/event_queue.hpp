// Discrete-event kernel: a 4-ary min-heap of typed events ordered by
// (time, sequence). Sequence numbers make ordering of simultaneous events
// deterministic, which in turn makes every simulation bit-reproducible.
//
// (time, seq) is a *unique* total order — no two events ever compare
// equal — so the pop sequence is independent of heap shape and arity.
// The 4-ary layout halves tree depth versus a binary heap and keeps
// sibling comparisons inside one or two cache lines; together with the
// hole-based sift (move the displaced event once instead of swapping at
// every level) this is the single largest win in the simulator hot path,
// where EventQueue::pop was ~29% of the run-loop profile.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "snapshot/archive.hpp"
#include "util/check.hpp"
#include "util/time_types.hpp"

namespace ssdk::sim {

enum class EventKind : std::uint8_t {
  kArrival,     ///< host request enters the device; a = request index
  kFlashDone,   ///< plane finished its flash phase; a = plane, b = op id
  kBusFree,     ///< channel bus released; a = channel, b = op id or kNoOp
  kBufferDone,  ///< DRAM write-buffer latency elapsed; a = request index,
                ///< b = number of pages completing
  kWriteDone,   ///< non-pipelined write: bus release + program completion
                ///< collapsed into one event (they share a timestamp and
                ///< adjacent seqs, so nothing can pop between them);
                ///< a = unit, b = op id
};

inline constexpr std::uint64_t kNoOp = ~std::uint64_t{0};

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kArrival;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class EventQueue {
 public:
  /// Pre-size the backing store (e.g. from the submitted trace size) so
  /// steady-state pushes never reallocate.
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }

  void push(SimTime time, EventKind kind, std::uint64_t a,
            std::uint64_t b = 0) {
    heap_.push_back(Event{time, next_seq_++, kind, a, b});
    sift_up(heap_.size() - 1);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Drop every pending event (power loss: in-flight work vanishes). The
  /// sequence counter is preserved so post-recovery events keep the unique
  /// total order with anything already recorded.
  void clear() { heap_.clear(); }

  /// Earliest event time; queue must be non-empty.
  SimTime next_time() const {
    assert(!heap_.empty());
    return heap_.front().time;
  }

  /// Remove and return the earliest event; queue must be non-empty.
  Event pop() {
    assert(!heap_.empty());
    const Event top = heap_.front();
    const Event displaced = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(displaced);
    return top;
  }

  /// Audit the queue against the simulation clock: the 4-ary heap order
  /// holds at every parent/child edge, no pending event is scheduled
  /// before `now` (time only moves forward), and sequence numbers are
  /// unique and below the allocation cursor — the properties the unique
  /// (time, seq) total order and bit-reproducibility rest on. Throws
  /// util::InvariantViolation on the first breach.
  void check_invariants(SimTime now) const {
    std::vector<std::uint64_t> seqs;
    seqs.reserve(heap_.size());
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      const Event& e = heap_[i];
      SSDK_CHECK_MSG(e.time >= now,
                     "event_queue: event at heap slot " + std::to_string(i) +
                         " scheduled at " + std::to_string(e.time) +
                         " which is before now " + std::to_string(now));
      SSDK_CHECK_MSG(e.seq < next_seq_,
                     "event_queue: heap slot " + std::to_string(i) +
                         " carries seq " + std::to_string(e.seq) +
                         " >= next_seq " + std::to_string(next_seq_));
      if (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        SSDK_CHECK_MSG(!earlier(e, heap_[parent]),
                       "event_queue: heap order violated between slot " +
                           std::to_string(i) + " and parent slot " +
                           std::to_string(parent));
      }
      seqs.push_back(e.seq);
    }
    std::sort(seqs.begin(), seqs.end());
    SSDK_CHECK_MSG(std::adjacent_find(seqs.begin(), seqs.end()) == seqs.end(),
                   "event_queue: duplicate event sequence number");
  }

  /// Serialize the heap array verbatim (field-wise — Event has padding).
  /// (time, seq) is a unique total order, so the pop sequence does not
  /// depend on heap layout; preserving the layout anyway makes a restored
  /// queue byte-identical to the original, not merely behaviorally equal.
  void save_state(snapshot::StateWriter& w) const {
    w.tag("EVTQ");
    w.u64(next_seq_);
    w.u64(heap_.size());
    for (const Event& e : heap_) {
      w.u64(e.time);
      w.u64(e.seq);
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.u64(e.a);
      w.u64(e.b);
    }
  }

  void load_state(snapshot::StateReader& r) {
    r.tag("EVTQ");
    next_seq_ = r.u64();
    const std::uint64_t n = r.checked_count(8 + 8 + 1 + 8 + 8);
    heap_.clear();
    heap_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Event e;
      e.time = r.u64();
      e.seq = r.u64();
      e.kind = static_cast<EventKind>(r.u8());
      e.a = r.u64();
      e.b = r.u64();
      heap_.push_back(e);
    }
  }

 private:
  static bool earlier(const Event& x, const Event& y) {
    if (x.time != y.time) return x.time < y.time;
    return x.seq < y.seq;
  }

  void sift_up(std::size_t i) {
    const Event e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Place `e` (the event displaced from the tail) starting at the root,
  /// pulling the earliest child up through the hole at each level.
  void sift_down(const Event& e) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t fence = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < fence; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ssdk::sim
