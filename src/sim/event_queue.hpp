// Discrete-event kernel: a binary min-heap of typed events ordered by
// (time, sequence). Sequence numbers make ordering of simultaneous events
// deterministic, which in turn makes every simulation bit-reproducible.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/time_types.hpp"

namespace ssdk::sim {

enum class EventKind : std::uint8_t {
  kArrival,     ///< host request enters the device; a = request index
  kFlashDone,   ///< plane finished its flash phase; a = plane, b = op id
  kBusFree,     ///< channel bus released; a = channel, b = op id or kNoOp
  kBufferDone,  ///< DRAM write-buffer latency elapsed; a = request index,
                ///< b = number of pages completing
};

inline constexpr std::uint64_t kNoOp = ~std::uint64_t{0};

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kArrival;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class EventQueue {
 public:
  void push(SimTime time, EventKind kind, std::uint64_t a,
            std::uint64_t b = 0);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Earliest event time; queue must be non-empty.
  SimTime next_time() const;

  /// Remove and return the earliest event; queue must be non-empty.
  Event pop();

 private:
  struct Later {
    bool operator()(const Event& x, const Event& y) const {
      if (x.time != y.time) return x.time > y.time;
      return x.seq > y.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ssdk::sim
