#include "sim/fault_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ssdk::sim {

void FaultModel::validate() const {
  const auto check_prob = [](double p, const char* name, double max) {
    if (p < 0.0 || p > max) {
      throw std::invalid_argument(std::string("fault_model: ") + name +
                                  " out of range");
    }
  };
  check_prob(read_ber, "read_ber", 1.0);
  check_prob(read_ber_per_pe, "read_ber_per_pe", 1.0);
  // A certain program/erase failure can never make forward progress.
  check_prob(program_fail, "program_fail",
             std::nextafter(1.0, 0.0));
  check_prob(erase_fail, "erase_fail", std::nextafter(1.0, 0.0));
  if (enabled() && program_fails_to_retire == 0) {
    throw std::invalid_argument(
        "fault_model: program_fails_to_retire must be >= 1");
  }
  if (enabled() && erase_fails_to_retire == 0) {
    throw std::invalid_argument(
        "fault_model: erase_fails_to_retire must be >= 1");
  }
}

std::string FaultModel::describe() const {
  if (!enabled()) return "disabled";
  std::ostringstream os;
  os << "read_ber " << read_ber << " (+" << read_ber_per_pe
     << "/PE), program_fail " << program_fail << ", erase_fail " << erase_fail
     << ", retries " << max_read_retries << ", retire after "
     << program_fails_to_retire << " program / " << erase_fails_to_retire
     << " erase fails";
  if (max_pe_cycles > 0) os << ", PE limit " << max_pe_cycles;
  os << ", seed " << seed;
  return os.str();
}

}  // namespace ssdk::sim
