// Flash fault-injection model: per-operation failure probabilities plus the
// retirement policy the FTL applies when a block keeps failing.
//
// The model is deliberately simple and fully deterministic: a single seeded
// per-device RNG is consumed in event order, so a fixed (workload, seed)
// pair reproduces the exact same fault sequence on every platform. All
// probabilities default to zero — a default-constructed model is disabled
// and the device behaves bit-identically to the fault-free simulator.
//
// What is modeled:
//   * Read ECC failure: each read attempt (initial sense + every retry)
//     fails with probability read_ber + read_ber_per_pe * block_erases —
//     raw bit-error rate grows with a block's P/E cycle count, the dominant
//     endurance effect. A failed attempt triggers a read retry (re-sense at
//     a shifted threshold, escalating latency, see Timing::read_retry_ns);
//     after max_read_retries the page is uncorrectable.
//   * Program failure: a program completes but the page is bad. The page is
//     invalidated and the write is re-placed on a sibling plane; the block
//     is retired after program_fails_to_retire failures.
//   * Erase failure: the erase is retried; after erase_fails_to_retire
//     failures the block is retired (grown bad block).
//   * Endurance retirement: with max_pe_cycles > 0, a block is retired as
//     soon as its erase count reaches the limit (modeled-BER threshold).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace ssdk::sim {

struct FaultModel {
  /// Per-attempt raw ECC-failure probability of a read at zero P/E cycles.
  double read_ber = 0.0;
  /// Added ECC-failure probability per erase cycle of the target block.
  double read_ber_per_pe = 0.0;
  /// Probability a program operation fails (page unusable).
  double program_fail = 0.0;
  /// Probability an erase operation fails.
  double erase_fail = 0.0;

  /// Read retries before a page is declared uncorrectable.
  std::uint32_t max_read_retries = 3;
  /// Program failures that retire a block (valid pages are rescued).
  std::uint32_t program_fails_to_retire = 2;
  /// Erase failures that retire a block (1 = first failure retires).
  std::uint32_t erase_fails_to_retire = 1;
  /// Retire a block once its erase count reaches this (0 = no limit).
  std::uint64_t max_pe_cycles = 0;

  /// Seed of the per-device fault RNG; the injected fault sequence is a
  /// deterministic function of (workload, seed).
  std::uint64_t seed = 0x5D5DFA17ULL;

  static FaultModel none() { return FaultModel{}; }

  /// Disabled models draw no random numbers and take no new code paths.
  bool enabled() const {
    return read_ber > 0.0 || read_ber_per_pe > 0.0 || program_fail > 0.0 ||
           erase_fail > 0.0 || max_pe_cycles > 0;
  }

  /// Effective per-attempt ECC-failure probability for a block with the
  /// given erase count, clamped to [0, 1].
  double read_fail_prob(std::uint64_t block_erases) const {
    return std::clamp(
        read_ber + read_ber_per_pe * static_cast<double>(block_erases), 0.0,
        1.0);
  }

  /// Throws std::invalid_argument on out-of-range fields. program_fail and
  /// erase_fail must stay below 1: a certain failure would make every
  /// write/erase retry forever (reads are bounded by max_read_retries, so
  /// read_ber = 1 is legal and useful in tests).
  void validate() const;

  std::string describe() const;
};

}  // namespace ssdk::sim
