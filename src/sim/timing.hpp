// Flash and bus timing parameters (paper Table I plus the channel transfer
// rate SSDSim models). The channel bus is occupied for page transfers in
// both directions; the chip is occupied for the flash array operation and,
// for reads, also while its data is being shifted out.
#pragma once

#include <cstdint>
#include <string>

#include "sim/geometry.hpp"
#include "util/time_types.hpp"

namespace ssdk::sim {

struct Timing {
  Duration read_ns = 20 * kMicrosecond;      ///< flash array read
  Duration program_ns = 200 * kMicrosecond;  ///< flash array program
  Duration erase_ns = 1500 * kMicrosecond;   ///< block erase (1.5 ms)
  /// Channel transfer cost per byte. Default models an ONFI-class bus at
  /// ~400 MB/s: a 16 KB page takes ~41 us on the wire, so the channel is a
  /// genuine point of contention (the effect SSDKeeper manages).
  double xfer_ns_per_byte = 2.5;
  /// Fixed command/addressing overhead per bus transaction.
  Duration cmd_overhead_ns = 200;
  /// Read-retry sensing latency (fault model): attempt k re-occupies the
  /// plane for read_retry_base_ns + (k-1) * read_retry_step_ns before its
  /// data is shifted out over the bus again. Escalation models the
  /// progressively wider reference-voltage sweeps real controllers issue.
  Duration read_retry_base_ns = 35 * kMicrosecond;
  Duration read_retry_step_ns = 15 * kMicrosecond;

  static Timing paper() { return Timing{}; }

  /// Plane occupancy of retry attempt `attempt` (1-based).
  Duration read_retry_ns(std::uint32_t attempt) const {
    return read_retry_base_ns +
           static_cast<Duration>(attempt > 0 ? attempt - 1 : 0) *
               read_retry_step_ns;
  }

  /// Bus occupancy for moving one page (+ command overhead).
  Duration page_transfer_ns(const Geometry& g) const {
    // ssdk-lint: allow(float-time): pure function of fixed configuration
    // (rate x page size); every call yields the same integer, so nothing
    // accumulates and no schedule drift is possible.
    return cmd_overhead_ns +
           static_cast<Duration>(xfer_ns_per_byte *
                                 static_cast<double>(g.page_size_bytes));
  }

  /// Chip occupancy of a full write (transfer + program).
  Duration write_service_ns(const Geometry& g) const {
    return page_transfer_ns(g) + program_ns;
  }

  /// Unloaded read latency (array read + transfer).
  Duration read_service_ns(const Geometry& g) const {
    return read_ns + page_transfer_ns(g);
  }

  std::string describe(const Geometry& g) const;
};

}  // namespace ssdk::sim
