#include "sim/event_queue.hpp"

#include <cassert>

namespace ssdk::sim {

void EventQueue::push(SimTime time, EventKind kind, std::uint64_t a,
                      std::uint64_t b) {
  heap_.push(Event{time, next_seq_++, kind, a, b});
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.top().time;
}

Event EventQueue::pop() {
  assert(!heap_.empty());
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace ssdk::sim
