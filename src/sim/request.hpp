// Host-level I/O requests and their page-granular sub-operations.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/geometry.hpp"
#include "util/time_types.hpp"

namespace ssdk::sim {

/// Tenant (workload) identifier. The paper's features collector obtains a
/// workloadID per stream; here it is carried on every request.
using TenantId = std::uint32_t;

/// Tenant id used for FTL-internal traffic (GC migrations, erases).
inline constexpr TenantId kInternalTenant = ~TenantId{0};

enum class OpType : std::uint8_t {
  kRead,
  kWrite,
  /// Host discard: the LPN range's mapping is dropped and its pages
  /// invalidated. Metadata-only — completes immediately, no flash work.
  kTrim,
  /// Durability barrier: drains the volatile write buffer to flash and
  /// completes only once every flush-triggered program (issued before the
  /// barrier) has finished. With no write buffer it completes immediately.
  kFlush,
};

/// A host I/O request: `page_count` logical pages starting at `lpn` in the
/// issuing tenant's logical address space.
struct IoRequest {
  std::uint64_t id = 0;
  TenantId tenant = 0;
  OpType type = OpType::kRead;
  std::uint64_t lpn = 0;
  std::uint32_t page_count = 1;
  SimTime arrival = 0;
};

/// Final status of a host request. With the fault model enabled, a read
/// whose page exhausts every retry completes as kUncorrectable instead of
/// crashing the simulation; the caller decides what data loss means.
enum class IoStatus : std::uint8_t { kOk, kUncorrectable };

/// Completion record emitted by the device.
struct Completion {
  std::uint64_t request_id = 0;
  TenantId tenant = 0;
  OpType type = OpType::kRead;
  SimTime arrival = 0;
  SimTime finish = 0;
  IoStatus status = IoStatus::kOk;
  /// Pages of the request that were uncorrectable (reads only).
  std::uint32_t failed_pages = 0;
  /// Pages of a write that were absorbed by the DRAM write buffer — acked
  /// volatile, not yet on flash. 0 for every other request type.
  std::uint32_t volatile_pages = 0;

  Duration latency() const { return finish - arrival; }
  /// A write is acked-durable when every page reached flash before the
  /// completion; buffered pages make the ack volatile (lost on power cut
  /// unless flushed first).
  bool durable() const { return volatile_pages == 0; }
};

}  // namespace ssdk::sim
