// Physical geometry of the simulated SSD and the physical-address codec.
//
// Hierarchy (paper Figure 1): channel -> chip -> plane -> block -> page.
// Dies are folded into chips (the paper's Table I parameterizes chips and
// planes directly). Physical page numbers (PPNs) are flat indices over the
// whole device; PhysAddr is the unpacked form.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

namespace ssdk::sim {

/// Flat physical page number over the entire device.
using Ppn = std::uint64_t;
inline constexpr Ppn kInvalidPpn = ~Ppn{0};

struct PhysAddr {
  std::uint32_t channel = 0;
  std::uint32_t chip = 0;   ///< chip index within the channel
  std::uint32_t plane = 0;  ///< plane index within the chip
  std::uint32_t block = 0;  ///< block index within the plane
  std::uint32_t page = 0;   ///< page index within the block

  friend bool operator==(const PhysAddr&, const PhysAddr&) = default;
};

struct Geometry {
  std::uint32_t channels = 8;
  std::uint32_t chips_per_channel = 2;
  std::uint32_t planes_per_chip = 4;
  std::uint32_t blocks_per_plane = 4096;
  std::uint32_t pages_per_block = 128;
  std::uint32_t page_size_bytes = 16 * 1024;

  /// Exactly Table I of the paper: 8 channels x 2 chips x 4 planes x
  /// 4096 blocks x 128 pages x 16 KB = 512 GB.
  static Geometry paper();

  /// Same channel/chip/plane fan-out as the paper but fewer blocks, for
  /// fast tests and dataset-generation sweeps. Contention behaviour is
  /// unchanged (it depends on channel/chip counts and timing, not on how
  /// many blocks a plane holds).
  static Geometry small();

  /// Tiny geometry that fills quickly — used by GC/wear-leveling tests.
  static Geometry tiny();

  std::uint32_t total_chips() const { return channels * chips_per_channel; }
  std::uint32_t planes_per_channel() const {
    return chips_per_channel * planes_per_chip;
  }
  std::uint64_t total_planes() const {
    return static_cast<std::uint64_t>(total_chips()) * planes_per_chip;
  }
  std::uint64_t total_blocks() const {
    return total_planes() * blocks_per_plane;
  }
  std::uint64_t pages_per_plane() const {
    return static_cast<std::uint64_t>(blocks_per_plane) * pages_per_block;
  }
  std::uint64_t pages_per_chip() const {
    return pages_per_plane() * planes_per_chip;
  }
  std::uint64_t total_pages() const {
    return pages_per_chip() * total_chips();
  }
  std::uint64_t capacity_bytes() const {
    return total_pages() * page_size_bytes;
  }

  /// Global chip index in [0, total_chips()).
  std::uint32_t chip_id(std::uint32_t channel, std::uint32_t chip) const {
    return channel * chips_per_channel + chip;
  }
  /// Global plane index in [0, total_planes()).
  std::uint64_t plane_id(const PhysAddr& a) const {
    return static_cast<std::uint64_t>(chip_id(a.channel, a.chip)) *
               planes_per_chip +
           a.plane;
  }
  /// Global block index in [0, total_blocks()).
  std::uint64_t block_id(const PhysAddr& a) const {
    return plane_id(a) * blocks_per_plane + a.block;
  }

  Ppn encode(const PhysAddr& a) const {
    assert(a.channel < channels);
    assert(a.chip < chips_per_channel);
    assert(a.plane < planes_per_chip);
    assert(a.block < blocks_per_plane);
    assert(a.page < pages_per_block);
    return (((static_cast<Ppn>(chip_id(a.channel, a.chip)) *
                  planes_per_chip +
              a.plane) *
                 blocks_per_plane +
             a.block) *
                pages_per_block +
            a.page);
  }

  /// Inline with a shift/mask fast path: every stock geometry (paper,
  /// small, tiny) has power-of-two dimensions, and decode sits on the
  /// per-page-op device hot path where four hardware divides are
  /// measurable. Falls back to the general divide chain for odd shapes.
  PhysAddr decode(Ppn ppn) const {
    assert(ppn < total_pages());
    PhysAddr a;
    if (std::has_single_bit(pages_per_block) &&
        std::has_single_bit(blocks_per_plane) &&
        std::has_single_bit(planes_per_chip) &&
        std::has_single_bit(chips_per_channel)) {
      const int page_bits = std::countr_zero(pages_per_block);
      const int block_bits = std::countr_zero(blocks_per_plane);
      const int plane_bits = std::countr_zero(planes_per_chip);
      const int chip_bits = std::countr_zero(chips_per_channel);
      a.page = static_cast<std::uint32_t>(ppn) & (pages_per_block - 1);
      ppn >>= page_bits;
      a.block = static_cast<std::uint32_t>(ppn) & (blocks_per_plane - 1);
      ppn >>= block_bits;
      a.plane = static_cast<std::uint32_t>(ppn) & (planes_per_chip - 1);
      ppn >>= plane_bits;
      a.chip = static_cast<std::uint32_t>(ppn) & (chips_per_channel - 1);
      a.channel = static_cast<std::uint32_t>(ppn >> chip_bits);
      return a;
    }
    a.page = static_cast<std::uint32_t>(ppn % pages_per_block);
    ppn /= pages_per_block;
    a.block = static_cast<std::uint32_t>(ppn % blocks_per_plane);
    ppn /= blocks_per_plane;
    a.plane = static_cast<std::uint32_t>(ppn % planes_per_chip);
    ppn /= planes_per_chip;
    const auto chip = static_cast<std::uint32_t>(ppn);
    a.channel = chip / chips_per_channel;
    a.chip = chip % chips_per_channel;
    return a;
  }

  /// Throws std::invalid_argument when any dimension is zero or an address
  /// component would overflow its field.
  void validate() const;

  std::string describe() const;

  friend bool operator==(const Geometry&, const Geometry&) = default;
};

}  // namespace ssdk::sim
