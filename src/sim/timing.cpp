#include "sim/timing.hpp"

#include <sstream>

namespace ssdk::sim {

std::string Timing::describe(const Geometry& g) const {
  std::ostringstream os;
  os << "read " << to_us(read_ns) << " us, program " << to_us(program_ns)
     << " us, erase " << to_ms(erase_ns) << " ms, page transfer "
     << to_us(page_transfer_ns(g)) << " us";
  return os.str();
}

}  // namespace ssdk::sim
