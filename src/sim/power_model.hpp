// Power-loss injection model: a scheduled sudden power-off plus the
// volatile-state semantics the device applies when it fires.
//
// Like the fault model, the power model is fully deterministic and
// disabled by default: a default-constructed PowerModel arms nothing,
// materializes no OOB metadata, and the device behaves bit-identically to
// the power-unaware simulator. With `enabled` set the FTL starts writing
// per-page out-of-band metadata (owner, global write sequence number) on
// every program so that a later power_off()/power_on() cycle can rebuild
// the logical-to-physical map from flash alone.
//
// What a power cut means (DESIGN.md §14):
//   * In-flight programs produce torn pages — the page is consumed but its
//     contents (and OOB) are unreadable; recovery discards it.
//   * In-flight erases leave the block in an unknown state; recovery
//     re-erases it before use.
//   * The DRAM write buffer and every queued-but-unstarted operation are
//     lost. Buffered pages were acked-volatile, and their loss is counted
//     per tenant.
//   * Durable state is exactly: flash contents + OOB, the bad-block table
//     (retired flags + erase counters), and nothing else.
#pragma once

#include <cstdint>
#include <string>

#include "util/time_types.hpp"

namespace ssdk::sim {

struct PowerModel {
  /// Master switch: arms OOB metadata tracking and allows power_off().
  /// Scheduled cuts below additionally require this to be set.
  bool enabled = false;

  /// Cut power at this simulation time (0 = no time-scheduled cut). The
  /// cut fires just before the first arrival or device event at or after
  /// this instant.
  SimTime cut_at_time = 0;

  /// Cut power immediately before handling the nth arrival (~0 = no
  /// arrival-scheduled cut). Counted over submitted requests, 0-based:
  /// cut_at_arrival = k fires after k arrivals have been handled.
  std::uint64_t cut_at_arrival = ~std::uint64_t{0};

  /// After a scheduled cut, immediately run recovery and resume the
  /// remaining workload (a crash-reboot-continue cycle). When false the
  /// run loop stops dead at the cut and the caller drives power_on().
  bool auto_recover = false;

  static PowerModel none() { return PowerModel{}; }

  bool enabled_model() const { return enabled; }

  /// True when a scheduled cut is armed (enabled + a trigger configured).
  bool cut_scheduled() const {
    return enabled &&
           (cut_at_time > 0 || cut_at_arrival != ~std::uint64_t{0});
  }

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;

  std::string describe() const;
};

}  // namespace ssdk::sim
