// Per-tenant latency accounting and device-level counters — the quantities
// every figure in the paper is built from.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/request.hpp"
#include "util/stats.hpp"

namespace ssdk::sim {

/// Latency statistics for one tenant, split by operation type.
struct TenantMetrics {
  SampleSet read_latency_us;
  SampleSet write_latency_us;

  double avg_read_us() const { return read_latency_us.mean(); }
  double avg_write_us() const { return write_latency_us.mean(); }
  /// The paper's "total response latency" is the sum of the average read
  /// and average write response latencies (Section III.B).
  double total_us() const { return avg_read_us() + avg_write_us(); }
};

/// Device-level health/contention counters.
struct DeviceCounters {
  std::uint64_t host_reads = 0;
  std::uint64_t host_writes = 0;
  std::uint64_t host_trims = 0;
  std::uint64_t gc_migrations = 0;
  std::uint64_t erases = 0;
  /// Page ops that found their target chip or channel busy on dispatch —
  /// the paper's "access conflicts".
  std::uint64_t conflicts = 0;
  std::uint64_t page_ops = 0;
  Duration bus_busy_ns = 0;   ///< summed over channels
  Duration chip_busy_ns = 0;  ///< summed over chips
  /// Queueing decomposition: time page ops spent waiting for their first
  /// resource grant, split by class. Averages = wait_ns / ops_started.
  Duration read_wait_ns = 0;
  Duration write_wait_ns = 0;
  std::uint64_t read_ops_started = 0;
  std::uint64_t write_ops_started = 0;

  double avg_read_wait_us() const {
    return read_ops_started
               ? static_cast<double>(read_wait_ns) /
                     static_cast<double>(read_ops_started) / 1e3
               : 0.0;
  }
  double avg_write_wait_us() const {
    return write_ops_started
               ? static_cast<double>(write_wait_ns) /
                     static_cast<double>(write_ops_started) / 1e3
               : 0.0;
  }
};

class MetricsCollector {
 public:
  void record(const Completion& c);

  /// Completions whose request arrived before `t` are excluded from the
  /// latency samples (counters still accumulate) — a warmup window so
  /// steady-state measurements aren't diluted by the empty-device start.
  void set_warmup_ns(SimTime t) { warmup_ns_ = t; }
  SimTime warmup_ns() const { return warmup_ns_; }

  void count_conflict() { ++counters_.conflicts; }
  DeviceCounters& counters() { return counters_; }
  const DeviceCounters& counters() const { return counters_; }

  const TenantMetrics& tenant(TenantId id) const;
  bool has_tenant(TenantId id) const { return tenants_.contains(id); }
  const std::map<TenantId, TenantMetrics>& all_tenants() const {
    return tenants_;
  }

  /// Aggregate over every tenant (used when normalizing Figure 2/5 bars).
  TenantMetrics aggregate() const;

  /// Conflict rate = conflicts / page ops dispatched.
  double conflict_rate() const;

  std::string report() const;

 private:
  std::map<TenantId, TenantMetrics> tenants_;
  DeviceCounters counters_;
  SimTime warmup_ns_ = 0;
};

}  // namespace ssdk::sim
