// Per-tenant latency accounting and device-level counters — the quantities
// every figure in the paper is built from.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/request.hpp"
#include "snapshot/archive.hpp"
#include "util/stats.hpp"

namespace ssdk::sim {

/// Latency statistics for one tenant, split by operation type, plus the
/// tenant's share of fault-handling traffic (all zero with the fault model
/// disabled). Retry time is already inside the latency samples — the
/// separate counters attribute *how much* of a tenant's latency was
/// error-handling, which is what the keeper's per-tenant accounting needs.
struct TenantMetrics {
  SampleSet read_latency_us;
  SampleSet write_latency_us;

  // --- reliability (fault model) ---
  std::uint64_t read_retries = 0;          ///< retry attempts issued
  std::uint64_t uncorrectable_reads = 0;   ///< pages failing all retries
  std::uint64_t program_retries = 0;       ///< failed programs re-placed
  Duration retry_wait_ns = 0;  ///< extra sensing + re-transfer time
  /// Acked-volatile pages this tenant lost to power cuts: dirty write-buffer
  /// residents at the instant of a power_off() (zero without a power model).
  std::uint64_t acked_volatile_lost = 0;
  /// Measured completions (post-warmup reads/writes) slower than the
  /// tenant's latency SLO target — zero unless the run's scheduler config
  /// carries a slo_target_us for this tenant.
  std::uint64_t slo_violations = 0;

  double avg_read_us() const { return read_latency_us.mean(); }
  double avg_write_us() const { return write_latency_us.mean(); }
  /// The paper's "total response latency" is the sum of the average read
  /// and average write response latencies (Section III.B).
  double total_us() const { return avg_read_us() + avg_write_us(); }
};

/// Device-level health/contention counters.
struct DeviceCounters {
  std::uint64_t host_reads = 0;
  std::uint64_t host_writes = 0;
  std::uint64_t host_trims = 0;
  std::uint64_t gc_migrations = 0;
  std::uint64_t erases = 0;
  /// Page ops that found their target chip or channel busy on dispatch —
  /// the paper's "access conflicts".
  std::uint64_t conflicts = 0;
  std::uint64_t page_ops = 0;
  Duration bus_busy_ns = 0;   ///< summed over channels
  Duration chip_busy_ns = 0;  ///< summed over chips
  /// Queueing decomposition: time page ops spent waiting for their first
  /// resource grant, split by class. Averages = wait_ns / ops_started.
  Duration read_wait_ns = 0;
  Duration write_wait_ns = 0;
  std::uint64_t read_ops_started = 0;
  std::uint64_t write_ops_started = 0;
  // --- reliability (fault model; all zero when disabled) ---
  std::uint64_t read_retries = 0;
  std::uint64_t uncorrectable_reads = 0;  ///< pages failing every retry
  std::uint64_t program_fails = 0;
  std::uint64_t erase_fails = 0;
  std::uint64_t retired_blocks = 0;
  std::uint64_t rescue_migrations = 0;  ///< pages moved off retiring blocks
  /// GC/rescue migration reads that were themselves uncorrectable — the
  /// simulated device's (RAID-less) data-loss count.
  std::uint64_t lost_pages = 0;
  Duration retry_wait_ns = 0;  ///< summed retry sensing + re-transfer time
  /// Host requests aborted because the device ran out of space.
  std::uint64_t failed_requests = 0;
  // --- power loss and recovery (all zero without a power model) ---
  std::uint64_t host_flushes = 0;    ///< completed flush/barrier requests
  std::uint64_t power_cycles = 0;    ///< power_off()/power_on() cycles
  Duration mount_time_ns = 0;        ///< summed modeled mount (scan) time
  std::uint64_t mount_scan_reads = 0;      ///< OOB scan page reads at mount
  std::uint64_t torn_pages_discarded = 0;  ///< in-flight programs discarded
  std::uint64_t unknown_blocks_recovered = 0;  ///< in-flight erases redone
  std::uint64_t interrupted_requests = 0;  ///< in-flight host requests cut
  std::uint64_t volatile_pages_lost = 0;   ///< buffered pages lost at cuts

  double avg_read_wait_us() const {
    return read_ops_started
               ? static_cast<double>(read_wait_ns) /
                     static_cast<double>(read_ops_started) / 1e3
               : 0.0;
  }
  double avg_write_wait_us() const {
    return write_ops_started
               ? static_cast<double>(write_wait_ns) /
                     static_cast<double>(write_ops_started) / 1e3
               : 0.0;
  }
};

/// Device-wide latency sums and counts. Everything the keeper's what-if
/// scoring and the label sweep's total_us need, gathered in O(tenants)
/// from the SampleSets' running sums — aggregate() by contrast copies
/// every latency sample.
struct LatencySums {
  double read_sum_us = 0.0;
  double write_sum_us = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  double avg_read_us() const {
    return reads ? read_sum_us / static_cast<double>(reads) : 0.0;
  }
  double avg_write_us() const {
    return writes ? write_sum_us / static_cast<double>(writes) : 0.0;
  }
  double total_us() const { return avg_read_us() + avg_write_us(); }
};

/// Tenant slots are a dense vector indexed by tenant id — `record` runs
/// once per host completion, and a map lookup there was one of the larger
/// costs on the simulator hot path. Host tenant ids are small and
/// contiguous (0..3 in the paper); kInternalTenant (GC traffic touched by
/// the fault model) gets its own out-of-band slot so the dense array never
/// grows to 2^32 entries.
class MetricsCollector {
 public:
  void record(const Completion& c);

  /// Completions whose request arrived before `t` are excluded from the
  /// latency samples (counters still accumulate) — a warmup window so
  /// steady-state measurements aren't diluted by the empty-device start.
  void set_warmup_ns(SimTime t) { warmup_ns_ = t; }
  SimTime warmup_ns() const { return warmup_ns_; }

  /// Latency SLO target for `tenant` (microseconds, arrival to
  /// completion); measured completions slower than it bump the tenant's
  /// slo_violations. 0 clears the target. Construction-time config like
  /// the warmup window — NOT serialized; a restored device re-arms it
  /// from its options.
  void set_slo_target_us(TenantId tenant, std::uint64_t us);

  void count_conflict() { ++counters_.conflicts; }
  DeviceCounters& counters() { return counters_; }
  const DeviceCounters& counters() const { return counters_; }

  // --- reliability events (fault model) ----------------------------------
  /// One read-retry attempt for `tenant`; `extra_ns` is the added sensing
  /// + re-transfer time the retry will occupy.
  void record_read_retry(TenantId tenant, Duration extra_ns);
  /// One page of `tenant` exhausted every retry.
  void record_uncorrectable_read(TenantId tenant);
  /// One failed program of `tenant` was re-placed.
  void record_program_retry(TenantId tenant);
  /// `pages` acked-volatile buffered pages of `tenant` lost to a power cut.
  void record_volatile_loss(TenantId tenant, std::uint64_t pages);

  const TenantMetrics& tenant(TenantId id) const;
  bool has_tenant(TenantId id) const {
    if (id == kInternalTenant) return internal_present_;
    return id < present_.size() && present_[id] != 0;
  }
  /// Tenants that recorded at least one sample or reliability event, keyed
  /// by id (materialized from the dense slots; ordered as before).
  std::map<TenantId, TenantMetrics> all_tenants() const;

  /// Aggregate over every tenant (used when normalizing Figure 2/5 bars).
  TenantMetrics aggregate() const;

  /// O(tenants) latency sums/counts; same totals aggregate() would report,
  /// without touching the per-sample storage.
  LatencySums aggregate_sums() const;

  /// Conflict rate = conflicts / page ops dispatched.
  double conflict_rate() const;

  std::string report() const;

  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  TenantMetrics& slot(TenantId id);

  std::vector<TenantMetrics> dense_;      ///< indexed by tenant id
  std::vector<std::uint8_t> present_;     ///< parallel touched flags
  TenantMetrics internal_;                ///< kInternalTenant slot
  bool internal_present_ = false;
  DeviceCounters counters_;
  SimTime warmup_ns_ = 0;
  /// Per-tenant SLO targets (us), dense by tenant id; 0 = no target.
  /// Config, not device state: excluded from save_state/load_state.
  // ssdk-snap: skip(slo_target_us_): configuration (OPTS sched.shares carries the targets), reapplied by the owner after load
  std::vector<std::uint64_t> slo_target_us_;
};

}  // namespace ssdk::sim
