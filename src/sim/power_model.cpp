#include "sim/power_model.hpp"

#include <sstream>
#include <stdexcept>

namespace ssdk::sim {

void PowerModel::validate() const {
  if (!enabled) {
    if (cut_at_time > 0 || cut_at_arrival != ~std::uint64_t{0} ||
        auto_recover) {
      throw std::invalid_argument(
          "power_model: a scheduled cut or auto_recover requires enabled");
    }
    return;
  }
  if (cut_at_time > 0 && cut_at_arrival != ~std::uint64_t{0}) {
    throw std::invalid_argument(
        "power_model: set cut_at_time or cut_at_arrival, not both");
  }
  if (auto_recover && !cut_scheduled()) {
    throw std::invalid_argument(
        "power_model: auto_recover needs a scheduled cut");
  }
}

std::string PowerModel::describe() const {
  if (!enabled) return "disabled";
  std::ostringstream os;
  os << "enabled";
  if (cut_at_time > 0) os << ", cut at t=" << cut_at_time << "ns";
  if (cut_at_arrival != ~std::uint64_t{0}) {
    os << ", cut at arrival " << cut_at_arrival;
  }
  if (auto_recover) os << ", auto-recover";
  return os.str();
}

}  // namespace ssdk::sim
