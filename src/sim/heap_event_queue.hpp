// Reference event queue: the 4-ary binary min-heap that EventQueue used
// before the calendar-queue rewrite, preserved verbatim (minus snapshot
// support) as the oracle for the randomized differential test in
// tests/sim/event_queue_diff_test.cpp. (time, seq) is a unique total
// order, so any correct priority queue must produce exactly this pop
// sequence — the test drives both implementations with the same pushes
// and asserts identical pops.
//
// Not used on the simulator hot path; do not add features here. If the
// Event layout or tie-break rule changes, change it in event_queue.hpp
// first and mirror it here.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

namespace ssdk::sim {

class HeapEventQueue {
 public:
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }

  void push(SimTime time, EventKind kind, std::uint64_t a,
            std::uint64_t b = 0) {
    heap_.push_back(Event{time, next_seq_++, kind, a, b});
    sift_up(heap_.size() - 1);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }

  SimTime next_time() const {
    assert(!heap_.empty());
    return heap_.front().time;
  }

  Event pop() {
    assert(!heap_.empty());
    const Event top = heap_.front();
    const Event displaced = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(displaced);
    return top;
  }

 private:
  static bool earlier(const Event& x, const Event& y) {
    if (x.time != y.time) return x.time < y.time;
    return x.seq < y.seq;
  }

  void sift_up(std::size_t i) {
    const Event e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(const Event& e) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t fence = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < fence; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ssdk::sim
