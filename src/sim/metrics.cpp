#include "sim/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace ssdk::sim {

void MetricsCollector::record(const Completion& c) {
  if (c.type == OpType::kTrim) {
    ++counters_.host_trims;
    return;
  }
  if (c.type == OpType::kRead) {
    ++counters_.host_reads;
  } else {
    ++counters_.host_writes;
  }
  if (c.arrival < warmup_ns_) return;  // warmup: counted, not sampled
  auto& t = tenants_[c.tenant];
  const double us = to_us(c.latency());
  if (c.type == OpType::kRead) {
    t.read_latency_us.add(us);
  } else {
    t.write_latency_us.add(us);
  }
}

const TenantMetrics& MetricsCollector::tenant(TenantId id) const {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    throw std::out_of_range("metrics: unknown tenant " + std::to_string(id));
  }
  return it->second;
}

void MetricsCollector::record_read_retry(TenantId tenant, Duration extra_ns) {
  ++counters_.read_retries;
  counters_.retry_wait_ns += extra_ns;
  auto& t = tenants_[tenant];
  ++t.read_retries;
  t.retry_wait_ns += extra_ns;
}

void MetricsCollector::record_uncorrectable_read(TenantId tenant) {
  ++counters_.uncorrectable_reads;
  ++tenants_[tenant].uncorrectable_reads;
}

void MetricsCollector::record_program_retry(TenantId tenant) {
  ++counters_.program_fails;
  ++tenants_[tenant].program_retries;
}

TenantMetrics MetricsCollector::aggregate() const {
  TenantMetrics agg;
  for (const auto& [_, t] : tenants_) {
    agg.read_latency_us.merge(t.read_latency_us);
    agg.write_latency_us.merge(t.write_latency_us);
    agg.read_retries += t.read_retries;
    agg.uncorrectable_reads += t.uncorrectable_reads;
    agg.program_retries += t.program_retries;
    agg.retry_wait_ns += t.retry_wait_ns;
  }
  return agg;
}

double MetricsCollector::conflict_rate() const {
  if (counters_.page_ops == 0) return 0.0;
  return static_cast<double>(counters_.conflicts) /
         static_cast<double>(counters_.page_ops);
}

std::string MetricsCollector::report() const {
  std::ostringstream os;
  const TenantMetrics agg = aggregate();
  os << "reads: " << summarize(agg.read_latency_us) << " us\n"
     << "writes: " << summarize(agg.write_latency_us) << " us\n"
     << "conflict rate: " << conflict_rate() << ", gc migrations: "
     << counters_.gc_migrations << ", erases: " << counters_.erases << '\n';
  for (const auto& [id, t] : tenants_) {
    os << "  tenant " << id << ": avg read " << t.avg_read_us()
       << " us, avg write " << t.avg_write_us() << " us\n";
  }
  return os.str();
}

}  // namespace ssdk::sim
