#include "sim/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace ssdk::sim {

TenantMetrics& MetricsCollector::slot(TenantId id) {
  if (id == kInternalTenant) {
    internal_present_ = true;
    return internal_;
  }
  if (id >= dense_.size()) {
    dense_.resize(id + 1);
    present_.resize(id + 1, 0);
  }
  present_[id] = 1;
  return dense_[id];
}

void MetricsCollector::record(const Completion& c) {
  if (c.type == OpType::kTrim) {
    ++counters_.host_trims;
    return;
  }
  if (c.type == OpType::kFlush) {
    ++counters_.host_flushes;
    return;
  }
  if (c.type == OpType::kRead) {
    ++counters_.host_reads;
  } else {
    ++counters_.host_writes;
  }
  if (c.arrival < warmup_ns_) return;  // warmup: counted, not sampled
  auto& t = slot(c.tenant);
  const double us = to_us(c.latency());
  if (c.type == OpType::kRead) {
    t.read_latency_us.add(us);
  } else {
    t.write_latency_us.add(us);
  }
  if (c.tenant != kInternalTenant && c.tenant < slo_target_us_.size()) {
    const std::uint64_t target = slo_target_us_[c.tenant];
    if (target != 0 && us > static_cast<double>(target)) ++t.slo_violations;
  }
}

void MetricsCollector::set_slo_target_us(TenantId tenant, std::uint64_t us) {
  if (tenant == kInternalTenant) return;  // GC traffic has no SLO
  if (tenant >= slo_target_us_.size()) {
    if (us == 0) return;
    slo_target_us_.resize(tenant + 1, 0);
  }
  slo_target_us_[tenant] = us;
}

const TenantMetrics& MetricsCollector::tenant(TenantId id) const {
  if (!has_tenant(id)) {
    throw std::out_of_range("metrics: unknown tenant " + std::to_string(id));
  }
  return id == kInternalTenant ? internal_ : dense_[id];
}

void MetricsCollector::record_read_retry(TenantId tenant, Duration extra_ns) {
  ++counters_.read_retries;
  counters_.retry_wait_ns += extra_ns;
  auto& t = slot(tenant);
  ++t.read_retries;
  t.retry_wait_ns += extra_ns;
}

void MetricsCollector::record_uncorrectable_read(TenantId tenant) {
  ++counters_.uncorrectable_reads;
  ++slot(tenant).uncorrectable_reads;
}

void MetricsCollector::record_program_retry(TenantId tenant) {
  ++counters_.program_fails;
  ++slot(tenant).program_retries;
}

void MetricsCollector::record_volatile_loss(TenantId tenant,
                                            std::uint64_t pages) {
  counters_.volatile_pages_lost += pages;
  slot(tenant).acked_volatile_lost += pages;
}

std::map<TenantId, TenantMetrics> MetricsCollector::all_tenants() const {
  std::map<TenantId, TenantMetrics> out;
  for (TenantId id = 0; id < dense_.size(); ++id) {
    if (present_[id]) out.emplace(id, dense_[id]);
  }
  if (internal_present_) out.emplace(kInternalTenant, internal_);
  return out;
}

TenantMetrics MetricsCollector::aggregate() const {
  TenantMetrics agg;
  const auto merge = [&agg](const TenantMetrics& t) {
    agg.read_latency_us.merge(t.read_latency_us);
    agg.write_latency_us.merge(t.write_latency_us);
    agg.read_retries += t.read_retries;
    agg.uncorrectable_reads += t.uncorrectable_reads;
    agg.program_retries += t.program_retries;
    agg.retry_wait_ns += t.retry_wait_ns;
    agg.acked_volatile_lost += t.acked_volatile_lost;
    agg.slo_violations += t.slo_violations;
  };
  for (TenantId id = 0; id < dense_.size(); ++id) {
    if (present_[id]) merge(dense_[id]);
  }
  if (internal_present_) merge(internal_);
  return agg;
}

LatencySums MetricsCollector::aggregate_sums() const {
  LatencySums out;
  const auto fold = [&out](const TenantMetrics& t) {
    out.read_sum_us += t.read_latency_us.sum();
    out.write_sum_us += t.write_latency_us.sum();
    out.reads += t.read_latency_us.count();
    out.writes += t.write_latency_us.count();
  };
  for (TenantId id = 0; id < dense_.size(); ++id) {
    if (present_[id]) fold(dense_[id]);
  }
  if (internal_present_) fold(internal_);
  return out;
}

double MetricsCollector::conflict_rate() const {
  if (counters_.page_ops == 0) return 0.0;
  return static_cast<double>(counters_.conflicts) /
         static_cast<double>(counters_.page_ops);
}

namespace {

void save_tenant(snapshot::StateWriter& w, const TenantMetrics& t) {
  w.vec_f64(t.read_latency_us.samples());
  w.vec_f64(t.write_latency_us.samples());
  w.u64(t.read_retries);
  w.u64(t.uncorrectable_reads);
  w.u64(t.program_retries);
  w.u64(t.retry_wait_ns);
  w.u64(t.acked_volatile_lost);
  w.u64(t.slo_violations);
}

void load_tenant(snapshot::StateReader& r, TenantMetrics& t) {
  t.read_latency_us.restore(r.vec_f64());
  t.write_latency_us.restore(r.vec_f64());
  t.read_retries = r.u64();
  t.uncorrectable_reads = r.u64();
  t.program_retries = r.u64();
  t.retry_wait_ns = r.u64();
  t.acked_volatile_lost = r.u64();
  t.slo_violations = r.u64();
}

void save_counters(snapshot::StateWriter& w, const DeviceCounters& c) {
  w.u64(c.host_reads);
  w.u64(c.host_writes);
  w.u64(c.host_trims);
  w.u64(c.gc_migrations);
  w.u64(c.erases);
  w.u64(c.conflicts);
  w.u64(c.page_ops);
  w.u64(c.bus_busy_ns);
  w.u64(c.chip_busy_ns);
  w.u64(c.read_wait_ns);
  w.u64(c.write_wait_ns);
  w.u64(c.read_ops_started);
  w.u64(c.write_ops_started);
  w.u64(c.read_retries);
  w.u64(c.uncorrectable_reads);
  w.u64(c.program_fails);
  w.u64(c.erase_fails);
  w.u64(c.retired_blocks);
  w.u64(c.rescue_migrations);
  w.u64(c.lost_pages);
  w.u64(c.retry_wait_ns);
  w.u64(c.failed_requests);
  w.u64(c.host_flushes);
  w.u64(c.power_cycles);
  w.u64(c.mount_time_ns);
  w.u64(c.mount_scan_reads);
  w.u64(c.torn_pages_discarded);
  w.u64(c.unknown_blocks_recovered);
  w.u64(c.interrupted_requests);
  w.u64(c.volatile_pages_lost);
}

void load_counters(snapshot::StateReader& r, DeviceCounters& c) {
  c.host_reads = r.u64();
  c.host_writes = r.u64();
  c.host_trims = r.u64();
  c.gc_migrations = r.u64();
  c.erases = r.u64();
  c.conflicts = r.u64();
  c.page_ops = r.u64();
  c.bus_busy_ns = r.u64();
  c.chip_busy_ns = r.u64();
  c.read_wait_ns = r.u64();
  c.write_wait_ns = r.u64();
  c.read_ops_started = r.u64();
  c.write_ops_started = r.u64();
  c.read_retries = r.u64();
  c.uncorrectable_reads = r.u64();
  c.program_fails = r.u64();
  c.erase_fails = r.u64();
  c.retired_blocks = r.u64();
  c.rescue_migrations = r.u64();
  c.lost_pages = r.u64();
  c.retry_wait_ns = r.u64();
  c.failed_requests = r.u64();
  c.host_flushes = r.u64();
  c.power_cycles = r.u64();
  c.mount_time_ns = r.u64();
  c.mount_scan_reads = r.u64();
  c.torn_pages_discarded = r.u64();
  c.unknown_blocks_recovered = r.u64();
  c.interrupted_requests = r.u64();
  c.volatile_pages_lost = r.u64();
}

}  // namespace

void MetricsCollector::save_state(snapshot::StateWriter& w) const {
  w.tag("METR");
  w.u64(warmup_ns_);
  save_counters(w, counters_);
  w.u64(dense_.size());
  for (std::size_t id = 0; id < dense_.size(); ++id) {
    w.u8(present_[id]);
    save_tenant(w, dense_[id]);
  }
  w.boolean(internal_present_);
  save_tenant(w, internal_);
}

void MetricsCollector::load_state(snapshot::StateReader& r) {
  r.tag("METR");
  warmup_ns_ = r.u64();
  load_counters(r, counters_);
  const std::uint64_t n = r.checked_count(1);
  dense_.assign(n, TenantMetrics{});
  present_.assign(n, 0);
  for (std::uint64_t id = 0; id < n; ++id) {
    present_[id] = r.u8();
    load_tenant(r, dense_[id]);
  }
  internal_present_ = r.boolean();
  internal_ = TenantMetrics{};
  load_tenant(r, internal_);
}

std::string MetricsCollector::report() const {
  std::ostringstream os;
  const TenantMetrics agg = aggregate();
  os << "reads: " << summarize(agg.read_latency_us) << " us\n"
     << "writes: " << summarize(agg.write_latency_us) << " us\n"
     << "conflict rate: " << conflict_rate() << ", gc migrations: "
     << counters_.gc_migrations << ", erases: " << counters_.erases << '\n';
  for (const auto& [id, t] : all_tenants()) {
    os << "  tenant " << id << ": avg read " << t.avg_read_us()
       << " us, avg write " << t.avg_write_us() << " us\n";
  }
  return os.str();
}

}  // namespace ssdk::sim
