// Fairness arithmetic shared by the runner, the fleet tier and the
// benches: Jain's index over per-tenant allocations (slowdowns,
// throughput shares, ...).
#pragma once

#include <span>

namespace ssdk::sched {

/// Jain's fairness index (Σx)² / (n · Σx²) over non-negative allocations.
/// 1.0 = perfectly even, 1/n = one tenant takes everything. Returns 0 for
/// an empty span or all-zero values.
double jain_index(std::span<const double> values);

}  // namespace ssdk::sched
