#include "sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace ssdk::sched {

namespace {

/// Fixed-point scale of the WFQ virtual clock: one page of service at
/// weight 1 advances a tenant's finish tag by this much, so weighted
/// divisions stay exact integers for any weight the scale divides.
constexpr std::uint64_t kWfqScale = 1ULL << 20;

}  // namespace

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFifo: return "fifo";
    case Policy::kWfq: return "wfq";
    case Policy::kDrr: return "drr";
    case Policy::kWeightedShare: return "weighted_share";
  }
  return "unknown";
}

Policy parse_policy(std::string_view name) {
  if (name == "fifo") return Policy::kFifo;
  if (name == "wfq") return Policy::kWfq;
  if (name == "drr") return Policy::kDrr;
  if (name == "weighted_share") return Policy::kWeightedShare;
  throw std::invalid_argument("sched: unknown policy '" + std::string(name) +
                              "' (want fifo|wfq|drr|weighted_share)");
}

std::uint32_t SchedConfig::weight_of(sim::TenantId tenant) const {
  for (const TenantShare& s : shares) {
    if (s.tenant == tenant) return s.weight;
  }
  return 1;
}

std::uint64_t SchedConfig::slo_target_us_of(sim::TenantId tenant) const {
  for (const TenantShare& s : shares) {
    if (s.tenant == tenant) return s.slo_target_us;
  }
  return 0;
}

void SchedConfig::validate() const {
  if (drr_quantum_pages == 0) {
    throw std::invalid_argument(
        "sched: drr_quantum_pages must be positive (DRR would never "
        "accumulate credit)");
  }
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (shares[i].weight == 0) {
      throw std::invalid_argument("sched: tenant " +
                                  std::to_string(shares[i].tenant) +
                                  " has zero weight");
    }
    for (std::size_t j = i + 1; j < shares.size(); ++j) {
      if (shares[i].tenant == shares[j].tenant) {
        throw std::invalid_argument("sched: duplicate share entry for "
                                    "tenant " +
                                    std::to_string(shares[i].tenant));
      }
    }
  }
}

namespace {

/// Shared admission-window and sequence bookkeeping; concrete policies
/// supply the queues and the pick rule.
class SchedulerBase : public Scheduler {
 public:
  explicit SchedulerBase(const SchedConfig& config) : config_(config) {}

  std::uint64_t outstanding() const override { return outstanding_; }
  std::uint64_t decisions() const override { return decision_seq_; }

  void on_complete(sim::TenantId /*tenant*/) override {
    SSDK_CHECK_MSG(outstanding_ > 0,
                   "sched: completion with no outstanding request");
    --outstanding_;
  }

 protected:
  bool window_open() const {
    return config_.max_outstanding_requests == 0 ||
           outstanding_ < config_.max_outstanding_requests;
  }
  void grant(Grant& out, std::uint64_t request_index, sim::TenantId tenant,
             SimTime enqueued_at) {
    out.request_index = request_index;
    out.tenant = tenant;
    out.enqueued_at = enqueued_at;
    out.decision_seq = decision_seq_++;
    ++outstanding_;
  }
  void save_header(snapshot::StateWriter& w) const {
    w.tag("SCHD");
    w.u8(static_cast<std::uint8_t>(policy()));
    w.u64(outstanding_);
    w.u64(decision_seq_);
    w.u64(next_seq_);
  }
  void load_header(snapshot::StateReader& r) {
    r.tag("SCHD");
    const auto p = static_cast<Policy>(r.u8());
    if (p != policy()) {
      throw snapshot::SnapshotError(
          "snapshot: scheduler policy mismatch at offset " +
              std::to_string(r.offset()) + ": device configured for " +
              std::string(policy_name(policy())) + ", payload carries " +
              std::string(policy_name(p)),
          r.offset());
    }
    outstanding_ = r.u64();
    decision_seq_ = r.u64();
    next_seq_ = r.u64();
  }

  // ssdk-snap: skip(config_): construction-time configuration; travels with the snapshot in the OPTS section, not in SCHD
  SchedConfig config_;
  std::uint64_t outstanding_ = 0;
  std::uint64_t decision_seq_ = 0;
  std::uint64_t next_seq_ = 0;  ///< enqueue order (fair-policy tie-breaks)
};

/// Arrival-order admission. With the default unlimited window this is the
/// schedule-neutral baseline: enqueue -> pick -> admit happens
/// synchronously at the arrival instant, in arrival order.
class FifoScheduler final : public SchedulerBase {
 public:
  using SchedulerBase::SchedulerBase;

  Policy policy() const override { return Policy::kFifo; }

  void enqueue(std::uint64_t request_index, sim::TenantId tenant,
               std::uint32_t /*page_count*/, SimTime now) override {
    q_.push_back(Entry{request_index, now, tenant});
    ++next_seq_;
  }

  bool pick(Grant& out) override {
    if (!window_open() || q_.empty()) return false;
    const Entry e = q_.front();
    q_.pop_front();
    grant(out, e.request_index, e.tenant, e.enqueued_at);
    return true;
  }

  std::size_t pending() const override { return q_.size(); }

  std::vector<std::uint64_t> pending_requests() const override {
    std::vector<std::uint64_t> out;
    out.reserve(q_.size());
    for (const Entry& e : q_) out.push_back(e.request_index);
    return out;
  }

  void clear() override {
    q_.clear();
    outstanding_ = 0;
  }

  std::unique_ptr<Scheduler> clone() const override {
    return std::make_unique<FifoScheduler>(*this);
  }

  void save_state(snapshot::StateWriter& w) const override {
    save_header(w);
    w.u64(q_.size());
    for (const Entry& e : q_) {
      w.u64(e.request_index);
      w.u64(e.enqueued_at);
      w.u32(e.tenant);
    }
  }

  void load_state(snapshot::StateReader& r) override {
    load_header(r);
    const std::uint64_t n = r.checked_count(8 + 8 + 4);
    q_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      Entry e;
      e.request_index = r.u64();
      e.enqueued_at = r.u64();
      e.tenant = r.u32();
      q_.push_back(e);
    }
  }

  void check_invariants() const override {
    if (config_.max_outstanding_requests > 0) {
      SSDK_CHECK_MSG(outstanding_ <= config_.max_outstanding_requests,
                     "sched: outstanding " + std::to_string(outstanding_) +
                         " exceeds the admission window");
    } else {
      // An unlimited window admits synchronously, so at most the one
      // request whose arrival hook is currently running may be pending
      // (a fork taken inside the hook clones exactly that state; the
      // clone's run loop admits it on entry).
      SSDK_CHECK_MSG(q_.size() <= 1,
                     "sched: fifo with an unlimited window holds " +
                         std::to_string(q_.size()) +
                         " pending requests outside a pump");
    }
  }

 private:
  struct Entry {
    std::uint64_t request_index = 0;
    SimTime enqueued_at = 0;
    sim::TenantId tenant = 0;
  };
  std::deque<Entry> q_;
};

/// Per-tenant FIFO queues with a weighted arbitration rule on top. One
/// class covers WFQ, DRR and weighted share: the queues, the window and
/// the serialization are identical, only next_head() differs.
class FairScheduler final : public SchedulerBase {
 public:
  FairScheduler(const SchedConfig& config, Policy policy)
      : SchedulerBase(config), policy_(policy) {}

  Policy policy() const override { return policy_; }

  void enqueue(std::uint64_t request_index, sim::TenantId tenant,
               std::uint32_t page_count, SimTime now) override {
    TenantState& t = slot(tenant);
    Item item;
    item.request_index = request_index;
    item.page_count = page_count;
    item.enqueued_at = now;
    item.seq = next_seq_++;
    // WFQ (start-time fair queueing) tags, assigned at enqueue: a tenant's
    // items form a chain of back-to-back virtual service intervals
    // starting no earlier than the current virtual time. Computed for
    // every policy — they are cheap, and keeping Item uniform keeps the
    // wire format policy-independent.
    item.start_tag = std::max(vtime_, t.last_finish);
    item.finish_tag =
        item.start_tag + static_cast<std::uint64_t>(page_count) * kWfqScale /
                             config_.weight_of(tenant);
    t.last_finish = item.finish_tag;
    t.q.push_back(item);
    ++pending_;
  }

  bool pick(Grant& out) override {
    if (!window_open() || pending_ == 0) return false;
    const auto it = next_head();
    TenantState& t = it->second;
    const Item item = t.q.front();
    switch (policy_) {
      case Policy::kWfq:
        // The virtual clock follows the minimum start tag in service, so
        // idle tenants re-enter at the current service level instead of
        // claiming their whole idle period as credit.
        vtime_ = std::max(vtime_, item.start_tag);
        break;
      case Policy::kDrr:
        t.deficit -= item.page_count;  // next_head topped it up past cost
        break;
      case Policy::kWeightedShare:
        t.served_pages += item.page_count;
        break;
      case Policy::kFifo:
        break;  // unreachable: FifoScheduler handles kFifo
    }
    t.q.pop_front();
    --pending_;
    if (policy_ == Policy::kDrr) {
      if (t.q.empty()) {
        // Classic DRR: an emptied queue forfeits its residual credit.
        t.deficit = 0;
        rr_cursor_ = it->first + 1;
      } else {
        rr_cursor_ = it->first;  // keep serving while the credit lasts
      }
    }
    grant(out, item.request_index, it->first, item.enqueued_at);
    return true;
  }

  std::size_t pending() const override { return pending_; }

  std::vector<std::uint64_t> pending_requests() const override {
    std::vector<std::uint64_t> out;
    out.reserve(pending_);
    for (const auto& [tenant, t] : tenants_) {
      for (const Item& item : t.q) out.push_back(item.request_index);
    }
    return out;
  }

  void clear() override {
    for (auto& [tenant, t] : tenants_) {
      t.q.clear();
      t.deficit = 0;
    }
    pending_ = 0;
    outstanding_ = 0;
  }

  std::unique_ptr<Scheduler> clone() const override {
    return std::make_unique<FairScheduler>(*this);
  }

  void save_state(snapshot::StateWriter& w) const override {
    save_header(w);
    w.u64(vtime_);
    w.u32(rr_cursor_);
    w.u64(tenants_.size());
    for (const auto& [tenant, t] : tenants_) {
      w.u32(tenant);
      w.u64(t.last_finish);
      w.u64(t.deficit);
      w.u64(t.served_pages);
      w.u64(t.q.size());
      for (const Item& item : t.q) {
        w.u64(item.request_index);
        w.u64(item.enqueued_at);
        w.u64(item.seq);
        w.u64(item.start_tag);
        w.u64(item.finish_tag);
        w.u32(item.page_count);
      }
    }
  }

  void load_state(snapshot::StateReader& r) override {
    load_header(r);
    vtime_ = r.u64();
    rr_cursor_ = r.u32();
    tenants_.clear();
    pending_ = 0;
    const std::uint64_t ntenants = r.checked_count(4 + 4 * 8 + 8);
    for (std::uint64_t i = 0; i < ntenants; ++i) {
      const sim::TenantId tenant = r.u32();
      TenantState& t = tenants_[tenant];
      t.last_finish = r.u64();
      t.deficit = r.u64();
      t.served_pages = r.u64();
      const std::uint64_t nitems = r.checked_count(5 * 8 + 4);
      for (std::uint64_t j = 0; j < nitems; ++j) {
        Item item;
        item.request_index = r.u64();
        item.enqueued_at = r.u64();
        item.seq = r.u64();
        item.start_tag = r.u64();
        item.finish_tag = r.u64();
        item.page_count = r.u32();
        t.q.push_back(item);
        ++pending_;
      }
    }
  }

  void check_invariants() const override {
    if (config_.max_outstanding_requests > 0) {
      SSDK_CHECK_MSG(outstanding_ <= config_.max_outstanding_requests,
                     "sched: outstanding " + std::to_string(outstanding_) +
                         " exceeds the admission window");
    }
    std::size_t queued = 0;
    for (const auto& [tenant, t] : tenants_) {
      std::uint64_t prev_start = 0;
      for (const Item& item : t.q) {
        ++queued;
        SSDK_CHECK_MSG(item.page_count > 0,
                       "sched: tenant " + std::to_string(tenant) +
                           " queues a zero-page request");
        SSDK_CHECK_MSG(item.seq < next_seq_,
                       "sched: queued item carries seq " +
                           std::to_string(item.seq) + " >= next_seq");
        SSDK_CHECK_MSG(item.start_tag >= prev_start &&
                           item.finish_tag >= item.start_tag,
                       "sched: tenant " + std::to_string(tenant) +
                           " has non-monotone WFQ tags");
        prev_start = item.start_tag;
      }
      SSDK_CHECK_MSG(t.q.empty() || t.last_finish >= t.q.back().finish_tag,
                     "sched: tenant " + std::to_string(tenant) +
                         " last_finish behind its queued tail");
    }
    SSDK_CHECK_MSG(queued == pending_,
                   "sched: pending counter " + std::to_string(pending_) +
                       " != queued items " + std::to_string(queued));
  }

 private:
  struct Item {
    std::uint64_t request_index = 0;
    SimTime enqueued_at = 0;
    std::uint64_t seq = 0;
    std::uint64_t start_tag = 0;   ///< WFQ virtual start
    std::uint64_t finish_tag = 0;  ///< WFQ virtual finish
    std::uint32_t page_count = 0;
  };
  struct TenantState {
    std::deque<Item> q;
    std::uint64_t last_finish = 0;   ///< WFQ: tail of the tag chain
    std::uint64_t deficit = 0;       ///< DRR credit, in pages
    std::uint64_t served_pages = 0;  ///< weighted share accounting
  };
  using TenantMap = std::map<sim::TenantId, TenantState>;

  TenantState& slot(sim::TenantId tenant) { return tenants_[tenant]; }

  /// The backlogged tenant the policy serves next. Callers guarantee
  /// pending_ > 0. For DRR this also tops up deficits round-robin until a
  /// tenant can afford its head (guaranteed to terminate: every full lap
  /// adds quantum * weight >= 1 page of credit).
  TenantMap::iterator next_head() {
    switch (policy_) {
      case Policy::kWfq: {
        auto best = tenants_.end();
        for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
          if (it->second.q.empty()) continue;
          const Item& head = it->second.q.front();
          if (best == tenants_.end() ||
              head.start_tag < best->second.q.front().start_tag ||
              (head.start_tag == best->second.q.front().start_tag &&
               head.seq < best->second.q.front().seq)) {
            best = it;
          }
        }
        return best;
      }
      case Policy::kDrr: {
        while (true) {
          auto it = next_backlogged(rr_cursor_);
          TenantState& t = it->second;
          if (t.deficit >= t.q.front().page_count) return it;
          t.deficit += static_cast<std::uint64_t>(config_.drr_quantum_pages) *
                       config_.weight_of(it->first);
          rr_cursor_ = it->first + 1;
        }
      }
      case Policy::kWeightedShare: {
        // argmin served_pages / weight, exact via cross-multiplication;
        // map order makes the tie-break "lowest tenant id".
        auto best = tenants_.end();
        for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
          if (it->second.q.empty()) continue;
          if (best == tenants_.end() ||
              it->second.served_pages * config_.weight_of(best->first) <
                  best->second.served_pages * config_.weight_of(it->first)) {
            best = it;
          }
        }
        return best;
      }
      case Policy::kFifo:
        break;
    }
    return tenants_.end();  // unreachable
  }

  /// First tenant with queued work at id >= `from`, wrapping around.
  TenantMap::iterator next_backlogged(sim::TenantId from) {
    for (auto it = tenants_.lower_bound(from); it != tenants_.end(); ++it) {
      if (!it->second.q.empty()) return it;
    }
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
      if (!it->second.q.empty()) return it;
    }
    return tenants_.end();  // unreachable while pending_ > 0
  }

  // ssdk-snap: skip(policy_): fixed at construction; the SCHD section stores a policy tag and refuses to load under a different one
  Policy policy_;
  TenantMap tenants_;
  // ssdk-snap: skip(pending_): derived count of queued requests, recomputed while the per-tenant queues load
  std::size_t pending_ = 0;
  std::uint64_t vtime_ = 0;        ///< WFQ virtual clock
  sim::TenantId rr_cursor_ = 0;    ///< DRR: next tenant id to visit
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const SchedConfig& config) {
  config.validate();
  if (config.policy == Policy::kFifo) {
    return std::make_unique<FifoScheduler>(config);
  }
  return std::make_unique<FairScheduler>(config, config.policy);
}

}  // namespace ssdk::sched
