// Pluggable multi-tenant admission scheduling (ROADMAP open item 2).
//
// The scheduler sits between the host request stream and channel dispatch:
// every arrival is enqueued, and the device admits requests only when the
// scheduler grants them. The default — FIFO with an unlimited admission
// window — grants each request immediately at its arrival instant, so the
// dispatch schedule (and therefore every golden trace) is bit-identical to
// the historical direct-dispatch path. Fairness policies (WFQ, DRR,
// weighted share) reorder admissions only when a finite
// max_outstanding_requests window makes requests actually queue.
//
// Determinism: every policy is pure integer arithmetic over scheduler
// state, tie-broken by enqueue sequence or tenant id — a given enqueue
// history always yields the same grant sequence, on any thread count.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/request.hpp"
#include "snapshot/archive.hpp"

namespace ssdk::sched {

enum class Policy : std::uint8_t {
  kFifo,           ///< arrival order (the schedule-neutral default)
  kWfq,            ///< start-time fair queueing over weighted page service
  kDrr,            ///< deficit round robin with weight-scaled quanta
  kWeightedShare,  ///< least served-pages/weight first
};

const char* policy_name(Policy policy);
/// Parse "fifo" | "wfq" | "drr" | "weighted_share" (bench/CLI spelling).
/// Throws std::invalid_argument on anything else.
Policy parse_policy(std::string_view name);

/// Per-tenant scheduling contract: relative weight for the fair policies
/// and an optional latency SLO the metrics layer counts violations
/// against. Tenants without an entry default to weight 1, no SLO.
struct TenantShare {
  sim::TenantId tenant = 0;
  std::uint32_t weight = 1;
  /// Per-request latency target in microseconds (arrival to completion);
  /// 0 = no target. Violations are counted per tenant in TenantMetrics.
  std::uint64_t slo_target_us = 0;
};

struct SchedConfig {
  Policy policy = Policy::kFifo;
  /// Admission window: requests admitted to dispatch but not yet fully
  /// completed. 0 = unlimited — every request is admitted the instant it
  /// arrives, which keeps FIFO bit-identical to the pre-scheduler device.
  /// A finite window is what lets the fair policies reorder admissions.
  std::uint32_t max_outstanding_requests = 0;
  /// DRR: pages of credit added per round-robin visit, scaled by the
  /// tenant's weight.
  std::uint32_t drr_quantum_pages = 8;
  std::vector<TenantShare> shares;

  std::uint32_t weight_of(sim::TenantId tenant) const;
  std::uint64_t slo_target_us_of(sim::TenantId tenant) const;
  /// True when this config provably cannot change the dispatch schedule
  /// (FIFO + unlimited window): arrivals drain through the scheduler
  /// synchronously in arrival order.
  bool schedule_neutral() const {
    return policy == Policy::kFifo && max_outstanding_requests == 0;
  }
  /// Throws std::invalid_argument on zero weights, zero DRR quantum, or
  /// duplicate tenant entries.
  void validate() const;
};

/// One admission decision handed back by pick().
struct Grant {
  std::uint64_t request_index = 0;  ///< index into the device request table
  sim::TenantId tenant = 0;
  SimTime enqueued_at = 0;          ///< when the request entered the queue
  std::uint64_t decision_seq = 0;   ///< monotone pick counter (telemetry)
};

/// Admission-policy interface. The device enqueues every arrival, then
/// drains pick() until it returns false (window closed or nothing
/// pending); on_complete() reopens the window as requests finish.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual Policy policy() const = 0;
  virtual void enqueue(std::uint64_t request_index, sim::TenantId tenant,
                       std::uint32_t page_count, SimTime now) = 0;
  /// Admit the next request under the policy; false when the admission
  /// window is closed or no request is pending.
  virtual bool pick(Grant& out) = 0;
  /// One previously admitted request fully completed.
  virtual void on_complete(sim::TenantId tenant) = 0;

  /// Requests enqueued but not yet admitted.
  virtual std::size_t pending() const = 0;
  /// Requests admitted but not yet completed.
  virtual std::uint64_t outstanding() const = 0;
  /// Request indices currently held in the queues (audit/power-loss
  /// introspection; policy iteration order, deterministic).
  virtual std::vector<std::uint64_t> pending_requests() const = 0;
  /// Total admissions granted so far (monotone; survives clear()).
  virtual std::uint64_t decisions() const = 0;

  /// Drop all queued work and outstanding accounting (power loss: queued
  /// requests vanish like every other volatile structure).
  virtual void clear() = 0;
  virtual std::unique_ptr<Scheduler> clone() const = 0;

  virtual void save_state(snapshot::StateWriter& w) const = 0;
  virtual void load_state(snapshot::StateReader& r) = 0;
  /// Structural self-audit; throws util::InvariantViolation.
  virtual void check_invariants() const = 0;
};

std::unique_ptr<Scheduler> make_scheduler(const SchedConfig& config);

/// Copyable owner of a Scheduler. Copying clones the policy state, which
/// keeps Ssd's memberwise copy constructor (fork()) defaulted — a raw
/// unique_ptr member would delete it.
class SchedulerHandle {
 public:
  SchedulerHandle() = default;
  explicit SchedulerHandle(std::unique_ptr<Scheduler> impl)
      : impl_(std::move(impl)) {}
  SchedulerHandle(const SchedulerHandle& other)
      : impl_(other.impl_ ? other.impl_->clone() : nullptr) {}
  SchedulerHandle& operator=(const SchedulerHandle& other) {
    if (this != &other) impl_ = other.impl_ ? other.impl_->clone() : nullptr;
    return *this;
  }
  SchedulerHandle(SchedulerHandle&&) noexcept = default;
  SchedulerHandle& operator=(SchedulerHandle&&) noexcept = default;

  Scheduler* operator->() { return impl_.get(); }
  const Scheduler* operator->() const { return impl_.get(); }
  Scheduler& operator*() { return *impl_; }
  const Scheduler& operator*() const { return *impl_; }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  // ssdk-snap: skip(impl_): polymorphic owner handle; the concrete scheduler serializes itself through virtual save_state/load_state
  std::unique_ptr<Scheduler> impl_;
};

}  // namespace ssdk::sched
