#include "sched/fairness.hpp"

namespace ssdk::sched {

double jain_index(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace ssdk::sched
