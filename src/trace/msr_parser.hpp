// Parser for MSR Cambridge block traces (the format of mds_0, prxy_0, ...).
//
// CSV columns: Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//   Timestamp   Windows FILETIME (100 ns ticks since 1601)
//   Type        "Read" or "Write" (case-insensitive)
//   Offset/Size bytes
// Timestamps are rebased so the first record arrives at t = 0; offsets are
// converted to page numbers and wrapped into a bounded logical space so a
// week-long server trace fits any simulated capacity.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/record.hpp"

namespace ssdk::trace {

struct MsrParseOptions {
  std::uint32_t page_size_bytes = 16 * 1024;
  /// Logical footprint cap; offsets are wrapped modulo this many pages.
  std::uint64_t address_space_pages = 1 << 20;
  /// Multiply all inter-arrival gaps by this factor (< 1 accelerates a
  /// trace so a simulator run exercises contention in reasonable time).
  double time_scale = 1.0;
  /// Stop after this many records (0 = no limit).
  std::uint64_t max_records = 0;
  /// Tolerate malformed lines: count and log them (one warning per
  /// stream) instead of throwing. Real week-long traces contain the odd
  /// truncated line; a replay should not die on record 40 million.
  bool skip_malformed = false;
};

/// Per-parse accounting, filled when a stats pointer is supplied.
struct MsrParseStats {
  std::uint64_t parsed_lines = 0;     ///< records successfully parsed
  std::uint64_t malformed_lines = 0;  ///< lines skipped (skip_malformed)
  /// First malformed line's error message (empty when none).
  std::string first_error;
};

/// Parse an MSR CSV stream. Malformed lines throw std::invalid_argument
/// carrying the line number and the offending text — unless
/// options.skip_malformed is set, in which case they are counted in
/// `stats` (optional) and skipped.
Workload parse_msr(std::istream& in, const MsrParseOptions& options = {},
                   MsrParseStats* stats = nullptr);

/// Convenience file wrapper; throws std::runtime_error if unreadable.
Workload parse_msr_file(const std::string& path,
                        const MsrParseOptions& options = {},
                        MsrParseStats* stats = nullptr);

}  // namespace ssdk::trace
