#include "trace/msr_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/logger.hpp"

namespace ssdk::trace {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// "msr: line N: <what> in '<line>'" — the line text is truncated so a
/// corrupt multi-megabyte line cannot blow up the exception message.
std::string line_error(std::uint64_t line_no, const std::string& what,
                       const std::string& line) {
  constexpr std::size_t kMaxEcho = 120;
  std::string echo = line.substr(0, kMaxEcho);
  if (line.size() > kMaxEcho) echo += "...";
  return "msr: line " + std::to_string(line_no) + ": " + what + " in '" +
         echo + "'";
}

struct ParsedLine {
  std::uint64_t ticks = 0;
  TraceRecord rec;
};

/// Parse one CSV line fully before the caller commits anything — a
/// malformed line therefore leaves no partial state behind.
ParsedLine parse_line(const std::string& line, std::uint64_t line_no,
                      const MsrParseOptions& options) {
  const auto fields = split_csv_line(line);
  if (fields.size() < 6) {
    throw std::invalid_argument(line_error(
        line_no,
        "expected >= 6 fields, got " + std::to_string(fields.size()), line));
  }
  ParsedLine parsed;
  try {
    parsed.ticks = parse_u64(fields[0]);
  } catch (const std::exception& e) {
    throw std::invalid_argument(
        line_error(line_no, std::string("bad timestamp: ") + e.what(), line));
  }

  const std::string type = lower(fields[3]);
  if (type == "read") {
    parsed.rec.type = sim::OpType::kRead;
  } else if (type == "write") {
    parsed.rec.type = sim::OpType::kWrite;
  } else {
    throw std::invalid_argument(
        line_error(line_no, "unknown type '" + fields[3] + "'", line));
  }

  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  try {
    offset = parse_u64(fields[4]);
    size = parse_u64(fields[5]);
  } catch (const std::exception& e) {
    throw std::invalid_argument(line_error(
        line_no, std::string("bad offset/size: ") + e.what(), line));
  }
  parsed.rec.lpn =
      (offset / options.page_size_bytes) % options.address_space_pages;
  parsed.rec.pages = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, (size + options.page_size_bytes - 1) /
                                     options.page_size_bytes));
  if (parsed.rec.pages > options.address_space_pages) {
    throw std::invalid_argument(line_error(
        line_no, "request larger than the wrapped address space", line));
  }
  if (parsed.rec.lpn + parsed.rec.pages > options.address_space_pages) {
    parsed.rec.lpn = options.address_space_pages - parsed.rec.pages;
  }
  return parsed;
}
}  // namespace

Workload parse_msr(std::istream& in, const MsrParseOptions& options,
                   MsrParseStats* stats) {
  if (options.page_size_bytes == 0 || options.address_space_pages == 0) {
    throw std::invalid_argument("msr: zero page size or address space");
  }
  Workload out;
  std::vector<std::uint64_t> ticks_of;
  std::string line;
  std::uint64_t line_no = 0;
  std::uint64_t malformed = 0;
  std::string first_error;
  std::uint64_t min_ticks = ~std::uint64_t{0};
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ParsedLine parsed;
    try {
      parsed = parse_line(line, line_no, options);
    } catch (const std::invalid_argument& e) {
      if (!options.skip_malformed) throw;
      ++malformed;
      if (first_error.empty()) first_error = e.what();
      continue;
    }
    // Commit the record and its timestamp together — only fully parsed
    // lines contribute state.
    min_ticks = std::min(min_ticks, parsed.ticks);
    ticks_of.push_back(parsed.ticks);
    out.push_back(parsed.rec);
    if (options.max_records != 0 && out.size() >= options.max_records) break;
  }
  if (malformed > 0) {
    log_warn() << "msr: skipped " << malformed << " malformed line"
               << (malformed == 1 ? "" : "s") << " (first: " << first_error
               << ")";
  }
  if (stats) {
    stats->parsed_lines = out.size();
    stats->malformed_lines = malformed;
    stats->first_error = std::move(first_error);
  }
  // Rebase to the earliest record (FILETIME ticks are 100 ns) and scale.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double rel_ns = static_cast<double>(ticks_of[i] - min_ticks) *
                          100.0 * options.time_scale;
    out[i].arrival = static_cast<SimTime>(rel_ns);
  }
  // MSR traces are near-sorted but not strictly; the device requires
  // monotone arrivals.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.arrival < b.arrival;
                   });
  return out;
}

Workload parse_msr_file(const std::string& path,
                        const MsrParseOptions& options,
                        MsrParseStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("msr: cannot open " + path);
  return parse_msr(in, options, stats);
}

}  // namespace ssdk::trace
