#include "trace/msr_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <stdexcept>

#include "util/csv.hpp"

namespace ssdk::trace {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

Workload parse_msr(std::istream& in, const MsrParseOptions& options) {
  if (options.page_size_bytes == 0 || options.address_space_pages == 0) {
    throw std::invalid_argument("msr: zero page size or address space");
  }
  Workload out;
  std::vector<std::uint64_t> ticks_of;
  std::string line;
  std::uint64_t line_no = 0;
  std::uint64_t min_ticks = ~std::uint64_t{0};
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    if (fields.size() < 6) {
      throw std::invalid_argument("msr: line " + std::to_string(line_no) +
                                  ": expected >= 6 fields");
    }
    TraceRecord rec;
    const std::uint64_t ticks = parse_u64(fields[0]);
    min_ticks = std::min(min_ticks, ticks);
    ticks_of.push_back(ticks);

    const std::string type = lower(fields[3]);
    if (type == "read") {
      rec.type = sim::OpType::kRead;
    } else if (type == "write") {
      rec.type = sim::OpType::kWrite;
    } else {
      throw std::invalid_argument("msr: line " + std::to_string(line_no) +
                                  ": unknown type '" + fields[3] + "'");
    }

    const std::uint64_t offset = parse_u64(fields[4]);
    const std::uint64_t size = parse_u64(fields[5]);
    rec.lpn = (offset / options.page_size_bytes) % options.address_space_pages;
    rec.pages = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, (size + options.page_size_bytes - 1) /
                                       options.page_size_bytes));
    if (rec.lpn + rec.pages > options.address_space_pages) {
      rec.lpn = options.address_space_pages - rec.pages;
    }
    out.push_back(rec);
    if (options.max_records != 0 && out.size() >= options.max_records) break;
  }
  // Rebase to the earliest record (FILETIME ticks are 100 ns) and scale.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double rel_ns = static_cast<double>(ticks_of[i] - min_ticks) *
                          100.0 * options.time_scale;
    out[i].arrival = static_cast<SimTime>(rel_ns);
  }
  // MSR traces are near-sorted but not strictly; the device requires
  // monotone arrivals.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.arrival < b.arrival;
                   });
  return out;
}

Workload parse_msr_file(const std::string& path,
                        const MsrParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("msr: cannot open " + path);
  return parse_msr(in, options);
}

}  // namespace ssdk::trace
