// Synthetic equivalents of the paper's evaluation traces.
//
// The paper replays six MSR Cambridge block traces (Table II). Those traces
// are public but not bundled here, so the catalog provides synthetic
// stand-ins matched on the axes SSDKeeper actually senses: per-workload
// write ratio (Table II) and relative arrival intensity (chosen so the four
// Table-IV mixes measure feature vectors close to the paper's Table V —
// e.g. Mix1 is low-intensity and prxy_0-dominated, Mix2 is src_1-dominated
// and read-heavy). Real MSR CSVs can be substituted via trace/msr_parser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/request.hpp"
#include "trace/record.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::trace {

/// Names of the six Table-II workloads.
const std::vector<std::string>& catalog_names();

/// Spec for one catalog workload covering `duration_s` seconds of arrivals.
/// Throws std::invalid_argument for unknown names.
SyntheticSpec catalog_spec(const std::string& name, double duration_s,
                           std::uint64_t seed = 0);

/// The paper's Table IV tenant line-ups (index 1..4).
const std::vector<std::string>& mix_workload_names(std::uint32_t mix_index);

/// Build MixN (1..4): generate the four catalog workloads over
/// `duration_s`, mix chronologically, truncate to `max_requests`
/// (0 = keep all). Tenant i is the i-th name in mix_workload_names.
std::vector<sim::IoRequest> build_mix(std::uint32_t mix_index,
                                      double duration_s,
                                      std::uint64_t max_requests = 0,
                                      std::uint64_t seed = 0);

/// Intensity scale: the request rate mapped to the top intensity level by
/// the features collector default. The catalog mixes deliberately sit in
/// the lower two thirds of the scale; the top band is the overload regime
/// where the paper's Figure 6 shows aggressive partitioning.
inline constexpr double kCatalogMaxMixRps = 36'000.0;

}  // namespace ssdk::trace
