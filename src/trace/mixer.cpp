#include "trace/mixer.hpp"

#include <algorithm>
#include <queue>

namespace ssdk::trace {

std::vector<sim::IoRequest> mix_workloads(
    std::span<const Workload> workloads, std::uint64_t max_requests) {
  // K-way merge by (arrival, workload index) for deterministic ties.
  struct Cursor {
    std::size_t workload;
    std::size_t index;
  };
  const auto later = [&](const Cursor& a, const Cursor& b) {
    const SimTime ta = workloads[a.workload][a.index].arrival;
    const SimTime tb = workloads[b.workload][b.index].arrival;
    if (ta != tb) return ta > tb;
    return a.workload > b.workload;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(
      later);
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    if (!workloads[w].empty()) heap.push(Cursor{w, 0});
    total += workloads[w].size();
  }
  if (max_requests != 0) total = std::min(total, max_requests);

  std::vector<sim::IoRequest> out;
  out.reserve(total);
  while (!heap.empty() && out.size() < total) {
    const Cursor c = heap.top();
    heap.pop();
    const TraceRecord& rec = workloads[c.workload][c.index];
    sim::IoRequest req;
    req.id = out.size();
    req.tenant = static_cast<sim::TenantId>(c.workload);
    req.type = rec.type;
    req.lpn = rec.lpn;
    req.page_count = rec.pages;
    req.arrival = rec.arrival;
    out.push_back(req);
    if (c.index + 1 < workloads[c.workload].size()) {
      heap.push(Cursor{c.workload, c.index + 1});
    }
  }
  return out;
}

}  // namespace ssdk::trace
