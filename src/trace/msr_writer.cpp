#include "trace/msr_writer.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace ssdk::trace {

void write_msr(std::ostream& os, const Workload& workload,
               const MsrWriteOptions& options) {
  if (options.page_size_bytes == 0) {
    throw std::invalid_argument("msr writer: zero page size");
  }
  for (const auto& rec : workload) {
    if (rec.type == sim::OpType::kTrim ||
        rec.type == sim::OpType::kFlush) {
      // The MSR format predates TRIM and has no flush barriers; skip.
      continue;
    }
    const std::uint64_t ticks = options.base_ticks + rec.arrival / 100;
    const std::uint64_t offset =
        rec.lpn * static_cast<std::uint64_t>(options.page_size_bytes);
    const std::uint64_t size =
        static_cast<std::uint64_t>(rec.pages) * options.page_size_bytes;
    os << ticks << ',' << options.hostname << ',' << options.disk_number
       << ',' << (rec.type == sim::OpType::kWrite ? "Write" : "Read") << ','
       << offset << ',' << size << ",0\n";
  }
}

void write_msr_file(const std::string& path, const Workload& workload,
                    const MsrWriteOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("msr writer: cannot open " + path);
  write_msr(out, workload, options);
}

}  // namespace ssdk::trace
