// Chronological mixing of per-tenant workloads into one request stream —
// the paper's "mix the four workloads in chronological order, then take one
// million traces".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/request.hpp"
#include "trace/record.hpp"

namespace ssdk::trace {

/// Merge workloads by arrival time; workload i becomes tenant i. Request
/// ids are assigned in merged order. `max_requests` truncates the merged
/// stream (0 = keep everything).
std::vector<sim::IoRequest> mix_workloads(
    std::span<const Workload> workloads, std::uint64_t max_requests = 0);

}  // namespace ssdk::trace
