// Descriptive statistics over workloads and mixed request streams —
// the measured counterpart of Table II, and helpers to size experiments
// (aggregate arrival rate vs device capability).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/request.hpp"
#include "trace/record.hpp"

namespace ssdk::trace {

struct WorkloadStats {
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t pages = 0;
  double write_ratio = 0.0;
  double read_ratio = 0.0;
  double mean_pages = 0.0;
  double duration_s = 0.0;
  double intensity_rps = 0.0;  ///< requests / duration

  std::string describe() const;
};

WorkloadStats compute_stats(const Workload& w);

/// Per-tenant stats of a mixed stream, indexed by tenant id.
std::vector<WorkloadStats> per_tenant_stats(
    std::span<const sim::IoRequest> mixed, std::uint32_t num_tenants);

/// Aggregate stats of a mixed stream.
WorkloadStats mixed_stats(std::span<const sim::IoRequest> mixed);

}  // namespace ssdk::trace
