// Synthetic workload generation.
//
// The paper trains on synthetic mixed workloads whose read/write
// characteristics and proportions are varied; real MSR traces are used only
// for the final evaluation. This generator controls exactly the axes the
// features collector measures: write fraction, arrival intensity, request
// size, address footprint, and locality (zipfian skew + sequentiality).
#pragma once

#include <cstdint>
#include <string>

#include "trace/record.hpp"
#include "util/rng.hpp"

namespace ssdk::trace {

struct SyntheticSpec {
  std::string name = "synthetic";
  double write_fraction = 0.5;       ///< probability a request is a write
  std::uint64_t request_count = 10'000;
  double intensity_rps = 20'000.0;   ///< mean arrival rate (Poisson)
  double mean_request_pages = 2.0;   ///< geometric size distribution mean
  std::uint32_t max_request_pages = 32;
  std::uint64_t address_space_pages = 1 << 16;
  double zipf_theta = 0.2;           ///< 0 = uniform addressing
  double sequential_fraction = 0.2;  ///< P(request follows its predecessor)
  /// Arrival burstiness in [0, 1): with this probability an interarrival
  /// gap is compressed 5x (and the remaining gaps stretched so the mean
  /// rate is preserved exactly). 0 = plain Poisson.
  double burstiness = 0.0;
  /// Probability a request is a flush barrier (drawn before the read/write
  /// split; flushes are single-page metadata requests). 0 keeps the RNG
  /// stream — and therefore every existing golden trace — untouched.
  double flush_fraction = 0.0;
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument when a field is out of range.
  void validate() const;
};

/// Generate a workload; deterministic in the spec (including seed).
Workload generate_synthetic(const SyntheticSpec& spec);

}  // namespace ssdk::trace
