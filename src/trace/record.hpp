// Tenant-agnostic trace records. A workload is a time-ordered sequence of
// records; the mixer assigns tenant ids and merges several workloads into
// the multi-tenant request stream the device consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/request.hpp"
#include "util/time_types.hpp"

namespace ssdk::trace {

struct TraceRecord {
  SimTime arrival = 0;
  sim::OpType type = sim::OpType::kRead;
  std::uint64_t lpn = 0;
  std::uint32_t pages = 1;
};

using Workload = std::vector<TraceRecord>;

}  // namespace ssdk::trace
