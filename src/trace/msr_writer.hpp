// Export workloads in MSR Cambridge CSV format — the inverse of
// trace/msr_parser. Lets synthetic workloads (including the Table-II
// catalog) be fed to other SSD simulators, and round-trips through our own
// parser for interop testing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/record.hpp"

namespace ssdk::trace {

struct MsrWriteOptions {
  std::uint32_t page_size_bytes = 16 * 1024;
  std::string hostname = "ssdk";
  std::uint32_t disk_number = 0;
  /// FILETIME ticks (100 ns) assigned to the first record.
  std::uint64_t base_ticks = 128166372000000000ULL;
};

/// Write records as "Timestamp,Hostname,DiskNumber,Type,Offset,Size,
/// ResponseTime" rows (ResponseTime written as 0 — it is an output of
/// replay, not an input).
void write_msr(std::ostream& os, const Workload& workload,
               const MsrWriteOptions& options = {});

/// Convenience file wrapper; throws std::runtime_error if unwritable.
void write_msr_file(const std::string& path, const Workload& workload,
                    const MsrWriteOptions& options = {});

}  // namespace ssdk::trace
