#include "trace/catalog.hpp"

#include <array>
#include <stdexcept>

#include "trace/mixer.hpp"

namespace ssdk::trace {

namespace {
struct CatalogEntry {
  const char* name;
  double write_fraction;   // Table II write ratio
  double intensity_rps;    // relative intensity (see header)
  double mean_pages;
  std::uint64_t address_space_pages;
  double zipf_theta;
  double sequential_fraction;
};

// Rates are calibrated so the Table-IV mixes reproduce the paper's
// Table-V intensity levels under the default 20-level / 36k-rps scale:
// Mix1 ~6.8k rps (level 3), Mix2 ~23.5k (13), Mix3 ~20.5k (11),
// Mix4 ~20.6k (11), and per-tenant request proportions close to Table V
// (e.g. Mix1 = [~.08, ~.09, ~.08, ~.75]).
constexpr std::array<CatalogEntry, 6> kCatalog{{
    {"mds_0", 0.88, 540.0, 2.0, 48 * 1024, 0.30, 0.10},
    {"mds_1", 0.07, 630.0, 4.0, 48 * 1024, 0.20, 0.40},
    {"rsrch_0", 0.91, 540.0, 1.5, 32 * 1024, 0.35, 0.05},
    {"prxy_0", 0.97, 5040.0, 1.5, 32 * 1024, 0.40, 0.15},
    {"src_1", 0.05, 17280.0, 4.0, 96 * 1024, 0.25, 0.50},
    {"web_2", 0.01, 14400.0, 3.0, 64 * 1024, 0.30, 0.30},
}};

const CatalogEntry& find_entry(const std::string& name) {
  for (const auto& e : kCatalog) {
    if (name == e.name) return e;
  }
  throw std::invalid_argument("catalog: unknown workload '" + name + "'");
}

const std::array<std::vector<std::string>, 4> kMixes{{
    {"mds_0", "mds_1", "rsrch_0", "prxy_0"},
    {"prxy_0", "src_1", "rsrch_0", "mds_1"},
    {"web_2", "rsrch_0", "prxy_0", "mds_0"},
    {"rsrch_0", "web_2", "mds_1", "prxy_0"},
}};
}  // namespace

const std::vector<std::string>& catalog_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& e : kCatalog) out.emplace_back(e.name);
    return out;
  }();
  return names;
}

SyntheticSpec catalog_spec(const std::string& name, double duration_s,
                           std::uint64_t seed) {
  if (duration_s <= 0.0) {
    throw std::invalid_argument("catalog: duration must be positive");
  }
  const CatalogEntry& e = find_entry(name);
  SyntheticSpec spec;
  spec.name = e.name;
  spec.write_fraction = e.write_fraction;
  spec.intensity_rps = e.intensity_rps;
  spec.request_count =
      static_cast<std::uint64_t>(e.intensity_rps * duration_s);
  spec.mean_request_pages = e.mean_pages;
  spec.address_space_pages = e.address_space_pages;
  spec.zipf_theta = e.zipf_theta;
  spec.sequential_fraction = e.sequential_fraction;
  // Distinct deterministic seed per (workload, caller seed).
  std::uint64_t h = seed * 0x9E3779B97F4A7C15ULL + 0xA5A5A5A5ULL;
  for (const char* p = e.name; *p != '\0'; ++p) {
    h = (h ^ static_cast<std::uint64_t>(*p)) * 0x100000001B3ULL;
  }
  spec.seed = h;
  return spec;
}

const std::vector<std::string>& mix_workload_names(std::uint32_t mix_index) {
  if (mix_index < 1 || mix_index > 4) {
    throw std::invalid_argument("catalog: mix index must be 1..4");
  }
  return kMixes[mix_index - 1];
}

std::vector<sim::IoRequest> build_mix(std::uint32_t mix_index,
                                      double duration_s,
                                      std::uint64_t max_requests,
                                      std::uint64_t seed) {
  const auto& names = mix_workload_names(mix_index);
  std::vector<Workload> workloads;
  workloads.reserve(names.size());
  for (const auto& name : names) {
    workloads.push_back(
        generate_synthetic(catalog_spec(name, duration_s, seed)));
  }
  return mix_workloads(workloads, max_requests);
}

}  // namespace ssdk::trace
