#include "trace/workload_stats.hpp"

#include <algorithm>
#include <sstream>

namespace ssdk::trace {

namespace {
void finalize(WorkloadStats& s, SimTime first, SimTime last) {
  if (s.requests == 0) return;
  s.write_ratio =
      static_cast<double>(s.writes) / static_cast<double>(s.requests);
  s.read_ratio =
      static_cast<double>(s.reads) / static_cast<double>(s.requests);
  s.mean_pages =
      static_cast<double>(s.pages) / static_cast<double>(s.requests);
  s.duration_s = static_cast<double>(last - first) / 1e9;
  s.intensity_rps = s.duration_s > 0.0
                        ? static_cast<double>(s.requests) / s.duration_s
                        : 0.0;
}
}  // namespace

std::string WorkloadStats::describe() const {
  std::ostringstream os;
  os << requests << " reqs, " << write_ratio * 100.0 << "% write, mean "
     << mean_pages << " pages, " << intensity_rps << " req/s over "
     << duration_s << " s";
  return os.str();
}

WorkloadStats compute_stats(const Workload& w) {
  WorkloadStats s;
  if (w.empty()) return s;
  SimTime first = w.front().arrival, last = w.front().arrival;
  for (const auto& rec : w) {
    ++s.requests;
    s.pages += rec.pages;
    if (rec.type == sim::OpType::kWrite) {
      ++s.writes;
    } else {
      ++s.reads;
    }
    first = std::min(first, rec.arrival);
    last = std::max(last, rec.arrival);
  }
  finalize(s, first, last);
  return s;
}

std::vector<WorkloadStats> per_tenant_stats(
    std::span<const sim::IoRequest> mixed, std::uint32_t num_tenants) {
  std::vector<WorkloadStats> out(num_tenants);
  std::vector<SimTime> first(num_tenants, 0), last(num_tenants, 0);
  std::vector<bool> seen(num_tenants, false);
  for (const auto& req : mixed) {
    if (req.tenant >= num_tenants) continue;
    auto& s = out[req.tenant];
    ++s.requests;
    s.pages += req.page_count;
    if (req.type == sim::OpType::kWrite) {
      ++s.writes;
    } else {
      ++s.reads;
    }
    if (!seen[req.tenant]) {
      first[req.tenant] = last[req.tenant] = req.arrival;
      seen[req.tenant] = true;
    } else {
      first[req.tenant] = std::min(first[req.tenant], req.arrival);
      last[req.tenant] = std::max(last[req.tenant], req.arrival);
    }
  }
  for (std::uint32_t t = 0; t < num_tenants; ++t) {
    finalize(out[t], first[t], last[t]);
  }
  return out;
}

WorkloadStats mixed_stats(std::span<const sim::IoRequest> mixed) {
  WorkloadStats s;
  if (mixed.empty()) return s;
  SimTime first = mixed.front().arrival, last = mixed.front().arrival;
  for (const auto& req : mixed) {
    ++s.requests;
    s.pages += req.page_count;
    if (req.type == sim::OpType::kWrite) {
      ++s.writes;
    } else {
      ++s.reads;
    }
    first = std::min(first, req.arrival);
    last = std::max(last, req.arrival);
  }
  finalize(s, first, last);
  return s;
}

}  // namespace ssdk::trace
