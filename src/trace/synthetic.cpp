#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ssdk::trace {

void SyntheticSpec::validate() const {
  if (write_fraction < 0.0 || write_fraction > 1.0) {
    throw std::invalid_argument("synthetic: write_fraction out of [0,1]");
  }
  if (intensity_rps <= 0.0) {
    throw std::invalid_argument("synthetic: intensity must be positive");
  }
  if (mean_request_pages < 1.0) {
    throw std::invalid_argument("synthetic: mean_request_pages < 1");
  }
  if (max_request_pages == 0 || address_space_pages == 0) {
    throw std::invalid_argument("synthetic: zero sizes");
  }
  if (zipf_theta < 0.0 || zipf_theta >= 1.0) {
    throw std::invalid_argument("synthetic: zipf_theta out of [0,1)");
  }
  if (sequential_fraction < 0.0 || sequential_fraction > 1.0) {
    throw std::invalid_argument("synthetic: sequential_fraction out of [0,1]");
  }
  if (burstiness < 0.0 || burstiness >= 1.0) {
    throw std::invalid_argument("synthetic: burstiness out of [0,1)");
  }
  if (flush_fraction < 0.0 || flush_fraction >= 1.0) {
    throw std::invalid_argument("synthetic: flush_fraction out of [0,1)");
  }
}

Workload generate_synthetic(const SyntheticSpec& spec) {
  spec.validate();
  Rng rng(spec.seed);
  ZipfGenerator zipf(spec.address_space_pages, spec.zipf_theta);

  // Geometric request size with mean `mean_request_pages`:
  // P(extra page) = 1 - 1/mean.
  const double p_more = 1.0 - 1.0 / spec.mean_request_pages;

  // Burstiness: compress a fraction p of gaps by kSquash and stretch the
  // rest so E[multiplier] = 1 and the configured rate is preserved.
  constexpr double kSquash = 0.2;
  const double stretch =
      spec.burstiness > 0.0
          ? (1.0 - kSquash * spec.burstiness) / (1.0 - spec.burstiness)
          : 1.0;

  Workload out;
  out.reserve(spec.request_count);
  double clock_ns = 0.0;
  std::uint64_t prev_end = 0;
  for (std::uint64_t i = 0; i < spec.request_count; ++i) {
    TraceRecord rec;
    double gap = rng.exponential(spec.intensity_rps) * 1e9;
    if (spec.burstiness > 0.0) {
      gap *= rng.bernoulli(spec.burstiness) ? kSquash : stretch;
    }
    clock_ns += gap;
    rec.arrival = static_cast<SimTime>(clock_ns);
    // The flush draw is gated so flush_fraction = 0 consumes no randomness
    // and reproduces pre-flush streams bit for bit.
    if (spec.flush_fraction > 0.0 && rng.bernoulli(spec.flush_fraction)) {
      rec.type = sim::OpType::kFlush;
      rec.pages = 1;
      rec.lpn = prev_end;
      out.push_back(rec);
      continue;
    }
    rec.type = rng.bernoulli(spec.write_fraction) ? sim::OpType::kWrite
                                                  : sim::OpType::kRead;
    std::uint32_t pages = 1;
    while (pages < spec.max_request_pages && rng.bernoulli(p_more)) ++pages;
    rec.pages = pages;

    if (rng.bernoulli(spec.sequential_fraction)) {
      rec.lpn = prev_end;  // continue where the last request ended
    } else {
      rec.lpn = zipf(rng);
    }
    // Keep the whole request inside the address space.
    if (rec.lpn + rec.pages > spec.address_space_pages) {
      rec.lpn = spec.address_space_pages - rec.pages;
    }
    prev_end = (rec.lpn + rec.pages) % spec.address_space_pages;
    out.push_back(rec);
  }
  return out;
}

}  // namespace ssdk::trace
