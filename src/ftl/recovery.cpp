// Power-up recovery: rebuild the FTL's volatile state from per-page OOB
// metadata (DESIGN.md §14).
//
// Durable inputs: page data + OOB (owner, global write sequence number),
// the bad-block table (retired flags) and per-block erase counters — a
// real device keeps the latter two in block 0 / the OOB of each block's
// first page. Everything else (L2P map, free lists, open blocks, valid
// counts, write pointers) is DRAM and is reconstructed here.
//
// Conflict resolution: one logical page may have several readable physical
// copies after a crash (host rewrites whose predecessor was never
// collected, GC copies whose source block was never erased). The highest
// sequence number wins; equal sequence numbers (a migration's source and
// destination copy of the *same* version) are broken toward the lower PPN
// by the ascending scan order. Exactly one copy per logical page survives
// as valid — valid pages can neither be lost nor double-counted.
//
// Block sealing: any block holding at least one programmed page is sealed
// kFull (write pointer pinned to the block's capacity) rather than
// reopened mid-block — pages allocated but never programmed before the cut
// would otherwise be reused under a stale write pointer. The sealed waste
// is reclaimable by normal GC. Untouched blocks return to the free list;
// blocks with an erase in flight at the cut are unknown and re-erased.
#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "ftl/block_manager.hpp"
#include "ftl/ftl.hpp"
#include "ftl/mapping.hpp"
#include "ftl/oob.hpp"

namespace ssdk::ftl {

void BlockManager::recover_from_oob(OobStore& oob, MappingTable& map,
                                    RecoveryReport& report) {
  const std::uint32_t ppb = geom_.pages_per_block;
  const std::uint64_t nblocks = blocks_.size();
  report.scanned_pages += total_pages_;

  // Pass 1: settle unknown blocks (erase was in flight at the cut). A
  // healthy block is re-erased at mount; a retired block is never erased,
  // so its unknown contents are written off as dead pages.
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    if (!oob.block_unknown(b)) continue;
    oob.clear_block_unknown(b);
    const sim::Ppn first = b * ppb;
    if (blocks_[b].state == BlockState::kRetired) {
      for (sim::Ppn p = first; p < first + ppb; ++p) oob.record_failed(p);
      continue;
    }
    oob.erase_range(first, ppb);
    ++blocks_[b].erases;
    ++report.unknown_blocks;
    ++report.reerases_per_plane[b / geom_.blocks_per_plane];
  }

  // Pass 2: scan every page's OOB in ascending PPN order and keep, per
  // logical page, the copy with the highest sequence number (first seen
  // wins ties — the lowest PPN). Torn pages are discarded and downgraded
  // to kFailed so a later crash-recovery cycle does not recount them.
  std::map<std::uint64_t, std::pair<std::uint64_t, sim::Ppn>> best;
  std::uint64_t readable = 0;
  for (sim::Ppn p = 0; p < total_pages_; ++p) {
    switch (oob.state(p)) {
      case OobState::kData: {
        ++readable;
        const std::uint64_t key = oob.owner(p);
        const std::uint64_t seq = oob.seq(p);
        const auto [it, inserted] = best.try_emplace(key, seq, p);
        if (!inserted && seq > it->second.first) it->second = {seq, p};
        break;
      }
      case OobState::kTorn:
        ++report.torn_pages;
        oob.record_failed(p);
        break;
      case OobState::kErased:
      case OobState::kFailed:
        break;
    }
  }

  // Pass 3: rebuild block bookkeeping. Only retired flags and erase
  // counters survive; fail counters are volatile DRAM and reset.
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    BlockInfo& info = blocks_[b];
    info.program_fails = 0;
    info.erase_fails = 0;
    info.valid = 0;
    if (info.state == BlockState::kRetired) continue;
    bool programmed = false;
    const sim::Ppn first = b * ppb;
    for (sim::Ppn p = first; p < first + ppb; ++p) {
      if (oob.state(p) != OobState::kErased) {
        programmed = true;
        break;
      }
    }
    if (programmed) {
      info.state = BlockState::kFull;
      info.write_ptr = ppb;
    } else {
      info.state = BlockState::kFree;
      info.write_ptr = 0;
    }
  }
  std::fill(valid_bits_.begin(), valid_bits_.end(), 0);

  // Pass 4: install the winners — owner table, valid counts, L2P map.
  for (const auto& [key, win] : best) {
    const sim::Ppn ppn = win.second;
    set_owner_raw(ppn, key);
    ++blocks_[ppn / ppb].valid;
    map.update(OobStore::owner_tenant(key), OobStore::owner_lpn(key), ppn);
  }
  report.recovered_pages += best.size();
  report.stale_pages += readable - best.size();

  // Pass 5: free lists (ascending block order — deterministic and
  // wear-ordered later by allocation) and append points.
  for (std::uint64_t plane = 0; plane < planes_.size(); ++plane) {
    PlaneInfo& info = planes_[plane];
    info.free_list.clear();
    info.open_block = -1;
    for (std::uint32_t blk = 0; blk < geom_.blocks_per_plane; ++blk) {
      if (blocks_[block_index(plane, blk)].state == BlockState::kFree) {
        info.free_list.push_back(blk);
      }
    }
  }

  // Retired blocks still holding winners need their rescue migration
  // restarted by the device model.
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    if (blocks_[b].state == BlockState::kRetired && blocks_[b].valid > 0) {
      report.rescue_blocks.emplace_back(
          b / geom_.blocks_per_plane,
          static_cast<std::uint32_t>(b % geom_.blocks_per_plane));
    }
  }
}

RecoveryReport Ftl::recover_after_power_loss() {
  if (!oob_.enabled()) {
    throw std::logic_error(
        "ftl: recovery scan requires OOB metadata — enable the power model "
        "before the crash, not after");
  }
  RecoveryReport report;
  report.reerases_per_plane.assign(geom_.total_planes(), 0);
  map_.clear();
  blocks_.recover_from_oob(oob_, map_, report);
  return report;
}

}  // namespace ssdk::ftl
