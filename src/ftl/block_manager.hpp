// Physical block bookkeeping: free lists, open (append-point) blocks,
// per-page validity and reverse mapping, erase counts for wear leveling.
//
// One open block per plane; writes routed to a plane append into its open
// block. Wear leveling is allocation-time: when a plane needs a fresh open
// block, the least-erased free block is chosen.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ftl/recovery.hpp"
#include "sim/geometry.hpp"
#include "sim/request.hpp"
#include "snapshot/archive.hpp"

namespace ssdk::ftl {

class MappingTable;
class OobStore;

/// Packed owner of a physical page: tenant in the top 24 bits, LPN in the
/// low 40 (a tenant logical space of up to ~10^12 pages).
struct PageOwner {
  sim::TenantId tenant = 0;
  std::uint64_t lpn = 0;
};

/// kRetired: a grown bad block, permanently out of rotation. Its surviving
/// valid pages stay readable until rescue migration moves them; the block
/// is never erased, never re-opened, and never returned to the free list.
enum class BlockState : std::uint8_t { kFree, kOpen, kFull, kRetired };

struct WearStats {
  std::uint64_t min_erases = 0;
  std::uint64_t max_erases = 0;
  double mean_erases = 0.0;
  std::uint64_t total_erases = 0;
};

class BlockManager {
 public:
  explicit BlockManager(const sim::Geometry& geometry);

  // The owner array is deliberately left uninitialized where the validity
  // bitmap says "invalid", so copies must be bitmap-guided: a full-array
  // memcpy would drag ~8 MB of never-written memory through the cache per
  // fork on the paper geometry, and device construction would pay the
  // same in memset. These copies are what make 42-way fork sweeps cheap.
  BlockManager(const BlockManager& other);
  BlockManager& operator=(const BlockManager& other);
  BlockManager(BlockManager&&) = default;
  BlockManager& operator=(BlockManager&&) = default;

  const sim::Geometry& geometry() const { return geom_; }

  /// Append one page in the plane's open block; opens a new block when the
  /// current one fills. Returns std::nullopt when the plane has no free
  /// page left (caller must GC or redirect). Inline: the steady-state
  /// path (an open block with room) runs once per page write and is just
  /// a bump of the block's write pointer.
  std::optional<sim::Ppn> allocate_page(std::uint64_t plane_id) {
    assert(plane_id < planes_.size());
    auto& plane = planes_[plane_id];
    if (plane.open_block < 0 && !open_new_block(plane_id)) {
      return std::nullopt;
    }

    auto block = static_cast<std::uint32_t>(plane.open_block);
    auto* info = &blocks_[block_index(plane_id, block)];
    if (info->write_ptr >= geom_.pages_per_block) {
      info->state = BlockState::kFull;
      plane.open_block = -1;
      if (!open_new_block(plane_id)) return std::nullopt;
      block = static_cast<std::uint32_t>(plane.open_block);
      info = &blocks_[block_index(plane_id, block)];
    }

    const sim::Ppn ppn =
        (block_index(plane_id, block)) * geom_.pages_per_block +
        info->write_ptr;
    ++info->write_ptr;
    if (info->write_ptr == geom_.pages_per_block) {
      info->state = BlockState::kFull;
      plane.open_block = -1;
    }
    return ppn;
  }

  /// Record ownership of a just-written page and mark it valid.
  void mark_valid(sim::Ppn ppn, sim::TenantId tenant, std::uint64_t lpn) {
    assert(ppn < total_pages_);
    assert(!page_valid(ppn));
    valid_bits_[ppn >> 6] |= std::uint64_t{1} << (ppn & 63);
    owner_[ppn] = pack_owner(tenant, lpn);
    ++blocks_[ppn / geom_.pages_per_block].valid;
  }

  /// Invalidate a page (its LPN was overwritten or trimmed).
  void invalidate(sim::Ppn ppn) {
    assert(ppn < total_pages_);
    const std::uint64_t mask = std::uint64_t{1} << (ppn & 63);
    std::uint64_t& word = valid_bits_[ppn >> 6];
    if ((word & mask) == 0) return;
    word &= ~mask;
    auto& info = blocks_[ppn / geom_.pages_per_block];
    assert(info.valid > 0);
    --info.valid;
  }

  bool is_valid(sim::Ppn ppn) const {
    assert(ppn < total_pages_);
    return page_valid(ppn);
  }

  PageOwner owner(sim::Ppn ppn) const {
    assert(ppn < total_pages_);
    if (!page_valid(ppn)) {
      throw std::logic_error("block_manager: page has no owner");
    }
    const std::uint64_t packed = owner_[ppn];
    return PageOwner{static_cast<sim::TenantId>(packed >> 40),
                     packed & kLpnMask};
  }

  std::uint32_t free_blocks(std::uint64_t plane_id) const;
  std::uint64_t free_pages(std::uint64_t plane_id) const;

  /// GC victim: the Full block in the plane with the fewest valid pages;
  /// std::nullopt when no Full block exists or the best victim has no
  /// reclaimable (invalid) page.
  std::optional<std::uint32_t> select_victim(std::uint64_t plane_id) const;

  /// Valid PPNs remaining in a block (the pages GC must migrate).
  std::vector<sim::Ppn> valid_pages(std::uint64_t plane_id,
                                    std::uint32_t block) const;

  /// Allocation-free variant: clears `out` and fills it with the block's
  /// valid PPNs, reusing its capacity (the device's GC loop calls this
  /// once per round with a scratch vector).
  void valid_pages_into(std::uint64_t plane_id, std::uint32_t block,
                        std::vector<sim::Ppn>& out) const;

  /// Erase a Full block with no valid pages: resets it to Free.
  /// Precondition (checked): block is Full and has zero valid pages.
  void erase_block(std::uint64_t plane_id, std::uint32_t block);

  std::uint32_t valid_count(std::uint64_t plane_id,
                            std::uint32_t block) const;
  std::uint64_t erase_count(std::uint64_t plane_id,
                            std::uint32_t block) const;
  BlockState block_state(std::uint64_t plane_id, std::uint32_t block) const;

  WearStats wear_stats() const;

  /// max - min erase count across one plane's blocks.
  std::uint64_t plane_wear_gap(std::uint64_t plane_id) const;

  /// The Full block with the lowest erase count in the plane — the static
  /// wear-leveling candidate (its cold data pins a low-wear block out of
  /// rotation). std::nullopt when no Full block exists.
  std::optional<std::uint32_t> coldest_full_block(
      std::uint64_t plane_id) const;

  /// Total valid pages across the device (conservation checks in tests).
  std::uint64_t total_valid_pages() const;

  /// Audit the block-level bookkeeping: per-block write-pointer/valid/state
  /// consistency, valid counters vs. actual page owners, plane free-list
  /// integrity (membership, uniqueness, state agreement), open-block
  /// registration, and the retired-block counter. Throws
  /// util::InvariantViolation on the first breach.
  void check_invariants() const;

  // --- bad-block management (fault model) --------------------------------

  /// Count one program failure in the block; returns the new total.
  std::uint32_t record_program_fail(std::uint64_t plane_id,
                                    std::uint32_t block);
  /// Count one erase failure in the block; returns the new total.
  std::uint32_t record_erase_fail(std::uint64_t plane_id,
                                  std::uint32_t block);

  /// Permanently take a block out of rotation. Legal from any non-retired
  /// state: a Free block leaves the free list, an Open block stops being
  /// the plane's append point, a Full block simply changes state. Valid
  /// pages are untouched (the caller rescues them via the GC migration
  /// path). Throws std::logic_error if already retired.
  void retire_block(std::uint64_t plane_id, std::uint32_t block);

  /// Retired blocks across the device.
  std::uint64_t retired_blocks() const { return retired_; }

  // --- power-loss recovery (driven by Ftl::recover_after_power_loss) ------

  /// Rebuild every piece of volatile block bookkeeping from the OOB scan:
  /// re-derive per-block state (unknown blocks re-erased, any block with a
  /// programmed page sealed Full, untouched blocks Free), reset per-page
  /// owners/valid counts to the scan's winning versions, rebuild the free
  /// lists, and install the winners into `map`. Only the bad-block table
  /// (retired flags) and erase counters are treated as durable. Defined in
  /// recovery.cpp.
  void recover_from_oob(OobStore& oob, MappingTable& map,
                        RecoveryReport& report);

  /// Serialize everything but the geometry (fixed at construction; the
  /// snapshot layer round-trips it as part of the device options).
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  static constexpr std::uint64_t kLpnMask = (1ULL << 40) - 1;
  /// Sentinel doubling as the validity flag: a page is valid exactly when
  /// it has an owner, so one array serves both queries with one cache
  /// line touched instead of two.
  static constexpr std::uint64_t kNoOwner = ~std::uint64_t{0};

  static std::uint64_t pack_owner(sim::TenantId tenant, std::uint64_t lpn) {
    assert(lpn <= kLpnMask);
    return (static_cast<std::uint64_t>(tenant) << 40) | lpn;
  }

  std::uint64_t block_index(std::uint64_t plane_id,
                            std::uint32_t block) const {
    return plane_id * geom_.blocks_per_plane + block;
  }

  /// Pop the least-erased free block of a plane and open it.
  bool open_new_block(std::uint64_t plane_id);

  // ssdk-snap: skip(geom_): fixed at construction; a loaded device is built from the OPTS geometry before load_state runs
  sim::Geometry geom_;

  struct BlockInfo {
    std::uint32_t write_ptr = 0;    ///< next page to program
    std::uint32_t valid = 0;        ///< valid page count
    std::uint64_t erases = 0;
    BlockState state = BlockState::kFree;
    std::uint8_t program_fails = 0;  ///< fault model: failures observed
    std::uint8_t erase_fails = 0;
  };
  struct PlaneInfo {
    std::vector<std::uint32_t> free_list;  ///< free block ids
    std::int64_t open_block = -1;          ///< -1 = none
  };

  bool page_valid(sim::Ppn ppn) const {
    return (valid_bits_[ppn >> 6] >> (ppn & 63)) & 1;
  }

  /// Install an owner during recovery/snapshot load (no valid-count
  /// bookkeeping — the caller rebuilds counters itself).
  void set_owner_raw(sim::Ppn ppn, std::uint64_t packed) {
    valid_bits_[ppn >> 6] |= std::uint64_t{1} << (ppn & 63);
    owner_[ppn] = packed;
  }

  /// Clear validity for [first, first + count) (block erase, recovery).
  void clear_valid_range(sim::Ppn first, std::uint64_t count);

  /// Bitmap-guided copy of another manager's owner state into this one's
  /// (already-allocated) arrays.
  void copy_owners_from(const BlockManager& other);

  std::vector<BlockInfo> blocks_;     // indexed by global block id
  std::vector<PlaneInfo> planes_;     // indexed by plane id
  std::uint64_t retired_ = 0;         // device-wide retired-block count
  // ssdk-snap: skip(total_pages_): derived from geometry at construction, never mutated
  std::uint64_t total_pages_ = 0;
  // Page validity, one bit per PPN. A page's packed owner
  // (tenant<<40 | lpn) lives in owner_[ppn] *only while its bit is set*;
  // owner_ is allocated uninitialized and entries for invalid pages are
  // never read or copied (see the copy-constructor note above).
  std::vector<std::uint64_t> valid_bits_;
  // ssdk-snap: skip(owner_): rebuilt entry-by-entry via set_owner_raw while the validity bitmap loads; invalid entries are deliberately uninitialized
  std::unique_ptr<std::uint64_t[]> owner_;
};

}  // namespace ssdk::ftl
