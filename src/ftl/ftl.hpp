// Flash translation layer facade: address mapping + block management +
// per-tenant placement policy + garbage-collection bookkeeping.
//
// The FTL is deliberately time-free: it decides *where* data lives; the
// device model (src/ssd) decides *when* operations execute and drives GC
// migrations through the same timed pipeline as host I/O.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ftl/block_manager.hpp"
#include "ftl/mapping.hpp"
#include "ftl/oob.hpp"
#include "ftl/page_alloc.hpp"
#include "ftl/recovery.hpp"
#include "sim/geometry.hpp"
#include "sim/request.hpp"
#include "telemetry/tracer.hpp"

namespace ssdk::ftl {

struct FtlConfig {
  /// GC starts when a plane's free-block count drops to this value...
  std::uint32_t gc_trigger_free_blocks = 2;
  /// ...and runs until the plane is back above this value.
  std::uint32_t gc_target_free_blocks = 3;
  /// Static wear leveling: when a plane's (max - min) erase gap exceeds
  /// this, the coldest Full block is force-migrated so its low-wear block
  /// re-enters rotation. 0 disables (allocation-time wear leveling only).
  std::uint64_t wear_gap_threshold = 0;
};

/// Thrown when a write cannot be placed anywhere in the tenant's allowed
/// channel set (device full even after GC had its chance). Carries the
/// tenant and LPN that could not be placed so callers can degrade
/// gracefully with a per-tenant report instead of crashing the replay.
class DeviceFullError : public std::runtime_error {
 public:
  explicit DeviceFullError(sim::TenantId tenant = sim::kInternalTenant,
                           std::uint64_t lpn = 0)
      : std::runtime_error("ftl: no free page available"),
        tenant_(tenant),
        lpn_(lpn) {}

  sim::TenantId tenant() const { return tenant_; }
  std::uint64_t lpn() const { return lpn_; }

 private:
  sim::TenantId tenant_;
  std::uint64_t lpn_;
};

class Ftl {
 public:
  Ftl(const sim::Geometry& geometry, FtlConfig config = {});

  const sim::Geometry& geometry() const { return geom_; }
  const FtlConfig& config() const { return config_; }

  // --- tenant policy -----------------------------------------------------

  /// Restrict a tenant's new writes (and read prepopulation) to a channel
  /// set. Defaults to all channels (the paper's Shared baseline).
  void set_tenant_channels(sim::TenantId tenant,
                           std::vector<std::uint32_t> channels);
  const std::vector<std::uint32_t>& tenant_channels(
      sim::TenantId tenant) const;

  void set_tenant_alloc_mode(sim::TenantId tenant, AllocMode mode);
  AllocMode tenant_alloc_mode(sim::TenantId tenant) const;

  // --- host path ----------------------------------------------------------

  /// Translate a read. Unmapped LPNs are prepopulated (static placement,
  /// no timing cost) as if the data had been written before the simulation
  /// started — read-only workloads then exercise real locations.
  sim::Ppn translate_read(sim::TenantId tenant, std::uint64_t lpn);

  /// Place a write according to the tenant's mode, invalidate the previous
  /// location, install the new mapping. Throws DeviceFullError when no
  /// allowed plane has a free page. Templated on the load view's concrete
  /// type so the device model's backlog probes devirtualize (see
  /// dynamic_place); the placement decision is identical for any Load.
  template <typename Load>
  sim::Ppn allocate_write(sim::TenantId tenant, std::uint64_t lpn,
                          const Load& load) {
    auto& policy = policy_for(tenant);
    const PlaneTarget target =
        policy.mode == AllocMode::kStatic
            ? static_place(geom_, policy.channels, policy.plan, lpn)
            : dynamic_place(geom_, policy.channels, load,
                            policy.rr_counter);
    return finish_host_write(tenant, lpn, target, policy.channels);
  }

  /// Host discard: drop the mapping and invalidate the physical page.
  /// Returns true when the LPN was mapped (false = no-op trim).
  bool trim(sim::TenantId tenant, std::uint64_t lpn);

  // --- garbage collection --------------------------------------------------

  bool needs_gc(std::uint64_t plane_id) const;
  bool gc_satisfied(std::uint64_t plane_id) const;
  std::optional<std::uint32_t> select_victim(std::uint64_t plane_id) const;
  std::vector<sim::Ppn> valid_pages(std::uint64_t plane_id,
                                    std::uint32_t block) const;
  /// Allocation-free variant reusing `out`'s capacity (GC hot loop).
  void valid_pages_into(std::uint64_t plane_id, std::uint32_t block,
                        std::vector<sim::Ppn>& out) const;

  /// Destination page for migrating `src` (same plane). Returns
  /// kInvalidPpn when the plane has no free page (GC cannot proceed).
  sim::Ppn allocate_migration(std::uint64_t plane_id);

  /// Finish a migration: if the mapping still points at `src`, repoint it
  /// to `dst` and transfer validity; otherwise (the LPN was overwritten
  /// mid-flight) the freshly written dst page is immediately invalid.
  /// Returns true when the migrated data is still live.
  bool complete_migration(sim::Ppn src, sim::Ppn dst);

  void erase_block(std::uint64_t plane_id, std::uint32_t block);

  /// Static wear-leveling candidate: the coldest Full block, but only when
  /// the feature is enabled and the plane's wear gap exceeds the
  /// threshold.
  std::optional<std::uint32_t> wear_leveling_candidate(
      std::uint64_t plane_id) const;

  // --- fault handling (driven by the device model) -------------------------

  std::uint32_t record_program_fail(std::uint64_t plane_id,
                                    std::uint32_t block) {
    return blocks_.record_program_fail(plane_id, block);
  }
  std::uint32_t record_erase_fail(std::uint64_t plane_id,
                                  std::uint32_t block) {
    return blocks_.record_erase_fail(plane_id, block);
  }
  void retire_block(std::uint64_t plane_id, std::uint32_t block) {
    blocks_.retire_block(plane_id, block);
    if (tracer_) {
      tracer_->record_point(trace_now(), telemetry::SpanKind::kBlockRetire,
                            sim::kInternalTenant, plane_channel(plane_id),
                            static_cast<std::uint32_t>(plane_id), block);
    }
  }

  /// Migration target for rescuing pages off a retiring block: prefers the
  /// home plane, then its chip's sibling planes, then the whole device
  /// (losing data beats plane locality). kInvalidPpn when the device is
  /// truly full.
  sim::Ppn allocate_rescue(std::uint64_t plane_id);

  /// Undo the placement of a failed program: invalidate the bad page and,
  /// when the mapping still pointed at it, drop the mapping (the caller
  /// immediately re-places via rewrite_page). Returns false when the LPN
  /// was overwritten while the program was in flight — the data is
  /// superseded and no rewrite is needed.
  bool discard_failed_program(sim::TenantId tenant, std::uint64_t lpn,
                              sim::Ppn failed);

  /// Re-place a failed program's page, preferring a sibling plane on the
  /// same chip (the failing plane's open block is suspect). Marks valid
  /// and installs the mapping. Throws DeviceFullError when nothing is
  /// free.
  sim::Ppn rewrite_page(sim::TenantId tenant, std::uint64_t lpn,
                        const sim::PhysAddr& failed_addr);

  /// An uncorrectable GC/rescue read: the page's data is lost. Drops the
  /// mapping and invalidates the page so the victim block can still be
  /// erased or retired cleanly.
  void drop_lost_page(sim::Ppn ppn);

  // --- OOB metadata + power-loss recovery ----------------------------------

  /// Materialize the per-page OOB store (power model armed). Idempotent.
  void enable_oob() { oob_.enable(geom_); }
  OobStore& oob() { return oob_; }
  const OobStore& oob() const { return oob_; }

  /// Power-up mount: full-device OOB scan rebuilding the L2P map (highest
  /// sequence number wins, lowest PPN breaks ties), block states, free
  /// lists and valid counts; unknown blocks are re-erased; torn/failed
  /// pages discarded. The device model charges the report's scan reads and
  /// re-erases as mount time. Requires enable_oob().
  RecoveryReport recover_after_power_loss();

  // --- introspection --------------------------------------------------------

  /// Full FTL audit: mapping-count consistency, block bookkeeping, and the
  /// L2P bijection in both directions — every mapped LPN points at a valid
  /// page whose recorded owner is that (tenant, LPN), and every valid
  /// physical page is reachable through its owner's mapping. Throws
  /// util::InvariantViolation on the first breach. O(total pages); meant
  /// for checked-build audits, not the hot path.
  void check_invariants() const;

  MappingTable& mapping() { return map_; }
  const MappingTable& mapping() const { return map_; }
  BlockManager& blocks() { return blocks_; }
  const BlockManager& blocks() const { return blocks_; }

  // --- telemetry ------------------------------------------------------------

  /// The FTL is time-free, so the owning device supplies the simulation
  /// clock alongside the sink. Placement and GC decisions are recorded as
  /// point events; a null tracer keeps every hook a single branch.
  void set_tracer(telemetry::Tracer* tracer, const SimTime* now) {
    tracer_ = tracer;
    trace_now_ = now;
  }

  // --- snapshot -------------------------------------------------------------

  /// Serialize mapping, block manager, and per-tenant policies. Geometry
  /// and config are reconstructed from the device options by the snapshot
  /// layer; the tracer is a non-owning observer and is not captured.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  struct TenantPolicy {
    std::vector<std::uint32_t> channels;
    AllocMode mode = AllocMode::kStatic;
    std::uint64_t rr_counter = 0;  // dynamic-placement plane rotation
    // ssdk-snap: skip(plan): cache rebuilt from `channels` (make_static_plan) whenever they change, including on load
    StaticPlan plan;  // strides for `channels`; rebuilt whenever it changes
  };

  TenantPolicy& policy_for(sim::TenantId tenant);
  const TenantPolicy& policy_for(sim::TenantId tenant) const;

  /// Tail of allocate_write after the placement decision: allocate at or
  /// near the target, install mapping + validity, invalidate the old
  /// copy, trace. Out of line — only the placement dispatch is templated.
  sim::Ppn finish_host_write(sim::TenantId tenant, std::uint64_t lpn,
                             const PlaneTarget& target,
                             const std::vector<std::uint32_t>& channels);

  /// Allocate a page at/near `target`, falling back to sibling planes,
  /// chips and allowed channels when full. kInvalidPpn if nothing free.
  sim::Ppn allocate_near(const PlaneTarget& target,
                         const std::vector<std::uint32_t>& channels);

  SimTime trace_now() const { return trace_now_ ? *trace_now_ : 0; }
  std::uint32_t plane_channel(std::uint64_t plane_id) const {
    return static_cast<std::uint32_t>(plane_id / geom_.planes_per_channel());
  }

  // ssdk-snap: skip(geom_): fixed at construction; a loaded device is built from the OPTS geometry before load_state runs
  sim::Geometry geom_;
  // ssdk-snap: skip(config_): construction-time configuration, reconstructed from OPTS on load
  FtlConfig config_;
  MappingTable map_;
  BlockManager blocks_;
  OobStore oob_;
  // ssdk-snap: skip(all_channels_): derived channel list [0, channels) computed from geometry at construction
  std::vector<std::uint32_t> all_channels_;
  mutable std::vector<TenantPolicy> policies_;
  // ssdk-snap: skip(tracer_): non-owning observer, explicitly not captured (see save_state doc comment)
  telemetry::Tracer* tracer_ = nullptr;
  // ssdk-snap: skip(trace_now_): non-owning pointer to the owner's clock, rewired by the owner after load
  const SimTime* trace_now_ = nullptr;
};

}  // namespace ssdk::ftl
