#include "ftl/oob.hpp"

#include <string>

#include "util/check.hpp"

namespace ssdk::ftl {

void OobStore::enable(const sim::Geometry& geometry) {
  if (enabled_) return;
  enabled_ = true;
  const std::uint64_t pages = geometry.total_pages();
  owner_.assign(pages, kNoOwner);
  seq_.assign(pages, 0);
  state_.assign(pages, OobState::kErased);
  unknown_blocks_.assign(geometry.total_blocks(), 0);
}

void OobStore::record_program(sim::Ppn ppn, sim::TenantId tenant,
                              std::uint64_t lpn, std::uint64_t seq) {
  SSDK_CHECK_MSG(state_[ppn] == OobState::kErased,
                 "oob: programming page " + std::to_string(ppn) +
                     " whose OOB is not erased");
  owner_[ppn] = pack_owner(tenant, lpn);
  seq_[ppn] = seq;
  state_[ppn] = OobState::kData;
}

void OobStore::record_migration(sim::Ppn src, sim::Ppn dst) {
  SSDK_CHECK_MSG(state_[src] == OobState::kData,
                 "oob: migrating page " + std::to_string(src) +
                     " with unreadable OOB");
  SSDK_CHECK_MSG(state_[dst] == OobState::kErased,
                 "oob: migration target " + std::to_string(dst) +
                     " whose OOB is not erased");
  owner_[dst] = owner_[src];
  seq_[dst] = seq_[src];
  state_[dst] = OobState::kData;
}

void OobStore::record_torn(sim::Ppn ppn) {
  owner_[ppn] = kNoOwner;
  seq_[ppn] = 0;
  state_[ppn] = OobState::kTorn;
}

void OobStore::record_failed(sim::Ppn ppn) {
  owner_[ppn] = kNoOwner;
  seq_[ppn] = 0;
  state_[ppn] = OobState::kFailed;
}

void OobStore::erase_range(sim::Ppn first, std::uint32_t count) {
  for (sim::Ppn p = first; p < first + count; ++p) {
    owner_[p] = kNoOwner;
    seq_[p] = 0;
    state_[p] = OobState::kErased;
  }
}

void OobStore::mark_block_unknown(std::uint64_t global_block) {
  unknown_blocks_[global_block] = 1;
}

void OobStore::clear_block_unknown(std::uint64_t global_block) {
  unknown_blocks_[global_block] = 0;
}

std::uint64_t OobStore::unknown_block_count() const {
  std::uint64_t n = 0;
  for (const std::uint8_t flag : unknown_blocks_) n += flag;
  return n;
}

void OobStore::check_invariants() const {
  if (!enabled_) return;
  for (sim::Ppn p = 0; p < state_.size(); ++p) {
    const auto raw = static_cast<std::uint8_t>(state_[p]);
    SSDK_CHECK_MSG(raw <= static_cast<std::uint8_t>(OobState::kFailed),
                   "oob: page " + std::to_string(p) +
                       " carries illegal state " + std::to_string(raw));
    if (state_[p] == OobState::kData) {
      SSDK_CHECK_MSG(owner_[p] != kNoOwner,
                     "oob: data page " + std::to_string(p) +
                         " has no recorded owner");
      SSDK_CHECK_MSG(seq_[p] > 0 && seq_[p] < next_seq_,
                     "oob: data page " + std::to_string(p) +
                         " carries seq " + std::to_string(seq_[p]) +
                         " outside (0, " + std::to_string(next_seq_) + ")");
    } else {
      SSDK_CHECK_MSG(owner_[p] == kNoOwner && seq_[p] == 0,
                     "oob: non-data page " + std::to_string(p) +
                         " still carries owner/seq metadata");
    }
  }
}

void OobStore::save_state(snapshot::StateWriter& w) const {
  w.tag("OOB_");
  w.boolean(enabled_);
  if (!enabled_) return;
  w.u64(next_seq_);
  w.vec_u64(owner_);
  w.vec_u64(seq_);
  w.u64(state_.size());
  for (const OobState s : state_) w.u8(static_cast<std::uint8_t>(s));
  w.u64(unknown_blocks_.size());
  for (const std::uint8_t f : unknown_blocks_) w.u8(f);
}

void OobStore::load_state(snapshot::StateReader& r,
                          const sim::Geometry& geometry) {
  r.tag("OOB_");
  const bool enabled = r.boolean();
  if (!enabled) {
    *this = OobStore{};
    return;
  }
  enable(geometry);
  next_seq_ = r.u64();
  owner_ = r.vec_u64();
  seq_ = r.vec_u64();
  const std::uint64_t npages = r.checked_count(1);
  if (owner_.size() != geometry.total_pages() ||
      seq_.size() != geometry.total_pages() ||
      npages != geometry.total_pages()) {
    throw snapshot::SnapshotError(
        "snapshot: OOB page-array size mismatch at offset " +
            std::to_string(r.offset()) + ": expected " +
            std::to_string(geometry.total_pages()) + " (from options)",
        r.offset());
  }
  state_.assign(npages, OobState::kErased);
  for (std::uint64_t p = 0; p < npages; ++p) {
    state_[p] = static_cast<OobState>(r.u8());
  }
  const std::uint64_t nblocks = r.checked_count(1);
  if (nblocks != geometry.total_blocks()) {
    throw snapshot::SnapshotError(
        "snapshot: OOB unknown-block array size mismatch at offset " +
            std::to_string(r.offset()) + ": expected " +
            std::to_string(geometry.total_blocks()) + " (from options)",
        r.offset());
  }
  unknown_blocks_.assign(nblocks, 0);
  for (std::uint64_t b = 0; b < nblocks; ++b) unknown_blocks_[b] = r.u8();
}

}  // namespace ssdk::ftl
