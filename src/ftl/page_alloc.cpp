#include "ftl/page_alloc.hpp"

#include <bit>
#include <cassert>
#include <limits>

namespace ssdk::ftl {

PlaneTarget dynamic_place(const sim::Geometry& g,
                          const std::vector<std::uint32_t>& channels,
                          const LoadView& load, std::uint64_t& rr_counter) {
  assert(!channels.empty());
  // Least-backlogged channel among the allowed set.
  std::uint32_t best_channel = channels.front();
  Duration best_cb = std::numeric_limits<Duration>::max();
  for (const std::uint32_t ch : channels) {
    const Duration cb = load.channel_backlog(ch);
    if (cb < best_cb) {
      best_cb = cb;
      best_channel = ch;
    }
  }
  // Least-backlogged chip on that channel.
  std::uint32_t best_chip = 0;
  Duration best_chb = std::numeric_limits<Duration>::max();
  for (std::uint32_t c = 0; c < g.chips_per_channel; ++c) {
    const Duration chb = load.chip_backlog(g.chip_id(best_channel, c));
    if (chb < best_chb) {
      best_chb = chb;
      best_chip = c;
    }
  }
  PlaneTarget t;
  t.channel = best_channel;
  t.chip = best_chip;
  t.plane = static_cast<std::uint32_t>(rr_counter++ % g.planes_per_chip);
  return t;
}

}  // namespace ssdk::ftl
