// Placement policies are fully header-inlined (page_alloc.hpp):
// static_place folds into the per-page-write loop, and dynamic_place is a
// template so the device model's concrete load view devirtualizes its
// backlog probes. This translation unit remains as the library anchor for
// the header.
#include "ftl/page_alloc.hpp"
