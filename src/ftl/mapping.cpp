#include "ftl/mapping.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace ssdk::ftl {

namespace {
constexpr std::size_t kMaxTenants = 1024;  // sanity bound on dense ids
}

std::vector<sim::Ppn>& MappingTable::table_for(sim::TenantId tenant) {
  if (tenant >= kMaxTenants) {
    throw std::invalid_argument("mapping: tenant id too large (dense ids "
                                "expected): " + std::to_string(tenant));
  }
  if (tables_.size() <= tenant) {
    tables_.resize(tenant + 1);
    mapped_counts_.resize(tenant + 1, 0);
  }
  return tables_[tenant];
}

sim::Ppn MappingTable::grow_and_update(sim::TenantId tenant,
                                       std::uint64_t lpn, sim::Ppn ppn) {
  auto& table = table_for(tenant);
  if (lpn >= table.size()) table.resize(lpn + 1, sim::kInvalidPpn);
  return update(tenant, lpn, ppn);  // re-enters on the fast path
}

sim::Ppn MappingTable::erase(sim::TenantId tenant, std::uint64_t lpn) {
  return update(tenant, lpn, sim::kInvalidPpn);
}

void MappingTable::clear() {
  for (auto& table : tables_) {
    std::fill(table.begin(), table.end(), sim::kInvalidPpn);
  }
  std::fill(mapped_counts_.begin(), mapped_counts_.end(), 0);
}

std::uint64_t MappingTable::mapped_count(sim::TenantId tenant) const {
  if (tenant >= mapped_counts_.size()) return 0;
  return mapped_counts_[tenant];
}

void MappingTable::check_invariants() const {
  SSDK_CHECK_MSG(tables_.size() == mapped_counts_.size(),
                 "mapping: table/count vectors out of step");
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    std::uint64_t mapped = 0;
    for (const sim::Ppn ppn : tables_[t]) {
      if (ppn != sim::kInvalidPpn) ++mapped;
    }
    SSDK_CHECK_MSG(mapped == mapped_counts_[t],
                   "mapping: tenant " + std::to_string(t) +
                       " cached mapped count " +
                       std::to_string(mapped_counts_[t]) + " != actual " +
                       std::to_string(mapped));
  }
}

void MappingTable::save_state(snapshot::StateWriter& w) const {
  w.tag("L2PM");
  w.u64(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    w.vec_u64(tables_[t]);
    w.u64(mapped_counts_[t]);
  }
}

void MappingTable::load_state(snapshot::StateReader& r) {
  r.tag("L2PM");
  const std::uint64_t n = r.checked_count(8);
  if (n > kMaxTenants) {
    throw snapshot::SnapshotError(
        "snapshot: mapping table tenant count " + std::to_string(n) +
            " exceeds limit " + std::to_string(kMaxTenants),
        r.offset());
  }
  tables_.assign(n, {});
  mapped_counts_.assign(n, 0);
  for (std::uint64_t t = 0; t < n; ++t) {
    tables_[t] = r.vec_u64();
    mapped_counts_[t] = r.u64();
  }
}

}  // namespace ssdk::ftl
