#include "ftl/ftl.hpp"

#include <algorithm>
#include <cassert>

#include "util/check.hpp"

namespace ssdk::ftl {

Ftl::Ftl(const sim::Geometry& geometry, FtlConfig config)
    : geom_(geometry), config_(config), blocks_(geometry) {
  geom_.validate();
  if (config_.gc_target_free_blocks < config_.gc_trigger_free_blocks) {
    throw std::invalid_argument("ftl: gc target below trigger");
  }
  all_channels_.resize(geom_.channels);
  for (std::uint32_t c = 0; c < geom_.channels; ++c) all_channels_[c] = c;
}

Ftl::TenantPolicy& Ftl::policy_for(sim::TenantId tenant) {
  if (tenant == sim::kInternalTenant) {
    // GC/rescue traffic places via allocate_migration / allocate_rescue;
    // reaching here with the internal tenant would silently grow the
    // policy table to 2^32 entries (tenant + 1 wraps to 0 in 32 bits).
    throw std::logic_error("ftl: internal tenant has no placement policy");
  }
  if (policies_.size() <= tenant) {
    policies_.resize(static_cast<std::size_t>(tenant) + 1);
  }
  auto& p = policies_[tenant];
  if (p.channels.empty()) {
    p.channels = all_channels_;
    p.plan = make_static_plan(geom_, p.channels.size());
  }
  return p;
}

const Ftl::TenantPolicy& Ftl::policy_for(sim::TenantId tenant) const {
  return const_cast<Ftl*>(this)->policy_for(tenant);
}

void Ftl::set_tenant_channels(sim::TenantId tenant,
                              std::vector<std::uint32_t> channels) {
  if (channels.empty()) {
    throw std::invalid_argument("ftl: tenant channel set must be non-empty");
  }
  for (const auto ch : channels) {
    if (ch >= geom_.channels) {
      throw std::invalid_argument("ftl: channel id out of range");
    }
  }
  std::sort(channels.begin(), channels.end());
  channels.erase(std::unique(channels.begin(), channels.end()),
                 channels.end());
  auto& policy = policy_for(tenant);
  policy.channels = std::move(channels);
  policy.plan = make_static_plan(geom_, policy.channels.size());
}

const std::vector<std::uint32_t>& Ftl::tenant_channels(
    sim::TenantId tenant) const {
  return policy_for(tenant).channels;
}

void Ftl::set_tenant_alloc_mode(sim::TenantId tenant, AllocMode mode) {
  policy_for(tenant).mode = mode;
}

AllocMode Ftl::tenant_alloc_mode(sim::TenantId tenant) const {
  return policy_for(tenant).mode;
}

sim::Ppn Ftl::allocate_near(const PlaneTarget& target,
                            const std::vector<std::uint32_t>& channels) {
  // Preferred plane, then sibling planes on the same chip, then sibling
  // chips on the same channel, then the rest of the allowed channel set.
  const auto try_plane = [&](std::uint32_t ch, std::uint32_t chip,
                             std::uint32_t plane) -> sim::Ppn {
    PlaneTarget t{ch, chip, plane};
    if (auto ppn = blocks_.allocate_page(t.plane_id(geom_))) return *ppn;
    return sim::kInvalidPpn;
  };

  sim::Ppn ppn = try_plane(target.channel, target.chip, target.plane);
  if (ppn != sim::kInvalidPpn) return ppn;

  for (std::uint32_t pl = 0; pl < geom_.planes_per_chip; ++pl) {
    if (pl == target.plane) continue;
    ppn = try_plane(target.channel, target.chip, pl);
    if (ppn != sim::kInvalidPpn) return ppn;
  }
  for (std::uint32_t chip = 0; chip < geom_.chips_per_channel; ++chip) {
    if (chip == target.chip) continue;
    for (std::uint32_t pl = 0; pl < geom_.planes_per_chip; ++pl) {
      ppn = try_plane(target.channel, chip, pl);
      if (ppn != sim::kInvalidPpn) return ppn;
    }
  }
  for (const std::uint32_t ch : channels) {
    if (ch == target.channel) continue;
    for (std::uint32_t chip = 0; chip < geom_.chips_per_channel; ++chip) {
      for (std::uint32_t pl = 0; pl < geom_.planes_per_chip; ++pl) {
        ppn = try_plane(ch, chip, pl);
        if (ppn != sim::kInvalidPpn) return ppn;
      }
    }
  }
  return sim::kInvalidPpn;
}

sim::Ppn Ftl::translate_read(sim::TenantId tenant, std::uint64_t lpn) {
  const sim::Ppn mapped = map_.lookup(tenant, lpn);
  if (mapped != sim::kInvalidPpn) return mapped;

  // Prepopulate: the data is assumed to predate the simulation. Static
  // placement keeps sequential LPNs striped over the tenant's channels.
  const auto& policy = policy_for(tenant);
  const PlaneTarget target =
      static_place(geom_, policy.channels, policy.plan, lpn);
  const sim::Ppn ppn = allocate_near(target, policy.channels);
  if (ppn == sim::kInvalidPpn) throw DeviceFullError(tenant, lpn);
  blocks_.mark_valid(ppn, tenant, lpn);
  map_.update(tenant, lpn, ppn);
  // Prepopulated data "was written before the simulation": its OOB is
  // already on flash, so it survives power loss like any other page.
  if (oob_.enabled()) {
    oob_.record_program(ppn, tenant, lpn, oob_.fresh_seq());
  }
  return ppn;
}

sim::Ppn Ftl::finish_host_write(sim::TenantId tenant, std::uint64_t lpn,
                                const PlaneTarget& target,
                                const std::vector<std::uint32_t>& channels) {
  const sim::Ppn ppn = allocate_near(target, channels);
  if (ppn == sim::kInvalidPpn) throw DeviceFullError(tenant, lpn);
  blocks_.mark_valid(ppn, tenant, lpn);
  const sim::Ppn old = map_.update(tenant, lpn, ppn);
  if (old != sim::kInvalidPpn) blocks_.invalidate(old);
  if (tracer_ && tracer_->config().ftl_decisions) {
    const sim::PhysAddr a = geom_.decode(ppn);
    tracer_->record_point(trace_now(), telemetry::SpanKind::kPageAlloc,
                          tenant, a.channel,
                          static_cast<std::uint32_t>(geom_.plane_id(a)),
                          lpn);
  }
  return ppn;
}

bool Ftl::trim(sim::TenantId tenant, std::uint64_t lpn) {
  const sim::Ppn old = map_.erase(tenant, lpn);
  if (old == sim::kInvalidPpn) return false;
  blocks_.invalidate(old);
  return true;
}

bool Ftl::needs_gc(std::uint64_t plane_id) const {
  return blocks_.free_blocks(plane_id) <= config_.gc_trigger_free_blocks;
}

bool Ftl::gc_satisfied(std::uint64_t plane_id) const {
  return blocks_.free_blocks(plane_id) > config_.gc_target_free_blocks;
}

std::optional<std::uint32_t> Ftl::select_victim(
    std::uint64_t plane_id) const {
  const auto victim = blocks_.select_victim(plane_id);
  if (victim && tracer_) {
    tracer_->record_point(trace_now(), telemetry::SpanKind::kGcVictim,
                          sim::kInternalTenant, plane_channel(plane_id),
                          static_cast<std::uint32_t>(plane_id), *victim);
  }
  return victim;
}

std::vector<sim::Ppn> Ftl::valid_pages(std::uint64_t plane_id,
                                       std::uint32_t block) const {
  return blocks_.valid_pages(plane_id, block);
}

void Ftl::valid_pages_into(std::uint64_t plane_id, std::uint32_t block,
                           std::vector<sim::Ppn>& out) const {
  blocks_.valid_pages_into(plane_id, block, out);
}

sim::Ppn Ftl::allocate_migration(std::uint64_t plane_id) {
  if (auto ppn = blocks_.allocate_page(plane_id)) return *ppn;
  return sim::kInvalidPpn;
}

bool Ftl::complete_migration(sim::Ppn src, sim::Ppn dst) {
  if (!blocks_.is_valid(src)) {
    // Overwritten while the migration was in flight: the copy is garbage.
    return false;
  }
  const PageOwner who = blocks_.owner(src);
  blocks_.invalidate(src);
  blocks_.mark_valid(dst, who.tenant, who.lpn);
  map_.update(who.tenant, who.lpn, dst);
  return true;
}

void Ftl::erase_block(std::uint64_t plane_id, std::uint32_t block) {
  blocks_.erase_block(plane_id, block);
  if (oob_.enabled()) {
    const std::uint64_t first =
        (plane_id * geom_.blocks_per_plane + block) * geom_.pages_per_block;
    oob_.erase_range(first, geom_.pages_per_block);
  }
}

sim::Ppn Ftl::allocate_rescue(std::uint64_t plane_id) {
  if (auto ppn = blocks_.allocate_page(plane_id)) return *ppn;
  // Sibling planes of the same chip first, then every plane in order.
  const std::uint64_t chip = plane_id / geom_.planes_per_chip;
  const std::uint64_t base = chip * geom_.planes_per_chip;
  for (std::uint32_t pl = 0; pl < geom_.planes_per_chip; ++pl) {
    if (base + pl == plane_id) continue;
    if (auto ppn = blocks_.allocate_page(base + pl)) return *ppn;
  }
  for (std::uint64_t p = 0; p < geom_.total_planes(); ++p) {
    if (p / geom_.planes_per_chip == chip) continue;
    if (auto ppn = blocks_.allocate_page(p)) return *ppn;
  }
  return sim::kInvalidPpn;
}

bool Ftl::discard_failed_program(sim::TenantId tenant, std::uint64_t lpn,
                                 sim::Ppn failed) {
  const bool still_current = map_.lookup(tenant, lpn) == failed;
  blocks_.invalidate(failed);  // no-op when a newer write already did
  if (still_current) map_.erase(tenant, lpn);
  return still_current;
}

sim::Ppn Ftl::rewrite_page(sim::TenantId tenant, std::uint64_t lpn,
                           const sim::PhysAddr& failed_addr) {
  const auto& policy = policy_for(tenant);
  PlaneTarget target{failed_addr.channel, failed_addr.chip,
                     (failed_addr.plane + 1) % geom_.planes_per_chip};
  const sim::Ppn ppn = allocate_near(target, policy.channels);
  if (ppn == sim::kInvalidPpn) throw DeviceFullError(tenant, lpn);
  blocks_.mark_valid(ppn, tenant, lpn);
  map_.update(tenant, lpn, ppn);
  return ppn;
}

void Ftl::drop_lost_page(sim::Ppn ppn) {
  if (!blocks_.is_valid(ppn)) return;  // superseded while in flight
  const PageOwner who = blocks_.owner(ppn);
  map_.erase(who.tenant, who.lpn);
  blocks_.invalidate(ppn);
  // The media ate the page: its OOB must not resurrect the dead data on
  // the next recovery scan.
  if (oob_.enabled()) oob_.record_failed(ppn);
}

std::optional<std::uint32_t> Ftl::wear_leveling_candidate(
    std::uint64_t plane_id) const {
  if (config_.wear_gap_threshold == 0) return std::nullopt;
  if (blocks_.plane_wear_gap(plane_id) <= config_.wear_gap_threshold) {
    return std::nullopt;
  }
  return blocks_.coldest_full_block(plane_id);
}

void Ftl::check_invariants() const {
  map_.check_invariants();
  blocks_.check_invariants();

  // Forward direction: every mapped LPN points at an in-range, valid page
  // whose recorded owner is exactly that (tenant, LPN).
  const std::uint64_t total_pages = geom_.total_pages();
  for (sim::TenantId t = 0;
       t < static_cast<sim::TenantId>(map_.tenant_table_count()); ++t) {
    const std::uint64_t span = map_.table_span(t);
    for (std::uint64_t lpn = 0; lpn < span; ++lpn) {
      const sim::Ppn ppn = map_.lookup(t, lpn);
      if (ppn == sim::kInvalidPpn) continue;
      SSDK_CHECK_MSG(ppn < total_pages,
                     "l2p: tenant " + std::to_string(t) + " lpn " +
                         std::to_string(lpn) + " maps out of range");
      SSDK_CHECK_MSG(blocks_.is_valid(ppn),
                     "l2p: tenant " + std::to_string(t) + " lpn " +
                         std::to_string(lpn) + " maps to invalid ppn " +
                         std::to_string(ppn));
      const PageOwner who = blocks_.owner(ppn);
      SSDK_CHECK_MSG(who.tenant == t && who.lpn == lpn,
                     "l2p: ppn " + std::to_string(ppn) + " owned by (" +
                         std::to_string(who.tenant) + ", " +
                         std::to_string(who.lpn) + ") but mapped from (" +
                         std::to_string(t) + ", " + std::to_string(lpn) +
                         ")");
    }
  }

  // Reverse direction: every valid physical page is reachable through its
  // owner's mapping — together with the forward pass this makes the
  // mapping a bijection between mapped LPNs and valid pages.
  for (sim::Ppn ppn = 0; ppn < total_pages; ++ppn) {
    if (!blocks_.is_valid(ppn)) continue;
    const PageOwner who = blocks_.owner(ppn);
    SSDK_CHECK_MSG(map_.lookup(who.tenant, who.lpn) == ppn,
                   "l2p: valid ppn " + std::to_string(ppn) +
                       " owned by (" + std::to_string(who.tenant) + ", " +
                       std::to_string(who.lpn) +
                       ") is not reachable through the mapping");
  }

  // OOB metadata vs. block bookkeeping. A valid page with an erased OOB is
  // legal (program still in flight — validity is claimed at allocation,
  // OOB written at completion); a torn or failed page must never be valid,
  // and a readable OOB on a valid page must agree with the owner table.
  oob_.check_invariants();
  if (oob_.enabled()) {
    for (sim::Ppn ppn = 0; ppn < total_pages; ++ppn) {
      const OobState s = oob_.state(ppn);
      if (s == OobState::kTorn || s == OobState::kFailed) {
        SSDK_CHECK_MSG(!blocks_.is_valid(ppn),
                       "oob: unreadable ppn " + std::to_string(ppn) +
                           " is still marked valid");
      } else if (s == OobState::kData && blocks_.is_valid(ppn)) {
        const PageOwner who = blocks_.owner(ppn);
        SSDK_CHECK_MSG(
            oob_.owner(ppn) == OobStore::pack_owner(who.tenant, who.lpn),
            "oob: ppn " + std::to_string(ppn) +
                " OOB owner disagrees with the block manager's owner");
      }
    }
  }
}

void Ftl::save_state(snapshot::StateWriter& w) const {
  w.tag("FTL_");
  map_.save_state(w);
  blocks_.save_state(w);
  w.u64(policies_.size());
  for (const TenantPolicy& p : policies_) {
    w.vec_u32(p.channels);
    w.u8(static_cast<std::uint8_t>(p.mode));
    w.u64(p.rr_counter);
  }
  oob_.save_state(w);
}

void Ftl::load_state(snapshot::StateReader& r) {
  r.tag("FTL_");
  map_.load_state(r);
  blocks_.load_state(r);
  const std::uint64_t n = r.checked_count(8 + 1 + 8);
  policies_.assign(n, TenantPolicy{});
  for (TenantPolicy& p : policies_) {
    p.channels = r.vec_u32();
    p.mode = static_cast<AllocMode>(r.u8());
    p.rr_counter = r.u64();
    if (!p.channels.empty()) {
      p.plan = make_static_plan(geom_, p.channels.size());
    }
  }
  oob_.load_state(r, geom_);
}

}  // namespace ssdk::ftl
