// Page-allocation policies: where (channel, chip, plane) a logical write
// lands. The paper's hybrid page allocator chooses *static* placement for
// read-dominated tenants (successive LPNs stripe across channels, so large
// reads exploit parallelism) and *dynamic* placement for write-dominated
// tenants (writes go to the least-loaded allowed channel/chip).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/request.hpp"
#include "util/time_types.hpp"

namespace ssdk::ftl {

enum class AllocMode : std::uint8_t { kStatic, kDynamic };

/// Live load information the dynamic policy consults; implemented by the
/// device model (queue depths and busy horizons). A plain virtual
/// interface rather than std::function members: dynamic placement probes
/// every allowed channel on every placed page, and type-erased callbacks
/// put a heap-indirect call on that inner loop. The destructor is
/// protected — the policy only ever borrows a view, never owns one.
class LoadView {
 public:
  /// Estimated ns until the channel bus could take a new transfer.
  virtual Duration channel_backlog(std::uint32_t channel) const = 0;
  /// Estimated ns until the (global) chip could take a new operation.
  virtual Duration chip_backlog(std::uint32_t global_chip) const = 0;

 protected:
  ~LoadView() = default;
};

/// Adapter wrapping two callables (lambdas in tests and benches) into a
/// LoadView without type erasure.
template <typename ChannelFn, typename ChipFn>
class CallableLoadView final : public LoadView {
 public:
  CallableLoadView(ChannelFn channel, ChipFn chip)
      : channel_(std::move(channel)), chip_(std::move(chip)) {}

  Duration channel_backlog(std::uint32_t channel) const override {
    return channel_(channel);
  }
  Duration chip_backlog(std::uint32_t global_chip) const override {
    return chip_(global_chip);
  }

 private:
  ChannelFn channel_;
  ChipFn chip_;
};

template <typename ChannelFn, typename ChipFn>
CallableLoadView<ChannelFn, ChipFn> make_load_view(ChannelFn channel,
                                                   ChipFn chip) {
  return {std::move(channel), std::move(chip)};
}

/// Target of a placement decision: a plane (block/page are chosen by the
/// block manager's append point).
struct PlaneTarget {
  std::uint32_t channel = 0;
  std::uint32_t chip = 0;   ///< within channel
  std::uint32_t plane = 0;  ///< within chip

  std::uint64_t plane_id(const sim::Geometry& g) const {
    return (static_cast<std::uint64_t>(g.chip_id(channel, chip))) *
               g.planes_per_chip +
           plane;
  }
};

/// Static placement: stripes LPNs channel-first over the tenant's allowed
/// channel set, then over chips, then planes. Deterministic in (lpn,
/// channels), which is what gives sequential reads their parallelism.
/// Inline: runs once per placed page; keeping it in the header lets the
/// allocator fold the power-of-two stride math into its own loop.
inline PlaneTarget static_place(const sim::Geometry& g,
                                const std::vector<std::uint32_t>& channels,
                                std::uint64_t lpn) {
  assert(!channels.empty());
  const std::uint64_t n = channels.size();
  const std::uint64_t chips = g.chips_per_channel;
  const std::uint64_t planes = g.planes_per_chip;
  PlaneTarget t;
  if (std::has_single_bit(n) && std::has_single_bit(chips) &&
      std::has_single_bit(planes)) {
    // Power-of-two strides (every stock geometry, and channel sets are
    // sized 1/2/4/8 in the 4-tenant strategy space): pure shift/mask,
    // no integer division on the per-page-write path.
    const int n_shift = std::countr_zero(n);
    const int chip_shift = std::countr_zero(chips);
    t.channel = channels[lpn & (n - 1)];
    t.chip = static_cast<std::uint32_t>((lpn >> n_shift) & (chips - 1));
    t.plane = static_cast<std::uint32_t>(
        (lpn >> (n_shift + chip_shift)) & (planes - 1));
  } else {
    t.channel = channels[lpn % n];
    t.chip = static_cast<std::uint32_t>((lpn / n) % chips);
    t.plane = static_cast<std::uint32_t>((lpn / (n * chips)) % planes);
  }
  return t;
}

/// Dynamic placement: least-backlogged allowed channel, then least-
/// backlogged chip on it; plane chosen round-robin via `rr_counter`
/// (incremented by the call). Ties break toward lower indices so results
/// are deterministic.
PlaneTarget dynamic_place(const sim::Geometry& g,
                          const std::vector<std::uint32_t>& channels,
                          const LoadView& load, std::uint64_t& rr_counter);

}  // namespace ssdk::ftl
