// Page-allocation policies: where (channel, chip, plane) a logical write
// lands. The paper's hybrid page allocator chooses *static* placement for
// read-dominated tenants (successive LPNs stripe across channels, so large
// reads exploit parallelism) and *dynamic* placement for write-dominated
// tenants (writes go to the least-loaded allowed channel/chip).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/request.hpp"
#include "util/time_types.hpp"

namespace ssdk::ftl {

enum class AllocMode : std::uint8_t { kStatic, kDynamic };

/// Live load information the dynamic policy consults; implemented by the
/// device model (queue depths and busy horizons). A plain virtual
/// interface rather than std::function members: dynamic placement probes
/// every allowed channel on every placed page, and type-erased callbacks
/// put a heap-indirect call on that inner loop. The destructor is
/// protected — the policy only ever borrows a view, never owns one.
class LoadView {
 public:
  /// Estimated ns until the channel bus could take a new transfer.
  virtual Duration channel_backlog(std::uint32_t channel) const = 0;
  /// Estimated ns until the (global) chip could take a new operation.
  virtual Duration chip_backlog(std::uint32_t global_chip) const = 0;

 protected:
  ~LoadView() = default;
};

/// Adapter wrapping two callables (lambdas in tests and benches) into a
/// LoadView without type erasure.
template <typename ChannelFn, typename ChipFn>
class CallableLoadView final : public LoadView {
 public:
  CallableLoadView(ChannelFn channel, ChipFn chip)
      : channel_(std::move(channel)), chip_(std::move(chip)) {}

  Duration channel_backlog(std::uint32_t channel) const override {
    return channel_(channel);
  }
  Duration chip_backlog(std::uint32_t global_chip) const override {
    return chip_(global_chip);
  }

 private:
  ChannelFn channel_;
  ChipFn chip_;
};

template <typename ChannelFn, typename ChipFn>
CallableLoadView<ChannelFn, ChipFn> make_load_view(ChannelFn channel,
                                                   ChipFn chip) {
  return {std::move(channel), std::move(chip)};
}

/// Target of a placement decision: a plane (block/page are chosen by the
/// block manager's append point).
struct PlaneTarget {
  std::uint32_t channel = 0;
  std::uint32_t chip = 0;   ///< within channel
  std::uint32_t plane = 0;  ///< within chip

  std::uint64_t plane_id(const sim::Geometry& g) const {
    return (static_cast<std::uint64_t>(g.chip_id(channel, chip))) *
               g.planes_per_chip +
           plane;
  }
};

/// Static placement: stripes LPNs channel-first over the tenant's allowed
/// channel set, then over chips, then planes. Deterministic in (lpn,
/// channels), which is what gives sequential reads their parallelism.
/// Inline: runs once per placed page; keeping it in the header lets the
/// allocator fold the power-of-two stride math into its own loop.
inline PlaneTarget static_place(const sim::Geometry& g,
                                const std::vector<std::uint32_t>& channels,
                                std::uint64_t lpn) {
  assert(!channels.empty());
  const std::uint64_t n = channels.size();
  const std::uint64_t chips = g.chips_per_channel;
  const std::uint64_t planes = g.planes_per_chip;
  PlaneTarget t;
  if (std::has_single_bit(n) && std::has_single_bit(chips) &&
      std::has_single_bit(planes)) {
    // Power-of-two strides (every stock geometry, and channel sets are
    // sized 1/2/4/8 in the 4-tenant strategy space): pure shift/mask,
    // no integer division on the per-page-write path.
    const int n_shift = std::countr_zero(n);
    const int chip_shift = std::countr_zero(chips);
    t.channel = channels[lpn & (n - 1)];
    t.chip = static_cast<std::uint32_t>((lpn >> n_shift) & (chips - 1));
    t.plane = static_cast<std::uint32_t>(
        (lpn >> (n_shift + chip_shift)) & (planes - 1));
  } else {
    t.channel = channels[lpn % n];
    t.chip = static_cast<std::uint32_t>((lpn / n) % chips);
    t.plane = static_cast<std::uint32_t>((lpn / (n * chips)) % planes);
  }
  return t;
}

/// Precomputed static-placement strides for a fixed (geometry, channel
/// count) pair. static_place re-derives the power-of-two test (three
/// popcounts) and both shift amounts on every placed page; cached per
/// tenant policy they are recomputed only when the channel set changes,
/// which removes the popcount traffic from the per-page-write path
/// entirely. Decisions are identical to the plain static_place by
/// construction — same strides, just hoisted.
struct StaticPlan {
  bool pow2 = false;
  std::uint32_t n_shift = 0;   ///< log2(channel count)
  std::uint32_t np_shift = 0;  ///< log2(channels) + log2(chips)
  std::uint64_t n_mask = 0;
  std::uint64_t chip_mask = 0;
  std::uint64_t plane_mask = 0;
};

inline StaticPlan make_static_plan(const sim::Geometry& g,
                                   std::uint64_t n_channels) {
  const std::uint64_t chips = g.chips_per_channel;
  const std::uint64_t planes = g.planes_per_chip;
  StaticPlan p;
  p.pow2 = std::has_single_bit(n_channels) && std::has_single_bit(chips) &&
           std::has_single_bit(planes);
  if (p.pow2) {
    p.n_shift = static_cast<std::uint32_t>(std::countr_zero(n_channels));
    p.np_shift =
        p.n_shift + static_cast<std::uint32_t>(std::countr_zero(chips));
    p.n_mask = n_channels - 1;
    p.chip_mask = chips - 1;
    p.plane_mask = planes - 1;
  }
  return p;
}

/// static_place with the strides precomputed by make_static_plan for this
/// exact (geometry, channels.size()) pair.
inline PlaneTarget static_place(const sim::Geometry& g,
                                const std::vector<std::uint32_t>& channels,
                                const StaticPlan& plan, std::uint64_t lpn) {
  assert(plan.pow2 ==
         (std::has_single_bit(channels.size()) &&
          std::has_single_bit(std::uint64_t{g.chips_per_channel}) &&
          std::has_single_bit(std::uint64_t{g.planes_per_chip})));
  if (!plan.pow2) return static_place(g, channels, lpn);
  PlaneTarget t;
  t.channel = channels[lpn & plan.n_mask];
  t.chip = static_cast<std::uint32_t>((lpn >> plan.n_shift) & plan.chip_mask);
  t.plane =
      static_cast<std::uint32_t>((lpn >> plan.np_shift) & plan.plane_mask);
  return t;
}

/// Dynamic placement: least-backlogged allowed channel, then least-
/// backlogged chip on it; plane chosen round-robin via `rr_counter`
/// (incremented by the call). Ties break toward lower indices so results
/// are deterministic.
///
/// Templated on the load view's concrete type: the device model passes
/// its final LoadViewImpl, so the two backlog probes on the inner loop
/// devirtualize and inline instead of dispatching through the LoadView
/// vtable per allowed channel and chip. Probe order (ascending channel,
/// then ascending chip) and tie-breaks are part of the schedule contract
/// — identical inputs must yield identical placements on any path.
template <typename Load>
PlaneTarget dynamic_place(const sim::Geometry& g,
                          const std::vector<std::uint32_t>& channels,
                          const Load& load, std::uint64_t& rr_counter) {
  assert(!channels.empty());
  // Least-backlogged channel among the allowed set.
  std::uint32_t best_channel = channels.front();
  Duration best_cb = std::numeric_limits<Duration>::max();
  for (const std::uint32_t ch : channels) {
    const Duration cb = load.channel_backlog(ch);
    if (cb < best_cb) {
      best_cb = cb;
      best_channel = ch;
    }
  }
  // Least-backlogged chip on that channel.
  std::uint32_t best_chip = 0;
  Duration best_chb = std::numeric_limits<Duration>::max();
  for (std::uint32_t c = 0; c < g.chips_per_channel; ++c) {
    const Duration chb = load.chip_backlog(g.chip_id(best_channel, c));
    if (chb < best_chb) {
      best_chb = chb;
      best_chip = c;
    }
  }
  PlaneTarget t;
  t.channel = best_channel;
  t.chip = best_chip;
  t.plane = static_cast<std::uint32_t>(rr_counter++ % g.planes_per_chip);
  return t;
}

}  // namespace ssdk::ftl
