// Page-allocation policies: where (channel, chip, plane) a logical write
// lands. The paper's hybrid page allocator chooses *static* placement for
// read-dominated tenants (successive LPNs stripe across channels, so large
// reads exploit parallelism) and *dynamic* placement for write-dominated
// tenants (writes go to the least-loaded allowed channel/chip).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/request.hpp"
#include "util/time_types.hpp"

namespace ssdk::ftl {

enum class AllocMode : std::uint8_t { kStatic, kDynamic };

/// Live load information the dynamic policy consults; implemented by the
/// device model (queue depths and busy horizons).
struct LoadView {
  /// Estimated ns until the channel bus could take a new transfer.
  std::function<Duration(std::uint32_t channel)> channel_backlog;
  /// Estimated ns until the (global) chip could take a new operation.
  std::function<Duration(std::uint32_t global_chip)> chip_backlog;
};

/// Target of a placement decision: a plane (block/page are chosen by the
/// block manager's append point).
struct PlaneTarget {
  std::uint32_t channel = 0;
  std::uint32_t chip = 0;   ///< within channel
  std::uint32_t plane = 0;  ///< within chip

  std::uint64_t plane_id(const sim::Geometry& g) const {
    return (static_cast<std::uint64_t>(g.chip_id(channel, chip))) *
               g.planes_per_chip +
           plane;
  }
};

/// Static placement: stripes LPNs channel-first over the tenant's allowed
/// channel set, then over chips, then planes. Deterministic in (lpn,
/// channels), which is what gives sequential reads their parallelism.
PlaneTarget static_place(const sim::Geometry& g,
                         const std::vector<std::uint32_t>& channels,
                         std::uint64_t lpn);

/// Dynamic placement: least-backlogged allowed channel, then least-
/// backlogged chip on it; plane chosen round-robin via `rr_counter`
/// (incremented by the call). Ties break toward lower indices so results
/// are deterministic.
PlaneTarget dynamic_place(const sim::Geometry& g,
                          const std::vector<std::uint32_t>& channels,
                          const LoadView& load, std::uint64_t& rr_counter);

}  // namespace ssdk::ftl
