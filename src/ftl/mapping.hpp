// Page-level logical-to-physical address mapping, one table per tenant.
//
// Tenants address independent logical spaces (the multi-tenant setting of
// the paper); tables grow on demand as higher LPNs are touched.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/request.hpp"

namespace ssdk::ftl {

class MappingTable {
 public:
  /// Current mapping for (tenant, lpn); kInvalidPpn when never written.
  sim::Ppn lookup(sim::TenantId tenant, std::uint64_t lpn) const;

  /// Install a new mapping; returns the previous PPN (kInvalidPpn if none).
  sim::Ppn update(sim::TenantId tenant, std::uint64_t lpn, sim::Ppn ppn);

  /// Remove the mapping (trim); returns the previous PPN.
  sim::Ppn erase(sim::TenantId tenant, std::uint64_t lpn);

  /// Number of mapped (valid) logical pages for a tenant.
  std::uint64_t mapped_count(sim::TenantId tenant) const;

  std::size_t tenant_table_count() const { return tables_.size(); }

 private:
  std::vector<sim::Ppn>& table_for(sim::TenantId tenant);
  const std::vector<sim::Ppn>* table_for(sim::TenantId tenant) const;

  // Dense tenant ids index directly; the tables vector grows as needed.
  std::vector<std::vector<sim::Ppn>> tables_;
  std::vector<std::uint64_t> mapped_counts_;
};

}  // namespace ssdk::ftl
