// Page-level logical-to-physical address mapping, one table per tenant.
//
// Tenants address independent logical spaces (the multi-tenant setting of
// the paper); tables grow on demand as higher LPNs are touched.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/request.hpp"
#include "snapshot/archive.hpp"

namespace ssdk::ftl {

class MappingTable {
 public:
  /// Current mapping for (tenant, lpn); kInvalidPpn when never written.
  /// Inline: this is one array probe per host page op.
  sim::Ppn lookup(sim::TenantId tenant, std::uint64_t lpn) const {
    if (tenant >= tables_.size()) return sim::kInvalidPpn;
    const auto& table = tables_[tenant];
    if (lpn >= table.size()) return sim::kInvalidPpn;
    return table[lpn];
  }

  /// Install a new mapping; returns the previous PPN (kInvalidPpn if none).
  /// Inline fast path: once the tenant's table already covers the LPN
  /// (steady state — every page write lands here), this is one array
  /// store plus mapped-count maintenance.
  sim::Ppn update(sim::TenantId tenant, std::uint64_t lpn, sim::Ppn ppn) {
    if (tenant >= tables_.size() || lpn >= tables_[tenant].size()) {
      return grow_and_update(tenant, lpn, ppn);
    }
    sim::Ppn& slot = tables_[tenant][lpn];
    const sim::Ppn old = slot;
    slot = ppn;
    if (old == sim::kInvalidPpn && ppn != sim::kInvalidPpn) {
      ++mapped_counts_[tenant];
    } else if (old != sim::kInvalidPpn && ppn == sim::kInvalidPpn) {
      --mapped_counts_[tenant];
    }
    return old;
  }

  /// Remove the mapping (trim); returns the previous PPN.
  sim::Ppn erase(sim::TenantId tenant, std::uint64_t lpn);

  /// Drop every mapping while keeping the tenant tables (and their spans)
  /// allocated — the recovery scan rebuilds the map in place and recovered
  /// LPNs are always a subset of previously touched ones.
  void clear();

  /// Number of mapped (valid) logical pages for a tenant.
  std::uint64_t mapped_count(sim::TenantId tenant) const;

  std::size_t tenant_table_count() const { return tables_.size(); }

  /// Logical span of one tenant's table (highest touched LPN + 1); lets
  /// audits enumerate mapped LPNs without exposing the backing vectors.
  std::uint64_t table_span(sim::TenantId tenant) const {
    return tenant < tables_.size() ? tables_[tenant].size() : 0;
  }

  /// Audit: every cached mapped-count equals the number of non-invalid
  /// entries in its table. Throws util::InvariantViolation on mismatch.
  void check_invariants() const;

  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::vector<sim::Ppn>& table_for(sim::TenantId tenant);
  /// Slow path of update(): validate the tenant id, grow the table to
  /// cover the LPN, then install the mapping.
  sim::Ppn grow_and_update(sim::TenantId tenant, std::uint64_t lpn,
                           sim::Ppn ppn);

  // Dense tenant ids index directly; the tables vector grows as needed.
  std::vector<std::vector<sim::Ppn>> tables_;
  std::vector<std::uint64_t> mapped_counts_;
};

}  // namespace ssdk::ftl
