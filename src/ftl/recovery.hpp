// Result of a full-device OOB recovery scan (power-up mount).
//
// The algorithm itself lives in recovery.cpp as BlockManager/Ftl members;
// this header only carries the report both layers and the device's
// mount-time model consume.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ssdk::ftl {

struct RecoveryReport {
  std::uint64_t scanned_pages = 0;    ///< every page read during the scan
  std::uint64_t recovered_pages = 0;  ///< winners installed in the L2P map
  std::uint64_t stale_pages = 0;      ///< readable pages an overwrite beat
  std::uint64_t torn_pages = 0;       ///< in-flight programs discarded
  std::uint64_t unknown_blocks = 0;   ///< in-flight erases redone at mount
  /// Mount-time model input: blocks re-erased per plane (unknown blocks).
  std::vector<std::uint32_t> reerases_per_plane;
  /// Retired blocks still holding valid pages after the rebuild —
  /// (plane_id, block) pairs whose rescue migration must be restarted.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> rescue_blocks;
};

}  // namespace ssdk::ftl
