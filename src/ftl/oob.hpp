// Per-page out-of-band (OOB) metadata model — the durable breadcrumbs a
// real FTL writes into each flash page's spare area so the logical state
// can be rebuilt from flash alone after a power loss.
//
// For every programmed page the store records the owning (tenant, LPN)
// and a device-global, monotonically increasing write sequence number.
// Sequence numbers are assigned in L2P-update order (page allocation
// order), so "highest sequence number wins" resolves every conflict a
// recovery scan can encounter: host rewrites, GC copies of superseded
// data, and programs replayed after a failed attempt. GC migrations copy
// the source page's OOB verbatim — a migrated page is the *same* version,
// not a newer one, which is what makes the crash-mid-migration case safe
// (either copy wins ties by lower PPN; data is neither lost nor counted
// twice).
//
// The store is populated lazily: a device without a power model never
// materializes the vectors and pays nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/geometry.hpp"
#include "sim/request.hpp"
#include "snapshot/archive.hpp"

namespace ssdk::ftl {

/// Physical readability of one page's data + OOB area.
enum class OobState : std::uint8_t {
  kErased = 0,  ///< never programmed since the last block erase
  kData = 1,    ///< programmed to completion; OOB readable
  kTorn = 2,    ///< program was in flight at a power cut; unreadable
  kFailed = 3,  ///< program failed or media died; unreadable, not torn
};

class OobStore {
 public:
  /// Packed owner mirroring the block manager's layout: tenant in the top
  /// 24 bits, LPN in the low 40. kNoOwner = no readable OOB.
  static constexpr std::uint64_t kNoOwner = ~std::uint64_t{0};
  static constexpr std::uint64_t kLpnMask = (1ULL << 40) - 1;

  static std::uint64_t pack_owner(sim::TenantId tenant, std::uint64_t lpn) {
    return (static_cast<std::uint64_t>(tenant) << 40) | (lpn & kLpnMask);
  }
  static sim::TenantId owner_tenant(std::uint64_t packed) {
    return static_cast<sim::TenantId>(packed >> 40);
  }
  static std::uint64_t owner_lpn(std::uint64_t packed) {
    return packed & kLpnMask;
  }

  /// Materialize the per-page vectors. Idempotent.
  void enable(const sim::Geometry& geometry);
  bool enabled() const { return enabled_; }

  /// Next global write sequence number. Drawn once per page placement, in
  /// the same order the L2P map is updated.
  std::uint64_t fresh_seq() { return next_seq_++; }
  std::uint64_t next_seq() const { return next_seq_; }

  /// A program completed: the page's OOB now carries (owner, seq).
  void record_program(sim::Ppn ppn, sim::TenantId tenant, std::uint64_t lpn,
                      std::uint64_t seq);
  /// A GC/rescue migration program completed: dst inherits src's OOB
  /// verbatim (same logical version, same sequence number).
  void record_migration(sim::Ppn src, sim::Ppn dst);
  /// The page's program was in flight at a power cut.
  void record_torn(sim::Ppn ppn);
  /// The page is dead: failed program, or media loss during GC.
  void record_failed(sim::Ppn ppn);

  /// A block erase completed: reset `count` pages starting at `first`.
  void erase_range(sim::Ppn first, std::uint32_t count);

  OobState state(sim::Ppn ppn) const { return state_[ppn]; }
  std::uint64_t owner(sim::Ppn ppn) const { return owner_[ppn]; }
  std::uint64_t seq(sim::Ppn ppn) const { return seq_[ppn]; }

  /// An erase was in flight at a power cut: the whole block's contents are
  /// unknown and must be re-erased at mount.
  void mark_block_unknown(std::uint64_t global_block);
  void clear_block_unknown(std::uint64_t global_block);
  bool block_unknown(std::uint64_t global_block) const {
    return unknown_blocks_[global_block] != 0;
  }
  std::uint64_t unknown_block_count() const;

  /// OOB-internal consistency: states are legal enum values, (owner, seq)
  /// are present exactly on kData pages, and every sequence number is
  /// below the allocation cursor. Throws util::InvariantViolation.
  void check_invariants() const;

  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r, const sim::Geometry& geometry);

 private:
  // ssdk-snap: skip(enabled_): construction-time switch (PowerModel.enabled); a loaded device re-arms it from its options
  bool enabled_ = false;
  std::uint64_t next_seq_ = 1;  // 0 is never a valid recorded seq
  std::vector<std::uint64_t> owner_;    // kNoOwner unless kData
  std::vector<std::uint64_t> seq_;      // 0 unless kData
  std::vector<OobState> state_;         // per physical page
  std::vector<std::uint8_t> unknown_blocks_;  // per global block id
};

}  // namespace ssdk::ftl
