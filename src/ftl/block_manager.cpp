#include "ftl/block_manager.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace ssdk::ftl {

BlockManager::BlockManager(const sim::Geometry& geometry) : geom_(geometry) {
  geom_.validate();
  blocks_.resize(geom_.total_blocks());
  planes_.resize(geom_.total_planes());
  total_pages_ = geom_.total_pages();
  valid_bits_.assign((total_pages_ + 63) / 64, 0);
  // Deliberately uninitialized — 8 MB on the paper geometry, of which a
  // typical run ever touches a fraction. The bitmap gates every read.
  owner_ = std::make_unique_for_overwrite<std::uint64_t[]>(total_pages_);
  for (std::uint64_t p = 0; p < planes_.size(); ++p) {
    auto& plane = planes_[p];
    plane.free_list.reserve(geom_.blocks_per_plane);
    for (std::uint32_t b = 0; b < geom_.blocks_per_plane; ++b) {
      plane.free_list.push_back(b);
    }
  }
}

BlockManager::BlockManager(const BlockManager& other)
    : geom_(other.geom_),
      blocks_(other.blocks_),
      planes_(other.planes_),
      retired_(other.retired_),
      total_pages_(other.total_pages_),
      valid_bits_(other.valid_bits_),
      owner_(std::make_unique_for_overwrite<std::uint64_t[]>(
          other.total_pages_)) {
  copy_owners_from(other);
}

BlockManager& BlockManager::operator=(const BlockManager& other) {
  if (this == &other) return *this;
  geom_ = other.geom_;
  blocks_ = other.blocks_;
  planes_ = other.planes_;
  retired_ = other.retired_;
  if (total_pages_ != other.total_pages_) {
    owner_ =
        std::make_unique_for_overwrite<std::uint64_t[]>(other.total_pages_);
    total_pages_ = other.total_pages_;
  }
  valid_bits_ = other.valid_bits_;
  copy_owners_from(other);
  return *this;
}

void BlockManager::copy_owners_from(const BlockManager& other) {
  for (std::size_t w = 0; w < valid_bits_.size(); ++w) {
    std::uint64_t word = valid_bits_[w];
    while (word != 0) {
      const auto bit = static_cast<unsigned>(std::countr_zero(word));
      const std::uint64_t p = (static_cast<std::uint64_t>(w) << 6) | bit;
      owner_[p] = other.owner_[p];
      word &= word - 1;
    }
  }
}

void BlockManager::clear_valid_range(sim::Ppn first, std::uint64_t count) {
  sim::Ppn p = first;
  const sim::Ppn end = first + count;
  while (p < end && (p & 63) != 0) {
    valid_bits_[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
    ++p;
  }
  for (; p + 64 <= end; p += 64) valid_bits_[p >> 6] = 0;
  for (; p < end; ++p) {
    valid_bits_[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
  }
}

bool BlockManager::open_new_block(std::uint64_t plane_id) {
  auto& plane = planes_[plane_id];
  if (plane.free_list.empty()) return false;
  // Wear leveling: the least-erased free block; ties break toward the
  // lowest block id so allocation order is deterministic.
  auto best = plane.free_list.begin();
  std::uint64_t best_erases = blocks_[block_index(plane_id, *best)].erases;
  for (auto it = best + 1; it != plane.free_list.end(); ++it) {
    const std::uint64_t erases = blocks_[block_index(plane_id, *it)].erases;
    if (erases < best_erases || (erases == best_erases && *it < *best)) {
      best = it;
      best_erases = erases;
    }
  }
  const std::uint32_t chosen = *best;
  // Swap-remove keeps the pop O(1); order within the free list is not
  // meaningful.
  *best = plane.free_list.back();
  plane.free_list.pop_back();

  auto& info = blocks_[block_index(plane_id, chosen)];
  assert(info.state == BlockState::kFree);
  info.state = BlockState::kOpen;
  info.write_ptr = 0;
  info.valid = 0;
  plane.open_block = chosen;
  return true;
}

std::uint32_t BlockManager::free_blocks(std::uint64_t plane_id) const {
  assert(plane_id < planes_.size());
  return static_cast<std::uint32_t>(planes_[plane_id].free_list.size());
}

std::uint64_t BlockManager::free_pages(std::uint64_t plane_id) const {
  assert(plane_id < planes_.size());
  const auto& plane = planes_[plane_id];
  std::uint64_t pages = static_cast<std::uint64_t>(plane.free_list.size()) *
                        geom_.pages_per_block;
  if (plane.open_block >= 0) {
    const auto& info = blocks_[block_index(
        plane_id, static_cast<std::uint32_t>(plane.open_block))];
    pages += geom_.pages_per_block - info.write_ptr;
  }
  return pages;
}

std::optional<std::uint32_t> BlockManager::select_victim(
    std::uint64_t plane_id) const {
  assert(plane_id < planes_.size());
  // Greedy victim: fewest valid pages (lowest migration cost). Ties break
  // toward the least-erased block — cleaning cost is identical, so take
  // the wear-leveling win; this also guarantees every reclaimable block is
  // eventually cycled instead of a fixed subset.
  std::optional<std::uint32_t> best;
  std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
  std::uint64_t best_erases = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t b = 0; b < geom_.blocks_per_plane; ++b) {
    const auto& info = blocks_[block_index(plane_id, b)];
    if (info.state != BlockState::kFull) continue;
    if (info.valid < best_valid ||
        (info.valid == best_valid && info.erases < best_erases)) {
      best_valid = info.valid;
      best_erases = info.erases;
      best = b;
    }
  }
  // A victim with every page still valid frees nothing; reject it.
  if (best && best_valid >= geom_.pages_per_block) return std::nullopt;
  return best;
}

std::vector<sim::Ppn> BlockManager::valid_pages(std::uint64_t plane_id,
                                                std::uint32_t block) const {
  std::vector<sim::Ppn> out;
  valid_pages_into(plane_id, block, out);
  return out;
}

void BlockManager::valid_pages_into(std::uint64_t plane_id,
                                    std::uint32_t block,
                                    std::vector<sim::Ppn>& out) const {
  out.clear();
  const std::uint64_t base =
      block_index(plane_id, block) * geom_.pages_per_block;
  for (std::uint32_t p = 0; p < geom_.pages_per_block; ++p) {
    if (page_valid(base + p)) out.push_back(base + p);
  }
}

std::uint32_t BlockManager::record_program_fail(std::uint64_t plane_id,
                                                std::uint32_t block) {
  auto& info = blocks_[block_index(plane_id, block)];
  if (info.program_fails < 0xFF) ++info.program_fails;
  return info.program_fails;
}

std::uint32_t BlockManager::record_erase_fail(std::uint64_t plane_id,
                                             std::uint32_t block) {
  auto& info = blocks_[block_index(plane_id, block)];
  if (info.erase_fails < 0xFF) ++info.erase_fails;
  return info.erase_fails;
}

void BlockManager::retire_block(std::uint64_t plane_id, std::uint32_t block) {
  auto& info = blocks_[block_index(plane_id, block)];
  auto& plane = planes_[plane_id];
  switch (info.state) {
    case BlockState::kRetired:
      throw std::logic_error("block_manager: block already retired");
    case BlockState::kFree: {
      auto it = std::find(plane.free_list.begin(), plane.free_list.end(),
                          block);
      assert(it != plane.free_list.end());
      *it = plane.free_list.back();
      plane.free_list.pop_back();
      break;
    }
    case BlockState::kOpen:
      assert(plane.open_block == static_cast<std::int64_t>(block));
      plane.open_block = -1;
      break;
    case BlockState::kFull:
      break;
  }
  info.state = BlockState::kRetired;
  ++retired_;
}

void BlockManager::erase_block(std::uint64_t plane_id, std::uint32_t block) {
  auto& info = blocks_[block_index(plane_id, block)];
  if (info.state != BlockState::kFull || info.valid != 0) {
    throw std::logic_error(
        "block_manager: erase requires a Full block with no valid pages");
  }
  const std::uint64_t base =
      block_index(plane_id, block) * geom_.pages_per_block;
  clear_valid_range(base, geom_.pages_per_block);
  info.state = BlockState::kFree;
  info.write_ptr = 0;
  info.valid = 0;
  ++info.erases;
  planes_[plane_id].free_list.push_back(block);
}

std::uint32_t BlockManager::valid_count(std::uint64_t plane_id,
                                        std::uint32_t block) const {
  return blocks_[block_index(plane_id, block)].valid;
}

std::uint64_t BlockManager::erase_count(std::uint64_t plane_id,
                                        std::uint32_t block) const {
  return blocks_[block_index(plane_id, block)].erases;
}

BlockState BlockManager::block_state(std::uint64_t plane_id,
                                     std::uint32_t block) const {
  return blocks_[block_index(plane_id, block)].state;
}

WearStats BlockManager::wear_stats() const {
  WearStats stats;
  if (blocks_.empty()) return stats;
  stats.min_erases = std::numeric_limits<std::uint64_t>::max();
  double sum = 0.0;
  for (const auto& info : blocks_) {
    stats.min_erases = std::min(stats.min_erases, info.erases);
    stats.max_erases = std::max(stats.max_erases, info.erases);
    stats.total_erases += info.erases;
    sum += static_cast<double>(info.erases);
  }
  stats.mean_erases = sum / static_cast<double>(blocks_.size());
  return stats;
}

std::uint64_t BlockManager::plane_wear_gap(std::uint64_t plane_id) const {
  // Retired blocks are permanently out of rotation — their (frozen) erase
  // counts would otherwise pin the gap and trigger pointless leveling.
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max(), hi = 0;
  for (std::uint32_t b = 0; b < geom_.blocks_per_plane; ++b) {
    const auto& info = blocks_[block_index(plane_id, b)];
    if (info.state == BlockState::kRetired) continue;
    lo = std::min(lo, info.erases);
    hi = std::max(hi, info.erases);
  }
  return hi >= lo ? hi - lo : 0;
}

std::optional<std::uint32_t> BlockManager::coldest_full_block(
    std::uint64_t plane_id) const {
  std::optional<std::uint32_t> best;
  std::uint64_t best_erases = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t b = 0; b < geom_.blocks_per_plane; ++b) {
    const auto& info = blocks_[block_index(plane_id, b)];
    if (info.state != BlockState::kFull) continue;
    if (info.erases < best_erases) {
      best_erases = info.erases;
      best = b;
    }
  }
  return best;
}

std::uint64_t BlockManager::total_valid_pages() const {
  std::uint64_t total = 0;
  for (const auto& info : blocks_) total += info.valid;
  return total;
}

void BlockManager::check_invariants() const {
  auto block_label = [](std::uint64_t plane, std::uint32_t block) {
    return "plane " + std::to_string(plane) + " block " +
           std::to_string(block);
  };

  std::uint64_t retired_seen = 0;
  for (std::uint64_t plane = 0; plane < planes_.size(); ++plane) {
    const PlaneInfo& pinfo = planes_[plane];

    // Free list: every entry names a distinct in-range block whose state
    // is kFree, and every kFree block of the plane is listed.
    std::vector<bool> listed(geom_.blocks_per_plane, false);
    for (const std::uint32_t b : pinfo.free_list) {
      SSDK_CHECK_MSG(b < geom_.blocks_per_plane,
                     "free list of plane " + std::to_string(plane) +
                         " holds out-of-range block " + std::to_string(b));
      SSDK_CHECK_MSG(!listed[b], "free list of plane " +
                                     std::to_string(plane) +
                                     " holds duplicate block " +
                                     std::to_string(b));
      listed[b] = true;
      SSDK_CHECK_MSG(
          blocks_[block_index(plane, b)].state == BlockState::kFree,
          block_label(plane, b) + " is on the free list but not Free");
    }

    // Open block: registered, in range, and in state kOpen; conversely no
    // unregistered block of the plane may be kOpen.
    if (pinfo.open_block >= 0) {
      SSDK_CHECK_MSG(
          pinfo.open_block < geom_.blocks_per_plane,
          "plane " + std::to_string(plane) + " open block out of range");
      SSDK_CHECK_MSG(
          blocks_[block_index(plane, static_cast<std::uint32_t>(
                                         pinfo.open_block))]
                  .state == BlockState::kOpen,
          "plane " + std::to_string(plane) +
              " registers an append point that is not Open");
    }

    for (std::uint32_t b = 0; b < geom_.blocks_per_plane; ++b) {
      const BlockInfo& info = blocks_[block_index(plane, b)];
      SSDK_CHECK_MSG(info.write_ptr <= geom_.pages_per_block,
                     block_label(plane, b) + " write pointer overruns");
      SSDK_CHECK_MSG(info.valid <= info.write_ptr,
                     block_label(plane, b) +
                         " counts more valid pages than were written");

      // Valid counter vs. the per-page owner table (count conservation).
      const std::uint64_t base =
          block_index(plane, b) * geom_.pages_per_block;
      std::uint32_t owned = 0;
      for (std::uint32_t p = 0; p < geom_.pages_per_block; ++p) {
        if (page_valid(base + p)) ++owned;
      }
      SSDK_CHECK_MSG(owned == info.valid,
                     block_label(plane, b) + " valid counter " +
                         std::to_string(info.valid) + " != owned pages " +
                         std::to_string(owned));

      switch (info.state) {
        case BlockState::kFree:
          SSDK_CHECK_MSG(info.write_ptr == 0 && info.valid == 0,
                         block_label(plane, b) + " is Free but not blank");
          SSDK_CHECK_MSG(listed[b], block_label(plane, b) +
                                        " is Free but missing from the "
                                        "free list");
          break;
        case BlockState::kOpen:
          SSDK_CHECK_MSG(pinfo.open_block ==
                             static_cast<std::int64_t>(b),
                         block_label(plane, b) +
                             " is Open but not the plane's append point");
          SSDK_CHECK_MSG(info.write_ptr < geom_.pages_per_block,
                         block_label(plane, b) + " is Open but full");
          break;
        case BlockState::kFull:
          SSDK_CHECK_MSG(info.write_ptr == geom_.pages_per_block,
                         block_label(plane, b) +
                             " is Full below its write capacity");
          break;
        case BlockState::kRetired:
          ++retired_seen;
          break;
      }
      if (info.state != BlockState::kFree) {
        SSDK_CHECK_MSG(!listed[b], block_label(plane, b) +
                                       " is on the free list but not Free");
      }
    }
  }
  SSDK_CHECK_MSG(retired_seen == retired_,
                 "retired-block counter " + std::to_string(retired_) +
                     " != blocks in state kRetired " +
                     std::to_string(retired_seen));
}

void BlockManager::save_state(snapshot::StateWriter& w) const {
  w.tag("BLKM");
  w.u64(retired_);
  w.u64(blocks_.size());
  for (const BlockInfo& b : blocks_) {
    w.u32(b.write_ptr);
    w.u32(b.valid);
    w.u64(b.erases);
    w.u8(static_cast<std::uint8_t>(b.state));
    w.u8(b.program_fails);
    w.u8(b.erase_fails);
  }
  w.u64(planes_.size());
  for (const PlaneInfo& p : planes_) {
    // Free-list order is preserved verbatim: open_new_block scans it with
    // position-dependent iteration and swap-removes, so byte-identical
    // replay requires the exact ordering, not just the set.
    w.vec_u32(p.free_list);
    w.i64(p.open_block);
  }
  // The wire format predates the validity bitmap: one u64 per page,
  // kNoOwner for invalid pages. Materializing the dense table costs one
  // pass on the (rare) snapshot path and keeps every existing snapshot
  // readable, byte-identical, and free of uninitialized bytes.
  std::vector<std::uint64_t> dense(total_pages_, kNoOwner);
  for (std::size_t word = 0; word < valid_bits_.size(); ++word) {
    std::uint64_t bits = valid_bits_[word];
    while (bits != 0) {
      const auto bit = static_cast<unsigned>(std::countr_zero(bits));
      const std::uint64_t p = (static_cast<std::uint64_t>(word) << 6) | bit;
      dense[p] = owner_[p];
      bits &= bits - 1;
    }
  }
  w.vec_u64(dense);
}

void BlockManager::load_state(snapshot::StateReader& r) {
  r.tag("BLKM");
  retired_ = r.u64();
  const std::uint64_t nblocks = r.checked_count(4 + 4 + 8 + 1 + 1 + 1);
  if (nblocks != blocks_.size()) {
    throw snapshot::SnapshotError(
        "snapshot: block count mismatch at offset " +
            std::to_string(r.offset()) + ": expected " +
            std::to_string(blocks_.size()) + " (from geometry), found " +
            std::to_string(nblocks),
        r.offset());
  }
  for (BlockInfo& b : blocks_) {
    b.write_ptr = r.u32();
    b.valid = r.u32();
    b.erases = r.u64();
    b.state = static_cast<BlockState>(r.u8());
    b.program_fails = r.u8();
    b.erase_fails = r.u8();
  }
  const std::uint64_t nplanes = r.checked_count(8);
  if (nplanes != planes_.size()) {
    throw snapshot::SnapshotError(
        "snapshot: plane count mismatch at offset " +
            std::to_string(r.offset()) + ": expected " +
            std::to_string(planes_.size()) + " (from geometry), found " +
            std::to_string(nplanes),
        r.offset());
  }
  for (PlaneInfo& p : planes_) {
    p.free_list = r.vec_u32();
    p.open_block = r.i64();
  }
  const std::vector<std::uint64_t> dense = r.vec_u64();
  if (dense.size() != blocks_.size() * geom_.pages_per_block) {
    throw snapshot::SnapshotError(
        "snapshot: page-owner table size mismatch at offset " +
            std::to_string(r.offset()) + ": expected " +
            std::to_string(blocks_.size() * geom_.pages_per_block) +
            ", found " + std::to_string(dense.size()),
        r.offset());
  }
  std::fill(valid_bits_.begin(), valid_bits_.end(), 0);
  for (sim::Ppn p = 0; p < dense.size(); ++p) {
    if (dense[p] != kNoOwner) set_owner_raw(p, dense[p]);
  }
}

}  // namespace ssdk::ftl
