#include "core/allocator.hpp"

#include <stdexcept>

#include "nn/serialize.hpp"

namespace ssdk::core {

ChannelAllocator::ChannelAllocator(nn::Mlp model, nn::StandardScaler scaler,
                                   StrategySpace space)
    : model_(std::move(model)), scaler_(std::move(scaler)),
      space_(std::move(space)) {
  if (model_.input_size() != kFeatureDim) {
    throw std::invalid_argument("allocator: model input dim != 9");
  }
  if (model_.output_size() != space_.size()) {
    throw std::invalid_argument(
        "allocator: model output classes != strategy-space size");
  }
}

std::uint32_t ChannelAllocator::predict_index(
    const MixFeatures& features) const {
  const auto row = features.to_vector();
  nn::Matrix x(1, kFeatureDim);
  for (std::size_t c = 0; c < kFeatureDim; ++c) x(0, c) = row[c];
  const nn::Matrix scaled = scaler_.transform(x);
  return model_.predict(scaled).front();
}

Strategy ChannelAllocator::predict(const MixFeatures& features) const {
  return space_.at(predict_index(features));
}

std::size_t ChannelAllocator::parameter_bytes() const {
  return model_.parameter_count() * sizeof(double);
}

void ChannelAllocator::save(const std::string& path) const {
  nn::save_model_file(path, model_, &scaler_);
}

ChannelAllocator ChannelAllocator::load(const std::string& path,
                                        StrategySpace space) {
  nn::LoadedModel loaded = nn::load_model_file(path);
  if (!loaded.scaler) {
    throw std::runtime_error("allocator: model file lacks a scaler block");
  }
  return ChannelAllocator(std::move(loaded.model), *std::move(loaded.scaler),
                          std::move(space));
}

}  // namespace ssdk::core
