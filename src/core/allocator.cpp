#include "core/allocator.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace ssdk::core {

ChannelAllocator::ChannelAllocator(nn::Mlp model, nn::StandardScaler scaler,
                                   StrategySpace space)
    : model_(std::move(model)), scaler_(std::move(scaler)),
      space_(std::move(space)) {
  if (model_.input_size() != kFeatureDim) {
    throw std::invalid_argument("allocator: model input dim != 9");
  }
  if (model_.output_size() != space_.size()) {
    throw std::invalid_argument(
        "allocator: model output classes != strategy-space size");
  }
}

std::uint32_t ChannelAllocator::predict_index(
    const MixFeatures& features) const {
  const auto row = features.to_vector();
  nn::Matrix x(1, kFeatureDim);
  for (std::size_t c = 0; c < kFeatureDim; ++c) x(0, c) = row[c];
  const nn::Matrix scaled = scaler_.transform(x);
  nn::InferenceScratch scratch;
  return model_.predict(scaled, scratch).front();
}

Strategy ChannelAllocator::predict(const MixFeatures& features) const {
  return space_.at(predict_index(features));
}

std::vector<std::uint32_t> ChannelAllocator::predict_top_k(
    const MixFeatures& features, std::size_t k) const {
  const auto row = features.to_vector();
  nn::Matrix x(1, kFeatureDim);
  for (std::size_t c = 0; c < kFeatureDim; ++c) x(0, c) = row[c];
  nn::InferenceScratch scratch;
  const nn::Matrix proba = model_.predict_proba(scaler_.transform(x), scratch);

  std::vector<std::uint32_t> order(proba.cols());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  k = std::min(k, order.size());
  // stable_sort on descending score: equal scores keep index order, so the
  // ranking is deterministic across platforms.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return proba(0, a) > proba(0, b);
                   });
  order.resize(k);
  return order;
}

std::size_t ChannelAllocator::parameter_bytes() const {
  return model_.parameter_count() * sizeof(double);
}

void ChannelAllocator::save(const std::string& path) const {
  nn::save_model_file(path, model_, &scaler_);
}

ChannelAllocator ChannelAllocator::load(const std::string& path,
                                        StrategySpace space) {
  nn::LoadedModel loaded = nn::load_model_file(path);
  if (!loaded.scaler) {
    throw std::runtime_error("allocator: model file lacks a scaler block");
  }
  return ChannelAllocator(std::move(loaded.model), *std::move(loaded.scaler),
                          std::move(space));
}

}  // namespace ssdk::core
