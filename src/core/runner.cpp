#include "core/runner.hpp"

#include <algorithm>
#include <sstream>

#include "sched/fairness.hpp"
#include "util/check.hpp"
#include "util/logger.hpp"

namespace ssdk::core {

void configure_ssd(ssd::Ssd& device, const Strategy& strategy,
                   std::span<const TenantProfile> profiles,
                   bool hybrid_page_allocation) {
  const auto sets = assign_channels(strategy, profiles,
                                    device.options().geometry.channels);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    device.set_tenant_channels(profiles[i].id, sets[i]);
    const bool dynamic =
        hybrid_page_allocation && !profiles[i].read_dominated;
    device.set_tenant_alloc_mode(profiles[i].id,
                                 dynamic ? ftl::AllocMode::kDynamic
                                         : ftl::AllocMode::kStatic);
  }
}

std::unique_ptr<ssd::Ssd> make_run_device(
    std::span<const sim::IoRequest> requests, const Strategy& strategy,
    std::span<const TenantProfile> profiles, const RunConfig& config) {
  auto device = std::make_unique<ssd::Ssd>(config.ssd);
  if (config.tracer) device->set_tracer(config.tracer);
  if (config.audit_interval > 0) {
    device->set_audit_interval(config.audit_interval);
  } else if (util::kCheckedBuild) {
    // Cheap enough to leave on for whole test suites, frequent enough to
    // localize a corruption to a few thousand events.
    device->set_audit_interval(4096);
  }
  device->reserve(config.reserve_requests ? config.reserve_requests
                                          : requests.size());
  configure_ssd(*device, strategy, profiles, config.hybrid_page_allocation);
  if (config.warmup_fraction > 0.0 && !requests.empty()) {
    const SimTime first = requests.front().arrival;
    const SimTime last = requests.back().arrival;
    // ssdk-lint: allow(float-time): one-shot config-time conversion of a
    // user-facing fraction into a metrics cutoff; it gates statistics
    // only and never feeds the event schedule.
    device->metrics().set_warmup_ns(
        first + static_cast<Duration>(config.warmup_fraction *
                                      static_cast<double>(last - first)));
  }
  device->submit(requests);
  return device;
}

RunResult run_with_strategy(std::span<const sim::IoRequest> requests,
                            const Strategy& strategy,
                            std::span<const TenantProfile> profiles,
                            const RunConfig& config) {
  auto device = make_run_device(requests, strategy, profiles, config);
  try {
    device->run_to_completion();
  } catch (const ftl::DeviceFullError& e) {
    return summarize_device_full(*device, e, "runner");
  }
  return summarize(*device);
}

RunResult run_with_strategy_switch(std::span<const sim::IoRequest> requests,
                                   const Strategy& base,
                                   const Strategy& strategy,
                                   std::uint64_t switch_at,
                                   std::span<const TenantProfile> profiles,
                                   const RunConfig& config) {
  auto device = make_run_device(requests, base, profiles, config);
  try {
    device->run_until_arrival(switch_at);
  } catch (const ftl::DeviceFullError& e) {
    return summarize_device_full(*device, e, "runner");
  }
  configure_ssd(*device, strategy, profiles, config.hybrid_page_allocation);
  try {
    device->run_to_completion();
  } catch (const ftl::DeviceFullError& e) {
    return summarize_device_full(*device, e, "runner");
  }
  return summarize(*device);
}

RunResult summarize_device_full(ssd::Ssd& device,
                                const ftl::DeviceFullError& error,
                                std::string_view context) {
  // Degrade gracefully: report what completed instead of crashing the
  // replay. The failed placement is recorded so callers can see which
  // tenant ran the device out of space.
  ++device.metrics().counters().failed_requests;
  std::ostringstream reason;
  reason << "device full: tenant " << error.tenant() << " lpn "
         << error.lpn() << " could not be placed";
  log_warn() << context << ": " << reason.str() << "; replay stopped early";
  RunResult result = summarize(device);
  result.device_full = true;
  result.device_full_tenant = error.tenant();
  result.abort_reason = reason.str();
  return result;
}

double summarize_total_us(const ssd::Ssd& device) {
  return device.metrics().aggregate_sums().total_us();
}

RunResult summarize(const ssd::Ssd& device) {
  RunResult result;
  const auto& metrics = device.metrics();
  const sim::TenantMetrics agg = metrics.aggregate();
  result.avg_read_us = agg.avg_read_us();
  result.avg_write_us = agg.avg_write_us();
  result.total_us = agg.total_us();
  if (!agg.read_latency_us.empty()) {
    result.p99_read_us = agg.read_latency_us.percentile(99.0);
  }
  if (!agg.write_latency_us.empty()) {
    result.p99_write_us = agg.write_latency_us.percentile(99.0);
  }
  result.per_tenant = metrics.all_tenants();
  result.counters = metrics.counters();
  for (const auto& [id, t] : result.per_tenant) {
    result.slo_violations += t.slo_violations;
  }
  return result;
}

std::map<sim::TenantId, double> isolated_baselines(
    std::span<const sim::IoRequest> requests,
    std::span<const TenantProfile> profiles, const RunConfig& config) {
  std::map<sim::TenantId, double> baselines;
  for (const TenantProfile& profile : profiles) {
    std::vector<sim::IoRequest> own;
    for (const sim::IoRequest& req : requests) {
      if (req.tenant == profile.id) own.push_back(req);
    }
    if (own.empty()) continue;
    RunConfig solo = config;
    solo.tracer = nullptr;           // baseline is a score, not a trace
    solo.ssd.sched = {};             // unshaped: FIFO, unlimited window
    solo.reserve_requests = 0;
    const TenantProfile alone[] = {profile};
    // Strategy{} shares every channel, so the lone tenant sees the whole
    // device — the denominator of the paper-style slowdown ratio.
    const RunResult r = run_with_strategy(own, Strategy{}, alone, solo);
    if (r.device_full || r.total_us <= 0.0) continue;
    baselines.emplace(profile.id, r.total_us);
  }
  return baselines;
}

void apply_fairness(RunResult& result,
                    const std::map<sim::TenantId, double>& baselines) {
  result.tenant_slowdown.clear();
  result.worst_slowdown = 0.0;
  result.jain_index = 0.0;
  std::vector<double> slowdowns;
  for (const auto& [id, t] : result.per_tenant) {
    if (id == sim::kInternalTenant) continue;
    const auto it = baselines.find(id);
    if (it == baselines.end() || it->second <= 0.0) continue;
    const double slowdown = t.total_us() / it->second;
    result.tenant_slowdown.emplace(id, slowdown);
    result.worst_slowdown = std::max(result.worst_slowdown, slowdown);
    slowdowns.push_back(slowdown);
  }
  result.jain_index = sched::jain_index(slowdowns);
}

}  // namespace ssdk::core
