// Channel-allocation strategies and the strategy space SSDKeeper learns
// over (Section IV.C of the paper).
//
// For an 8-channel SSD:
//   * 2 tenants: Shared + the seven two-part splits 7:1 ... 1:7 (4:4 is the
//     paper's Isolated) = 8 strategies.
//   * 4 tenants: Shared + the seven two-part splits (write-group :
//     read-group) + 34 four-part compositions of 8 (all 35 compositions
//     into four positive parts minus 2:2:2:2, which the paper folds into
//     Isolated) = 42 strategies — the network's 42 output classes.
//
// Application conventions (Sections III/V.D):
//   * two-part: the first part goes to write-dominated tenants, the second
//     to read-dominated tenants (for two tenants of equal characteristic,
//     ordering falls back to relative intensity).
//   * four-part: parts are assigned largest-first to tenants in descending
//     relative intensity.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/request.hpp"

namespace ssdk::core {

enum class StrategyKind : std::uint8_t { kShared, kTwoPart, kFourPart };

struct Strategy {
  StrategyKind kind = StrategyKind::kShared;
  /// Channel counts per part; [0..1] used for kTwoPart, [0..3] for
  /// kFourPart, ignored for kShared.
  std::array<std::uint32_t, 4> parts{0, 0, 0, 0};

  /// "Shared", "7:1", "5:1:1:1", ...
  std::string name() const;

  friend bool operator==(const Strategy&, const Strategy&) = default;
};

/// What strategy application needs to know about each tenant.
struct TenantProfile {
  sim::TenantId id = 0;
  bool read_dominated = false;
  /// Fraction of the mixed workload's requests issued by this tenant.
  double relative_intensity = 0.0;
};

class StrategySpace {
 public:
  /// The paper's space for 2 or 4 tenants on `channels` channels.
  /// Other tenant counts throw std::invalid_argument.
  static StrategySpace for_tenants(std::uint32_t tenants,
                                   std::uint32_t channels = 8);

  std::size_t size() const { return strategies_.size(); }
  const Strategy& at(std::size_t i) const { return strategies_.at(i); }
  std::uint32_t channels() const { return channels_; }
  std::uint32_t tenants() const { return tenants_; }

  /// Index of a strategy by name; throws std::out_of_range when absent.
  std::size_t index_of(const std::string& name) const;

  /// The paper's Isolated baseline (4:4 for two tenants, 2:2:2:2 for
  /// four). Note 2:2:2:2 is deliberately NOT in the learnable space.
  Strategy isolated() const;
  Strategy shared() const { return Strategy{}; }

 private:
  std::vector<Strategy> strategies_;
  std::uint32_t channels_ = 8;
  std::uint32_t tenants_ = 0;
};

/// Concrete channel sets per tenant (indexed by position in `profiles`).
/// Channels are assigned as contiguous ranges of [0, channels).
std::vector<std::vector<std::uint32_t>> assign_channels(
    const Strategy& strategy, std::span<const TenantProfile> profiles,
    std::uint32_t channels);

}  // namespace ssdk::core
