#include "core/label_gen.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace ssdk::core {

namespace {

/// Request index where the sweep's strategy takes effect.
std::uint64_t switch_index(std::size_t request_count, double fork_point) {
  if (fork_point <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::min(fork_point, 1.0) *
                                    static_cast<double>(request_count));
}

}  // namespace

const char* label_objective_name(LabelObjective objective) {
  switch (objective) {
    case LabelObjective::kTotalLatency: return "total_latency";
    case LabelObjective::kFairness: return "fairness";
    case LabelObjective::kSloViolations: return "slo_violations";
  }
  return "unknown";
}

LabeledSample label_workload(std::span<const sim::IoRequest> requests,
                             const StrategySpace& space,
                             const LabelGenConfig& config,
                             ThreadPool* pool) {
  LabeledSample sample;
  sample.features = features_of(requests, config.features);
  const auto profiles = sample.features.profiles(space.tenants());
  sample.strategy_total_us.assign(space.size(), 0.0);
  sample.strategy_score.assign(space.size(), 0.0);

  const std::uint64_t switch_at =
      switch_index(requests.size(), config.fork_point);

  // Fairness labels score each strategy by its worst tenant slowdown, so
  // the per-tenant isolated baselines are computed once up front (they
  // depend on the workload only, not on the candidate strategy).
  std::map<sim::TenantId, double> baselines;
  if (config.objective == LabelObjective::kFairness) {
    baselines = isolated_baselines(requests, profiles, config.run);
  }

  // Shared-prefix fork sweep: simulate [0, switch_at) once under the base
  // strategy, then fork the device per candidate. Each fork replays the
  // suffix bit-identically to a cold device that was driven to the same
  // point, so labels and latencies match the cold sweep exactly.
  std::unique_ptr<ssd::Ssd> prefix;
  if (config.shared_prefix_fork) {
    prefix = make_run_device(requests, config.base_strategy, profiles,
                             config.run);
    try {
      prefix->run_until_arrival(switch_at);
    } catch (const ftl::DeviceFullError&) {
      // The device filled up before the switch point; the prefix state is
      // mid-unwind and not resumable. Fall back to cold per-strategy runs,
      // which each degrade gracefully via summarize_device_full.
      prefix.reset();
    }
  }

  // Objective value of a finished (or gracefully aborted) run.
  const auto score_of = [&](const RunResult& r) {
    switch (config.objective) {
      case LabelObjective::kTotalLatency:
        return r.total_us;
      case LabelObjective::kSloViolations:
        return static_cast<double>(r.slo_violations);
      case LabelObjective::kFairness:
        break;
    }
    // Worst tenant slowdown; a run with no baselined tenants degenerates
    // to total latency so the argmin stays well-defined.
    double worst = 0.0;
    bool any = false;
    for (const auto& [id, t] : r.per_tenant) {
      if (id == sim::kInternalTenant) continue;
      const auto it = baselines.find(id);
      if (it == baselines.end() || it->second <= 0.0) continue;
      worst = std::max(worst, t.total_us() / it->second);
      any = true;
    }
    return any ? worst : r.total_us;
  };

  struct Scored {
    double total_us;
    double score;
  };
  const auto scored = [&](const RunResult& r) {
    return Scored{r.total_us, score_of(r)};
  };

  // Drive one configured device to completion and score it. Under the
  // latency objective the score is total_us only, read from the metrics'
  // running sums — the full RunResult summary (sample copies, percentile
  // selection) is pure overhead there and this lambda runs once per
  // (workload, strategy). The other objectives need the per-tenant
  // breakdown, so they pay for the full summary.
  const auto run_and_score = [&](ssd::Ssd& device) {
    if (config.objective == LabelObjective::kTotalLatency) {
      try {
        device.run_to_completion();
        const double us = summarize_total_us(device);
        return Scored{us, us};
      } catch (const ftl::DeviceFullError& e) {
        const double us =
            summarize_device_full(device, e, "label_gen").total_us;
        return Scored{us, us};
      }
    }
    try {
      device.run_to_completion();
      return scored(summarize(device));
    } catch (const ftl::DeviceFullError& e) {
      return scored(summarize_device_full(device, e, "label_gen"));
    }
  };

  const auto record = [&](std::size_t i, Scored s) {
    sample.strategy_total_us[i] = s.total_us;
    sample.strategy_score[i] = s.score;
  };

  const auto evaluate = [&](std::size_t i) {
    if (prefix) {
      auto device = prefix->fork();
      configure_ssd(*device, space.at(i), profiles,
                    config.run.hybrid_page_allocation);
      record(i, run_and_score(*device));
      return;
    }
    auto device = make_run_device(
        requests, switch_at == 0 ? space.at(i) : config.base_strategy,
        profiles, config.run);
    if (switch_at != 0) {
      try {
        device->run_until_arrival(switch_at);
      } catch (const ftl::DeviceFullError& e) {
        record(i, scored(summarize_device_full(*device, e, "label_gen")));
        return;
      }
      configure_ssd(*device, space.at(i), profiles,
                    config.run.hybrid_page_allocation);
    }
    record(i, run_and_score(*device));
  };

  if (pool != nullptr) {
    parallel_for(*pool, space.size(), evaluate);
  } else {
    for (std::size_t i = 0; i < space.size(); ++i) evaluate(i);
  }

  // Argmin over the objective; ties fall back to total latency, then to
  // the lower index. Under kTotalLatency score == total_us, so this keeps
  // the legacy first-min labels bit-for-bit.
  std::size_t best = 0;
  for (std::size_t i = 1; i < space.size(); ++i) {
    const double s = sample.strategy_score[i];
    const double b = sample.strategy_score[best];
    if (s < b || (s == b && sample.strategy_total_us[i] <
                                sample.strategy_total_us[best])) {
      best = i;
    }
  }
  sample.label = static_cast<std::uint32_t>(best);
  return sample;
}

std::vector<sim::IoRequest> synthesize_mix(const DatasetGenConfig& config,
                                           std::uint64_t index) {
  std::uint64_t seed_state = config.seed;
  // Mix seeds so consecutive indices give unrelated streams.
  seed_state ^= splitmix64(seed_state) + index;
  Rng rng(splitmix64(seed_state));

  // Sample the aggregate rate uniformly over the feature collector's
  // intensity *levels* (not raw rates) so the training set covers every
  // level band evenly, including the contended top of the scale.
  const std::uint32_t levels = config.label.features.intensity_levels;
  const double level = rng.uniform_real(0.0, static_cast<double>(levels));
  const double level_rate =
      level / static_cast<double>(levels) *
      config.label.features.max_intensity_rps;
  const double total_rate = std::clamp(level_rate, config.min_rate_rps,
                                       config.max_rate_rps);

  // Per-tenant proportions: normalized exponentials with a floor so every
  // tenant contributes measurable traffic.
  std::vector<double> props(config.tenants);
  double sum = 0.0;
  for (auto& p : props) {
    p = rng.exponential(1.0) + 0.05;
    sum += p;
  }
  for (auto& p : props) p /= sum;

  // Every tenant covers the configured duration; the mixed stream is cut
  // at the duration boundary (and at the optional request cap).
  std::vector<trace::Workload> workloads(config.tenants);
  for (std::uint32_t t = 0; t < config.tenants; ++t) {
    const bool read_dominated = rng.bernoulli(0.5);
    trace::SyntheticSpec spec;
    spec.write_fraction =
        read_dominated
            ? rng.uniform_real(config.read_band_lo, config.read_band_hi)
            : rng.uniform_real(config.write_band_lo, config.write_band_hi);
    spec.intensity_rps = std::max(1.0, total_rate * props[t]);
    spec.request_count = static_cast<std::uint64_t>(
        spec.intensity_rps * config.workload_duration_s * 1.05) + 8;
    spec.mean_request_pages =
        rng.uniform_real(config.mean_pages_lo, config.mean_pages_hi);
    spec.address_space_pages = config.address_space_pages;
    spec.zipf_theta = rng.uniform_real(config.zipf_lo, config.zipf_hi);
    spec.sequential_fraction = rng.uniform_real(config.seq_lo, config.seq_hi);
    spec.seed = rng.next_u64();
    workloads[t] = trace::generate_synthetic(spec);
  }
  std::uint64_t cap = static_cast<std::uint64_t>(
      total_rate * config.workload_duration_s);
  if (config.requests_per_workload != 0) {
    cap = std::min(cap, config.requests_per_workload);
  }
  cap = std::max<std::uint64_t>(cap, 64);
  return trace::mix_workloads(workloads, cap);
}

GeneratedDataset generate_dataset(const StrategySpace& space,
                                  const DatasetGenConfig& config,
                                  ThreadPool& pool) {
  GeneratedDataset out;
  out.samples.resize(config.workloads);

  // One task per workload, and each workload's 8/42 strategy sweep fans
  // out on the same pool (parallel_for is nested-safe: the workload task
  // claims strategy chunks itself when every worker is busy). Workload
  // tasks keep the fan-out coarse; the nested sweep fills the tail when
  // fewer workloads than workers remain.
  parallel_for(pool, config.workloads, [&](std::size_t i) {
    const auto requests = synthesize_mix(config, i);
    out.samples[i] = label_workload(requests, space, config.label, &pool);
  });

  nn::Matrix features(config.workloads, kFeatureDim);
  std::vector<std::uint32_t> labels(config.workloads);
  for (std::size_t i = 0; i < config.workloads; ++i) {
    const auto row = out.samples[i].features.to_vector();
    assert(row.size() == kFeatureDim);
    for (std::size_t c = 0; c < kFeatureDim; ++c) features(i, c) = row[c];
    labels[i] = out.samples[i].label;
  }
  out.data = nn::Dataset(std::move(features), std::move(labels));
  return out;
}

}  // namespace ssdk::core
