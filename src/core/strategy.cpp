#include "core/strategy.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ssdk::core {

std::string Strategy::name() const {
  switch (kind) {
    case StrategyKind::kShared:
      return "Shared";
    case StrategyKind::kTwoPart: {
      std::ostringstream os;
      os << parts[0] << ':' << parts[1];
      return os.str();
    }
    case StrategyKind::kFourPart: {
      std::ostringstream os;
      os << parts[0] << ':' << parts[1] << ':' << parts[2] << ':' << parts[3];
      return os.str();
    }
  }
  throw std::logic_error("unreachable strategy kind");
}

StrategySpace StrategySpace::for_tenants(std::uint32_t tenants,
                                         std::uint32_t channels) {
  if (tenants != 2 && tenants != 4) {
    throw std::invalid_argument(
        "strategy space defined for 2 or 4 tenants (paper Section IV.C)");
  }
  if (channels < tenants) {
    throw std::invalid_argument("strategy space: fewer channels than tenants");
  }
  StrategySpace space;
  space.channels_ = channels;
  space.tenants_ = tenants;

  space.strategies_.push_back(Strategy{});  // Shared

  // Two-part splits a : (channels - a).
  for (std::uint32_t a = channels - 1; a >= 1; --a) {
    Strategy s;
    s.kind = StrategyKind::kTwoPart;
    s.parts = {a, channels - a, 0, 0};
    space.strategies_.push_back(s);
  }

  if (tenants == 4) {
    // All compositions of `channels` into 4 positive parts, except the
    // all-equal one (channels/4 repeated), which the paper counts as
    // Isolated rather than a learnable class.
    for (std::uint32_t p0 = 1; p0 + 3 <= channels; ++p0) {
      for (std::uint32_t p1 = 1; p0 + p1 + 2 <= channels; ++p1) {
        for (std::uint32_t p2 = 1; p0 + p1 + p2 + 1 <= channels; ++p2) {
          const std::uint32_t p3 = channels - p0 - p1 - p2;
          if (p0 == p1 && p1 == p2 && p2 == p3) continue;
          Strategy s;
          s.kind = StrategyKind::kFourPart;
          s.parts = {p0, p1, p2, p3};
          space.strategies_.push_back(s);
        }
      }
    }
  }
  return space;
}

std::size_t StrategySpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < strategies_.size(); ++i) {
    if (strategies_[i].name() == name) return i;
  }
  throw std::out_of_range("strategy space: no strategy named '" + name + "'");
}

Strategy StrategySpace::isolated() const {
  Strategy s;
  if (tenants_ == 2) {
    s.kind = StrategyKind::kTwoPart;
    s.parts = {channels_ / 2, channels_ - channels_ / 2, 0, 0};
  } else {
    s.kind = StrategyKind::kFourPart;
    const std::uint32_t q = channels_ / 4;
    s.parts = {q, q, q, channels_ - 3 * q};
  }
  return s;
}

namespace {
/// Contiguous channel range [first, first + count).
std::vector<std::uint32_t> channel_range(std::uint32_t first,
                                         std::uint32_t count) {
  std::vector<std::uint32_t> out(count);
  std::iota(out.begin(), out.end(), first);
  return out;
}

std::vector<std::uint32_t> all_channels(std::uint32_t channels) {
  return channel_range(0, channels);
}
}  // namespace

std::vector<std::vector<std::uint32_t>> assign_channels(
    const Strategy& strategy, std::span<const TenantProfile> profiles,
    std::uint32_t channels) {
  std::vector<std::vector<std::uint32_t>> out(profiles.size());

  switch (strategy.kind) {
    case StrategyKind::kShared: {
      for (auto& set : out) set = all_channels(channels);
      return out;
    }
    case StrategyKind::kTwoPart: {
      if (strategy.parts[0] + strategy.parts[1] != channels) {
        throw std::invalid_argument("strategy: two-part sum != channels");
      }
      const auto write_set = channel_range(0, strategy.parts[0]);
      const auto read_set =
          channel_range(strategy.parts[0], strategy.parts[1]);
      // All-read or all-write mixes cannot split by characteristic; fall
      // back to ranking by relative intensity (most intense -> part 0).
      const bool homogeneous = std::all_of(
          profiles.begin(), profiles.end(), [&](const TenantProfile& p) {
            return p.read_dominated == profiles.front().read_dominated;
          });
      if (homogeneous && profiles.size() >= 2) {
        std::vector<std::size_t> order(profiles.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return profiles[a].relative_intensity >
                                  profiles[b].relative_intensity;
                         });
        // Most intense tenant gets part 0, everyone else part 1.
        for (std::size_t rank = 0; rank < order.size(); ++rank) {
          out[order[rank]] = rank == 0 ? write_set : read_set;
        }
        return out;
      }
      for (std::size_t i = 0; i < profiles.size(); ++i) {
        out[i] = profiles[i].read_dominated ? read_set : write_set;
      }
      return out;
    }
    case StrategyKind::kFourPart: {
      if (profiles.size() != 4) {
        throw std::invalid_argument(
            "strategy: four-part requires exactly 4 tenants");
      }
      const std::uint32_t sum = strategy.parts[0] + strategy.parts[1] +
                                strategy.parts[2] + strategy.parts[3];
      if (sum != channels) {
        throw std::invalid_argument("strategy: four-part sum != channels");
      }
      // Parts largest-first to tenants in descending relative intensity
      // (the paper's Figure-6 convention).
      std::array<std::uint32_t, 4> parts = strategy.parts;
      std::sort(parts.begin(), parts.end(), std::greater<>());
      std::vector<std::size_t> order(4);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return profiles[a].relative_intensity >
                                profiles[b].relative_intensity;
                       });
      std::uint32_t first = 0;
      for (std::size_t rank = 0; rank < 4; ++rank) {
        out[order[rank]] = channel_range(first, parts[rank]);
        first += parts[rank];
      }
      return out;
    }
  }
  throw std::logic_error("unreachable strategy kind");
}

}  // namespace ssdk::core
