// SSDKeeper online controller — the paper's Algorithm 2, plus an optional
// periodic re-prediction mode (DESIGN.md §8).
//
// For t < T (the feature-collection window) the device runs Shared with
// default page allocation while the features collector observes arrivals.
// At the first arrival with t >= T the keeper finalizes the features,
// queries the channel allocator, and re-partitions channels (optionally
// also switching per-tenant page-allocation modes — the hybrid allocator).
// Data written before the switch stays where it is; reads continue to find
// it via the mapping, exactly as a real FTL would behave.
//
// With `repredict_interval_ns` set, the keeper keeps collecting after the
// initial switch in rolling windows and re-applies the predicted strategy
// at each window boundary — adapting when the tenant mix drifts (the
// paper's "self-adapting" goal taken online).
//
// Two robustness additions (DESIGN.md §14):
//   * Power-loss recovery: attach() also installs the device's power hook.
//     After a power cut + recovery scan the keeper re-enters Algorithm 2
//     from the top — safe Shared allocation with default page placement,
//     fresh collection window from the recovered clock — because the
//     pre-crash partition was tuned to a mix the crash may have ended.
//   * p99 regression watchdog (`watchdog_window_ns` > 0): after every
//     re-partition the keeper compares the p99 completion latency of the
//     next window against the window before the switch; a regression
//     beyond `rollback_p99_ratio` reverts to the previous strategy and
//     vetoes the regressing one at the next re-prediction.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/allocator.hpp"
#include "core/features.hpp"
#include "core/runner.hpp"
#include "ssd/ssd.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/time_types.hpp"

namespace ssdk::core {

struct KeeperConfig {
  /// Feature-collection window T.
  Duration collect_window_ns = 200 * kMillisecond;
  /// Enable the hybrid page allocator after the switch.
  bool hybrid_page_allocation = true;
  /// 0 = one-shot Algorithm 2. Otherwise the keeper re-collects features
  /// in rolling windows of this length and re-partitions whenever the
  /// prediction changes.
  Duration repredict_interval_ns = 0;
  /// Mirror every (window, features, predicted strategy, switch) decision
  /// into the device's telemetry tracer (when one is attached), so
  /// strategy switches are visible on the trace timeline next to the
  /// latency they caused.
  bool trace_decisions = true;
  /// What-if mode: at each decision point, fork() the device per top-k
  /// predicted strategy, measure each candidate on the remaining submitted
  /// work, and apply the measured best instead of trusting the argmax.
  /// 0 or 1 disables (pure Algorithm 2). Note the measurement horizon is
  /// the rest of the submitted trace and the forks start one request after
  /// the decision arrival (its page ops are not yet created when the
  /// arrival hook runs) — a deliberate heuristic, not an oracle.
  std::uint32_t what_if_top_k = 0;
  /// Optional pool for the what-if fork trials: each candidate's fork
  /// replays the remaining work on its own worker (nullptr = serial).
  /// Every trial writes only its own score slot and the argmin scans the
  /// slots in candidate order afterwards, so the chosen strategy is
  /// identical at any thread count. Non-owning; must outlive the keeper.
  ThreadPool* what_if_pool = nullptr;
  /// p99 regression watchdog. 0 disables. Otherwise, after every strategy
  /// *change*, read/write completions over the next `watchdog_window_ns`
  /// form a post-switch latency sample; if its p99 exceeds
  /// `rollback_p99_ratio` times the p99 of the same-length window before
  /// the switch (both sides holding at least `watchdog_min_samples`
  /// completions), the keeper reverts to the previous strategy and vetoes
  /// the regressing one at the next re-prediction.
  Duration watchdog_window_ns = 0;
  double rollback_p99_ratio = 1.25;
  std::uint32_t watchdog_min_samples = 32;
  FeatureConfig features;
};

class SsdKeeper {
 public:
  SsdKeeper(const ChannelAllocator& allocator, KeeperConfig config);

  /// Install the keeper's hooks on a device: the arrival hook (feature
  /// collection + decisions), the completion hook (watchdog latency
  /// samples) and the power hook (post-recovery re-entry). The device must
  /// be driven (submit + run_to_completion) by the caller. Replaces any
  /// existing hooks of those kinds.
  void attach(ssd::Ssd& device);

  bool switched() const { return !decisions_.empty(); }
  /// Features measured over the most recent completed window.
  const std::optional<MixFeatures>& measured_features() const {
    return features_;
  }
  /// Strategy currently in force (the most recent decision).
  std::optional<Strategy> chosen_strategy() const;
  /// Every (switch time, strategy) decision, including re-predictions
  /// that confirmed the incumbent strategy.
  const std::vector<std::pair<SimTime, Strategy>>& decisions() const {
    return decisions_;
  }
  /// Number of decisions that changed the allocation.
  std::size_t strategy_changes() const;

  /// What-if measurements of the most recent decision: (strategy index,
  /// measured suffix latency us) in candidate order. Empty unless
  /// what_if_top_k >= 2.
  const std::vector<std::pair<std::uint32_t, double>>& what_if_measurements()
      const {
    return what_if_;
  }

  /// Re-partitions the watchdog reverted because they made p99 worse.
  std::size_t rollbacks() const { return rollbacks_; }
  /// Power-loss recoveries the keeper re-entered collection after.
  std::size_t power_recoveries() const { return power_recoveries_; }

 private:
  void on_arrival(ssd::Ssd& device, const sim::IoRequest& request);
  void on_completion(ssd::Ssd& device, const sim::Completion& completion);
  void on_power_up(ssd::Ssd& device);
  void apply(ssd::Ssd& device, SimTime at);
  /// Open a watchdog window over the just-applied switch.
  void start_watch(SimTime at, const Strategy& incumbent,
                   const Strategy& candidate);
  /// Drop latency samples older than one watchdog window before `now`.
  void prune_recent(SimTime now);
  /// Profiles to re-apply a strategy outside a decision point (rollback,
  /// power recovery): the last decision's profiles, or a uniform default
  /// before any decision exists.
  std::vector<TenantProfile> recovery_profiles() const;
  /// Fork the device per candidate, replay the remaining work under it,
  /// and return the index (into the strategy space) with the lowest
  /// measured suffix latency. Fills what_if_.
  std::uint32_t measure_best(const ssd::Ssd& device,
                             std::span<const std::uint32_t> candidates,
                             std::span<const TenantProfile> profiles);

  const ChannelAllocator& allocator_;
  KeeperConfig config_;
  FeaturesCollector collector_;
  SimTime window_end_;
  bool initial_done_ = false;
  std::optional<MixFeatures> features_;
  std::vector<std::pair<SimTime, Strategy>> decisions_;
  std::vector<std::pair<std::uint32_t, double>> what_if_;
  std::vector<TenantProfile> last_profiles_;

  // p99 regression watchdog state (active when watchdog_window_ns > 0).
  std::deque<std::pair<SimTime, double>> recent_lat_;  ///< (finish, us)
  bool watching_ = false;
  SimTime watch_until_ = 0;
  double watch_baseline_p99_ = 0.0;
  std::uint64_t watch_baseline_count_ = 0;
  Strategy watch_prev_;  ///< incumbent restored on rollback
  Strategy watch_next_;  ///< candidate under watch, vetoed on rollback
  SampleSet watch_post_;
  std::optional<Strategy> vetoed_;
  std::size_t rollbacks_ = 0;
  std::size_t power_recoveries_ = 0;
};

struct KeeperRunResult {
  RunResult run;
  MixFeatures features;
  Strategy strategy;  ///< strategy in force at the end of the run
  std::vector<std::pair<SimTime, Strategy>> decisions;
};

/// Convenience: run a mixed workload end-to-end under SSDKeeper control.
/// A device-full abort degrades gracefully (logged via util/logger; the
/// partial result carries device_full + abort_reason) as long as the
/// initial collection window had elapsed. `tracer` (optional, non-owning)
/// records the run's lifecycle spans and keeper decisions.
KeeperRunResult run_with_keeper(std::span<const sim::IoRequest> requests,
                                const ChannelAllocator& allocator,
                                const KeeperConfig& keeper_config,
                                const ssd::SsdOptions& ssd_options,
                                telemetry::Tracer* tracer = nullptr);

}  // namespace ssdk::core
