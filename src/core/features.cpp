#include "core/features.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ssdk::core {

std::vector<double> MixFeatures::to_vector() const {
  std::vector<double> v;
  v.reserve(kFeatureDim);
  v.push_back(static_cast<double>(intensity_level));
  for (const auto c : read_dominated) v.push_back(static_cast<double>(c));
  for (const auto p : proportion) v.push_back(p);
  return v;
}

std::vector<TenantProfile> MixFeatures::profiles(
    std::uint32_t tenants) const {
  if (tenants > 4) throw std::invalid_argument("features: > 4 tenants");
  std::vector<TenantProfile> out(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    out[t].id = t;
    out[t].read_dominated = read_dominated[t] != 0;
    out[t].relative_intensity = proportion[t];
  }
  return out;
}

double MixFeatures::total_write_proportion() const {
  double w = 0.0;
  for (std::size_t t = 0; t < 4; ++t) {
    if (read_dominated[t] == 0) w += proportion[t];
  }
  return w;
}

std::string MixFeatures::describe() const {
  std::ostringstream os;
  os << '[' << intensity_level << "] [";
  for (std::size_t t = 0; t < 4; ++t) {
    os << static_cast<int>(read_dominated[t]) << (t + 1 < 4 ? "," : "");
  }
  os << "] [" << std::fixed << std::setprecision(2);
  for (std::size_t t = 0; t < 4; ++t) {
    os << proportion[t] << (t + 1 < 4 ? "," : "");
  }
  os << ']';
  return os.str();
}

FeaturesCollector::FeaturesCollector(FeatureConfig config)
    : config_(config) {
  if (config_.max_tenants == 0 || config_.max_tenants > 4) {
    throw std::invalid_argument("features: max_tenants must be 1..4");
  }
  if (config_.intensity_levels == 0 || config_.max_intensity_rps <= 0.0) {
    throw std::invalid_argument("features: bad intensity scale");
  }
}

void FeaturesCollector::observe(const sim::IoRequest& request) {
  if (request.tenant >= config_.max_tenants) {
    throw std::invalid_argument("features: tenant id out of range");
  }
  if (total_ == 0) {
    first_arrival_ = last_arrival_ = request.arrival;
  } else {
    first_arrival_ = std::min(first_arrival_, request.arrival);
    last_arrival_ = std::max(last_arrival_, request.arrival);
  }
  ++total_;
  auto& t = tenants_[request.tenant];
  if (request.type == sim::OpType::kRead) {
    ++t.reads;
  } else {
    ++t.writes;
  }
}

void FeaturesCollector::reset() {
  tenants_ = {};
  total_ = 0;
  first_arrival_ = last_arrival_ = 0;
}

MixFeatures FeaturesCollector::finalize(double window_s) const {
  MixFeatures f;
  if (total_ == 0) return f;

  double duration_s = window_s;
  if (duration_s <= 0.0) {
    duration_s = static_cast<double>(last_arrival_ - first_arrival_) / 1e9;
  }
  const double rate =
      duration_s > 0.0 ? static_cast<double>(total_) / duration_s
                       : config_.max_intensity_rps;
  const double frac = rate / config_.max_intensity_rps;
  f.intensity_level = static_cast<std::uint32_t>(std::min(
      static_cast<double>(config_.intensity_levels - 1),
      std::floor(frac * static_cast<double>(config_.intensity_levels))));

  for (std::uint32_t t = 0; t < config_.max_tenants; ++t) {
    const auto& pt = tenants_[t];
    f.read_dominated[t] = pt.reads > pt.writes ? 1 : 0;
    f.proportion[t] = static_cast<double>(pt.reads + pt.writes) /
                      static_cast<double>(total_);
  }
  return f;
}

MixFeatures features_of(std::span<const sim::IoRequest> requests,
                        const FeatureConfig& config) {
  FeaturesCollector collector(config);
  for (const auto& r : requests) collector.observe(r);
  return collector.finalize();
}

std::vector<TenantStreamStats> per_tenant_stats(
    std::span<const sim::IoRequest> requests) {
  // Tenant ids are arbitrary here; a sorted map keeps the result ordered
  // by id without assuming density.
  std::map<sim::TenantId, TenantStreamStats> by_tenant;
  std::map<sim::TenantId, std::pair<SimTime, SimTime>> spans;
  for (const auto& r : requests) {
    auto [it, inserted] = by_tenant.try_emplace(r.tenant);
    it->second.tenant = r.tenant;
    if (r.type == sim::OpType::kRead) {
      ++it->second.reads;
    } else if (r.type == sim::OpType::kWrite) {
      ++it->second.writes;
    } else {
      continue;  // trims/flushes carry no read/write signal
    }
    auto [sit, first] = spans.try_emplace(r.tenant, r.arrival, r.arrival);
    if (!first) {
      sit->second.first = std::min(sit->second.first, r.arrival);
      sit->second.second = std::max(sit->second.second, r.arrival);
    }
  }
  std::vector<TenantStreamStats> out;
  out.reserve(by_tenant.size());
  for (const auto& [id, stats] : by_tenant) {
    TenantStreamStats s = stats;
    const auto span_it = spans.find(id);
    if (span_it != spans.end()) {
      const double span_s =
          static_cast<double>(span_it->second.second -
                              span_it->second.first) /
          1e9;
      s.requests_per_s = span_s > 0.0
                             ? static_cast<double>(s.requests()) / span_s
                             : static_cast<double>(s.requests());
    }
    if (s.requests() > 0) out.push_back(s);
  }
  return out;
}

}  // namespace ssdk::core
