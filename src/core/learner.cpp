#include "core/learner.hpp"

#include <stdexcept>

#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace ssdk::core {

LearnedModel train_strategy_learner(const nn::Dataset& dataset,
                                    const StrategySpace& space,
                                    const LearnerConfig& config) {
  if (dataset.empty()) {
    throw std::invalid_argument("learner: empty dataset");
  }
  if (dataset.feature_dim() != kFeatureDim) {
    throw std::invalid_argument("learner: feature dim != 9");
  }
  for (const auto label : dataset.labels()) {
    if (label >= space.size()) {
      throw std::invalid_argument("learner: label outside strategy space");
    }
  }

  nn::Dataset shuffled = dataset;
  Rng rng(config.seed);
  shuffled.shuffle(rng);
  auto [train_raw, test_raw] = shuffled.split(config.train_fraction);

  nn::StandardScaler scaler;
  scaler.fit(train_raw.features());
  nn::Dataset train(scaler.transform(train_raw.features()),
                    std::vector<std::uint32_t>(train_raw.labels()));
  nn::Dataset test = test_raw.empty()
                         ? nn::Dataset()
                         : nn::Dataset(scaler.transform(test_raw.features()),
                                       std::vector<std::uint32_t>(
                                           test_raw.labels()));

  nn::Mlp model({kFeatureDim, config.hidden_neurons, space.size()},
                nn::activation_from_string(config.activation), config.seed);
  auto optimizer = nn::make_optimizer(config.optimizer);

  nn::TrainOptions options;
  options.max_iterations = config.max_iterations;
  options.batch_size = config.batch_size;
  options.shuffle_seed = config.seed;
  nn::TrainHistory history =
      nn::train_classifier(model, *optimizer, train, test, options);

  return LearnedModel{
      ChannelAllocator(std::move(model), std::move(scaler), space),
      std::move(history)};
}

}  // namespace ssdk::core
