// Strategy learner (paper Section IV.C): trains the 9 -> 64 -> |space|
// network on (features, best-strategy) pairs and packages the result as a
// deployable ChannelAllocator.
#pragma once

#include <cstdint>
#include <string>

#include "core/allocator.hpp"
#include "nn/dataset.hpp"
#include "nn/trainer.hpp"

namespace ssdk::core {

struct LearnerConfig {
  std::size_t hidden_neurons = 64;  ///< paper: one hidden layer of 64
  /// "sgd", "sgd-momentum", "adam" (+ "adagrad", "rmsprop").
  std::string optimizer = "adam";
  /// Hidden activation; the paper compares "relu" and "logistic" for Adam.
  std::string activation = "logistic";
  std::size_t max_iterations = 200;  ///< paper Figure 4 x-axis
  std::size_t batch_size = 64;
  double train_fraction = 0.7;  ///< paper: 7:3 train/test split
  std::uint64_t seed = 42;
};

struct LearnedModel {
  ChannelAllocator allocator;
  nn::TrainHistory history;
};

/// Shuffle + split + scale + train. The dataset's labels must index into
/// `space` (labels >= space.size() throw).
LearnedModel train_strategy_learner(const nn::Dataset& dataset,
                                    const StrategySpace& space,
                                    const LearnerConfig& config);

}  // namespace ssdk::core
