// Result reporting: serialize benchmark series to CSV for plotting and
// format latency tables consistently across examples and benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/runner.hpp"

namespace ssdk::core {

/// A named series over a shared x-axis — one Figure-2-style sweep.
struct Series {
  std::string name;
  std::vector<double> values;
};

struct SweepTable {
  std::string x_label;
  std::vector<double> x;
  std::vector<Series> series;

  /// All series must match the x-axis length; throws otherwise.
  void validate() const;
};

/// Write a sweep as CSV: header "x_label,series0,series1,...", one row per
/// x value. Validates first.
void write_sweep_csv(std::ostream& os, const SweepTable& table);
void write_sweep_csv_file(const std::string& path, const SweepTable& table);

/// One row per tenant plus an aggregate row, pipe-separated Markdown.
std::string format_run_markdown(const RunResult& result);

/// Reliability companion table: per-tenant read retries, uncorrectable
/// reads and retry-induced wait, followed by device-level fault counters
/// (retired blocks, rescue migrations, program/erase failures, lost
/// pages). Meaningful only when a FaultModel is enabled; with faults off
/// every value is zero.
std::string format_reliability_markdown(const RunResult& result);

/// Normalize a series against its first element (the paper's Figure-2
/// convention: everything relative to Shared). Zero baseline -> zeros.
std::vector<double> normalize_to_first(const std::vector<double>& values);

}  // namespace ssdk::core
