#include "core/keeper.hpp"

#include <limits>
#include <stdexcept>

namespace ssdk::core {

SsdKeeper::SsdKeeper(const ChannelAllocator& allocator, KeeperConfig config)
    : allocator_(allocator), config_(config), collector_(config.features),
      window_end_(config.collect_window_ns) {}

void SsdKeeper::attach(ssd::Ssd& device) {
  device.set_arrival_hook([this, &device](const sim::IoRequest& request) {
    on_arrival(device, request);
  });
}

std::optional<Strategy> SsdKeeper::chosen_strategy() const {
  if (decisions_.empty()) return std::nullopt;
  return decisions_.back().second;
}

std::size_t SsdKeeper::strategy_changes() const {
  if (decisions_.empty()) return 0;
  std::size_t changes = 1;  // the initial switch
  for (std::size_t i = 1; i < decisions_.size(); ++i) {
    if (!(decisions_[i].second == decisions_[i - 1].second)) ++changes;
  }
  return changes;
}

std::uint32_t SsdKeeper::measure_best(
    const ssd::Ssd& device, std::span<const std::uint32_t> candidates,
    std::span<const TenantProfile> profiles) {
  what_if_.clear();
  // Latency accumulated so far; each fork's score is the *suffix* average
  // (what the candidate strategy can still influence), not the whole-run
  // average the prefix already fixed.
  const sim::TenantMetrics before = device.metrics().aggregate();
  const double read_sum0 = before.read_latency_us.sum();
  const double write_sum0 = before.write_latency_us.sum();
  const double read_n0 = static_cast<double>(before.read_latency_us.count());
  const double write_n0 =
      static_cast<double>(before.write_latency_us.count());

  std::uint32_t best = candidates.front();
  double best_score = std::numeric_limits<double>::infinity();
  for (const std::uint32_t index : candidates) {
    auto forked = device.fork();
    configure_ssd(*forked, allocator_.space().at(index), profiles,
                  config_.hybrid_page_allocation);
    double score = std::numeric_limits<double>::infinity();
    try {
      forked->run_to_completion();
      const sim::TenantMetrics after = forked->metrics().aggregate();
      const double reads =
          static_cast<double>(after.read_latency_us.count()) - read_n0;
      const double writes =
          static_cast<double>(after.write_latency_us.count()) - write_n0;
      const double suffix_read =
          reads > 0.0 ? (after.read_latency_us.sum() - read_sum0) / reads
                      : 0.0;
      const double suffix_write =
          writes > 0.0
              ? (after.write_latency_us.sum() - write_sum0) / writes
              : 0.0;
      score = suffix_read + suffix_write;
    } catch (const ftl::DeviceFullError&) {
      // A candidate that fills the device scores worst; keep infinity.
    }
    what_if_.emplace_back(index, score);
    if (score < best_score) {
      best_score = score;
      best = index;
    }
  }
  return best;
}

void SsdKeeper::apply(ssd::Ssd& device, SimTime at) {
  const double window_s =
      static_cast<double>(initial_done_ ? config_.repredict_interval_ns
                                        : config_.collect_window_ns) /
      1e9;
  features_ = collector_.finalize(window_s);
  Strategy strategy;
  if (config_.what_if_top_k >= 2) {
    const auto candidates =
        allocator_.predict_top_k(*features_, config_.what_if_top_k);
    const auto profiles = features_->profiles(allocator_.space().tenants());
    strategy = allocator_.space().at(
        measure_best(device, candidates, profiles));
  } else {
    strategy = allocator_.predict(*features_);
  }
  const bool changed =
      decisions_.empty() || !(strategy == decisions_.back().second);
  if (changed) {
    const auto profiles = features_->profiles(allocator_.space().tenants());
    configure_ssd(device, strategy, profiles,
                  config_.hybrid_page_allocation);
  }
  if (config_.trace_decisions) {
    if (auto* tracer = device.tracer()) {
      telemetry::KeeperDecision decision;
      decision.time = at;
      decision.strategy = strategy.name();
      decision.features = features_->describe();
      decision.changed = changed;
      tracer->record_decision(std::move(decision));
    }
  }
  decisions_.emplace_back(at, strategy);
  collector_.reset();
}

void SsdKeeper::on_arrival(ssd::Ssd& device,
                           const sim::IoRequest& request) {
  if (request.arrival >= window_end_ && collector_.observed() > 0) {
    // Window boundary crossed: decide (Algorithm 2 line 8, or a periodic
    // re-prediction), then open the next window when in periodic mode.
    apply(device, request.arrival);
    if (!initial_done_) {
      initial_done_ = true;
      window_end_ = config_.repredict_interval_ns == 0
                        ? ~SimTime{0}
                        : request.arrival + config_.repredict_interval_ns;
    } else {
      while (window_end_ <= request.arrival) {
        window_end_ += config_.repredict_interval_ns;
      }
    }
  }
  if (window_end_ != ~SimTime{0}) collector_.observe(request);
}

KeeperRunResult run_with_keeper(std::span<const sim::IoRequest> requests,
                                const ChannelAllocator& allocator,
                                const KeeperConfig& keeper_config,
                                const ssd::SsdOptions& ssd_options,
                                telemetry::Tracer* tracer) {
  ssd::Ssd device(ssd_options);
  if (tracer) device.set_tracer(tracer);
  device.reserve(requests.size());
  SsdKeeper keeper(allocator, keeper_config);
  keeper.attach(device);
  device.submit(requests);
  RunResult run;
  try {
    device.run_to_completion();
    run = summarize(device);
  } catch (const ftl::DeviceFullError& e) {
    run = summarize_device_full(device, e, "keeper");
  }
  if (!keeper.switched()) {
    throw std::runtime_error(
        "keeper: collection window never elapsed; shorten "
        "collect_window_ns or lengthen the workload");
  }
  return KeeperRunResult{std::move(run), *keeper.measured_features(),
                         *keeper.chosen_strategy(), keeper.decisions()};
}

}  // namespace ssdk::core
