#include "core/keeper.hpp"

#include <stdexcept>

namespace ssdk::core {

SsdKeeper::SsdKeeper(const ChannelAllocator& allocator, KeeperConfig config)
    : allocator_(allocator), config_(config), collector_(config.features),
      window_end_(config.collect_window_ns) {}

void SsdKeeper::attach(ssd::Ssd& device) {
  device.set_arrival_hook([this, &device](const sim::IoRequest& request) {
    on_arrival(device, request);
  });
}

std::optional<Strategy> SsdKeeper::chosen_strategy() const {
  if (decisions_.empty()) return std::nullopt;
  return decisions_.back().second;
}

std::size_t SsdKeeper::strategy_changes() const {
  if (decisions_.empty()) return 0;
  std::size_t changes = 1;  // the initial switch
  for (std::size_t i = 1; i < decisions_.size(); ++i) {
    if (!(decisions_[i].second == decisions_[i - 1].second)) ++changes;
  }
  return changes;
}

void SsdKeeper::apply(ssd::Ssd& device, SimTime at) {
  const double window_s =
      static_cast<double>(initial_done_ ? config_.repredict_interval_ns
                                        : config_.collect_window_ns) /
      1e9;
  features_ = collector_.finalize(window_s);
  const Strategy strategy = allocator_.predict(*features_);
  const bool changed =
      decisions_.empty() || !(strategy == decisions_.back().second);
  if (changed) {
    const auto profiles = features_->profiles(allocator_.space().tenants());
    configure_ssd(device, strategy, profiles,
                  config_.hybrid_page_allocation);
  }
  if (config_.trace_decisions) {
    if (auto* tracer = device.tracer()) {
      telemetry::KeeperDecision decision;
      decision.time = at;
      decision.strategy = strategy.name();
      decision.features = features_->describe();
      decision.changed = changed;
      tracer->record_decision(std::move(decision));
    }
  }
  decisions_.emplace_back(at, strategy);
  collector_.reset();
}

void SsdKeeper::on_arrival(ssd::Ssd& device,
                           const sim::IoRequest& request) {
  if (request.arrival >= window_end_ && collector_.observed() > 0) {
    // Window boundary crossed: decide (Algorithm 2 line 8, or a periodic
    // re-prediction), then open the next window when in periodic mode.
    apply(device, request.arrival);
    if (!initial_done_) {
      initial_done_ = true;
      window_end_ = config_.repredict_interval_ns == 0
                        ? ~SimTime{0}
                        : request.arrival + config_.repredict_interval_ns;
    } else {
      while (window_end_ <= request.arrival) {
        window_end_ += config_.repredict_interval_ns;
      }
    }
  }
  if (window_end_ != ~SimTime{0}) collector_.observe(request);
}

KeeperRunResult run_with_keeper(std::span<const sim::IoRequest> requests,
                                const ChannelAllocator& allocator,
                                const KeeperConfig& keeper_config,
                                const ssd::SsdOptions& ssd_options,
                                telemetry::Tracer* tracer) {
  ssd::Ssd device(ssd_options);
  if (tracer) device.set_tracer(tracer);
  device.reserve(requests.size());
  SsdKeeper keeper(allocator, keeper_config);
  keeper.attach(device);
  device.submit(requests);
  RunResult run;
  try {
    device.run_to_completion();
    run = summarize(device);
  } catch (const ftl::DeviceFullError& e) {
    run = summarize_device_full(device, e, "keeper");
  }
  if (!keeper.switched()) {
    throw std::runtime_error(
        "keeper: collection window never elapsed; shorten "
        "collect_window_ns or lengthen the workload");
  }
  return KeeperRunResult{std::move(run), *keeper.measured_features(),
                         *keeper.chosen_strategy(), keeper.decisions()};
}

}  // namespace ssdk::core
