#include "core/keeper.hpp"

#include <limits>
#include <stdexcept>

namespace ssdk::core {

SsdKeeper::SsdKeeper(const ChannelAllocator& allocator, KeeperConfig config)
    : allocator_(allocator), config_(config), collector_(config.features),
      window_end_(config.collect_window_ns) {}

void SsdKeeper::attach(ssd::Ssd& device) {
  device.set_arrival_hook([this, &device](const sim::IoRequest& request) {
    on_arrival(device, request);
  });
  device.set_completion_hook([this, &device](const sim::Completion& c) {
    on_completion(device, c);
  });
  device.set_power_hook([this, &device]() { on_power_up(device); });
}

std::optional<Strategy> SsdKeeper::chosen_strategy() const {
  if (decisions_.empty()) return std::nullopt;
  return decisions_.back().second;
}

std::size_t SsdKeeper::strategy_changes() const {
  if (decisions_.empty()) return 0;
  std::size_t changes = 1;  // the initial switch
  for (std::size_t i = 1; i < decisions_.size(); ++i) {
    if (!(decisions_[i].second == decisions_[i - 1].second)) ++changes;
  }
  return changes;
}

std::uint32_t SsdKeeper::measure_best(
    const ssd::Ssd& device, std::span<const std::uint32_t> candidates,
    std::span<const TenantProfile> profiles) {
  what_if_.clear();
  // Latency accumulated so far; each fork's score is the *suffix* average
  // (what the candidate strategy can still influence), not the whole-run
  // average the prefix already fixed. aggregate_sums reads the running
  // sums in O(tenants) instead of copying every latency sample.
  const sim::LatencySums before = device.metrics().aggregate_sums();

  const std::size_t n = candidates.size();
  std::vector<double> scores(n, std::numeric_limits<double>::infinity());
  const auto trial = [&](std::size_t i) {
    auto forked = device.fork();
    configure_ssd(*forked, allocator_.space().at(candidates[i]), profiles,
                  config_.hybrid_page_allocation);
    try {
      forked->run_to_completion();
      const sim::LatencySums after = forked->metrics().aggregate_sums();
      const double reads = static_cast<double>(after.reads - before.reads);
      const double writes =
          static_cast<double>(after.writes - before.writes);
      const double suffix_read =
          reads > 0.0 ? (after.read_sum_us - before.read_sum_us) / reads
                      : 0.0;
      const double suffix_write =
          writes > 0.0
              ? (after.write_sum_us - before.write_sum_us) / writes
              : 0.0;
      scores[i] = suffix_read + suffix_write;
    } catch (const ftl::DeviceFullError&) {
      // A candidate that fills the device scores worst; keep infinity.
    }
  };
  if (config_.what_if_pool != nullptr && n > 1) {
    parallel_for(*config_.what_if_pool, n, trial);
  } else {
    for (std::size_t i = 0; i < n; ++i) trial(i);
  }

  // Serial argmin in candidate order: ties keep the earliest candidate
  // (the allocator's higher-confidence prediction) at any thread count.
  std::uint32_t best = candidates.front();
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    what_if_.emplace_back(candidates[i], scores[i]);
    if (scores[i] < best_score) {
      best_score = scores[i];
      best = candidates[i];
    }
  }
  return best;
}

void SsdKeeper::apply(ssd::Ssd& device, SimTime at) {
  const double window_s =
      static_cast<double>(initial_done_ ? config_.repredict_interval_ns
                                        : config_.collect_window_ns) /
      1e9;
  features_ = collector_.finalize(window_s);
  const auto profiles = features_->profiles(allocator_.space().tenants());
  last_profiles_ = profiles;
  Strategy strategy;
  if (config_.what_if_top_k >= 2) {
    const auto candidates =
        allocator_.predict_top_k(*features_, config_.what_if_top_k);
    strategy = allocator_.space().at(
        measure_best(device, candidates, profiles));
  } else {
    strategy = allocator_.predict(*features_);
  }
  const Strategy incumbent = decisions_.empty() ? allocator_.space().shared()
                                                : decisions_.back().second;
  if (vetoed_ && strategy == *vetoed_) {
    // The watchdog rolled this strategy back last window; keep the
    // incumbent for one more window instead of re-applying it.
    strategy = incumbent;
    vetoed_.reset();
  }
  const bool changed =
      decisions_.empty() || !(strategy == decisions_.back().second);
  if (changed) {
    configure_ssd(device, strategy, profiles,
                  config_.hybrid_page_allocation);
    if (config_.watchdog_window_ns > 0) start_watch(at, incumbent, strategy);
  }
  if (config_.trace_decisions) {
    if (auto* tracer = device.tracer()) {
      telemetry::KeeperDecision decision;
      decision.time = at;
      decision.strategy = strategy.name();
      decision.features = features_->describe();
      decision.changed = changed;
      tracer->record_decision(std::move(decision));
    }
  }
  decisions_.emplace_back(at, strategy);
  collector_.reset();
}

void SsdKeeper::prune_recent(SimTime now) {
  const Duration window = config_.watchdog_window_ns;
  while (!recent_lat_.empty() && recent_lat_.front().first + window < now) {
    recent_lat_.pop_front();
  }
}

void SsdKeeper::start_watch(SimTime at, const Strategy& incumbent,
                            const Strategy& candidate) {
  prune_recent(at);
  SampleSet baseline;
  for (const auto& [finish, us] : recent_lat_) baseline.add(us);
  watch_prev_ = incumbent;
  watch_next_ = candidate;
  watch_baseline_count_ = baseline.count();
  watch_baseline_p99_ = baseline.empty() ? 0.0 : baseline.percentile(99.0);
  watch_post_ = SampleSet{};
  watch_until_ = at + config_.watchdog_window_ns;
  watching_ = true;
}

void SsdKeeper::on_completion(ssd::Ssd& device,
                              const sim::Completion& c) {
  if (config_.watchdog_window_ns == 0) return;
  if (c.type != sim::OpType::kRead && c.type != sim::OpType::kWrite) return;
  const double us = to_us(c.latency());
  prune_recent(c.finish);
  recent_lat_.emplace_back(c.finish, us);
  if (!watching_) return;
  if (c.finish < watch_until_) {
    watch_post_.add(us);
    return;
  }
  // The watch window just closed; judge the switch on what it collected.
  watching_ = false;
  if (watch_post_.count() < config_.watchdog_min_samples ||
      watch_baseline_count_ < config_.watchdog_min_samples ||
      watch_baseline_p99_ <= 0.0) {
    return;  // not enough evidence either way — keep the new strategy
  }
  const double post_p99 = watch_post_.percentile(99.0);
  if (post_p99 <= config_.rollback_p99_ratio * watch_baseline_p99_) return;

  // Regression confirmed: restore the incumbent and veto the regressor so
  // the next re-prediction cannot immediately re-apply it.
  configure_ssd(device, watch_prev_, recovery_profiles(),
                config_.hybrid_page_allocation);
  vetoed_ = watch_next_;
  ++rollbacks_;
  if (config_.trace_decisions) {
    if (auto* tracer = device.tracer()) {
      telemetry::KeeperDecision decision;
      decision.time = c.finish;
      decision.strategy = watch_prev_.name();
      decision.features = "watchdog rollback of " + watch_next_.name() +
                          ": p99 " + std::to_string(post_p99) +
                          "us vs baseline " +
                          std::to_string(watch_baseline_p99_) + "us";
      decision.changed = true;
      tracer->record_decision(std::move(decision));
    }
  }
  decisions_.emplace_back(c.finish, watch_prev_);
}

std::vector<TenantProfile> SsdKeeper::recovery_profiles() const {
  if (!last_profiles_.empty()) return last_profiles_;
  std::vector<TenantProfile> profiles(allocator_.space().tenants());
  for (std::size_t t = 0; t < profiles.size(); ++t) {
    profiles[t].id = static_cast<sim::TenantId>(t);
    profiles[t].relative_intensity =
        1.0 / static_cast<double>(profiles.size());
  }
  return profiles;
}

void SsdKeeper::on_power_up(ssd::Ssd& device) {
  // The pre-crash partition was tuned to a mix the crash may have ended,
  // and any in-progress collection window died with the queues. Re-enter
  // Algorithm 2 from the top: safe Shared allocation with the default
  // (static) page placement and a fresh window from the recovered clock.
  const Strategy shared = allocator_.space().shared();
  configure_ssd(device, shared, recovery_profiles(), false);
  collector_.reset();
  initial_done_ = false;
  window_end_ = device.now() + config_.collect_window_ns;
  watching_ = false;
  recent_lat_.clear();
  vetoed_.reset();
  ++power_recoveries_;
  if (config_.trace_decisions) {
    if (auto* tracer = device.tracer()) {
      telemetry::KeeperDecision decision;
      decision.time = device.now();
      decision.strategy = shared.name();
      decision.features = "power-loss recovery: re-entering collection";
      decision.changed = true;
      tracer->record_decision(std::move(decision));
    }
  }
  decisions_.emplace_back(device.now(), shared);
}

void SsdKeeper::on_arrival(ssd::Ssd& device,
                           const sim::IoRequest& request) {
  if (request.arrival >= window_end_ && collector_.observed() > 0) {
    // Window boundary crossed: decide (Algorithm 2 line 8, or a periodic
    // re-prediction), then open the next window when in periodic mode.
    apply(device, request.arrival);
    if (!initial_done_) {
      initial_done_ = true;
      window_end_ = config_.repredict_interval_ns == 0
                        ? ~SimTime{0}
                        : request.arrival + config_.repredict_interval_ns;
    } else {
      while (window_end_ <= request.arrival) {
        window_end_ += config_.repredict_interval_ns;
      }
    }
  }
  if (window_end_ != ~SimTime{0}) collector_.observe(request);
}

KeeperRunResult run_with_keeper(std::span<const sim::IoRequest> requests,
                                const ChannelAllocator& allocator,
                                const KeeperConfig& keeper_config,
                                const ssd::SsdOptions& ssd_options,
                                telemetry::Tracer* tracer) {
  ssd::Ssd device(ssd_options);
  if (tracer) device.set_tracer(tracer);
  device.reserve(requests.size());
  SsdKeeper keeper(allocator, keeper_config);
  keeper.attach(device);
  device.submit(requests);
  RunResult run;
  try {
    device.run_to_completion();
    run = summarize(device);
  } catch (const ftl::DeviceFullError& e) {
    run = summarize_device_full(device, e, "keeper");
  }
  if (!keeper.switched()) {
    throw std::runtime_error(
        "keeper: collection window never elapsed; shorten "
        "collect_window_ns or lengthen the workload");
  }
  return KeeperRunResult{std::move(run), *keeper.measured_features(),
                         *keeper.chosen_strategy(), keeper.decisions()};
}

}  // namespace ssdk::core
