#include "core/report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace ssdk::core {

void SweepTable::validate() const {
  for (const auto& s : series) {
    if (s.values.size() != x.size()) {
      throw std::invalid_argument("sweep table: series '" + s.name +
                                  "' length != x-axis length");
    }
    if (s.name.find(',') != std::string::npos) {
      throw std::invalid_argument("sweep table: comma in series name");
    }
  }
}

void write_sweep_csv(std::ostream& os, const SweepTable& table) {
  table.validate();
  CsvWriter writer(os);
  std::vector<std::string> header{table.x_label};
  for (const auto& s : table.series) header.push_back(s.name);
  writer.write_row(header);
  for (std::size_t i = 0; i < table.x.size(); ++i) {
    std::vector<std::string> row;
    row.reserve(table.series.size() + 1);
    row.push_back(std::to_string(table.x[i]));
    for (const auto& s : table.series) {
      row.push_back(std::to_string(s.values[i]));
    }
    writer.write_row(row);
  }
}

void write_sweep_csv_file(const std::string& path, const SweepTable& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("report: cannot open " + path);
  write_sweep_csv(out, table);
}

std::string format_run_markdown(const RunResult& result) {
  std::ostringstream os;
  // Fairness / SLO columns appear only when the run produced them, so
  // plain single-objective reports keep the paper's original table shape.
  const bool fairness = !result.tenant_slowdown.empty();
  const bool slo = result.slo_violations > 0;
  os << "| tenant | avg read (us) | avg write (us) | total (us) |";
  if (fairness) os << " slowdown |";
  if (slo) os << " slo misses |";
  os << "\n|---|---|---|---|";
  if (fairness) os << "---|";
  if (slo) os << "---|";
  os << "\n";
  for (const auto& [tenant, metrics] : result.per_tenant) {
    os << "| " << tenant << " | " << metrics.avg_read_us() << " | "
       << metrics.avg_write_us() << " | " << metrics.total_us() << " |";
    if (fairness) {
      const auto it = result.tenant_slowdown.find(tenant);
      if (it != result.tenant_slowdown.end()) {
        os << " " << it->second << " |";
      } else {
        os << " - |";
      }
    }
    if (slo) os << " " << metrics.slo_violations << " |";
    os << "\n";
  }
  os << "| **all** | " << result.avg_read_us << " | " << result.avg_write_us
     << " | " << result.total_us << " |";
  if (fairness) os << " - |";
  if (slo) os << " " << result.slo_violations << " |";
  os << "\n";
  if (fairness) {
    os << "\nfairness: jain " << result.jain_index << ", worst slowdown "
       << result.worst_slowdown << "\n";
  }
  if (result.device_full) {
    os << "\n**aborted** (tenant " << result.device_full_tenant
       << "): " << result.abort_reason << "\n";
  }
  return os.str();
}

std::string format_reliability_markdown(const RunResult& result) {
  std::ostringstream os;
  os << "| tenant | read retries | uncorrectable | program retries | "
        "retry wait (us) |\n"
     << "|---|---|---|---|---|\n";
  for (const auto& [tenant, metrics] : result.per_tenant) {
    os << "| " << tenant << " | " << metrics.read_retries << " | "
       << metrics.uncorrectable_reads << " | " << metrics.program_retries
       << " | " << static_cast<double>(metrics.retry_wait_ns) / 1e3
       << " |\n";
  }
  const auto& c = result.counters;
  os << "\n"
     << "device: retired_blocks=" << c.retired_blocks
     << " rescue_migrations=" << c.rescue_migrations
     << " program_fails=" << c.program_fails
     << " erase_fails=" << c.erase_fails << " lost_pages=" << c.lost_pages
     << " failed_requests=" << c.failed_requests << "\n";
  if (result.device_full) {
    os << "aborted: " << result.abort_reason << "\n";
  }
  return os.str();
}

std::vector<double> normalize_to_first(const std::vector<double>& values) {
  std::vector<double> out(values.size(), 0.0);
  if (values.empty() || values.front() == 0.0) return out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = values[i] / values.front();
  }
  return out;
}

}  // namespace ssdk::core
