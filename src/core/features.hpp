// Features collector (paper Section IV.B, V.A).
//
// Produces the nine-dimensional feature vector the strategy learner
// consumes: overall intensity level of the mixed workload (1-D, quantized
// into 20 levels), per-tenant read/write characteristic (4-D, 1 = read-
// dominated), and per-tenant read/write proportion of total requests
// (4-D, sums to 1). Example from the paper: [5] [1,0,1,0] [0.1,0.2,0.3,0.4].
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "sim/request.hpp"
#include "util/time_types.hpp"

namespace ssdk::core {

struct FeatureConfig {
  std::uint32_t max_tenants = 4;
  std::uint32_t intensity_levels = 20;
  /// Request rate mapped to the top intensity level.
  double max_intensity_rps = 36'000.0;
};

inline constexpr std::size_t kFeatureDim = 9;

struct MixFeatures {
  std::uint32_t intensity_level = 0;
  std::array<std::uint8_t, 4> read_dominated{0, 0, 0, 0};
  std::array<double, 4> proportion{0.0, 0.0, 0.0, 0.0};

  /// Flattened 9-D vector for the network: [level, char x4, prop x4].
  std::vector<double> to_vector() const;

  /// Tenant profiles for strategy application (tenant ids 0..3).
  std::vector<TenantProfile> profiles(std::uint32_t tenants) const;

  /// Total write proportion of the mix (Figure 6's y-axis): the summed
  /// proportion-weighted write fraction of each tenant, approximated by
  /// treating tenants as fully write- or read-dominated.
  double total_write_proportion() const;

  /// "[5] [1,0,1,0] [0.10,0.20,0.30,0.40]" — the paper's notation.
  std::string describe() const;
};

class FeaturesCollector {
 public:
  explicit FeaturesCollector(FeatureConfig config = {});

  /// Record one request arrival.
  void observe(const sim::IoRequest& request);

  std::uint64_t observed() const { return total_; }
  void reset();

  /// Features over everything observed so far. Intensity derives from the
  /// observed arrival span unless `window_s` > 0 overrides it.
  MixFeatures finalize(double window_s = 0.0) const;

  const FeatureConfig& config() const { return config_; }

 private:
  FeatureConfig config_;
  struct PerTenant {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };
  std::array<PerTenant, 4> tenants_{};
  std::uint64_t total_ = 0;
  SimTime first_arrival_ = 0;
  SimTime last_arrival_ = 0;
};

/// One-shot features of a full request stream.
MixFeatures features_of(std::span<const sim::IoRequest> requests,
                        const FeatureConfig& config = {});

/// Raw per-tenant traffic shape of a request stream — the fleet placement
/// tier's input. MixFeatures quantizes the read/write characteristic to
/// one bit per tenant (what the 9-D network wants); consolidation across
/// devices needs the continuous ratio and each tenant's absolute request
/// rate, so those are reported unquantized here.
struct TenantStreamStats {
  sim::TenantId tenant = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Mean arrival rate over the stream's observed span (requests/s).
  double requests_per_s = 0.0;

  std::uint64_t requests() const { return reads + writes; }
  double write_fraction() const {
    return requests() > 0
               ? static_cast<double>(writes) /
                     static_cast<double>(requests())
               : 0.0;
  }
  bool read_dominated() const { return reads > writes; }
};

/// Per-tenant stats of a (possibly mixed) stream, ordered by tenant id.
/// Tenants that issued no requests are omitted. Unlike features_of this
/// accepts any tenant id (the fleet's global ids are not limited to 0..3).
std::vector<TenantStreamStats> per_tenant_stats(
    std::span<const sim::IoRequest> requests);

}  // namespace ssdk::core
