// Channel allocator (paper Section IV.D): the trained network, deployed.
// Takes a feature vector from the features collector, runs one forward
// pass, and returns the strategy with the highest score. Also reports the
// paper's overhead estimates (parameter storage, multiplications per
// inference).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/strategy.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"

namespace ssdk::core {

class ChannelAllocator {
 public:
  ChannelAllocator(nn::Mlp model, nn::StandardScaler scaler,
                   StrategySpace space);

  /// Forward-propagate the features; returns the argmax strategy index.
  std::uint32_t predict_index(const MixFeatures& features) const;
  Strategy predict(const MixFeatures& features) const;

  /// The k highest-scoring strategy indices, best first (ties break toward
  /// the lower index, keeping the result deterministic). k is clamped to
  /// the space size; predict_top_k(f, 1)[0] == predict_index(f). Feeds the
  /// keeper's what-if mode, which forks the device to *measure* the top-k
  /// candidates instead of trusting the argmax.
  std::vector<std::uint32_t> predict_top_k(const MixFeatures& features,
                                           std::size_t k) const;

  const StrategySpace& space() const { return space_; }
  const nn::Mlp& model() const { return model_; }
  const nn::StandardScaler& scaler() const { return scaler_; }

  /// Bytes of parameter storage (8 bytes per weight/bias; the paper
  /// budgets 16 bytes per neuron and reaches the same "negligible"
  /// conclusion).
  std::size_t parameter_bytes() const;
  std::size_t multiplications_per_inference() const {
    return model_.multiplications_per_inference();
  }

  /// Persist/load alongside the scaler (the "send parameters to the FTL"
  /// step of Section IV.C).
  void save(const std::string& path) const;
  static ChannelAllocator load(const std::string& path, StrategySpace space);

 private:
  // Immutable after construction. The predict paths run the model through
  // the const, caller-scratch inference overloads with per-call scratch,
  // so one allocator can safely serve concurrent keepers (a fleet shares
  // a single const allocator across devices running on worker threads;
  // ThreadSanitizer caught the previous `mutable` shared-scratch design
  // racing there). Predictions are one 1-row pass per collect window, so
  // per-call scratch costs nothing that matters; the allocation-free
  // member-scratch path remains for big-batch single-owner callers.
  nn::Mlp model_;
  nn::StandardScaler scaler_;
  StrategySpace space_;
};

}  // namespace ssdk::core
