// Label generation (paper Algorithm 1, lines 3-8): run a mixed workload
// under every channel-allocation strategy, record each strategy's overall
// latency, and label the workload with the argmin strategy. Dataset
// generation synthesizes thousands of such workloads with randomized
// feature-space coverage and fans the strategy sweeps out on a thread pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/features.hpp"
#include "core/runner.hpp"
#include "core/strategy.hpp"
#include "nn/dataset.hpp"
#include "sim/request.hpp"
#include "util/thread_pool.hpp"

namespace ssdk::core {

/// What the label sweep minimizes when picking the argmin strategy.
/// kTotalLatency is the paper's objective (avg read + avg write latency);
/// the other two label for multi-tenant service quality instead:
/// kFairness minimizes the worst tenant's slowdown vs running alone,
/// kSloViolations minimizes the total SLO-target misses (requires
/// slo_target_us entries in the run's scheduler config to be non-trivial).
/// Ties fall back to total latency, then to the lower strategy index, so
/// kTotalLatency reproduces the legacy first-min labels exactly.
enum class LabelObjective : std::uint8_t {
  kTotalLatency,
  kFairness,
  kSloViolations,
};

const char* label_objective_name(LabelObjective objective);

struct LabelGenConfig {
  RunConfig run;
  FeatureConfig features;
  /// Objective the argmin label minimizes (see LabelObjective).
  LabelObjective objective = LabelObjective::kTotalLatency;
  /// Fraction of the request stream (by request index) simulated under
  /// `base_strategy` before each candidate strategy takes effect — the
  /// fork-at-decision methodology. 0 (default) keeps the legacy cold-start
  /// semantics where every strategy governs the run from time zero.
  double fork_point = 0.0;
  /// Simulate the warm-up prefix once and fork() the device per strategy
  /// instead of re-simulating the prefix for all 42 candidates. Produces
  /// the *same* LabeledSample (labels and per-strategy latencies) as the
  /// cold sweep at the same fork_point; only wall-clock changes.
  bool shared_prefix_fork = false;
  /// Strategy governing the shared warm-up prefix (default: Shared).
  Strategy base_strategy{};
};

struct LabeledSample {
  MixFeatures features;
  std::uint32_t label = 0;  ///< index into the strategy space
  /// Overall latency (avg read + avg write, us) per strategy, aligned with
  /// the space — the raw material of Figures 2 and 6.
  std::vector<double> strategy_total_us;
  /// Objective value per strategy (what the label minimized). Identical to
  /// strategy_total_us under kTotalLatency; worst-tenant slowdown under
  /// kFairness; total SLO violations under kSloViolations.
  std::vector<double> strategy_score;
};

/// Evaluate every strategy on one workload. When `pool` is non-null the
/// per-strategy simulations run in parallel (each on its own device).
LabeledSample label_workload(std::span<const sim::IoRequest> requests,
                             const StrategySpace& space,
                             const LabelGenConfig& config,
                             ThreadPool* pool = nullptr);

struct DatasetGenConfig {
  std::uint32_t tenants = 4;
  std::uint64_t workloads = 200;
  /// Each synthesized mixed workload covers this much arrival time, so
  /// high-intensity samples contain enough requests for queueing to reach
  /// steady state (a fixed request count would shrink the horizon exactly
  /// where contention matters).
  double workload_duration_s = 0.5;
  /// Optional hard cap on the mixed stream length (0 = no cap).
  std::uint64_t requests_per_workload = 0;
  /// Aggregate arrival-rate range sampled per workload; spans the feature
  /// collector's intensity scale.
  double min_rate_rps = 1'200.0;
  double max_rate_rps = 36'000.0;
  /// Per-tenant write fraction bands: read-dominated tenants draw from
  /// [read_lo, read_hi], write-dominated from [write_lo, write_hi].
  double read_band_lo = 0.05, read_band_hi = 0.15;
  double write_band_lo = 0.85, write_band_hi = 0.95;
  std::uint64_t address_space_pages = 32 * 1024;
  /// Per-tenant request-shape ranges. Heterogeneous sizes and
  /// sequentiality are what make channel partitioning pay off (large
  /// sequential readers suffer most from sharing with writers), so the
  /// training distribution must span them like the evaluation traces do.
  double mean_pages_lo = 1.5, mean_pages_hi = 4.0;
  double seq_lo = 0.05, seq_hi = 0.5;
  double zipf_lo = 0.2, zipf_hi = 0.4;
  std::uint64_t seed = 7;
  LabelGenConfig label;
};

struct GeneratedDataset {
  nn::Dataset data;  ///< 9-D feature rows -> strategy-index labels
  std::vector<LabeledSample> samples;
};

/// Synthesize one mixed workload for dataset row `index` (deterministic in
/// (config.seed, index)).
std::vector<sim::IoRequest> synthesize_mix(const DatasetGenConfig& config,
                                           std::uint64_t index);

/// Generate the full dataset; workloads are distributed over the pool and
/// each workload's per-strategy sweep fans out on the same pool (nested
/// parallel_for). Results are merged by index, so the dataset is
/// bit-identical at any pool size.
GeneratedDataset generate_dataset(const StrategySpace& space,
                                  const DatasetGenConfig& config,
                                  ThreadPool& pool);

}  // namespace ssdk::core
