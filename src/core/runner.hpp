// Glue between workloads, strategies and the device: run a mixed request
// stream on a freshly configured SSD and summarize the latencies the paper
// reports.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/strategy.hpp"
#include "sim/metrics.hpp"
#include "sim/request.hpp"
#include "ssd/ssd.hpp"

namespace ssdk::core {

struct RunConfig {
  ssd::SsdOptions ssd;
  /// Paper Section IV.E: static page allocation for read-dominated
  /// tenants, dynamic for write-dominated ones. When false, every tenant
  /// uses static allocation (the traditional FTL default).
  bool hybrid_page_allocation = false;
  /// Fraction of the request stream's arrival span treated as warmup:
  /// requests arriving in that prefix are executed but excluded from the
  /// latency statistics. 0 = measure everything.
  double warmup_fraction = 0.0;
  /// Optional lifecycle tracer (non-owning; must outlive the run). The
  /// device records per-request spans into it; nullptr = telemetry off.
  telemetry::Tracer* tracer = nullptr;
  /// Capacity hint for the device's request table / op slab / event heap.
  /// 0 = derive from the submitted span's size (the common case); set
  /// explicitly when submitting incrementally or replaying a prefix.
  std::size_t reserve_requests = 0;
  /// Audit the device invariants every N handled arrivals (see
  /// Ssd::set_audit_interval). 0 keeps the build's default: disabled in
  /// normal builds, every 4096 arrivals under SSDK_CHECKED. Audits never
  /// change the schedule — a violation throws instead.
  std::uint64_t audit_interval = 0;
};

struct RunResult {
  double avg_read_us = 0.0;
  double avg_write_us = 0.0;
  /// Sum of average read and average write latency (paper Section III.B).
  double total_us = 0.0;
  /// Tail latencies (the paper reports averages only; tails often tell a
  /// sharper story about conflicts).
  double p99_read_us = 0.0;
  double p99_write_us = 0.0;
  std::map<sim::TenantId, sim::TenantMetrics> per_tenant;
  sim::DeviceCounters counters;
  /// Total SLO-target misses across tenants (nonzero only when the run's
  /// scheduler config carries slo_target_us entries).
  std::uint64_t slo_violations = 0;
  /// Fairness block — populated by apply_fairness() from per-tenant
  /// isolated baselines, zero/empty otherwise. Slowdown is this run's
  /// tenant total_us over the tenant's total_us running alone on the
  /// whole device; jain_index is Jain's fairness index over those
  /// slowdowns (1 = perfectly fair).
  std::map<sim::TenantId, double> tenant_slowdown;
  double worst_slowdown = 0.0;
  double jain_index = 0.0;
  /// Replay aborted because a write could not be placed anywhere in the
  /// offending tenant's channel set. The latencies above cover everything
  /// completed up to that point.
  bool device_full = false;
  sim::TenantId device_full_tenant = 0;
  std::string abort_reason;
};

/// Configure an already-constructed SSD for (strategy, tenants, hybrid).
void configure_ssd(ssd::Ssd& device, const Strategy& strategy,
                   std::span<const TenantProfile> profiles,
                   bool hybrid_page_allocation);

/// Run the stream under one strategy on a fresh device.
RunResult run_with_strategy(std::span<const sim::IoRequest> requests,
                            const Strategy& strategy,
                            std::span<const TenantProfile> profiles,
                            const RunConfig& config);

/// Build a fresh device ready to replay `requests`: constructed from the
/// config, configured for `strategy`, warmup window set, full stream
/// submitted — but not yet run. The shared-prefix fork sweep drives the
/// returned device to the switch point once and fork()s it per strategy;
/// run_with_strategy_switch uses the same factory so both paths start from
/// byte-identical devices.
std::unique_ptr<ssd::Ssd> make_run_device(
    std::span<const sim::IoRequest> requests, const Strategy& strategy,
    std::span<const TenantProfile> profiles, const RunConfig& config);

/// Run the stream with `base` governing the first `switch_at` requests and
/// `strategy` taking over from request index `switch_at` onward (the
/// fork-at-decision methodology, executed cold). switch_at = 0 degenerates
/// to run_with_strategy(strategy).
RunResult run_with_strategy_switch(std::span<const sim::IoRequest> requests,
                                   const Strategy& base,
                                   const Strategy& strategy,
                                   std::uint64_t switch_at,
                                   std::span<const TenantProfile> profiles,
                                   const RunConfig& config);

/// Summarize a finished device's metrics.
RunResult summarize(const ssd::Ssd& device);

/// total_us only (avg read + avg write), from the metrics' running sums —
/// same value summarize().total_us reports, without copying any latency
/// samples or computing percentiles. The label sweep's per-strategy score
/// needs nothing else, and it runs once per (workload, strategy) pair.
double summarize_total_us(const ssd::Ssd& device);

/// Degrade a device-full abort gracefully: bump the failure counter, warn
/// once through util/logger with `context` ("runner", "keeper", ...), and
/// return the partial result with device_full/abort_reason populated.
RunResult summarize_device_full(ssd::Ssd& device,
                                const ftl::DeviceFullError& error,
                                std::string_view context);

/// Per-tenant isolated baselines: replay each tenant's own requests alone
/// on a fresh full-width device (Strategy{} = all channels shared, default
/// scheduler) and return tenant -> total_us. Telemetry and scheduler
/// shaping are stripped so the baseline measures the workload, not the
/// policy under test. Tenants whose isolated run aborts or records no
/// samples are omitted.
std::map<sim::TenantId, double> isolated_baselines(
    std::span<const sim::IoRequest> requests,
    std::span<const TenantProfile> profiles, const RunConfig& config);

/// Fill `result`'s fairness block (tenant_slowdown, worst_slowdown,
/// jain_index) from per-tenant isolated baselines. Tenants absent from
/// `baselines` or with a zero baseline are skipped; the internal (GC)
/// tenant never participates.
void apply_fairness(RunResult& result,
                    const std::map<sim::TenantId, double>& baselines);

}  // namespace ssdk::core
