#include "nn/activations.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ssdk::nn {

Activation activation_from_string(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kReLU;
  if (name == "logistic") return Activation::kLogistic;
  if (name == "tanh") return Activation::kTanh;
  throw std::invalid_argument("unknown activation: " + name);
}

std::string to_string(Activation a) {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kReLU: return "relu";
    case Activation::kLogistic: return "logistic";
    case Activation::kTanh: return "tanh";
  }
  throw std::logic_error("unreachable activation");
}

void apply_activation(Activation a, const Matrix& z, Matrix& out) {
  if (&out != &z) out = z;
  switch (a) {
    case Activation::kIdentity:
      break;
    case Activation::kReLU:
      for (auto& v : out.raw()) v = std::max(0.0, v);
      break;
    case Activation::kLogistic:
      for (auto& v : out.raw()) v = 1.0 / (1.0 + std::exp(-v));
      break;
    case Activation::kTanh:
      for (auto& v : out.raw()) v = std::tanh(v);
      break;
  }
}

void activation_derivative_from_output(Activation a, const Matrix& y,
                                       Matrix& out) {
  out = Matrix(y.rows(), y.cols());
  const auto& yin = y.raw();
  auto& o = out.raw();
  switch (a) {
    case Activation::kIdentity:
      std::fill(o.begin(), o.end(), 1.0);
      break;
    case Activation::kReLU:
      for (std::size_t i = 0; i < yin.size(); ++i) {
        o[i] = yin[i] > 0.0 ? 1.0 : 0.0;
      }
      break;
    case Activation::kLogistic:
      for (std::size_t i = 0; i < yin.size(); ++i) {
        o[i] = yin[i] * (1.0 - yin[i]);
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < yin.size(); ++i) {
        o[i] = 1.0 - yin[i] * yin[i];
      }
      break;
  }
}

void softmax_rows(const Matrix& z, Matrix& out) {
  out = Matrix(z.rows(), z.cols());
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const double* in = z.data() + r * z.cols();
    double* o = out.data() + r * z.cols();
    double mx = in[0];
    for (std::size_t c = 1; c < z.cols(); ++c) mx = std::max(mx, in[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < z.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    for (std::size_t c = 0; c < z.cols(); ++c) o[c] /= denom;
  }
}

}  // namespace ssdk::nn
