// k-nearest-neighbors classifier — the memory-hungry baseline the paper
// contrasts the ANN against ("compared to other machine learning
// algorithms such as Bayesian or k-nearest neighbors, ANN does not need
// to save all the training data set, only a small number of parameters",
// Section IV.C). Exact brute-force search; fine at this project's dataset
// sizes and it makes the memory/latency comparison honest.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/tensor.hpp"

namespace ssdk::nn {

class KnnClassifier {
 public:
  /// `k` neighbors vote; ties break toward the smaller class id.
  explicit KnnClassifier(std::size_t k = 5);

  /// Stores the (already scaled) training set. Throws on empty data or
  /// k = 0.
  void fit(const Dataset& train);

  bool fitted() const { return !train_.empty(); }
  std::size_t k() const { return k_; }

  /// Majority vote among the k nearest (squared-Euclidean) neighbors.
  std::uint32_t predict_one(const double* row, std::size_t dim) const;
  std::vector<std::uint32_t> predict(const Matrix& x) const;

  /// Bytes retained after training: the entire dataset — the cost the
  /// paper's ANN avoids.
  std::size_t memory_bytes() const;

 private:
  std::size_t k_;
  Dataset train_;
};

}  // namespace ssdk::nn
