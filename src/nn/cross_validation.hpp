// k-fold cross-validation over Dataset — used to put error bars on the
// Table III accuracy numbers instead of trusting one 7:3 split.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace ssdk::nn {

struct CrossValidationOptions {
  std::size_t folds = 5;
  TrainOptions train;
  /// Shuffle the dataset once before splitting into folds.
  std::uint64_t shuffle_seed = 99;
};

struct CrossValidationResult {
  std::vector<double> fold_accuracy;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
};

/// For each fold: fit a scaler on the training part, train a freshly
/// constructed model (from `make_model`) with a fresh optimizer (from
/// `make_optimizer`), evaluate on the held-out fold.
/// Throws std::invalid_argument when folds < 2 or dataset smaller than
/// the fold count.
CrossValidationResult k_fold_cross_validate(
    const Dataset& data, const CrossValidationOptions& options,
    const std::function<Mlp()>& make_model,
    const std::function<std::unique_ptr<Optimizer>()>& make_optimizer);

}  // namespace ssdk::nn
