// Loss functions. Classification uses softmax + cross-entropy fused so the
// output-layer gradient is simply (softmax(z) - onehot(y)) / batch.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace ssdk::nn {

/// Mean cross-entropy over the batch given raw logits (pre-softmax) and
/// integer class labels. Also emits d(loss)/d(logits) into `dlogits`
/// when non-null.
double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::uint32_t>& labels,
                             Matrix* dlogits);

/// Mean squared error between predictions and targets (regression tests).
/// Emits d(loss)/d(pred) into `dpred` when non-null.
double mean_squared_error(const Matrix& pred, const Matrix& target,
                          Matrix* dpred);

}  // namespace ssdk::nn
