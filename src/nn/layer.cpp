#include "nn/layer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ssdk::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act,
                       Rng& rng)
    : weights_(in, out), bias_(1, out), act_(act),
      grad_w_(in, out), grad_b_(1, out) {
  // He for ReLU (variance 2/in); Xavier for saturating activations.
  const double scale = act == Activation::kReLU
                           ? std::sqrt(2.0 / static_cast<double>(in))
                           : std::sqrt(1.0 / static_cast<double>(in));
  for (auto& w : weights_.raw()) w = rng.normal(0.0, scale);
}

DenseLayer::DenseLayer(Matrix weights, Matrix bias, Activation act)
    : weights_(std::move(weights)), bias_(std::move(bias)), act_(act),
      grad_w_(weights_.rows(), weights_.cols()),
      grad_b_(1, bias_.cols()) {
  if (bias_.rows() != 1 || bias_.cols() != weights_.cols()) {
    throw std::invalid_argument("dense layer: bias must be 1 x out");
  }
}

const Matrix& DenseLayer::forward(const Matrix& input) {
  assert(input.cols() == weights_.rows());
  input_ = input;
  matmul(input_, weights_, output_);
  add_row_broadcast(output_, bias_);
  apply_activation(act_, output_, output_);
  return output_;
}

void DenseLayer::forward_into(const Matrix& input, Matrix& out) const {
  assert(input.cols() == weights_.rows());
  matmul_into(input, weights_, out);
  add_row_broadcast(out, bias_);
  apply_activation(act_, out, out);
}

const Matrix& DenseLayer::backward(const Matrix& grad_out,
                                   bool grad_is_pre_activation) {
  assert(grad_out.rows() == input_.rows());
  assert(grad_out.cols() == weights_.cols());

  const Matrix* dz = &grad_out;
  if (!grad_is_pre_activation) {
    activation_derivative_from_output(act_, output_, deriv_);
    hadamard(grad_out, deriv_, dz_);
    dz = &dz_;
  }

  // dW = x^T dz, db = column sums of dz, dx = dz W^T.
  matmul_at_b(input_, *dz, grad_w_);
  column_sums(*dz, grad_b_);
  matmul_a_bt(*dz, weights_, grad_in_);
  return grad_in_;
}

void DenseLayer::zero_grad() {
  grad_w_.zero();
  grad_b_.zero();
}

}  // namespace ssdk::nn
