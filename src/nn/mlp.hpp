// Multi-layer perceptron classifier.
//
// The paper's strategy learner is a 9 -> 64 -> 42 network: one hidden layer
// with a configurable activation and a linear output layer whose logits feed
// a fused softmax + cross-entropy. This class supports arbitrary depth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ssdk::nn {

/// Caller-owned ping-pong buffers for the inference-only forward pass.
/// Owning the scratch is what makes concurrent inference on one shared
/// (const) model safe: the model's weights are read-only during
/// forward_inference, so threads race only if they share scratch. Give
/// each thread (or each owner-partitioned caller, e.g. a per-device
/// keeper) its own InferenceScratch and the model needs no locking.
struct InferenceScratch {
  Matrix a;
  Matrix b;
};

class Mlp {
 public:
  /// `layer_sizes` = {in, hidden..., out}; hidden layers use `hidden_act`,
  /// the output layer is linear (logits).
  Mlp(const std::vector<std::size_t>& layer_sizes, Activation hidden_act,
      std::uint64_t seed);

  /// For deserialization.
  explicit Mlp(std::vector<DenseLayer> layers);

  std::size_t num_layers() const { return layers_.size(); }
  const DenseLayer& layer(std::size_t i) const { return layers_.at(i); }
  DenseLayer& mutable_layer(std::size_t i) { return layers_.at(i); }

  std::size_t input_size() const { return layers_.front().in_features(); }
  std::size_t output_size() const { return layers_.back().out_features(); }

  /// Forward pass to raw logits (batch x classes). Stores per-layer
  /// caches for a subsequent backward() — the training path.
  const Matrix& forward(const Matrix& input);

  /// Inference-only forward to raw logits: ping-pongs between the two
  /// scratch matrices, touching no layer caches and allocating nothing
  /// after the first call at a given batch size. Logits are bit-identical
  /// to forward() (same kernels, same order), and any batch partitioning
  /// yields the same rows because rows are independent. The const
  /// overload writes only into `scratch`, so one model may serve
  /// concurrent callers as long as each brings its own scratch.
  const Matrix& forward_inference(const Matrix& input,
                                  InferenceScratch& scratch) const;
  /// Convenience overload using the Mlp's internal scratch — single-owner
  /// use only (training/eval loops); not safe on a shared model.
  const Matrix& forward_inference(const Matrix& input);

  /// Backprop of the fused-softmax gradient (d loss / d logits).
  void backward(const Matrix& dlogits);

  void zero_grad();

  /// Mean cross-entropy loss on a batch plus gradient accumulation.
  double train_loss_and_grad(const Matrix& input,
                             const std::vector<std::uint32_t>& labels);

  /// Argmax class per row.
  std::vector<std::uint32_t> predict(const Matrix& input,
                                     InferenceScratch& scratch) const;
  std::vector<std::uint32_t> predict(const Matrix& input);

  /// Class probabilities (softmax of logits).
  Matrix predict_proba(const Matrix& input, InferenceScratch& scratch) const;
  Matrix predict_proba(const Matrix& input);

  /// Total parameters; the paper's storage-overhead estimate is 16 bytes
  /// per neuron, ours is exact: 8 bytes per parameter.
  std::size_t parameter_count() const;

  /// Float multiplications per forward pass of one sample
  /// (sum over layers of in*out), matching the paper's overhead formula.
  std::size_t multiplications_per_inference() const;

 private:
  std::vector<DenseLayer> layers_;
  Matrix logits_grad_;             // training scratch
  InferenceScratch infer_scratch_; // convenience-overload inference scratch
};

}  // namespace ssdk::nn
