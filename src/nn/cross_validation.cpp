#include "nn/cross_validation.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/metrics.hpp"
#include "nn/scaler.hpp"
#include "util/rng.hpp"

namespace ssdk::nn {

CrossValidationResult k_fold_cross_validate(
    const Dataset& data, const CrossValidationOptions& options,
    const std::function<Mlp()>& make_model,
    const std::function<std::unique_ptr<Optimizer>()>& make_optimizer) {
  if (options.folds < 2) {
    throw std::invalid_argument("cross-validate: need >= 2 folds");
  }
  if (data.size() < options.folds) {
    throw std::invalid_argument("cross-validate: dataset smaller than fold "
                                "count");
  }

  Dataset shuffled = data;
  Rng rng(options.shuffle_seed);
  shuffled.shuffle(rng);

  const std::size_t n = shuffled.size();
  CrossValidationResult result;
  result.fold_accuracy.reserve(options.folds);

  for (std::size_t fold = 0; fold < options.folds; ++fold) {
    const std::size_t lo = fold * n / options.folds;
    const std::size_t hi = (fold + 1) * n / options.folds;

    // Assemble train = everything outside [lo, hi), test = [lo, hi).
    auto [test_x, test_y] = shuffled.batch(lo, hi);
    Matrix train_x(n - (hi - lo), shuffled.feature_dim());
    std::vector<std::uint32_t> train_y;
    train_y.reserve(n - (hi - lo));
    std::size_t row = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= lo && i < hi) continue;
      for (std::size_t c = 0; c < shuffled.feature_dim(); ++c) {
        train_x(row, c) = shuffled.features()(i, c);
      }
      train_y.push_back(shuffled.labels()[i]);
      ++row;
    }

    StandardScaler scaler;
    scaler.fit(train_x);
    Dataset train(scaler.transform(train_x), std::move(train_y));
    Dataset test(scaler.transform(test_x), std::move(test_y));

    Mlp model = make_model();
    auto optimizer = make_optimizer();
    train_classifier(model, *optimizer, train, test, options.train);
    const auto preds = model.predict(test.features());
    result.fold_accuracy.push_back(accuracy(preds, test.labels()));
  }

  double sum = 0.0;
  for (const double a : result.fold_accuracy) sum += a;
  result.mean_accuracy = sum / static_cast<double>(options.folds);
  double var = 0.0;
  for (const double a : result.fold_accuracy) {
    var += (a - result.mean_accuracy) * (a - result.mean_accuracy);
  }
  result.stddev_accuracy =
      std::sqrt(var / static_cast<double>(options.folds));
  return result;
}

}  // namespace ssdk::nn
