#include "nn/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ssdk::nn {

Dataset::Dataset(Matrix features, std::vector<std::uint32_t> labels)
    : features_(std::move(features)), labels_(std::move(labels)) {
  if (features_.rows() != labels_.size()) {
    throw std::invalid_argument("dataset: rows != labels");
  }
}

void Dataset::add(const std::vector<double>& row, std::uint32_t label) {
  if (features_.empty()) {
    features_ = Matrix(0, row.size());
  }
  if (row.size() != features_.cols()) {
    throw std::invalid_argument("dataset: inconsistent feature dimension");
  }
  Matrix grown(features_.rows() + 1, features_.cols());
  std::copy(features_.raw().begin(), features_.raw().end(),
            grown.raw().begin());
  std::copy(row.begin(), row.end(),
            grown.raw().begin() +
                static_cast<std::ptrdiff_t>(features_.size()));
  features_ = std::move(grown);
  labels_.push_back(label);
}

std::uint32_t Dataset::num_classes() const {
  if (labels_.empty()) return 0;
  return *std::max_element(labels_.begin(), labels_.end()) + 1;
}

void Dataset::shuffle(Rng& rng) {
  std::vector<std::size_t> perm(size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);

  Matrix shuffled(features_.rows(), features_.cols());
  std::vector<std::uint32_t> shuffled_labels(labels_.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const std::size_t src = perm[i];
    std::copy_n(features_.data() + src * features_.cols(), features_.cols(),
                shuffled.data() + i * features_.cols());
    shuffled_labels[i] = labels_[src];
  }
  features_ = std::move(shuffled);
  labels_ = std::move(shuffled_labels);
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction) const {
  assert(train_fraction >= 0.0 && train_fraction <= 1.0);
  const auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(size()));
  auto [train_x, train_y] = batch(0, n_train);
  auto [test_x, test_y] = batch(n_train, size());
  return {Dataset(std::move(train_x), std::move(train_y)),
          Dataset(std::move(test_x), std::move(test_y))};
}

std::pair<Matrix, std::vector<std::uint32_t>> Dataset::batch(
    std::size_t begin, std::size_t end) const {
  assert(begin <= end && end <= size());
  Matrix x(end - begin, features_.cols());
  std::copy_n(features_.data() + begin * features_.cols(),
              (end - begin) * features_.cols(), x.data());
  std::vector<std::uint32_t> y(labels_.begin() +
                                   static_cast<std::ptrdiff_t>(begin),
                               labels_.begin() +
                                   static_cast<std::ptrdiff_t>(end));
  return {std::move(x), std::move(y)};
}

}  // namespace ssdk::nn
