// Gaussian Naive Bayes classifier — the "Bayesian" baseline the paper
// names alongside k-NN (Section IV.C). Per-class feature means/variances
// plus log priors; prediction maximizes the log posterior under the
// feature-independence assumption.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/tensor.hpp"

namespace ssdk::nn {

class NaiveBayesClassifier {
 public:
  /// Variance floor guards against zero-variance features in small
  /// classes.
  explicit NaiveBayesClassifier(double var_floor = 1e-6);

  /// Estimates per-class Gaussians. Classes absent from the training set
  /// get a -inf prior (never predicted).
  void fit(const Dataset& train);

  bool fitted() const { return num_classes_ > 0; }
  std::uint32_t num_classes() const { return num_classes_; }

  std::uint32_t predict_one(const double* row, std::size_t dim) const;
  std::vector<std::uint32_t> predict(const Matrix& x) const;

  /// Bytes of retained model state: 2 doubles per (class, feature) plus
  /// one prior per class — independent of the dataset size, like the ANN.
  std::size_t memory_bytes() const;

 private:
  double var_floor_;
  std::uint32_t num_classes_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> log_prior_;  // per class; -inf when unseen
  Matrix mean_;                    // classes x features
  Matrix variance_;                // classes x features
};

}  // namespace ssdk::nn
