// Fully-connected layer: y = act(x W + b).
//
// Weights are (in x out), inputs are batches of row vectors (batch x in).
// The layer caches its input and activated output during forward so that
// backward can compute gradients without re-running the network.
#pragma once

#include <cstddef>

#include "nn/activations.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ssdk::nn {

class DenseLayer {
 public:
  /// He initialization for ReLU, Xavier/Glorot otherwise; biases zero.
  DenseLayer(std::size_t in, std::size_t out, Activation act, Rng& rng);

  /// Construct with explicit parameters (deserialization, tests).
  DenseLayer(Matrix weights, Matrix bias, Activation act);

  std::size_t in_features() const { return weights_.rows(); }
  std::size_t out_features() const { return weights_.cols(); }
  Activation activation() const { return act_; }

  const Matrix& weights() const { return weights_; }
  const Matrix& bias() const { return bias_; }
  Matrix& mutable_weights() { return weights_; }
  Matrix& mutable_bias() { return bias_; }

  /// Forward pass; stores input and output for the subsequent backward.
  /// Returns the activated output (batch x out).
  const Matrix& forward(const Matrix& input);

  /// Inference-only forward into caller-provided storage: same matmul ->
  /// bias -> activation sequence as forward(), so the output is
  /// bit-identical, but the training caches (input_/output_) are left
  /// untouched and nothing is copied or allocated once `out` has the
  /// right shape. Interleaving with training on the same layer is safe.
  void forward_into(const Matrix& input, Matrix& out) const;

  /// Backward pass: given d(loss)/d(output activation), accumulates
  /// d(loss)/dW into grad_w_ and d(loss)/db into grad_b_, and returns
  /// d(loss)/d(input) for the upstream layer.
  ///
  /// When `grad_is_pre_activation` is true, `grad_out` is already the
  /// gradient w.r.t. the pre-activation z (the fused softmax+CE case) and
  /// the activation derivative is skipped.
  const Matrix& backward(const Matrix& grad_out,
                         bool grad_is_pre_activation = false);

  const Matrix& grad_weights() const { return grad_w_; }
  const Matrix& grad_bias() const { return grad_b_; }
  Matrix& mutable_grad_weights() { return grad_w_; }
  Matrix& mutable_grad_bias() { return grad_b_; }

  void zero_grad();

  /// Parameter count (weights + biases), for the paper's overhead estimate.
  std::size_t parameter_count() const {
    return weights_.size() + bias_.size();
  }

 private:
  Matrix weights_;  // in x out
  Matrix bias_;     // 1 x out
  Activation act_;

  // Forward caches.
  Matrix input_;   // batch x in
  Matrix output_;  // batch x out (activated)

  // Gradients.
  Matrix grad_w_;
  Matrix grad_b_;
  Matrix grad_in_;

  // Scratch.
  Matrix dz_;
  Matrix deriv_;
};

}  // namespace ssdk::nn
