// Classification metrics: accuracy, top-k accuracy, confusion matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace ssdk::nn {

/// Fraction of predictions equal to truth. Empty input -> 0.
double accuracy(const std::vector<std::uint32_t>& predicted,
                const std::vector<std::uint32_t>& truth);

/// Fraction of rows where the true class is among the k largest logits.
double top_k_accuracy(const Matrix& logits,
                      const std::vector<std::uint32_t>& truth, std::size_t k);

/// confusion(i, j) = count of samples with truth i predicted as j.
Matrix confusion_matrix(const std::vector<std::uint32_t>& predicted,
                        const std::vector<std::uint32_t>& truth,
                        std::uint32_t num_classes);

/// Macro-averaged F1 over classes that appear in `truth`.
double macro_f1(const std::vector<std::uint32_t>& predicted,
                const std::vector<std::uint32_t>& truth,
                std::uint32_t num_classes);

}  // namespace ssdk::nn
