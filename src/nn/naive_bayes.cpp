#include "nn/naive_bayes.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace ssdk::nn {

NaiveBayesClassifier::NaiveBayesClassifier(double var_floor)
    : var_floor_(var_floor) {
  if (var_floor <= 0.0) {
    throw std::invalid_argument("naive bayes: variance floor must be > 0");
  }
}

void NaiveBayesClassifier::fit(const Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("naive bayes: empty training set");
  }
  num_classes_ = train.num_classes();
  dim_ = train.feature_dim();
  mean_ = Matrix(num_classes_, dim_);
  variance_ = Matrix(num_classes_, dim_);
  log_prior_.assign(num_classes_,
                    -std::numeric_limits<double>::infinity());

  std::vector<std::size_t> counts(num_classes_, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    const std::uint32_t c = train.labels()[i];
    ++counts[c];
    for (std::size_t f = 0; f < dim_; ++f) {
      mean_(c, f) += train.features()(i, f);
    }
  }
  for (std::uint32_t c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t f = 0; f < dim_; ++f) {
      mean_(c, f) /= static_cast<double>(counts[c]);
    }
    log_prior_[c] = std::log(static_cast<double>(counts[c]) /
                             static_cast<double>(train.size()));
  }
  for (std::size_t i = 0; i < train.size(); ++i) {
    const std::uint32_t c = train.labels()[i];
    for (std::size_t f = 0; f < dim_; ++f) {
      const double d = train.features()(i, f) - mean_(c, f);
      variance_(c, f) += d * d;
    }
  }
  for (std::uint32_t c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t f = 0; f < dim_; ++f) {
      variance_(c, f) = std::max(
          variance_(c, f) / static_cast<double>(counts[c]), var_floor_);
    }
  }
}

std::uint32_t NaiveBayesClassifier::predict_one(const double* row,
                                                std::size_t dim) const {
  if (!fitted()) throw std::logic_error("naive bayes: predict before fit");
  assert(dim == dim_);
  double best_score = -std::numeric_limits<double>::infinity();
  std::uint32_t best = 0;
  for (std::uint32_t c = 0; c < num_classes_; ++c) {
    if (std::isinf(log_prior_[c])) continue;
    double score = log_prior_[c];
    for (std::size_t f = 0; f < dim_; ++f) {
      const double var = variance_(c, f);
      const double d = row[f] - mean_(c, f);
      score += -0.5 * std::log(2.0 * std::numbers::pi * var) -
               d * d / (2.0 * var);
    }
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

std::vector<std::uint32_t> NaiveBayesClassifier::predict(
    const Matrix& x) const {
  std::vector<std::uint32_t> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = predict_one(x.data() + r * x.cols(), x.cols());
  }
  return out;
}

std::size_t NaiveBayesClassifier::memory_bytes() const {
  return (mean_.size() + variance_.size() + log_prior_.size()) *
         sizeof(double);
}

}  // namespace ssdk::nn
