// First-order optimizers: SGD, SGD with momentum, AdaGrad, RMSProp, Adam.
//
// The paper evaluates SGD (lr 0.2), SGD-momentum (lr 0.2, momentum 0.9) and
// Adam (lr 0.02) with ReLU / logistic activations; AdaGrad and RMSProp are
// included because the paper describes Adam as their combination and the
// ablation bench compares all five.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/tensor.hpp"

namespace ssdk::nn {

/// Applies an update to one parameter matrix given its gradient. Optimizers
/// keep per-parameter state (momentum/moment estimates) indexed by slot.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Update all parameters of `model` from its accumulated gradients.
  void step(Mlp& model);

  /// L2 regularization strength: before each update, lambda * W is added
  /// to the weight gradients (biases are exempt, the usual convention).
  /// 0 (default) disables it.
  void set_weight_decay(double lambda);
  double weight_decay() const { return weight_decay_; }

  virtual std::string name() const = 0;

 protected:
  /// Update a single parameter matrix in place. `slot` uniquely identifies
  /// the matrix across calls so per-parameter state can be kept.
  virtual void update(std::size_t slot, Matrix& param, const Matrix& grad) = 0;

  /// Fetch (lazily creating) a state matrix shaped like `param`.
  Matrix& state(std::size_t bank, std::size_t slot, const Matrix& param);

 private:
  // state_[bank][slot]; banks let optimizers keep several moments.
  std::vector<std::vector<Matrix>> state_;
  double weight_decay_ = 0.0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr) : lr_(lr) {}
  std::string name() const override { return "sgd"; }

 protected:
  void update(std::size_t slot, Matrix& param, const Matrix& grad) override;

 private:
  double lr_;
};

class SgdMomentum final : public Optimizer {
 public:
  SgdMomentum(double lr, double momentum) : lr_(lr), momentum_(momentum) {}
  std::string name() const override { return "sgd-momentum"; }

 protected:
  void update(std::size_t slot, Matrix& param, const Matrix& grad) override;

 private:
  double lr_;
  double momentum_;
};

class AdaGrad final : public Optimizer {
 public:
  explicit AdaGrad(double lr, double eps = 1e-8) : lr_(lr), eps_(eps) {}
  std::string name() const override { return "adagrad"; }

 protected:
  void update(std::size_t slot, Matrix& param, const Matrix& grad) override;

 private:
  double lr_;
  double eps_;
};

class RmsProp final : public Optimizer {
 public:
  RmsProp(double lr, double decay = 0.9, double eps = 1e-8)
      : lr_(lr), decay_(decay), eps_(eps) {}
  std::string name() const override { return "rmsprop"; }

 protected:
  void update(std::size_t slot, Matrix& param, const Matrix& grad) override;

 private:
  double lr_;
  double decay_;
  double eps_;
};

class Adam final : public Optimizer {
 public:
  Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
       double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  std::string name() const override { return "adam"; }

 protected:
  void update(std::size_t slot, Matrix& param, const Matrix& grad) override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::vector<std::uint64_t> t_;  // per-slot step counts (bias correction)
};

/// Factory from a name ("sgd", "sgd-momentum", "adagrad", "rmsprop",
/// "adam") with the paper's hyperparameters as defaults.
std::unique_ptr<Optimizer> make_optimizer(const std::string& name);

}  // namespace ssdk::nn
