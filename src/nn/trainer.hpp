// Mini-batch training loop with per-iteration history — produces exactly the
// series the paper plots in Figure 4 (training loss, test accuracy) and the
// Table III summary (final loss, final accuracy, wall-clock training time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/scaler.hpp"
#include "util/rng.hpp"

namespace ssdk::nn {

struct TrainOptions {
  std::size_t max_iterations = 200;  ///< epochs (paper's x-axis)
  std::size_t batch_size = 64;
  bool shuffle_each_epoch = true;
  std::uint64_t shuffle_seed = 42;
  /// Evaluate test accuracy every `eval_every` epochs (1 = every epoch).
  std::size_t eval_every = 1;
};

struct TrainHistory {
  std::vector<double> train_loss;     ///< one entry per epoch
  std::vector<double> test_accuracy;  ///< one entry per evaluated epoch
  double final_loss = 0.0;
  double final_accuracy = 0.0;
  double wall_time_ms = 0.0;
  std::string optimizer_name;
};

/// Trains `model` on `train`, evaluating on `test`. Features must already
/// be scaled consistently across the two splits.
TrainHistory train_classifier(Mlp& model, Optimizer& opt,
                              const Dataset& train, const Dataset& test,
                              const TrainOptions& options);

/// Mean CE loss and accuracy on a dataset without touching gradients.
std::pair<double, double> evaluate(Mlp& model, const Dataset& data);

}  // namespace ssdk::nn
