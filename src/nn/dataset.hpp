// Labeled dataset container: feature rows + integer class labels, with the
// shuffling / splitting / batching operations the trainer needs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ssdk::nn {

class Dataset {
 public:
  Dataset() = default;
  Dataset(Matrix features, std::vector<std::uint32_t> labels);

  std::size_t size() const { return labels_.size(); }
  std::size_t feature_dim() const { return features_.cols(); }
  bool empty() const { return labels_.empty(); }

  const Matrix& features() const { return features_; }
  const std::vector<std::uint32_t>& labels() const { return labels_; }

  void add(const std::vector<double>& row, std::uint32_t label);

  /// Number of distinct label values assuming labels are dense in
  /// [0, max]; returns max label + 1 (0 for empty).
  std::uint32_t num_classes() const;

  /// Deterministic in-place shuffle.
  void shuffle(Rng& rng);

  /// Split into (train, test) with `train_fraction` of rows in train.
  /// The paper uses 7:3. Rows keep their current (e.g. shuffled) order.
  std::pair<Dataset, Dataset> split(double train_fraction) const;

  /// Copy rows [begin, end) into a batch (features + labels).
  std::pair<Matrix, std::vector<std::uint32_t>> batch(std::size_t begin,
                                                      std::size_t end) const;

 private:
  Matrix features_;  // n x d
  std::vector<std::uint32_t> labels_;
};

}  // namespace ssdk::nn
