// Per-feature standardization (zero mean, unit variance), the usual
// preprocessing before MLP training ("Data preprocessing()" in the paper's
// Algorithm 1). Fit on the training set, applied to both splits.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace ssdk::nn {

class StandardScaler {
 public:
  /// Learn per-column mean and stddev. Columns with zero variance get
  /// stddev 1 so they pass through unchanged (minus centering).
  void fit(const Matrix& x);

  /// (x - mean) / stddev, column-wise. Requires fit() first.
  Matrix transform(const Matrix& x) const;

  Matrix fit_transform(const Matrix& x);

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

  /// For serialization alongside a trained model.
  void set_parameters(std::vector<double> mean, std::vector<double> stddev);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace ssdk::nn
