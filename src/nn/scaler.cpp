#include "nn/scaler.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ssdk::nn {

void StandardScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("scaler: empty matrix");
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  const auto n = static_cast<double>(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x(r, c);
  }
  for (auto& m : mean_) m /= n;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      const double dlt = x(r, c) - mean_[c];
      stddev_[c] += dlt * dlt;
    }
  }
  for (auto& s : stddev_) {
    s = std::sqrt(s / n);
    if (s < 1e-12) s = 1.0;  // constant feature: avoid division by zero
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("scaler: transform before fit");
  assert(x.cols() == mean_.size());
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - mean_[c]) / stddev_[c];
    }
  }
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

void StandardScaler::set_parameters(std::vector<double> mean,
                                    std::vector<double> stddev) {
  if (mean.size() != stddev.size()) {
    throw std::invalid_argument("scaler: mean/stddev size mismatch");
  }
  mean_ = std::move(mean);
  stddev_ = std::move(stddev);
}

}  // namespace ssdk::nn
