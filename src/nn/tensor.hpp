// Dense row-major matrix for the neural-network substrate.
//
// Sized for this project's models (9 -> 64 -> 42): a straightforward
// cache-friendly matmul with the k-loop hoisted is all that is required.
// Doubles throughout; the paper's model is tiny so precision is cheap.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace ssdk::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  void fill(double v);
  void zero() { fill(0.0); }

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// this += s * other (axpy), the optimizer's workhorse.
  void axpy(double s, const Matrix& other);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n). `out` is resized.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b, reusing out's storage when the shape already matches (the
/// inference hot path allocates nothing after warm-up). Batch rows are
/// processed in blocks of four so each row of `b` streams from cache once
/// per block; per-row accumulation order is unchanged, so results are
/// bit-identical to matmul(). `out` must not alias `a` or `b`.
void matmul_into(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n).
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n).
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// Add row vector `bias` (1 x n) to every row of `m` (r x n).
void add_row_broadcast(Matrix& m, const Matrix& bias);

/// out(0, j) = sum over rows of m(:, j). `out` is resized to 1 x n.
void column_sums(const Matrix& m, Matrix& out);

/// Element-wise product: out = a .* b (shapes must match; out resized).
void hadamard(const Matrix& a, const Matrix& b, Matrix& out);

/// Frobenius norm (used by gradient-check tests).
double frobenius_norm(const Matrix& m);

}  // namespace ssdk::nn
