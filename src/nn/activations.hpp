// Activation functions for the MLP. The paper compares Adam with ReLU and
// with logistic (sigmoid) activations; tanh and identity round out the set
// for tests and baselines. Softmax lives here too but is always fused with
// cross-entropy in the loss (see loss.hpp) for the stable gradient.
#pragma once

#include <string>

#include "nn/tensor.hpp"

namespace ssdk::nn {

enum class Activation { kIdentity, kReLU, kLogistic, kTanh };

/// Parse/print for model serialization and CLI flags.
Activation activation_from_string(const std::string& name);
std::string to_string(Activation a);

/// out = f(z), element-wise. `out` may alias `z`.
void apply_activation(Activation a, const Matrix& z, Matrix& out);

/// out = f'(z) expressed in terms of the *activated* value y = f(z).
/// (All supported activations have derivatives computable from y alone:
/// ReLU' = [y > 0], logistic' = y(1-y), tanh' = 1-y^2, identity' = 1.)
void activation_derivative_from_output(Activation a, const Matrix& y,
                                       Matrix& out);

/// Row-wise numerically-stable softmax: out(r, :) = softmax(z(r, :)).
void softmax_rows(const Matrix& z, Matrix& out);

}  // namespace ssdk::nn
