#include "nn/knn.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace ssdk::nn {

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("knn: k must be positive");
}

void KnnClassifier::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("knn: empty training set");
  train_ = train;
}

std::uint32_t KnnClassifier::predict_one(const double* row,
                                         std::size_t dim) const {
  if (!fitted()) throw std::logic_error("knn: predict before fit");
  assert(dim == train_.feature_dim());

  const std::size_t n = train_.size();
  const std::size_t k = std::min(k_, n);

  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, std::uint32_t>> dist;
  dist.reserve(n);
  const Matrix& f = train_.features();
  for (std::size_t i = 0; i < n; ++i) {
    const double* t = f.data() + i * dim;
    double d2 = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = row[c] - t[c];
      d2 += d * d;
    }
    dist.emplace_back(d2, train_.labels()[i]);
  }
  std::nth_element(dist.begin(),
                   dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());

  std::map<std::uint32_t, std::size_t> votes;
  for (std::size_t i = 0; i < k; ++i) ++votes[dist[i].second];
  std::uint32_t best = votes.begin()->first;
  std::size_t best_count = votes.begin()->second;
  for (const auto& [cls, count] : votes) {
    if (count > best_count) {
      best = cls;
      best_count = count;
    }
  }
  return best;
}

std::vector<std::uint32_t> KnnClassifier::predict(const Matrix& x) const {
  std::vector<std::uint32_t> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = predict_one(x.data() + r * x.cols(), x.cols());
  }
  return out;
}

std::size_t KnnClassifier::memory_bytes() const {
  return train_.features().size() * sizeof(double) +
         train_.labels().size() * sizeof(std::uint32_t);
}

}  // namespace ssdk::nn
