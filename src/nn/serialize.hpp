// Text-format model (de)serialization: the paper deploys the trained
// network's parameters into the SSD's channel allocator ("the host trains
// and sends the parameters to the FTL"); this is that wire format.
//
// Format (line-oriented, hexfloat values for lossless round-trips):
//   ssdkeeper-mlp v1
//   layers <n>
//   layer <in> <out> <activation>
//   w <in*out hexfloats...>
//   b <out hexfloats...>
//   ... repeated per layer ...
//   scaler <dim> (optional)
//   mean <hexfloats...>
//   stddev <hexfloats...>
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "nn/mlp.hpp"
#include "nn/scaler.hpp"

namespace ssdk::nn {

void save_model(std::ostream& os, const Mlp& model,
                const StandardScaler* scaler = nullptr);
void save_model_file(const std::string& path, const Mlp& model,
                     const StandardScaler* scaler = nullptr);

struct LoadedModel {
  Mlp model;
  std::optional<StandardScaler> scaler;
};

/// Throws std::runtime_error on malformed input.
LoadedModel load_model(std::istream& is);
LoadedModel load_model_file(const std::string& path);

}  // namespace ssdk::nn
