#include "nn/optimizer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ssdk::nn {

void Optimizer::step(Mlp& model) {
  std::size_t slot = 0;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    auto& layer = model.mutable_layer(i);
    if (weight_decay_ > 0.0) {
      // L2 penalty on weights only: grad_W += lambda * W.
      layer.mutable_grad_weights().axpy(weight_decay_, layer.weights());
    }
    update(slot++, layer.mutable_weights(), layer.grad_weights());
    update(slot++, layer.mutable_bias(), layer.grad_bias());
  }
}

void Optimizer::set_weight_decay(double lambda) {
  if (lambda < 0.0) {
    throw std::invalid_argument("optimizer: negative weight decay");
  }
  weight_decay_ = lambda;
}

Matrix& Optimizer::state(std::size_t bank, std::size_t slot,
                         const Matrix& param) {
  if (state_.size() <= bank) state_.resize(bank + 1);
  auto& bank_vec = state_[bank];
  if (bank_vec.size() <= slot) bank_vec.resize(slot + 1);
  auto& m = bank_vec[slot];
  if (!m.same_shape(param)) m = Matrix(param.rows(), param.cols());
  return m;
}

void Sgd::update(std::size_t /*slot*/, Matrix& param, const Matrix& grad) {
  param.axpy(-lr_, grad);
}

void SgdMomentum::update(std::size_t slot, Matrix& param,
                         const Matrix& grad) {
  Matrix& v = state(0, slot, param);
  // v = momentum * v - lr * grad; param += v.
  v *= momentum_;
  v.axpy(-lr_, grad);
  param += v;
}

void AdaGrad::update(std::size_t slot, Matrix& param, const Matrix& grad) {
  Matrix& g2 = state(0, slot, param);
  for (std::size_t i = 0; i < param.size(); ++i) {
    const double g = grad.raw()[i];
    g2.raw()[i] += g * g;
    param.raw()[i] -= lr_ * g / (std::sqrt(g2.raw()[i]) + eps_);
  }
}

void RmsProp::update(std::size_t slot, Matrix& param, const Matrix& grad) {
  Matrix& g2 = state(0, slot, param);
  for (std::size_t i = 0; i < param.size(); ++i) {
    const double g = grad.raw()[i];
    g2.raw()[i] = decay_ * g2.raw()[i] + (1.0 - decay_) * g * g;
    param.raw()[i] -= lr_ * g / (std::sqrt(g2.raw()[i]) + eps_);
  }
}

void Adam::update(std::size_t slot, Matrix& param, const Matrix& grad) {
  Matrix& m = state(0, slot, param);
  Matrix& v = state(1, slot, param);
  if (t_.size() <= slot) t_.resize(slot + 1, 0);
  const auto t = static_cast<double>(++t_[slot]);
  const double bc1 = 1.0 - std::pow(beta1_, t);
  const double bc2 = 1.0 - std::pow(beta2_, t);
  for (std::size_t i = 0; i < param.size(); ++i) {
    const double g = grad.raw()[i];
    m.raw()[i] = beta1_ * m.raw()[i] + (1.0 - beta1_) * g;
    v.raw()[i] = beta2_ * v.raw()[i] + (1.0 - beta2_) * g * g;
    const double mhat = m.raw()[i] / bc1;
    const double vhat = v.raw()[i] / bc2;
    param.raw()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name) {
  // Defaults follow the paper (Section V.B): SGD lr 0.2, momentum 0.9,
  // Adam lr 0.02.
  if (name == "sgd") return std::make_unique<Sgd>(0.2);
  if (name == "sgd-momentum") return std::make_unique<SgdMomentum>(0.2, 0.9);
  if (name == "adagrad") return std::make_unique<AdaGrad>(0.02);
  if (name == "rmsprop") return std::make_unique<RmsProp>(0.02);
  if (name == "adam") return std::make_unique<Adam>(0.02);
  throw std::invalid_argument("unknown optimizer: " + name);
}

}  // namespace ssdk::nn
