#include "nn/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ssdk::nn {

namespace {
constexpr const char* kMagic = "ssdkeeper-mlp v1";

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("model load: " + what);
}

void write_values(std::ostream& os, const char* tag,
                  const std::vector<double>& values) {
  os << tag;
  os << std::hexfloat;
  for (double v : values) os << ' ' << v;
  os << std::defaultfloat << '\n';
}

std::vector<double> read_values(std::istream& is, const std::string& tag,
                                std::size_t expected) {
  std::string line;
  if (!std::getline(is, line)) malformed("unexpected EOF before " + tag);
  std::istringstream ls(line);
  std::string got;
  ls >> got;
  if (got != tag) malformed("expected '" + tag + "', got '" + got + "'");
  std::vector<double> values;
  values.reserve(expected);
  std::string tok;
  while (ls >> tok) {
    // std::istream >> double does not reliably parse hexfloat; use strtod.
    values.push_back(std::strtod(tok.c_str(), nullptr));
  }
  if (values.size() != expected) {
    malformed(tag + ": expected " + std::to_string(expected) + " values, got " +
              std::to_string(values.size()));
  }
  return values;
}
}  // namespace

void save_model(std::ostream& os, const Mlp& model,
                const StandardScaler* scaler) {
  os << kMagic << '\n';
  os << "layers " << model.num_layers() << '\n';
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const DenseLayer& layer = model.layer(i);
    os << "layer " << layer.in_features() << ' ' << layer.out_features()
       << ' ' << to_string(layer.activation()) << '\n';
    write_values(os, "w", layer.weights().raw());
    write_values(os, "b", layer.bias().raw());
  }
  if (scaler != nullptr && scaler->fitted()) {
    os << "scaler " << scaler->mean().size() << '\n';
    write_values(os, "mean", scaler->mean());
    write_values(os, "stddev", scaler->stddev());
  }
}

void save_model_file(const std::string& path, const Mlp& model,
                     const StandardScaler* scaler) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_model(out, model, scaler);
}

LoadedModel load_model(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) malformed("bad magic");

  std::size_t n_layers = 0;
  {
    if (!std::getline(is, line)) malformed("missing layer count");
    std::istringstream ls(line);
    std::string tag;
    ls >> tag >> n_layers;
    if (tag != "layers" || n_layers == 0) malformed("bad layer count line");
  }

  std::vector<DenseLayer> layers;
  layers.reserve(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i) {
    if (!std::getline(is, line)) malformed("missing layer header");
    std::istringstream ls(line);
    std::string tag, act_name;
    std::size_t in = 0, out = 0;
    ls >> tag >> in >> out >> act_name;
    if (tag != "layer" || in == 0 || out == 0) malformed("bad layer header");
    const Activation act = activation_from_string(act_name);

    const auto w_vals = read_values(is, "w", in * out);
    const auto b_vals = read_values(is, "b", out);
    Matrix w(in, out);
    w.raw() = w_vals;
    Matrix b(1, out);
    b.raw() = b_vals;
    layers.emplace_back(std::move(w), std::move(b), act);
  }

  LoadedModel loaded{Mlp(std::move(layers)), std::nullopt};

  // Optional scaler block.
  if (std::getline(is, line) && !line.empty()) {
    std::istringstream ls(line);
    std::string tag;
    std::size_t dim = 0;
    ls >> tag >> dim;
    if (tag != "scaler" || dim == 0) malformed("bad scaler header");
    auto mean = read_values(is, "mean", dim);
    auto stddev = read_values(is, "stddev", dim);
    StandardScaler scaler;
    scaler.set_parameters(std::move(mean), std::move(stddev));
    loaded.scaler = std::move(scaler);
  }
  return loaded;
}

LoadedModel load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load_model(in);
}

}  // namespace ssdk::nn
