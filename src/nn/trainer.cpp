#include "nn/trainer.hpp"

#include <algorithm>
#include <chrono>

#include "nn/loss.hpp"
#include "nn/metrics.hpp"

namespace ssdk::nn {

TrainHistory train_classifier(Mlp& model, Optimizer& opt,
                              const Dataset& train, const Dataset& test,
                              const TrainOptions& options) {
  TrainHistory history;
  history.optimizer_name = opt.name();
  if (train.empty()) return history;

  Dataset shuffled = train;
  Rng rng(options.shuffle_seed);

  // ssdk-lint: allow(wall-clock): measures training wall time for
  // TrainHistory reporting; never feeds the simulation schedule.
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t epoch = 0; epoch < options.max_iterations; ++epoch) {
    if (options.shuffle_each_epoch) shuffled.shuffle(rng);

    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < shuffled.size();
         begin += options.batch_size) {
      const std::size_t end =
          std::min(begin + options.batch_size, shuffled.size());
      auto [x, y] = shuffled.batch(begin, end);
      model.zero_grad();
      epoch_loss += model.train_loss_and_grad(x, y);
      opt.step(model);
      ++batches;
    }
    history.train_loss.push_back(epoch_loss /
                                 static_cast<double>(std::max<std::size_t>(
                                     batches, 1)));

    if (!test.empty() &&
        (epoch % options.eval_every == 0 ||
         epoch + 1 == options.max_iterations)) {
      const auto preds = model.predict(test.features());
      history.test_accuracy.push_back(accuracy(preds, test.labels()));
    }
  }
  // ssdk-lint: allow(wall-clock): closes the reporting-only timer above.
  const auto stop = std::chrono::steady_clock::now();
  history.wall_time_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  history.final_loss =
      history.train_loss.empty() ? 0.0 : history.train_loss.back();
  history.final_accuracy =
      history.test_accuracy.empty() ? 0.0 : history.test_accuracy.back();
  return history;
}

std::pair<double, double> evaluate(Mlp& model, const Dataset& data) {
  if (data.empty()) return {0.0, 0.0};
  const Matrix& logits = model.forward(data.features());
  const double loss = softmax_cross_entropy(logits, data.labels(), nullptr);
  const auto preds = model.predict(data.features());
  return {loss, accuracy(preds, data.labels())};
}

}  // namespace ssdk::nn
