#include "nn/mlp.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "nn/activations.hpp"
#include "nn/loss.hpp"

namespace ssdk::nn {

Mlp::Mlp(const std::vector<std::size_t>& layer_sizes, Activation hidden_act,
         std::uint64_t seed) {
  if (layer_sizes.size() < 2) {
    throw std::invalid_argument("Mlp needs at least input and output sizes");
  }
  Rng rng(seed);
  layers_.reserve(layer_sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    const bool is_output = (i + 2 == layer_sizes.size());
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1],
                         is_output ? Activation::kIdentity : hidden_act,
                         rng);
  }
}

Mlp::Mlp(std::vector<DenseLayer> layers) : layers_(std::move(layers)) {
  if (layers_.empty()) throw std::invalid_argument("Mlp needs >= 1 layer");
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    if (layers_[i].out_features() != layers_[i + 1].in_features()) {
      throw std::invalid_argument("Mlp layer shape mismatch");
    }
  }
}

const Matrix& Mlp::forward(const Matrix& input) {
  const Matrix* x = &input;
  for (auto& layer : layers_) x = &layer.forward(*x);
  return *x;
}

const Matrix& Mlp::forward_inference(const Matrix& input,
                                     InferenceScratch& scratch) const {
  const Matrix* x = &input;
  Matrix* bufs[2] = {&scratch.a, &scratch.b};
  std::size_t which = 0;
  for (const auto& layer : layers_) {
    Matrix& out = *bufs[which];
    layer.forward_into(*x, out);
    x = &out;
    which ^= 1;
  }
  return *x;
}

const Matrix& Mlp::forward_inference(const Matrix& input) {
  return forward_inference(input, infer_scratch_);
}

void Mlp::backward(const Matrix& dlogits) {
  const Matrix* grad = &dlogits;
  bool pre_activation = true;  // fused softmax+CE gives d loss / d z directly
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = &it->backward(*grad, pre_activation);
    pre_activation = false;
  }
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

double Mlp::train_loss_and_grad(const Matrix& input,
                                const std::vector<std::uint32_t>& labels) {
  const Matrix& logits = forward(input);
  const double loss = softmax_cross_entropy(logits, labels, &logits_grad_);
  backward(logits_grad_);
  return loss;
}

std::vector<std::uint32_t> Mlp::predict(const Matrix& input,
                                        InferenceScratch& scratch) const {
  const Matrix& logits = forward_inference(input, scratch);
  std::vector<std::uint32_t> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (logits(r, c) > logits(r, best)) best = c;
    }
    out[r] = static_cast<std::uint32_t>(best);
  }
  return out;
}

std::vector<std::uint32_t> Mlp::predict(const Matrix& input) {
  return std::as_const(*this).predict(input, infer_scratch_);
}

Matrix Mlp::predict_proba(const Matrix& input,
                          InferenceScratch& scratch) const {
  const Matrix& logits = forward_inference(input, scratch);
  Matrix probs;
  softmax_rows(logits, probs);
  return probs;
}

Matrix Mlp::predict_proba(const Matrix& input) {
  return std::as_const(*this).predict_proba(input, infer_scratch_);
}

std::size_t Mlp::parameter_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.parameter_count();
  return total;
}

std::size_t Mlp::multiplications_per_inference() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    total += layer.in_features() * layer.out_features();
  }
  return total;
}

}  // namespace ssdk::nn
