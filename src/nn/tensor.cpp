#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace ssdk::nn {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Matrix::axpy(double s, const Matrix& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += s * other.data_[i];
  }
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  out = Matrix(a.rows(), b.cols());
  matmul_into(a, b, out);
}

void matmul_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  assert(&out != &a && &out != &b);
  if (out.rows() != a.rows() || out.cols() != b.cols()) {
    out = Matrix(a.rows(), b.cols());
  } else {
    out.zero();
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  std::size_t i = 0;
  // Four batch rows share one streaming pass over b: each b row is read
  // from cache once per block instead of once per sample. Every output
  // row still accumulates in ascending p with the same zero skip, so the
  // result is bit-identical to the row-at-a-time tail loop below.
  for (; i + 4 <= m; i += 4) {
    const double* a0 = a.data() + i * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    double* o0 = out.data() + i * n;
    double* o1 = o0 + n;
    double* o2 = o1 + n;
    double* o3 = o2 + n;
    for (std::size_t p = 0; p < k; ++p) {
      const double* b_row = b.data() + p * n;
      const double c0 = a0[p], c1 = a1[p], c2 = a2[p], c3 = a3[p];
      if (c0 != 0.0) {
        for (std::size_t j = 0; j < n; ++j) o0[j] += c0 * b_row[j];
      }
      if (c1 != 0.0) {
        for (std::size_t j = 0; j < n; ++j) o1[j] += c1 * b_row[j];
      }
      if (c2 != 0.0) {
        for (std::size_t j = 0; j < n; ++j) o2[j] += c2 * b_row[j];
      }
      if (c3 != 0.0) {
        for (std::size_t j = 0; j < n; ++j) o3[j] += c3 * b_row[j];
      }
    }
  }
  for (; i < m; ++i) {
    double* out_row = out.data() + i * n;
    const double* a_row = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = a_row[p];
      if (aip == 0.0) continue;
      const double* b_row = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) out_row[j] += aip * b_row[j];
    }
  }
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  out = Matrix(a.cols(), b.cols());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const double* a_row = a.data() + p * m;
    const double* b_row = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aip = a_row[i];
      if (aip == 0.0) continue;
      double* out_row = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) out_row[j] += aip * b_row[j];
    }
  }
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  out = Matrix(a.rows(), b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const double* a_row = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const double* b_row = b.data() + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out(i, j) = acc;
    }
  }
}

void add_row_broadcast(Matrix& m, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias(0, c);
  }
}

void column_sums(const Matrix& m, Matrix& out) {
  out = Matrix(1, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) out(0, c) += row[c];
  }
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.same_shape(b));
  out = Matrix(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.raw()[i] = a.raw()[i] * b.raw()[i];
  }
}

double frobenius_norm(const Matrix& m) {
  double acc = 0.0;
  for (double v : m.raw()) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace ssdk::nn
