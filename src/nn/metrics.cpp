#include "nn/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ssdk::nn {

double accuracy(const std::vector<std::uint32_t>& predicted,
                const std::vector<std::uint32_t>& truth) {
  assert(predicted.size() == truth.size());
  if (truth.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] == truth[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double top_k_accuracy(const Matrix& logits,
                      const std::vector<std::uint32_t>& truth,
                      std::size_t k) {
  assert(logits.rows() == truth.size());
  if (truth.empty()) return 0.0;
  k = std::min(k, logits.cols());
  std::size_t hits = 0;
  std::vector<std::size_t> idx(logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    std::iota(idx.begin(), idx.end(), 0);
    std::partial_sort(idx.begin(),
                      idx.begin() + static_cast<std::ptrdiff_t>(k),
                      idx.end(), [&](std::size_t a, std::size_t b) {
                        return logits(r, a) > logits(r, b);
                      });
    for (std::size_t i = 0; i < k; ++i) {
      if (idx[i] == truth[r]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

Matrix confusion_matrix(const std::vector<std::uint32_t>& predicted,
                        const std::vector<std::uint32_t>& truth,
                        std::uint32_t num_classes) {
  assert(predicted.size() == truth.size());
  Matrix m(num_classes, num_classes);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    assert(truth[i] < num_classes && predicted[i] < num_classes);
    m(truth[i], predicted[i]) += 1.0;
  }
  return m;
}

double macro_f1(const std::vector<std::uint32_t>& predicted,
                const std::vector<std::uint32_t>& truth,
                std::uint32_t num_classes) {
  const Matrix cm = confusion_matrix(predicted, truth, num_classes);
  double f1_sum = 0.0;
  std::size_t present = 0;
  for (std::uint32_t c = 0; c < num_classes; ++c) {
    double tp = cm(c, c), fp = 0.0, fn = 0.0, support = 0.0;
    for (std::uint32_t j = 0; j < num_classes; ++j) {
      if (j != c) {
        fp += cm(j, c);
        fn += cm(c, j);
      }
      support += cm(c, j);
    }
    if (support == 0.0) continue;
    ++present;
    const double denom = 2.0 * tp + fp + fn;
    f1_sum += denom > 0.0 ? 2.0 * tp / denom : 0.0;
  }
  return present ? f1_sum / static_cast<double>(present) : 0.0;
}

}  // namespace ssdk::nn
