#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

#include "nn/activations.hpp"

namespace ssdk::nn {

double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::uint32_t>& labels,
                             Matrix* dlogits) {
  assert(logits.rows() == labels.size());
  Matrix probs;
  softmax_rows(logits, probs);

  const auto batch = static_cast<double>(logits.rows());
  double loss = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const std::uint32_t y = labels[r];
    assert(y < logits.cols());
    // Clamp to avoid log(0) when the model is confidently wrong.
    const double p = std::max(probs(r, y), 1e-300);
    loss -= std::log(p);
  }
  loss /= batch;

  if (dlogits != nullptr) {
    *dlogits = probs;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      (*dlogits)(r, labels[r]) -= 1.0;
    }
    *dlogits *= 1.0 / batch;
  }
  return loss;
}

double mean_squared_error(const Matrix& pred, const Matrix& target,
                          Matrix* dpred) {
  assert(pred.same_shape(target));
  const auto n = static_cast<double>(pred.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.raw()[i] - target.raw()[i];
    loss += d * d;
  }
  loss /= n;
  if (dpred != nullptr) {
    *dpred = pred;
    *dpred -= target;
    *dpred *= 2.0 / n;
  }
  return loss;
}

}  // namespace ssdk::nn
