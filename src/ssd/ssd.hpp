// The simulated SSD device: multi-channel, multi-chip, multi-plane,
// event-driven.
//
// Resource model (SSDSim-style multilevel parallelism, Hu et al. [18]):
//   * Each channel has one shared bus. A page transfer occupies the bus for
//     timing.page_transfer_ns(); command overhead is folded in.
//   * Each plane executes one flash-array operation at a time (read /
//     program / erase). Planes of a chip operate concurrently (multiplane /
//     die-interleaved commands), so a channel's write bandwidth is bounded
//     by min(bus, planes x program rate). During a read the plane is also
//     held while its page register is shifted out over the bus.
// Operation pipelines:
//   write: [bus: transfer, plane held] -> [plane: program]
//   read:  [plane: array read]         -> [bus + plane: transfer out]
//   erase: [plane: erase]
// Arbitration: reads have bus priority over writes (configurable — the
// paper's motivation experiment depends on it); a write is granted only
// when its target plane is also free. GC (victim migration + erase) flows
// through the same pipelines and therefore interferes realistically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "ftl/ftl.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_model.hpp"
#include "sim/geometry.hpp"
#include "sim/metrics.hpp"
#include "sim/power_model.hpp"
#include "sim/request.hpp"
#include "sim/timing.hpp"
#include "telemetry/tracer.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace ssdk::ssd {

/// DRAM write buffer (the "DRAM buffer" of the paper's Figure 1).
/// Dirty pages are absorbed at DRAM latency and flushed to flash in FIFO
/// order once occupancy crosses the high watermark. Disabled by default —
/// the paper's experiments measure raw flash-path behaviour.
///
/// Modeling note: a page leaves the buffer when its flush is *enqueued*,
/// not when its program completes, so occupancy never reflects the
/// in-flight flush backlog. Under sustained overload this overstates the
/// buffer's benefit (host writes keep hitting DRAM latency while flush
/// traffic competes with reads on the flash path).
struct WriteBufferConfig {
  std::uint32_t capacity_pages = 0;  ///< 0 disables the buffer
  Duration dram_ns = 2 * kMicrosecond;  ///< buffered-completion latency
  double high_watermark = 0.9;  ///< start flushing above this occupancy
  double low_watermark = 0.7;   ///< stop flushing below this occupancy
};

struct SsdOptions {
  sim::Geometry geometry = sim::Geometry::small();
  sim::Timing timing = sim::Timing::paper();
  ftl::FtlConfig ftl;
  WriteBufferConfig write_buffer;
  bool read_priority = true;  ///< reads preempt queued writes on the bus
  bool gc_enabled = true;
  /// Flash execution granularity. false (default): a chip executes one
  /// array operation at a time (SSDSim's basic command set, the paper's
  /// substrate). true: planes of a chip operate concurrently (multiplane /
  /// die-interleaved advanced commands) — the ablation in
  /// bench_ablation_multiplane.
  bool multiplane_program = false;
  /// Write/bus pipelining. false (default, SSDSim basic commands): the
  /// channel bus is held for the entire write — transfer plus program —
  /// serializing writes per channel; this is what makes heavy write
  /// streams monopolize shared channels (the conflicts SSDKeeper
  /// manages). true: the bus is released after the data transfer so
  /// another chip can use the channel while the program completes
  /// (advanced / pipelined mode).
  bool pipelined_writes = false;
  /// Fault injection (read retries, program/erase failures, bad-block
  /// retirement). Disabled by default: every probability is zero, no
  /// random numbers are drawn, and the schedule is bit-identical to the
  /// fault-free device.
  sim::FaultModel faults;
  /// Power-loss injection. Disabled by default: no OOB metadata is
  /// materialized and the schedule is bit-identical to the power-unaware
  /// device. Enabled: every program also records per-page OOB metadata so
  /// a power_off()/power_on() cycle can rebuild the FTL from flash alone.
  sim::PowerModel power;
  /// Multi-tenant admission scheduling. The default (FIFO, unlimited
  /// window) admits every request the instant it arrives — provably
  /// schedule-neutral, so golden traces stay bit-identical. Fair policies
  /// with a finite max_outstanding_requests window reorder admissions by
  /// tenant weight; per-tenant SLO targets feed TenantMetrics violation
  /// counts.
  sched::SchedConfig sched;
};

/// What a power cut destroyed, returned by Ssd::power_off() so tests can
/// classify the cut point (e.g. "caught a GC migration mid-flight").
struct PowerLossReport {
  std::uint64_t torn_pages = 0;         ///< in-flight programs, all kinds
  std::uint64_t torn_gc_pages = 0;      ///< subset: GC migration writes
  std::uint64_t torn_rescue_pages = 0;  ///< subset: bad-block rescues
  std::uint64_t unknown_blocks = 0;     ///< in-flight erases
  std::uint64_t lost_buffered_pages = 0;  ///< acked-volatile DRAM loss
  std::uint64_t interrupted_requests = 0;  ///< arrived, never completed
};

class Ssd {
 public:
  explicit Ssd(SsdOptions options = {});

  const SsdOptions& options() const { return options_; }
  ftl::Ftl& ftl() { return ftl_; }
  const ftl::Ftl& ftl() const { return ftl_; }

  // --- tenant policy (forwarded to the FTL) -------------------------------
  void set_tenant_channels(sim::TenantId tenant,
                           std::vector<std::uint32_t> channels) {
    ftl_.set_tenant_channels(tenant, std::move(channels));
  }
  void set_tenant_alloc_mode(sim::TenantId tenant, ftl::AllocMode mode) {
    ftl_.set_tenant_alloc_mode(tenant, mode);
  }

  // --- request ingestion ----------------------------------------------------

  /// Pre-size the request table, op slab and event heap for a trace of
  /// about `request_count` requests, so the replay loop never regrows
  /// them. Optional — submit() also reserves the request table — and
  /// additive across calls.
  void reserve(std::size_t request_count);

  /// Append requests (arrival times must be non-decreasing across all
  /// submissions). Call run_to_completion() afterwards.
  void submit(std::span<const sim::IoRequest> requests);
  void submit(const sim::IoRequest& request);

  /// Drain every submitted request and all induced GC work. Dirty pages
  /// may remain in the write buffer afterwards (volatile cache
  /// semantics); call flush_write_buffer() + run_to_completion() to force
  /// them to flash.
  void run_to_completion();

  /// Run the event loop, but stop just before `handle_arrival(request_index)`
  /// — i.e. every event and arrival strictly preceding that request in the
  /// deterministic (time, seq) order is processed, and the device is left
  /// exactly in the state an uninterrupted run would have at that point.
  /// Resuming with run_to_completion() (on this device, a fork, or a
  /// snapshot-restored copy) replays the remainder bit-identically.
  /// Passing an index >= the submitted request count drains everything.
  void run_until_arrival(std::uint64_t request_index);

  /// Schedule flash writes for every dirty buffered page.
  void flush_write_buffer();

  /// Dirty pages currently held in the write buffer.
  std::size_t write_buffer_occupancy() const { return buffer_.size(); }
  std::uint64_t write_buffer_hits() const { return buffer_hits_; }
  /// FIFO entries (live + stale) backing the buffer's eviction order.
  /// Compaction keeps this bounded by ~2x occupancy; exposed for tests.
  std::size_t write_buffer_fifo_entries() const {
    return buffer_fifo_.size();
  }

  SimTime now() const { return now_; }
  sim::MetricsCollector& metrics() { return metrics_; }
  const sim::MetricsCollector& metrics() const { return metrics_; }

  /// The admission scheduler configured at construction (options().sched).
  const sched::Scheduler& scheduler() const { return *sched_; }

  // --- power loss + recovery (ssd_power.cpp) -------------------------------

  /// Sudden power-off, right now. In-flight programs tear their pages,
  /// in-flight erases leave unknown blocks, the DRAM write buffer and all
  /// queued work vanish; only flash + OOB and the bad-block table survive.
  /// Requires options().power.enabled (the OOB store must have been
  /// recording since construction). The device refuses further work until
  /// power_on().
  PowerLossReport power_off();

  /// Power-up mount: run the FTL's OOB recovery scan, charge the modeled
  /// mount time (full-device scan reads + re-erases of unknown blocks)
  /// to the simulation clock and metrics, restart rescue migrations for
  /// retired blocks still holding data, then resume service.
  void power_on();

  bool powered_off() const { return powered_off_; }

  /// Durability contract audit, meaningful right after power_on(): the L2P
  /// map must equal an independent recomputation of the OOB scan's winners
  /// (highest seq, lowest PPN on ties), no torn/failed page may be mapped,
  /// and the mapped-page count must match. Throws util::InvariantViolation.
  void verify_recovery() const;

  /// (tenant, LPN) keys whose only durable copy died on media (an
  /// uncorrectable GC/rescue read) — recorded only while OOB is enabled.
  /// The crash-fuzz oracle excludes these from acked-durable checks.
  const std::vector<std::uint64_t>& media_lost_keys() const {
    return media_lost_keys_;
  }

  /// Called at the end of every power_on(). The online keeper uses this to
  /// re-enter feature collection on a safe allocation after a crash. Like
  /// the other hooks: non-owning, not forked, not serialized.
  using PowerHook = std::function<void()>;
  void set_power_hook(PowerHook hook) { power_hook_ = std::move(hook); }

  // --- hooks (used by the online SSDKeeper) --------------------------------

  /// Called when a request enters the device, before dispatch. A hook may
  /// call set_tenant_channels / set_tenant_alloc_mode (Algorithm 2's
  /// strategy switch takes effect for subsequent placements). Hooks must
  /// not call submit().
  using ArrivalHook = std::function<void(const sim::IoRequest&)>;
  /// Called when a host request fully completes.
  using CompletionHook = std::function<void(const sim::Completion&)>;

  void set_arrival_hook(ArrivalHook hook) { arrival_hook_ = std::move(hook); }
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }

  // --- telemetry ------------------------------------------------------------

  /// Attach a lifecycle tracer (nullptr detaches). Non-owning; the tracer
  /// must outlive the device or be detached first. Tracing never changes
  /// the schedule: a traced run is bit-identical to an untraced one.
  void set_tracer(telemetry::Tracer* tracer) {
    tracer_ = tracer;
    ftl_.set_tracer(tracer, &now_);
  }
  telemetry::Tracer* tracer() const { return tracer_; }

  // --- load introspection (dynamic page allocation) -------------------------

  Duration channel_backlog_ns(std::uint32_t channel) const;
  Duration chip_backlog_ns(std::uint32_t global_chip) const;
  Duration plane_backlog_ns(std::uint64_t global_plane) const;

  // --- utilization accounting -----------------------------------------------

  /// Cumulative bus-busy time of one channel.
  Duration channel_busy_ns(std::uint32_t channel) const {
    return channel_busy_ns_.at(channel);
  }
  /// Fraction of elapsed simulation time the channel's bus was busy.
  double channel_utilization(std::uint32_t channel) const;
  /// Cumulative flash busy time of one execution unit (chip by default).
  Duration unit_busy_ns(std::uint64_t unit) const {
    return unit_busy_ns_.at(unit);
  }
  std::size_t unit_count() const { return units_.size(); }

  // --- snapshot / fork ------------------------------------------------------

  /// Deep-copy the complete device mid-simulation. The fork shares nothing
  /// with the parent and replays the remaining submitted work bit-identically
  /// to it. Non-owning observers (arrival/completion hooks, tracer) are
  /// deliberately NOT carried over — a fork starts unobserved and callers
  /// attach their own.
  std::unique_ptr<Ssd> fork() const;

  /// Serialize the complete mutable device state (everything except the
  /// construction-time options, which the snapshot container stores
  /// separately, and non-owning observers). load_state requires a device
  /// constructed with the identical SsdOptions; geometry-derived sizes are
  /// validated against the payload.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

  // --- checked-build audit --------------------------------------------------

  /// Audit the full device against its structural invariants: L2P
  /// bijection and block bookkeeping (via the FTL), event-queue order and
  /// time monotonicity, op-slab free-list integrity, op-queue membership,
  /// per-channel queued-write counters, cached front-write seqs, busy
  /// deadlines vs. the clock, write-buffer key/FIFO consistency, and GC
  /// job registration. Throws util::InvariantViolation on the first
  /// breach. O(device state); call at event boundaries only.
  void check_invariants() const;

  /// Run check_invariants() automatically every `interval` handled
  /// arrivals (0, the default, disables). The `checked` build preset and
  /// the runner turn this on; any build may enable it explicitly.
  void set_audit_interval(std::uint64_t interval) {
    audit_interval_ = interval;
    arrivals_since_audit_ = 0;
  }
  std::uint64_t audit_interval() const { return audit_interval_; }

 private:
  /// Memberwise copy for fork(); the public fork() fixes up the self
  /// pointers (load_view_, FTL trace clock) that a plain copy would leave
  /// aimed at the parent.
  Ssd(const Ssd&) = default;

  enum class OpKind : std::uint8_t {
    kHostRead,
    kHostWrite,
    kGcRead,
    kGcWrite,
    kErase,
    kFlushWrite,  ///< write-buffer eviction flowing to flash
  };

  struct PageOp {
    std::uint64_t request = kNoRequest;  ///< host request index
    sim::TenantId tenant = 0;
    OpKind kind = OpKind::kHostRead;
    sim::PhysAddr addr;
    sim::Ppn ppn = sim::kInvalidPpn;
    sim::Ppn gc_src = sim::kInvalidPpn;  ///< migration source (kGcWrite)
    std::uint32_t gc_job = kNoJob;
    std::uint64_t lpn = 0;  ///< owner LPN (host/flush ops; fault re-place)
    /// OOB write sequence number, drawn at placement (host/flush writes
    /// with the power model on; 0 otherwise — GC writes copy src OOB).
    std::uint64_t oob_seq = 0;
    std::uint64_t enq_seq = 0;  ///< dispatch order (FIFO tie-breaks)
    SimTime dispatched_at = 0;  ///< queue-wait accounting
    std::uint32_t attempts = 0;  ///< read retries issued so far
    bool in_use = false;
  };

  // Op queues are rings, not deques: after warm-up their capacity is
  // stable and steady-state queueing allocates nothing.
  using OpQueue = util::RingBuffer<std::uint64_t>;

  struct ChannelState {
    bool bus_busy = false;
    SimTime bus_free_at = 0;
    OpQueue read_q;          ///< ops ready for read-out transfer
    bool rr_toggle = false;  ///< fairness state when !read_priority
    /// Writes queued across this channel's units; lets arbitration skip
    /// the per-unit scan when no write is waiting at all.
    std::uint32_t queued_writes = 0;
  };

  /// One flash execution unit: a chip (default) or a plane (multiplane).
  struct UnitState {
    // `busy` and `front_write_seq` lead the struct deliberately: the
    // write-arbitration scan reads only these two, so keeping them on the
    // struct's first cache line makes the scan one line per unit.
    bool busy = false;
    /// enq_seq of write_q.front(), cached at push/pop so the oldest-write
    /// arbitration scan never touches the op slab. All-ones when empty
    /// (sorts after every real seq).
    std::uint64_t front_write_seq = ~std::uint64_t{0};
    SimTime busy_until = 0;
    OpQueue read_wait;   ///< array reads awaiting the unit
    OpQueue erase_wait;  ///< erases awaiting the unit
    OpQueue write_q;     ///< writes awaiting bus + unit
  };

  struct RequestState {
    sim::IoRequest req;
    std::uint32_t remaining = 0;
    std::uint32_t failed = 0;  ///< pages that were uncorrectable
    /// Pages of this write absorbed by the volatile DRAM buffer; the
    /// completion is acked-durable only when this is zero.
    std::uint32_t volatile_pages = 0;
  };

  /// One outstanding host flush: the request completes once every
  /// write-buffer flush program enqueued before `threshold` has settled.
  struct FlushBarrier {
    std::uint64_t request = kNoRequest;
    std::uint64_t threshold = 0;  ///< enq_seq fence (exclusive)
    std::uint32_t remaining = 0;  ///< kFlushWrite ops still in flight
  };

  struct GcJob {
    std::uint64_t plane_id = 0;
    std::uint32_t victim = 0;
    std::uint32_t outstanding = 0;  ///< migrations not yet durable
    bool active = false;
    /// Set when the current round is a static wear-leveling rotation; at
    /// most one rotation runs per GC episode so leveling overhead stays
    /// proportional to GC activity.
    bool wl_round = false;
    /// Rescue job: migrate survivors off a freshly retired block. Not
    /// registered in gc_job_of_plane_ (plane GC may run concurrently)
    /// and never erases its victim — the block is dead.
    bool rescue = false;
  };

  static constexpr std::uint64_t kNoRequest = ~std::uint64_t{0};
  static constexpr std::uint32_t kNoJob = ~std::uint32_t{0};

  // Op slab management.
  std::uint64_t alloc_op();
  void free_op(std::uint64_t id);

  /// Periodic-audit tick, called once per handled arrival.
  void maybe_audit() {
    if (audit_interval_ == 0) return;
    if (++arrivals_since_audit_ >= audit_interval_) {
      arrivals_since_audit_ = 0;
      check_invariants();
    }
  }

  // Telemetry (no-ops unless a tracer is attached; call sites guard on
  // tracer_ so a disabled run costs one branch per site).
  telemetry::OpClass op_class(const PageOp& op) const;
  std::uint64_t host_request_id(const PageOp& op) const;
  /// Span tied to one page op (resource ids derived from its address).
  void trace_op_span(telemetry::SpanKind kind, SimTime begin, SimTime end,
                     const PageOp& op, std::uint64_t detail = 0);
  /// Queue-wait span from dispatch to first grant; skipped when zero.
  void trace_wait(const PageOp& op);

  // Power-loss internals (ssd_power.cpp).
  /// Fires a scheduled cut when the run loop's next step is at/past the
  /// trigger; returns true when the cut fired (the loop re-evaluates).
  bool maybe_fire_power_cut();
  Duration modeled_mount_ns(const ftl::RecoveryReport& rec) const;

  // Host flush (write barrier).
  void handle_flush(std::uint64_t request_index);
  /// A kFlushWrite with this enq_seq reached a terminal state; release
  /// every barrier it was holding up.
  void settle_flush_barriers(std::uint64_t enq_seq);
  /// Record a completed program's OOB metadata (power model on).
  void record_program_oob(const PageOp& op, bool program_failed);
  /// Migration completed before its source's own program did: resolve the
  /// copied version from the pending op instead of the (unwritten) src OOB.
  void record_resolved_migration_oob(const PageOp& op);

  // Admission scheduling (the path every arrival takes).
  /// Drain the scheduler: admit granted requests until the window closes
  /// or nothing is pending. Re-entrant calls (a synchronous completion
  /// inside an admission) are absorbed by the outer pump.
  void pump_scheduler();
  /// Dispatch one granted request's page ops (the pre-scheduler
  /// handle_arrival body).
  void admit_request(std::uint64_t request_index);

  // Event handlers.
  void handle_arrival(std::uint64_t request_index);
  void handle_flash_done(std::uint64_t unit, std::uint64_t op_id);
  /// Merged bus-release + program-completion for non-pipelined writes.
  void handle_write_done(std::uint64_t unit, std::uint64_t op_id);
  void handle_bus_free(std::uint32_t channel, std::uint64_t op_id);
  void handle_buffer_done(std::uint64_t request_index,
                          std::uint64_t pages);

  // Write-buffer internals.
  static std::uint64_t buffer_key(sim::TenantId tenant, std::uint64_t lpn) {
    return (static_cast<std::uint64_t>(tenant) << 40) | lpn;
  }
  /// Absorb one page into the buffer; returns false when the buffer is
  /// disabled or full (caller sends the page to flash).
  bool buffer_write(sim::TenantId tenant, std::uint64_t lpn);
  /// True when (tenant, lpn) is dirty in the buffer (read hit).
  bool buffer_holds(sim::TenantId tenant, std::uint64_t lpn) const;
  /// Evict FIFO-oldest dirty pages down to the low watermark.
  void maybe_flush_buffer();
  void flush_one(sim::TenantId tenant, std::uint64_t lpn);
  /// Drop stale FIFO entries (keys trimmed out of the buffer) when they
  /// outnumber live ones; keeps the FIFO bounded by ~2x occupancy under
  /// trim-heavy workloads without changing eviction order.
  void maybe_compact_buffer_fifo();
  void compact_buffer_fifo();

  // Dispatch / arbitration.
  void dispatch_read(std::uint64_t op_id);
  void dispatch_write(std::uint64_t op_id);
  void dispatch_erase(std::uint64_t op_id);
  void start_array_read(std::uint64_t unit, std::uint64_t op_id);
  void start_erase(std::uint64_t unit, std::uint64_t op_id);
  /// Returns true when it fell through to arbitrate() for the unit's
  /// channel (so the caller must not arbitrate the same channel again —
  /// the duplicate call is always a no-op and just re-scans the queues).
  bool unit_next(std::uint64_t unit);
  void arbitrate(std::uint32_t channel);
  void grant_read_transfer(std::uint32_t channel);
  /// Grant the oldest queued write on this channel whose unit is free.
  bool try_grant_write(std::uint32_t channel);
  /// Is any write currently grantable on this channel?
  bool write_grantable(std::uint32_t channel) const;

  // Completions.
  void finish_host_op(std::uint64_t op_id);
  void complete_request_page(std::uint64_t request_index,
                             bool failed = false);
  void on_gc_read_done(std::uint64_t op_id);
  void on_gc_write_done(std::uint64_t op_id);
  void on_erase_done(std::uint64_t op_id);

  // Fault injection (no-ops while options_.faults is disabled).
  /// Seeded Bernoulli draw; never consumes randomness when p <= 0.
  bool draw_fault(double p);
  /// Did this read attempt fail ECC? (BER scales with the block's wear.)
  bool read_ecc_failed(const PageOp& op);
  /// Re-sense the page: the unit is re-occupied with escalating latency,
  /// then the data is shifted out over the bus again.
  void start_read_retry(std::uint64_t unit, std::uint64_t op_id);
  /// Retries exhausted: fail the host page or drop the GC migration.
  void handle_uncorrectable_read(std::uint64_t op_id);
  /// A write landed badly: program failure, or the target block was
  /// retired while the program was in flight. Re-places and re-dispatches.
  void handle_write_fault(std::uint64_t op_id, bool program_failed);
  /// Take a block out of rotation and migrate its survivors.
  void retire_and_rescue(std::uint64_t plane_id, std::uint32_t block);
  void start_rescue(std::uint64_t plane_id, std::uint32_t block);
  /// Destination for a job's next migration write. Rescues search the whole
  /// device; GC stays plane-local but (with faults on) falls back
  /// device-wide when retirement consumed the plane's headroom. Throws
  /// when nothing is free anywhere.
  sim::Ppn migration_target(const GcJob& job);

  // GC control.
  void maybe_start_gc(std::uint64_t plane_id);
  /// Find or grow a free slot in the GC job slab.
  std::uint32_t acquire_gc_job();
  /// One migration settled (durable or lost); advance the job when the
  /// round is drained.
  void gc_settle(std::uint32_t job_index);
  /// GC episode tail: next victim, one wear-leveling rotation, or finish.
  void finish_gc_episode(std::uint32_t job_index);
  void start_gc_round(std::uint32_t job_index);
  /// Run one reclamation round on an explicit victim (GC proper passes the
  /// greedy pick; static wear leveling passes the coldest Full block).
  void start_round_on_victim(std::uint32_t job_index, std::uint32_t victim);
  sim::PhysAddr block_addr(std::uint64_t plane_id,
                           std::uint32_t block) const;

  /// Execution units per channel under the current granularity (cached
  /// at construction; the granularity never changes afterwards).
  std::uint64_t units_per_channel() const { return units_per_channel_; }
  std::uint64_t unit_of(const sim::PhysAddr& a) const {
    return options_.multiplane_program
               ? options_.geometry.plane_id(a)
               : options_.geometry.chip_id(a.channel, a.chip);
  }
  std::uint32_t channel_of_unit(std::uint64_t unit) const {
    // Every stock geometry has a power-of-two unit count per channel, so
    // this division is almost always a shift.
    return static_cast<std::uint32_t>(
        unit_shift_ >= 0 ? unit >> unit_shift_
                         : unit / units_per_channel_);
  }
  /// First execution unit id on a channel.
  std::uint64_t first_unit(std::uint32_t channel) const {
    return static_cast<std::uint64_t>(channel) * units_per_channel();
  }

  /// Concrete LoadView over this device's live queues — one indirect call
  /// per backlog probe instead of a type-erased std::function invocation.
  struct LoadViewImpl final : ftl::LoadView {
    explicit LoadViewImpl(const Ssd* device) : ssd(device) {}
    Duration channel_backlog(std::uint32_t channel) const override {
      return ssd->channel_backlog_ns(channel);
    }
    Duration chip_backlog(std::uint32_t global_chip) const override {
      return ssd->chip_backlog_ns(global_chip);
    }
    const Ssd* ssd;
  };

  // ssdk-snap: skip(options_): saved as the OPTS section via options(); load_device reconstructs the Ssd from load_options before load_state runs
  SsdOptions options_;
  // ssdk-snap: skip(units_per_channel_): cached from the options' conflict granularity at construction
  std::uint64_t units_per_channel_ = 1;  ///< cached from the granularity
  // ssdk-snap: skip(unit_shift_): derived log2 cache of units_per_channel_, computed at construction
  int unit_shift_ = -1;  ///< log2(units_per_channel_) when pow2, else -1
  ftl::Ftl ftl_;
  // ssdk-snap: skip(load_view_): self-referential adapter constructed in place; holds no state beyond the back-pointer
  LoadViewImpl load_view_{this};
  sim::EventQueue events_;
  SimTime now_ = 0;

  std::vector<ChannelState> channels_;
  std::vector<UnitState> units_;
  /// Per-unit write-grant key: front_write_seq when the unit is free with
  /// a queued write, all-ones otherwise. The arbitration argmin scans only
  /// this dense array — one cache line per channel instead of one
  /// UnitState line per unit — and selects exactly the unit the
  /// (busy, front_write_seq) pair would. Maintained at every busy-flag and
  /// write-queue transition; audited against both in check_invariants.
  // ssdk-snap: skip(grant_seq_): derived arbitration cache, recomputed from the unit states on load and audited by check_invariants
  std::vector<std::uint64_t> grant_seq_;
  std::vector<Duration> channel_busy_ns_;
  std::vector<Duration> unit_busy_ns_;

  std::vector<RequestState> requests_;
  std::uint64_t arrival_cursor_ = 0;
  SimTime last_submitted_arrival_ = 0;

  std::vector<PageOp> ops_;
  std::vector<std::uint64_t> free_ops_;
  std::uint64_t next_enq_seq_ = 0;

  std::vector<GcJob> gc_jobs_;
  std::vector<std::uint32_t> gc_job_of_plane_;  // kNoJob when idle
  // ssdk-snap: skip(gc_scratch_): scratch buffer with no meaning between events; snapshots are taken at event boundaries
  std::vector<sim::Ppn> gc_scratch_;  ///< survivor list, reused per round

  // Write buffer: dirty (tenant, lpn) keys with FIFO eviction order.
  // The FIFO may hold stale keys (trimmed entries); they are skipped
  // lazily at eviction time and compacted away when they outnumber live
  // ones. Map values are insertion seqs; compaction borrows their top bit
  // as a seen-marker (kBufferKeptBit) so it needs no side allocation.
  std::unordered_map<std::uint64_t, std::uint64_t> buffer_;  // key -> seq
  OpQueue buffer_fifo_;
  std::uint64_t buffer_seq_ = 0;
  std::uint64_t buffer_hits_ = 0;

  // Power-loss state. flush_barriers_, powered_off_, cut_fired_ and
  // media_lost_keys_ are serialized (PWRS section); the hook is an
  // observer like the others.
  std::vector<FlushBarrier> flush_barriers_;
  bool powered_off_ = false;
  bool cut_fired_ = false;  ///< the scheduled cut fires at most once
  std::vector<std::uint64_t> media_lost_keys_;

  // Admission scheduler (serialized in the SCHD section; the handle's
  // copy constructor clones, so fork()'s memberwise copy stays defaulted).
  sched::SchedulerHandle sched_;
  // ssdk-snap: skip(sched_pumping_): re-entrancy guard, always false at the event boundaries where snapshots are taken
  bool sched_pumping_ = false;  ///< re-entrancy guard for pump_scheduler

  sim::MetricsCollector metrics_;
  // ssdk-snap: skip(arrival_hook_): observer callback, runtime wiring reinstalled by the owner after load
  ArrivalHook arrival_hook_;
  // ssdk-snap: skip(completion_hook_): observer callback, runtime wiring reinstalled by the owner after load
  CompletionHook completion_hook_;
  // ssdk-snap: skip(power_hook_): observer callback, runtime wiring reinstalled by the owner after load
  PowerHook power_hook_;
  // ssdk-snap: skip(tracer_): non-owning observer, rewired by the owner; null = telemetry off
  telemetry::Tracer* tracer_ = nullptr;  ///< null = telemetry off

  // ssdk-snap: skip(page_xfer_ns_): derived from timing.xfer_ns_per_byte and the page size at construction
  Duration page_xfer_ns_ = 0;

  // Fault injection: one seeded per-device stream, consumed in event
  // order, so a fixed (workload, seed) reproduces the fault sequence.
  Rng fault_rng_;
  // ssdk-snap: skip(faults_on_): derived at construction from whether any fault-model rate is non-zero
  bool faults_on_ = false;

  // Periodic self-audit cadence (runtime config, like the hooks: not
  // serialized, copied by fork's memberwise copy).
  // ssdk-snap: skip(audit_interval_): runtime debug config, reapplied by the owner after load
  std::uint64_t audit_interval_ = 0;
  // ssdk-snap: skip(arrivals_since_audit_): debug-audit phase counter; restarting the cadence after load is harmless
  std::uint64_t arrivals_since_audit_ = 0;
};

}  // namespace ssdk::ssd
