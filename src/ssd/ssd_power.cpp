// Power-loss injection and recovery for the device model (DESIGN.md §14).
//
// power_off() applies the volatile-state semantics of a sudden cut:
//   * granted (executing) programs tear their target pages,
//   * granted erases leave their block in an unknown state,
//   * queued-but-unstarted ops simply vanish (their allocated pages were
//     never programmed, so the OOB scan never sees them),
//   * the DRAM write buffer and every queue/event evaporate.
// Only flash contents + OOB, the bad-block table (retired flags + erase
// counters) and the host-visible trace survive; power_on() rebuilds the
// rest via the FTL's recovery scan and charges the modeled mount time.
//
// Classification needs no event-queue introspection: every in-use op is
// either sitting in exactly one op queue (not yet granted) or has a
// pending completion event (granted) — so "granted" is "in use and in no
// queue".
#include "ssd/ssd.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace ssdk::ssd {

PowerLossReport Ssd::power_off() {
  if (powered_off_) {
    throw std::logic_error("ssd: power_off on an already powered-off device");
  }
  ftl::OobStore& oob = ftl_.oob();
  if (!oob.enabled()) {
    throw std::logic_error(
        "ssd: power_off requires options().power.enabled — OOB metadata "
        "was never recorded, so recovery would be impossible");
  }

  PowerLossReport report;

  // Granted-vs-queued classification: mark every queued op id.
  std::vector<std::uint8_t> queued(ops_.size(), 0);
  const auto mark = [&](const OpQueue& q) {
    for (std::size_t i = 0; i < q.size(); ++i) queued[q.at(i)] = 1;
  };
  for (const ChannelState& ch : channels_) mark(ch.read_q);
  for (const UnitState& u : units_) {
    mark(u.read_wait);
    mark(u.erase_wait);
    mark(u.write_q);
  }

  for (std::size_t id = 0; id < ops_.size(); ++id) {
    const PageOp& op = ops_[id];
    if (!op.in_use || queued[id]) continue;  // free, or never started
    switch (op.kind) {
      case OpKind::kHostWrite:
      case OpKind::kFlushWrite:
      case OpKind::kGcWrite:
        // Program in flight: the page is consumed but unreadable.
        oob.record_torn(op.ppn);
        ++report.torn_pages;
        if (op.kind == OpKind::kGcWrite) {
          if (gc_jobs_[op.gc_job].rescue) {
            ++report.torn_rescue_pages;
          } else {
            ++report.torn_gc_pages;
          }
        }
        break;
      case OpKind::kErase: {
        const std::uint64_t plane = options_.geometry.plane_id(op.addr);
        oob.mark_block_unknown(
            plane * options_.geometry.blocks_per_plane + op.addr.block);
        ++report.unknown_blocks;
        break;
      }
      case OpKind::kHostRead:
      case OpKind::kGcRead:
        break;  // reads destroy nothing
    }
  }

  // Acked-volatile loss: every dirty buffered page dies, counted per
  // tenant.
  std::map<sim::TenantId, std::uint64_t> lost;
  // ssdk-lint: allow(unordered-iter): counts accumulate into a sorted map
  // before any observable effect, so hash order cannot leak out.
  for (const auto& [key, seq] : buffer_) {
    ++lost[static_cast<sim::TenantId>(key >> 40)];
  }
  for (const auto& [tenant, pages] : lost) {
    metrics_.record_volatile_loss(tenant, pages);
    report.lost_buffered_pages += pages;
    if (tracer_) {
      tracer_->record_point(now_, telemetry::SpanKind::kVolatileLoss, tenant,
                            0, 0, pages);
    }
  }

  // Requests that arrived but will never complete (their in-flight pages
  // died with the queues). They are left in the table — replay after
  // power_on continues with the *next* arrivals — and simply never
  // produce a completion, exactly like a real crashed host ioctl.
  for (std::uint64_t i = 0; i < arrival_cursor_; ++i) {
    if (requests_[i].remaining > 0) ++report.interrupted_requests;
  }
  metrics_.counters().interrupted_requests += report.interrupted_requests;
  ++metrics_.counters().power_cycles;
  if (tracer_) {
    tracer_->record_point(now_, telemetry::SpanKind::kPowerLoss,
                          sim::kInternalTenant, 0, 0, report.torn_pages);
  }

  // Wipe every volatile structure. Monotonic counters (next_enq_seq_,
  // buffer_seq_, busy-time accumulators, metrics) survive: they are
  // simulator bookkeeping, not device DRAM.
  events_.clear();
  for (ChannelState& ch : channels_) {
    ch.bus_busy = false;
    ch.bus_free_at = 0;
    ch.read_q.clear();
    ch.rr_toggle = false;
    ch.queued_writes = 0;
  }
  for (UnitState& u : units_) {
    u.busy = false;
    u.busy_until = 0;
    u.front_write_seq = ~std::uint64_t{0};
    u.read_wait.clear();
    u.erase_wait.clear();
    u.write_q.clear();
  }
  std::fill(grant_seq_.begin(), grant_seq_.end(), ~std::uint64_t{0});
  ops_.clear();
  free_ops_.clear();
  gc_jobs_.clear();
  std::fill(gc_job_of_plane_.begin(), gc_job_of_plane_.end(), kNoJob);
  buffer_.clear();
  buffer_fifo_.clear();
  flush_barriers_.clear();
  // Requests still held by the admission scheduler vanish with the rest
  // of the volatile state (they are counted in interrupted_requests above
  // — arrived, never completed — like every admitted-but-unfinished one).
  sched_->clear();
  powered_off_ = true;
  return report;
}

void Ssd::power_on() {
  if (!powered_off_) {
    throw std::logic_error("ssd: power_on on a device that has power");
  }
  const SimTime mount_begin = now_;
  const ftl::RecoveryReport rec = ftl_.recover_after_power_loss();
  const Duration mount = modeled_mount_ns(rec);
  now_ += mount;

  auto& counters = metrics_.counters();
  counters.mount_time_ns += mount;
  counters.mount_scan_reads += rec.scanned_pages;
  counters.torn_pages_discarded += rec.torn_pages;
  counters.unknown_blocks_recovered += rec.unknown_blocks;
  if (tracer_) {
    telemetry::TraceEvent e;
    e.begin = mount_begin;
    e.end = now_;
    e.kind = telemetry::SpanKind::kMountScan;
    e.tenant = sim::kInternalTenant;
    e.detail = rec.scanned_pages;
    tracer_->record(e);
    tracer_->record_point(now_, telemetry::SpanKind::kRecovery,
                          sim::kInternalTenant, 0, 0, rec.recovered_pages);
  }

  powered_off_ = false;
  // Retired blocks that came back still holding winners: restart their
  // rescue migrations (the pre-crash rescue state was volatile).
  for (const auto& [plane, block] : rec.rescue_blocks) {
    start_rescue(plane, block);
  }
  if (util::kCheckedBuild) check_invariants();
  if (power_hook_) power_hook_();
}

Duration Ssd::modeled_mount_ns(const ftl::RecoveryReport& rec) const {
  // Execution units scan their planes' OOB areas sequentially and in
  // parallel with each other; unknown-block re-erases are charged to the
  // owning unit. Mount time is the slowest unit's total.
  const auto& g = options_.geometry;
  const std::uint64_t planes_per_unit =
      options_.multiplane_program ? 1 : g.planes_per_chip;
  const std::uint64_t pages_per_plane =
      static_cast<std::uint64_t>(g.blocks_per_plane) * g.pages_per_block;
  const Duration scan_ns =
      pages_per_plane * planes_per_unit * options_.timing.read_ns;
  Duration mount = 0;
  for (std::size_t u = 0; u < units_.size(); ++u) {
    std::uint64_t reerases = 0;
    for (std::uint64_t p = 0; p < planes_per_unit; ++p) {
      reerases += rec.reerases_per_plane[u * planes_per_unit + p];
    }
    mount = std::max(mount, scan_ns + reerases * options_.timing.erase_ns);
  }
  return mount;
}

bool Ssd::maybe_fire_power_cut() {
  const sim::PowerModel& pm = options_.power;
  const bool have_arrival = arrival_cursor_ < requests_.size();
  const bool take_arrival =
      have_arrival &&
      (events_.empty() ||
       requests_[arrival_cursor_].req.arrival <= events_.next_time());
  if (pm.cut_at_arrival != ~std::uint64_t{0}) {
    // Fire just before the nth arrival is handled, at its arrival time.
    if (!(take_arrival && arrival_cursor_ >= pm.cut_at_arrival)) {
      return false;
    }
    now_ = std::max(now_, requests_[arrival_cursor_].req.arrival);
  } else {
    // Fire when the next executable step is at/past the scheduled time.
    // The run loop guarantees at least one of the two sources is ready.
    const SimTime next_time = take_arrival
                                  ? requests_[arrival_cursor_].req.arrival
                                  : events_.next_time();
    if (next_time < pm.cut_at_time) return false;
    now_ = std::max(now_, pm.cut_at_time);
  }
  cut_fired_ = true;
  power_off();
  if (pm.auto_recover) power_on();
  return true;
}

void Ssd::verify_recovery() const {
  // Independent recomputation of the recovery scan's winners, compared
  // against the live L2P map. Meaningful immediately after power_on(),
  // before any new program completes (later writes open an in-flight
  // window where the map legitimately leads the OOB).
  const ftl::OobStore& oob = ftl_.oob();
  if (!oob.enabled()) {
    throw std::logic_error("ssd: verify_recovery requires OOB metadata");
  }
  const ftl::MappingTable& map = ftl_.mapping();

  std::map<std::uint64_t, std::pair<std::uint64_t, sim::Ppn>> best;
  const std::uint64_t pages = options_.geometry.total_pages();
  for (sim::Ppn p = 0; p < pages; ++p) {
    if (oob.state(p) != ftl::OobState::kData) continue;
    const std::uint64_t seq = oob.seq(p);
    const auto [it, inserted] = best.try_emplace(oob.owner(p), seq, p);
    if (!inserted && seq > it->second.first) it->second = {seq, p};
  }

  // Every winner must be mapped at exactly its winning PPN...
  for (const auto& [key, win] : best) {
    const sim::Ppn mapped = map.lookup(ftl::OobStore::owner_tenant(key),
                                       ftl::OobStore::owner_lpn(key));
    SSDK_CHECK_MSG(
        mapped == win.second,
        "recovery: lpn " + std::to_string(ftl::OobStore::owner_lpn(key)) +
            " of tenant " +
            std::to_string(ftl::OobStore::owner_tenant(key)) +
            " maps to ppn " + std::to_string(mapped) +
            " instead of the surviving winner " +
            std::to_string(win.second) + " (seq " +
            std::to_string(win.first) + ")");
  }
  // ...and nothing else may be mapped: equal counts + the per-winner check
  // above give the bijection, which also proves no torn/failed/erased
  // page is ever served.
  std::uint64_t mapped_total = 0;
  for (std::size_t t = 0; t < map.tenant_table_count(); ++t) {
    mapped_total += map.mapped_count(static_cast<sim::TenantId>(t));
  }
  SSDK_CHECK_MSG(mapped_total == best.size(),
                 "recovery: " + std::to_string(mapped_total) +
                     " mapped pages != " + std::to_string(best.size()) +
                     " OOB winners — the map serves a page the scan never "
                     "recovered");
}

}  // namespace ssdk::ssd
