// Snapshot and fork support for the device model: serialization of every
// mutable field, and a deep copy with the self-referential pointers fixed
// up. Kept out of ssd.cpp so the event-loop hot path stays a focused read.
//
// Invariant both paths preserve: a restored/forked device is
// *byte-equivalent* to the original — not merely behaviorally equal — so
// replaying the remaining trace produces a bit-identical telemetry stream
// (enforced by tests/snapshot/device_snapshot_test with first_divergence).
#include "ssd/ssd.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace ssdk::ssd {

std::unique_ptr<Ssd> Ssd::fork() const {
  // Memberwise copy, then repair the two self pointers a copy cannot know
  // about and drop the parent's observers (hooks, tracer): a fork starts
  // unobserved, and the FTL's trace clock must follow the fork's own now_.
  std::unique_ptr<Ssd> copy(new Ssd(*this));
  copy->load_view_.ssd = copy.get();
  copy->arrival_hook_ = nullptr;
  copy->completion_hook_ = nullptr;
  copy->power_hook_ = nullptr;
  copy->tracer_ = nullptr;
  copy->ftl_.set_tracer(nullptr, &copy->now_);
  if (util::kCheckedBuild) copy->check_invariants();
  return copy;
}

namespace {

void save_ring(snapshot::StateWriter& w,
               const util::RingBuffer<std::uint64_t>& q) {
  w.u64(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) w.u64(q.at(i));
}

void load_ring(snapshot::StateReader& r,
               util::RingBuffer<std::uint64_t>& q) {
  const std::uint64_t n = r.checked_count(8);
  q.clear();
  q.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) q.push_back(r.u64());
}

}  // namespace

void Ssd::save_state(snapshot::StateWriter& w) const {
  w.tag("SSD_");

  // Clock, event kernel, and the FTL (mapping + blocks + policies).
  w.u64(now_);
  events_.save_state(w);
  ftl_.save_state(w);

  // Channel bus state machines.
  w.tag("CHNL");
  w.u64(channels_.size());
  for (const ChannelState& c : channels_) {
    w.boolean(c.bus_busy);
    w.u64(c.bus_free_at);
    save_ring(w, c.read_q);
    w.boolean(c.rr_toggle);
    w.u32(c.queued_writes);
  }

  // Flash execution units.
  w.tag("UNIT");
  w.u64(units_.size());
  for (const UnitState& u : units_) {
    w.boolean(u.busy);
    w.u64(u.front_write_seq);
    w.u64(u.busy_until);
    save_ring(w, u.read_wait);
    save_ring(w, u.erase_wait);
    save_ring(w, u.write_q);
  }
  w.vec_u64(channel_busy_ns_);
  w.vec_u64(unit_busy_ns_);

  // Host request table and arrival cursor.
  w.tag("REQS");
  w.u64(requests_.size());
  for (const RequestState& rs : requests_) {
    w.u64(rs.req.id);
    w.u32(rs.req.tenant);
    w.u8(static_cast<std::uint8_t>(rs.req.type));
    w.u64(rs.req.lpn);
    w.u32(rs.req.page_count);
    w.u64(rs.req.arrival);
    w.u32(rs.remaining);
    w.u32(rs.failed);
    w.u32(rs.volatile_pages);
  }
  w.u64(arrival_cursor_);
  w.u64(last_submitted_arrival_);

  // Page-op slab (including free slots — slab indices are baked into
  // queued op ids, so the layout must survive verbatim).
  w.tag("OPSL");
  w.u64(ops_.size());
  for (const PageOp& op : ops_) {
    w.u64(op.request);
    w.u32(op.tenant);
    w.u8(static_cast<std::uint8_t>(op.kind));
    w.u32(op.addr.channel);
    w.u32(op.addr.chip);
    w.u32(op.addr.plane);
    w.u32(op.addr.block);
    w.u32(op.addr.page);
    w.u64(op.ppn);
    w.u64(op.gc_src);
    w.u32(op.gc_job);
    w.u64(op.lpn);
    w.u64(op.oob_seq);
    w.u64(op.enq_seq);
    w.u64(op.dispatched_at);
    w.u32(op.attempts);
    w.boolean(op.in_use);
  }
  w.vec_u64(free_ops_);
  w.u64(next_enq_seq_);

  // GC job slab. gc_scratch_ is per-round scratch (cleared before each
  // use) and intentionally not captured.
  w.tag("GCJB");
  w.u64(gc_jobs_.size());
  for (const GcJob& j : gc_jobs_) {
    w.u64(j.plane_id);
    w.u32(j.victim);
    w.u32(j.outstanding);
    w.boolean(j.active);
    w.boolean(j.wl_round);
    w.boolean(j.rescue);
  }
  w.vec_u32(gc_job_of_plane_);

  // Write buffer. The map's iteration order is irrelevant on restore
  // (lookups only — the FIFO ring alone decides eviction order), but it is
  // serialized sorted by key so save(load(save(d))) is byte-identical: a
  // reloaded unordered_map need not iterate in the order it was filled.
  w.tag("WBUF");
  // ssdk-lint: allow(unordered-iter): copies the whole map and sorts by
  // key immediately below — the serialized order is hash-independent.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(
      buffer_.begin(), buffer_.end());
  std::sort(entries.begin(), entries.end());
  w.u64(entries.size());
  for (const auto& [key, seq] : entries) {
    w.u64(key);
    w.u64(seq);
  }
  save_ring(w, buffer_fifo_);
  w.u64(buffer_seq_);
  w.u64(buffer_hits_);

  // Metrics and fault RNG.
  metrics_.save_state(w);
  w.tag("FRNG");
  const auto rng_state = fault_rng_.state();
  for (const std::uint64_t word : rng_state) w.u64(word);

  // Power-loss state: flush barriers, power flags, media-loss ledger.
  w.tag("PWRS");
  w.boolean(powered_off_);
  w.boolean(cut_fired_);
  w.u64(flush_barriers_.size());
  for (const FlushBarrier& fb : flush_barriers_) {
    w.u64(fb.request);
    w.u64(fb.threshold);
    w.u32(fb.remaining);
  }
  w.vec_u64(media_lost_keys_);

  // Admission scheduler (writes its own SCHD tag + policy byte).
  sched_->save_state(w);

  w.tag("DONE");
}

void Ssd::load_state(snapshot::StateReader& r) {
  r.tag("SSD_");

  now_ = r.u64();
  events_.load_state(r);
  ftl_.load_state(r);

  r.tag("CHNL");
  const std::uint64_t nchan = r.checked_count(1);
  if (nchan != channels_.size()) {
    throw snapshot::SnapshotError(
        "snapshot: channel count mismatch at offset " +
            std::to_string(r.offset()) + ": expected " +
            std::to_string(channels_.size()) + " (from options), found " +
            std::to_string(nchan),
        r.offset());
  }
  for (ChannelState& c : channels_) {
    c.bus_busy = r.boolean();
    c.bus_free_at = r.u64();
    load_ring(r, c.read_q);
    c.rr_toggle = r.boolean();
    c.queued_writes = r.u32();
  }

  r.tag("UNIT");
  const std::uint64_t nunit = r.checked_count(1);
  if (nunit != units_.size()) {
    throw snapshot::SnapshotError(
        "snapshot: unit count mismatch at offset " +
            std::to_string(r.offset()) + ": expected " +
            std::to_string(units_.size()) + " (from options), found " +
            std::to_string(nunit),
        r.offset());
  }
  for (std::size_t i = 0; i < units_.size(); ++i) {
    UnitState& u = units_[i];
    u.busy = r.boolean();
    u.front_write_seq = r.u64();
    u.busy_until = r.u64();
    load_ring(r, u.read_wait);
    load_ring(r, u.erase_wait);
    load_ring(r, u.write_q);
    // grant_seq_ is derived state, not wire format: rebuild it from the
    // (busy, front_write_seq) pair it mirrors.
    grant_seq_[i] = u.busy ? ~std::uint64_t{0} : u.front_write_seq;
  }
  channel_busy_ns_ = r.vec_u64();
  unit_busy_ns_ = r.vec_u64();

  r.tag("REQS");
  const std::uint64_t nreq =
      r.checked_count(8 + 4 + 1 + 8 + 4 + 8 + 4 + 4 + 4);
  requests_.assign(nreq, RequestState{});
  for (RequestState& rs : requests_) {
    rs.req.id = r.u64();
    rs.req.tenant = r.u32();
    rs.req.type = static_cast<sim::OpType>(r.u8());
    rs.req.lpn = r.u64();
    rs.req.page_count = r.u32();
    rs.req.arrival = r.u64();
    rs.remaining = r.u32();
    rs.failed = r.u32();
    rs.volatile_pages = r.u32();
  }
  arrival_cursor_ = r.u64();
  last_submitted_arrival_ = r.u64();

  r.tag("OPSL");
  const std::uint64_t nops = r.checked_count(8 + 4 + 1 + 5 * 4 + 8 + 8 + 4 +
                                             8 + 8 + 8 + 8 + 4 + 1);
  ops_.assign(nops, PageOp{});
  for (PageOp& op : ops_) {
    op.request = r.u64();
    op.tenant = r.u32();
    op.kind = static_cast<OpKind>(r.u8());
    op.addr.channel = r.u32();
    op.addr.chip = r.u32();
    op.addr.plane = r.u32();
    op.addr.block = r.u32();
    op.addr.page = r.u32();
    op.ppn = r.u64();
    op.gc_src = r.u64();
    op.gc_job = r.u32();
    op.lpn = r.u64();
    op.oob_seq = r.u64();
    op.enq_seq = r.u64();
    op.dispatched_at = r.u64();
    op.attempts = r.u32();
    op.in_use = r.boolean();
  }
  free_ops_ = r.vec_u64();
  next_enq_seq_ = r.u64();

  r.tag("GCJB");
  const std::uint64_t njobs = r.checked_count(8 + 4 + 4 + 1 + 1 + 1);
  gc_jobs_.assign(njobs, GcJob{});
  for (GcJob& j : gc_jobs_) {
    j.plane_id = r.u64();
    j.victim = r.u32();
    j.outstanding = r.u32();
    j.active = r.boolean();
    j.wl_round = r.boolean();
    j.rescue = r.boolean();
  }
  gc_job_of_plane_ = r.vec_u32();
  if (gc_job_of_plane_.size() != options_.geometry.total_planes()) {
    throw snapshot::SnapshotError(
        "snapshot: plane map size mismatch at offset " +
            std::to_string(r.offset()) + ": expected " +
            std::to_string(options_.geometry.total_planes()) +
            " (from options), found " +
            std::to_string(gc_job_of_plane_.size()),
        r.offset());
  }

  r.tag("WBUF");
  const std::uint64_t nbuf = r.checked_count(8 + 8);
  buffer_.clear();
  buffer_.reserve(nbuf);
  for (std::uint64_t i = 0; i < nbuf; ++i) {
    const std::uint64_t key = r.u64();
    const std::uint64_t seq = r.u64();
    buffer_.emplace(key, seq);
  }
  load_ring(r, buffer_fifo_);
  buffer_seq_ = r.u64();
  buffer_hits_ = r.u64();

  metrics_.load_state(r);
  r.tag("FRNG");
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = r.u64();
  fault_rng_.set_state(rng_state);

  r.tag("PWRS");
  powered_off_ = r.boolean();
  cut_fired_ = r.boolean();
  const std::uint64_t nbarriers = r.checked_count(8 + 8 + 4);
  flush_barriers_.assign(nbarriers, FlushBarrier{});
  for (FlushBarrier& fb : flush_barriers_) {
    fb.request = r.u64();
    fb.threshold = r.u64();
    fb.remaining = r.u32();
  }
  media_lost_keys_ = r.vec_u64();

  sched_->load_state(r);

  r.tag("DONE");

  // Observers never survive a restore.
  arrival_hook_ = nullptr;
  completion_hook_ = nullptr;
  power_hook_ = nullptr;
  tracer_ = nullptr;
  ftl_.set_tracer(nullptr, &now_);

  // A snapshot is external input: in checked builds, prove the loaded
  // state is structurally sound before the event loop touches it.
  if (util::kCheckedBuild) check_invariants();
}

}  // namespace ssdk::ssd
