#include "ssd/ssd.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace ssdk::ssd {

using sim::EventKind;
using sim::kNoOp;

namespace {
/// Borrowed top bit of a write-buffer seq value; marks "first FIFO
/// occurrence already kept" during compaction.
constexpr std::uint64_t kBufferKeptBit = 1ULL << 63;
}  // namespace

Ssd::Ssd(SsdOptions options)
    : options_(std::move(options)),
      units_per_channel_(options_.multiplane_program
                             ? options_.geometry.planes_per_channel()
                             : options_.geometry.chips_per_channel),
      unit_shift_(std::has_single_bit(units_per_channel_)
                      ? std::countr_zero(units_per_channel_)
                      : -1),
      ftl_(options_.geometry, options_.ftl),
      channels_(options_.geometry.channels),
      units_(options_.multiplane_program
                 ? options_.geometry.total_planes()
                 : options_.geometry.total_chips()),
      grant_seq_(units_.size(), ~std::uint64_t{0}),
      channel_busy_ns_(options_.geometry.channels, 0),
      unit_busy_ns_(units_.size(), 0),
      gc_job_of_plane_(options_.geometry.total_planes(), kNoJob),
      page_xfer_ns_(options_.timing.page_transfer_ns(options_.geometry)),
      fault_rng_(options_.faults.seed),
      faults_on_(options_.faults.enabled()) {
  options_.faults.validate();
  options_.power.validate();
  sched_ = sched::SchedulerHandle(sched::make_scheduler(options_.sched));
  // SLO targets are construction-time config: they gate violation
  // counting only, never the schedule, and survive fork/restore because
  // both rebuild from the same options.
  for (const auto& share : options_.sched.shares) {
    if (share.slo_target_us > 0) {
      metrics_.set_slo_target_us(share.tenant, share.slo_target_us);
    }
  }
  // OOB metadata must record from the first program; recovery cannot
  // reconstruct pages written before the store was armed.
  if (options_.power.enabled) ftl_.enable_oob();
  if (options_.write_buffer.capacity_pages > 0) {
    buffer_.reserve(options_.write_buffer.capacity_pages);
    buffer_fifo_.reserve(2 * options_.write_buffer.capacity_pages);
  }
}

void Ssd::reserve(std::size_t request_count) {
  requests_.reserve(requests_.size() + request_count);
  // The op slab's high-water mark is the maximum number of *in-flight*
  // page ops, which queueing bounds well below the trace's page count —
  // cap the hint so a long trace doesn't reserve a slab it never fills.
  const std::size_t op_hint =
      std::min<std::size_t>(2 * request_count, std::size_t{1} << 16);
  ops_.reserve(ops_.size() + op_hint);
  free_ops_.reserve(free_ops_.size() + op_hint);
  events_.reserve(std::min<std::size_t>(2 * request_count, 4096));
}

// --- op slab ----------------------------------------------------------------

std::uint64_t Ssd::alloc_op() {
  std::uint64_t id;
  if (!free_ops_.empty()) {
    id = free_ops_.back();
    free_ops_.pop_back();
  } else {
    id = ops_.size();
    ops_.emplace_back();
  }
  PageOp& op = ops_[id];
  op = PageOp{};
  op.in_use = true;
  op.enq_seq = next_enq_seq_++;
  return id;
}

void Ssd::free_op(std::uint64_t id) {
  assert(ops_[id].in_use);
  ops_[id].in_use = false;
  free_ops_.push_back(id);
}

// --- telemetry --------------------------------------------------------------

telemetry::OpClass Ssd::op_class(const PageOp& op) const {
  switch (op.kind) {
    case OpKind::kHostRead: return telemetry::OpClass::kHostRead;
    case OpKind::kHostWrite: return telemetry::OpClass::kHostWrite;
    case OpKind::kGcRead: return telemetry::OpClass::kGcRead;
    case OpKind::kGcWrite: return telemetry::OpClass::kGcWrite;
    case OpKind::kErase: return telemetry::OpClass::kErase;
    case OpKind::kFlushWrite: return telemetry::OpClass::kFlushWrite;
  }
  return telemetry::OpClass::kNone;
}

std::uint64_t Ssd::host_request_id(const PageOp& op) const {
  return op.request == kNoRequest ? telemetry::kNoRequestId
                                  : requests_[op.request].req.id;
}

void Ssd::trace_op_span(telemetry::SpanKind kind, SimTime begin, SimTime end,
                        const PageOp& op, std::uint64_t detail) {
  telemetry::TraceEvent e;
  e.begin = begin;
  e.end = end;
  e.kind = kind;
  e.op = op_class(op);
  e.tenant = op.tenant;
  e.channel = op.addr.channel;
  e.unit = static_cast<std::uint32_t>(unit_of(op.addr));
  e.request_id = host_request_id(op);
  e.detail = detail;
  tracer_->record(e);
}

void Ssd::trace_wait(const PageOp& op) {
  if (now_ > op.dispatched_at) {
    trace_op_span(telemetry::SpanKind::kQueueWait, op.dispatched_at, now_,
                  op);
  }
}

// --- ingestion ----------------------------------------------------------------

void Ssd::submit(std::span<const sim::IoRequest> requests) {
  requests_.reserve(requests_.size() + requests.size());
  for (const auto& r : requests) submit(r);
}

void Ssd::submit(const sim::IoRequest& request) {
  if (request.page_count == 0) {
    throw std::invalid_argument("ssd: request with zero pages");
  }
  if (request.arrival < last_submitted_arrival_) {
    throw std::invalid_argument("ssd: arrivals must be non-decreasing");
  }
  last_submitted_arrival_ = request.arrival;
  requests_.push_back(RequestState{request, request.page_count});
}

void Ssd::run_to_completion() { run_until_arrival(kNoRequest); }

#ifdef SSDK_LOOP_STATS
// Opt-in rdtsc accounting of the replay loop (-DSSDK_LOOP_STATS, x86 only).
// Sampling profilers under-sample this workload badly in containerized
// runs; these counters are the ground truth behind the DESIGN.md §16
// cycle budgets. Printed once from a static destructor at process exit.
#include <x86intrin.h>

#include <cstdio>
namespace {
struct LoopStats {
  std::uint64_t arrivals = 0, arrival_cyc = 0;
  std::uint64_t pops = 0, pop_cyc = 0;
  std::uint64_t kinds[5] = {}, kind_cyc[5] = {};
  std::uint64_t wr_pages = 0, wr_buf_cyc = 0, wr_alloc_cyc = 0,
                wr_disp_cyc = 0, wr_gc_cyc = 0;
  ~LoopStats() {
    if (wr_pages) {
      std::fprintf(stderr,
                   "LOOP wr_pages %llu buf %.0f alloc %.0f disp %.0f gc %.0f "
                   "cyc/page\n",
                   (unsigned long long)wr_pages, (double)wr_buf_cyc / wr_pages,
                   (double)wr_alloc_cyc / wr_pages,
                   (double)wr_disp_cyc / wr_pages, (double)wr_gc_cyc / wr_pages);
    }
    std::fprintf(stderr, "LOOP arrivals %llu cyc/ea %.0f\n",
                 (unsigned long long)arrivals,
                 arrivals ? (double)arrival_cyc / arrivals : 0.0);
    std::fprintf(stderr, "LOOP pops %llu cyc/ea %.0f\n",
                 (unsigned long long)pops, pops ? (double)pop_cyc / pops : 0.0);
    const char* names[5] = {"Arrival", "FlashDone", "BusFree", "BufferDone",
                            "WriteDone"};
    for (int i = 0; i < 5; ++i)
      std::fprintf(stderr, "LOOP %s %llu cyc/ea %.0f total Mcyc %.1f\n",
                   names[i], (unsigned long long)kinds[i],
                   kinds[i] ? (double)kind_cyc[i] / kinds[i] : 0.0,
                   kind_cyc[i] / 1e6);
  }
};
LoopStats g_loop_stats;
}  // namespace
#endif

void Ssd::run_until_arrival(std::uint64_t request_index) {
  if (powered_off_) {
    throw std::logic_error(
        "ssd: device is powered off; call power_on() before running");
  }
  const bool cut_armed = options_.power.cut_scheduled();
  // A device forked (or restored) from a cut inside the arrival hook
  // holds an enqueued-but-unadmitted request; admit it now, at the same
  // simulated instant the source device did after its hook returned.
  pump_scheduler();
  while (arrival_cursor_ < requests_.size() || !events_.empty()) {
    if (cut_armed && !cut_fired_ && maybe_fire_power_cut()) {
      // auto_recover resumed service already; otherwise the run stops
      // dead at the cut and the caller drives power_on().
      if (powered_off_) return;
      continue;
    }
    const bool have_arrival = arrival_cursor_ < requests_.size();
    const bool take_arrival =
        have_arrival &&
        (events_.empty() ||
         requests_[arrival_cursor_].req.arrival <= events_.next_time());
    if (take_arrival) {
      // Stop *before* the target arrival is handled (and before now_
      // advances to it): everything ordered ahead of it has run, nothing
      // at or after it has — the exact cut a fork or snapshot wants.
      if (arrival_cursor_ >= request_index) return;
      now_ = std::max(now_, requests_[arrival_cursor_].req.arrival);
#ifdef SSDK_LOOP_STATS
      const std::uint64_t t0 = __rdtsc();
#endif
      handle_arrival(arrival_cursor_++);
#ifdef SSDK_LOOP_STATS
      ++g_loop_stats.arrivals;
      g_loop_stats.arrival_cyc += __rdtsc() - t0;
#endif
      maybe_audit();
    } else {
#ifdef SSDK_LOOP_STATS
      const std::uint64_t p0 = __rdtsc();
#endif
      const sim::Event e = events_.pop();
#ifdef SSDK_LOOP_STATS
      const std::uint64_t p1 = __rdtsc();
      ++g_loop_stats.pops;
      g_loop_stats.pop_cyc += p1 - p0;
#endif
      now_ = e.time;
      switch (e.kind) {
        case EventKind::kArrival:
          handle_arrival(e.a);
          maybe_audit();
          break;
        case EventKind::kFlashDone:
          handle_flash_done(e.a, e.b);
          break;
        case EventKind::kBusFree:
          handle_bus_free(static_cast<std::uint32_t>(e.a), e.b);
          break;
        case EventKind::kBufferDone:
          handle_buffer_done(e.a, e.b);
          break;
        case EventKind::kWriteDone:
          // Exactly the old BusFree(kNoOp)-then-FlashDone pair, back to
          // back; see try_grant_write.
          handle_write_done(e.a, e.b);
          break;
      }
#ifdef SSDK_LOOP_STATS
      const int k = static_cast<int>(e.kind);
      ++g_loop_stats.kinds[k];
      g_loop_stats.kind_cyc[k] += __rdtsc() - p1;
#endif
    }
  }
}

// --- arrival / dispatch -------------------------------------------------------

void Ssd::handle_arrival(std::uint64_t request_index) {
  RequestState& rs = requests_[request_index];
  // Enqueue before the arrival hook: a fork() taken inside the hook (the
  // keeper's what-if trials) must clone a scheduler that owns this
  // request, or the clone would never service it. Admission still
  // happens after the hook at the same instant, so a strategy switch
  // made by the hook governs this request's placement either way.
  sched_->enqueue(request_index, rs.req.tenant, rs.req.page_count, now_);
  if (arrival_hook_) arrival_hook_(rs.req);
  pump_scheduler();
}

void Ssd::pump_scheduler() {
  // Admissions can complete synchronously (trims, empty flushes), and
  // every completion pumps — the guard collapses those nested pumps into
  // the outer drain loop.
  if (sched_pumping_) return;
  sched_pumping_ = true;
  // RAII reset: a DeviceFullError unwinding out of admit_request must not
  // leave the guard stuck (the runner summarizes the partial run).
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }
  } reset{sched_pumping_};
  sched::Grant grant;
  while (sched_->pick(grant)) {
    if (tracer_ && now_ > grant.enqueued_at) {
      // Admission wait span. Zero-length waits are skipped (like
      // kQueueWait), which keeps the schedule-neutral FIFO default's
      // traces byte-identical to the pre-scheduler refs.
      telemetry::TraceEvent e;
      e.begin = grant.enqueued_at;
      e.end = now_;
      e.kind = telemetry::SpanKind::kSchedWait;
      e.tenant = grant.tenant;
      e.request_id = requests_[grant.request_index].req.id;
      e.detail = grant.decision_seq;
      tracer_->record(e);
    }
    admit_request(grant.request_index);
  }
}

void Ssd::admit_request(std::uint64_t request_index) {
  RequestState& rs = requests_[request_index];
  if (rs.req.type == sim::OpType::kFlush) {
    // Whole-request durability barrier, not a per-page op.
    handle_flush(request_index);
    return;
  }
  for (std::uint32_t i = 0; i < rs.req.page_count; ++i) {
    const std::uint64_t lpn = rs.req.lpn + i;
    const std::uint64_t op_id = alloc_op();
    PageOp& op = ops_[op_id];
    op.request = request_index;
    op.tenant = rs.req.tenant;
    if (rs.req.type == sim::OpType::kTrim) {
      // Metadata-only: no flash op, completes instantly. A dirty buffered
      // copy must be dropped too, or a later flush would resurrect it.
      free_op(op_id);
      if (buffer_.erase(buffer_key(rs.req.tenant, lpn)) > 0) {
        // The key's FIFO entry is now stale; bound the accumulation.
        maybe_compact_buffer_fifo();
      }
      ftl_.trim(rs.req.tenant, lpn);
      if (--rs.remaining == 0) {
        sim::Completion c;
        c.request_id = rs.req.id;
        c.tenant = rs.req.tenant;
        c.type = sim::OpType::kTrim;
        c.arrival = rs.req.arrival;
        c.finish = now_;
        metrics_.record(c);
        if (tracer_) {
          telemetry::TraceEvent e;
          e.begin = rs.req.arrival;
          e.end = now_;
          e.kind = telemetry::SpanKind::kRequest;
          e.op = telemetry::OpClass::kHostTrim;
          e.tenant = rs.req.tenant;
          e.request_id = rs.req.id;
          tracer_->record(e);
        }
        if (completion_hook_) completion_hook_(c);
        sched_->on_complete(rs.req.tenant);
        pump_scheduler();
      }
    } else if (rs.req.type == sim::OpType::kRead) {
      if (buffer_holds(rs.req.tenant, lpn)) {
        // Read hit on a dirty buffered page: served from DRAM.
        free_op(op_id);
        ++buffer_hits_;
        if (tracer_) {
          telemetry::TraceEvent e;
          e.begin = now_;
          e.end = now_ + options_.write_buffer.dram_ns;
          e.kind = telemetry::SpanKind::kBufferHit;
          e.op = telemetry::OpClass::kHostRead;
          e.tenant = rs.req.tenant;
          e.request_id = rs.req.id;
          e.detail = lpn;
          tracer_->record(e);
        }
        events_.push(now_ + options_.write_buffer.dram_ns,
                     EventKind::kBufferDone, request_index, 1);
        continue;
      }
      op.kind = OpKind::kHostRead;
      op.lpn = lpn;
      op.ppn = ftl_.translate_read(rs.req.tenant, lpn);
      op.addr = options_.geometry.decode(op.ppn);
      dispatch_read(op_id);
    } else {
#ifdef SSDK_LOOP_STATS
      ++g_loop_stats.wr_pages;
      const std::uint64_t w0 = __rdtsc();
#endif
      if (buffer_write(rs.req.tenant, lpn)) {
        free_op(op_id);
        // Acked at DRAM latency without touching flash: the completion
        // will be volatile, and a power cut before the eviction lands
        // loses this page (counted per tenant at power_off).
        ++rs.volatile_pages;
        if (tracer_) {
          telemetry::TraceEvent e;
          e.begin = now_;
          e.end = now_ + options_.write_buffer.dram_ns;
          e.kind = telemetry::SpanKind::kBufferHit;
          e.op = telemetry::OpClass::kHostWrite;
          e.tenant = rs.req.tenant;
          e.request_id = rs.req.id;
          e.detail = lpn;
          tracer_->record(e);
        }
        events_.push(now_ + options_.write_buffer.dram_ns,
                     EventKind::kBufferDone, request_index, 1);
        maybe_flush_buffer();
        continue;
      }
      op.kind = OpKind::kHostWrite;
      op.lpn = lpn;
#ifdef SSDK_LOOP_STATS
      const std::uint64_t w1 = __rdtsc();
      g_loop_stats.wr_buf_cyc += w1 - w0;
#endif
      op.ppn = ftl_.allocate_write(rs.req.tenant, lpn, load_view_);
      op.addr = options_.geometry.decode(op.ppn);
      // The OOB seq is drawn in L2P-update order (here, at placement) but
      // recorded on flash only when the program completes — the window in
      // between is exactly what a power cut tears.
      if (ftl_.oob().enabled()) op.oob_seq = ftl_.oob().fresh_seq();
#ifdef SSDK_LOOP_STATS
      const std::uint64_t w2 = __rdtsc();
      g_loop_stats.wr_alloc_cyc += w2 - w1;
#endif
      dispatch_write(op_id);
#ifdef SSDK_LOOP_STATS
      const std::uint64_t w3 = __rdtsc();
      g_loop_stats.wr_disp_cyc += w3 - w2;
#endif
      maybe_start_gc(options_.geometry.plane_id(op.addr));
#ifdef SSDK_LOOP_STATS
      g_loop_stats.wr_gc_cyc += __rdtsc() - w3;
#endif
    }
  }
}

// --- write buffer ---------------------------------------------------------

bool Ssd::buffer_write(sim::TenantId tenant, std::uint64_t lpn) {
  const auto& cfg = options_.write_buffer;
  if (cfg.capacity_pages == 0) return false;
  const std::uint64_t key = buffer_key(tenant, lpn);
  const auto it = buffer_.find(key);
  if (it != buffer_.end()) {
    // Overwrite of a dirty page is absorbed in place.
    ++buffer_hits_;
    return true;
  }
  if (buffer_.size() >= cfg.capacity_pages) return false;
  buffer_.emplace(key, buffer_seq_++);
  buffer_fifo_.push_back(key);
  return true;
}

bool Ssd::buffer_holds(sim::TenantId tenant, std::uint64_t lpn) const {
  // The emptiness probe covers the buffer-disabled case too, and skips
  // the key hash on every read of an unbuffered (or drained) device.
  if (buffer_.empty()) return false;
  return buffer_.contains(buffer_key(tenant, lpn));
}

void Ssd::maybe_compact_buffer_fifo() {
  // Every live key has exactly one *consumable* FIFO occurrence, so the
  // stale surplus is size(fifo) - size(buffer). Compact once stale
  // entries outnumber live ones (with a floor so tiny buffers never
  // bother) — amortized O(1) per trim, and the FIFO stays <= 2x occupancy.
  const std::size_t fifo = buffer_fifo_.size();
  if (fifo >= 64 && fifo > 2 * buffer_.size()) compact_buffer_fifo();
}

void Ssd::compact_buffer_fifo() {
  // Keep only the first occurrence of each live key, in order — exactly
  // the entries lazy eviction would consume — by cycling the ring once.
  // The seen-marker lives in the map values (kBufferKeptBit), so
  // compaction allocates nothing.
  const std::size_t n = buffer_fifo_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = buffer_fifo_.front();
    buffer_fifo_.pop_front();
    const auto it = buffer_.find(key);
    if (it == buffer_.end() || (it->second & kBufferKeptBit) != 0) continue;
    it->second |= kBufferKeptBit;
    buffer_fifo_.push_back(key);
  }
  // ssdk-lint: allow(unordered-iter): clears one bit in every value;
  // per-entry and idempotent, so hash order cannot affect the outcome.
  for (auto& [key, seq] : buffer_) seq &= ~kBufferKeptBit;
}

void Ssd::maybe_flush_buffer() {
  const auto& cfg = options_.write_buffer;
  if (cfg.capacity_pages == 0) return;
  const auto high = static_cast<std::size_t>(
      cfg.high_watermark * static_cast<double>(cfg.capacity_pages));
  if (buffer_.size() <= high) return;
  const auto low = static_cast<std::size_t>(
      cfg.low_watermark * static_cast<double>(cfg.capacity_pages));
  while (buffer_.size() > low && !buffer_fifo_.empty()) {
    const std::uint64_t key = buffer_fifo_.front();
    buffer_fifo_.pop_front();
    if (!buffer_.contains(key)) continue;  // stale entry
    buffer_.erase(key);
    flush_one(static_cast<sim::TenantId>(key >> 40),
              key & ((1ULL << 40) - 1));
  }
}

void Ssd::flush_one(sim::TenantId tenant, std::uint64_t lpn) {
  const std::uint64_t op_id = alloc_op();
  PageOp& op = ops_[op_id];
  op.kind = OpKind::kFlushWrite;
  op.tenant = tenant;
  op.lpn = lpn;
  op.ppn = ftl_.allocate_write(tenant, lpn, load_view_);
  op.addr = options_.geometry.decode(op.ppn);
  if (ftl_.oob().enabled()) op.oob_seq = ftl_.oob().fresh_seq();
  dispatch_write(op_id);
  maybe_start_gc(options_.geometry.plane_id(op.addr));
}

void Ssd::flush_write_buffer() {
  while (!buffer_fifo_.empty()) {
    const std::uint64_t key = buffer_fifo_.front();
    buffer_fifo_.pop_front();
    if (!buffer_.contains(key)) continue;
    buffer_.erase(key);
    flush_one(static_cast<sim::TenantId>(key >> 40),
              key & ((1ULL << 40) - 1));
  }
}

void Ssd::handle_flush(std::uint64_t request_index) {
  // Durability barrier: evict every dirty buffered page to flash, then
  // hold the request until every flush-triggered program enqueued before
  // the fence — including evictions already in flight from watermark
  // flushing — has settled. Host writes racing past the barrier are NOT
  // waited on (fsync semantics: only previously acked data is fenced).
  flush_write_buffer();
  const std::uint64_t threshold = next_enq_seq_;
  std::uint32_t remaining = 0;
  for (const PageOp& op : ops_) {
    if (op.in_use && op.kind == OpKind::kFlushWrite &&
        op.enq_seq < threshold) {
      ++remaining;
    }
  }
  if (remaining == 0) {
    // Nothing volatile and nothing in flight: completes instantly, like a
    // no-op trim.
    complete_request_page(request_index);
    return;
  }
  flush_barriers_.push_back(FlushBarrier{request_index, threshold, remaining});
}

void Ssd::settle_flush_barriers(std::uint64_t enq_seq) {
  if (flush_barriers_.empty()) return;
  for (std::size_t i = 0; i < flush_barriers_.size();) {
    FlushBarrier& fb = flush_barriers_[i];
    if (enq_seq < fb.threshold && --fb.remaining == 0) {
      const std::uint64_t request_index = fb.request;
      flush_barriers_.erase(flush_barriers_.begin() +
                            static_cast<std::ptrdiff_t>(i));
      complete_request_page(request_index);
    } else {
      ++i;
    }
  }
}

void Ssd::handle_buffer_done(std::uint64_t request_index,
                             std::uint64_t pages) {
  for (std::uint64_t i = 0; i < pages; ++i) {
    complete_request_page(request_index);
  }
}

void Ssd::dispatch_read(std::uint64_t op_id) {
  PageOp& op = ops_[op_id];
  op.dispatched_at = now_;
  const std::uint64_t unit = unit_of(op.addr);
  ++metrics_.counters().page_ops;
  if (!units_[unit].busy) {
    start_array_read(unit, op_id);
  } else {
    metrics_.count_conflict();
    units_[unit].read_wait.push_back(op_id);
  }
}

void Ssd::dispatch_write(std::uint64_t op_id) {
  PageOp& op = ops_[op_id];
  op.dispatched_at = now_;
  const std::uint64_t unit = unit_of(op.addr);
  ++metrics_.counters().page_ops;
  if (channels_[op.addr.channel].bus_busy || units_[unit].busy) {
    metrics_.count_conflict();
  }
  UnitState& u = units_[unit];
  u.write_q.push_back(op_id);
  if (u.write_q.size() == 1) {
    u.front_write_seq = op.enq_seq;
    if (!u.busy) grant_seq_[unit] = op.enq_seq;
  }
  ++channels_[op.addr.channel].queued_writes;
  arbitrate(op.addr.channel);
}

void Ssd::dispatch_erase(std::uint64_t op_id) {
  PageOp& op = ops_[op_id];
  const std::uint64_t unit = unit_of(op.addr);
  ++metrics_.counters().page_ops;
  if (!units_[unit].busy) {
    start_erase(unit, op_id);
  } else {
    metrics_.count_conflict();
    units_[unit].erase_wait.push_back(op_id);
  }
}

void Ssd::start_array_read(std::uint64_t unit, std::uint64_t op_id) {
  metrics_.counters().read_wait_ns += now_ - ops_[op_id].dispatched_at;
  ++metrics_.counters().read_ops_started;
  if (tracer_) {
    trace_wait(ops_[op_id]);
    trace_op_span(telemetry::SpanKind::kFlashRead, now_,
                  now_ + options_.timing.read_ns, ops_[op_id]);
  }
  UnitState& u = units_[unit];
  assert(!u.busy);
  u.busy = true;
  grant_seq_[unit] = ~std::uint64_t{0};
  u.busy_until = now_ + options_.timing.read_ns;
  metrics_.counters().chip_busy_ns += options_.timing.read_ns;
  unit_busy_ns_[unit] += options_.timing.read_ns;
  events_.push(u.busy_until, EventKind::kFlashDone, unit, op_id);
}

void Ssd::start_erase(std::uint64_t unit, std::uint64_t op_id) {
  if (tracer_) {
    trace_op_span(telemetry::SpanKind::kFlashErase, now_,
                  now_ + options_.timing.erase_ns, ops_[op_id],
                  ops_[op_id].addr.block);
  }
  UnitState& u = units_[unit];
  assert(!u.busy);
  u.busy = true;
  grant_seq_[unit] = ~std::uint64_t{0};
  u.busy_until = now_ + options_.timing.erase_ns;
  metrics_.counters().chip_busy_ns += options_.timing.erase_ns;
  unit_busy_ns_[unit] += options_.timing.erase_ns;
  events_.push(u.busy_until, EventKind::kFlashDone, unit, op_id);
}

bool Ssd::unit_next(std::uint64_t unit) {
  UnitState& u = units_[unit];
  if (u.busy) return false;
  if (!u.read_wait.empty()) {
    const std::uint64_t op_id = u.read_wait.front();
    u.read_wait.pop_front();
    start_array_read(unit, op_id);
    return false;
  }
  if (!u.erase_wait.empty()) {
    const std::uint64_t op_id = u.erase_wait.front();
    u.erase_wait.pop_front();
    start_erase(unit, op_id);
    return false;
  }
  // A queued write may now be grantable; let the channel decide.
  arbitrate(channel_of_unit(unit));
  return true;
}

bool Ssd::write_grantable(std::uint32_t channel) const {
  if (channels_[channel].queued_writes == 0) return false;
  const std::uint64_t base = first_unit(channel);
  const std::uint64_t count = units_per_channel();
  for (std::uint64_t i = 0; i < count; ++i) {
    // grant_seq_ is all-ones exactly when the unit is busy or has no
    // queued write — a single dense load replaces the UnitState probe.
    if (grant_seq_[base + i] != ~std::uint64_t{0}) return true;
  }
  return false;
}

void Ssd::arbitrate(std::uint32_t channel) {
  ChannelState& ch = channels_[channel];
  if (ch.bus_busy) return;
  const bool read_ready = !ch.read_q.empty();
  if (options_.read_priority) {
    // Reads preempt writes unconditionally, so the write queues only
    // matter when no read is ready — and try_grant_write performs that
    // scan itself (returning false with no side effects when nothing is
    // grantable). Skipping the write_grantable pre-scan here halves the
    // arbitration cost on the default configuration.
    if (read_ready) {
      grant_read_transfer(channel);
    } else if (ch.queued_writes != 0) {
      try_grant_write(channel);
    }
    return;
  }

  const bool write_ready = write_grantable(channel);
  if (!read_ready && !write_ready) return;

  bool grant_read;
  if (read_ready && write_ready) {
    // Fair mode: alternate between classes when both are ready.
    grant_read = ch.rr_toggle;
    ch.rr_toggle = !ch.rr_toggle;
  } else {
    grant_read = read_ready;
  }

  if (grant_read) {
    grant_read_transfer(channel);
  } else {
    try_grant_write(channel);
  }
}

void Ssd::grant_read_transfer(std::uint32_t channel) {
  ChannelState& ch = channels_[channel];
  assert(!ch.bus_busy && !ch.read_q.empty());
  const std::uint64_t op_id = ch.read_q.front();
  ch.read_q.pop_front();
  if (tracer_) {
    trace_op_span(telemetry::SpanKind::kBusTransfer, now_,
                  now_ + page_xfer_ns_, ops_[op_id]);
  }
  ch.bus_busy = true;
  ch.bus_free_at = now_ + page_xfer_ns_;
  metrics_.counters().bus_busy_ns += page_xfer_ns_;
  channel_busy_ns_[channel] += page_xfer_ns_;
  // The unit is held while its page register is shifted out.
  const std::uint64_t held_unit = unit_of(ops_[op_id].addr);
  UnitState& u = units_[held_unit];
  assert(u.busy);
  u.busy_until = ch.bus_free_at;
  metrics_.counters().chip_busy_ns += page_xfer_ns_;
  unit_busy_ns_[held_unit] += page_xfer_ns_;
  events_.push(ch.bus_free_at, EventKind::kBusFree, channel, op_id);
}

bool Ssd::try_grant_write(std::uint32_t channel) {
  ChannelState& ch = channels_[channel];
  assert(!ch.bus_busy);
  if (ch.queued_writes == 0) return false;
  const std::uint64_t base = first_unit(channel);
  const std::uint64_t count = units_per_channel();

  // Oldest queued write among units that are currently free. grant_seq_
  // is all-ones for busy units and empty queues, so they lose every
  // comparison without touching their UnitState at all — the scan reads
  // one dense cache line per channel.
  std::uint64_t best_unit = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t s = grant_seq_[base + i];
    if (s < best_seq) {
      best_seq = s;
      best_unit = base + i;
    }
  }
  if (best_unit == std::numeric_limits<std::uint64_t>::max()) return false;

  UnitState& u = units_[best_unit];
  const std::uint64_t op_id = u.write_q.front();
  u.write_q.pop_front();
  u.front_write_seq = u.write_q.empty()
                          ? ~std::uint64_t{0}
                          : ops_[u.write_q.front()].enq_seq;
  grant_seq_[best_unit] = ~std::uint64_t{0};  // the unit goes busy below
  --ch.queued_writes;
  metrics_.counters().write_wait_ns += now_ - ops_[op_id].dispatched_at;
  ++metrics_.counters().write_ops_started;

  const Duration service = page_xfer_ns_ + options_.timing.program_ns;
  // Basic command set: the bus is occupied until the program finishes;
  // pipelined mode releases it after the data transfer.
  const Duration bus_hold =
      options_.pipelined_writes ? page_xfer_ns_ : service;
  if (tracer_) {
    trace_wait(ops_[op_id]);
    trace_op_span(telemetry::SpanKind::kBusTransfer, now_, now_ + bus_hold,
                  ops_[op_id]);
    trace_op_span(telemetry::SpanKind::kFlashProgram, now_, now_ + service,
                  ops_[op_id]);
  }
  ch.bus_busy = true;
  ch.bus_free_at = now_ + bus_hold;
  metrics_.counters().bus_busy_ns += bus_hold;
  channel_busy_ns_[channel] += bus_hold;
  // Basic command set: bus release and program completion coincide
  // (bus_hold == service), and the two events would carry adjacent seqs,
  // so no third event can ever pop between them — fold them into one
  // kWriteDone and halve this op's heap traffic. Pipelined mode keeps
  // the separate events (the bus frees mid-program).
  const bool pipelined = options_.pipelined_writes;
  if (pipelined) {
    events_.push(ch.bus_free_at, EventKind::kBusFree, channel, kNoOp);
  }

  u.busy = true;
  u.busy_until = now_ + service;
  metrics_.counters().chip_busy_ns += service;
  unit_busy_ns_[best_unit] += service;
  events_.push(u.busy_until,
               pipelined ? EventKind::kFlashDone : EventKind::kWriteDone,
               best_unit, op_id);
  return true;
}

// --- event handlers -------------------------------------------------------------

void Ssd::handle_write_done(std::uint64_t unit, std::uint64_t op_id) {
  const std::uint32_t channel = channel_of_unit(unit);
  channels_[channel].bus_busy = false;
  arbitrate(channel);
  handle_flash_done(unit, op_id);
}

void Ssd::handle_flash_done(std::uint64_t unit, std::uint64_t op_id) {
  PageOp& op = ops_[op_id];
  switch (op.kind) {
    case OpKind::kHostRead:
    case OpKind::kGcRead:
      // Array read (or retry re-sense) done; data sits in the page
      // register. The unit stays held until the bus moves the data out.
      channels_[op.addr.channel].read_q.push_back(op_id);
      arbitrate(op.addr.channel);
      break;
    case OpKind::kHostWrite:
    case OpKind::kFlushWrite:
    case OpKind::kGcWrite: {
      units_[unit].busy = false;
      grant_seq_[unit] = units_[unit].front_write_seq;
      bool fault = false;
      bool program_failed = false;
      if (faults_on_) {
        program_failed = draw_fault(options_.faults.program_fail);
        // A successful program into a block that was retired while this
        // write was in flight must not leave data behind either.
        fault = program_failed ||
                ftl_.blocks().block_state(
                    options_.geometry.plane_id(op.addr), op.addr.block) ==
                    ftl::BlockState::kRetired;
      }
      // The physical program finished (well or badly): its OOB is now
      // determined, even when the logical outcome below is a re-place.
      if (ftl_.oob().enabled()) record_program_oob(op, program_failed);
      if (fault) {
        handle_write_fault(op_id, program_failed);
      } else if (op.kind == OpKind::kHostWrite) {
        finish_host_op(op_id);
      } else if (op.kind == OpKind::kFlushWrite) {
        const std::uint64_t enq_seq = op.enq_seq;
        free_op(op_id);
        settle_flush_barriers(enq_seq);
      } else {
        on_gc_write_done(op_id);
      }
      unit_next(unit);
      break;
    }
    case OpKind::kErase:
      units_[unit].busy = false;
      grant_seq_[unit] = units_[unit].front_write_seq;
      on_erase_done(op_id);
      unit_next(unit);
      break;
  }
}

void Ssd::handle_bus_free(std::uint32_t channel, std::uint64_t op_id) {
  channels_[channel].bus_busy = false;
  if (op_id != kNoOp) {
    // A read transfer finished: release the unit, run the ECC check, and
    // complete (or retry) the op.
    PageOp& op = ops_[op_id];
    const std::uint64_t unit = unit_of(op.addr);
    units_[unit].busy = false;
    grant_seq_[unit] = units_[unit].front_write_seq;
    // The unit lives on `channel`, so when unit_next falls through to
    // arbitration it already covers this channel — arbitrating again
    // would re-scan the queues only to no-op.
    bool arbitrated = false;
    if (read_ecc_failed(op)) {
      if (op.attempts < options_.faults.max_read_retries) {
        start_read_retry(unit, op_id);  // unit is re-occupied
      } else {
        handle_uncorrectable_read(op_id);
        arbitrated = unit_next(unit);
      }
    } else {
      if (op.kind == OpKind::kHostRead) {
        finish_host_op(op_id);
      } else {
        on_gc_read_done(op_id);
      }
      arbitrated = unit_next(unit);
    }
    if (arbitrated) return;
  }
  arbitrate(channel);
}

// --- OOB metadata (power model) ---------------------------------------------

void Ssd::record_program_oob(const PageOp& op, bool program_failed) {
  ftl::OobStore& oob = ftl_.oob();
  if (program_failed) {
    // The program corrupted the page; nothing readable landed.
    oob.record_failed(op.ppn);
  } else if (op.kind == OpKind::kGcWrite) {
    if (oob.state(op.gc_src) == ftl::OobState::kData) {
      // A migrated page is the same logical version: copy src OOB verbatim
      // (same seq — recovery breaks the tie toward the lower PPN, so a
      // crash between copy and erase neither loses nor double-counts it).
      oob.record_migration(op.gc_src, op.ppn);
    } else {
      record_resolved_migration_oob(op);
    }
  } else {
    oob.record_program(op.ppn, op.tenant, op.lpn, op.oob_seq);
  }
}

void Ssd::record_resolved_migration_oob(const PageOp& op) {
  // Rare: the migration source's own program is still in flight — a full
  // (or freshly retired) victim can hold allocated-but-unprogrammed pages,
  // and the copy can land first. The copied version is still well-defined,
  // so take its identity from the pending program itself; marking the copy
  // unreadable instead would lose an acked write whose source copy gets
  // erased with the victim before a cut.
  ftl::OobStore& oob = ftl_.oob();
  for (const PageOp& other : ops_) {
    if (!other.in_use || other.ppn != op.gc_src) continue;
    if (other.kind == OpKind::kHostWrite ||
        other.kind == OpKind::kFlushWrite) {
      oob.record_program(op.ppn, other.tenant, other.lpn, other.oob_seq);
      return;
    }
    if (other.kind == OpKind::kGcWrite &&
        oob.state(other.gc_src) == ftl::OobState::kData) {
      oob.record_migration(other.gc_src, op.ppn);
      return;
    }
  }
  // No pending program resolves the version (torn or failed source): the
  // copy carried garbage — consumed, no readable OOB.
  oob.record_failed(op.ppn);
}

// --- fault injection --------------------------------------------------------

bool Ssd::draw_fault(double p) {
  if (p <= 0.0) return false;
  return fault_rng_.bernoulli(p);
}

bool Ssd::read_ecc_failed(const PageOp& op) {
  if (!faults_on_) return false;
  const std::uint64_t plane = options_.geometry.plane_id(op.addr);
  return draw_fault(options_.faults.read_fail_prob(
      ftl_.blocks().erase_count(plane, op.addr.block)));
}

void Ssd::start_read_retry(std::uint64_t unit, std::uint64_t op_id) {
  PageOp& op = ops_[op_id];
  ++op.attempts;
  const Duration sense = options_.timing.read_retry_ns(op.attempts);
  // The retry will re-occupy the unit for the sense and the bus for
  // another transfer-out; both are attributed as retry-induced wait.
  metrics_.record_read_retry(op.tenant, sense + page_xfer_ns_);
  if (tracer_) {
    trace_op_span(telemetry::SpanKind::kRetrySense, now_, now_ + sense, op,
                  op.attempts);
  }
  UnitState& u = units_[unit];
  assert(!u.busy);
  u.busy = true;
  grant_seq_[unit] = ~std::uint64_t{0};
  u.busy_until = now_ + sense;
  metrics_.counters().chip_busy_ns += sense;
  unit_busy_ns_[unit] += sense;
  events_.push(u.busy_until, EventKind::kFlashDone, unit, op_id);
}

void Ssd::handle_uncorrectable_read(std::uint64_t op_id) {
  PageOp& op = ops_[op_id];
  metrics_.record_uncorrectable_read(op.tenant);
  if (op.kind == OpKind::kHostRead) {
    const std::uint64_t request_index = op.request;
    free_op(op_id);
    complete_request_page(request_index, /*failed=*/true);
    return;
  }
  // A migration source that cannot be read is lost data: drop it so the
  // victim block still drains to zero valid pages.
  ++metrics_.counters().lost_pages;
  if (ftl_.oob().enabled() && ftl_.blocks().is_valid(op.ppn)) {
    // The crash-fuzz oracle must not blame recovery for data the media
    // itself destroyed — remember which durable key just died.
    const ftl::PageOwner owner = ftl_.blocks().owner(op.ppn);
    media_lost_keys_.push_back(
        ftl::OobStore::pack_owner(owner.tenant, owner.lpn));
  }
  ftl_.drop_lost_page(op.ppn);
  const std::uint32_t job_index = op.gc_job;
  free_op(op_id);
  gc_settle(job_index);
}

void Ssd::handle_write_fault(std::uint64_t op_id, bool program_failed) {
  // retire_and_rescue below spawns rescue ops and can grow the op slab,
  // invalidating any PageOp reference held across it — copy first.
  const PageOp snap = ops_[op_id];
  const std::uint64_t plane = options_.geometry.plane_id(snap.addr);
  const std::uint32_t block = snap.addr.block;

  // Undo the bad placement first so a retirement rescue below never
  // snapshots the failed page as rescuable. (GC writes install their
  // mapping only at complete_migration, so there is nothing to undo.)
  bool rewrite = true;
  if (snap.kind != OpKind::kGcWrite) {
    rewrite = ftl_.discard_failed_program(snap.tenant, snap.lpn, snap.ppn);
  }

  if (program_failed) {
    metrics_.record_program_retry(snap.tenant);
    const auto fails = ftl_.record_program_fail(plane, block);
    if (fails >= options_.faults.program_fails_to_retire &&
        ftl_.blocks().block_state(plane, block) !=
            ftl::BlockState::kRetired) {
      retire_and_rescue(plane, block);
    }
  }

  if (snap.kind == OpKind::kGcWrite) {
    const sim::Ppn dst = migration_target(gc_jobs_[snap.gc_job]);
    PageOp& op = ops_[op_id];
    op.ppn = dst;
    op.addr = options_.geometry.decode(dst);
    dispatch_write(op_id);
    return;
  }
  if (!rewrite) {
    // The LPN was overwritten while this program was in flight; the newer
    // write carries the data, so the failed op just completes.
    if (snap.kind == OpKind::kHostWrite) {
      finish_host_op(op_id);
    } else {
      free_op(op_id);
      settle_flush_barriers(snap.enq_seq);
    }
    return;
  }
  const sim::Ppn ppn = ftl_.rewrite_page(snap.tenant, snap.lpn, snap.addr);
  PageOp& op = ops_[op_id];
  op.ppn = ppn;
  op.addr = options_.geometry.decode(ppn);
  // The re-place re-installed the mapping: a newer version as far as the
  // OOB is concerned, so it gets a fresh sequence number.
  if (ftl_.oob().enabled()) op.oob_seq = ftl_.oob().fresh_seq();
  dispatch_write(op_id);
  maybe_start_gc(options_.geometry.plane_id(op.addr));
}

sim::Ppn Ssd::migration_target(const GcJob& job) {
  sim::Ppn dst = job.rescue ? ftl_.allocate_rescue(job.plane_id)
                            : ftl_.allocate_migration(job.plane_id);
  if (dst == sim::kInvalidPpn && !job.rescue && faults_on_) {
    // Retirement can eat a plane's GC headroom out from under an episode;
    // losing plane locality beats aborting the replay.
    dst = ftl_.allocate_rescue(job.plane_id);
  }
  if (dst == sim::kInvalidPpn) {
    if (faults_on_) throw ftl::DeviceFullError();
    throw std::logic_error(
        "ssd: GC cannot allocate a migration target; raise "
        "gc_trigger_free_blocks");
  }
  return dst;
}

void Ssd::retire_and_rescue(std::uint64_t plane_id, std::uint32_t block) {
  ftl_.retire_block(plane_id, block);
  ++metrics_.counters().retired_blocks;
  start_rescue(plane_id, block);
}

void Ssd::start_rescue(std::uint64_t plane_id, std::uint32_t block) {
  const std::uint32_t job_index = acquire_gc_job();
  GcJob& job = gc_jobs_[job_index];
  job = GcJob{};
  job.plane_id = plane_id;
  job.active = true;
  job.rescue = true;
  start_round_on_victim(job_index, block);
}

// --- completions ------------------------------------------------------------------

void Ssd::finish_host_op(std::uint64_t op_id) {
  const std::uint64_t request_index = ops_[op_id].request;
  free_op(op_id);
  complete_request_page(request_index);
}

void Ssd::complete_request_page(std::uint64_t request_index, bool failed) {
  RequestState& rs = requests_[request_index];
  assert(rs.remaining > 0);
  if (failed) ++rs.failed;
  if (--rs.remaining == 0) {
    sim::Completion c;
    c.request_id = rs.req.id;
    c.tenant = rs.req.tenant;
    c.type = rs.req.type;
    c.arrival = rs.req.arrival;
    c.finish = now_;
    c.status = rs.failed ? sim::IoStatus::kUncorrectable : sim::IoStatus::kOk;
    c.failed_pages = rs.failed;
    c.volatile_pages = rs.volatile_pages;
    metrics_.record(c);
    if (tracer_) {
      telemetry::TraceEvent e;
      e.begin = rs.req.arrival;
      e.end = now_;
      e.kind = telemetry::SpanKind::kRequest;
      e.op = rs.req.type == sim::OpType::kRead
                 ? telemetry::OpClass::kHostRead
                 : rs.req.type == sim::OpType::kFlush
                       ? telemetry::OpClass::kHostFlush
                       : telemetry::OpClass::kHostWrite;
      e.tenant = rs.req.tenant;
      e.request_id = rs.req.id;
      e.detail = rs.failed;
      tracer_->record(e);
    }
    if (completion_hook_) completion_hook_(c);
    // The finished request leaves the admission window; grant whatever
    // the policy lines up next (no-op while this completion happened
    // inside an admission — the outer pump continues the drain).
    sched_->on_complete(rs.req.tenant);
    pump_scheduler();
  }
}

void Ssd::on_gc_read_done(std::uint64_t op_id) {
  PageOp& op = ops_[op_id];
  const std::uint32_t job_index = op.gc_job;
  GcJob& job = gc_jobs_[job_index];
  const sim::Ppn src = op.ppn;
  free_op(op_id);

  const sim::Ppn dst = migration_target(job);
  const std::uint64_t write_id = alloc_op();
  PageOp& w = ops_[write_id];
  w.kind = OpKind::kGcWrite;
  w.tenant = sim::kInternalTenant;
  w.ppn = dst;
  w.addr = options_.geometry.decode(dst);
  w.gc_src = src;
  w.gc_job = job_index;
  ++(job.rescue ? metrics_.counters().rescue_migrations
                : metrics_.counters().gc_migrations);
  dispatch_write(write_id);
}

void Ssd::on_gc_write_done(std::uint64_t op_id) {
  PageOp& op = ops_[op_id];
  ftl_.complete_migration(op.gc_src, op.ppn);
  const std::uint32_t job_index = op.gc_job;
  free_op(op_id);
  gc_settle(job_index);
}

void Ssd::gc_settle(std::uint32_t job_index) {
  GcJob& job = gc_jobs_[job_index];
  assert(job.outstanding > 0);
  if (--job.outstanding > 0) return;
  if (job.rescue) {
    // Stragglers (host writes in flight when the block was retired) may
    // have been redirected after our snapshot; re-scan until the retired
    // block is truly empty. Rescues never erase their victim.
    start_round_on_victim(job_index, job.victim);
    return;
  }
  if (ftl_.blocks().block_state(job.plane_id, job.victim) ==
      ftl::BlockState::kRetired) {
    // A late program failure retired the victim mid-episode (its own
    // rescue drained it); there is nothing left to erase.
    finish_gc_episode(job_index);
    return;
  }
  // All survivors moved; the victim is now fully invalid.
  const std::uint64_t erase_id = alloc_op();
  PageOp& e = ops_[erase_id];
  e.kind = OpKind::kErase;
  e.tenant = sim::kInternalTenant;
  e.addr = block_addr(job.plane_id, job.victim);
  e.gc_job = job_index;
  dispatch_erase(erase_id);
}

void Ssd::on_erase_done(std::uint64_t op_id) {
  PageOp& op = ops_[op_id];
  const std::uint32_t job_index = op.gc_job;
  GcJob& job = gc_jobs_[job_index];
  const std::uint64_t plane = job.plane_id;

  if (faults_on_ && ftl_.blocks().block_state(plane, job.victim) ==
                        ftl::BlockState::kRetired) {
    // Retired while the erase was queued or in flight; drop the erase.
    free_op(op_id);
    finish_gc_episode(job_index);
    return;
  }

  if (faults_on_ && draw_fault(options_.faults.erase_fail)) {
    ++metrics_.counters().erase_fails;
    const auto fails = ftl_.record_erase_fail(plane, job.victim);
    if (fails < options_.faults.erase_fails_to_retire) {
      dispatch_erase(op_id);  // retry the erase in place
      return;
    }
    free_op(op_id);
    // The victim is fully invalid (survivors already migrated), so
    // retirement needs no rescue; the block just leaves rotation.
    ftl_.retire_block(plane, job.victim);
    ++metrics_.counters().retired_blocks;
    finish_gc_episode(job_index);
    return;
  }

  ftl_.erase_block(plane, job.victim);
  ++metrics_.counters().erases;
  free_op(op_id);
  if (faults_on_ && options_.faults.max_pe_cycles > 0 &&
      ftl_.blocks().erase_count(plane, job.victim) >=
          options_.faults.max_pe_cycles) {
    // Endurance limit reached: the freshly erased (clean) block retires.
    ftl_.retire_block(plane, job.victim);
    ++metrics_.counters().retired_blocks;
  }
  finish_gc_episode(job_index);
}

void Ssd::finish_gc_episode(std::uint32_t job_index) {
  GcJob& job = gc_jobs_[job_index];
  const std::uint64_t plane = job.plane_id;
  if (!ftl_.gc_satisfied(plane)) {
    start_gc_round(job_index);  // another victim in the same plane
    return;
  }
  // Space pressure resolved; give static wear leveling one rotation per
  // episode, and only with a full block of free headroom (a fully-valid
  // cold victim transiently consumes a block's worth of pages before its
  // erase returns one).
  if (!job.wl_round &&
      ftl_.blocks().free_blocks(plane) >
          ftl_.config().gc_target_free_blocks) {
    if (const auto cold = ftl_.wear_leveling_candidate(plane)) {
      job.wl_round = true;
      start_round_on_victim(job_index, *cold);
      return;
    }
  }
  job.active = false;
  gc_job_of_plane_[plane] = kNoJob;
}

// --- garbage collection -----------------------------------------------------------

std::uint32_t Ssd::acquire_gc_job() {
  for (std::uint32_t i = 0; i < gc_jobs_.size(); ++i) {
    if (!gc_jobs_[i].active) return i;
  }
  gc_jobs_.emplace_back();
  return static_cast<std::uint32_t>(gc_jobs_.size() - 1);
}

void Ssd::maybe_start_gc(std::uint64_t plane_id) {
  if (!options_.gc_enabled) return;
  if (gc_job_of_plane_[plane_id] != kNoJob) return;
  if (!ftl_.needs_gc(plane_id)) return;

  const std::uint32_t job_index = acquire_gc_job();
  GcJob& job = gc_jobs_[job_index];
  job = GcJob{};
  job.plane_id = plane_id;
  job.active = true;
  gc_job_of_plane_[plane_id] = job_index;
  start_gc_round(job_index);
}

void Ssd::start_gc_round(std::uint32_t job_index) {
  GcJob& job = gc_jobs_[job_index];
  const auto victim = ftl_.select_victim(job.plane_id);
  if (!victim) {
    // Nothing reclaimable (all Full blocks fully valid, or none Full).
    job.active = false;
    gc_job_of_plane_[job.plane_id] = kNoJob;
    return;
  }
  start_round_on_victim(job_index, *victim);
}

void Ssd::start_round_on_victim(std::uint32_t job_index,
                                std::uint32_t victim) {
  GcJob& job = gc_jobs_[job_index];
  job.victim = victim;
  // Reusable scratch: dispatch below never re-enters GC round setup, so
  // one survivor list serves every round without allocating.
  std::vector<sim::Ppn>& survivors = gc_scratch_;
  ftl_.valid_pages_into(job.plane_id, job.victim, survivors);
  job.outstanding = static_cast<std::uint32_t>(survivors.size());
  if (survivors.empty()) {
    if (job.rescue) {
      // Retired block fully drained; it stays kRetired forever.
      job.active = false;
      return;
    }
    const std::uint64_t erase_id = alloc_op();
    PageOp& e = ops_[erase_id];
    e.kind = OpKind::kErase;
    e.tenant = sim::kInternalTenant;
    e.addr = block_addr(job.plane_id, job.victim);
    e.gc_job = job_index;
    dispatch_erase(erase_id);
    return;
  }
  for (const sim::Ppn src : survivors) {
    const std::uint64_t read_id = alloc_op();
    PageOp& r = ops_[read_id];
    r.kind = OpKind::kGcRead;
    r.tenant = sim::kInternalTenant;
    r.ppn = src;
    r.addr = options_.geometry.decode(src);
    r.gc_job = job_index;
    dispatch_read(read_id);
  }
}

sim::PhysAddr Ssd::block_addr(std::uint64_t plane_id,
                              std::uint32_t block) const {
  const auto& g = options_.geometry;
  sim::PhysAddr a;
  const auto chip = static_cast<std::uint32_t>(plane_id / g.planes_per_chip);
  a.plane = static_cast<std::uint32_t>(plane_id % g.planes_per_chip);
  a.channel = chip / g.chips_per_channel;
  a.chip = chip % g.chips_per_channel;
  a.block = block;
  a.page = 0;
  return a;
}

// --- load introspection -----------------------------------------------------------

double Ssd::channel_utilization(std::uint32_t channel) const {
  if (now_ == 0) return 0.0;
  return static_cast<double>(channel_busy_ns_.at(channel)) /
         static_cast<double>(now_);
}

Duration Ssd::plane_backlog_ns(std::uint64_t global_plane_id) const {
  // Map the plane to its execution unit under the current granularity.
  const std::uint64_t unit =
      options_.multiplane_program
          ? global_plane_id
          : global_plane_id / options_.geometry.planes_per_chip;
  const UnitState& u = units_[unit];
  Duration backlog = 0;
  if (u.busy && u.busy_until > now_) backlog += u.busy_until - now_;
  backlog += static_cast<Duration>(u.read_wait.size()) *
             (options_.timing.read_ns + page_xfer_ns_);
  backlog += static_cast<Duration>(u.write_q.size()) *
             (page_xfer_ns_ + options_.timing.program_ns);
  backlog += static_cast<Duration>(u.erase_wait.size()) *
             options_.timing.erase_ns;
  return backlog;
}

Duration Ssd::channel_backlog_ns(std::uint32_t channel) const {
  const ChannelState& ch = channels_[channel];
  Duration backlog = 0;
  if (ch.bus_busy && ch.bus_free_at > now_) backlog += ch.bus_free_at - now_;
  backlog += static_cast<Duration>(ch.read_q.size()) * page_xfer_ns_;
  const std::uint64_t base = first_unit(channel);
  const std::uint64_t count = units_per_channel();
  for (std::uint64_t i = 0; i < count; ++i) {
    backlog += static_cast<Duration>(units_[base + i].write_q.size()) *
               page_xfer_ns_;
  }
  return backlog;
}

Duration Ssd::chip_backlog_ns(std::uint32_t global_chip_id) const {
  if (!options_.multiplane_program) {
    // The chip is the execution unit.
    const UnitState& u = units_[global_chip_id];
    Duration backlog = 0;
    if (u.busy && u.busy_until > now_) backlog += u.busy_until - now_;
    backlog += static_cast<Duration>(u.read_wait.size()) *
               (options_.timing.read_ns + page_xfer_ns_);
    backlog += static_cast<Duration>(u.write_q.size()) *
               (page_xfer_ns_ + options_.timing.program_ns);
    backlog += static_cast<Duration>(u.erase_wait.size()) *
               options_.timing.erase_ns;
    return backlog;
  }
  const auto& g = options_.geometry;
  const std::uint64_t base =
      static_cast<std::uint64_t>(global_chip_id) * g.planes_per_chip;
  // Least-loaded plane of the chip dominates where the next write lands.
  Duration best = std::numeric_limits<Duration>::max();
  for (std::uint32_t i = 0; i < g.planes_per_chip; ++i) {
    best = std::min(best, plane_backlog_ns(base + i));
  }
  return best;
}

}  // namespace ssdk::ssd
