// Whole-device invariant audit (see util/check.hpp for the policy).
//
// Everything here is read-only and runs only when a caller asks for an
// audit — explicitly, after a snapshot load / fork in checked builds, or
// on the periodic cadence set via set_audit_interval(). The checks target
// the redundant state the hot path maintains for speed (cached counters,
// cached front seqs, free lists, FIFO mirrors): exactly the bookkeeping a
// subtle scheduling bug corrupts first.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "ssd/ssd.hpp"
#include "util/check.hpp"

namespace ssdk::ssd {

namespace {

/// Mirrors the compaction seen-marker in ssd.cpp: outside
/// compact_buffer_fifo the bit must never be set in a stored seq.
constexpr std::uint64_t kBufferKeptBit = 1ULL << 63;

std::string op_str(std::uint64_t op_id) {
  return "op " + std::to_string(op_id);
}

}  // namespace

void Ssd::check_invariants() const {
  // Delegated audits first: FTL (mapping bijection + block bookkeeping)
  // and the event kernel (heap order, time floor, seq uniqueness).
  ftl_.check_invariants();
  events_.check_invariants(now_);

  const auto& geom = options_.geometry;

  // --- structural sizes ----------------------------------------------------
  SSDK_CHECK_MSG(channels_.size() == geom.channels,
                 "ssd: channel state count " +
                     std::to_string(channels_.size()) +
                     " != geometry channels " + std::to_string(geom.channels));
  SSDK_CHECK_MSG(units_.size() == geom.channels * units_per_channel_,
                 "ssd: unit state count " + std::to_string(units_.size()) +
                     " != channels * units_per_channel");
  SSDK_CHECK_MSG(channel_busy_ns_.size() == channels_.size() &&
                     unit_busy_ns_.size() == units_.size(),
                 "ssd: utilization accumulator sizes out of step");
  SSDK_CHECK_MSG(arrival_cursor_ <= requests_.size(),
                 "ssd: arrival cursor " + std::to_string(arrival_cursor_) +
                     " past request table size " +
                     std::to_string(requests_.size()));
  SSDK_CHECK_MSG(gc_job_of_plane_.size() == geom.total_planes(),
                 "ssd: gc plane registry size != plane count");

  // --- op slab: every op is either in use or on the free list, once -------
  std::vector<std::uint8_t> on_free_list(ops_.size(), 0);
  for (const std::uint64_t id : free_ops_) {
    SSDK_CHECK_MSG(id < ops_.size(),
                   "ssd: free list holds out-of-range " + op_str(id));
    SSDK_CHECK_MSG(!on_free_list[id],
                   "ssd: free list holds " + op_str(id) + " twice");
    on_free_list[id] = 1;
    SSDK_CHECK_MSG(!ops_[id].in_use,
                   "ssd: " + op_str(id) + " is in use but on the free list");
  }
  std::size_t in_use = 0;
  for (std::size_t id = 0; id < ops_.size(); ++id) {
    if (ops_[id].in_use) {
      ++in_use;
    } else {
      SSDK_CHECK_MSG(on_free_list[id],
                     "ssd: " + op_str(id) +
                         " is neither in use nor on the free list (leak)");
    }
  }
  SSDK_CHECK_MSG(in_use + free_ops_.size() == ops_.size(),
                 "ssd: op slab accounting broken: " + std::to_string(in_use) +
                     " in use + " + std::to_string(free_ops_.size()) +
                     " free != " + std::to_string(ops_.size()));

  // --- in-use op fields reference live structures --------------------------
  for (std::size_t id = 0; id < ops_.size(); ++id) {
    const PageOp& op = ops_[id];
    if (!op.in_use) continue;
    if (op.request != kNoRequest) {
      SSDK_CHECK_MSG(op.request < requests_.size(),
                     "ssd: " + op_str(id) + " references request " +
                         std::to_string(op.request) + " out of range");
      SSDK_CHECK_MSG(requests_[op.request].remaining > 0,
                     "ssd: " + op_str(id) +
                         " outstanding for already-completed request " +
                         std::to_string(op.request));
    }
    if (op.gc_job != kNoJob) {
      SSDK_CHECK_MSG(op.gc_job < gc_jobs_.size() && gc_jobs_[op.gc_job].active,
                     "ssd: " + op_str(id) + " references inactive gc job " +
                         std::to_string(op.gc_job));
    }
    SSDK_CHECK_MSG(op.enq_seq < next_enq_seq_,
                   "ssd: " + op_str(id) + " carries enq_seq " +
                       std::to_string(op.enq_seq) + " >= next_enq_seq");
    if (ftl_.oob().enabled() &&
        (op.kind == OpKind::kHostWrite || op.kind == OpKind::kFlushWrite)) {
      SSDK_CHECK_MSG(op.oob_seq > 0 && op.oob_seq < ftl_.oob().next_seq(),
                     "ssd: " + op_str(id) + " carries oob_seq " +
                         std::to_string(op.oob_seq) +
                         " outside (0, next_seq)");
    }
  }

  // --- op queues: members are live and queued at most once -----------------
  std::vector<std::uint8_t> queued(ops_.size(), 0);
  const auto check_queue = [&](const OpQueue& q, const char* where,
                               std::uint64_t index) {
    for (std::size_t i = 0; i < q.size(); ++i) {
      const std::uint64_t id = q.at(i);
      SSDK_CHECK_MSG(id < ops_.size() && ops_[id].in_use,
                     "ssd: " + std::string(where) + " " +
                         std::to_string(index) + " queues dead " + op_str(id));
      SSDK_CHECK_MSG(!queued[id],
                     "ssd: " + op_str(id) + " sits in two op queues (seen "
                         "again in " + std::string(where) + " " +
                         std::to_string(index) + ")");
      queued[id] = 1;
    }
  };

  // Units whose array read finished but whose data still sits in the page
  // register: they stay busy while the op waits in the channel read_q for
  // the bus, and their busy_until (the sense completion) is already in
  // the past. Collect them so the staleness check below can except them.
  std::vector<std::uint8_t> holds_parked_read(units_.size(), 0);
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    check_queue(channels_[c].read_q, "channel read_q", c);
    const OpQueue& rq = channels_[c].read_q;
    for (std::size_t i = 0; i < rq.size(); ++i) {
      holds_parked_read[unit_of(ops_[rq.at(i)].addr)] = 1;
    }
  }
  for (std::size_t u = 0; u < units_.size(); ++u) {
    check_queue(units_[u].read_wait, "unit read_wait", u);
    check_queue(units_[u].erase_wait, "unit erase_wait", u);
    check_queue(units_[u].write_q, "unit write_q", u);
  }

  // --- cached arbitration state vs. the queues it mirrors ------------------
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const ChannelState& ch = channels_[c];
    std::uint64_t writes = 0;
    for (std::uint64_t u = first_unit(static_cast<std::uint32_t>(c));
         u < first_unit(static_cast<std::uint32_t>(c)) + units_per_channel_;
         ++u) {
      writes += units_[u].write_q.size();
    }
    SSDK_CHECK_MSG(ch.queued_writes == writes,
                   "ssd: channel " + std::to_string(c) +
                       " queued_writes cache " +
                       std::to_string(ch.queued_writes) + " != actual " +
                       std::to_string(writes));
    SSDK_CHECK_MSG(!ch.bus_busy || ch.bus_free_at >= now_,
                   "ssd: channel " + std::to_string(c) +
                       " bus busy with release time " +
                       std::to_string(ch.bus_free_at) + " in the past (now " +
                       std::to_string(now_) + ")");
  }
  for (std::size_t u = 0; u < units_.size(); ++u) {
    const UnitState& unit = units_[u];
    const std::uint64_t expect =
        unit.write_q.empty() ? ~std::uint64_t{0}
                             : ops_[unit.write_q.front()].enq_seq;
    SSDK_CHECK_MSG(unit.front_write_seq == expect,
                   "ssd: unit " + std::to_string(u) +
                       " front_write_seq cache " +
                       std::to_string(unit.front_write_seq) + " != actual " +
                       std::to_string(expect));
    const std::uint64_t expect_grant =
        unit.busy ? ~std::uint64_t{0} : unit.front_write_seq;
    SSDK_CHECK_MSG(grant_seq_[u] == expect_grant,
                   "ssd: unit " + std::to_string(u) + " grant_seq cache " +
                       std::to_string(grant_seq_[u]) + " != expected " +
                       std::to_string(expect_grant) +
                       " from (busy, front_write_seq)");
    // A past busy_until is legal only while the unit's read op is parked
    // in the channel read_q (page register held, waiting for the bus).
    SSDK_CHECK_MSG(!unit.busy || unit.busy_until >= now_ ||
                       holds_parked_read[u],
                   "ssd: unit " + std::to_string(u) +
                       " busy with completion time " +
                       std::to_string(unit.busy_until) + " in the past (now " +
                       std::to_string(now_) + ") and no read parked on the "
                       "channel bus");
  }

  // --- write buffer: key map vs. FIFO mirror -------------------------------
  if (options_.write_buffer.capacity_pages > 0) {
    SSDK_CHECK_MSG(buffer_.size() <= options_.write_buffer.capacity_pages,
                   "ssd: write buffer holds " + std::to_string(buffer_.size()) +
                       " pages over capacity " +
                       std::to_string(options_.write_buffer.capacity_pages));
  } else {
    SSDK_CHECK_MSG(buffer_.empty() && buffer_fifo_.empty(),
                   "ssd: write buffer disabled but not empty");
  }
  std::vector<std::uint64_t> fifo_keys;
  fifo_keys.reserve(buffer_fifo_.size());
  for (std::size_t i = 0; i < buffer_fifo_.size(); ++i) {
    fifo_keys.push_back(buffer_fifo_.at(i));
  }
  std::sort(fifo_keys.begin(), fifo_keys.end());
  // ssdk-lint: allow(unordered-iter): membership audit; per-key checks are
  // independent, so visit order cannot affect the outcome.
  for (const auto& [key, seq] : buffer_) {
    SSDK_CHECK_MSG((seq & kBufferKeptBit) == 0,
                   "ssd: buffer key " + std::to_string(key) +
                       " left with the compaction marker set");
    SSDK_CHECK_MSG(seq < buffer_seq_,
                   "ssd: buffer key " + std::to_string(key) +
                       " carries seq " + std::to_string(seq) +
                       " >= next buffer seq");
    SSDK_CHECK_MSG(std::binary_search(fifo_keys.begin(), fifo_keys.end(), key),
                   "ssd: dirty buffer key " + std::to_string(key) +
                       " missing from the eviction FIFO");
  }
  SSDK_CHECK_MSG(buffer_fifo_.size() >= buffer_.size(),
                 "ssd: eviction FIFO smaller than the live buffer");

  // --- requests: volatile-page accounting ----------------------------------
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    SSDK_CHECK_MSG(requests_[i].volatile_pages <= requests_[i].req.page_count,
                   "ssd: request " + std::to_string(i) + " absorbed " +
                       std::to_string(requests_[i].volatile_pages) +
                       " buffered pages > its page count " +
                       std::to_string(requests_[i].req.page_count));
  }

  // --- flush barriers mirror the in-flight kFlushWrite population ----------
  for (const FlushBarrier& fb : flush_barriers_) {
    SSDK_CHECK_MSG(fb.request < requests_.size() &&
                       requests_[fb.request].remaining > 0,
                   "ssd: flush barrier for dead request " +
                       std::to_string(fb.request));
    SSDK_CHECK_MSG(fb.threshold <= next_enq_seq_,
                   "ssd: flush barrier threshold " +
                       std::to_string(fb.threshold) + " > next_enq_seq");
    std::uint32_t actual = 0;
    for (const PageOp& op : ops_) {
      if (op.in_use && op.kind == OpKind::kFlushWrite &&
          op.enq_seq < fb.threshold) {
        ++actual;
      }
    }
    SSDK_CHECK_MSG(fb.remaining > 0 && fb.remaining == actual,
                   "ssd: flush barrier for request " +
                       std::to_string(fb.request) + " counts " +
                       std::to_string(fb.remaining) +
                       " outstanding flush writes, actual " +
                       std::to_string(actual));
  }

  // --- powered-off devices hold no volatile work ---------------------------
  if (powered_off_) {
    SSDK_CHECK_MSG(events_.empty() && ops_.empty() && buffer_.empty() &&
                       flush_barriers_.empty(),
                   "ssd: powered-off device still holds in-flight state");
  }

  // --- GC job registry <-> job slab ----------------------------------------
  for (std::size_t p = 0; p < gc_job_of_plane_.size(); ++p) {
    const std::uint32_t idx = gc_job_of_plane_[p];
    if (idx == kNoJob) continue;
    SSDK_CHECK_MSG(idx < gc_jobs_.size(),
                   "ssd: plane " + std::to_string(p) +
                       " registers out-of-range gc job " + std::to_string(idx));
    const GcJob& job = gc_jobs_[idx];
    SSDK_CHECK_MSG(job.active && !job.rescue && job.plane_id == p,
                   "ssd: plane " + std::to_string(p) + " registers gc job " +
                       std::to_string(idx) +
                       " that is inactive, a rescue, or on another plane");
  }
  for (std::size_t j = 0; j < gc_jobs_.size(); ++j) {
    const GcJob& job = gc_jobs_[j];
    if (!job.active || job.rescue) continue;
    SSDK_CHECK_MSG(job.plane_id < gc_job_of_plane_.size() &&
                       gc_job_of_plane_[job.plane_id] == j,
                   "ssd: active gc job " + std::to_string(j) +
                       " not registered at its plane " +
                       std::to_string(job.plane_id));
  }

  // --- admission scheduler <-> request table -------------------------------
  sched_->check_invariants();
  std::vector<std::uint64_t> held = sched_->pending_requests();
  SSDK_CHECK_MSG(held.size() == sched_->pending(),
                 "ssd: scheduler pending count " +
                     std::to_string(sched_->pending()) +
                     " != enumerated held requests " +
                     std::to_string(held.size()));
  for (const std::uint64_t idx : held) {
    SSDK_CHECK_MSG(idx < arrival_cursor_,
                   "ssd: scheduler holds request " + std::to_string(idx) +
                       " that never arrived (cursor " +
                       std::to_string(arrival_cursor_) + ")");
    const RequestState& rs = requests_[idx];
    // A held request must be virgin: no page dispatched, nothing failed,
    // nothing absorbed by the write buffer.
    SSDK_CHECK_MSG(rs.remaining == rs.req.page_count && rs.failed == 0 &&
                       rs.volatile_pages == 0,
                   "ssd: scheduler holds request " + std::to_string(idx) +
                       " that already started executing");
  }
  std::sort(held.begin(), held.end());
  for (std::size_t id = 0; id < ops_.size(); ++id) {
    const PageOp& op = ops_[id];
    if (!op.in_use || op.request == kNoRequest) continue;
    SSDK_CHECK_MSG(
        !std::binary_search(held.begin(), held.end(), op.request),
        "ssd: " + op_str(id) + " in flight for request " +
            std::to_string(op.request) + " the scheduler still holds");
  }
  // Admission accounting: every arrived-but-incomplete request is either
  // held (pending) or admitted (outstanding). Power cuts orphan admitted
  // requests without a completion, so the equality only holds on devices
  // that never cut power.
  if (metrics_.counters().power_cycles == 0 && !cut_fired_) {
    std::uint64_t incomplete = 0;
    for (std::uint64_t i = 0; i < arrival_cursor_; ++i) {
      if (requests_[i].remaining > 0) ++incomplete;
    }
    SSDK_CHECK_MSG(incomplete == sched_->outstanding() + held.size(),
                   "ssd: " + std::to_string(incomplete) +
                       " incomplete arrived requests != scheduler "
                       "outstanding " +
                       std::to_string(sched_->outstanding()) + " + held " +
                       std::to_string(held.size()));
  }
  if (powered_off_) {
    SSDK_CHECK_MSG(sched_->pending() == 0 && sched_->outstanding() == 0,
                   "ssd: powered-off device still holds scheduler state");
  }
}

}  // namespace ssdk::ssd
