// Fleet simulation quickstart (DESIGN.md §15): run a multi-device fleet
// with a pluggable placement policy, print the consolidated report
// (per-device heat, per-tenant latency and slowdown vs. isolated
// execution, committed migrations), and optionally export the per-device
// and per-tenant rollups as CSV.
//
// Usage: fleet_demo [devices=8] [tenants=16] [slots=4]
//                   [policy=workload_aware] [threads=4] [seed=1]
//                   [epochs=3] [epoch_ms=30] [migration=0|1]
//                   [baseline=0|1] [csv=<prefix>]
//
// policy is one of: round_robin, least_loaded, workload_aware.
// csv=fleet writes fleet_devices.csv, fleet_tenants.csv and
// fleet_rollups.csv next to the binary.
#include <cstdio>
#include <fstream>
#include <string>

#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "sim/geometry.hpp"
#include "util/config.hpp"

using namespace ssdk;

namespace {

bool export_csv(const std::string& prefix, const fleet::FleetResult& r) {
  const struct {
    const char* suffix;
    void (*write)(std::ostream&, const fleet::FleetResult&);
  } outputs[] = {{"_devices.csv", fleet::write_device_csv},
                 {"_tenants.csv", fleet::write_tenant_csv},
                 {"_rollups.csv", fleet::write_rollup_csv}};
  for (const auto& out : outputs) {
    const std::string path = prefix + out.suffix;
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    out.write(os, r);
    std::printf("wrote %s\n", path.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  fleet::FleetConfig config;
  config.devices = static_cast<std::uint32_t>(cfg.get_uint("devices", 8));
  config.slots_per_device =
      static_cast<std::uint32_t>(cfg.get_uint("slots", 4));
  config.epochs = static_cast<std::uint32_t>(cfg.get_uint("epochs", 3));
  config.epoch_ns = static_cast<Duration>(cfg.get_uint("epoch_ms", 30)) *
                    kMillisecond;
  config.seed = cfg.get_uint("seed", 1);
  config.ssd.geometry = sim::Geometry::small();
  config.migration.enabled = cfg.get_uint("migration", 1) != 0;
  config.isolated_baseline = cfg.get_uint("baseline", 1) != 0;
  const auto tenants =
      static_cast<std::uint32_t>(cfg.get_uint("tenants", 16));
  const auto threads = cfg.get_uint("threads", 4);
  const std::string policy_name =
      cfg.get_string("policy", "workload_aware");

  // A heavy sequential writer every `devices`-th tenant: round-robin
  // collocates them all on device 0, so the policy choice is visible.
  const auto specs = fleet::make_tenant_specs(tenants, config.devices,
                                              config.epoch_ns);
  const auto policy = fleet::make_policy(policy_name);

  std::printf("running %u devices x %u slots, %u tenants, %u epochs of "
              "%.0f ms, policy %s, %llu threads...\n",
              config.devices, config.slots_per_device, tenants,
              config.epochs, static_cast<double>(config.epoch_ns) / 1e6,
              policy->name().c_str(),
              static_cast<unsigned long long>(threads));
  const fleet::FleetResult result = fleet::run_fleet(
      config, specs, *policy, static_cast<std::size_t>(threads));

  std::fputs(fleet::format_report(result).c_str(), stdout);
  if (result.jain_index > 0.0) {
    std::printf("\nfairness: jain %.4f, worst slowdown %.2fx\n",
                result.jain_index, result.worst_slowdown);
  }
  std::printf("\nfingerprint: %016llx\n",
              static_cast<unsigned long long>(result.fingerprint()));

  const std::string csv_prefix = cfg.get_string("csv", "");
  if (!csv_prefix.empty() && !export_csv(csv_prefix, result)) return 1;
  return 0;
}
