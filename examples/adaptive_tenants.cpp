// Adaptive tenants: a datacenter day/night shift. Four tenants start
// read-heavy (daytime serving), then flip to write-heavy (nightly batch
// ingest). Compares three controllers:
//   * static Shared (the traditional SSD),
//   * one-shot SSDKeeper (the paper's Algorithm 2: decide once after the
//     collection window),
//   * periodic SSDKeeper (this library's extension: re-predict on a rolling
//     window and re-partition when the mix drifts).
//
// Usage: adaptive_tenants [phase_s=0.5] [rate=12000] [window_ms=60]
//                         [interval_ms=120] [model=...] [retrain=0|1]
//                         [train_workloads=300]
#include <cstdio>
#include <filesystem>

#include "core/keeper.hpp"
#include "core/label_gen.hpp"
#include "core/learner.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"
#include "util/config.hpp"
#include "util/thread_pool.hpp"

using namespace ssdk;

namespace {

std::vector<sim::IoRequest> day_night_mix(double phase_s, double rate,
                                          std::uint64_t seed) {
  std::vector<trace::Workload> workloads(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    // Day: everyone serves reads at moderate intensity.
    trace::SyntheticSpec day;
    day.write_fraction = 0.08;
    day.intensity_rps = rate * 0.4 / 4.0;
    day.request_count =
        static_cast<std::uint64_t>(day.intensity_rps * phase_s);
    day.mean_request_pages = 3.0;
    day.sequential_fraction = 0.4;
    day.seed = seed + t;

    // Night: tenants 0-2 run the batch ingest (small scattered writes),
    // tenant 3 keeps serving large sequential reads — the contended
    // write-majority regime where partitioning pays.
    const bool ingester = t < 3;
    trace::SyntheticSpec night;
    night.write_fraction = ingester ? 0.92 : 0.05;
    night.intensity_rps = ingester ? rate * 0.7 / 3.0 : rate * 0.3;
    night.request_count =
        static_cast<std::uint64_t>(night.intensity_rps * phase_s);
    night.mean_request_pages = ingester ? 1.5 : 4.0;
    night.sequential_fraction = ingester ? 0.1 : 0.5;
    night.seed = seed + 10 + t;

    auto w = trace::generate_synthetic(day);
    auto batch = trace::generate_synthetic(night);
    const SimTime offset = std::max<SimTime>(
        static_cast<SimTime>(phase_s * 1e9),
        w.empty() ? 0 : w.back().arrival + kMillisecond);
    for (auto& rec : batch) {
      rec.arrival += offset;
      w.push_back(rec);
    }
    workloads[t] = std::move(w);
  }
  return trace::mix_workloads(workloads);
}

core::ChannelAllocator obtain_model(const Config& cfg,
                                    const core::StrategySpace& space,
                                    ThreadPool& pool) {
  const std::string path =
      cfg.get_string("model", "/tmp/ssdkeeper_bench_model.txt");
  if (!cfg.get_bool("retrain", false) && std::filesystem::exists(path)) {
    std::printf("loading model %s\n", path.c_str());
    return core::ChannelAllocator::load(path, space);
  }
  core::DatasetGenConfig gen;
  gen.workloads = cfg.get_uint("train_workloads", 300);
  gen.workload_duration_s = 0.35;
  std::printf("training a model (%llu workloads)...\n",
              static_cast<unsigned long long>(gen.workloads));
  const auto dataset = core::generate_dataset(space, gen, pool);
  auto learned =
      core::train_strategy_learner(dataset.data, space, core::LearnerConfig{});
  learned.allocator.save(path);
  return std::move(learned.allocator);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double phase_s = cfg.get_double("phase_s", 0.5);
  const double rate = cfg.get_double("rate", 24'000.0);

  const auto space = core::StrategySpace::for_tenants(4);
  ThreadPool pool;
  const auto allocator = obtain_model(cfg, space, pool);

  const auto requests = day_night_mix(phase_s, rate, 5);
  const auto features = core::features_of(requests);
  const auto profiles = features.profiles(4);
  std::printf("\nworkload: %zu requests; day phase read-heavy, night phase "
              "write-heavy (%.2f s each)\n", requests.size(), phase_s);

  core::RunConfig baseline;
  const auto shared = core::run_with_strategy(requests, space.shared(),
                                              profiles, baseline);

  core::KeeperConfig one_shot;
  one_shot.collect_window_ns =
      static_cast<Duration>(cfg.get_uint("window_ms", 60)) * kMillisecond;
  const auto once = core::run_with_keeper(requests, allocator, one_shot,
                                          baseline.ssd);

  core::KeeperConfig periodic = one_shot;
  periodic.repredict_interval_ns =
      static_cast<Duration>(cfg.get_uint("interval_ms", 120)) *
      kMillisecond;
  const auto rolling = core::run_with_keeper(requests, allocator, periodic,
                                             baseline.ssd);

  std::printf("\n%-18s %12s %12s %12s | %s\n", "controller", "write us",
              "read us", "total us", "decisions");
  std::printf("%-18s %12.1f %12.1f %12.1f | (none)\n", "static Shared",
              shared.avg_write_us, shared.avg_read_us, shared.total_us);
  std::printf("%-18s %12.1f %12.1f %12.1f | %s at t=%.0f ms\n",
              "one-shot keeper", once.run.avg_write_us,
              once.run.avg_read_us, once.run.total_us,
              once.strategy.name().c_str(),
              static_cast<double>(once.decisions.front().first) / 1e6);
  std::printf("%-18s %12.1f %12.1f %12.1f |", "periodic keeper",
              rolling.run.avg_write_us, rolling.run.avg_read_us,
              rolling.run.total_us);
  for (const auto& [at, strategy] : rolling.decisions) {
    std::printf(" %s@%.0fms", strategy.name().c_str(),
                static_cast<double>(at) / 1e6);
  }
  std::printf("\n\nthe decision columns show when each controller looked "
              "at the mix: the one-shot keeper (the paper's Algorithm 2) "
              "decides once after its collection window; the periodic "
              "keeper re-examines the mix every interval and re-partitions "
              "whenever its prediction changes (try retrain=1, or "
              "rate/interval_ms sweeps, to see disagreements).\n");
  return 0;
}
