// Trace inspector: replay one of the paper's Table-IV mixes with telemetry
// on, export the run as a Chrome trace (open in chrome://tracing or
// https://ui.perfetto.dev), a rolling-window rollup CSV and a compact
// binary trace, then print the top-N slowest requests with a per-span
// breakdown of where their time went.
//
// Usage: trace_inspect [mix=1] [duration_s=0.4] [max_requests=30000]
//                      [window_ms=50] [top=10] [out=/tmp/ssdk_mix1]
//                      [model=path]   (with a model file: run under the
//                                      keeper so its decisions land on the
//                                      trace timeline; without: Shared)
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/keeper.hpp"
#include "telemetry/binary_trace.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/rollup.hpp"
#include "trace/catalog.hpp"
#include "util/config.hpp"

using namespace ssdk;

namespace {

struct RequestBreakdown {
  telemetry::TraceEvent request;
  Duration wait_ns = 0;
  Duration bus_ns = 0;
  Duration flash_ns = 0;
  Duration retry_ns = 0;
};

std::vector<RequestBreakdown> slowest_requests(
    const std::vector<telemetry::TraceEvent>& events, std::size_t top_n) {
  std::map<std::uint64_t, RequestBreakdown> by_request;
  for (const auto& e : events) {
    if (e.kind == telemetry::SpanKind::kRequest &&
        e.request_id != telemetry::kNoRequestId) {
      by_request[e.request_id].request = e;
    }
  }
  for (const auto& e : events) {
    if (e.request_id == telemetry::kNoRequestId) continue;
    const auto it = by_request.find(e.request_id);
    if (it == by_request.end()) continue;
    switch (e.kind) {
      case telemetry::SpanKind::kQueueWait:
        it->second.wait_ns += e.duration();
        break;
      case telemetry::SpanKind::kBusTransfer:
        it->second.bus_ns += e.duration();
        break;
      case telemetry::SpanKind::kFlashRead:
      case telemetry::SpanKind::kFlashProgram:
      case telemetry::SpanKind::kFlashErase:
        it->second.flash_ns += e.duration();
        break;
      case telemetry::SpanKind::kRetrySense:
        it->second.retry_ns += e.duration();
        break;
      default:
        break;
    }
  }
  std::vector<RequestBreakdown> out;
  out.reserve(by_request.size());
  for (const auto& [id, b] : by_request) out.push_back(b);
  std::sort(out.begin(), out.end(),
            [](const RequestBreakdown& a, const RequestBreakdown& b) {
              return a.request.duration() > b.request.duration();
            });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto mix = static_cast<std::uint32_t>(cfg.get_uint("mix", 1));
  const double duration_s = cfg.get_double("duration_s", 0.4);
  const std::uint64_t max_requests = cfg.get_uint("max_requests", 30'000);
  const auto window_ms = cfg.get_uint("window_ms", 50);
  const std::size_t top_n = cfg.get_uint("top", 10);
  const std::string out = cfg.get_string("out", "/tmp/ssdk_mix" +
                                                    std::to_string(mix));
  const std::string model_path = cfg.get_string("model", "");

  const auto requests = trace::build_mix(mix, duration_s, max_requests);
  const auto tenant_count = trace::mix_workload_names(mix).size();
  std::printf("mix %u: %zu requests over %.2f s, %zu tenants\n", mix,
              requests.size(), duration_s, tenant_count);

  telemetry::Tracer tracer;
  core::RunResult run;
  if (!model_path.empty() && std::filesystem::exists(model_path)) {
    const auto space = core::StrategySpace::for_tenants(
        static_cast<std::uint32_t>(tenant_count));
    const auto allocator = core::ChannelAllocator::load(model_path, space);
    core::KeeperConfig keeper;
    const auto result = core::run_with_keeper(requests, allocator, keeper,
                                              ssd::SsdOptions{}, &tracer);
    run = result.run;
    std::printf("keeper: %zu decision(s), final strategy %s\n",
                result.decisions.size(), result.strategy.name().c_str());
  } else {
    if (!model_path.empty()) {
      std::printf("model %s not found; replaying under Shared\n",
                  model_path.c_str());
    }
    const auto features = core::features_of(requests);
    const auto profiles =
        features.profiles(static_cast<std::uint32_t>(tenant_count));
    core::RunConfig config;
    config.tracer = &tracer;
    config.reserve_requests = requests.size();
    run = core::run_with_strategy(requests, core::Strategy{}, profiles,
                                  config);
  }
  if (run.device_full) {
    std::printf("note: %s\n", run.abort_reason.c_str());
  }
  std::printf("replayed: avg read %.1f us, avg write %.1f us, total %.1f "
              "us\n", run.avg_read_us, run.avg_write_us, run.total_us);
  std::printf("trace: %llu events recorded, %llu dropped (ring %zu)\n",
              static_cast<unsigned long long>(tracer.recorded()),
              static_cast<unsigned long long>(tracer.dropped()),
              tracer.config().capacity_events);

  const std::string chrome_path = out + ".trace.json";
  const std::string csv_path = out + ".rollup.csv";
  const std::string binary_path = out + ".ssdktrc";
  telemetry::write_chrome_trace_file(chrome_path, tracer);

  telemetry::RollupConfig rollup_config;
  rollup_config.window_ns = static_cast<Duration>(window_ms) * kMillisecond;
  rollup_config.channels = ssd::SsdOptions{}.geometry.channels;
  const auto events = tracer.events();
  const auto rows = telemetry::build_rollup(events, rollup_config);
  telemetry::write_rollup_csv_file(csv_path, rows);
  telemetry::write_binary_trace_file(binary_path, tracer);
  std::printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
              chrome_path.c_str());
  std::printf("wrote %s (%zu window rows) and %s\n", csv_path.c_str(),
              rows.size(), binary_path.c_str());

  const auto slowest = slowest_requests(events, top_n);
  std::printf("\ntop %zu slowest requests:\n", slowest.size());
  std::printf("%10s %6s %10s | %10s %10s %10s %10s %10s\n", "request",
              "tenant", "op", "total us", "wait us", "bus us", "flash us",
              "retry us");
  for (const auto& b : slowest) {
    std::printf("%10llu %6u %10s | %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                static_cast<unsigned long long>(b.request.request_id),
                b.request.tenant, telemetry::op_class_name(b.request.op),
                to_us(b.request.duration()), to_us(b.wait_ns),
                to_us(b.bus_ns), to_us(b.flash_ns), to_us(b.retry_ns));
  }
  std::printf("\nwait = time queued for a busy chip/bus; bus = channel "
              "transfer occupancy; flash = array read/program/erase; "
              "retry = fault-model re-sensing. Overlapping per-request "
              "spans can sum past the total.\n");
  return 0;
}
