// Snapshot/fork tour: checkpoint a device mid-trace to an SSDKSNP1 file,
// restore it, and prove the resumed run finishes exactly like the
// uninterrupted one; then fork the checkpointed device per strategy to ask
// "what if the allocation switched right here?" without re-simulating the
// warm-up — the shared-prefix sweep behind fast label generation and the
// keeper's what-if mode.
//
// Usage: snapshot_fork [requests=20000] [rate=12000] [cut=0.5] [seed=1]
//                      [snapshot=/tmp/snapshot_fork.ssdksnp] [audit=0]
//
// audit=N (N > 0) runs the device invariant auditor every N arrivals and
// re-audits each device right after restore and after every fork — a
// self-checking mode for exercising snapshot changes. The audit throws
// ssdk::util::InvariantViolation on the first inconsistency it finds.
#include <cstdio>
#include <string>
#include <vector>

#include "core/label_gen.hpp"
#include "core/runner.hpp"
#include "core/strategy.hpp"
#include "snapshot/device_snapshot.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"
#include "util/config.hpp"

using namespace ssdk;

namespace {

std::vector<sim::IoRequest> two_tenant_mix(std::uint64_t requests,
                                           double rate, std::uint64_t seed) {
  trace::SyntheticSpec writer;
  writer.name = "writer";
  writer.write_fraction = 0.9;
  writer.request_count = requests / 2;
  writer.intensity_rps = rate / 2;
  writer.seed = seed;
  trace::SyntheticSpec reader;
  reader.name = "reader";
  reader.write_fraction = 0.1;
  reader.request_count = requests - writer.request_count;
  reader.intensity_rps = rate / 2;
  reader.seed = seed + 1;
  const std::vector<trace::Workload> workloads = {
      trace::generate_synthetic(writer), trace::generate_synthetic(reader)};
  return trace::mix_workloads(workloads);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::uint64_t requests = cfg.get_uint("requests", 20'000);
  const double rate = cfg.get_double("rate", 12'000.0);
  const double cut = cfg.get_double("cut", 0.5);
  const std::uint64_t seed = cfg.get_uint("seed", 1);
  const std::string path =
      cfg.get_string("snapshot", "/tmp/snapshot_fork.ssdksnp");
  const std::uint64_t audit = cfg.get_uint("audit", 0);

  const auto mixed = two_tenant_mix(requests, rate, seed);
  const auto space = core::StrategySpace::for_tenants(2);
  core::RunConfig run;
  run.audit_interval = audit;
  const auto features = core::features_of(mixed);
  const auto profiles = features.profiles(2);

  // 1. Uninterrupted baseline under the shared allocation.
  const auto baseline =
      core::run_with_strategy(mixed, core::Strategy{}, profiles, run);
  std::printf("uninterrupted: %.1f us total (avg read %.1f, avg write %.1f)\n",
              baseline.total_us, baseline.avg_read_us, baseline.avg_write_us);

  // 2. Same run, but checkpoint at the cut point, restore from the file,
  // and finish on the restored device. Identical result, by construction.
  const auto cut_at =
      static_cast<std::uint64_t>(cut * static_cast<double>(mixed.size()));
  auto device = core::make_run_device(mixed, core::Strategy{}, profiles, run);
  device->run_until_arrival(cut_at);
  snapshot::save_device_file(path, *device);
  std::printf("checkpointed request %llu/%llu to %s\n",
              static_cast<unsigned long long>(cut_at),
              static_cast<unsigned long long>(mixed.size()), path.c_str());

  auto restored = snapshot::load_device_file(path);
  if (audit > 0) {
    // The audit interval is not part of the snapshot; re-arm it and vet
    // the restored state before trusting it with the rest of the trace.
    restored->check_invariants();
    restored->set_audit_interval(audit);
  }
  restored->run_to_completion();
  const auto resumed = core::summarize(*restored);
  std::printf("restored+resumed: %.1f us total (%s baseline)\n\n",
              resumed.total_us,
              resumed.total_us == baseline.total_us ? "matches" : "DIVERGES from");

  // 3. What-if: fork the checkpoint per strategy and let each fork finish
  // the remaining trace under its own allocation. One warm-up, many
  // futures.
  std::printf("what-if at request %llu:\n%-10s %12s\n",
              static_cast<unsigned long long>(cut_at), "strategy",
              "total us");
  for (std::size_t i = 0; i < space.size(); ++i) {
    auto fork = device->fork();
    core::configure_ssd(*fork, space.at(i), profiles, false);
    if (audit > 0) fork->check_invariants();
    fork->run_to_completion();
    std::printf("%-10s %12.1f\n", space.at(i).name().c_str(),
                core::summarize(*fork).total_us);
  }
  return 0;
}
