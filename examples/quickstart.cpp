// Quickstart: two tenants (one write-heavy, one read-heavy) share an
// 8-channel SSD. We evaluate every 2-tenant channel-allocation strategy and
// print the latency table — the experiment behind the paper's Figure 2.
//
// Usage: quickstart [requests=20000] [rate=12000] [write_prop=0.3] [seed=1]
#include <cstdio>
#include <span>

#include "core/label_gen.hpp"
#include "core/strategy.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"
#include "util/config.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::uint64_t requests = cfg.get_uint("requests", 20'000);
  const double rate = cfg.get_double("rate", 12'000.0);
  const double write_prop = cfg.get_double("write_prop", 0.3);
  const std::uint64_t seed = cfg.get_uint("seed", 1);
  const double mean_pages = cfg.get_double("mean_pages", 2.0);

  // Tenant 0 issues only writes, tenant 1 only reads; `write_prop` sets
  // the write share of the fixed total request budget.
  trace::SyntheticSpec writer;
  writer.name = "writer";
  writer.write_fraction = 1.0;
  writer.request_count =
      static_cast<std::uint64_t>(write_prop * static_cast<double>(requests));
  writer.intensity_rps = rate * write_prop;
  writer.mean_request_pages = mean_pages;
  writer.seed = seed;

  trace::SyntheticSpec reader;
  reader.name = "reader";
  reader.write_fraction = 0.0;
  reader.request_count = requests - writer.request_count;
  reader.intensity_rps = rate * (1.0 - write_prop);
  reader.mean_request_pages = mean_pages;
  reader.seed = seed + 1;

  const std::vector<trace::Workload> workloads = {
      trace::generate_synthetic(writer), trace::generate_synthetic(reader)};
  const auto mixed = trace::mix_workloads(workloads);

  const auto space = core::StrategySpace::for_tenants(2);
  core::LabelGenConfig label_config;

  std::printf("SSD: %s\n",
              label_config.run.ssd.geometry.describe().c_str());
  std::printf("workload: %llu requests, %.0f req/s, write proportion %.2f\n\n",
              static_cast<unsigned long long>(mixed.size()), rate,
              write_prop);
  std::printf("%-10s %12s %12s %12s\n", "strategy", "avg write us",
              "avg read us", "total us");

  const auto features = core::features_of(mixed, label_config.features);
  const auto profiles = features.profiles(2);
  double best = 0.0;
  std::string best_name;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto result = core::run_with_strategy(mixed, space.at(i), profiles,
                                                label_config.run);
    std::printf("%-10s %12.1f %12.1f %12.1f\n", space.at(i).name().c_str(),
                result.avg_write_us, result.avg_read_us, result.total_us);
    if (best_name.empty() || result.total_us < best) {
      best = result.total_us;
      best_name = space.at(i).name();
    }
  }
  std::printf("\nbest strategy: %s (%.1f us total)\n", best_name.c_str(),
              best);
  return 0;
}
