// End-to-end SSDKeeper pipeline (the paper's full workflow):
//   1. generate labeled training data — synthetic 4-tenant mixed workloads,
//      each simulated under all 42 channel-allocation strategies
//      (Algorithm 1, lines 3-8),
//   2. train the 9 -> 64 -> 42 strategy learner (Algorithm 1, lines 10-15),
//   3. save the model ("send the parameters to the FTL"),
//   4. deploy: run the four Table-IV mixes under SSDKeeper (Algorithm 2)
//      and compare against the Shared and Isolated baselines.
//
// Usage: train_and_deploy [workloads=160] [train_duration=0.35] [optimizer=adam]
//                         [activation=logistic] [iterations=120]
//                         [model=/tmp/ssdkeeper_model.txt] [threads=0]
#include <cstdio>

#include "core/keeper.hpp"
#include "core/label_gen.hpp"
#include "core/learner.hpp"
#include "trace/catalog.hpp"
#include "trace/workload_stats.hpp"
#include "util/config.hpp"
#include "util/thread_pool.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  const auto space = core::StrategySpace::for_tenants(4);
  ThreadPool pool(static_cast<std::size_t>(cfg.get_uint("threads", 0)));

  // 1. Dataset.
  core::DatasetGenConfig gen;
  gen.workloads = cfg.get_uint("workloads", 160);
  gen.workload_duration_s = cfg.get_double("train_duration", 0.35);
  gen.requests_per_workload = cfg.get_uint("requests", 0);  // 0 = by duration
  std::printf("generating %llu workloads x %zu strategies...\n",
              static_cast<unsigned long long>(gen.workloads), space.size());
  const auto dataset = core::generate_dataset(space, gen, pool);

  // Label diversity: how many distinct strategies won at least once?
  std::vector<std::uint64_t> wins(space.size(), 0);
  for (const auto label : dataset.data.labels()) ++wins[label];
  std::size_t distinct = 0;
  for (const auto w : wins) distinct += w > 0 ? 1 : 0;
  std::printf("dataset: %zu samples, %zu distinct winning strategies\n",
              dataset.data.size(), distinct);
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (wins[i] > 0) {
      std::printf("  %-8s won %llu\n", space.at(i).name().c_str(),
                  static_cast<unsigned long long>(wins[i]));
    }
  }

  // 2. Train.
  core::LearnerConfig learner;
  learner.optimizer = cfg.get_string("optimizer", "adam");
  learner.activation = cfg.get_string("activation", "logistic");
  learner.max_iterations = cfg.get_uint("iterations", 120);
  auto learned = core::train_strategy_learner(dataset.data, space, learner);
  std::printf("\ntrained %s/%s: final loss %.3f, test accuracy %.1f%%, "
              "%.0f ms\n",
              learner.optimizer.c_str(), learner.activation.c_str(),
              learned.history.final_loss,
              learned.history.final_accuracy * 100.0,
              learned.history.wall_time_ms);
  std::printf("model: %zu parameters (%zu bytes), %zu multiplications per "
              "inference\n",
              learned.allocator.model().parameter_count(),
              learned.allocator.parameter_bytes(),
              learned.allocator.multiplications_per_inference());

  // 3. Save.
  const std::string model_path =
      cfg.get_string("model", "/tmp/ssdkeeper_model.txt");
  learned.allocator.save(model_path);
  std::printf("saved model to %s\n\n", model_path.c_str());

  // 4. Deploy on the Table-IV mixes.
  const double duration_s = cfg.get_double("mix_duration", 0.6);
  core::KeeperConfig keeper_config;
  keeper_config.collect_window_ns =
      static_cast<Duration>(duration_s * 0.2 * 1e9);
  core::RunConfig baseline_run;

  std::printf("%-5s %-38s %-9s %10s %10s %10s %9s\n", "mix", "features",
              "choice", "Shared us", "Isolated", "SSDKeeper", "gain");
  for (std::uint32_t m = 1; m <= 4; ++m) {
    const auto requests = trace::build_mix(m, duration_s);
    const auto features = core::features_of(requests);
    const auto profiles = features.profiles(4);
    const auto shared = core::run_with_strategy(
        requests, space.shared(), profiles, baseline_run);
    const auto isolated = core::run_with_strategy(
        requests, space.isolated(), profiles, baseline_run);
    const auto keeper = core::run_with_keeper(
        requests, learned.allocator, keeper_config, baseline_run.ssd);
    std::printf("Mix%u  %-38s %-9s %10.1f %10.1f %10.1f %8.1f%%\n", m,
                keeper.features.describe().c_str(),
                keeper.strategy.name().c_str(), shared.total_us,
                isolated.total_us, keeper.run.total_us,
                (shared.total_us - keeper.run.total_us) / shared.total_us *
                    100.0);
  }
  return 0;
}
