// Trace replay: run real MSR-Cambridge CSV traces (or the synthetic
// catalog stand-ins when no files are given) through the simulated SSD
// under a chosen channel-allocation strategy, and print per-tenant
// latencies, device counters and wear statistics.
//
// Usage:
//   trace_replay trace0=/path/mds_0.csv trace1=/path/web_2.csv
//                [strategy=Shared] [hybrid=1] [max_requests=200000]
//                [time_scale=0.01] [page_kb=16]
//   trace_replay mix=3 [duration=0.5] [strategy=4:4]
//
// `strategy` accepts any name from the strategy space of the tenant count
// ("Shared", "6:2", "5:1:1:1", ...) plus "Isolated".
#include <cstdio>
#include <vector>

#include "core/features.hpp"
#include "core/runner.hpp"
#include "trace/catalog.hpp"
#include "trace/mixer.hpp"
#include "trace/msr_parser.hpp"
#include "trace/workload_stats.hpp"
#include "util/config.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  // Gather workloads: explicit CSV files first, else a catalog mix.
  std::vector<trace::Workload> workloads;
  std::vector<std::string> names;
  for (int t = 0; t < 4; ++t) {
    const std::string key = "trace" + std::to_string(t);
    if (!cfg.has(key)) continue;
    trace::MsrParseOptions options;
    options.page_size_bytes =
        static_cast<std::uint32_t>(cfg.get_uint("page_kb", 16)) * 1024;
    options.time_scale = cfg.get_double("time_scale", 0.01);
    options.max_records = cfg.get_uint("max_requests", 200'000);
    const std::string path = cfg.get_string(key, "");
    workloads.push_back(trace::parse_msr_file(path, options));
    names.push_back(path);
  }

  std::vector<sim::IoRequest> mixed;
  if (workloads.empty()) {
    const auto mix =
        static_cast<std::uint32_t>(cfg.get_uint("mix", 1));
    const double duration = cfg.get_double("duration", 0.5);
    std::printf("no trace files given; replaying catalog Mix%u "
                "(%.2f s of synthetic MSR stand-ins)\n",
                mix, duration);
    mixed = trace::build_mix(mix, duration);
    for (const auto& n : trace::mix_workload_names(mix)) names.push_back(n);
  } else {
    mixed = trace::mix_workloads(workloads,
                                 cfg.get_uint("max_requests", 200'000));
  }

  const auto tenants = static_cast<std::uint32_t>(names.size());
  const auto stats = trace::per_tenant_stats(mixed, tenants);
  std::printf("\ntenants:\n");
  for (std::uint32_t t = 0; t < tenants; ++t) {
    std::printf("  %u %-28s %s\n", t, names[t].c_str(),
                stats[t].describe().c_str());
  }

  // Resolve the strategy.
  const auto space =
      core::StrategySpace::for_tenants(tenants == 2 ? 2 : 4);
  const std::string strategy_name = cfg.get_string("strategy", "Shared");
  const core::Strategy strategy =
      strategy_name == "Isolated" ? space.isolated()
                                  : space.at(space.index_of(strategy_name));

  core::RunConfig run;
  run.hybrid_page_allocation = cfg.get_bool("hybrid", true);
  const auto features = core::features_of(mixed);
  const auto profiles = features.profiles(tenants);

  std::printf("\nreplaying %zu requests under %s (hybrid=%d) on %s\n",
              mixed.size(), strategy.name().c_str(),
              run.hybrid_page_allocation ? 1 : 0,
              run.ssd.geometry.describe().c_str());
  std::printf("measured features: %s\n", features.describe().c_str());

  ssd::Ssd device(run.ssd);
  core::configure_ssd(device, strategy, profiles,
                      run.hybrid_page_allocation);
  device.submit(mixed);
  device.run_to_completion();

  const auto result = core::summarize(device);
  std::printf("\nresults:\n");
  std::printf("  avg write %.1f us, avg read %.1f us, total %.1f us\n",
              result.avg_write_us, result.avg_read_us, result.total_us);
  for (const auto& [tenant, metrics] : result.per_tenant) {
    std::printf("  tenant %u: read %s us | write %s us\n", tenant,
                summarize(metrics.read_latency_us).c_str(),
                summarize(metrics.write_latency_us).c_str());
  }
  std::printf("\ndevice counters:\n");
  std::printf("  page ops %llu, conflicts %llu (%.1f%%), gc migrations "
              "%llu, erases %llu\n",
              static_cast<unsigned long long>(result.counters.page_ops),
              static_cast<unsigned long long>(result.counters.conflicts),
              device.metrics().conflict_rate() * 100.0,
              static_cast<unsigned long long>(
                  result.counters.gc_migrations),
              static_cast<unsigned long long>(result.counters.erases));
  const auto wear = device.ftl().blocks().wear_stats();
  std::printf("  wear: %llu total erases (min %llu / max %llu per block)\n",
              static_cast<unsigned long long>(wear.total_erases),
              static_cast<unsigned long long>(wear.min_erases),
              static_cast<unsigned long long>(wear.max_erases));
  std::printf("  avg queue wait: read %.1f us, write %.1f us\n",
              result.counters.avg_read_wait_us(),
              result.counters.avg_write_wait_us());
  std::printf("  channel utilization:");
  for (std::uint32_t ch = 0; ch < run.ssd.geometry.channels; ++ch) {
    std::printf(" %.0f%%", device.channel_utilization(ch) * 100.0);
  }
  std::printf("\n");
  return 0;
}
