// Strategy explorer: exhaustively evaluate every channel-allocation
// strategy for one Table-IV mix (or a custom synthetic mix) and print the
// ranking — the ground truth SSDKeeper's label generator distills.
//
// Usage: strategy_explorer [mix=2] [duration=0.6] [top=12] [hybrid=0]
//                          [threads=0] [seed=0]
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/label_gen.hpp"
#include "trace/catalog.hpp"
#include "trace/workload_stats.hpp"
#include "util/config.hpp"
#include "util/thread_pool.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto mix = static_cast<std::uint32_t>(cfg.get_uint("mix", 2));
  const double duration_s = cfg.get_double("duration", 0.6);
  const std::size_t top = cfg.get_uint("top", 12);
  const std::uint64_t seed = cfg.get_uint("seed", 0);

  const auto requests = trace::build_mix(mix, duration_s, 0, seed);
  const auto stats = trace::mixed_stats(requests);
  std::printf("Mix%u: %s\n", mix, stats.describe().c_str());

  const auto space = core::StrategySpace::for_tenants(4);
  core::LabelGenConfig config;
  config.run.hybrid_page_allocation = cfg.get_bool("hybrid", false);

  ThreadPool pool(static_cast<std::size_t>(cfg.get_uint("threads", 0)));
  const auto sample = core::label_workload(requests, space, config, &pool);
  std::printf("features: %s\n\n", sample.features.describe().c_str());

  std::vector<std::size_t> order(space.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sample.strategy_total_us[a] < sample.strategy_total_us[b];
  });
  std::printf("%-4s %-10s %14s %10s\n", "rank", "strategy", "total us",
              "vs best");
  for (std::size_t r = 0; r < std::min(top, order.size()); ++r) {
    const std::size_t i = order[r];
    std::printf("%-4zu %-10s %14.1f %9.2fx\n", r + 1,
                space.at(i).name().c_str(), sample.strategy_total_us[i],
                sample.strategy_total_us[i] /
                    sample.strategy_total_us[order[0]]);
  }
  std::printf("...\nworst: %s (%.1f us, %.1fx best)\n",
              space.at(order.back()).name().c_str(),
              sample.strategy_total_us[order.back()],
              sample.strategy_total_us[order.back()] /
                  sample.strategy_total_us[order[0]]);
  return 0;
}
