// Multi-objective label generation (LabelObjective) and scheduler-shaped
// sweep determinism: fairness/SLO objectives must pick their own argmin
// (diverging from the latency label where the objectives conflict), and a
// WFQ/DRR-shaped sweep must produce identical labels and scores at any
// thread-pool width.
#include <gtest/gtest.h>

#include <vector>

#include "core/label_gen.hpp"
#include "core/runner.hpp"
#include "core/strategy.hpp"
#include "trace/catalog.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace ssdk::core {
namespace {

/// Committed two-tenant adversarial mix: tenant 0 is a light,
/// latency-sensitive reader; tenant 1 is a heavy sequential writer that
/// dominates the device whenever the two share channels.
std::vector<sim::IoRequest> reader_writer_mix() {
  trace::SyntheticSpec reader;
  reader.name = "light_reader";
  reader.write_fraction = 0.05;
  reader.request_count = 400;
  reader.intensity_rps = 3'000.0;
  reader.mean_request_pages = 2.0;
  reader.address_space_pages = 4096;
  reader.zipf_theta = 0.2;
  reader.sequential_fraction = 0.3;
  reader.seed = 11;

  trace::SyntheticSpec writer;
  writer.name = "heavy_writer";
  writer.write_fraction = 0.95;
  writer.request_count = 1'600;
  writer.intensity_rps = 12'000.0;
  writer.mean_request_pages = 4.0;
  writer.address_space_pages = 8192;
  writer.zipf_theta = 0.2;
  writer.sequential_fraction = 0.6;
  writer.seed = 13;

  const trace::Workload workloads[] = {trace::generate_synthetic(reader),
                                       trace::generate_synthetic(writer)};
  return trace::mix_workloads(workloads);
}

TEST(LabelObjective, NamesAreStable) {
  EXPECT_STREQ(label_objective_name(LabelObjective::kTotalLatency),
               "total_latency");
  EXPECT_STREQ(label_objective_name(LabelObjective::kFairness), "fairness");
  EXPECT_STREQ(label_objective_name(LabelObjective::kSloViolations),
               "slo_violations");
}

TEST(LabelObjective, LatencyObjectiveScoreEqualsTotalUs) {
  const auto requests = reader_writer_mix();
  const StrategySpace space = StrategySpace::for_tenants(2);
  LabelGenConfig config;
  const LabeledSample sample = label_workload(requests, space, config);
  ASSERT_EQ(sample.strategy_score.size(), space.size());
  EXPECT_EQ(sample.strategy_score, sample.strategy_total_us);
  // Legacy argmin semantics: first minimum wins.
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_GE(sample.strategy_total_us[i],
              sample.strategy_total_us[sample.label]);
  }
}

// Acceptance pin: on the committed reader/writer mix, labeling for SLO
// compliance picks a different strategy than labeling for total latency.
// The writer dominates total latency, so the latency label sacrifices the
// reader's isolation; the reader's tight SLO makes that sacrifice visible
// to the SLO objective.
TEST(LabelObjective, SloObjectiveDivergesFromLatencyLabel) {
  const auto requests = reader_writer_mix();
  const StrategySpace space = StrategySpace::for_tenants(2);

  LabelGenConfig config;
  config.run.ssd.sched.shares.push_back(
      {.tenant = 0, .weight = 1, .slo_target_us = 160});

  config.objective = LabelObjective::kTotalLatency;
  const LabeledSample latency = label_workload(requests, space, config);

  config.objective = LabelObjective::kSloViolations;
  const LabeledSample slo = label_workload(requests, space, config);

  // Same simulations, different argmin axis.
  EXPECT_EQ(slo.strategy_total_us, latency.strategy_total_us);
  EXPECT_NE(slo.label, latency.label)
      << "slo label " << slo.label << " (score "
      << slo.strategy_score[slo.label] << " violations), latency label "
      << latency.label << " (score " << slo.strategy_score[latency.label]
      << " violations)";
  // The SLO label must beat the latency label on its own objective — at
  // the cost of some total latency (otherwise the labels could not
  // diverge under the total_us tie-break).
  EXPECT_LT(slo.strategy_score[slo.label],
            slo.strategy_score[latency.label]);
  EXPECT_GT(slo.strategy_total_us[slo.label],
            slo.strategy_total_us[latency.label]);
}

TEST(LabelObjective, FairnessObjectivePicksItsOwnArgmin) {
  const auto requests = reader_writer_mix();
  const StrategySpace space = StrategySpace::for_tenants(2);
  LabelGenConfig config;
  config.objective = LabelObjective::kFairness;
  const LabeledSample sample = label_workload(requests, space, config);
  ASSERT_EQ(sample.strategy_score.size(), space.size());
  // Scores are worst-tenant slowdowns: >= 1 on every strategy (a shared
  // run cannot beat the tenant's isolated baseline on this device).
  for (const double score : sample.strategy_score) {
    EXPECT_GE(score, 1.0);
  }
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_GE(sample.strategy_score[i],
              sample.strategy_score[sample.label]);
  }
  EXPECT_NE(sample.strategy_score, sample.strategy_total_us);
}

/// One scheduler-shaped sweep, swept at several pool widths; every
/// product (label, latencies, scores) must be bit-identical.
void expect_pool_invariant_sweep(sched::Policy policy) {
  const auto requests = trace::build_mix(1, 0.1, 400);
  const StrategySpace space = StrategySpace::for_tenants(4);
  LabelGenConfig config;
  config.run.ssd.sched.policy = policy;
  config.run.ssd.sched.max_outstanding_requests = 4;
  config.run.ssd.sched.shares.push_back({.tenant = 0, .weight = 4});
  config.run.ssd.sched.shares.push_back({.tenant = 3, .weight = 2});

  ThreadPool pool1(1);
  const LabeledSample base = label_workload(requests, space, config, &pool1);
  for (const unsigned threads : {4u, 16u}) {
    ThreadPool pool(threads);
    const LabeledSample other =
        label_workload(requests, space, config, &pool);
    EXPECT_EQ(other.label, base.label)
        << sched::policy_name(policy) << " at " << threads << " workers";
    EXPECT_EQ(other.strategy_total_us, base.strategy_total_us);
    EXPECT_EQ(other.strategy_score, base.strategy_score);
  }
}

TEST(SchedSweepDeterminism, WfqIdenticalAcrossPoolWidths) {
  expect_pool_invariant_sweep(sched::Policy::kWfq);
}

TEST(SchedSweepDeterminism, DrrIdenticalAcrossPoolWidths) {
  expect_pool_invariant_sweep(sched::Policy::kDrr);
}

}  // namespace
}  // namespace ssdk::core
