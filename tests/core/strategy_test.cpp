#include "core/strategy.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace ssdk::core {
namespace {

TEST(StrategySpace, TwoTenantsHasEightStrategies) {
  const auto space = StrategySpace::for_tenants(2);
  EXPECT_EQ(space.size(), 8u);  // paper Section IV.C
  EXPECT_EQ(space.at(0).name(), "Shared");
  EXPECT_EQ(space.at(1).name(), "7:1");
  EXPECT_EQ(space.at(7).name(), "1:7");
}

TEST(StrategySpace, FourTenantsHasFortyTwoStrategies) {
  const auto space = StrategySpace::for_tenants(4);
  EXPECT_EQ(space.size(), 42u);  // paper: 8 + 34
  // Contains the paper's examples...
  EXPECT_NO_THROW(space.index_of("5:1:1:1"));
  EXPECT_NO_THROW(space.index_of("4:2:1:1"));
  EXPECT_NO_THROW(space.index_of("3:3:1:1"));
  EXPECT_NO_THROW(space.index_of("3:2:2:1"));
  // ...but not 2:2:2:2, which the paper folds into Isolated.
  EXPECT_THROW(space.index_of("2:2:2:2"), std::out_of_range);
}

TEST(StrategySpace, AllNamesUnique) {
  const auto space = StrategySpace::for_tenants(4);
  std::set<std::string> names;
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_TRUE(names.insert(space.at(i).name()).second);
  }
}

TEST(StrategySpace, FourPartPartsSumToChannels) {
  const auto space = StrategySpace::for_tenants(4);
  for (std::size_t i = 0; i < space.size(); ++i) {
    const Strategy& s = space.at(i);
    if (s.kind != StrategyKind::kFourPart) continue;
    EXPECT_EQ(s.parts[0] + s.parts[1] + s.parts[2] + s.parts[3], 8u);
    for (const auto p : s.parts) EXPECT_GE(p, 1u);
  }
}

TEST(StrategySpace, RejectsUnsupportedTenantCounts) {
  EXPECT_THROW(StrategySpace::for_tenants(3), std::invalid_argument);
  EXPECT_THROW(StrategySpace::for_tenants(1), std::invalid_argument);
}

TEST(StrategySpace, IsolatedBaselines) {
  EXPECT_EQ(StrategySpace::for_tenants(2).isolated().name(), "4:4");
  EXPECT_EQ(StrategySpace::for_tenants(4).isolated().name(), "2:2:2:2");
  EXPECT_EQ(StrategySpace::for_tenants(4).shared().name(), "Shared");
}

std::vector<TenantProfile> two_profiles(bool t0_read, bool t1_read,
                                        double i0 = 0.5, double i1 = 0.5) {
  return {TenantProfile{0, t0_read, i0}, TenantProfile{1, t1_read, i1}};
}

TEST(AssignChannels, SharedGivesEveryoneEverything) {
  const auto profiles = two_profiles(false, true);
  const auto sets = assign_channels(Strategy{}, profiles, 8);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].size(), 8u);
  EXPECT_EQ(sets[1].size(), 8u);
}

TEST(AssignChannels, TwoPartSplitsByCharacteristic) {
  Strategy s;
  s.kind = StrategyKind::kTwoPart;
  s.parts = {6, 2, 0, 0};
  const auto profiles = two_profiles(false, true);  // t0 write, t1 read
  const auto sets = assign_channels(s, profiles, 8);
  EXPECT_EQ(sets[0], (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(sets[1], (std::vector<std::uint32_t>{6, 7}));
}

TEST(AssignChannels, TwoPartHomogeneousFallsBackToIntensity) {
  Strategy s;
  s.kind = StrategyKind::kTwoPart;
  s.parts = {7, 1, 0, 0};
  // Both read-dominated; tenant 1 is the heavy one -> gets part 0.
  const auto profiles = two_profiles(true, true, 0.2, 0.8);
  const auto sets = assign_channels(s, profiles, 8);
  EXPECT_EQ(sets[1].size(), 7u);
  EXPECT_EQ(sets[0].size(), 1u);
}

TEST(AssignChannels, FourTenantsTwoPartGroupsByCharacteristic) {
  Strategy s;
  s.kind = StrategyKind::kTwoPart;
  s.parts = {3, 5, 0, 0};
  const std::vector<TenantProfile> profiles{
      {0, false, 0.4}, {1, true, 0.3}, {2, false, 0.2}, {3, true, 0.1}};
  const auto sets = assign_channels(s, profiles, 8);
  EXPECT_EQ(sets[0], sets[2]);  // both write-dominated share part 0
  EXPECT_EQ(sets[1], sets[3]);
  EXPECT_EQ(sets[0].size(), 3u);
  EXPECT_EQ(sets[1].size(), 5u);
}

TEST(AssignChannels, FourPartLargestToMostIntense) {
  Strategy s;
  s.kind = StrategyKind::kFourPart;
  s.parts = {1, 1, 5, 1};  // unsorted on purpose
  const std::vector<TenantProfile> profiles{
      {0, false, 0.1}, {1, true, 0.6}, {2, false, 0.2}, {3, true, 0.1}};
  const auto sets = assign_channels(s, profiles, 8);
  EXPECT_EQ(sets[1].size(), 5u);  // most intense tenant
  EXPECT_EQ(sets[2].size(), 1u);
  // Channel ranges are disjoint and cover [0, 8).
  std::set<std::uint32_t> all;
  for (const auto& set : sets) {
    for (const auto ch : set) EXPECT_TRUE(all.insert(ch).second);
  }
  EXPECT_EQ(all.size(), 8u);
}

TEST(AssignChannels, FourPartNeedsFourTenants) {
  Strategy s;
  s.kind = StrategyKind::kFourPart;
  s.parts = {2, 2, 2, 2};
  const auto profiles = two_profiles(false, true);
  EXPECT_THROW(assign_channels(s, profiles, 8), std::invalid_argument);
}

TEST(AssignChannels, BadPartSumRejected) {
  Strategy s;
  s.kind = StrategyKind::kTwoPart;
  s.parts = {5, 5, 0, 0};
  const auto profiles = two_profiles(false, true);
  EXPECT_THROW(assign_channels(s, profiles, 8), std::invalid_argument);
}

TEST(AssignChannels, TieOnIntensityIsStable) {
  Strategy s;
  s.kind = StrategyKind::kFourPart;
  s.parts = {5, 1, 1, 1};
  const std::vector<TenantProfile> profiles{
      {0, false, 0.25}, {1, true, 0.25}, {2, false, 0.25}, {3, true, 0.25}};
  const auto sets = assign_channels(s, profiles, 8);
  EXPECT_EQ(sets[0].size(), 5u);  // first tenant wins the tie
}

}  // namespace
}  // namespace ssdk::core
