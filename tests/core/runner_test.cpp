#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "core/features.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::core {
namespace {

std::vector<sim::IoRequest> small_mix(std::uint64_t seed = 1) {
  trace::SyntheticSpec writer;
  writer.write_fraction = 0.9;
  writer.request_count = 400;
  writer.intensity_rps = 8000.0;
  writer.seed = seed;
  trace::SyntheticSpec reader;
  reader.write_fraction = 0.1;
  reader.request_count = 400;
  reader.intensity_rps = 8000.0;
  reader.seed = seed + 1;
  return trace::mix_workloads(std::vector<trace::Workload>{
      trace::generate_synthetic(writer), trace::generate_synthetic(reader)});
}

std::vector<TenantProfile> profiles_of(
    std::span<const sim::IoRequest> requests) {
  return features_of(requests).profiles(2);
}

TEST(Runner, SummaryIsSumOfAverages) {
  const auto requests = small_mix();
  const auto profiles = profiles_of(requests);
  const RunResult r =
      run_with_strategy(requests, Strategy{}, profiles, RunConfig{});
  EXPECT_GT(r.avg_read_us, 0.0);
  EXPECT_GT(r.avg_write_us, r.avg_read_us);  // writes are slower
  EXPECT_DOUBLE_EQ(r.total_us, r.avg_read_us + r.avg_write_us);
  // p99 can sit below the mean only under extreme outlier mass; here it
  // must at least be a positive latency no smaller than the floor.
  EXPECT_GT(r.p99_read_us, 0.0);
  EXPECT_GT(r.p99_write_us, r.p99_read_us);
  EXPECT_EQ(r.per_tenant.size(), 2u);
  EXPECT_EQ(r.counters.host_reads + r.counters.host_writes,
            requests.size());
}

TEST(Runner, ConfigureSsdRestrictsChannels) {
  ssd::Ssd device{ssd::SsdOptions{}};
  Strategy s;
  s.kind = StrategyKind::kTwoPart;
  s.parts = {6, 2, 0, 0};
  const std::vector<TenantProfile> profiles{{0, false, 0.5},
                                            {1, true, 0.5}};
  configure_ssd(device, s, profiles, /*hybrid=*/true);
  EXPECT_EQ(device.ftl().tenant_channels(0).size(), 6u);
  EXPECT_EQ(device.ftl().tenant_channels(1).size(), 2u);
  // Hybrid: write-dominated tenant 0 -> dynamic; read tenant 1 -> static.
  EXPECT_EQ(device.ftl().tenant_alloc_mode(0), ftl::AllocMode::kDynamic);
  EXPECT_EQ(device.ftl().tenant_alloc_mode(1), ftl::AllocMode::kStatic);
}

TEST(Runner, NoHybridKeepsEverythingStatic) {
  ssd::Ssd device{ssd::SsdOptions{}};
  const std::vector<TenantProfile> profiles{{0, false, 0.5},
                                            {1, true, 0.5}};
  configure_ssd(device, Strategy{}, profiles, /*hybrid=*/false);
  EXPECT_EQ(device.ftl().tenant_alloc_mode(0), ftl::AllocMode::kStatic);
  EXPECT_EQ(device.ftl().tenant_alloc_mode(1), ftl::AllocMode::kStatic);
}

TEST(Runner, DeterministicAcrossCalls) {
  const auto requests = small_mix(5);
  const auto profiles = profiles_of(requests);
  const RunResult a =
      run_with_strategy(requests, Strategy{}, profiles, RunConfig{});
  const RunResult b =
      run_with_strategy(requests, Strategy{}, profiles, RunConfig{});
  EXPECT_DOUBLE_EQ(a.total_us, b.total_us);
  EXPECT_EQ(a.counters.conflicts, b.counters.conflicts);
}

TEST(Runner, DeviceFullDegradesGracefully) {
  // GC off on the tiny geometry: the device must run out of pages. The
  // runner reports a truncated-but-usable result instead of throwing.
  RunConfig config;
  config.ssd.geometry = sim::Geometry::tiny();
  config.ssd.gc_enabled = false;
  std::vector<sim::IoRequest> requests;
  for (std::uint64_t i = 0; i < 300; ++i) {
    sim::IoRequest r;
    r.id = i;
    r.tenant = 0;
    r.type = sim::OpType::kWrite;
    r.lpn = i % 16;
    r.page_count = 1;
    r.arrival = i * 200 * kMicrosecond;
    requests.push_back(r);
  }
  const std::vector<TenantProfile> profiles{{0, false, 1.0}};
  RunResult result;
  ASSERT_NO_THROW(
      result = run_with_strategy(requests, Strategy{}, profiles, config));
  EXPECT_TRUE(result.device_full);
  EXPECT_EQ(result.device_full_tenant, 0u);
  EXPECT_NE(result.abort_reason.find("device full"), std::string::npos);
  EXPECT_EQ(result.counters.failed_requests, 1u);
  // Everything that completed before the abort is still reported.
  EXPECT_GT(result.counters.host_writes, 0u);
  EXPECT_GT(result.avg_write_us, 0.0);
}

TEST(Runner, HealthyRunReportsNoDeviceFull) {
  const auto requests = small_mix(3);
  const auto profiles = profiles_of(requests);
  const RunResult r =
      run_with_strategy(requests, Strategy{}, profiles, RunConfig{});
  EXPECT_FALSE(r.device_full);
  EXPECT_TRUE(r.abort_reason.empty());
  EXPECT_EQ(r.counters.failed_requests, 0u);
}

TEST(Runner, StrategiesActuallyChangeOutcomes) {
  const auto requests = small_mix(7);
  const auto profiles = profiles_of(requests);
  Strategy lopsided;
  lopsided.kind = StrategyKind::kTwoPart;
  lopsided.parts = {1, 7, 0, 0};
  const RunResult shared =
      run_with_strategy(requests, Strategy{}, profiles, RunConfig{});
  const RunResult skewed =
      run_with_strategy(requests, lopsided, profiles, RunConfig{});
  EXPECT_NE(shared.total_us, skewed.total_us);
}

}  // namespace
}  // namespace ssdk::core
