#include "core/label_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ssdk::core {
namespace {

DatasetGenConfig small_config(std::uint64_t workloads = 4) {
  DatasetGenConfig config;
  config.workloads = workloads;
  config.requests_per_workload = 400;
  config.seed = 11;
  return config;
}

TEST(LabelGen, SynthesizeMixRespectsCountAndTenants) {
  const auto config = small_config();
  const auto requests = synthesize_mix(config, 0);
  EXPECT_EQ(requests.size(), config.requests_per_workload);
  bool tenants_seen[4] = {false, false, false, false};
  for (const auto& r : requests) {
    ASSERT_LT(r.tenant, 4u);
    tenants_seen[r.tenant] = true;
  }
  for (const bool seen : tenants_seen) EXPECT_TRUE(seen);
}

TEST(LabelGen, SynthesizeMixDeterministicPerIndex) {
  const auto config = small_config();
  const auto a = synthesize_mix(config, 3);
  const auto b = synthesize_mix(config, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 13) {
    ASSERT_EQ(a[i].lpn, b[i].lpn);
    ASSERT_EQ(a[i].arrival, b[i].arrival);
  }
  const auto c = synthesize_mix(config, 4);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.size(), c.size()) && !differs;
       ++i) {
    differs = a[i].lpn != c[i].lpn;
  }
  EXPECT_TRUE(differs);
}

TEST(LabelGen, LabelIsArgminOfStrategyLatencies) {
  const auto config = small_config();
  const auto requests = synthesize_mix(config, 1);
  const auto space = StrategySpace::for_tenants(4);
  const LabeledSample sample =
      label_workload(requests, space, config.label, nullptr);
  ASSERT_EQ(sample.strategy_total_us.size(), space.size());
  const auto best = std::min_element(sample.strategy_total_us.begin(),
                                     sample.strategy_total_us.end());
  EXPECT_EQ(sample.label,
            static_cast<std::uint32_t>(
                std::distance(sample.strategy_total_us.begin(), best)));
  for (const double v : sample.strategy_total_us) EXPECT_GT(v, 0.0);
}

TEST(LabelGen, ParallelAndSerialAgree) {
  const auto config = small_config();
  const auto requests = synthesize_mix(config, 2);
  const auto space = StrategySpace::for_tenants(4);
  ThreadPool pool(4);
  const auto serial = label_workload(requests, space, config.label, nullptr);
  const auto parallel = label_workload(requests, space, config.label, &pool);
  EXPECT_EQ(serial.label, parallel.label);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.strategy_total_us[i],
                     parallel.strategy_total_us[i]);
  }
}

/// The shared-prefix fork sweep is a pure wall-clock optimization: at any
/// fork point it must yield the exact LabeledSample of the cold sweep that
/// re-simulates the prefix per candidate.
TEST(LabelGen, ForkSweepMatchesColdSweep) {
  const auto config = small_config();
  const auto space = StrategySpace::for_tenants(4);
  for (const double fork_point : {0.0, 0.4, 0.9}) {
    const auto requests = synthesize_mix(config, 1);
    LabelGenConfig cold = config.label;
    cold.fork_point = fork_point;
    cold.shared_prefix_fork = false;
    LabelGenConfig fork = cold;
    fork.shared_prefix_fork = true;

    const LabeledSample a = label_workload(requests, space, cold, nullptr);
    const LabeledSample b = label_workload(requests, space, fork, nullptr);
    EXPECT_EQ(a.label, b.label) << "fork_point " << fork_point;
    ASSERT_EQ(a.strategy_total_us.size(), b.strategy_total_us.size());
    for (std::size_t i = 0; i < a.strategy_total_us.size(); ++i) {
      EXPECT_EQ(a.strategy_total_us[i], b.strategy_total_us[i])
          << "fork_point " << fork_point << ", strategy " << i;
    }
  }
}

/// Forked sweeps dispatched on a pool agree with the serial fork sweep —
/// each fork is an independent device, so the parallel_for order cannot
/// leak into results.
TEST(LabelGen, ForkSweepParallelAndSerialAgree) {
  const auto config = small_config();
  const auto requests = synthesize_mix(config, 2);
  const auto space = StrategySpace::for_tenants(4);
  LabelGenConfig fork = config.label;
  fork.fork_point = 0.5;
  fork.shared_prefix_fork = true;
  ThreadPool pool(4);
  const auto serial = label_workload(requests, space, fork, nullptr);
  const auto parallel = label_workload(requests, space, fork, &pool);
  EXPECT_EQ(serial.label, parallel.label);
  EXPECT_EQ(serial.strategy_total_us, parallel.strategy_total_us);
}

TEST(LabelGen, GenerateDatasetShapes) {
  const auto config = small_config(6);
  const auto space = StrategySpace::for_tenants(4);
  ThreadPool pool(4);
  const GeneratedDataset out = generate_dataset(space, config, pool);
  EXPECT_EQ(out.data.size(), 6u);
  EXPECT_EQ(out.data.feature_dim(), kFeatureDim);
  EXPECT_EQ(out.samples.size(), 6u);
  for (const auto label : out.data.labels()) {
    EXPECT_LT(label, space.size());
  }
  // Features in the dataset match the per-sample features.
  for (std::size_t i = 0; i < out.samples.size(); ++i) {
    const auto row = out.samples[i].features.to_vector();
    for (std::size_t c = 0; c < kFeatureDim; ++c) {
      EXPECT_EQ(out.data.features()(i, c), row[c]);
    }
  }
}

}  // namespace
}  // namespace ssdk::core
