// Keeper robustness under power loss and bad re-partitions.
//
// Two behaviours pinned here (DESIGN.md §14): after a power cut the
// keeper abandons the pre-crash partition and re-enters Algorithm 2's
// collection phase on the safe Shared allocation; and the p99 watchdog
// rolls back a re-partition that makes tail latency worse than the
// incumbent, vetoing the regressor.
#include "core/keeper.hpp"

#include <gtest/gtest.h>

#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::core {
namespace {

/// Allocator that always answers with the given strategy index.
ChannelAllocator constant_allocator(const StrategySpace& space,
                                    std::uint32_t winner) {
  nn::Matrix w(kFeatureDim, space.size());
  nn::Matrix b(1, space.size());
  b(0, winner) = 10.0;
  std::vector<nn::DenseLayer> layers;
  layers.emplace_back(std::move(w), std::move(b),
                      nn::Activation::kIdentity);
  nn::StandardScaler scaler;
  scaler.set_parameters(std::vector<double>(kFeatureDim, 0.0),
                        std::vector<double>(kFeatureDim, 1.0));
  return ChannelAllocator(nn::Mlp(std::move(layers)), std::move(scaler),
                          space);
}

std::vector<sim::IoRequest> four_tenant_mix(std::uint64_t requests_each,
                                            std::uint64_t address_space = 4096) {
  std::vector<trace::Workload> workloads;
  for (std::uint32_t t = 0; t < 4; ++t) {
    trace::SyntheticSpec spec;
    spec.write_fraction = t % 2 == 0 ? 0.9 : 0.1;
    spec.request_count = requests_each;
    spec.intensity_rps = 5000.0;
    spec.address_space_pages = address_space;
    spec.seed = 100 + t;
    workloads.push_back(trace::generate_synthetic(spec));
  }
  return trace::mix_workloads(workloads);
}

TEST(KeeperPower, PowerCutReentersCollectionOnShared) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(
      space, static_cast<std::uint32_t>(space.index_of("4:2:1:1")));
  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;

  // Cut power at 100ms — after the initial switch at ~50ms — and let the
  // device recover in place and finish the workload. Few pages per unit
  // keep the modeled mount scan short, so the post-recovery collection
  // window still elapses inside the trace.
  ssd::SsdOptions options;
  options.power.enabled = true;
  options.power.cut_at_time = 100 * kMillisecond;
  options.power.auto_recover = true;
  options.geometry.blocks_per_plane = 32;
  options.geometry.pages_per_block = 16;

  ssd::Ssd device{options};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  // ~300ms of arrivals per tenant on a small logical footprint.
  device.submit(four_tenant_mix(1500, 128));
  device.run_to_completion();

  EXPECT_EQ(device.metrics().counters().power_cycles, 1u);
  EXPECT_EQ(keeper.power_recoveries(), 1u);

  // Decision log: initial switch to 4:2:1:1, the recovery fallback to
  // Shared at the cut, then a fresh collection window elapses and the
  // (constant) model re-applies 4:2:1:1.
  const auto& decisions = keeper.decisions();
  ASSERT_GE(decisions.size(), 3u);
  EXPECT_EQ(decisions[0].second.name(), "4:2:1:1");
  EXPECT_EQ(decisions[1].second.name(), "Shared");
  EXPECT_GE(decisions[1].first, options.power.cut_at_time);
  EXPECT_EQ(decisions[2].second.name(), "4:2:1:1");

  // The post-recovery collection window starts at the recovered clock,
  // not at the original schedule: the re-switch lands a full window
  // after the cut.
  EXPECT_GE(decisions[2].first,
            decisions[1].first + config.collect_window_ns);
}

TEST(KeeperPower, WatchdogRollsBackRegressingRepartition) {
  const auto space = StrategySpace::for_tenants(4);
  // A deliberately terrible answer for an even four-way mix: tenant 0
  // gets five channels, the rest one each.
  const auto allocator = constant_allocator(
      space, static_cast<std::uint32_t>(space.index_of("5:1:1:1")));
  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;
  config.watchdog_window_ns = 50 * kMillisecond;
  config.rollback_p99_ratio = 1.05;

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(four_tenant_mix(1500));
  device.run_to_completion();

  ASSERT_TRUE(keeper.switched());
  // The squeeze on tenants 1-3 blows the p99 budget; the watchdog
  // restores the incumbent (Shared) and records the rollback.
  EXPECT_EQ(keeper.rollbacks(), 1u);
  ASSERT_TRUE(keeper.chosen_strategy().has_value());
  EXPECT_EQ(keeper.chosen_strategy()->name(), "Shared");
  for (sim::TenantId t = 0; t < 4; ++t) {
    EXPECT_EQ(device.ftl().tenant_channels(t).size(), 8u)
        << "tenant " << t << " not restored to the shared allocation";
  }
}

TEST(KeeperPower, WatchdogKeepsSwitchUnderLenientThreshold) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(
      space, static_cast<std::uint32_t>(space.index_of("5:1:1:1")));
  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;
  config.watchdog_window_ns = 50 * kMillisecond;
  config.rollback_p99_ratio = 100.0;  // nothing short of a meltdown rolls back

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(four_tenant_mix(1500));
  device.run_to_completion();

  ASSERT_TRUE(keeper.switched());
  EXPECT_EQ(keeper.rollbacks(), 0u);
  EXPECT_EQ(keeper.chosen_strategy()->name(), "5:1:1:1");
  EXPECT_EQ(device.ftl().tenant_channels(0).size(), 5u);
}

}  // namespace
}  // namespace ssdk::core
