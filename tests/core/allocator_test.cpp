#include "core/allocator.hpp"

#include <gtest/gtest.h>

#include "core/learner.hpp"

namespace ssdk::core {
namespace {

/// Hand-built allocator whose network always prefers class `winner`.
ChannelAllocator constant_allocator(const StrategySpace& space,
                                    std::uint32_t winner) {
  nn::Matrix w(kFeatureDim, space.size());  // zeros
  nn::Matrix b(1, space.size());
  b(0, winner) = 10.0;
  std::vector<nn::DenseLayer> layers;
  layers.emplace_back(std::move(w), std::move(b),
                      nn::Activation::kIdentity);
  nn::StandardScaler scaler;
  scaler.set_parameters(std::vector<double>(kFeatureDim, 0.0),
                        std::vector<double>(kFeatureDim, 1.0));
  return ChannelAllocator(nn::Mlp(std::move(layers)), std::move(scaler),
                          space);
}

TEST(Allocator, PredictsArgmaxStrategy) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(space, 7);
  MixFeatures f;
  f.intensity_level = 3;
  EXPECT_EQ(allocator.predict_index(f), 7u);
  EXPECT_EQ(allocator.predict(f), space.at(7));
}

TEST(Allocator, RejectsShapeMismatches) {
  const auto space = StrategySpace::for_tenants(4);
  // Wrong output size.
  nn::Mlp bad_out({kFeatureDim, 8, 10}, nn::Activation::kReLU, 1);
  EXPECT_THROW(
      ChannelAllocator(std::move(bad_out), nn::StandardScaler{}, space),
      std::invalid_argument);
  // Wrong input size.
  nn::Mlp bad_in({5, 8, 42}, nn::Activation::kReLU, 1);
  EXPECT_THROW(
      ChannelAllocator(std::move(bad_in), nn::StandardScaler{}, space),
      std::invalid_argument);
}

TEST(Allocator, OverheadAccountingMatchesPaperFormulas) {
  const auto space = StrategySpace::for_tenants(4);
  nn::Mlp model({9, 64, 42}, nn::Activation::kLogistic, 1);
  nn::StandardScaler scaler;
  scaler.set_parameters(std::vector<double>(9, 0.0),
                        std::vector<double>(9, 1.0));
  const ChannelAllocator allocator(std::move(model), std::move(scaler),
                                   space);
  EXPECT_EQ(allocator.multiplications_per_inference(), 9u * 64 + 64u * 42);
  EXPECT_EQ(allocator.parameter_bytes(),
            (9u * 64 + 64 + 64u * 42 + 42) * sizeof(double));
  // "Negligible" overhead claim: well under 1 MB.
  EXPECT_LT(allocator.parameter_bytes(), 1u << 20);
}

TEST(Allocator, SaveLoadRoundTripPreservesPredictions) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(space, 13);
  const std::string path = testing::TempDir() + "/ssdk_allocator_test.txt";
  allocator.save(path);
  const auto loaded = ChannelAllocator::load(path, space);
  MixFeatures f;
  f.intensity_level = 9;
  f.proportion = {0.25, 0.25, 0.25, 0.25};
  EXPECT_EQ(loaded.predict_index(f), allocator.predict_index(f));
  std::remove(path.c_str());
}

TEST(Allocator, ScalerAffectsPrediction) {
  // A network whose output depends on feature 0 sign: scaling matters.
  const auto space = StrategySpace::for_tenants(2);
  nn::Matrix w(kFeatureDim, space.size());
  w(0, 1) = 1.0;  // class 1 score = scaled level
  nn::Matrix b(1, space.size());
  std::vector<nn::DenseLayer> layers;
  layers.emplace_back(std::move(w), std::move(b),
                      nn::Activation::kIdentity);
  nn::StandardScaler scaler;
  std::vector<double> mean(kFeatureDim, 0.0);
  mean[0] = 10.0;  // levels below 10 scale negative -> class 0
  scaler.set_parameters(std::move(mean),
                        std::vector<double>(kFeatureDim, 1.0));
  const ChannelAllocator allocator(nn::Mlp(std::move(layers)),
                                   std::move(scaler), space);
  MixFeatures low, high;
  low.intensity_level = 2;
  high.intensity_level = 18;
  EXPECT_EQ(allocator.predict_index(low), 0u);
  EXPECT_EQ(allocator.predict_index(high), 1u);
}

}  // namespace
}  // namespace ssdk::core
