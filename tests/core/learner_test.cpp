#include "core/learner.hpp"

#include <gtest/gtest.h>

namespace ssdk::core {
namespace {

/// Synthetic dataset whose label is a simple function of the features —
/// learnable without a simulator in the loop.
nn::Dataset easy_dataset(std::size_t n, const StrategySpace& space) {
  Rng rng(3);
  nn::Matrix x(n, kFeatureDim);
  std::vector<std::uint32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double level = rng.uniform_real(0.0, 19.0);
    x(i, 0) = level;
    for (std::size_t c = 1; c < 5; ++c) {
      x(i, c) = rng.bernoulli(0.5) ? 1.0 : 0.0;
    }
    double rest = 1.0;
    for (std::size_t c = 5; c < 8; ++c) {
      x(i, c) = rng.uniform_real(0.0, rest);
      rest -= x(i, c);
    }
    x(i, 8) = rest;
    // Label: low intensity -> Shared (0); otherwise pick by the dominant
    // tenant's characteristic.
    if (level < 7.0) {
      y[i] = 0;
    } else {
      y[i] = x(i, 1) > 0.5 ? 1u : static_cast<std::uint32_t>(
                                      space.size() - 1);
    }
  }
  return nn::Dataset(std::move(x), std::move(y));
}

TEST(Learner, LearnsRuleBasedLabels) {
  const auto space = StrategySpace::for_tenants(4);
  const auto data = easy_dataset(600, space);
  LearnerConfig config;
  config.max_iterations = 80;
  const LearnedModel learned = train_strategy_learner(data, space, config);
  EXPECT_GT(learned.history.final_accuracy, 0.9);
  EXPECT_LT(learned.history.final_loss, 0.5);
  EXPECT_EQ(learned.history.train_loss.size(), 80u);
}

TEST(Learner, AllPaperOptimizersTrain) {
  const auto space = StrategySpace::for_tenants(4);
  const auto data = easy_dataset(300, space);
  for (const char* opt : {"sgd", "sgd-momentum", "adam"}) {
    LearnerConfig config;
    config.optimizer = opt;
    config.max_iterations = 40;
    const LearnedModel learned =
        train_strategy_learner(data, space, config);
    EXPECT_GT(learned.history.final_accuracy, 0.5) << opt;
    EXPECT_EQ(learned.history.optimizer_name, opt);
  }
}

TEST(Learner, ModelShapeMatchesPaper) {
  const auto space = StrategySpace::for_tenants(4);
  const auto data = easy_dataset(100, space);
  LearnerConfig config;
  config.max_iterations = 2;
  const LearnedModel learned = train_strategy_learner(data, space, config);
  EXPECT_EQ(learned.allocator.model().input_size(), 9u);
  EXPECT_EQ(learned.allocator.model().output_size(), 42u);
  EXPECT_EQ(learned.allocator.multiplications_per_inference(),
            9u * 64 + 64u * 42);
}

TEST(Learner, RejectsBadInputs) {
  const auto space = StrategySpace::for_tenants(4);
  EXPECT_THROW(train_strategy_learner(nn::Dataset(), space, LearnerConfig{}),
               std::invalid_argument);
  // Label outside the space.
  nn::Matrix x(1, kFeatureDim);
  nn::Dataset bad(std::move(x), {99});
  EXPECT_THROW(train_strategy_learner(bad, space, LearnerConfig{}),
               std::invalid_argument);
  // Wrong feature dimension.
  nn::Dataset wrong_dim(nn::Matrix(1, 5), {0});
  EXPECT_THROW(
      train_strategy_learner(wrong_dim, space, LearnerConfig{}),
      std::invalid_argument);
}

TEST(Learner, DeterministicGivenSeed) {
  const auto space = StrategySpace::for_tenants(4);
  const auto data = easy_dataset(200, space);
  LearnerConfig config;
  config.max_iterations = 20;
  const auto a = train_strategy_learner(data, space, config);
  const auto b = train_strategy_learner(data, space, config);
  EXPECT_DOUBLE_EQ(a.history.final_loss, b.history.final_loss);
  EXPECT_DOUBLE_EQ(a.history.final_accuracy, b.history.final_accuracy);
}

}  // namespace
}  // namespace ssdk::core
