// Periodic re-prediction mode: the keeper adapts when the tenant mix
// drifts mid-run.
#include <gtest/gtest.h>

#include "core/keeper.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::core {
namespace {

/// Allocator that answers Shared for read-heavy mixes and 6:2 for
/// write-heavy ones (decided by the total write proportion feature).
ChannelAllocator threshold_allocator(const StrategySpace& space) {
  // Logits: class(Shared) = +w . read proportions, class(6:2) = +w .
  // write proportions. Identity scaler. Two-layer not needed.
  nn::Matrix w(kFeatureDim, space.size());
  const std::size_t six_two = space.index_of("6:2");
  // Feature layout: [level, char x4, prop x4]. A tenant's proportion
  // counts toward "write side" when its char bit is 0; approximate with
  // the char bits themselves: more read-dominated tenants -> Shared.
  for (std::size_t c = 1; c <= 4; ++c) {
    w(c, 0) = 4.0;        // read-dominated tenant bits favor Shared
    w(c, six_two) = -4.0;
  }
  nn::Matrix b(1, space.size());
  b(0, six_two) = 4.0;  // with few read bits set, 6:2 wins
  std::vector<nn::DenseLayer> layers;
  layers.emplace_back(std::move(w), std::move(b),
                      nn::Activation::kIdentity);
  nn::StandardScaler scaler;
  scaler.set_parameters(std::vector<double>(kFeatureDim, 0.0),
                        std::vector<double>(kFeatureDim, 1.0));
  return ChannelAllocator(nn::Mlp(std::move(layers)), std::move(scaler),
                          space);
}

/// Phase 1 (0..0.5s): all four tenants read-heavy. Phase 2 (0.5..1s):
/// all four write-heavy.
std::vector<sim::IoRequest> drifting_mix() {
  std::vector<trace::Workload> workloads(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    trace::SyntheticSpec phase1;
    phase1.write_fraction = 0.05;
    phase1.request_count = 1200;
    phase1.intensity_rps = 2400.0;
    phase1.seed = 10 + t;
    trace::SyntheticSpec phase2 = phase1;
    phase2.write_fraction = 0.95;
    phase2.seed = 20 + t;
    auto w = trace::generate_synthetic(phase1);
    auto second = trace::generate_synthetic(phase2);
    // Phase 2 starts strictly after phase 1's tail (Poisson arrivals can
    // spill past the nominal 0.5 s boundary).
    const SimTime offset =
        std::max<SimTime>(500 * kMillisecond,
                          w.empty() ? 0 : w.back().arrival + kMillisecond);
    for (auto& rec : second) {
      rec.arrival += offset;
      w.push_back(rec);
    }
    workloads[t] = std::move(w);
  }
  return trace::mix_workloads(workloads);
}

TEST(KeeperPeriodic, AdaptsToDriftingMix) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = threshold_allocator(space);

  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;
  config.repredict_interval_ns = 100 * kMillisecond;

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(drifting_mix());
  device.run_to_completion();

  ASSERT_TRUE(keeper.switched());
  // Phase 1 decisions must be Shared; after the drift, 6:2.
  const auto& decisions = keeper.decisions();
  ASSERT_GE(decisions.size(), 4u);
  EXPECT_EQ(decisions.front().second.name(), "Shared");
  EXPECT_EQ(decisions.back().second.name(), "6:2");
  EXPECT_GE(keeper.strategy_changes(), 2u);
}

TEST(KeeperPeriodic, OneShotNeverRepredicts) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = threshold_allocator(space);
  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;
  config.repredict_interval_ns = 0;  // Algorithm 2 as published

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(drifting_mix());
  device.run_to_completion();
  EXPECT_EQ(keeper.decisions().size(), 1u);
  EXPECT_EQ(keeper.chosen_strategy()->name(), "Shared");
}

TEST(KeeperPeriodic, StableMixKeepsStrategy) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = threshold_allocator(space);
  KeeperConfig config;
  config.collect_window_ns = 40 * kMillisecond;
  config.repredict_interval_ns = 80 * kMillisecond;

  std::vector<trace::Workload> workloads(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    trace::SyntheticSpec spec;
    spec.write_fraction = 0.05;
    spec.request_count = 2000;
    spec.intensity_rps = 4000.0;
    spec.seed = 30 + t;
    workloads[t] = trace::generate_synthetic(spec);
  }
  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(trace::mix_workloads(workloads));
  device.run_to_completion();
  ASSERT_GE(keeper.decisions().size(), 3u);
  // Re-predictions confirmed the incumbent: exactly one change (initial).
  EXPECT_EQ(keeper.strategy_changes(), 1u);
}

TEST(KeeperPeriodic, DecisionTimesAreMonotone) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = threshold_allocator(space);
  KeeperConfig config;
  config.collect_window_ns = 30 * kMillisecond;
  config.repredict_interval_ns = 60 * kMillisecond;

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(drifting_mix());
  device.run_to_completion();
  const auto& decisions = keeper.decisions();
  for (std::size_t i = 1; i < decisions.size(); ++i) {
    EXPECT_GT(decisions[i].first, decisions[i - 1].first);
  }
}

}  // namespace
}  // namespace ssdk::core
