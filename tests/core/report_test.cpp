#include "core/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace ssdk::core {
namespace {

TEST(Report, SweepCsvLayout) {
  SweepTable table;
  table.x_label = "write_prop";
  table.x = {0.1, 0.2};
  table.series = {{"Shared", {1.0, 2.0}}, {"7:1", {3.0, 4.0}}};
  std::ostringstream os;
  write_sweep_csv(os, table);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "write_prop,Shared,7:1");
  std::getline(is, line);
  EXPECT_EQ(line.substr(0, 8), "0.100000");
  EXPECT_NE(line.find("3.000000"), std::string::npos);
}

TEST(Report, ValidationCatchesLengthMismatch) {
  SweepTable table;
  table.x = {1.0, 2.0};
  table.series = {{"s", {1.0}}};
  EXPECT_THROW(table.validate(), std::invalid_argument);
  std::ostringstream os;
  EXPECT_THROW(write_sweep_csv(os, table), std::invalid_argument);
}

TEST(Report, ValidationCatchesCommaInName) {
  SweepTable table;
  table.x = {1.0};
  table.series = {{"a,b", {1.0}}};
  EXPECT_THROW(table.validate(), std::invalid_argument);
}

TEST(Report, CsvFileRoundTrip) {
  const std::string path = testing::TempDir() + "/ssdk_report_test.csv";
  SweepTable table;
  table.x_label = "x";
  table.x = {1.0};
  table.series = {{"y", {42.0}}};
  write_sweep_csv_file(path, table);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,y");
  std::remove(path.c_str());
  EXPECT_THROW(write_sweep_csv_file("/no/dir/x.csv", table),
               std::runtime_error);
}

TEST(Report, MarkdownIncludesAggregateRow) {
  RunResult result;
  result.avg_read_us = 10.0;
  result.avg_write_us = 20.0;
  result.total_us = 30.0;
  sim::TenantMetrics t;
  t.read_latency_us.add(10.0);
  t.write_latency_us.add(20.0);
  result.per_tenant[3] = t;
  const std::string md = format_run_markdown(result);
  EXPECT_NE(md.find("| 3 |"), std::string::npos);
  EXPECT_NE(md.find("**all**"), std::string::npos);
  EXPECT_EQ(md.find("**aborted**"), std::string::npos);
}

TEST(Report, MarkdownSurfacesAbortReason) {
  RunResult result;
  result.device_full = true;
  result.device_full_tenant = 5;
  result.abort_reason = "device full: tenant 5 lpn 99 could not be placed";
  const std::string md = format_run_markdown(result);
  EXPECT_NE(md.find("**aborted** (tenant 5)"), std::string::npos);
  EXPECT_NE(md.find("device full: tenant 5 lpn 99"), std::string::npos);
}

TEST(Report, ReliabilityMarkdownCarriesRetryAndDeviceCounters) {
  RunResult result;
  sim::TenantMetrics t;
  t.read_retries = 7;
  t.uncorrectable_reads = 2;
  t.program_retries = 3;
  t.retry_wait_ns = 5000;
  result.per_tenant[1] = t;
  result.counters.retired_blocks = 4;
  result.counters.rescue_migrations = 9;
  result.counters.lost_pages = 1;
  std::string md = format_reliability_markdown(result);
  EXPECT_NE(md.find("| 1 | 7 | 2 | 3 | 5 |"), std::string::npos);
  EXPECT_NE(md.find("retired_blocks=4"), std::string::npos);
  EXPECT_NE(md.find("rescue_migrations=9"), std::string::npos);
  EXPECT_EQ(md.find("aborted:"), std::string::npos);

  result.device_full = true;
  result.abort_reason = "device full: tenant 1 lpn 42 could not be placed";
  md = format_reliability_markdown(result);
  EXPECT_NE(md.find("aborted: device full: tenant 1 lpn 42"),
            std::string::npos);
}

TEST(Report, NormalizeToFirst) {
  const auto n = normalize_to_first({2.0, 4.0, 1.0});
  ASSERT_EQ(n.size(), 3u);
  EXPECT_DOUBLE_EQ(n[0], 1.0);
  EXPECT_DOUBLE_EQ(n[1], 2.0);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
  EXPECT_TRUE(normalize_to_first({}).empty());
  const auto z = normalize_to_first({0.0, 5.0});
  EXPECT_DOUBLE_EQ(z[1], 0.0);
}

}  // namespace
}  // namespace ssdk::core
