#include "core/keeper.hpp"

#include <gtest/gtest.h>

#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::core {
namespace {

/// Allocator that always answers with the given strategy index.
ChannelAllocator constant_allocator(const StrategySpace& space,
                                    std::uint32_t winner) {
  nn::Matrix w(kFeatureDim, space.size());
  nn::Matrix b(1, space.size());
  b(0, winner) = 10.0;
  std::vector<nn::DenseLayer> layers;
  layers.emplace_back(std::move(w), std::move(b),
                      nn::Activation::kIdentity);
  nn::StandardScaler scaler;
  scaler.set_parameters(std::vector<double>(kFeatureDim, 0.0),
                        std::vector<double>(kFeatureDim, 1.0));
  return ChannelAllocator(nn::Mlp(std::move(layers)), std::move(scaler),
                          space);
}

std::vector<sim::IoRequest> four_tenant_mix(std::uint64_t requests_each) {
  std::vector<trace::Workload> workloads;
  for (std::uint32_t t = 0; t < 4; ++t) {
    trace::SyntheticSpec spec;
    spec.write_fraction = t % 2 == 0 ? 0.9 : 0.1;
    spec.request_count = requests_each;
    spec.intensity_rps = 5000.0;
    spec.address_space_pages = 4096;
    spec.seed = 100 + t;
    workloads.push_back(trace::generate_synthetic(spec));
  }
  return trace::mix_workloads(workloads);
}

TEST(Keeper, SwitchesAfterCollectionWindow) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(
      space, static_cast<std::uint32_t>(space.index_of("4:2:1:1")));
  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(four_tenant_mix(1000));
  device.run_to_completion();

  ASSERT_TRUE(keeper.switched());
  EXPECT_EQ(keeper.chosen_strategy()->name(), "4:2:1:1");
  // The device ends up partitioned 4:2:1:1 across tenants.
  std::size_t total_channels = 0;
  for (sim::TenantId t = 0; t < 4; ++t) {
    total_channels += device.ftl().tenant_channels(t).size();
  }
  EXPECT_EQ(total_channels, 8u);
}

TEST(Keeper, MeasuredFeaturesReflectWindowOnly) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(space, 0);
  KeeperConfig config;
  config.collect_window_ns = 100 * kMillisecond;

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(four_tenant_mix(800));
  device.run_to_completion();

  ASSERT_TRUE(keeper.measured_features().has_value());
  const MixFeatures& f = *keeper.measured_features();
  // Tenants 0 and 2 are write-dominated, 1 and 3 read-dominated.
  EXPECT_EQ(f.read_dominated[0], 0);
  EXPECT_EQ(f.read_dominated[1], 1);
  EXPECT_EQ(f.read_dominated[2], 0);
  EXPECT_EQ(f.read_dominated[3], 1);
  double sum = 0.0;
  for (const double p : f.proportion) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Keeper, HybridTogglesPageAllocationModes) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(space, 0);
  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;
  config.hybrid_page_allocation = true;

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(four_tenant_mix(1000));
  device.run_to_completion();

  EXPECT_EQ(device.ftl().tenant_alloc_mode(0), ftl::AllocMode::kDynamic);
  EXPECT_EQ(device.ftl().tenant_alloc_mode(1), ftl::AllocMode::kStatic);
}

TEST(Keeper, RunWithKeeperThrowsWhenWindowNeverElapses) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(space, 0);
  KeeperConfig config;
  config.collect_window_ns = 3600 * kSecond;  // longer than the workload
  EXPECT_THROW(run_with_keeper(four_tenant_mix(200), allocator, config,
                               ssd::SsdOptions{}),
               std::runtime_error);
}

TEST(Keeper, RunWithKeeperReturnsConsistentSummary) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(space, 0);
  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;
  const KeeperRunResult result = run_with_keeper(
      four_tenant_mix(1000), allocator, config, ssd::SsdOptions{});
  EXPECT_EQ(result.strategy.name(), "Shared");
  EXPECT_GT(result.run.total_us, 0.0);
  EXPECT_EQ(result.run.per_tenant.size(), 4u);
}

TEST(Keeper, RunWithKeeperDegradesGracefullyOnDeviceFull) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(space, 0);
  KeeperConfig config;
  config.collect_window_ns = 1 * kMillisecond;
  // Tiny geometry with GC off: the mix must exhaust the device, but only
  // after the collection window has elapsed and the keeper has switched.
  ssd::SsdOptions options;
  options.geometry = sim::Geometry::tiny();
  options.gc_enabled = false;
  KeeperRunResult result;
  ASSERT_NO_THROW(result = run_with_keeper(four_tenant_mix(2000), allocator,
                                           config, options));
  EXPECT_TRUE(result.run.device_full);
  EXPECT_FALSE(result.run.abort_reason.empty());
  EXPECT_EQ(result.run.counters.failed_requests, 1u);
  EXPECT_EQ(result.strategy.name(), "Shared");
}

TEST(Keeper, WhatIfMeasuresTopKAndAppliesMeasuredBest) {
  const auto space = StrategySpace::for_tenants(4);
  // The constant allocator biases one strategy; the remaining top-k slots
  // fall to the lowest indices via the deterministic tie-break.
  const auto allocator = constant_allocator(
      space, static_cast<std::uint32_t>(space.index_of("4:2:1:1")));
  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;
  config.what_if_top_k = 3;

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(four_tenant_mix(1000));
  device.run_to_completion();

  ASSERT_TRUE(keeper.switched());
  const auto& measured = keeper.what_if_measurements();
  ASSERT_EQ(measured.size(), 3u);
  // The model's argmax leads the candidate list.
  EXPECT_EQ(measured.front().first, space.index_of("4:2:1:1"));
  // The applied strategy is the measured minimum, not necessarily the
  // model's argmax.
  std::uint32_t best = measured.front().first;
  double best_score = measured.front().second;
  for (const auto& [index, score] : measured) {
    EXPECT_GT(score, 0.0);
    if (score < best_score) {
      best = index;
      best_score = score;
    }
  }
  EXPECT_EQ(keeper.chosen_strategy()->name(), space.at(best).name());
}

TEST(Keeper, WhatIfDisabledLeavesMeasurementsEmpty) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(space, 0);
  KeeperConfig config;
  config.collect_window_ns = 50 * kMillisecond;

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(four_tenant_mix(600));
  device.run_to_completion();
  ASSERT_TRUE(keeper.switched());
  EXPECT_TRUE(keeper.what_if_measurements().empty());
}

TEST(Keeper, SwitchHappensOnceOnly) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(space, 2);
  KeeperConfig config;
  config.collect_window_ns = 10 * kMillisecond;

  ssd::Ssd device{ssd::SsdOptions{}};
  SsdKeeper keeper(allocator, config);
  keeper.attach(device);
  device.submit(four_tenant_mix(1500));
  device.run_to_completion();
  EXPECT_TRUE(keeper.switched());
  // Manually re-partition; the keeper must not override it afterwards.
  device.set_tenant_channels(0, {0});
  EXPECT_EQ(device.ftl().tenant_channels(0).size(), 1u);
}

}  // namespace
}  // namespace ssdk::core
