// Bit-reproducibility of the parallel sweep paths: a workload's
// per-strategy sweep, the nested dataset generation, and the keeper's
// pooled what-if trials must produce identical results at any thread
// count. Every task runs an independent deterministic simulation and
// writes only its own slot, so the merge is pure index order — these
// tests pin that contract.
#include <gtest/gtest.h>

#include <vector>

#include "core/keeper.hpp"
#include "core/label_gen.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace ssdk::core {
namespace {

DatasetGenConfig small_config(std::uint64_t workloads = 3) {
  DatasetGenConfig config;
  config.workloads = workloads;
  config.requests_per_workload = 400;
  config.seed = 23;
  return config;
}

void expect_same_sample(const LabeledSample& a, const LabeledSample& b) {
  EXPECT_EQ(a.label, b.label);
  ASSERT_EQ(a.strategy_total_us.size(), b.strategy_total_us.size());
  for (std::size_t i = 0; i < a.strategy_total_us.size(); ++i) {
    EXPECT_EQ(a.strategy_total_us[i], b.strategy_total_us[i])
        << "strategy " << i;
  }
  EXPECT_EQ(a.features.to_vector(), b.features.to_vector());
}

/// The acceptance contract of the sweep fan-out: 1, 4 and 16 worker
/// threads yield the exact LabeledSample of the serial sweep.
TEST(ParallelSweep, LabelWorkloadIdenticalAcrossPoolSizes) {
  const auto config = small_config();
  const auto requests = synthesize_mix(config, 0);
  const auto space = StrategySpace::for_tenants(4);
  const LabeledSample serial =
      label_workload(requests, space, config.label, nullptr);
  for (const std::size_t threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads);
    const LabeledSample pooled =
        label_workload(requests, space, config.label, &pool);
    SCOPED_TRACE(threads);
    expect_same_sample(serial, pooled);
  }
}

/// Same contract for the shared-prefix fork sweep (concurrent fork()s of
/// one prefix device).
TEST(ParallelSweep, ForkSweepIdenticalAcrossPoolSizes) {
  const auto config = small_config();
  const auto requests = synthesize_mix(config, 1);
  const auto space = StrategySpace::for_tenants(4);
  LabelGenConfig fork = config.label;
  fork.fork_point = 0.5;
  fork.shared_prefix_fork = true;
  const LabeledSample serial =
      label_workload(requests, space, fork, nullptr);
  for (const std::size_t threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads);
    const LabeledSample pooled =
        label_workload(requests, space, fork, &pool);
    SCOPED_TRACE(threads);
    expect_same_sample(serial, pooled);
  }
}

/// Nested fan-out: generate_dataset parallelizes workloads AND each
/// workload's strategy sweep on the same pool. The dataset must not
/// depend on how the two levels interleave.
TEST(ParallelSweep, GenerateDatasetIdenticalAcrossPoolSizes) {
  const auto config = small_config();
  const auto space = StrategySpace::for_tenants(4);
  ThreadPool one(1);
  const GeneratedDataset base = generate_dataset(space, config, one);
  for (const std::size_t threads : {4u, 16u}) {
    ThreadPool pool(threads);
    const GeneratedDataset out = generate_dataset(space, config, pool);
    SCOPED_TRACE(threads);
    ASSERT_EQ(out.samples.size(), base.samples.size());
    for (std::size_t i = 0; i < base.samples.size(); ++i) {
      expect_same_sample(base.samples[i], out.samples[i]);
    }
    EXPECT_EQ(out.data.labels(), base.data.labels());
    EXPECT_EQ(out.data.features().raw(), base.data.features().raw());
  }
}

/// Allocator that always answers with the given strategy index.
ChannelAllocator constant_allocator(const StrategySpace& space,
                                    std::uint32_t winner) {
  nn::Matrix w(kFeatureDim, space.size());
  nn::Matrix b(1, space.size());
  b(0, winner) = 10.0;
  std::vector<nn::DenseLayer> layers;
  layers.emplace_back(std::move(w), std::move(b), nn::Activation::kIdentity);
  nn::StandardScaler scaler;
  scaler.set_parameters(std::vector<double>(kFeatureDim, 0.0),
                        std::vector<double>(kFeatureDim, 1.0));
  return ChannelAllocator(nn::Mlp(std::move(layers)), std::move(scaler),
                          space);
}

std::vector<sim::IoRequest> four_tenant_mix(std::uint64_t requests_each) {
  std::vector<trace::Workload> workloads;
  for (std::uint32_t t = 0; t < 4; ++t) {
    trace::SyntheticSpec spec;
    spec.write_fraction = t % 2 == 0 ? 0.9 : 0.1;
    spec.request_count = requests_each;
    spec.intensity_rps = 5000.0;
    spec.address_space_pages = 4096;
    spec.seed = 100 + t;
    workloads.push_back(trace::generate_synthetic(spec));
  }
  return trace::mix_workloads(workloads);
}

/// Keeper what-if trials on a pool: every fork replays concurrently, but
/// the scores, the measured-best choice and the resulting schedule match
/// the serial keeper exactly.
TEST(ParallelSweep, KeeperWhatIfPoolMatchesSerial) {
  const auto space = StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(
      space, static_cast<std::uint32_t>(space.index_of("4:2:1:1")));
  const auto requests = four_tenant_mix(1000);

  const auto run = [&](ThreadPool* pool) {
    KeeperConfig config;
    config.collect_window_ns = 50 * kMillisecond;
    config.what_if_top_k = 3;
    config.what_if_pool = pool;
    ssd::Ssd device{ssd::SsdOptions{}};
    SsdKeeper keeper(allocator, config);
    keeper.attach(device);
    device.submit(requests);
    device.run_to_completion();
    EXPECT_TRUE(keeper.switched());
    return std::make_tuple(keeper.what_if_measurements(),
                           keeper.chosen_strategy()->name(), device.now());
  };

  const auto serial = run(nullptr);
  for (const std::size_t threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads);
    const auto pooled = run(&pool);
    SCOPED_TRACE(threads);
    ASSERT_EQ(std::get<0>(pooled).size(), std::get<0>(serial).size());
    for (std::size_t i = 0; i < std::get<0>(serial).size(); ++i) {
      EXPECT_EQ(std::get<0>(pooled)[i].first, std::get<0>(serial)[i].first);
      EXPECT_EQ(std::get<0>(pooled)[i].second,
                std::get<0>(serial)[i].second);
    }
    EXPECT_EQ(std::get<1>(pooled), std::get<1>(serial));
    EXPECT_EQ(std::get<2>(pooled), std::get<2>(serial));
  }
}

/// parallel_for issued from inside a pool task must complete even on a
/// single-worker pool (the caller drains the chunks itself).
TEST(ParallelSweep, NestedParallelForDoesNotDeadlockOnTinyPool) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  parallel_for(pool, 8, [&](std::size_t outer) {
    parallel_for(pool, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner] += 1;
    });
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace ssdk::core
