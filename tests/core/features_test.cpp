#include "core/features.hpp"

#include <gtest/gtest.h>

namespace ssdk::core {
namespace {

sim::IoRequest req(sim::TenantId tenant, sim::OpType type, SimTime at) {
  sim::IoRequest r;
  r.tenant = tenant;
  r.type = type;
  r.arrival = at;
  r.page_count = 1;
  return r;
}

TEST(Features, VectorLayoutIsNineDimensional) {
  MixFeatures f;
  f.intensity_level = 5;
  f.read_dominated = {1, 0, 1, 0};
  f.proportion = {0.1, 0.2, 0.3, 0.4};
  const auto v = f.to_vector();
  ASSERT_EQ(v.size(), kFeatureDim);
  EXPECT_EQ(v[0], 5.0);
  EXPECT_EQ(v[1], 1.0);
  EXPECT_EQ(v[4], 0.0);
  EXPECT_EQ(v[5], 0.1);
  EXPECT_EQ(v[8], 0.4);
}

TEST(Features, DescribeMatchesPaperNotation) {
  MixFeatures f;
  f.intensity_level = 5;
  f.read_dominated = {1, 0, 1, 0};
  f.proportion = {0.1, 0.2, 0.3, 0.4};
  EXPECT_EQ(f.describe(), "[5] [1,0,1,0] [0.10,0.20,0.30,0.40]");
}

TEST(Features, CollectorCountsCharacteristics) {
  FeaturesCollector collector;
  // Tenant 0: 3 writes 1 read -> write-dominated.
  for (int i = 0; i < 3; ++i) {
    collector.observe(req(0, sim::OpType::kWrite, 0));
  }
  collector.observe(req(0, sim::OpType::kRead, 0));
  // Tenant 1: all reads.
  for (int i = 0; i < 4; ++i) {
    collector.observe(req(1, sim::OpType::kRead, 0));
  }
  const MixFeatures f = collector.finalize(1.0);
  EXPECT_EQ(f.read_dominated[0], 0);
  EXPECT_EQ(f.read_dominated[1], 1);
  EXPECT_DOUBLE_EQ(f.proportion[0], 0.5);
  EXPECT_DOUBLE_EQ(f.proportion[1], 0.5);
  EXPECT_DOUBLE_EQ(f.proportion[2], 0.0);
}

TEST(Features, ProportionsSumToOne) {
  FeaturesCollector collector;
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i <= t; ++i) {
      collector.observe(
          req(static_cast<sim::TenantId>(t), sim::OpType::kRead, 0));
    }
  }
  const MixFeatures f = collector.finalize(1.0);
  double sum = 0.0;
  for (const double p : f.proportion) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Features, IntensityQuantization) {
  FeatureConfig config;
  config.max_intensity_rps = 1000.0;
  config.intensity_levels = 20;
  FeaturesCollector collector(config);
  // 100 requests over 1 second = 100 rps = 10% of max -> level 2.
  for (int i = 0; i < 100; ++i) {
    collector.observe(req(0, sim::OpType::kRead, 0));
  }
  EXPECT_EQ(collector.finalize(1.0).intensity_level, 2u);
}

TEST(Features, IntensityClampsAtTopLevel) {
  FeatureConfig config;
  config.max_intensity_rps = 10.0;
  FeaturesCollector collector(config);
  for (int i = 0; i < 1000; ++i) {
    collector.observe(req(0, sim::OpType::kRead, 0));
  }
  EXPECT_EQ(collector.finalize(1.0).intensity_level, 19u);
}

TEST(Features, WindowFromObservedSpanWhenNotGiven) {
  FeatureConfig config;
  config.max_intensity_rps = 2000.0;
  FeaturesCollector collector(config);
  // 1000 requests over 1 second of arrivals -> 1000 rps -> level 10.
  for (int i = 0; i < 1000; ++i) {
    collector.observe(
        req(0, sim::OpType::kRead, static_cast<SimTime>(i) * kMillisecond));
  }
  EXPECT_EQ(collector.finalize().intensity_level, 10u);
}

TEST(Features, ResetClears) {
  FeaturesCollector collector;
  collector.observe(req(0, sim::OpType::kRead, 0));
  collector.reset();
  EXPECT_EQ(collector.observed(), 0u);
  const MixFeatures f = collector.finalize(1.0);
  EXPECT_EQ(f.proportion[0], 0.0);
}

TEST(Features, RejectsOutOfRangeTenant) {
  FeaturesCollector collector;
  EXPECT_THROW(collector.observe(req(4, sim::OpType::kRead, 0)),
               std::invalid_argument);
}

TEST(Features, ProfilesCarryIntensityAndCharacteristic) {
  MixFeatures f;
  f.read_dominated = {0, 1, 0, 1};
  f.proportion = {0.4, 0.3, 0.2, 0.1};
  const auto profiles = f.profiles(4);
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_FALSE(profiles[0].read_dominated);
  EXPECT_TRUE(profiles[3].read_dominated);
  EXPECT_DOUBLE_EQ(profiles[2].relative_intensity, 0.2);
}

TEST(Features, TotalWriteProportion) {
  MixFeatures f;
  f.read_dominated = {0, 1, 0, 1};
  f.proportion = {0.4, 0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(f.total_write_proportion(), 0.6);
}

TEST(Features, BadConfigRejected) {
  FeatureConfig config;
  config.max_tenants = 5;
  EXPECT_THROW(FeaturesCollector{config}, std::invalid_argument);
  config = {};
  config.max_intensity_rps = 0.0;
  EXPECT_THROW(FeaturesCollector{config}, std::invalid_argument);
}

}  // namespace
}  // namespace ssdk::core
