// Property sweep over the entire 42-strategy space: every strategy must
// produce a valid, complete, non-overlapping channel assignment for any
// tenant profile, and its name must round-trip through the space index.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/strategy.hpp"
#include "util/rng.hpp"

namespace ssdk::core {
namespace {

class EveryStrategy : public testing::TestWithParam<std::size_t> {
 protected:
  static const StrategySpace& space() {
    static const StrategySpace s = StrategySpace::for_tenants(4);
    return s;
  }
  const Strategy& strategy() const { return space().at(GetParam()); }

  static std::vector<TenantProfile> random_profiles(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<TenantProfile> profiles(4);
    double sum = 0.0;
    for (std::size_t t = 0; t < 4; ++t) {
      profiles[t].id = static_cast<sim::TenantId>(t);
      profiles[t].read_dominated = rng.bernoulli(0.5);
      profiles[t].relative_intensity = rng.exponential(1.0) + 0.01;
      sum += profiles[t].relative_intensity;
    }
    for (auto& p : profiles) p.relative_intensity /= sum;
    return profiles;
  }
};

TEST_P(EveryStrategy, NameRoundTripsThroughIndex) {
  EXPECT_EQ(space().index_of(strategy().name()), GetParam());
}

TEST_P(EveryStrategy, AssignmentIsCompleteAndValid) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto profiles = random_profiles(seed);
    const auto sets = assign_channels(strategy(), profiles, 8);
    ASSERT_EQ(sets.size(), 4u);

    std::set<std::uint32_t> covered;
    for (const auto& set : sets) {
      ASSERT_FALSE(set.empty());  // no tenant is left without channels
      for (const auto ch : set) {
        ASSERT_LT(ch, 8u);
        covered.insert(ch);
      }
    }
    // Every channel is usable by someone.
    EXPECT_EQ(covered.size(), 8u);

    if (strategy().kind == StrategyKind::kFourPart) {
      // Four-part assignments are disjoint partitions.
      std::size_t total = 0;
      for (const auto& set : sets) total += set.size();
      EXPECT_EQ(total, 8u);
    }
  }
}

TEST_P(EveryStrategy, FourPartFollowsIntensityOrder) {
  if (strategy().kind != StrategyKind::kFourPart) {
    GTEST_SKIP() << "four-part convention only";
  }
  const auto profiles = random_profiles(9);
  const auto sets = assign_channels(strategy(), profiles, 8);
  // Sort tenants by intensity desc; their set sizes must be non-increasing.
  std::vector<std::size_t> order(4);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return profiles[a].relative_intensity >
                            profiles[b].relative_intensity;
                   });
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_GE(sets[order[r - 1]].size(), sets[order[r]].size());
  }
}

TEST_P(EveryStrategy, AssignmentDeterministic) {
  const auto profiles = random_profiles(3);
  EXPECT_EQ(assign_channels(strategy(), profiles, 8),
            assign_channels(strategy(), profiles, 8));
}

INSTANTIATE_TEST_SUITE_P(
    All42, EveryStrategy, testing::Range<std::size_t>(0, 42),
    [](const auto& param_info) {
      std::string name =
          StrategySpace::for_tenants(4).at(param_info.param).name();
      for (auto& c : name) {
        if (c == ':') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ssdk::core
