#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace ssdk::sim {
namespace {

Completion make_completion(TenantId tenant, OpType type, Duration ns) {
  Completion c;
  c.tenant = tenant;
  c.type = type;
  c.arrival = 1000;
  c.finish = 1000 + ns;
  return c;
}

TEST(Metrics, RecordsPerTenantAndType) {
  MetricsCollector m;
  m.record(make_completion(0, OpType::kRead, 20 * kMicrosecond));
  m.record(make_completion(0, OpType::kWrite, 200 * kMicrosecond));
  m.record(make_completion(1, OpType::kRead, 40 * kMicrosecond));

  EXPECT_TRUE(m.has_tenant(0));
  EXPECT_TRUE(m.has_tenant(1));
  EXPECT_FALSE(m.has_tenant(2));
  EXPECT_DOUBLE_EQ(m.tenant(0).avg_read_us(), 20.0);
  EXPECT_DOUBLE_EQ(m.tenant(0).avg_write_us(), 200.0);
  EXPECT_DOUBLE_EQ(m.tenant(0).total_us(), 220.0);
  EXPECT_DOUBLE_EQ(m.tenant(1).avg_read_us(), 40.0);
  EXPECT_EQ(m.counters().host_reads, 2u);
  EXPECT_EQ(m.counters().host_writes, 1u);
}

TEST(Metrics, UnknownTenantThrows) {
  const MetricsCollector m;
  EXPECT_THROW(m.tenant(3), std::out_of_range);
}

TEST(Metrics, AggregateMergesTenants) {
  MetricsCollector m;
  m.record(make_completion(0, OpType::kRead, 10 * kMicrosecond));
  m.record(make_completion(1, OpType::kRead, 30 * kMicrosecond));
  const TenantMetrics agg = m.aggregate();
  EXPECT_DOUBLE_EQ(agg.avg_read_us(), 20.0);
  EXPECT_EQ(agg.read_latency_us.count(), 2u);
}

TEST(Metrics, ConflictRate) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.conflict_rate(), 0.0);
  m.counters().page_ops = 10;
  m.count_conflict();
  m.count_conflict();
  EXPECT_DOUBLE_EQ(m.conflict_rate(), 0.2);
}

TEST(Metrics, CompletionLatencyHelper) {
  const Completion c = make_completion(0, OpType::kRead, 5000);
  EXPECT_EQ(c.latency(), 5000u);
}

TEST(Metrics, ReportMentionsTenants) {
  MetricsCollector m;
  m.record(make_completion(2, OpType::kWrite, kMillisecond));
  const std::string r = m.report();
  EXPECT_NE(r.find("tenant 2"), std::string::npos);
}

}  // namespace
}  // namespace ssdk::sim
