#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace ssdk::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(30, EventKind::kBusFree, 1);
  q.push(10, EventKind::kArrival, 2);
  q.push(20, EventKind::kFlashDone, 3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.next_time(), 10u);
  EXPECT_EQ(q.pop().a, 2u);
  EXPECT_EQ(q.pop().a, 3u);
  EXPECT_EQ(q.pop().a, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SimultaneousEventsKeepPushOrder) {
  EventQueue q;
  for (std::uint64_t i = 0; i < 100; ++i) {
    q.push(5, EventKind::kArrival, i);
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(q.pop().a, i);
  }
}

TEST(EventQueue, CarriesPayload) {
  EventQueue q;
  q.push(1, EventKind::kFlashDone, 7, 99);
  const Event e = q.pop();
  EXPECT_EQ(e.kind, EventKind::kFlashDone);
  EXPECT_EQ(e.a, 7u);
  EXPECT_EQ(e.b, 99u);
  EXPECT_EQ(e.time, 1u);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(10, EventKind::kArrival, 0);
  q.push(5, EventKind::kArrival, 1);
  EXPECT_EQ(q.pop().a, 1u);
  q.push(7, EventKind::kArrival, 2);
  EXPECT_EQ(q.pop().a, 2u);
  EXPECT_EQ(q.pop().a, 0u);
}

}  // namespace
}  // namespace ssdk::sim
