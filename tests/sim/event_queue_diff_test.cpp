// Randomized differential test: the calendar EventQueue against the old
// 4-ary binary heap (HeapEventQueue). (time, seq) is a unique total
// order, so the two must produce bit-identical pop sequences for any
// push/pop interleaving — including same-timestamp bursts (tie-break by
// seq only), far-future GC/mount events that park in the calendar's
// overflow list, and bursts that drain the ring into overflow-only state.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/heap_event_queue.hpp"
#include "util/rng.hpp"

namespace ssdk::sim {
namespace {

void expect_same_pop(EventQueue& calendar, HeapEventQueue& heap) {
  ASSERT_EQ(calendar.size(), heap.size());
  ASSERT_EQ(calendar.next_time(), heap.next_time());
  const Event a = calendar.pop();
  const Event b = heap.pop();
  ASSERT_EQ(a.time, b.time);
  ASSERT_EQ(a.seq, b.seq);
  ASSERT_EQ(a.kind, b.kind);
  ASSERT_EQ(a.a, b.a);
  ASSERT_EQ(a.b, b.b);
}

void drain_identical(EventQueue& calendar, HeapEventQueue& heap) {
  ASSERT_EQ(calendar.size(), heap.size());
  while (!heap.empty()) expect_same_pop(calendar, heap);
  EXPECT_TRUE(calendar.empty());
}

TEST(EventQueueDiff, RandomNearMonotonicTraffic) {
  // Simulator-shaped traffic: the clock is the time of the last pop and
  // pushes land a bounded latency past it, like flash/bus completions.
  ssdk::Rng rng(0x5eed0001);
  EventQueue calendar;
  HeapEventQueue heap;
  SimTime now = 0;
  std::uint64_t payload = 0;
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t action = rng.next_u64() % 100;
    if (action < 60 || heap.empty()) {
      const SimTime t = now + rng.next_u64() % 900'000;  // <= ~0.9 ms ahead
      const auto kind = static_cast<EventKind>(rng.next_u64() % 5);
      calendar.push(t, kind, payload, payload * 3);
      heap.push(t, kind, payload, payload * 3);
      ++payload;
    } else {
      now = heap.next_time();
      expect_same_pop(calendar, heap);
    }
  }
  drain_identical(calendar, heap);
}

TEST(EventQueueDiff, SameTimestampBursts) {
  // Many events at identical timestamps: ordering degenerates to pure
  // seq order, the case the write-done event merge depends on.
  ssdk::Rng rng(0x5eed0002);
  EventQueue calendar;
  HeapEventQueue heap;
  SimTime now = 0;
  for (int burst = 0; burst < 300; ++burst) {
    now += rng.next_u64() % 50'000;
    const std::uint64_t width = 1 + rng.next_u64() % 32;
    for (std::uint64_t i = 0; i < width; ++i) {
      calendar.push(now, EventKind::kFlashDone, burst, i);
      heap.push(now, EventKind::kFlashDone, burst, i);
    }
    const std::uint64_t pops = rng.next_u64() % (width + 1);
    for (std::uint64_t i = 0; i < pops; ++i) expect_same_pop(calendar, heap);
  }
  drain_identical(calendar, heap);
}

TEST(EventQueueDiff, FarFutureEventsCrossOverflowHorizon) {
  // GC-erase/mount-scale gaps: events far past the calendar's ~4.2 ms
  // ring span must park in overflow and still pop in exact order, both
  // when near-term traffic keeps arriving and when the ring drains so
  // that only far-future events remain.
  ssdk::Rng rng(0x5eed0003);
  EventQueue calendar;
  HeapEventQueue heap;
  SimTime now = 0;
  std::uint64_t payload = 0;
  for (int round = 0; round < 5000; ++round) {
    const std::uint64_t action = rng.next_u64() % 100;
    if (action < 55 || heap.empty()) {
      // 1 in 8 pushes jumps 5–200 ms ahead — far beyond the ring.
      const bool far = rng.next_u64() % 8 == 0;
      const SimTime delta = far ? 5'000'000 + rng.next_u64() % 195'000'000
                                : rng.next_u64() % 400'000;
      calendar.push(now + delta, EventKind::kBusFree, payload);
      heap.push(now + delta, EventKind::kBusFree, payload);
      ++payload;
    } else {
      const SimTime t = heap.next_time();
      ASSERT_EQ(calendar.next_time(), t);
      expect_same_pop(calendar, heap);
      now = t;
    }
  }
  drain_identical(calendar, heap);
}

TEST(EventQueueDiff, DrainRefillCycles) {
  // Repeatedly drain to empty and refill from a fresh, much later clock:
  // exercises the empty-queue re-basing path.
  ssdk::Rng rng(0x5eed0004);
  EventQueue calendar;
  HeapEventQueue heap;
  SimTime epoch = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    epoch += 1'000'000'000 + rng.next_u64() % 1'000'000'000;  // +1–2 s
    const std::uint64_t n = 1 + rng.next_u64() % 50;
    for (std::uint64_t i = 0; i < n; ++i) {
      const SimTime t = epoch + rng.next_u64() % 4'000'000;
      calendar.push(t, EventKind::kWriteDone, cycle, i);
      heap.push(t, EventKind::kWriteDone, cycle, i);
    }
    drain_identical(calendar, heap);
  }
}

TEST(EventQueueDiff, ClearPreservesSeqCounter) {
  EventQueue calendar;
  HeapEventQueue heap;
  for (std::uint64_t i = 0; i < 10; ++i) {
    calendar.push(100 + i, EventKind::kArrival, i);
    heap.push(100 + i, EventKind::kArrival, i);
  }
  calendar.clear();
  heap.clear();
  EXPECT_TRUE(calendar.empty());
  // Post-clear pushes must keep the unique total order: identical seqs in
  // both queues, continuing after the dropped events.
  calendar.push(500, EventKind::kBusFree, 1);
  heap.push(500, EventKind::kBusFree, 1);
  calendar.push(500, EventKind::kBusFree, 2);
  heap.push(500, EventKind::kBusFree, 2);
  const Event a0 = calendar.pop();
  const Event b0 = heap.pop();
  EXPECT_EQ(a0.seq, b0.seq);
  EXPECT_EQ(a0.seq, 10u);
  expect_same_pop(calendar, heap);
}

}  // namespace
}  // namespace ssdk::sim
