#include "sim/geometry.hpp"

#include <gtest/gtest.h>

namespace ssdk::sim {
namespace {

TEST(Geometry, PaperMatchesTableI) {
  const Geometry g = Geometry::paper();
  EXPECT_EQ(g.channels, 8u);
  EXPECT_EQ(g.chips_per_channel, 2u);
  EXPECT_EQ(g.planes_per_chip, 4u);
  EXPECT_EQ(g.blocks_per_plane, 4096u);
  EXPECT_EQ(g.pages_per_block, 128u);
  EXPECT_EQ(g.page_size_bytes, 16u * 1024);
  EXPECT_EQ(g.capacity_bytes(), 512ULL * 1024 * 1024 * 1024);
}

TEST(Geometry, DerivedCounts) {
  const Geometry g = Geometry::small();
  EXPECT_EQ(g.total_chips(), 16u);
  EXPECT_EQ(g.total_planes(), 64u);
  EXPECT_EQ(g.planes_per_channel(), 8u);
  EXPECT_EQ(g.pages_per_plane(),
            static_cast<std::uint64_t>(g.blocks_per_plane) *
                g.pages_per_block);
  EXPECT_EQ(g.total_pages(), g.pages_per_plane() * 64);
}

TEST(Geometry, EncodeDecodeRoundTrip) {
  const Geometry g = Geometry::small();
  for (std::uint32_t ch = 0; ch < g.channels; ch += 3) {
    for (std::uint32_t chip = 0; chip < g.chips_per_channel; ++chip) {
      for (std::uint32_t plane = 0; plane < g.planes_per_chip; plane += 2) {
        const PhysAddr a{ch, chip, plane, 17, 42};
        EXPECT_EQ(g.decode(g.encode(a)), a);
      }
    }
  }
}

TEST(Geometry, EncodeDecodeExhaustiveOnTiny) {
  const Geometry g = Geometry::tiny();
  for (Ppn p = 0; p < g.total_pages(); ++p) {
    EXPECT_EQ(g.encode(g.decode(p)), p);
  }
}

TEST(Geometry, PpnsAreDenseAndUnique) {
  const Geometry g = Geometry::tiny();
  std::vector<bool> seen(g.total_pages(), false);
  for (std::uint32_t ch = 0; ch < g.channels; ++ch) {
    for (std::uint32_t chip = 0; chip < g.chips_per_channel; ++chip) {
      for (std::uint32_t pl = 0; pl < g.planes_per_chip; ++pl) {
        for (std::uint32_t b = 0; b < g.blocks_per_plane; ++b) {
          for (std::uint32_t pg = 0; pg < g.pages_per_block; ++pg) {
            const Ppn p = g.encode({ch, chip, pl, b, pg});
            ASSERT_LT(p, seen.size());
            ASSERT_FALSE(seen[p]);
            seen[p] = true;
          }
        }
      }
    }
  }
}

TEST(Geometry, PlaneAndBlockIds) {
  const Geometry g = Geometry::small();
  const PhysAddr a{3, 1, 2, 7, 0};
  EXPECT_EQ(g.chip_id(3, 1), 7u);
  EXPECT_EQ(g.plane_id(a), 7u * 4 + 2);
  EXPECT_EQ(g.block_id(a), (7ULL * 4 + 2) * g.blocks_per_plane + 7);
}

TEST(Geometry, ValidateRejectsZeroDimension) {
  Geometry g = Geometry::small();
  g.channels = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(Geometry, DescribeMentionsCapacity) {
  EXPECT_NE(Geometry::paper().describe().find("512"), std::string::npos);
}

}  // namespace
}  // namespace ssdk::sim
