#include "sim/timing.hpp"

#include <gtest/gtest.h>

namespace ssdk::sim {
namespace {

TEST(Timing, PaperLatencies) {
  const Timing t = Timing::paper();
  EXPECT_EQ(t.read_ns, 20u * kMicrosecond);
  EXPECT_EQ(t.program_ns, 200u * kMicrosecond);
  EXPECT_EQ(t.erase_ns, 1500u * kMicrosecond);
}

TEST(Timing, PageTransferScalesWithPageSize) {
  Timing t = Timing::paper();
  Geometry g = Geometry::small();
  const Duration base = t.page_transfer_ns(g);
  g.page_size_bytes *= 2;
  const Duration doubled = t.page_transfer_ns(g);
  EXPECT_GT(doubled, base);
  // Doubling page size roughly doubles transfer minus the fixed overhead.
  EXPECT_NEAR(static_cast<double>(doubled - t.cmd_overhead_ns),
              2.0 * static_cast<double>(base - t.cmd_overhead_ns), 1.0);
}

TEST(Timing, ServiceTimesCompose) {
  const Timing t = Timing::paper();
  const Geometry g = Geometry::small();
  EXPECT_EQ(t.write_service_ns(g), t.page_transfer_ns(g) + t.program_ns);
  EXPECT_EQ(t.read_service_ns(g), t.read_ns + t.page_transfer_ns(g));
}

TEST(Timing, WriteMuchSlowerThanRead) {
  const Timing t = Timing::paper();
  const Geometry g = Geometry::small();
  EXPECT_GT(t.write_service_ns(g), 3 * t.read_service_ns(g));
}

TEST(Timing, DescribeHasUnits) {
  const Timing t = Timing::paper();
  const std::string d = t.describe(Geometry::small());
  EXPECT_NE(d.find("us"), std::string::npos);
  EXPECT_NE(d.find("erase"), std::string::npos);
}

TEST(TimeTypes, Conversions) {
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2 * kMillisecond), 2.0);
  EXPECT_EQ(kSecond, 1'000'000'000ULL);
}

}  // namespace
}  // namespace ssdk::sim
