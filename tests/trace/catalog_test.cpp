#include "trace/catalog.hpp"

#include <gtest/gtest.h>

#include "trace/workload_stats.hpp"

namespace ssdk::trace {
namespace {

TEST(Catalog, HasSixTableIIWorkloads) {
  const auto& names = catalog_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "mds_0");
  EXPECT_EQ(names[5], "web_2");
}

TEST(Catalog, WriteRatiosMatchTableII) {
  // Table II: mds_0 88%, mds_1 7%, rsrch_0 91%, prxy_0 97%, src_1 5%,
  // web_2 1%.
  const std::vector<std::pair<std::string, double>> expected{
      {"mds_0", 0.88}, {"mds_1", 0.07},  {"rsrch_0", 0.91},
      {"prxy_0", 0.97}, {"src_1", 0.05}, {"web_2", 0.01},
  };
  for (const auto& [name, ratio] : expected) {
    const auto spec = catalog_spec(name, 1.0);
    EXPECT_DOUBLE_EQ(spec.write_fraction, ratio) << name;
    const auto stats = compute_stats(generate_synthetic(spec));
    EXPECT_NEAR(stats.write_ratio, ratio, 0.02) << name;
  }
}

TEST(Catalog, RelativeIntensitiesFollowTableII) {
  // prxy_0, src_1 and web_2 are the heavy hitters in the paper's Table II
  // request counts; the catalog preserves that ordering.
  const double mds = catalog_spec("mds_0", 1.0).intensity_rps;
  const double prxy = catalog_spec("prxy_0", 1.0).intensity_rps;
  const double src = catalog_spec("src_1", 1.0).intensity_rps;
  EXPECT_GT(prxy, 5.0 * mds);
  EXPECT_GT(src, 2.0 * prxy);
}

TEST(Catalog, UnknownNameThrows) {
  EXPECT_THROW(catalog_spec("nope", 1.0), std::invalid_argument);
  EXPECT_THROW(catalog_spec("mds_0", 0.0), std::invalid_argument);
}

TEST(Catalog, MixLineupsMatchTableIV) {
  EXPECT_EQ(mix_workload_names(1),
            (std::vector<std::string>{"mds_0", "mds_1", "rsrch_0",
                                      "prxy_0"}));
  EXPECT_EQ(mix_workload_names(2),
            (std::vector<std::string>{"prxy_0", "src_1", "rsrch_0",
                                      "mds_1"}));
  EXPECT_THROW(mix_workload_names(0), std::invalid_argument);
  EXPECT_THROW(mix_workload_names(5), std::invalid_argument);
}

TEST(Catalog, BuildMixProducesFourTenants) {
  const auto mixed = build_mix(1, 0.2);
  ASSERT_FALSE(mixed.empty());
  const auto per = per_tenant_stats(mixed, 4);
  for (const auto& s : per) EXPECT_GT(s.requests, 0u);
  // prxy_0 (tenant 3 in Mix1) dominates, as in the paper's Table V.
  EXPECT_GT(per[3].requests, per[0].requests * 5);
}

TEST(Catalog, MixTruncationHonored) {
  const auto mixed = build_mix(2, 0.5, 1000);
  EXPECT_EQ(mixed.size(), 1000u);
}

TEST(Catalog, MixDeterministicInSeed) {
  const auto a = build_mix(3, 0.1, 0, 9);
  const auto b = build_mix(3, 0.1, 0, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 17) {
    ASSERT_EQ(a[i].lpn, b[i].lpn);
    ASSERT_EQ(a[i].arrival, b[i].arrival);
  }
  const auto c = build_mix(3, 0.1, 0, 10);
  ASSERT_EQ(a.size(), c.size());
}

TEST(Catalog, SeedsDifferAcrossWorkloads) {
  const auto a = catalog_spec("mds_0", 1.0, 0);
  const auto b = catalog_spec("mds_1", 1.0, 0);
  EXPECT_NE(a.seed, b.seed);
}

}  // namespace
}  // namespace ssdk::trace
