#include "trace/workload_stats.hpp"

#include <gtest/gtest.h>

#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::trace {
namespace {

TEST(WorkloadStats, EmptyIsAllZero) {
  const WorkloadStats s = compute_stats({});
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.write_ratio, 0.0);
}

TEST(WorkloadStats, CountsAndRatios) {
  Workload w;
  for (int i = 0; i < 3; ++i) {
    TraceRecord r;
    r.arrival = static_cast<SimTime>(i) * kSecond;
    r.type = i == 0 ? sim::OpType::kWrite : sim::OpType::kRead;
    r.pages = 2;
    w.push_back(r);
  }
  const WorkloadStats s = compute_stats(w);
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_NEAR(s.write_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean_pages, 2.0);
  EXPECT_DOUBLE_EQ(s.duration_s, 2.0);
  EXPECT_DOUBLE_EQ(s.intensity_rps, 1.5);
}

TEST(WorkloadStats, DescribeMentionsWriteShare) {
  Workload w{TraceRecord{}};
  w[0].type = sim::OpType::kWrite;
  EXPECT_NE(compute_stats(w).describe().find("write"), std::string::npos);
}

TEST(PerTenantStats, SplitsByTenant) {
  std::vector<Workload> workloads(2);
  for (int i = 0; i < 10; ++i) {
    TraceRecord r;
    r.arrival = static_cast<SimTime>(i) * kMillisecond;
    r.type = sim::OpType::kWrite;
    workloads[0].push_back(r);
  }
  {
    TraceRecord r;
    r.arrival = 5 * kMillisecond;
    r.type = sim::OpType::kRead;
    workloads[1].push_back(r);
  }
  const auto mixed = mix_workloads(workloads);
  const auto per = per_tenant_stats(mixed, 2);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_EQ(per[0].requests, 10u);
  EXPECT_EQ(per[0].writes, 10u);
  EXPECT_EQ(per[1].requests, 1u);
  EXPECT_EQ(per[1].reads, 1u);
}

TEST(MixedStats, MatchesManualAggregation) {
  SyntheticSpec spec;
  spec.request_count = 2000;
  spec.write_fraction = 0.4;
  const auto w = generate_synthetic(spec);
  const auto mixed = mix_workloads(std::vector<Workload>{w});
  const WorkloadStats direct = compute_stats(w);
  const WorkloadStats via_mix = mixed_stats(mixed);
  EXPECT_EQ(direct.requests, via_mix.requests);
  EXPECT_EQ(direct.writes, via_mix.writes);
  EXPECT_DOUBLE_EQ(direct.mean_pages, via_mix.mean_pages);
}

}  // namespace
}  // namespace ssdk::trace
