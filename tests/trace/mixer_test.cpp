#include "trace/mixer.hpp"

#include <gtest/gtest.h>

namespace ssdk::trace {
namespace {

TraceRecord rec(SimTime at, sim::OpType type = sim::OpType::kRead) {
  TraceRecord r;
  r.arrival = at;
  r.type = type;
  r.lpn = at;  // marker
  return r;
}

TEST(Mixer, MergesChronologically) {
  const std::vector<Workload> workloads{
      {rec(10), rec(30)},
      {rec(20), rec(40)},
  };
  const auto mixed = mix_workloads(workloads);
  ASSERT_EQ(mixed.size(), 4u);
  EXPECT_EQ(mixed[0].arrival, 10u);
  EXPECT_EQ(mixed[1].arrival, 20u);
  EXPECT_EQ(mixed[2].arrival, 30u);
  EXPECT_EQ(mixed[3].arrival, 40u);
}

TEST(Mixer, AssignsTenantByWorkloadIndex) {
  const std::vector<Workload> workloads{{rec(5)}, {rec(1)}, {rec(3)}};
  const auto mixed = mix_workloads(workloads);
  ASSERT_EQ(mixed.size(), 3u);
  EXPECT_EQ(mixed[0].tenant, 1u);
  EXPECT_EQ(mixed[1].tenant, 2u);
  EXPECT_EQ(mixed[2].tenant, 0u);
}

TEST(Mixer, IdsAreSequentialInMergedOrder) {
  const std::vector<Workload> workloads{{rec(2), rec(4)}, {rec(1), rec(3)}};
  const auto mixed = mix_workloads(workloads);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(mixed[i].id, i);
  }
}

TEST(Mixer, TiesBreakByWorkloadIndex) {
  const std::vector<Workload> workloads{{rec(7)}, {rec(7)}};
  const auto mixed = mix_workloads(workloads);
  EXPECT_EQ(mixed[0].tenant, 0u);
  EXPECT_EQ(mixed[1].tenant, 1u);
}

TEST(Mixer, TruncatesToMaxRequests) {
  const std::vector<Workload> workloads{
      {rec(1), rec(3), rec(5)},
      {rec(2), rec(4), rec(6)},
  };
  const auto mixed = mix_workloads(workloads, 4);
  ASSERT_EQ(mixed.size(), 4u);
  EXPECT_EQ(mixed.back().arrival, 4u);  // earliest four kept
}

TEST(Mixer, EmptyWorkloadsHandled) {
  const std::vector<Workload> workloads{{}, {rec(1)}, {}};
  const auto mixed = mix_workloads(workloads);
  ASSERT_EQ(mixed.size(), 1u);
  EXPECT_EQ(mixed[0].tenant, 1u);
  EXPECT_TRUE(mix_workloads(std::vector<Workload>{}).empty());
}

TEST(Mixer, PreservesRecordPayload) {
  Workload w{rec(9, sim::OpType::kWrite)};
  w[0].pages = 7;
  w[0].lpn = 1234;
  const auto mixed = mix_workloads(std::vector<Workload>{w});
  EXPECT_EQ(mixed[0].page_count, 7u);
  EXPECT_EQ(mixed[0].lpn, 1234u);
  EXPECT_EQ(mixed[0].type, sim::OpType::kWrite);
}

TEST(Mixer, OutputArrivalsAreMonotone) {
  std::vector<Workload> workloads(4);
  for (std::size_t w = 0; w < 4; ++w) {
    for (SimTime t = w; t < 1000; t += 3 + w) {
      workloads[w].push_back(rec(t));
    }
  }
  const auto mixed = mix_workloads(workloads);
  for (std::size_t i = 1; i < mixed.size(); ++i) {
    ASSERT_GE(mixed[i].arrival, mixed[i - 1].arrival);
  }
}

}  // namespace
}  // namespace ssdk::trace
