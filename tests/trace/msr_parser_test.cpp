#include "trace/msr_parser.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ssdk::trace {
namespace {

constexpr const char* kSample =
    "128166372003061629,hm,1,Read,383496192,32768,58000\n"
    "128166372016382155,hm,1,Write,2822144,16384,12000\n"
    "128166372026382155,hm,1,read,310378496,49152,33000\n";

TEST(MsrParser, ParsesFieldsAndRebasesTime) {
  std::istringstream in(kSample);
  const Workload w = parse_msr(in);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].arrival, 0u);
  // Second record: (16382155 - 3061629) ticks * 100 ns.
  EXPECT_EQ(w[1].arrival, (16382155ULL - 3061629ULL) * 100ULL);
  EXPECT_EQ(w[0].type, sim::OpType::kRead);
  EXPECT_EQ(w[1].type, sim::OpType::kWrite);
  EXPECT_EQ(w[2].type, sim::OpType::kRead);  // case-insensitive
}

TEST(MsrParser, ConvertsOffsetsToPages) {
  std::istringstream in(kSample);
  MsrParseOptions options;
  options.page_size_bytes = 16 * 1024;
  const Workload w = parse_msr(in, options);
  EXPECT_EQ(w[0].lpn, (383496192ULL / 16384ULL) % options.address_space_pages);
  EXPECT_EQ(w[0].pages, 2u);  // 32768 / 16384
  EXPECT_EQ(w[1].pages, 1u);
  EXPECT_EQ(w[2].pages, 3u);
}

TEST(MsrParser, TimeScaleCompressesGaps) {
  std::istringstream in(kSample);
  MsrParseOptions options;
  options.time_scale = 0.5;
  const Workload w = parse_msr(in, options);
  EXPECT_EQ(w[1].arrival, (16382155ULL - 3061629ULL) * 50ULL);
}

TEST(MsrParser, MaxRecordsTruncates) {
  std::istringstream in(kSample);
  MsrParseOptions options;
  options.max_records = 2;
  EXPECT_EQ(parse_msr(in, options).size(), 2u);
}

TEST(MsrParser, WrapsIntoAddressSpace) {
  std::istringstream in(kSample);
  MsrParseOptions options;
  options.address_space_pages = 128;
  for (const auto& rec : parse_msr(in, options)) {
    EXPECT_LE(rec.lpn + rec.pages, 128u);
  }
}

TEST(MsrParser, RejectsMalformedLines) {
  std::istringstream bad_fields("1,hm,1,Read\n");
  EXPECT_THROW(parse_msr(bad_fields), std::invalid_argument);
  std::istringstream bad_type("1,hm,1,Trim,0,4096,0\n");
  EXPECT_THROW(parse_msr(bad_type), std::invalid_argument);
  std::istringstream bad_num("abc,hm,1,Read,0,4096,0\n");
  EXPECT_THROW(parse_msr(bad_num), std::invalid_argument);
}

TEST(MsrParser, ErrorsCarryLineNumberAndOffendingText) {
  std::istringstream in(
      "1000,hm,0,Read,0,4096,0\n"
      "2000,hm,0,Trim,0,4096,0\n");
  try {
    parse_msr(in);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Trim"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2000,hm,0,Trim"), std::string::npos) << msg;
  }
}

TEST(MsrParser, SkipMalformedCountsAndContinues) {
  std::istringstream in(
      "1000,hm,0,Read,0,4096,0\n"
      "garbage line\n"
      "oops,hm,0,Write,0,4096,0\n"
      "3000,hm,0,Write,16384,4096,0\n");
  MsrParseOptions options;
  options.skip_malformed = true;
  MsrParseStats stats;
  const Workload w = parse_msr(in, options, &stats);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].type, sim::OpType::kRead);
  EXPECT_EQ(w[1].type, sim::OpType::kWrite);
  EXPECT_EQ(stats.parsed_lines, 2u);
  EXPECT_EQ(stats.malformed_lines, 2u);
  EXPECT_NE(stats.first_error.find("line 2"), std::string::npos)
      << stats.first_error;
  // Rebase still anchors on the earliest *valid* record.
  EXPECT_EQ(w[0].arrival, 0u);
  EXPECT_EQ(w[1].arrival, 2000ULL * 100ULL);
}

TEST(MsrParser, SkipMalformedStillRejectsNothingValid) {
  std::istringstream in("junk\nmore junk\n");
  MsrParseOptions options;
  options.skip_malformed = true;
  MsrParseStats stats;
  const Workload w = parse_msr(in, options, &stats);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(stats.malformed_lines, 2u);
  EXPECT_EQ(stats.parsed_lines, 0u);
}

TEST(MsrParser, SortsNearSortedInput) {
  std::istringstream in(
      "2000,hm,0,Read,0,4096,0\n"
      "1000,hm,0,Write,16384,4096,0\n");
  const Workload w = parse_msr(in);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_LE(w[0].arrival, w[1].arrival);
  EXPECT_EQ(w[0].type, sim::OpType::kWrite);
}

TEST(MsrParser, MissingFileThrows) {
  EXPECT_THROW(parse_msr_file("/no/such/trace.csv"), std::runtime_error);
}

TEST(MsrParser, ZeroByteRequestStillOnePage) {
  std::istringstream in("1,hm,0,Read,0,0,0\n");
  const Workload w = parse_msr(in);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].pages, 1u);
}

}  // namespace
}  // namespace ssdk::trace
