#include "trace/msr_writer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "trace/msr_parser.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::trace {
namespace {

TEST(MsrWriter, WritesExpectedColumns) {
  Workload w(1);
  w[0].arrival = 1000;  // ns -> 10 ticks
  w[0].type = sim::OpType::kWrite;
  w[0].lpn = 3;
  w[0].pages = 2;
  std::ostringstream os;
  MsrWriteOptions options;
  options.base_ticks = 100;
  options.page_size_bytes = 4096;
  write_msr(os, w, options);
  EXPECT_EQ(os.str(), "110,ssdk,0,Write,12288,8192,0\n");
}

TEST(MsrWriter, SkipsTrims) {
  Workload w(2);
  w[0].type = sim::OpType::kTrim;
  w[1].type = sim::OpType::kRead;
  std::ostringstream os;
  write_msr(os, w);
  // Exactly one line written.
  const std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST(MsrWriter, RoundTripsThroughParser) {
  SyntheticSpec spec;
  spec.request_count = 500;
  spec.write_fraction = 0.4;
  spec.address_space_pages = 1024;
  spec.seed = 9;
  const Workload original = generate_synthetic(spec);

  std::stringstream ss;
  MsrWriteOptions wopt;
  write_msr(ss, original, wopt);

  MsrParseOptions popt;
  popt.page_size_bytes = wopt.page_size_bytes;
  popt.address_space_pages = 1024;
  const Workload parsed = parse_msr(ss, popt);

  ASSERT_EQ(parsed.size(), original.size());
  // The parser quantizes arrivals to 100 ns ticks and stable-sorts, which
  // can swap records whose arrivals collide after quantization; compare
  // against the original put through the same transform.
  Workload expected = original;
  SimTime min_arrival = ~SimTime{0};
  for (auto& rec : expected) {
    rec.arrival = rec.arrival / 100 * 100;
    min_arrival = std::min(min_arrival, rec.arrival);
  }
  for (auto& rec : expected) rec.arrival -= min_arrival;  // parser rebases
  std::stable_sort(expected.begin(), expected.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].type, expected[i].type) << i;
    EXPECT_EQ(parsed[i].lpn, expected[i].lpn) << i;
    EXPECT_EQ(parsed[i].pages, expected[i].pages) << i;
    EXPECT_EQ(parsed[i].arrival, expected[i].arrival) << i;
  }
}

TEST(MsrWriter, RejectsZeroPageSize) {
  std::ostringstream os;
  MsrWriteOptions options;
  options.page_size_bytes = 0;
  EXPECT_THROW(write_msr(os, Workload{}, options), std::invalid_argument);
}

TEST(MsrWriter, FileWrapper) {
  const std::string path = testing::TempDir() + "/ssdk_msr_writer_test.csv";
  Workload w(1);
  write_msr_file(path, w);
  EXPECT_NO_THROW(parse_msr_file(path));
  std::remove(path.c_str());
  EXPECT_THROW(write_msr_file("/nonexistent/dir/x.csv", w),
               std::runtime_error);
}

}  // namespace
}  // namespace ssdk::trace
