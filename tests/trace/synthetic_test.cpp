#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include "trace/workload_stats.hpp"

namespace ssdk::trace {
namespace {

TEST(Synthetic, RespectsRequestCount) {
  SyntheticSpec spec;
  spec.request_count = 1234;
  const Workload w = generate_synthetic(spec);
  EXPECT_EQ(w.size(), 1234u);
}

TEST(Synthetic, WriteFractionApproximatelyHonored) {
  SyntheticSpec spec;
  spec.write_fraction = 0.7;
  spec.request_count = 20'000;
  const WorkloadStats s = compute_stats(generate_synthetic(spec));
  EXPECT_NEAR(s.write_ratio, 0.7, 0.02);
}

TEST(Synthetic, PureReadAndPureWrite) {
  SyntheticSpec spec;
  spec.request_count = 500;
  spec.write_fraction = 0.0;
  EXPECT_EQ(compute_stats(generate_synthetic(spec)).writes, 0u);
  spec.write_fraction = 1.0;
  EXPECT_EQ(compute_stats(generate_synthetic(spec)).reads, 0u);
}

TEST(Synthetic, ArrivalsAreMonotone) {
  SyntheticSpec spec;
  spec.request_count = 5000;
  const Workload w = generate_synthetic(spec);
  for (std::size_t i = 1; i < w.size(); ++i) {
    ASSERT_GE(w[i].arrival, w[i - 1].arrival);
  }
}

TEST(Synthetic, IntensityMatchesSpec) {
  SyntheticSpec spec;
  spec.request_count = 50'000;
  spec.intensity_rps = 10'000.0;
  const WorkloadStats s = compute_stats(generate_synthetic(spec));
  EXPECT_NEAR(s.intensity_rps, 10'000.0, 300.0);
}

TEST(Synthetic, MeanPagesMatchesSpec) {
  SyntheticSpec spec;
  spec.request_count = 50'000;
  spec.mean_request_pages = 3.0;
  spec.max_request_pages = 64;
  const WorkloadStats s = compute_stats(generate_synthetic(spec));
  EXPECT_NEAR(s.mean_pages, 3.0, 0.1);
}

TEST(Synthetic, AddressesStayInBounds) {
  SyntheticSpec spec;
  spec.request_count = 10'000;
  spec.address_space_pages = 512;
  spec.max_request_pages = 32;
  spec.zipf_theta = 0.5;
  for (const auto& rec : generate_synthetic(spec)) {
    ASSERT_LE(rec.lpn + rec.pages, 512u);
    ASSERT_GE(rec.pages, 1u);
    ASSERT_LE(rec.pages, 32u);
  }
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.request_count = 1000;
  spec.seed = 77;
  const Workload a = generate_synthetic(spec);
  const Workload b = generate_synthetic(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].arrival, b[i].arrival);
    ASSERT_EQ(a[i].lpn, b[i].lpn);
    ASSERT_EQ(a[i].pages, b[i].pages);
    ASSERT_EQ(a[i].type, b[i].type);
  }
  spec.seed = 78;
  const Workload c = generate_synthetic(spec);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a[i].lpn != c[i].lpn || a[i].arrival != c[i].arrival;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, SequentialityChainsRequests) {
  SyntheticSpec spec;
  spec.request_count = 10'000;
  spec.sequential_fraction = 1.0;
  spec.zipf_theta = 0.0;
  const Workload w = generate_synthetic(spec);
  std::size_t chained = 0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    if (w[i].lpn == (w[i - 1].lpn + w[i - 1].pages) %
                        spec.address_space_pages) {
      ++chained;
    }
  }
  // All requests follow their predecessor (modulo wrap clamping).
  EXPECT_GT(static_cast<double>(chained) / static_cast<double>(w.size()),
            0.95);
}

TEST(Synthetic, BurstinessPreservesMeanRate) {
  SyntheticSpec smooth;
  smooth.request_count = 60'000;
  smooth.intensity_rps = 10'000.0;
  SyntheticSpec bursty = smooth;
  bursty.burstiness = 0.5;
  const auto s = compute_stats(generate_synthetic(smooth));
  const auto b = compute_stats(generate_synthetic(bursty));
  EXPECT_NEAR(b.intensity_rps, s.intensity_rps, s.intensity_rps * 0.03);
}

TEST(Synthetic, BurstinessRaisesGapVariance) {
  SyntheticSpec spec;
  spec.request_count = 30'000;
  spec.intensity_rps = 10'000.0;
  const auto gap_variance = [&](double burstiness) {
    SyntheticSpec s2 = spec;
    s2.burstiness = burstiness;
    const auto w = generate_synthetic(s2);
    double mean = 0.0;
    for (std::size_t i = 1; i < w.size(); ++i) {
      mean += static_cast<double>(w[i].arrival - w[i - 1].arrival);
    }
    mean /= static_cast<double>(w.size() - 1);
    double var = 0.0;
    for (std::size_t i = 1; i < w.size(); ++i) {
      const double d =
          static_cast<double>(w[i].arrival - w[i - 1].arrival) - mean;
      var += d * d;
    }
    return var / static_cast<double>(w.size() - 1);
  };
  EXPECT_GT(gap_variance(0.6), gap_variance(0.0) * 1.2);
}

TEST(Synthetic, BurstinessValidated) {
  SyntheticSpec spec;
  spec.burstiness = 1.0;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
  spec.burstiness = -0.1;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
}

TEST(Synthetic, ValidationRejectsBadSpecs) {
  SyntheticSpec spec;
  spec.write_fraction = 1.5;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
  spec = {};
  spec.intensity_rps = 0.0;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
  spec = {};
  spec.mean_request_pages = 0.5;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
  spec = {};
  spec.zipf_theta = 1.0;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
}

}  // namespace
}  // namespace ssdk::trace
