// Device-level scheduler integration: admission-wait telemetry, snapshot
// save -> load -> resume identity with requests still queued, fork()
// cloning of scheduler state, SLO violation accounting and the audit
// hooks — everything the Ssd <-> sched seam promises beyond pure policy
// ordering (covered in scheduler_test.cpp).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/runner.hpp"
#include "snapshot/device_snapshot.hpp"
#include "ssd/ssd.hpp"
#include "telemetry/tracer.hpp"
#include "trace/catalog.hpp"

namespace ssdk {
namespace {

/// Contended four-tenant mix on the default geometry (same generator the
/// golden recipes use, so arrival patterns are committed-stable).
std::vector<sim::IoRequest> contended_mix(std::size_t count = 600) {
  return trace::build_mix(1, 0.1, count);
}

ssd::SsdOptions wfq_options(std::uint32_t window) {
  ssd::SsdOptions options;
  options.sched.policy = sched::Policy::kWfq;
  options.sched.max_outstanding_requests = window;
  options.sched.shares.push_back({.tenant = 0, .weight = 4});
  options.sched.shares.push_back({.tenant = 1, .weight = 1});
  return options;
}

std::uint64_t count_sched_waits(const telemetry::Tracer& tracer) {
  std::uint64_t n = 0;
  for (const auto& e : tracer.events()) {
    if (e.kind == telemetry::SpanKind::kSchedWait) ++n;
  }
  return n;
}

TEST(SchedDevice, UnlimitedWindowNeverEmitsSchedWait) {
  telemetry::TelemetryConfig tcfg;
  tcfg.capacity_events = 1 << 16;
  telemetry::Tracer tracer(tcfg);
  ssd::Ssd device{ssd::SsdOptions{}};
  device.set_tracer(&tracer);
  device.submit(contended_mix());
  device.run_to_completion();
  EXPECT_EQ(count_sched_waits(tracer), 0u);
  EXPECT_EQ(device.scheduler().pending(), 0u);
  EXPECT_EQ(device.scheduler().outstanding(), 0u);
}

TEST(SchedDevice, FiniteWindowQueuesAndEmitsSchedWait) {
  telemetry::TelemetryConfig tcfg;
  tcfg.capacity_events = 1 << 16;
  telemetry::Tracer tracer(tcfg);
  ssd::Ssd device(wfq_options(/*window=*/2));
  device.set_tracer(&tracer);
  const auto requests = contended_mix();
  device.submit(requests);
  device.run_to_completion();
  ASSERT_EQ(tracer.dropped(), 0u);
  EXPECT_GT(count_sched_waits(tracer), 0u);
  // Every submitted request was eventually admitted and completed.
  EXPECT_EQ(device.scheduler().decisions(), requests.size());
  EXPECT_EQ(device.scheduler().pending(), 0u);
  EXPECT_EQ(device.scheduler().outstanding(), 0u);
  device.check_invariants();
}

TEST(SchedDevice, AuditsPassEveryArrivalUnderFiniteWindow) {
  ssd::Ssd device(wfq_options(/*window=*/1));
  device.set_audit_interval(1);  // audit at every handled arrival
  device.submit(contended_mix(300));
  EXPECT_NO_THROW(device.run_to_completion());
}

TEST(SchedDevice, SnapshotRoundTripResumesWithQueuedRequests) {
  const auto requests = contended_mix();
  ssd::Ssd device(wfq_options(/*window=*/1));
  device.submit(requests);
  device.run_until_arrival(requests.size() / 2);
  // The one-deep admission window must have left work queued in the
  // scheduler at this cut — that queued state is what the snapshot has to
  // carry (the mix arrives much faster than a serialized device drains;
  // deterministic, so this either always holds or never).
  ASSERT_GT(device.scheduler().pending(), 0u);

  const std::vector<char> image = snapshot::save_device(device);
  std::unique_ptr<ssd::Ssd> restored = snapshot::load_device(image);
  EXPECT_EQ(restored->scheduler().pending(), device.scheduler().pending());
  EXPECT_EQ(restored->scheduler().pending_requests(),
            device.scheduler().pending_requests());
  EXPECT_EQ(restored->scheduler().decisions(),
            device.scheduler().decisions());
  restored->check_invariants();

  device.run_to_completion();
  restored->run_to_completion();
  const core::RunResult a = core::summarize(device);
  const core::RunResult b = core::summarize(*restored);
  EXPECT_EQ(a.total_us, b.total_us);
  EXPECT_EQ(a.p99_read_us, b.p99_read_us);
  EXPECT_EQ(a.p99_write_us, b.p99_write_us);
  EXPECT_EQ(a.counters.host_reads, b.counters.host_reads);
  EXPECT_EQ(a.counters.host_writes, b.counters.host_writes);
  EXPECT_EQ(a.counters.conflicts, b.counters.conflicts);
  EXPECT_EQ(device.scheduler().decisions(),
            restored->scheduler().decisions());
}

TEST(SchedDevice, ForkClonesSchedulerState) {
  const auto requests = contended_mix();
  ssd::Ssd device(wfq_options(/*window=*/1));
  device.submit(requests);
  device.run_until_arrival(requests.size() / 2);
  ASSERT_GT(device.scheduler().pending(), 0u);

  std::unique_ptr<ssd::Ssd> forked = device.fork();
  EXPECT_EQ(forked->scheduler().pending_requests(),
            device.scheduler().pending_requests());
  device.run_to_completion();
  forked->run_to_completion();
  EXPECT_EQ(core::summarize(device).total_us,
            core::summarize(*forked).total_us);
  EXPECT_EQ(device.scheduler().decisions(),
            forked->scheduler().decisions());
}

TEST(SchedDevice, SloTargetsCountViolationsWithoutMovingTheSchedule) {
  const auto requests = contended_mix();
  // Impossible 1us target: every measured completion violates it.
  ssd::SsdOptions tight;
  tight.sched.shares.push_back({.tenant = 0, .slo_target_us = 1});
  ssd::Ssd tight_dev(tight);
  tight_dev.submit(requests);
  tight_dev.run_to_completion();
  const auto tight_metrics = tight_dev.metrics().tenant(0);
  EXPECT_EQ(tight_metrics.slo_violations,
            tight_metrics.read_latency_us.count() +
                tight_metrics.write_latency_us.count());

  // Unreachable 10s target: zero violations, identical latencies — SLO
  // accounting is observation only.
  ssd::SsdOptions loose;
  loose.sched.shares.push_back(
      {.tenant = 0, .slo_target_us = 10'000'000});
  ssd::Ssd loose_dev(loose);
  loose_dev.submit(requests);
  loose_dev.run_to_completion();
  EXPECT_EQ(loose_dev.metrics().tenant(0).slo_violations, 0u);
  EXPECT_EQ(loose_dev.metrics().aggregate_sums().total_us(),
            tight_dev.metrics().aggregate_sums().total_us());
}

TEST(SchedDevice, SnapshotCarriesSloViolationCounts) {
  ssd::SsdOptions options;
  options.sched.shares.push_back({.tenant = 0, .slo_target_us = 1});
  ssd::Ssd device(options);
  device.submit(contended_mix(300));
  device.run_to_completion();
  const std::uint64_t violations = device.metrics().tenant(0).slo_violations;
  ASSERT_GT(violations, 0u);

  const std::vector<char> image = snapshot::save_device(device);
  std::unique_ptr<ssd::Ssd> restored = snapshot::load_device(image);
  EXPECT_EQ(restored->metrics().tenant(0).slo_violations, violations);
  // The restored device re-arms the target from its (serialized) options.
  EXPECT_EQ(restored->options().sched.slo_target_us_of(0), 1u);
}

}  // namespace
}  // namespace ssdk
