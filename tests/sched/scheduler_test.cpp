// Unit tests for the pluggable admission scheduler (src/sched): policy
// ordering semantics, admission-window bookkeeping, clone/serialization
// round-trips and the structural invariants the device audit calls into.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/fairness.hpp"
#include "snapshot/archive.hpp"
#include "util/check.hpp"

namespace ssdk::sched {
namespace {

/// Drain the scheduler and return the granted tenants in order.
std::vector<sim::TenantId> drain(Scheduler& s) {
  std::vector<sim::TenantId> order;
  Grant g;
  while (s.pick(g)) order.push_back(g.tenant);
  return order;
}

TEST(SchedPolicy, NamesRoundTrip) {
  for (const Policy p : {Policy::kFifo, Policy::kWfq, Policy::kDrr,
                         Policy::kWeightedShare}) {
    EXPECT_EQ(parse_policy(policy_name(p)), p);
  }
  EXPECT_THROW(parse_policy("round_robin"), std::invalid_argument);
}

TEST(SchedConfigValidate, RejectsBadShares) {
  SchedConfig config;
  config.drr_quantum_pages = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = SchedConfig{};
  config.shares.push_back({.tenant = 0, .weight = 0});
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = SchedConfig{};
  config.shares.push_back({.tenant = 1, .weight = 2});
  config.shares.push_back({.tenant = 1, .weight = 3});
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = SchedConfig{};
  config.shares.push_back({.tenant = 0, .weight = 4, .slo_target_us = 500});
  config.shares.push_back({.tenant = 1, .weight = 1});
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.weight_of(0), 4u);
  EXPECT_EQ(config.weight_of(7), 1u);  // default
  EXPECT_EQ(config.slo_target_us_of(0), 500u);
  EXPECT_EQ(config.slo_target_us_of(1), 0u);
}

TEST(SchedFifo, UnlimitedWindowGrantsInArrivalOrder) {
  const SchedConfig config;  // fifo, unlimited
  EXPECT_TRUE(config.schedule_neutral());
  auto s = make_scheduler(config);
  Grant g;
  EXPECT_FALSE(s->pick(g));
  s->enqueue(10, 2, 1, 100);
  s->enqueue(11, 0, 4, 100);
  s->enqueue(12, 2, 2, 200);
  ASSERT_TRUE(s->pick(g));
  EXPECT_EQ(g.request_index, 10u);
  EXPECT_EQ(g.tenant, 2u);
  EXPECT_EQ(g.enqueued_at, 100u);
  EXPECT_EQ(g.decision_seq, 0u);
  ASSERT_TRUE(s->pick(g));
  EXPECT_EQ(g.request_index, 11u);
  ASSERT_TRUE(s->pick(g));
  EXPECT_EQ(g.request_index, 12u);
  EXPECT_EQ(g.decision_seq, 2u);
  EXPECT_FALSE(s->pick(g));
  EXPECT_EQ(s->decisions(), 3u);
  EXPECT_EQ(s->outstanding(), 3u);
  s->check_invariants();  // empty queue: the neutral invariant holds
}

TEST(SchedFifo, FiniteWindowClosesAndReopens) {
  SchedConfig config;
  config.max_outstanding_requests = 2;
  auto s = make_scheduler(config);
  for (std::uint64_t i = 0; i < 4; ++i) s->enqueue(i, 0, 1, 0);
  Grant g;
  ASSERT_TRUE(s->pick(g));
  ASSERT_TRUE(s->pick(g));
  EXPECT_FALSE(s->pick(g));  // window full
  EXPECT_EQ(s->pending(), 2u);
  EXPECT_EQ(s->outstanding(), 2u);
  s->check_invariants();
  s->on_complete(0);
  ASSERT_TRUE(s->pick(g));
  EXPECT_EQ(g.request_index, 2u);
  EXPECT_FALSE(s->pick(g));
  EXPECT_EQ(s->pending_requests(), (std::vector<std::uint64_t>{3}));
}

TEST(SchedFifo, CompletionUnderflowThrows) {
  auto s = make_scheduler(SchedConfig{});
  EXPECT_THROW(s->on_complete(0), util::InvariantViolation);
}

TEST(SchedWfq, WeightsShapeTheBacklogDrain) {
  SchedConfig config;
  config.policy = Policy::kWfq;
  config.shares.push_back({.tenant = 0, .weight = 4});
  config.shares.push_back({.tenant = 1, .weight = 1});
  auto s = make_scheduler(config);
  // Backlog both tenants with one-page requests, then drain: start-time
  // fair queueing interleaves them 4:1.
  for (std::uint64_t i = 0; i < 8; ++i) s->enqueue(i, 0, 1, 0);
  for (std::uint64_t i = 8; i < 16; ++i) s->enqueue(i, 1, 1, 0);
  const auto order = drain(*s);
  ASSERT_EQ(order.size(), 16u);
  const auto t0_in_first_10 = static_cast<std::size_t>(
      std::count(order.begin(), order.begin() + 10, 0u));
  EXPECT_EQ(t0_in_first_10, 8u);  // 4:1 service within the first window
  EXPECT_EQ(order[0], 0u);        // tie at vtime 0 broken by enqueue seq
  EXPECT_EQ(order[1], 1u);        // the light tenant is not starved
}

TEST(SchedWfq, EqualWeightsAlternate) {
  SchedConfig config;
  config.policy = Policy::kWfq;
  auto s = make_scheduler(config);
  for (std::uint64_t i = 0; i < 3; ++i) s->enqueue(i, 0, 1, 0);
  for (std::uint64_t i = 3; i < 6; ++i) s->enqueue(i, 1, 1, 0);
  EXPECT_EQ(drain(*s),
            (std::vector<sim::TenantId>{0, 1, 0, 1, 0, 1}));
}

TEST(SchedDrr, QuantumServesBursts) {
  SchedConfig config;
  config.policy = Policy::kDrr;
  config.drr_quantum_pages = 2;
  auto s = make_scheduler(config);
  for (std::uint64_t i = 0; i < 4; ++i) s->enqueue(i, 0, 1, 0);
  for (std::uint64_t i = 4; i < 8; ++i) s->enqueue(i, 1, 1, 0);
  // Two pages of credit per visit, one-page requests: each tenant serves
  // a burst of two before the cursor moves on.
  EXPECT_EQ(drain(*s),
            (std::vector<sim::TenantId>{0, 0, 1, 1, 0, 0, 1, 1}));
}

TEST(SchedDrr, EmptiedQueueForfeitsCredit) {
  SchedConfig config;
  config.policy = Policy::kDrr;
  config.drr_quantum_pages = 8;
  auto s = make_scheduler(config);
  s->enqueue(0, 0, 1, 0);
  s->enqueue(1, 1, 1, 0);
  Grant g;
  ASSERT_TRUE(s->pick(g));
  EXPECT_EQ(g.tenant, 0u);
  // Tenant 0's queue emptied; its 7 residual pages of credit must not
  // carry over to a later burst.
  s->enqueue(2, 0, 8, 0);
  ASSERT_TRUE(s->pick(g));
  EXPECT_EQ(g.tenant, 1u);  // cursor moved past the emptied queue
  ASSERT_TRUE(s->pick(g));
  EXPECT_EQ(g.tenant, 0u);
  EXPECT_FALSE(s->pick(g));
}

TEST(SchedWeightedShare, ArgminServedOverWeight) {
  SchedConfig config;
  config.policy = Policy::kWeightedShare;
  config.shares.push_back({.tenant = 0, .weight = 3});
  config.shares.push_back({.tenant = 1, .weight = 1});
  auto s = make_scheduler(config);
  for (std::uint64_t i = 0; i < 6; ++i) s->enqueue(i, 0, 1, 0);
  for (std::uint64_t i = 6; i < 8; ++i) s->enqueue(i, 1, 1, 0);
  EXPECT_EQ(drain(*s),
            (std::vector<sim::TenantId>{0, 1, 0, 0, 0, 1, 0, 0}));
}

TEST(SchedClone, IsDeepAndIndependent) {
  SchedConfig config;
  config.policy = Policy::kWfq;
  config.max_outstanding_requests = 4;
  auto s = make_scheduler(config);
  for (std::uint64_t i = 0; i < 6; ++i) {
    s->enqueue(i, static_cast<sim::TenantId>(i % 2), 1, 10 * i);
  }
  auto copy = s->clone();
  // Draining the original must not disturb the clone.
  const auto original_order = drain(*s);
  EXPECT_EQ(copy->pending(), 6u);
  Grant g;
  std::vector<sim::TenantId> clone_order;
  while (copy->pick(g)) clone_order.push_back(g.tenant);
  EXPECT_EQ(clone_order,
            std::vector<sim::TenantId>(original_order.begin(),
                                       original_order.begin() + 4));
}

TEST(SchedSnapshot, RoundTripResumesIdentically) {
  for (const Policy p : {Policy::kFifo, Policy::kWfq, Policy::kDrr,
                         Policy::kWeightedShare}) {
    SchedConfig config;
    config.policy = p;
    config.max_outstanding_requests = 3;
    config.shares.push_back({.tenant = 0, .weight = 2});
    auto a = make_scheduler(config);
    for (std::uint64_t i = 0; i < 8; ++i) {
      a->enqueue(i, static_cast<sim::TenantId>(i % 3),
                 static_cast<std::uint32_t>(1 + i % 2), i);
    }
    Grant g;
    ASSERT_TRUE(a->pick(g));
    ASSERT_TRUE(a->pick(g));
    a->on_complete(g.tenant);

    snapshot::StateWriter w;
    a->save_state(w);
    auto b = make_scheduler(config);
    snapshot::StateReader r(w.buffer());
    b->load_state(r);
    EXPECT_TRUE(r.exhausted());
    b->check_invariants();
    EXPECT_EQ(b->pending(), a->pending());
    EXPECT_EQ(b->outstanding(), a->outstanding());
    EXPECT_EQ(b->decisions(), a->decisions());
    EXPECT_EQ(b->pending_requests(), a->pending_requests());

    // Both replicas must grant the same sequence from here on.
    Grant ga, gb;
    while (true) {
      const bool more_a = a->pick(ga);
      const bool more_b = b->pick(gb);
      ASSERT_EQ(more_a, more_b) << policy_name(p);
      if (!more_a) break;
      EXPECT_EQ(ga.request_index, gb.request_index) << policy_name(p);
      EXPECT_EQ(ga.decision_seq, gb.decision_seq);
      a->on_complete(ga.tenant);
      b->on_complete(gb.tenant);
    }
  }
}

TEST(SchedSnapshot, LoadRejectsPolicyMismatch) {
  SchedConfig wfq;
  wfq.policy = Policy::kWfq;
  auto a = make_scheduler(wfq);
  a->enqueue(0, 0, 1, 0);
  snapshot::StateWriter w;
  a->save_state(w);

  SchedConfig drr;
  drr.policy = Policy::kDrr;
  auto b = make_scheduler(drr);
  snapshot::StateReader r(w.buffer());
  EXPECT_THROW(b->load_state(r), snapshot::SnapshotError);
}

TEST(SchedClear, DropsQueuesKeepsDecisionCount) {
  SchedConfig config;
  config.policy = Policy::kDrr;
  config.max_outstanding_requests = 1;
  auto s = make_scheduler(config);
  s->enqueue(0, 0, 1, 0);
  s->enqueue(1, 1, 1, 0);
  Grant g;
  ASSERT_TRUE(s->pick(g));
  s->clear();
  EXPECT_EQ(s->pending(), 0u);
  EXPECT_EQ(s->outstanding(), 0u);
  EXPECT_EQ(s->decisions(), 1u);
  s->check_invariants();
}

TEST(Fairness, JainIndexBounds) {
  EXPECT_EQ(jain_index({}), 0.0);
  const double equal[] = {2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
  const double one_hot[] = {1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(one_hot), 0.25);
  const double skewed[] = {1.0, 3.0};
  EXPECT_NEAR(jain_index(skewed), 16.0 / 20.0, 1e-12);
}

}  // namespace
}  // namespace ssdk::sched
