// Golden-schedule tests: hand-computed event timelines for small
// scenarios, pinning the device model's exact timing semantics. Default
// timing: page transfer X = 200 + 16384 * 2.5 = 41,160 ns; program
// P = 200,000 ns; array read R = 20,000 ns; erase E = 1,500,000 ns.
#include <gtest/gtest.h>

#include "ssd/ssd.hpp"

namespace ssdk::ssd {
namespace {

constexpr Duration kX = 41'160;   // page transfer
constexpr Duration kP = 200'000;  // program
constexpr Duration kR = 20'000;   // array read

sim::IoRequest req(std::uint64_t id, sim::OpType type, std::uint64_t lpn,
                   SimTime at) {
  sim::IoRequest r;
  r.id = id;
  r.tenant = 0;
  r.type = type;
  r.lpn = lpn;
  r.page_count = 1;
  r.arrival = at;
  return r;
}

std::vector<SimTime> run_and_capture(Ssd& ssd,
                                     std::span<const sim::IoRequest> rs) {
  std::vector<SimTime> finish(rs.size(), 0);
  ssd.set_completion_hook(
      [&](const sim::Completion& c) { finish[c.request_id] = c.finish; });
  ssd.submit(rs);
  ssd.run_to_completion();
  return finish;
}

TEST(Golden, TransferConstantMatchesHandComputation) {
  Ssd ssd;
  EXPECT_EQ(ssd.options().timing.page_transfer_ns(ssd.options().geometry),
            kX);
}

TEST(Golden, TwoWritesSameChannelHeldBusSerializeFully) {
  // Held-bus mode: W2's transfer cannot start until W1's program ends.
  Ssd ssd;  // defaults: held bus
  ssd.set_tenant_channels(0, {0});
  // LPNs 0 and 2 land on channel 0's two different chips (static stripe
  // over 1 channel: chip = lpn % 2 after channel fold... lpn/1 % 2).
  const std::vector<sim::IoRequest> rs{req(0, sim::OpType::kWrite, 0, 0),
                                       req(1, sim::OpType::kWrite, 1, 0)};
  const auto finish = run_and_capture(ssd, rs);
  EXPECT_EQ(finish[0], kX + kP);
  EXPECT_EQ(finish[1], 2 * (kX + kP));
}

TEST(Golden, TwoWritesSameChannelPipelinedOverlapPrograms) {
  SsdOptions options;
  options.pipelined_writes = true;
  Ssd ssd(options);
  ssd.set_tenant_channels(0, {0});
  const std::vector<sim::IoRequest> rs{req(0, sim::OpType::kWrite, 0, 0),
                                       req(1, sim::OpType::kWrite, 1, 0)};
  const auto finish = run_and_capture(ssd, rs);
  EXPECT_EQ(finish[0], kX + kP);
  // W2 (different chip) transfers as soon as the bus frees at X.
  EXPECT_EQ(finish[1], 2 * kX + kP);
}

TEST(Golden, TwoWritesDifferentChannelsFullyParallel) {
  Ssd ssd;
  // LPNs 0 and 1 stripe to channels 0 and 1 under the default 8-channel
  // set.
  const std::vector<sim::IoRequest> rs{req(0, sim::OpType::kWrite, 0, 0),
                                       req(1, sim::OpType::kWrite, 1, 0)};
  const auto finish = run_and_capture(ssd, rs);
  EXPECT_EQ(finish[0], kX + kP);
  EXPECT_EQ(finish[1], kX + kP);
}

TEST(Golden, TwoReadsSameChipSerializeOnRegister) {
  Ssd ssd;
  ssd.set_tenant_channels(0, {0});
  // Same chip (lpn 0 and lpn 2 both hit chip 0 under 1-channel striping:
  // chip = (lpn / 1) % 2 -> lpn 0 -> chip 0, lpn 2 -> chip 0).
  const std::vector<sim::IoRequest> rs{req(0, sim::OpType::kRead, 0, 0),
                                       req(1, sim::OpType::kRead, 2, 0)};
  const auto finish = run_and_capture(ssd, rs);
  // R1: array [0, R], transfer [R, R+X]. The chip is held through the
  // transfer, so R2's array read starts at R+X.
  EXPECT_EQ(finish[0], kR + kX);
  EXPECT_EQ(finish[1], (kR + kX) + (kR + kX));
}

TEST(Golden, TwoReadsSameChannelDifferentChipsPipelineOnBus) {
  Ssd ssd;
  ssd.set_tenant_channels(0, {0});
  // lpn 0 -> chip 0, lpn 1 -> chip 1.
  const std::vector<sim::IoRequest> rs{req(0, sim::OpType::kRead, 0, 0),
                                       req(1, sim::OpType::kRead, 1, 0)};
  const auto finish = run_and_capture(ssd, rs);
  // Both array reads overlap [0, R]; transfers serialize on the bus.
  EXPECT_EQ(finish[0], kR + kX);
  EXPECT_EQ(finish[1], kR + 2 * kX);
}

TEST(Golden, ReadWaitsForProgramOnItsChip) {
  Ssd ssd;
  ssd.set_tenant_channels(0, {0});
  const std::vector<sim::IoRequest> rs{
      req(0, sim::OpType::kWrite, 0, 0),
      req(1, sim::OpType::kRead, 0, 1000)};  // same lpn -> same chip
  const auto finish = run_and_capture(ssd, rs);
  EXPECT_EQ(finish[0], kX + kP);
  // The read's array phase starts when the program ends.
  EXPECT_EQ(finish[1], (kX + kP) + kR + kX);
}

TEST(Golden, ReadPriorityGrantsBusBeforeQueuedWrite) {
  // W2 is queued for the bus when R1's transfer becomes ready; with read
  // priority R1 transfers first.
  Ssd ssd;
  ssd.set_tenant_channels(0, {0});
  const std::vector<sim::IoRequest> rs{
      req(0, sim::OpType::kWrite, 0, 0),   // chip 0: bus [0, X+P] held
      req(1, sim::OpType::kRead, 1, 0),    // chip 1: array [0, R]
      req(2, sim::OpType::kWrite, 3, 10)};  // chip 1: queued write
  const auto finish = run_and_capture(ssd, rs);
  EXPECT_EQ(finish[0], kX + kP);
  // R1 ready at R; bus frees at X+P; read wins the grant.
  EXPECT_EQ(finish[1], (kX + kP) + kX);
  // W2 needs chip 1, which R1 held until its transfer finished.
  EXPECT_EQ(finish[2], (kX + kP) + kX + (kX + kP));
}

TEST(Golden, QueueWaitAccounting) {
  Ssd ssd;
  ssd.set_tenant_channels(0, {0});
  const std::vector<sim::IoRequest> rs{req(0, sim::OpType::kRead, 0, 0),
                                       req(1, sim::OpType::kRead, 2, 0)};
  run_and_capture(ssd, rs);
  const auto& c = ssd.metrics().counters();
  EXPECT_EQ(c.read_ops_started, 2u);
  // R2 waited R+X for the chip; R1 waited 0.
  EXPECT_EQ(c.read_wait_ns, kR + kX);
  EXPECT_DOUBLE_EQ(c.avg_read_wait_us(),
                   static_cast<double>(kR + kX) / 2.0 / 1e3);
  EXPECT_EQ(c.write_ops_started, 0u);
  EXPECT_DOUBLE_EQ(c.avg_write_wait_us(), 0.0);
}

TEST(Golden, MultiplaneSameChipDifferentPlanesOverlap) {
  SsdOptions options;
  options.multiplane_program = true;
  options.pipelined_writes = true;
  Ssd ssd(options);
  ssd.set_tenant_channels(0, {0});
  // 1-channel striping: lpn 0 -> chip0/plane0, lpn 2 -> chip0/plane1.
  const std::vector<sim::IoRequest> rs{req(0, sim::OpType::kWrite, 0, 0),
                                       req(1, sim::OpType::kWrite, 2, 0)};
  const auto finish = run_and_capture(ssd, rs);
  EXPECT_EQ(finish[0], kX + kP);
  EXPECT_EQ(finish[1], 2 * kX + kP);  // programs overlap across planes
}

}  // namespace
}  // namespace ssdk::ssd
