// Backlog estimators feeding the dynamic page-allocation policy.
#include <gtest/gtest.h>

#include "ssd/ssd.hpp"

namespace ssdk::ssd {
namespace {

sim::IoRequest req(std::uint64_t id, sim::OpType type, std::uint64_t lpn,
                   SimTime at) {
  sim::IoRequest r;
  r.id = id;
  r.tenant = 0;
  r.type = type;
  r.lpn = lpn;
  r.page_count = 1;
  r.arrival = at;
  return r;
}

TEST(Backlog, IdleDeviceReportsZero) {
  Ssd ssd;
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    EXPECT_EQ(ssd.channel_backlog_ns(ch), 0u);
  }
  for (std::uint32_t c = 0; c < 16; ++c) {
    EXPECT_EQ(ssd.chip_backlog_ns(c), 0u);
  }
}

TEST(Backlog, DrainedDeviceReturnsToZero) {
  Ssd ssd;
  ssd.submit(req(0, sim::OpType::kWrite, 0, 0));
  ssd.submit(req(1, sim::OpType::kRead, 5, 0));
  ssd.run_to_completion();
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    EXPECT_EQ(ssd.channel_backlog_ns(ch), 0u);
  }
}

TEST(Backlog, LoadedChannelReportsHigherBacklogThanIdleOnes) {
  Ssd ssd;
  ssd.set_tenant_channels(0, {2});
  Duration seen = 0;
  // Sample the backlog mid-flight via the arrival hook of a later request.
  ssd.set_arrival_hook([&](const sim::IoRequest& r) {
    if (r.id == 9) {
      seen = ssd.channel_backlog_ns(2);
      EXPECT_EQ(ssd.channel_backlog_ns(5), 0u);
    }
  });
  for (std::uint64_t i = 0; i < 10; ++i) {
    ssd.submit(req(i, sim::OpType::kWrite, i, i * 10 * kMicrosecond));
  }
  ssd.run_to_completion();
  EXPECT_GT(seen, 0u);
}

TEST(Backlog, DynamicPlacementSteersAwayFromLoadedChannels) {
  // Tenant 0 (static) floods channel 0; tenant 1 (dynamic, channels 0-1)
  // should place essentially everything on channel 1.
  Ssd ssd;
  ssd.set_tenant_channels(0, {0});
  ssd.set_tenant_channels(1, {0, 1});
  ssd.set_tenant_alloc_mode(1, ftl::AllocMode::kDynamic);
  std::uint64_t id = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ssd.submit(req(id++, sim::OpType::kWrite, i, i * 5 * kMicrosecond));
  }
  for (std::uint64_t i = 0; i < 50; ++i) {
    sim::IoRequest r = req(id++, sim::OpType::kWrite, 1000 + i,
                           500 * kMicrosecond + i * 5 * kMicrosecond);
    r.tenant = 1;
    ssd.submit(r);
  }
  ssd.run_to_completion();
  std::size_t on_ch1 = 0;
  const auto& g = ssd.options().geometry;
  for (std::uint64_t lpn = 1000; lpn < 1050; ++lpn) {
    const sim::Ppn p = ssd.ftl().mapping().lookup(1, lpn);
    ASSERT_NE(p, sim::kInvalidPpn);
    if (g.decode(p).channel == 1) ++on_ch1;
  }
  EXPECT_GT(on_ch1, 45u);
}

}  // namespace
}  // namespace ssdk::ssd
