// Parameterized property sweeps over device configurations: the core
// invariants (everything completes once, latencies bounded below,
// determinism, FTL consistency) must hold for every combination of
// command-set options, buffer capacities and channel partitions.
#include <gtest/gtest.h>

#include <tuple>

#include "ssd/ssd.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::ssd {
namespace {

// (read_priority, multiplane, pipelined, buffer_pages, restrict_channels)
using DeviceParam = std::tuple<bool, bool, bool, std::uint32_t, bool>;

class DeviceMatrix : public testing::TestWithParam<DeviceParam> {
 protected:
  SsdOptions options_from_param() const {
    const auto [prio, multiplane, pipelined, buffer, _] = GetParam();
    SsdOptions options;
    options.read_priority = prio;
    options.multiplane_program = multiplane;
    options.pipelined_writes = pipelined;
    options.write_buffer.capacity_pages = buffer;
    return options;
  }

  void configure_tenants(Ssd& ssd) const {
    if (std::get<4>(GetParam())) {
      ssd.set_tenant_channels(0, {0, 1, 2});
      ssd.set_tenant_channels(1, {3, 4, 5, 6, 7});
      ssd.set_tenant_alloc_mode(0, ftl::AllocMode::kDynamic);
    }
  }

  static std::vector<sim::IoRequest> workload() {
    trace::SyntheticSpec a;
    a.write_fraction = 0.7;
    a.request_count = 600;
    a.intensity_rps = 12'000.0;
    a.address_space_pages = 2048;
    a.seed = 11;
    trace::SyntheticSpec b;
    b.write_fraction = 0.2;
    b.request_count = 600;
    b.intensity_rps = 15'000.0;
    b.address_space_pages = 2048;
    b.seed = 12;
    return trace::mix_workloads(std::vector<trace::Workload>{
        trace::generate_synthetic(a), trace::generate_synthetic(b)});
  }
};

TEST_P(DeviceMatrix, AllRequestsCompleteOnce) {
  Ssd ssd(options_from_param());
  configure_tenants(ssd);
  const auto requests = workload();
  std::vector<int> completed(requests.size(), 0);
  ssd.set_completion_hook(
      [&](const sim::Completion& c) { ++completed[c.request_id]; });
  ssd.submit(requests);
  ssd.run_to_completion();
  for (const int c : completed) ASSERT_EQ(c, 1);
}

TEST_P(DeviceMatrix, LatenciesRespectFloors) {
  Ssd ssd(options_from_param());
  configure_tenants(ssd);
  const auto& options = ssd.options();
  const Duration read_floor =
      options.write_buffer.capacity_pages > 0
          ? options.write_buffer.dram_ns
          : options.timing.read_service_ns(options.geometry);
  const Duration write_floor =
      options.write_buffer.capacity_pages > 0
          ? options.write_buffer.dram_ns
          : options.timing.write_service_ns(options.geometry);
  ssd.set_completion_hook([&](const sim::Completion& c) {
    if (c.type == sim::OpType::kRead) {
      ASSERT_GE(c.latency(), read_floor);
    } else if (c.type == sim::OpType::kWrite) {
      ASSERT_GE(c.latency(), write_floor);
    }
  });
  ssd.submit(workload());
  ssd.run_to_completion();
}

TEST_P(DeviceMatrix, DeterministicRerun) {
  const auto run_once = [&] {
    Ssd ssd(options_from_param());
    configure_tenants(ssd);
    ssd.submit(workload());
    ssd.run_to_completion();
    return std::tuple{ssd.now(), ssd.metrics().aggregate().total_us(),
                      ssd.metrics().counters().conflicts,
                      ssd.write_buffer_occupancy()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(DeviceMatrix, MappingConsistentAfterDrainAndFlush) {
  Ssd ssd(options_from_param());
  configure_tenants(ssd);
  ssd.submit(workload());
  ssd.run_to_completion();
  ssd.flush_write_buffer();
  ssd.run_to_completion();
  std::uint64_t mapped = 0;
  for (sim::TenantId t = 0; t < 2; ++t) {
    mapped += ssd.ftl().mapping().mapped_count(t);
  }
  EXPECT_EQ(ssd.ftl().blocks().total_valid_pages(), mapped);
}

INSTANTIATE_TEST_SUITE_P(
    CommandSets, DeviceMatrix,
    testing::Combine(testing::Bool(),            // read priority
                     testing::Bool(),            // multiplane
                     testing::Bool(),            // pipelined writes
                     testing::Values(0u, 128u),  // write buffer
                     testing::Bool()),           // partitioned tenants
    [](const testing::TestParamInfo<DeviceParam>& param_info) {
      std::string name;
      name += std::get<0>(param_info.param) ? "prio" : "fair";
      name += std::get<1>(param_info.param) ? "_multiplane" : "_chipserial";
      name += std::get<2>(param_info.param) ? "_pipelined" : "_heldbus";
      name += std::get<3>(param_info.param) ? "_buffered" : "_unbuffered";
      name += std::get<4>(param_info.param) ? "_partitioned" : "_shared";
      return name;
    });

}  // namespace
}  // namespace ssdk::ssd
