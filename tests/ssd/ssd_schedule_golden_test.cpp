// Golden bit-identical schedule check for the hot-path optimizations.
//
// The reference traces under tests/data/ were recorded on the simulator
// *before* the flat-container/devirtualization work landed. Replaying the
// same recipes on the current build must reproduce every span — begin
// time, end time, kind, resource, request id — event for event. A
// divergence here means an "optimization" changed the schedule, which is
// a correctness bug, not a perf trade-off.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "golden_schedule_recipe.hpp"
#include "telemetry/binary_trace.hpp"

namespace ssdk {
namespace {

std::string reference_path(const std::string& name) {
  return std::string(SSDK_TEST_DATA_DIR) + "/" + name + ".ssdktrc";
}

class GoldenScheduleTest
    : public ::testing::TestWithParam<testing::GoldenRecipe> {};

TEST_P(GoldenScheduleTest, BitIdenticalToPreOptimizationTrace) {
  const testing::GoldenRecipe& recipe = GetParam();
  const auto reference =
      telemetry::read_binary_trace_file(reference_path(recipe.name));
  ASSERT_EQ(reference.dropped, 0u)
      << recipe.name << ": reference trace lost events when recorded; "
      << "regenerate it with a larger tracer ring";
  ASSERT_FALSE(reference.events.empty()) << recipe.name;

  telemetry::Tracer tracer;
  const core::RunResult run = testing::replay_golden(recipe, tracer);
  EXPECT_FALSE(run.device_full) << recipe.name << ": " << run.abort_reason;
  ASSERT_EQ(tracer.dropped(), 0u) << recipe.name;

  const auto events = tracer.events();
  const std::size_t divergence =
      telemetry::first_divergence(events, reference.events);
  ASSERT_EQ(divergence, telemetry::kNoDivergence)
      << recipe.name << ": schedule diverges from the pre-optimization "
      << "reference at event " << divergence << " (replayed "
      << events.size() << " events, reference has "
      << reference.events.size() << ")";
}

// The scheduler subsystem's neutrality claim, checked against the same
// committed references: an *explicit* FIFO config with an unlimited
// admission window — even with per-tenant weights and SLO targets
// attached — must leave every recorded span untouched. Weights only
// matter to the fair policies and SLO targets only feed the metrics
// layer, so the dispatch schedule cannot move.
TEST_P(GoldenScheduleTest, ExplicitFifoSchedConfigIsScheduleNeutral) {
  testing::GoldenRecipe recipe = GetParam();
  recipe.config.ssd.sched.policy = sched::Policy::kFifo;
  recipe.config.ssd.sched.max_outstanding_requests = 0;
  recipe.config.ssd.sched.shares.push_back(
      {.tenant = 0, .weight = 4, .slo_target_us = 100});
  recipe.config.ssd.sched.shares.push_back({.tenant = 1, .weight = 1});
  ASSERT_TRUE(recipe.config.ssd.sched.schedule_neutral());

  const auto reference =
      telemetry::read_binary_trace_file(reference_path(recipe.name));
  telemetry::Tracer tracer;
  const core::RunResult run = testing::replay_golden(recipe, tracer);
  EXPECT_FALSE(run.device_full) << recipe.name << ": " << run.abort_reason;
  ASSERT_EQ(tracer.dropped(), 0u) << recipe.name;

  const std::size_t divergence =
      telemetry::first_divergence(tracer.events(), reference.events);
  ASSERT_EQ(divergence, telemetry::kNoDivergence)
      << recipe.name << ": explicit FIFO scheduler config changed the "
      << "schedule at event " << divergence;
}

INSTANTIATE_TEST_SUITE_P(
    AllRecipes, GoldenScheduleTest,
    ::testing::ValuesIn(testing::all_golden_recipes()),
    [](const ::testing::TestParamInfo<testing::GoldenRecipe>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace ssdk
