// Property-based checks over randomized workloads: every request
// completes, latencies are bounded below by service time, the simulation
// is bit-deterministic, and FTL invariants (mapping/validity conservation)
// hold after arbitrary interleavings.
#include <gtest/gtest.h>

#include "ssd/ssd.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::ssd {
namespace {

std::vector<sim::IoRequest> random_mix(std::uint64_t seed,
                                       std::uint64_t requests) {
  trace::SyntheticSpec a;
  a.write_fraction = 0.8;
  a.request_count = requests / 2;
  a.intensity_rps = 15'000.0;
  a.address_space_pages = 4096;
  a.seed = seed;
  trace::SyntheticSpec b;
  b.write_fraction = 0.1;
  b.request_count = requests - requests / 2;
  b.intensity_rps = 20'000.0;
  b.address_space_pages = 4096;
  b.seed = seed + 1;
  const std::vector<trace::Workload> workloads{
      trace::generate_synthetic(a), trace::generate_synthetic(b)};
  return trace::mix_workloads(workloads);
}

class SsdProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SsdProperty, EveryRequestCompletesExactlyOnce) {
  const auto requests = random_mix(GetParam(), 2000);
  Ssd ssd;
  std::vector<int> completed(requests.size(), 0);
  ssd.set_completion_hook([&](const sim::Completion& c) {
    ASSERT_LT(c.request_id, completed.size());
    ++completed[c.request_id];
  });
  ssd.submit(requests);
  ssd.run_to_completion();
  for (const int c : completed) ASSERT_EQ(c, 1);
  EXPECT_EQ(ssd.metrics().counters().host_reads +
                ssd.metrics().counters().host_writes,
            requests.size());
}

TEST_P(SsdProperty, LatencyNeverBelowServiceTime) {
  const auto requests = random_mix(GetParam() + 100, 1500);
  Ssd ssd;
  const auto& t = ssd.options().timing;
  const auto& g = ssd.options().geometry;
  const Duration min_read = t.read_service_ns(g);
  const Duration min_write = t.write_service_ns(g);
  ssd.set_completion_hook([&](const sim::Completion& c) {
    if (c.type == sim::OpType::kRead) {
      ASSERT_GE(c.latency(), min_read);
    } else {
      ASSERT_GE(c.latency(), min_write);
    }
  });
  ssd.submit(requests);
  ssd.run_to_completion();
}

TEST_P(SsdProperty, DeterministicAcrossRuns) {
  const auto requests = random_mix(GetParam() + 200, 1200);
  auto run = [&] {
    Ssd ssd;
    ssd.submit(requests);
    ssd.run_to_completion();
    return std::tuple{ssd.now(),
                      ssd.metrics().aggregate().avg_read_us(),
                      ssd.metrics().aggregate().avg_write_us(),
                      ssd.metrics().counters().conflicts};
  };
  EXPECT_EQ(run(), run());
}

TEST_P(SsdProperty, MappingMatchesValidPages) {
  const auto requests = random_mix(GetParam() + 300, 2500);
  Ssd ssd;
  ssd.submit(requests);
  ssd.run_to_completion();
  // Every mapped LPN points at a valid page owned by that (tenant, lpn).
  std::uint64_t mapped_total = 0;
  for (sim::TenantId tenant = 0; tenant < 2; ++tenant) {
    mapped_total += ssd.ftl().mapping().mapped_count(tenant);
    for (std::uint64_t lpn = 0; lpn < 4096; ++lpn) {
      const sim::Ppn p = ssd.ftl().mapping().lookup(tenant, lpn);
      if (p == sim::kInvalidPpn) continue;
      ASSERT_TRUE(ssd.ftl().blocks().is_valid(p));
      const auto owner = ssd.ftl().blocks().owner(p);
      ASSERT_EQ(owner.tenant, tenant);
      ASSERT_EQ(owner.lpn, lpn);
    }
  }
  EXPECT_EQ(ssd.ftl().blocks().total_valid_pages(), mapped_total);
}

TEST_P(SsdProperty, PartitioningNeverLosesRequests) {
  const auto requests = random_mix(GetParam() + 400, 1500);
  Ssd ssd;
  ssd.set_tenant_channels(0, {0, 1, 2});
  ssd.set_tenant_channels(1, {3, 4, 5, 6, 7});
  ssd.set_tenant_alloc_mode(0, ftl::AllocMode::kDynamic);
  std::size_t completions = 0;
  ssd.set_completion_hook([&](const sim::Completion&) { ++completions; });
  ssd.submit(requests);
  ssd.run_to_completion();
  EXPECT_EQ(completions, requests.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsdProperty,
                         testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace ssdk::ssd
