#include "ssd/ssd.hpp"

#include <gtest/gtest.h>

namespace ssdk::ssd {
namespace {

sim::IoRequest make_req(std::uint64_t id, sim::TenantId tenant,
                        sim::OpType type, std::uint64_t lpn,
                        std::uint32_t pages, SimTime arrival) {
  sim::IoRequest r;
  r.id = id;
  r.tenant = tenant;
  r.type = type;
  r.lpn = lpn;
  r.page_count = pages;
  r.arrival = arrival;
  return r;
}

TEST(SsdBasic, SingleReadLatencyIsUnloadedServiceTime) {
  Ssd ssd;
  const auto& t = ssd.options().timing;
  const Duration expected =
      t.read_ns + t.page_transfer_ns(ssd.options().geometry);
  ssd.submit(make_req(0, 0, sim::OpType::kRead, 0, 1, 0));
  ssd.run_to_completion();
  EXPECT_DOUBLE_EQ(ssd.metrics().tenant(0).avg_read_us(), to_us(expected));
}

TEST(SsdBasic, SingleWriteLatencyIsTransferPlusProgram) {
  Ssd ssd;
  const auto& t = ssd.options().timing;
  const Duration expected =
      t.page_transfer_ns(ssd.options().geometry) + t.program_ns;
  ssd.submit(make_req(0, 0, sim::OpType::kWrite, 0, 1, 0));
  ssd.run_to_completion();
  EXPECT_DOUBLE_EQ(ssd.metrics().tenant(0).avg_write_us(), to_us(expected));
}

TEST(SsdBasic, StripedReadExploitsChannelParallelism) {
  Ssd ssd;
  const auto& g = ssd.options().geometry;
  const auto& t = ssd.options().timing;
  // 8 sequential pages stripe over 8 channels: latency ~ one page service.
  ssd.submit(make_req(0, 0, sim::OpType::kRead, 0, g.channels, 0));
  ssd.run_to_completion();
  const double one_page = to_us(t.read_service_ns(g));
  EXPECT_LT(ssd.metrics().tenant(0).avg_read_us(), one_page * 1.5);
}

TEST(SsdBasic, SequentialPagesOnOneChannelSerializeOnBus) {
  SsdOptions options;
  Ssd ssd(options);  // held-bus default
  ssd.set_tenant_channels(0, {0});  // single channel
  const auto& g = ssd.options().geometry;
  const auto& t = ssd.options().timing;
  ssd.submit(make_req(0, 0, sim::OpType::kRead, 0, 4, 0));
  ssd.run_to_completion();
  // Four transfers share one bus: latency >= 4 transfers.
  EXPECT_GE(ssd.metrics().tenant(0).avg_read_us(),
            to_us(4 * t.page_transfer_ns(g)));
}

TEST(SsdBasic, CompletionHookFires) {
  Ssd ssd;
  int completions = 0;
  ssd.set_completion_hook([&](const sim::Completion& c) {
    ++completions;
    EXPECT_EQ(c.tenant, 0u);
  });
  ssd.submit(make_req(0, 0, sim::OpType::kRead, 0, 1, 0));
  ssd.submit(make_req(1, 0, sim::OpType::kWrite, 9, 2, 100));
  ssd.run_to_completion();
  EXPECT_EQ(completions, 2);
}

TEST(SsdBasic, ArrivalHookSeesRequests) {
  Ssd ssd;
  std::vector<std::uint64_t> ids;
  ssd.set_arrival_hook(
      [&](const sim::IoRequest& r) { ids.push_back(r.id); });
  ssd.submit(make_req(5, 0, sim::OpType::kRead, 0, 1, 0));
  ssd.submit(make_req(6, 0, sim::OpType::kRead, 1, 1, 10));
  ssd.run_to_completion();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 5u);
  EXPECT_EQ(ids[1], 6u);
}

TEST(SsdBasic, RejectsZeroPageRequest) {
  Ssd ssd;
  EXPECT_THROW(ssd.submit(make_req(0, 0, sim::OpType::kRead, 0, 0, 0)),
               std::invalid_argument);
}

TEST(SsdBasic, RejectsDecreasingArrivals) {
  Ssd ssd;
  ssd.submit(make_req(0, 0, sim::OpType::kRead, 0, 1, 100));
  EXPECT_THROW(ssd.submit(make_req(1, 0, sim::OpType::kRead, 0, 1, 50)),
               std::invalid_argument);
}

TEST(SsdBasic, ClockAdvancesToCompletion) {
  Ssd ssd;
  ssd.submit(make_req(0, 0, sim::OpType::kWrite, 0, 1, 1000));
  ssd.run_to_completion();
  EXPECT_GT(ssd.now(), 1000u + ssd.options().timing.program_ns);
}

TEST(SsdBasic, CountsHostOps) {
  Ssd ssd;
  ssd.submit(make_req(0, 0, sim::OpType::kRead, 0, 3, 0));
  ssd.submit(make_req(1, 1, sim::OpType::kWrite, 0, 2, 10));
  ssd.run_to_completion();
  EXPECT_EQ(ssd.metrics().counters().host_reads, 1u);
  EXPECT_EQ(ssd.metrics().counters().host_writes, 1u);
  EXPECT_EQ(ssd.metrics().counters().page_ops, 5u);
}

TEST(SsdBasic, MultiplaneReducesWriteQueueing) {
  // Back-to-back writes to one channel under pipelined buses: with
  // chip-serial units two writes overlap on 2 chips; with multiplane the
  // channel pipelines across 8 planes and the same burst completes
  // sooner. (Under the default held-bus mode the channel serializes
  // writes regardless, so pipelining is enabled for both arms.)
  auto run = [](bool multiplane) {
    SsdOptions options;
    options.multiplane_program = multiplane;
    options.pipelined_writes = true;
    Ssd ssd(options);
    ssd.set_tenant_channels(0, {0});
    for (std::uint64_t i = 0; i < 8; ++i) {
      sim::IoRequest r;
      r.id = i;
      r.tenant = 0;
      r.type = sim::OpType::kWrite;
      r.lpn = i;
      r.page_count = 1;
      r.arrival = 0;
      ssd.submit(r);
    }
    ssd.run_to_completion();
    return ssd.metrics().tenant(0).avg_write_us();
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace ssdk::ssd
