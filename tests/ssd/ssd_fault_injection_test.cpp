// Fault injection through the timed pipeline: read retries with escalating
// sense latency, uncorrectable completions, program-failure re-placement,
// and threshold-based block retirement — all reproducible from the
// FaultModel seed.
#include <gtest/gtest.h>

#include <vector>

#include "ssd/ssd.hpp"
#include "util/rng.hpp"

namespace ssdk::ssd {
namespace {

SsdOptions tiny_options() {
  SsdOptions options;
  options.geometry = sim::Geometry::tiny();  // 2ch x 1chip x 1plane x 8blk x 8pg
  return options;
}

void submit_stream(Ssd& ssd, std::uint64_t count, double write_fraction,
                   std::uint64_t working_set,
                   Duration gap = 500 * kMicrosecond) {
  Rng rng(7);
  for (std::uint64_t i = 0; i < count; ++i) {
    sim::IoRequest r;
    r.id = i;
    r.tenant = 0;
    r.type = rng.next_double() < write_fraction ? sim::OpType::kWrite
                                                : sim::OpType::kRead;
    r.lpn = rng.next_below(working_set);
    r.page_count = 1;
    r.arrival = i * gap;
    ssd.submit(r);
  }
  ssd.run_to_completion();
}

struct FaultSummary {
  std::uint64_t read_retries;
  std::uint64_t uncorrectable_reads;
  std::uint64_t program_fails;
  std::uint64_t erase_fails;
  std::uint64_t retired_blocks;
  std::uint64_t rescue_migrations;
  std::uint64_t lost_pages;
  Duration retry_wait_ns;
  double total_us;

  bool operator==(const FaultSummary&) const = default;
};

FaultSummary run_faulty(const sim::FaultModel& faults) {
  SsdOptions options = tiny_options();
  options.faults = faults;
  Ssd ssd(options);
  submit_stream(ssd, 400, 0.6, 24);
  const auto& c = ssd.metrics().counters();
  return FaultSummary{c.read_retries,
                      c.uncorrectable_reads,
                      c.program_fails,
                      c.erase_fails,
                      c.retired_blocks,
                      c.rescue_migrations,
                      c.lost_pages,
                      c.retry_wait_ns,
                      ssd.metrics().tenant(0).total_us()};
}

TEST(SsdFaultInjection, DisabledModelRecordsNothing) {
  Ssd ssd(tiny_options());
  bool any_failed = false;
  ssd.set_completion_hook([&](const sim::Completion& c) {
    any_failed |= c.status != sim::IoStatus::kOk || c.failed_pages != 0;
  });
  submit_stream(ssd, 300, 0.5, 24);
  const auto& c = ssd.metrics().counters();
  EXPECT_EQ(c.read_retries, 0u);
  EXPECT_EQ(c.uncorrectable_reads, 0u);
  EXPECT_EQ(c.program_fails, 0u);
  EXPECT_EQ(c.erase_fails, 0u);
  EXPECT_EQ(c.retired_blocks, 0u);
  EXPECT_EQ(c.rescue_migrations, 0u);
  EXPECT_EQ(c.retry_wait_ns, 0u);
  EXPECT_EQ(ssd.metrics().tenant(0).read_retries, 0u);
  EXPECT_FALSE(any_failed);
}

TEST(SsdFaultInjection, SameSeedIsBitIdentical) {
  sim::FaultModel faults;
  faults.read_ber = 0.05;
  faults.program_fail = 0.02;
  faults.erase_fail = 0.05;
  const FaultSummary a = run_faulty(faults);
  const FaultSummary b = run_faulty(faults);
  EXPECT_EQ(a, b);
  // The fault config above is aggressive enough that every class of event
  // actually fired — otherwise the determinism check is vacuous.
  EXPECT_GT(a.read_retries, 0u);
  EXPECT_GT(a.program_fails, 0u);
}

TEST(SsdFaultInjection, DifferentSeedDiverges) {
  sim::FaultModel faults;
  faults.read_ber = 0.05;
  faults.program_fail = 0.02;
  const FaultSummary a = run_faulty(faults);
  faults.seed ^= 0x9E3779B97F4A7C15ULL;
  const FaultSummary b = run_faulty(faults);
  EXPECT_NE(a, b);
}

TEST(SsdFaultInjection, RetryLatencyGolden) {
  // read_ber = 1 makes every ECC check fail deterministically (retries are
  // bounded, so this terminates): one read must cost exactly the initial
  // sense + transfer, plus per retry the escalated sense + re-transfer,
  // then complete as uncorrectable.
  SsdOptions options = tiny_options();
  options.faults.read_ber = 1.0;
  options.faults.max_read_retries = 2;
  Ssd ssd(options);
  std::vector<sim::Completion> done;
  ssd.set_completion_hook(
      [&](const sim::Completion& c) { done.push_back(c); });
  sim::IoRequest r;
  r.id = 1;
  r.tenant = 0;
  r.type = sim::OpType::kRead;
  r.lpn = 0;
  r.page_count = 1;
  r.arrival = 0;
  ssd.submit(r);
  ssd.run_to_completion();

  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].status, sim::IoStatus::kUncorrectable);
  EXPECT_EQ(done[0].failed_pages, 1u);
  const Duration xfer =
      options.timing.page_transfer_ns(options.geometry);
  const Duration expect = options.timing.read_ns + xfer +
                          options.timing.read_retry_ns(1) + xfer +
                          options.timing.read_retry_ns(2) + xfer;
  EXPECT_EQ(done[0].finish - done[0].arrival, expect);

  const auto& t = ssd.metrics().tenant(0);
  EXPECT_EQ(t.read_retries, 2u);
  EXPECT_EQ(t.uncorrectable_reads, 1u);
  EXPECT_EQ(t.retry_wait_ns, options.timing.read_retry_ns(1) +
                                 options.timing.read_retry_ns(2) + 2 * xfer);
  EXPECT_EQ(ssd.metrics().counters().uncorrectable_reads, 1u);
}

TEST(SsdFaultInjection, ProgramFailuresAreReplacedWithoutDataLoss) {
  SsdOptions options = tiny_options();
  options.faults.program_fail = 0.3;
  // Keep retirement out of the picture: this test checks pure re-placement.
  options.faults.program_fails_to_retire = 1000;
  Ssd ssd(options);
  submit_stream(ssd, 300, 1.0, 24);
  const auto& c = ssd.metrics().counters();
  EXPECT_GT(c.program_fails, 0u);
  EXPECT_EQ(c.retired_blocks, 0u);
  // Device-wide fails = host-attributed retries + GC-internal ones.
  std::uint64_t attributed = 0;
  for (const auto& [tenant, m] : ssd.metrics().all_tenants()) {
    attributed += m.program_retries;
  }
  EXPECT_EQ(attributed, c.program_fails);
  EXPECT_GT(ssd.metrics().tenant(0).program_retries, 0u);
  // Every written LPN still resolves to a valid page after the re-places.
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0),
            ssd.ftl().blocks().total_valid_pages());
  for (std::uint64_t lpn = 0; lpn < 24; ++lpn) {
    const sim::Ppn p = ssd.ftl().mapping().lookup(0, lpn);
    if (p == sim::kInvalidPpn) continue;  // LPN never drawn by the stream
    EXPECT_TRUE(ssd.ftl().blocks().is_valid(p));
  }
}

TEST(SsdFaultInjection, RetirementRescuesValidPagesAndStopsAllocation) {
  SsdOptions options = tiny_options();
  options.faults.program_fail = 0.08;
  options.faults.program_fails_to_retire = 2;
  Ssd ssd(options);
  // Fail counts persist across erases, so with ~26 expected failures over
  // 16 blocks some block crosses the 2-failure threshold. The wide gap
  // keeps GC ahead of the shrinking capacity so the stream completes.
  submit_stream(ssd, 300, 1.0, 24, 2 * kMillisecond);
  const auto& c = ssd.metrics().counters();
  EXPECT_GT(c.retired_blocks, 0u);
  EXPECT_EQ(ssd.ftl().blocks().retired_blocks(), c.retired_blocks);
  const auto& geom = options.geometry;
  std::uint64_t retired_seen = 0;
  for (std::uint64_t pl = 0; pl < geom.total_planes(); ++pl) {
    for (std::uint32_t b = 0; b < geom.blocks_per_plane; ++b) {
      if (ssd.ftl().blocks().block_state(pl, b) !=
          ftl::BlockState::kRetired) {
        continue;
      }
      ++retired_seen;
      // Rescue drained every valid page off the retired block.
      EXPECT_EQ(ssd.ftl().blocks().valid_count(pl, b), 0u);
    }
  }
  EXPECT_EQ(retired_seen, c.retired_blocks);
  // No data lost: the mapping and validity bookkeeping still agree.
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0),
            ssd.ftl().blocks().total_valid_pages());
}

TEST(SsdFaultInjection, EraseFailureRetiresAtThreshold) {
  SsdOptions options = tiny_options();
  options.faults.erase_fail = 0.15;
  options.faults.erase_fails_to_retire = 1;
  Ssd ssd(options);
  // Overwrite pressure forces GC erases, some of which fail and retire
  // their block on the spot. The stream stays inside the shrinking
  // device's capacity budget.
  submit_stream(ssd, 300, 1.0, 16, 2 * kMillisecond);
  const auto& c = ssd.metrics().counters();
  EXPECT_GT(c.erase_fails, 0u);
  EXPECT_GT(c.retired_blocks, 0u);
  EXPECT_EQ(ssd.ftl().blocks().retired_blocks(), c.retired_blocks);
}

TEST(SsdFaultInjection, EnduranceLimitRetiresCleanBlocks) {
  SsdOptions options = tiny_options();
  options.faults.max_pe_cycles = 2;
  Ssd ssd(options);
  // A block's final erase retires it immediately, so that erase reclaims
  // nothing: each block contributes max_pe_cycles - 1 productive erases
  // and the workload is sized to exceed that budget. Wearing the device
  // out completely is an acceptable end state here.
  try {
    submit_stream(ssd, 300, 1.0, 8, 2 * kMillisecond);
  } catch (const ftl::DeviceFullError&) {
  }
  const auto& c = ssd.metrics().counters();
  EXPECT_GT(c.retired_blocks, 0u);
  const auto& geom = options.geometry;
  for (std::uint64_t pl = 0; pl < geom.total_planes(); ++pl) {
    for (std::uint32_t b = 0; b < geom.blocks_per_plane; ++b) {
      // No surviving block may exceed the endurance limit.
      if (ssd.ftl().blocks().block_state(pl, b) !=
          ftl::BlockState::kRetired) {
        EXPECT_LT(ssd.ftl().blocks().erase_count(pl, b),
                  options.faults.max_pe_cycles);
      }
    }
  }
}

}  // namespace
}  // namespace ssdk::ssd
