// Device-level telemetry guarantees: tracing must never perturb the
// schedule, and the offline rollup must reconcile with the device's own
// aggregate metrics.
#include <gtest/gtest.h>

#include <map>

#include "core/allocator.hpp"
#include "core/features.hpp"
#include "core/keeper.hpp"
#include "core/runner.hpp"
#include "telemetry/binary_trace.hpp"
#include "telemetry/rollup.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk {
namespace {

std::vector<sim::IoRequest> two_tenant_mix(std::uint64_t seed = 11) {
  trace::SyntheticSpec writer;
  writer.write_fraction = 0.9;
  writer.request_count = 600;
  writer.intensity_rps = 9000.0;
  writer.seed = seed;
  trace::SyntheticSpec reader;
  reader.write_fraction = 0.1;
  reader.request_count = 600;
  reader.intensity_rps = 9000.0;
  reader.seed = seed + 1;
  return trace::mix_workloads(std::vector<trace::Workload>{
      trace::generate_synthetic(writer), trace::generate_synthetic(reader)});
}

TEST(SsdTelemetry, TracingLeavesScheduleBitIdentical) {
  const auto requests = two_tenant_mix();
  const auto profiles = core::features_of(requests).profiles(2);

  const core::RunResult plain = core::run_with_strategy(
      requests, core::Strategy{}, profiles, core::RunConfig{});

  telemetry::Tracer tracer;
  core::RunConfig traced_config;
  traced_config.tracer = &tracer;
  const core::RunResult traced = core::run_with_strategy(
      requests, core::Strategy{}, profiles, traced_config);

  // Latencies are pure functions of the event schedule; exact equality
  // means the tracer did not move a single event.
  EXPECT_EQ(plain.avg_read_us, traced.avg_read_us);
  EXPECT_EQ(plain.avg_write_us, traced.avg_write_us);
  EXPECT_EQ(plain.p99_read_us, traced.p99_read_us);
  EXPECT_EQ(plain.p99_write_us, traced.p99_write_us);
  EXPECT_EQ(plain.counters.conflicts, traced.counters.conflicts);
  EXPECT_EQ(plain.counters.page_ops, traced.counters.page_ops);
  EXPECT_EQ(plain.counters.bus_busy_ns, traced.counters.bus_busy_ns);
  EXPECT_EQ(plain.counters.gc_migrations, traced.counters.gc_migrations);
  EXPECT_GT(tracer.recorded(), 0u);
}

TEST(SsdTelemetry, RepeatedTracedRunsProduceIdenticalTraces) {
  const auto requests = two_tenant_mix(23);
  const auto profiles = core::features_of(requests).profiles(2);
  std::vector<telemetry::TraceEvent> first, second;
  for (auto* sink : {&first, &second}) {
    telemetry::Tracer tracer;
    core::RunConfig config;
    config.tracer = &tracer;
    core::run_with_strategy(requests, core::Strategy{}, profiles, config);
    *sink = tracer.events();
  }
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(telemetry::first_divergence(first, second),
            telemetry::kNoDivergence);
}

TEST(SsdTelemetry, RollupReconcilesWithRunResult) {
  const auto requests = two_tenant_mix(31);
  const auto profiles = core::features_of(requests).profiles(2);
  telemetry::Tracer tracer;
  core::RunConfig config;
  config.tracer = &tracer;
  const core::RunResult result = core::run_with_strategy(
      requests, core::Strategy{}, profiles, config);
  ASSERT_EQ(tracer.dropped(), 0u) << "ring too small for this workload";

  telemetry::RollupConfig rollup_config;
  rollup_config.window_ns = 50 * kMillisecond;
  rollup_config.channels = config.ssd.geometry.channels;
  const auto rows = build_rollup(tracer.events(), rollup_config);
  ASSERT_FALSE(rows.empty());

  std::map<sim::TenantId, std::uint64_t> reads, writes;
  for (const auto& row : rows) {
    reads[row.tenant] += row.reads;
    writes[row.tenant] += row.writes;
    EXPECT_GE(row.bus_util, 0.0);
    EXPECT_LE(row.bus_util, 1.0);
  }
  // Window sums must equal the device's own per-tenant sample counts.
  for (const auto& [tenant, metrics] : result.per_tenant) {
    EXPECT_EQ(reads[tenant], metrics.read_latency_us.count())
        << "tenant " << tenant;
    EXPECT_EQ(writes[tenant], metrics.write_latency_us.count())
        << "tenant " << tenant;
  }
  // And device-wide: one kRequest span per host read/write.
  std::uint64_t total = 0;
  for (const auto& [tenant, n] : reads) total += n;
  for (const auto& [tenant, n] : writes) total += n;
  EXPECT_EQ(total, result.counters.host_reads + result.counters.host_writes);
}

TEST(SsdTelemetry, KeeperDecisionsLandInTrace) {
  const auto space = core::StrategySpace::for_tenants(2);
  // Linear model biased hard toward one strategy index.
  nn::Matrix w(core::kFeatureDim, space.size());
  nn::Matrix b(1, space.size());
  const auto winner = static_cast<std::uint32_t>(space.index_of("6:2"));
  b(0, winner) = 10.0;
  std::vector<nn::DenseLayer> layers;
  layers.emplace_back(std::move(w), std::move(b), nn::Activation::kIdentity);
  nn::StandardScaler scaler;
  scaler.set_parameters(std::vector<double>(core::kFeatureDim, 0.0),
                        std::vector<double>(core::kFeatureDim, 1.0));
  const core::ChannelAllocator allocator(
      nn::Mlp(std::move(layers)), std::move(scaler), space);

  core::KeeperConfig keeper_config;
  keeper_config.collect_window_ns = 40 * kMillisecond;
  telemetry::Tracer tracer;
  const core::KeeperRunResult result = core::run_with_keeper(
      two_tenant_mix(41), allocator, keeper_config, ssd::SsdOptions{},
      &tracer);

  ASSERT_FALSE(tracer.decisions().size() == 0u);
  EXPECT_EQ(tracer.decisions().size(), result.decisions.size());
  const auto& d = tracer.decisions().front();
  EXPECT_EQ(d.strategy, "6:2");
  EXPECT_TRUE(d.changed);
  EXPECT_FALSE(d.features.empty());
  std::uint64_t decision_events = 0;
  for (const auto& e : tracer.events()) {
    if (e.kind == telemetry::SpanKind::kKeeperDecision) ++decision_events;
  }
  EXPECT_EQ(decision_events, tracer.decisions().size());
}

TEST(SsdTelemetry, FtlDecisionsGatedByConfig) {
  const auto requests = two_tenant_mix(53);
  const auto profiles = core::features_of(requests).profiles(2);
  for (const bool enabled : {false, true}) {
    telemetry::TelemetryConfig tconfig;
    tconfig.ftl_decisions = enabled;
    telemetry::Tracer tracer(tconfig);
    core::RunConfig config;
    config.tracer = &tracer;
    core::run_with_strategy(requests, core::Strategy{}, profiles, config);
    std::uint64_t allocs = 0;
    for (const auto& e : tracer.events()) {
      if (e.kind == telemetry::SpanKind::kPageAlloc) ++allocs;
    }
    if (enabled) {
      EXPECT_GT(allocs, 0u);
    } else {
      EXPECT_EQ(allocs, 0u);
    }
  }
}

}  // namespace
}  // namespace ssdk
