// TRIM (host discard) behaviour: metadata-only completion, mapping and
// validity updates, and interaction with GC.
#include <gtest/gtest.h>

#include "ssd/ssd.hpp"

namespace ssdk::ssd {
namespace {

sim::IoRequest make_req(std::uint64_t id, sim::OpType type,
                        std::uint64_t lpn, std::uint32_t pages,
                        SimTime arrival) {
  sim::IoRequest r;
  r.id = id;
  r.tenant = 0;
  r.type = type;
  r.lpn = lpn;
  r.page_count = pages;
  r.arrival = arrival;
  return r;
}

TEST(SsdTrim, DropsMappingAndValidity) {
  Ssd ssd;
  ssd.submit(make_req(0, sim::OpType::kWrite, 10, 4, 0));
  ssd.submit(make_req(1, sim::OpType::kTrim, 10, 4, kMillisecond));
  ssd.run_to_completion();
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0), 0u);
  EXPECT_EQ(ssd.ftl().blocks().total_valid_pages(), 0u);
  EXPECT_EQ(ssd.metrics().counters().host_trims, 1u);
}

TEST(SsdTrim, CompletesInstantly) {
  Ssd ssd;
  SimTime finish = 0;
  ssd.set_completion_hook([&](const sim::Completion& c) {
    if (c.type == sim::OpType::kTrim) finish = c.finish;
  });
  ssd.submit(make_req(0, sim::OpType::kTrim, 0, 8, 5000));
  ssd.run_to_completion();
  EXPECT_EQ(finish, 5000u);  // no flash work
}

TEST(SsdTrim, TrimOfUnmappedLpnIsNoop) {
  Ssd ssd;
  ssd.submit(make_req(0, sim::OpType::kTrim, 999, 2, 0));
  ssd.run_to_completion();
  EXPECT_EQ(ssd.metrics().counters().host_trims, 1u);
  EXPECT_EQ(ssd.ftl().blocks().total_valid_pages(), 0u);
}

TEST(SsdTrim, ReadAfterTrimRepopulates) {
  Ssd ssd;
  ssd.submit(make_req(0, sim::OpType::kWrite, 7, 1, 0));
  ssd.submit(make_req(1, sim::OpType::kTrim, 7, 1, kMillisecond));
  ssd.submit(make_req(2, sim::OpType::kRead, 7, 1, 2 * kMillisecond));
  ssd.run_to_completion();
  // The read found no mapping and prepopulated a fresh location.
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0), 1u);
  EXPECT_EQ(ssd.metrics().counters().host_reads, 1u);
}

TEST(SsdTrim, FreesSpaceForGc) {
  // Fill the tiny device's plane, trim everything, keep writing: GC can
  // reclaim the fully-invalid blocks without any migration.
  SsdOptions options;
  options.geometry = sim::Geometry::tiny();
  Ssd ssd(options);
  ssd.set_tenant_channels(0, {0});
  std::uint64_t id = 0;
  SimTime t = 0;
  for (std::uint64_t lpn = 0; lpn < 40; ++lpn) {
    ssd.submit(make_req(id++, sim::OpType::kWrite, lpn, 1,
                        t += 300 * kMicrosecond));
  }
  for (std::uint64_t lpn = 0; lpn < 40; ++lpn) {
    ssd.submit(make_req(id++, sim::OpType::kTrim, lpn, 1, t));
  }
  for (std::uint64_t lpn = 100; lpn < 140; ++lpn) {
    ssd.submit(make_req(id++, sim::OpType::kWrite, lpn, 1,
                        t += 300 * kMicrosecond));
  }
  ssd.run_to_completion();
  EXPECT_GT(ssd.metrics().counters().erases, 0u);
  EXPECT_EQ(ssd.metrics().counters().gc_migrations, 0u);
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0), 40u);
}

TEST(SsdUtilization, BusyChannelsReportHigherUtilization) {
  Ssd ssd;
  ssd.set_tenant_channels(0, {0});
  std::uint64_t id = 0;
  for (int i = 0; i < 50; ++i) {
    ssd.submit(make_req(id++, sim::OpType::kWrite,
                        static_cast<std::uint64_t>(i), 1,
                        static_cast<SimTime>(i) * 100 * kMicrosecond));
  }
  ssd.run_to_completion();
  EXPECT_GT(ssd.channel_utilization(0), 0.5);  // held-bus writes
  EXPECT_EQ(ssd.channel_busy_ns(1), 0u);
  EXPECT_EQ(ssd.channel_utilization(1), 0.0);
  // Unit busy time concentrated on channel 0's chips (units 0 and 1).
  Duration rest = 0;
  for (std::size_t u = 2; u < ssd.unit_count(); ++u) {
    rest += ssd.unit_busy_ns(u);
  }
  EXPECT_EQ(rest, 0u);
  EXPECT_GT(ssd.unit_busy_ns(0) + ssd.unit_busy_ns(1), 0u);
}

TEST(SsdUtilization, SharedSpreadsLoad) {
  Ssd ssd;
  std::uint64_t id = 0;
  for (int i = 0; i < 400; ++i) {
    ssd.submit(make_req(id++, sim::OpType::kWrite,
                        static_cast<std::uint64_t>(i), 1,
                        static_cast<SimTime>(i) * 50 * kMicrosecond));
  }
  ssd.run_to_completion();
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    EXPECT_GT(ssd.channel_busy_ns(ch), 0u) << ch;
  }
}

TEST(MetricsWarmup, ExcludesEarlyCompletionsFromSamples) {
  Ssd ssd;
  ssd.metrics().set_warmup_ns(10 * kMillisecond);
  ssd.submit(make_req(0, sim::OpType::kRead, 0, 1, 0));       // warmup
  ssd.submit(make_req(1, sim::OpType::kRead, 1, 1,
                      20 * kMillisecond));                    // measured
  ssd.run_to_completion();
  EXPECT_EQ(ssd.metrics().counters().host_reads, 2u);  // both counted
  EXPECT_EQ(ssd.metrics().tenant(0).read_latency_us.count(), 1u);
}

}  // namespace
}  // namespace ssdk::ssd
