// Contention behaviour: read priority, channel isolation, conflicts —
// the mechanisms behind the paper's Figure 2.
#include <gtest/gtest.h>

#include "ssd/ssd.hpp"

namespace ssdk::ssd {
namespace {

sim::IoRequest make_req(std::uint64_t id, sim::TenantId tenant,
                        sim::OpType type, std::uint64_t lpn,
                        SimTime arrival) {
  sim::IoRequest r;
  r.id = id;
  r.tenant = tenant;
  r.type = type;
  r.lpn = lpn;
  r.page_count = 1;
  r.arrival = arrival;
  return r;
}

/// Heavily loaded interleaved read/write stream from two tenants on the
/// given device; returns (avg read us, avg write us) for (t1=reader,
/// t0=writer). Addresses are decorrelated so the two tenants collide
/// statistically rather than in lockstep.
std::pair<double, double> run_mixed(Ssd& ssd, std::uint64_t n = 4000,
                                    Duration gap = 12 * kMicrosecond) {
  std::uint64_t id = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const SimTime at = i * gap;
    ssd.submit(make_req(id++, 0, sim::OpType::kWrite, (i * 5) % 512, at));
    ssd.submit(make_req(id++, 1, sim::OpType::kRead, (i * 7 + 3) % 509, at));
  }
  ssd.run_to_completion();
  return {ssd.metrics().tenant(1).avg_read_us(),
          ssd.metrics().tenant(0).avg_write_us()};
}

TEST(Contention, ReadPriorityProtectsReads) {
  SsdOptions with_priority;
  with_priority.read_priority = true;
  SsdOptions no_priority;
  no_priority.read_priority = false;

  Ssd a(with_priority), b(no_priority);
  const auto [read_prio, write_prio] = run_mixed(a);
  const auto [read_fair, write_fair] = run_mixed(b);
  // Reads must be faster with priority; writes pay for it.
  EXPECT_LT(read_prio, read_fair);
  EXPECT_GT(write_prio, write_fair);
}

TEST(Contention, IsolatedTenantUnaffectedByNeighbor) {
  // Tenant 1 (reader) isolated on channels 4-7; tenant 0 (writer)
  // hammers channels 0-3. Reader latency must equal its solo latency.
  SsdOptions options;
  Ssd shared_dev(options);
  Ssd isolated_dev(options);
  isolated_dev.set_tenant_channels(0, {0, 1, 2, 3});
  isolated_dev.set_tenant_channels(1, {4, 5, 6, 7});

  // Moderate load so the reader's half fits comfortably on 4 channels.
  const Duration gap = 40 * kMicrosecond;
  const auto [read_shared, _w1] = run_mixed(shared_dev, 2000, gap);
  const auto [read_isolated, _w2] = run_mixed(isolated_dev, 2000, gap);

  Ssd solo_dev(options);
  solo_dev.set_tenant_channels(1, {4, 5, 6, 7});
  std::uint64_t id = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    solo_dev.submit(make_req(id++, 1, sim::OpType::kRead, (i * 7 + 3) % 509,
                             i * gap));
  }
  solo_dev.run_to_completion();
  const double read_solo = solo_dev.metrics().tenant(1).avg_read_us();

  EXPECT_NEAR(read_isolated, read_solo, read_solo * 0.02);
  // In the shared device the writer interferes at chips.
  EXPECT_GE(read_shared, read_isolated);
}

TEST(Contention, ConflictsCountedUnderOverlap) {
  Ssd ssd;
  ssd.set_tenant_channels(0, {0});
  // Two simultaneous reads of the same chip: second one must conflict.
  ssd.submit(make_req(0, 0, sim::OpType::kRead, 0, 0));
  ssd.submit(make_req(1, 0, sim::OpType::kRead, 0, 0));
  ssd.run_to_completion();
  EXPECT_GE(ssd.metrics().counters().conflicts, 1u);
}

TEST(Contention, NoConflictsWhenSerialized) {
  Ssd ssd;
  // Requests spaced far apart never contend.
  for (std::uint64_t i = 0; i < 10; ++i) {
    ssd.submit(make_req(i, 0, sim::OpType::kRead, i,
                        i * 10 * kMillisecond));
  }
  ssd.run_to_completion();
  EXPECT_EQ(ssd.metrics().counters().conflicts, 0u);
}

TEST(Contention, FewerChannelsMeansHigherLatencyUnderLoad) {
  auto run_with_channels = [](std::vector<std::uint32_t> channels) {
    Ssd ssd;
    ssd.set_tenant_channels(0, std::move(channels));
    std::uint64_t id = 0;
    for (std::uint64_t i = 0; i < 3000; ++i) {
      ssd.submit(make_req(id++, 0, sim::OpType::kWrite, i % 1024,
                          i * 30 * kMicrosecond));
    }
    ssd.run_to_completion();
    return ssd.metrics().tenant(0).avg_write_us();
  };
  const double eight = run_with_channels({0, 1, 2, 3, 4, 5, 6, 7});
  const double two = run_with_channels({0, 1});
  const double one = run_with_channels({0});
  EXPECT_LE(eight, two);
  EXPECT_LT(two, one);
}

TEST(Contention, WritesDelayReadsOnSameChip) {
  Ssd ssd;
  ssd.set_tenant_channels(0, {0});
  ssd.set_tenant_channels(1, {0});
  // Write arrives first and occupies the chip for ~241 us; a read to the
  // same chip region right after must wait for the program to finish.
  ssd.submit(make_req(0, 0, sim::OpType::kWrite, 0, 0));
  ssd.submit(make_req(1, 1, sim::OpType::kRead, 0, 1000));
  ssd.run_to_completion();
  const auto& t = ssd.options().timing;
  const auto& g = ssd.options().geometry;
  const double unloaded = to_us(t.read_service_ns(g));
  EXPECT_GT(ssd.metrics().tenant(1).avg_read_us(), unloaded * 2.0);
}

TEST(Contention, BusAndChipBusyTimeAccounted) {
  Ssd ssd;
  ssd.submit(make_req(0, 0, sim::OpType::kWrite, 0, 0));
  ssd.submit(make_req(1, 0, sim::OpType::kRead, 1, 0));
  ssd.run_to_completion();
  const auto& c = ssd.metrics().counters();
  EXPECT_GT(c.bus_busy_ns, 0u);
  EXPECT_GT(c.chip_busy_ns, c.bus_busy_ns);
}

}  // namespace
}  // namespace ssdk::ssd
