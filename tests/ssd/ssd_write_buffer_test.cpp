// DRAM write buffer: absorption at DRAM latency, read hits, watermark
// flushing, overwrite coalescing, trim interaction, and the latency win.
#include <gtest/gtest.h>

#include "ssd/ssd.hpp"
#include "util/rng.hpp"

namespace ssdk::ssd {
namespace {

sim::IoRequest make_req(std::uint64_t id, sim::OpType type,
                        std::uint64_t lpn, SimTime arrival,
                        std::uint32_t pages = 1) {
  sim::IoRequest r;
  r.id = id;
  r.tenant = 0;
  r.type = type;
  r.lpn = lpn;
  r.page_count = pages;
  r.arrival = arrival;
  return r;
}

SsdOptions buffered_options(std::uint32_t capacity = 64) {
  SsdOptions options;
  options.write_buffer.capacity_pages = capacity;
  return options;
}

TEST(WriteBuffer, AbsorbsWritesAtDramLatency) {
  Ssd ssd(buffered_options());
  ssd.submit(make_req(0, sim::OpType::kWrite, 5, 0));
  ssd.run_to_completion();
  EXPECT_DOUBLE_EQ(ssd.metrics().tenant(0).avg_write_us(),
                   to_us(ssd.options().write_buffer.dram_ns));
  EXPECT_EQ(ssd.write_buffer_occupancy(), 1u);
  // Nothing reached flash yet: mapping empty.
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0), 0u);
}

TEST(WriteBuffer, DisabledByDefault) {
  Ssd ssd;  // capacity 0
  ssd.submit(make_req(0, sim::OpType::kWrite, 5, 0));
  ssd.run_to_completion();
  EXPECT_EQ(ssd.write_buffer_occupancy(), 0u);
  EXPECT_GT(ssd.metrics().tenant(0).avg_write_us(), 200.0);  // flash path
}

TEST(WriteBuffer, ReadHitServedFromDram) {
  Ssd ssd(buffered_options());
  ssd.submit(make_req(0, sim::OpType::kWrite, 9, 0));
  ssd.submit(make_req(1, sim::OpType::kRead, 9, kMillisecond));
  ssd.run_to_completion();
  EXPECT_DOUBLE_EQ(ssd.metrics().tenant(0).avg_read_us(),
                   to_us(ssd.options().write_buffer.dram_ns));
  EXPECT_GE(ssd.write_buffer_hits(), 1u);
}

TEST(WriteBuffer, OverwriteCoalescesInPlace) {
  Ssd ssd(buffered_options());
  for (int i = 0; i < 10; ++i) {
    ssd.submit(make_req(static_cast<std::uint64_t>(i), sim::OpType::kWrite,
                        7, static_cast<SimTime>(i) * kMillisecond));
  }
  ssd.run_to_completion();
  EXPECT_EQ(ssd.write_buffer_occupancy(), 1u);
  EXPECT_EQ(ssd.write_buffer_hits(), 9u);
}

TEST(WriteBuffer, FlushesAboveHighWatermark) {
  SsdOptions options = buffered_options(32);
  options.write_buffer.high_watermark = 0.5;  // flush past 16 pages
  options.write_buffer.low_watermark = 0.25;
  Ssd ssd(options);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ssd.submit(make_req(i, sim::OpType::kWrite, i,
                        i * 10 * kMicrosecond));
  }
  ssd.run_to_completion();
  // Occupancy was pushed back under the low watermark at flush time.
  EXPECT_LE(ssd.write_buffer_occupancy(), 12u);
  // The evicted pages reached flash and are mapped.
  EXPECT_GE(ssd.ftl().mapping().mapped_count(0), 8u);
}

TEST(WriteBuffer, ExplicitFlushDrainsEverything) {
  Ssd ssd(buffered_options());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ssd.submit(make_req(i, sim::OpType::kWrite, i, i * kMillisecond));
  }
  ssd.run_to_completion();
  EXPECT_EQ(ssd.write_buffer_occupancy(), 10u);
  ssd.flush_write_buffer();
  ssd.run_to_completion();
  EXPECT_EQ(ssd.write_buffer_occupancy(), 0u);
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0), 10u);
  EXPECT_EQ(ssd.ftl().blocks().total_valid_pages(), 10u);
}

TEST(WriteBuffer, TrimDropsDirtyCopy) {
  Ssd ssd(buffered_options());
  ssd.submit(make_req(0, sim::OpType::kWrite, 4, 0));
  ssd.submit(make_req(1, sim::OpType::kTrim, 4, kMillisecond));
  ssd.run_to_completion();
  EXPECT_EQ(ssd.write_buffer_occupancy(), 0u);
  ssd.flush_write_buffer();
  ssd.run_to_completion();
  // Nothing resurrected.
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0), 0u);
}

TEST(WriteBuffer, FullBufferSpillsToFlash) {
  SsdOptions options = buffered_options(4);
  options.write_buffer.high_watermark = 2.0;  // never auto-flush
  Ssd ssd(options);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ssd.submit(make_req(i, sim::OpType::kWrite, i, i * kMillisecond));
  }
  ssd.run_to_completion();
  EXPECT_EQ(ssd.write_buffer_occupancy(), 4u);
  // The other four pages took the flash path.
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0), 4u);
}

TEST(WriteBuffer, ReducesAverageWriteLatencyUnderBurst) {
  auto avg_write = [](std::uint32_t capacity) {
    SsdOptions options = buffered_options(capacity);
    Ssd ssd(options);
    ssd.set_tenant_channels(0, {0});
    for (std::uint64_t i = 0; i < 64; ++i) {
      ssd.submit(make_req(i, sim::OpType::kWrite, i,
                          i * 20 * kMicrosecond));
    }
    ssd.run_to_completion();
    return ssd.metrics().tenant(0).avg_write_us();
  };
  EXPECT_LT(avg_write(256), avg_write(0) / 10.0);
}

TEST(WriteBuffer, EveryRequestStillCompletesExactlyOnce) {
  SsdOptions options = buffered_options(16);
  options.write_buffer.high_watermark = 0.6;
  options.write_buffer.low_watermark = 0.3;
  Ssd ssd(options);
  std::vector<int> completed(300, 0);
  ssd.set_completion_hook([&](const sim::Completion& c) {
    ++completed[c.request_id];
  });
  ssdk::Rng rng(5);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const bool write = rng.bernoulli(0.6);
    ssd.submit(make_req(i, write ? sim::OpType::kWrite : sim::OpType::kRead,
                        rng.next_below(64), i * 30 * kMicrosecond,
                        1 + static_cast<std::uint32_t>(rng.next_below(3))));
  }
  ssd.run_to_completion();
  for (const int c : completed) ASSERT_EQ(c, 1);
}

}  // namespace
}  // namespace ssdk::ssd
