// Corruption-seeding tests for the checked-build invariant audit.
//
// Each test takes a healthy mid-simulation device, breaks exactly one
// structural invariant — through the FTL's public mutators or by byte
// surgery on a raw save_state() payload — and proves check_invariants()
// (or the audit that runs automatically after load_state) detects it.
// The healthy-path tests pin the other direction: a clean device, its
// fork, and a save/load round trip must all audit clean, so the audit can
// run inside full replays without false alarms.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "snapshot/archive.hpp"
#include "ssd/ssd.hpp"
#include "util/check.hpp"

namespace ssdk::ssd {
namespace {

sim::IoRequest make_req(std::uint64_t id, sim::TenantId tenant,
                        sim::OpType type, std::uint64_t lpn,
                        std::uint32_t pages, SimTime arrival) {
  sim::IoRequest r;
  r.id = id;
  r.tenant = tenant;
  r.type = type;
  r.lpn = lpn;
  r.page_count = pages;
  r.arrival = arrival;
  return r;
}

SsdOptions tiny_options() {
  SsdOptions options;
  options.geometry = sim::Geometry::tiny();
  return options;
}

/// tiny_options() plus the power-loss machinery: OOB metadata is
/// materialized, and a small write buffer plus periodic flushes keep
/// volatile pages and flush barriers live mid-run.
SsdOptions powered_options() {
  SsdOptions options = tiny_options();
  options.power.enabled = true;
  options.write_buffer.capacity_pages = 4;
  return options;
}

/// A tiny device paused mid-workload: mapped pages, pending events,
/// in-flight ops — every structure the audit walks is populated.
std::unique_ptr<Ssd> busy_device(std::uint64_t pause_at = 48) {
  auto device = std::make_unique<Ssd>(tiny_options());
  std::vector<sim::IoRequest> reqs;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto type = (i % 3 == 2) ? sim::OpType::kRead : sim::OpType::kWrite;
    reqs.push_back(make_req(i, 0, type, i % 24, 1, 50 * i));
  }
  device->submit(reqs);
  device->run_until_arrival(pause_at);
  return device;
}

/// busy_device() on powered_options(): every eighth request is a flush
/// barrier, so OOB metadata, buffered volatile pages, and flush barriers
/// are all populated at the pause point.
std::unique_ptr<Ssd> busy_powered_device(std::uint64_t pause_at = 48) {
  auto device = std::make_unique<Ssd>(powered_options());
  std::vector<sim::IoRequest> reqs;
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto type = sim::OpType::kWrite;
    if (i % 8 == 7) {
      type = sim::OpType::kFlush;
    } else if (i % 3 == 2) {
      type = sim::OpType::kRead;
    }
    reqs.push_back(make_req(i, 0, type, i % 24, 1, 50 * i));
  }
  device->submit(reqs);
  device->run_until_arrival(pause_at);
  return device;
}

// --- byte-surgery helpers ----------------------------------------------------

std::size_t find_tag(const std::vector<char>& buf, const char* tag) {
  for (std::size_t i = 0; i + 4 <= buf.size(); ++i) {
    if (std::memcmp(buf.data() + i, tag, 4) == 0) return i;
  }
  ADD_FAILURE() << "tag " << tag << " not found in snapshot payload";
  return 0;
}

std::uint64_t read_u64(const std::vector<char>& buf, std::size_t pos) {
  std::uint64_t v = 0;
  std::memcpy(&v, buf.data() + pos, sizeof(v));
  return v;
}

void write_u64(std::vector<char>& buf, std::size_t pos, std::uint64_t v) {
  std::memcpy(buf.data() + pos, &v, sizeof(v));
}

void write_u32(std::vector<char>& buf, std::size_t pos, std::uint32_t v) {
  std::memcpy(buf.data() + pos, &v, sizeof(v));
}

/// Serialize `device`, let `corrupt` patch the raw payload, and load the
/// result into a second identically-constructed device. The checked-build
/// audit runs inside load_state; in normal builds the explicit audit
/// afterwards does the same walk.
void expect_corruption_detected(
    const Ssd& device, const std::function<void(std::vector<char>&)>& corrupt,
    const char* label, const SsdOptions& options = tiny_options()) {
  snapshot::StateWriter w;
  device.save_state(w);
  std::vector<char> bytes = w.take();
  corrupt(bytes);

  Ssd reloaded(options);
  try {
    snapshot::StateReader r(bytes);
    reloaded.load_state(r);
    reloaded.check_invariants();
    FAIL() << label << ": corruption was not detected";
  } catch (const util::InvariantViolation&) {
    SUCCEED();
  }
}

// --- healthy paths must audit clean ------------------------------------------

TEST(SsdInvariants, CleanDeviceAuditsClean) {
  auto device = busy_device();
  EXPECT_NO_THROW(device->check_invariants());
  device->run_to_completion();
  EXPECT_NO_THROW(device->check_invariants());
}

TEST(SsdInvariants, ForkAuditsClean) {
  auto device = busy_device();
  auto copy = device->fork();
  EXPECT_NO_THROW(copy->check_invariants());
}

TEST(SsdInvariants, SaveLoadRoundTripAuditsClean) {
  auto device = busy_device();
  snapshot::StateWriter w;
  device->save_state(w);
  const std::vector<char> bytes = w.take();
  Ssd reloaded(tiny_options());
  snapshot::StateReader r(bytes);
  reloaded.load_state(r);
  EXPECT_NO_THROW(reloaded.check_invariants());
}

TEST(SsdInvariants, DefaultGeometryWorkloadAuditsClean) {
  Ssd device;  // paper-shaped small() geometry
  std::vector<sim::IoRequest> reqs;
  for (std::uint64_t i = 0; i < 128; ++i) {
    reqs.push_back(make_req(i, i % 2, sim::OpType::kWrite, i, 2, 20 * i));
  }
  device.submit(reqs);
  device.run_to_completion();
  EXPECT_NO_THROW(device.check_invariants());
}

// --- L2P bijection ------------------------------------------------------------

TEST(SsdInvariants, DetectsMappingToInvalidPage) {
  auto device = busy_device();
  // Repoint a mapped LPN at a page nothing ever wrote: the forward L2P
  // walk must see a mapping whose target is not valid.
  ASSERT_NE(device->ftl().mapping().lookup(0, 0), sim::kInvalidPpn);
  const sim::Ppn bogus = device->ftl().geometry().total_pages() - 1;
  ASSERT_FALSE(device->ftl().blocks().is_valid(bogus));
  device->ftl().mapping().update(0, 0, bogus);
  EXPECT_THROW(device->check_invariants(), util::InvariantViolation);
}

TEST(SsdInvariants, DetectsCrossMappedPages) {
  auto device = busy_device();
  // Point LPN 0 at LPN 1's physical page: both pages stay valid, counts
  // stay conserved, but the owner recorded in the block manager no longer
  // matches the mapping that reaches it.
  const sim::Ppn other = device->ftl().mapping().lookup(0, 1);
  ASSERT_NE(other, sim::kInvalidPpn);
  device->ftl().mapping().update(0, 0, other);
  EXPECT_THROW(device->check_invariants(), util::InvariantViolation);
}

TEST(SsdInvariants, DetectsOrphanValidPage) {
  auto device = busy_device();
  // Resurrect an invalidated page under an owner that maps nowhere: the
  // reverse walk must find a valid page unreachable through the mapping.
  const sim::Ppn old_home = device->ftl().mapping().lookup(0, 0);
  ASSERT_NE(old_home, sim::kInvalidPpn);
  // Arrivals must be non-decreasing device-wide, so the overwrite lands
  // after the whole original stream.
  device->submit(make_req(1000, 0, sim::OpType::kWrite, 0, 1, 50 * 64));
  device->run_to_completion();
  ASSERT_FALSE(device->ftl().blocks().is_valid(old_home))
      << "overwrite should have invalidated the old page";
  device->ftl().blocks().mark_valid(old_home, 0, 999'999);
  EXPECT_THROW(device->check_invariants(), util::InvariantViolation);
}

TEST(SsdInvariants, DetectsMappedCountDrift) {
  auto device = busy_device();
  // Clearing a mapping through the raw table (table_span/update keep the
  // cache honest, so go through a trim of a mapped LPN... then restore it
  // behind the cache's back via update to the same value twice).
  // Simplest honest corruption: erase a mapping and re-install it — the
  // cache survives that — so instead corrupt via update() to kInvalidPpn
  // followed by a direct re-update: count drops then rises, staying
  // consistent. The cache can only be desynced through serialized state:
  // patch the count in a snapshot payload.
  snapshot::StateWriter w;
  device->save_state(w);
  std::vector<char> bytes = w.take();
  const std::size_t l2pm = find_tag(bytes, "L2PM");
  // Layout: tag, u64 tenant_count, then per tenant: vec_u64 table
  // (u64 size + entries), u64 mapped_count.
  const std::size_t table_size_pos = l2pm + 4 + 8;
  const std::uint64_t entries = read_u64(bytes, table_size_pos);
  ASSERT_GT(entries, 0u);
  const std::size_t count_pos = table_size_pos + 8 + entries * 8;
  write_u64(bytes, count_pos, read_u64(bytes, count_pos) + 3);

  Ssd reloaded(tiny_options());
  snapshot::StateReader r(bytes);
  try {
    reloaded.load_state(r);
    reloaded.check_invariants();
    FAIL() << "mapped-count drift was not detected";
  } catch (const util::InvariantViolation&) {
    SUCCEED();
  }
}

// --- block manager ------------------------------------------------------------

TEST(SsdInvariants, DetectsValidCounterCorruption) {
  auto device = busy_device();
  expect_corruption_detected(
      *device,
      [](std::vector<char>& bytes) {
        // BLKM: tag, u64 retired, u64 nblocks, then 19-byte records
        // (u32 write_ptr, u32 valid, u64 erases, u8 state, u8, u8).
        const std::size_t blkm = find_tag(bytes, "BLKM");
        const std::size_t valid_pos = blkm + 4 + 8 + 8 + 4;
        write_u32(bytes, valid_pos, 7'777);
      },
      "block valid counter");
}

TEST(SsdInvariants, DetectsFreeListDuplicate) {
  auto device = busy_device();
  expect_corruption_detected(
      *device,
      [](std::vector<char>& bytes) {
        // Plane free lists follow the block records: u64 plane count,
        // then per plane vec_u32 free_list + i64 open_block. Duplicate
        // the first plane's first free block into its second slot.
        const std::size_t blkm = find_tag(bytes, "BLKM");
        const std::uint64_t nblocks = read_u64(bytes, blkm + 12);
        const std::size_t planes_pos = blkm + 20 + nblocks * 19;
        const std::size_t list_size_pos = planes_pos + 8;
        const std::uint64_t list_len = read_u64(bytes, list_size_pos);
        ASSERT_GE(list_len, 2u) << "need two free blocks to duplicate";
        std::uint32_t first = 0;
        std::memcpy(&first, bytes.data() + list_size_pos + 8, 4);
        write_u32(bytes, list_size_pos + 8 + 4, first);
      },
      "free-list duplicate");
}

// --- event queue --------------------------------------------------------------

TEST(SsdInvariants, DetectsEventBeforeNow) {
  auto device = busy_device();
  ASSERT_GT(device->now(), 0u);
  expect_corruption_detected(
      *device,
      [](std::vector<char>& bytes) {
        // EVTQ: tag, u64 next_seq, u64 count, then 33-byte events whose
        // first field is the timestamp. Schedule the first one at 0,
        // before the restored clock.
        const std::size_t evtq = find_tag(bytes, "EVTQ");
        ASSERT_GT(read_u64(bytes, evtq + 12), 0u) << "no pending events";
        write_u64(bytes, evtq + 20, 0);
      },
      "stale event timestamp");
}

TEST(SsdInvariants, DetectsDuplicateEventSeq) {
  auto device = busy_device();
  expect_corruption_detected(
      *device,
      [](std::vector<char>& bytes) {
        const std::size_t evtq = find_tag(bytes, "EVTQ");
        ASSERT_GE(read_u64(bytes, evtq + 12), 2u) << "need two events";
        // Copy event 0's seq over event 1's: the unique total order dies.
        const std::uint64_t seq0 = read_u64(bytes, evtq + 20 + 8);
        write_u64(bytes, evtq + 20 + 33 + 8, seq0);
      },
      "duplicate event seq");
}

// --- op slab and arbitration caches -------------------------------------------

TEST(SsdInvariants, DetectsOpSlabCorruption) {
  auto device = busy_device();
  expect_corruption_detected(
      *device,
      [](std::vector<char>& bytes) {
        // OPSL: tag, u64 count, then 90-byte op records ending in the
        // in_use byte. Flipping op 0's flag either leaks it (in use,
        // vanished from the free list) or double-frees it (free-listed
        // and in use); the slab accounting catches both.
        const std::size_t opsl = find_tag(bytes, "OPSL");
        ASSERT_GT(read_u64(bytes, opsl + 4), 0u);
        const std::size_t flag_pos = opsl + 12 + 89;
        bytes[flag_pos] = bytes[flag_pos] ? '\0' : '\1';
      },
      "op slab in_use flag");
}

TEST(SsdInvariants, DetectsQueuedWriteCacheDrift) {
  auto device = busy_device();
  expect_corruption_detected(
      *device,
      [](std::vector<char>& bytes) {
        // CHNL: tag, u64 count, then per channel: bool bus_busy,
        // u64 bus_free_at, ring (u64 size + entries), bool rr_toggle,
        // u32 queued_writes. Desync channel 0's cached counter.
        const std::size_t chnl = find_tag(bytes, "CHNL");
        const std::size_t ring_size_pos = chnl + 12 + 1 + 8;
        const std::uint64_t ring_len = read_u64(bytes, ring_size_pos);
        const std::size_t queued_pos = ring_size_pos + 8 + ring_len * 8 + 1;
        write_u32(bytes, queued_pos, 0xDEAD);
      },
      "queued_writes cache");
}

// --- power-loss & OOB serialized state ----------------------------------------
//
// Every field the power/OOB work added to the snapshot format gets a
// seeded corruption here: OPSL oob_seq, the OOB_ owner/seq arrays, REQS
// volatile_pages, and the PWRS power flag and flush-barrier records.

TEST(SsdInvariants, DetectsOpOobSeqCorruption) {
  auto device = busy_powered_device();
  expect_corruption_detected(
      *device,
      [](std::vector<char>& bytes) {
        // OPSL records: kind byte at +12, oob_seq u64 at +61, in_use at
        // +89. Give every in-flight write an oob_seq far beyond the OOB
        // store's next_seq; the op-slab audit range-checks it.
        const std::size_t opsl = find_tag(bytes, "OPSL");
        const std::uint64_t nops = read_u64(bytes, opsl + 4);
        std::size_t patched = 0;
        for (std::uint64_t i = 0; i < nops; ++i) {
          const std::size_t rec = opsl + 12 + i * 90;
          // Wire values of the (private) OpKind enum: 1 = kHostWrite,
          // 5 = kFlushWrite — the two kinds the audit range-checks.
          const auto kind = static_cast<std::uint8_t>(bytes[rec + 12]);
          const bool is_write = kind == 1 || kind == 5;
          if (bytes[rec + 89] && is_write) {
            write_u64(bytes, rec + 61, 0xFFFF'FFFF'FFFFULL);
            ++patched;
          }
        }
        ASSERT_GT(patched, 0u) << "no in-flight write op to corrupt";
      },
      "op oob_seq", powered_options());
}

/// First physical page that is both valid and carries readable OOB data
/// (its program completed), or kInvalidPpn when none exists.
sim::Ppn first_data_page(const Ssd& device) {
  const auto& ftl = device.ftl();
  for (sim::Ppn p = 0; p < ftl.geometry().total_pages(); ++p) {
    if (ftl.blocks().is_valid(p) && ftl.oob().state(p) == ftl::OobState::kData) {
      return p;
    }
  }
  return sim::kInvalidPpn;
}

TEST(SsdInvariants, DetectsOobOwnerCorruption) {
  auto device = busy_powered_device();
  const sim::Ppn target = first_data_page(*device);
  ASSERT_NE(target, sim::kInvalidPpn) << "no programmed page to corrupt";
  expect_corruption_detected(
      *device,
      [target](std::vector<char>& bytes) {
        // OOB_: tag, bool enabled, u64 next_seq, vec_u64 owner (u64 size
        // + entries), vec_u64 seq, ... Flip the low (LPN) bit of the
        // target's packed owner: the OOB now disagrees with the block
        // manager's owner table for a valid page.
        const std::size_t oob = find_tag(bytes, "OOB_");
        const std::size_t owner_pos = oob + 21 + target * 8;
        write_u64(bytes, owner_pos, read_u64(bytes, owner_pos) ^ 1);
      },
      "OOB owner array", powered_options());
}

TEST(SsdInvariants, DetectsOobSeqCorruption) {
  auto device = busy_powered_device();
  const sim::Ppn target = first_data_page(*device);
  ASSERT_NE(target, sim::kInvalidPpn) << "no programmed page to corrupt";
  const std::uint64_t npages = device->ftl().geometry().total_pages();
  expect_corruption_detected(
      *device,
      [target, npages](std::vector<char>& bytes) {
        // The seq array follows the owner array; zero the target's write
        // seq. A data page must carry a seq in (0, next_seq).
        const std::size_t oob = find_tag(bytes, "OOB_");
        const std::size_t seq_pos = oob + 29 + npages * 8 + target * 8;
        write_u64(bytes, seq_pos, 0);
      },
      "OOB seq array", powered_options());
}

TEST(SsdInvariants, DetectsVolatilePageOverCount) {
  auto device = busy_powered_device();
  expect_corruption_detected(
      *device,
      [](std::vector<char>& bytes) {
        // REQS: tag, u64 count, then 45-byte records with volatile_pages
        // (u32) at +41. Claim request 0 absorbed more buffered pages
        // than it has pages.
        const std::size_t reqs = find_tag(bytes, "REQS");
        ASSERT_GT(read_u64(bytes, reqs + 4), 0u);
        write_u32(bytes, reqs + 12 + 41, 0xDEAD);
      },
      "request volatile_pages", powered_options());
}

TEST(SsdInvariants, DetectsPoweredOffFlagFlip) {
  auto device = busy_device();
  expect_corruption_detected(
      *device,
      [](std::vector<char>& bytes) {
        // PWRS: tag, bool powered_off, bool cut_fired, barriers, lost
        // keys. Claiming the device is off while events and ops are
        // still in flight violates the powered-off quiescence invariant.
        const std::size_t pwrs = find_tag(bytes, "PWRS");
        bytes[pwrs + 4] = '\1';
      },
      "powered_off flag");
}

TEST(SsdInvariants, DetectsFlushBarrierCountDrift) {
  // A barrier only exists between a flush's arrival and its last fenced
  // program's completion; scan pause points until one holds a live
  // barrier, then overstate its remaining count.
  for (std::uint64_t pause = 8; pause < 64; ++pause) {
    auto device = busy_powered_device(pause);
    snapshot::StateWriter probe;
    device->save_state(probe);
    const std::vector<char> raw = probe.take();
    const std::size_t pwrs = find_tag(raw, "PWRS");
    if (read_u64(raw, pwrs + 6) == 0) continue;  // no live barrier here
    expect_corruption_detected(
        *device,
        [](std::vector<char>& bytes) {
          // PWRS barrier records are {u64 request, u64 threshold,
          // u32 remaining} starting at +14; bump barrier 0's count.
          const std::size_t at = find_tag(bytes, "PWRS");
          std::uint32_t rem = 0;
          std::memcpy(&rem, bytes.data() + at + 30, 4);
          write_u32(bytes, at + 30, rem + 1);
        },
        "flush barrier remaining", powered_options());
    return;
  }
  FAIL() << "no pause point held a live flush barrier";
}

// --- periodic audit hook ------------------------------------------------------

TEST(SsdInvariants, PeriodicAuditCatchesCorruptionMidRun) {
  auto device = busy_device();
  device->set_audit_interval(1);  // audit after every handled arrival
  const sim::Ppn bogus = device->ftl().geometry().total_pages() - 1;
  ASSERT_FALSE(device->ftl().blocks().is_valid(bogus));
  device->ftl().mapping().update(0, 0, bogus);
  EXPECT_THROW(device->run_to_completion(), util::InvariantViolation);
}

TEST(SsdInvariants, PeriodicAuditIsScheduleNeutral) {
  // Audits observe, never mutate: the same workload with and without the
  // per-arrival audit must produce identical metrics and final clocks.
  auto plain = busy_device(~std::uint64_t{0});
  auto audited = std::make_unique<Ssd>(tiny_options());
  audited->set_audit_interval(1);
  std::vector<sim::IoRequest> reqs;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto type = (i % 3 == 2) ? sim::OpType::kRead : sim::OpType::kWrite;
    reqs.push_back(make_req(i, 0, type, i % 24, 1, 50 * i));
  }
  audited->submit(reqs);
  audited->run_to_completion();
  EXPECT_EQ(plain->now(), audited->now());
  EXPECT_EQ(plain->metrics().tenant(0).avg_write_us(),
            audited->metrics().tenant(0).avg_write_us());
}

}  // namespace
}  // namespace ssdk::ssd
