// Regression: the write-buffer eviction FIFO used to accumulate one stale
// entry per trimmed dirty page and never shed them (trim erases the map
// key but cannot cheaply remove the FIFO occurrence). Under a sustained
// write-then-trim pattern the FIFO grew without bound even though buffer
// occupancy stayed tiny. Compaction now drops stale entries once they
// outnumber live ones, keeping the FIFO within ~2x occupancy while
// preserving eviction order exactly.
#include <gtest/gtest.h>

#include "ssd/ssd.hpp"

namespace ssdk::ssd {
namespace {

sim::IoRequest make_req(std::uint64_t id, sim::OpType type,
                        std::uint64_t lpn, SimTime arrival,
                        std::uint32_t pages = 1) {
  sim::IoRequest r;
  r.id = id;
  r.tenant = 0;
  r.type = type;
  r.lpn = lpn;
  r.page_count = pages;
  r.arrival = arrival;
  return r;
}

SsdOptions buffered_options(std::uint32_t capacity) {
  SsdOptions options;
  options.write_buffer.capacity_pages = capacity;
  return options;
}

TEST(WriteBufferCompaction, TrimHeavyWorkloadKeepsFifoBounded) {
  // 4000 write+trim pairs against a 512-page buffer: occupancy never
  // exceeds a handful of pages, so without compaction the FIFO would end
  // at ~4000 entries.
  Ssd ssd(buffered_options(512));
  std::uint64_t id = 0;
  SimTime t = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t lpn = static_cast<std::uint64_t>(i % 997);
    ssd.submit(make_req(id++, sim::OpType::kWrite, lpn, t));
    t += 10 * kMicrosecond;
    ssd.submit(make_req(id++, sim::OpType::kTrim, lpn, t));
    t += 10 * kMicrosecond;
  }
  ssd.run_to_completion();
  EXPECT_EQ(ssd.metrics().counters().host_trims, 4000u);
  EXPECT_LE(ssd.write_buffer_occupancy(), 2u);
  // Compaction fires whenever stale entries outnumber live ones (with a
  // 64-entry floor), so the FIFO can never drift past
  // max(64, 2 * occupancy) + 1.
  EXPECT_LE(ssd.write_buffer_fifo_entries(), 65u);
}

TEST(WriteBufferCompaction, FifoTracksOccupancyWithoutTrims) {
  // Distinct-LPN writes with no trims create no stale entries: the FIFO
  // must stay exactly as large as the buffer.
  Ssd ssd(buffered_options(512));
  SimTime t = 0;
  for (std::uint64_t lpn = 0; lpn < 100; ++lpn) {
    ssd.submit(make_req(lpn, sim::OpType::kWrite, lpn, t));
    t += 10 * kMicrosecond;
  }
  ssd.run_to_completion();
  EXPECT_EQ(ssd.write_buffer_occupancy(), 100u);
  EXPECT_EQ(ssd.write_buffer_fifo_entries(), 100u);
}

TEST(WriteBufferCompaction, EvictionOrderSurvivesCompaction) {
  // Interleave keepers with trim fodder so compaction runs while live
  // keys are spread through the FIFO, then overflow the watermark and
  // check the keepers flush oldest-first (flush order == mapping
  // population order on a single-channel device with in-order writes).
  SsdOptions options = buffered_options(64);
  options.geometry = sim::Geometry::tiny();
  Ssd ssd(options);
  std::uint64_t id = 0;
  SimTime t = 0;
  // 8 keepers at LPNs 1000..1007, separated by trim churn.
  for (std::uint64_t k = 0; k < 8; ++k) {
    ssd.submit(make_req(id++, sim::OpType::kWrite, 1000 + k, t));
    t += 10 * kMicrosecond;
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t lpn = static_cast<std::uint64_t>(i);
      ssd.submit(make_req(id++, sim::OpType::kWrite, lpn, t));
      t += 10 * kMicrosecond;
      ssd.submit(make_req(id++, sim::OpType::kTrim, lpn, t));
      t += 10 * kMicrosecond;
    }
  }
  ssd.run_to_completion();
  ASSERT_EQ(ssd.write_buffer_occupancy(), 8u);
  EXPECT_LE(ssd.write_buffer_fifo_entries(), 65u);
  // Force eviction of everything and verify all keepers reach flash.
  ssd.flush_write_buffer();
  ssd.run_to_completion();
  EXPECT_EQ(ssd.write_buffer_occupancy(), 0u);
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_NE(ssd.ftl().mapping().lookup(0, 1000 + k), sim::kInvalidPpn)
        << "keeper lpn " << 1000 + k << " never flushed";
  }
}

}  // namespace
}  // namespace ssdk::ssd
