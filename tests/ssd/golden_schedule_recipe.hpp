// Shared recipes for the golden bit-identical schedule check.
//
// Each recipe deterministically builds a request stream and a RunConfig,
// replays it with telemetry on, and hands back the tracer's event stream.
// The reference binary traces under tests/data/ were produced by running
// exactly these recipes on the pre-optimization simulator; the golden test
// replays them on the current build and asserts telemetry::first_divergence
// finds nothing. Any change to the recipes invalidates the references —
// regenerate them from a known-good build instead of editing in place.
#pragma once

#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/runner.hpp"
#include "telemetry/tracer.hpp"
#include "trace/catalog.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::testing {

struct GoldenRecipe {
  /// Stable identifier; the reference file is tests/data/<name>.ssdktrc.
  std::string name;
  std::vector<sim::IoRequest> requests;
  std::uint32_t tenants = 4;
  core::RunConfig config;
};

/// Scenario A: catalog Mix 1 on the default device (static allocation,
/// read priority, no write buffer). Covers the plain dispatch path.
inline GoldenRecipe golden_mix1_default() {
  GoldenRecipe r;
  r.name = "golden_mix1_default";
  r.requests = trace::build_mix(1, 0.1, 800);
  r.tenants = 4;
  return r;
}

/// Scenario B: catalog Mix 2 with a write buffer, pipelined writes, no
/// read priority and hybrid page allocation. Covers the buffered-write
/// FIFO, dynamic placement (LoadView backlogs) and the fair arbiter.
inline GoldenRecipe golden_mix2_buffered() {
  GoldenRecipe r;
  r.name = "golden_mix2_buffered";
  r.requests = trace::build_mix(2, 0.1, 800);
  r.tenants = 4;
  r.config.ssd.write_buffer.capacity_pages = 256;
  r.config.ssd.read_priority = false;
  r.config.ssd.pipelined_writes = true;
  r.config.hybrid_page_allocation = true;
  return r;
}

/// Scenario C: overwrite-heavy synthetic stream on a deliberately tiny
/// geometry so garbage collection runs many rounds. Covers victim
/// selection, migration reads/programs and erase scheduling.
inline GoldenRecipe golden_gc_churn() {
  GoldenRecipe r;
  r.name = "golden_gc_churn";
  trace::SyntheticSpec spec;
  spec.name = "gc_churn";
  spec.write_fraction = 0.9;
  spec.request_count = 1200;
  spec.intensity_rps = 4'000.0;
  spec.mean_request_pages = 2.0;
  spec.max_request_pages = 8;
  spec.address_space_pages = 128;
  spec.zipf_theta = 0.3;
  spec.sequential_fraction = 0.2;
  spec.seed = 7;
  const trace::Workload workloads[] = {trace::generate_synthetic(spec)};
  r.requests = trace::mix_workloads(workloads);
  r.tenants = 1;
  r.config.ssd.geometry.channels = 2;
  r.config.ssd.geometry.chips_per_channel = 1;
  r.config.ssd.geometry.planes_per_chip = 2;
  r.config.ssd.geometry.blocks_per_plane = 16;
  r.config.ssd.geometry.pages_per_block = 16;
  return r;
}

inline std::vector<GoldenRecipe> all_golden_recipes() {
  std::vector<GoldenRecipe> recipes;
  recipes.push_back(golden_mix1_default());
  recipes.push_back(golden_mix2_buffered());
  recipes.push_back(golden_gc_churn());
  return recipes;
}

/// Replay a recipe with telemetry on. The tracer must outlive the call.
inline core::RunResult replay_golden(const GoldenRecipe& recipe,
                                     telemetry::Tracer& tracer) {
  const auto features = core::features_of(recipe.requests);
  const auto profiles = features.profiles(recipe.tenants);
  core::RunConfig config = recipe.config;
  config.tracer = &tracer;
  return core::run_with_strategy(recipe.requests, core::Strategy{}, profiles,
                                 config);
}

}  // namespace ssdk::testing
