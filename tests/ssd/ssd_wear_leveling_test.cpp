// Static wear leveling: under a hot/cold split, cold data pins its blocks
// at zero erases forever unless the FTL rotates them.
#include <gtest/gtest.h>

#include "ssd/ssd.hpp"

namespace ssdk::ssd {
namespace {

SsdOptions tiny_with_wl(std::uint64_t gap_threshold) {
  SsdOptions options;
  options.geometry = sim::Geometry::tiny();  // 8 blocks x 8 pages / plane
  options.ftl.wear_gap_threshold = gap_threshold;
  return options;
}

/// Cold fill: LPNs 0..15 written once (two full blocks), never touched
/// again. Hot loop: LPNs 100..107 overwritten continuously.
void hot_cold_workload(Ssd& ssd, std::uint64_t hot_writes) {
  std::uint64_t id = 0;
  SimTime t = 0;
  auto write = [&](std::uint64_t lpn) {
    sim::IoRequest r;
    r.id = id++;
    r.tenant = 0;
    r.type = sim::OpType::kWrite;
    r.lpn = lpn;
    r.page_count = 1;
    r.arrival = t += 1500 * kMicrosecond;
    ssd.submit(r);
  };
  for (std::uint64_t lpn = 0; lpn < 16; ++lpn) write(lpn);
  for (std::uint64_t i = 0; i < hot_writes; ++i) write(100 + i % 8);
  ssd.run_to_completion();
}

std::uint64_t plane0_wear_gap(const Ssd& ssd) {
  return ssd.ftl().blocks().plane_wear_gap(0);
}

TEST(StaticWearLeveling, DisabledLeavesColdBlocksPinned) {
  Ssd ssd(tiny_with_wl(0));
  ssd.set_tenant_channels(0, {0});
  hot_cold_workload(ssd, 1200);
  // The two cold blocks never erase; hot blocks cycle hundreds of times.
  EXPECT_GT(plane0_wear_gap(ssd), 20u);
}

TEST(StaticWearLeveling, BoundsWearGapUnderHotColdSplit) {
  Ssd ssd(tiny_with_wl(8));
  ssd.set_tenant_channels(0, {0});
  hot_cold_workload(ssd, 1200);
  // Rotation keeps the gap near the threshold (one round can overshoot
  // by the in-flight erase).
  EXPECT_LE(plane0_wear_gap(ssd), 10u);
  // Cold data survived all the moves.
  for (std::uint64_t lpn = 0; lpn < 16; ++lpn) {
    const sim::Ppn p = ssd.ftl().mapping().lookup(0, lpn);
    ASSERT_NE(p, sim::kInvalidPpn);
    EXPECT_TRUE(ssd.ftl().blocks().is_valid(p));
  }
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0), 16u + 8u);
}

TEST(StaticWearLeveling, CandidateApiRespectsThreshold) {
  ftl::FtlConfig config;
  config.wear_gap_threshold = 4;
  ftl::Ftl ftl(sim::Geometry::tiny(), config);
  // Fresh device: gap 0, no Full blocks -> no candidate.
  EXPECT_FALSE(ftl.wear_leveling_candidate(0).has_value());
  // Disabled config never proposes.
  ftl::Ftl off(sim::Geometry::tiny());
  EXPECT_FALSE(off.wear_leveling_candidate(0).has_value());
}

TEST(StaticWearLeveling, MoreErasesButBoundedOverhead) {
  Ssd without(tiny_with_wl(0));
  without.set_tenant_channels(0, {0});
  hot_cold_workload(without, 800);
  Ssd with(tiny_with_wl(8));
  with.set_tenant_channels(0, {0});
  hot_cold_workload(with, 800);
  const auto e0 = without.metrics().counters().erases;
  const auto e1 = with.metrics().counters().erases;
  EXPECT_GT(e1, e0);            // rotation costs erases...
  EXPECT_LT(e1, e0 * 2);        // ...but not unboundedly many
  EXPECT_GT(with.metrics().counters().gc_migrations,
            without.metrics().counters().gc_migrations);
}

}  // namespace
}  // namespace ssdk::ssd
