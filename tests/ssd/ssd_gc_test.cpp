// Garbage collection through the timed pipeline, on a tiny geometry that
// fills quickly.
#include <gtest/gtest.h>

#include "ssd/ssd.hpp"
#include "util/rng.hpp"

namespace ssdk::ssd {
namespace {

SsdOptions tiny_options() {
  SsdOptions options;
  options.geometry = sim::Geometry::tiny();  // 2ch x 1chip x 1plane x 8blk x 8pg
  return options;
}

/// Overwrite a small working set far beyond device capacity. Cyclic
/// overwrites age blocks uniformly (victims fully invalid); random
/// overwrites leave live pages in victims, forcing migrations.
void hammer_overwrites(Ssd& ssd, std::uint64_t writes,
                       std::uint64_t working_set,
                       Duration gap = 300 * kMicrosecond,
                       bool random_order = false) {
  Rng rng(42);
  for (std::uint64_t i = 0; i < writes; ++i) {
    sim::IoRequest r;
    r.id = i;
    r.tenant = 0;
    r.type = sim::OpType::kWrite;
    r.lpn = random_order ? rng.next_below(working_set) : i % working_set;
    r.page_count = 1;
    r.arrival = i * gap;
    ssd.submit(r);
  }
  ssd.run_to_completion();
}

TEST(SsdGc, TriggersAndReclaims) {
  Ssd ssd(tiny_options());
  ssd.set_tenant_channels(0, {0});
  // 16 hot pages overwritten 400 times in a 64-page plane -> GC must run.
  hammer_overwrites(ssd, 400, 16);
  EXPECT_GT(ssd.metrics().counters().erases, 0u);
  EXPECT_EQ(ssd.metrics().counters().host_writes, 400u);
  // Mapping stays consistent: exactly 16 live pages for the tenant.
  EXPECT_EQ(ssd.ftl().mapping().mapped_count(0), 16u);
  EXPECT_EQ(ssd.ftl().blocks().total_valid_pages(), 16u);
}

TEST(SsdGc, MigratesLivePagesWhenVictimsAreMixed) {
  Ssd ssd(tiny_options());
  ssd.set_tenant_channels(0, {0});
  // Random overwrites over 32 pages: victims hold a mix of live and dead
  // pages, so GC must migrate. The gentle arrival rate keeps reclaim
  // ahead of page consumption (allocation happens at arrival).
  hammer_overwrites(ssd, 600, 32, 1500 * kMicrosecond, /*random=*/true);
  EXPECT_GT(ssd.metrics().counters().gc_migrations, 0u);
  const std::uint64_t live = ssd.ftl().mapping().mapped_count(0);
  EXPECT_LE(live, 32u);
  EXPECT_EQ(ssd.ftl().blocks().total_valid_pages(), live);
  // Every live LPN still resolves and reads back from a valid page.
  for (std::uint64_t lpn = 0; lpn < 32; ++lpn) {
    const sim::Ppn p = ssd.ftl().mapping().lookup(0, lpn);
    ASSERT_NE(p, sim::kInvalidPpn);
    EXPECT_TRUE(ssd.ftl().blocks().is_valid(p));
  }
}

TEST(SsdGc, DisabledGcDiesWithDeviceFull) {
  SsdOptions options = tiny_options();
  options.gc_enabled = false;
  Ssd ssd(options);
  ssd.set_tenant_channels(0, {0});
  EXPECT_THROW(hammer_overwrites(ssd, 400, 16), ftl::DeviceFullError);
}

TEST(SsdGc, WearSpreadsOverBlocks) {
  Ssd ssd(tiny_options());
  ssd.set_tenant_channels(0, {0});
  hammer_overwrites(ssd, 1500, 16);
  const auto wear = ssd.ftl().blocks().wear_stats();
  EXPECT_GT(wear.total_erases, 10u);
  // Allocation-time wear leveling keeps the gap narrow. The plane under
  // test erases many times; its blocks must all participate. (The other
  // plane is idle, so compare within plane 0's 8 blocks.)
  std::uint64_t min_e = ~0ULL, max_e = 0;
  for (std::uint32_t b = 0; b < 8; ++b) {
    const auto e = ssd.ftl().blocks().erase_count(0, b);
    min_e = std::min(min_e, e);
    max_e = std::max(max_e, e);
  }
  EXPECT_GT(min_e, 0u);
  EXPECT_LE(max_e - min_e, 3u);
}

TEST(SsdGc, GcTrafficDelaysHostIo) {
  // Same workload with and without overwrite pressure: the GC-heavy run
  // must show higher write latency (migrations + erases steal the chip).
  auto avg_write = [](std::uint64_t working_set) {
    Ssd ssd(tiny_options());
    ssd.set_tenant_channels(0, {0});
    hammer_overwrites(ssd, 500, working_set, 2 * kMillisecond);
    return ssd.metrics().tenant(0).avg_write_us();
  };
  const double no_gc = avg_write(8);      // one block's worth: cheap GC
  const double heavy_gc = avg_write(32);  // victims mostly valid
  EXPECT_GT(heavy_gc, no_gc);
}

}  // namespace
}  // namespace ssdk::ssd
