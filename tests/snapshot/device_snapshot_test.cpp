// Golden determinism tests for device checkpoints and fork().
//
// The protocol (DESIGN.md §12): run a recipe uninterrupted with telemetry
// on; run it again but checkpoint at the midpoint, restore from the bytes,
// and finish on the restored device. The concatenated trace of the
// interrupted run must be event-for-event identical to the uninterrupted
// one (telemetry::first_divergence == kNoDivergence) — including with
// fault injection enabled, which exercises the serialized RNG stream.
// fork() gets the same treatment: two forks of one prefix must replay the
// suffix identically to each other and to a restore-from-bytes.
#include "snapshot/device_snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "../ssd/golden_schedule_recipe.hpp"
#include "core/runner.hpp"
#include "snapshot/archive.hpp"
#include "telemetry/binary_trace.hpp"
#include "telemetry/tracer.hpp"

namespace ssdk {
namespace {

using testing::GoldenRecipe;

std::vector<telemetry::TraceEvent> concat(const telemetry::Tracer& a,
                                          const telemetry::Tracer& b) {
  std::vector<telemetry::TraceEvent> events = a.events();
  const auto tail = b.events();
  events.insert(events.end(), tail.begin(), tail.end());
  return events;
}

/// Recipes plus a fault-injecting variant of the GC-churn scenario: read
/// retries, program/erase failures and retirement all draw from the fault
/// RNG, so a snapshot that mishandled its stream would diverge here.
std::vector<GoldenRecipe> snapshot_recipes() {
  auto recipes = testing::all_golden_recipes();
  GoldenRecipe faulty = testing::golden_gc_churn();
  faulty.name = "gc_churn_faulty";
  faulty.config.ssd.faults.read_ber = 2e-3;
  faulty.config.ssd.faults.program_fail = 1e-3;
  faulty.config.ssd.faults.erase_fail = 2e-3;
  faulty.config.ssd.faults.max_pe_cycles = 48;
  recipes.push_back(std::move(faulty));
  return recipes;
}

class DeviceSnapshotTest : public ::testing::TestWithParam<GoldenRecipe> {
 protected:
  /// Uninterrupted reference replay.
  std::vector<telemetry::TraceEvent> reference_events() {
    telemetry::Tracer tracer;
    const core::RunResult run = testing::replay_golden(GetParam(), tracer);
    EXPECT_EQ(tracer.dropped(), 0u);
    reference_run_ = run;
    return tracer.events();
  }

  /// A device run up to (not including) arrival `cut`, tracing into
  /// `tracer`.
  std::unique_ptr<ssd::Ssd> prefix_device(std::uint64_t cut,
                                          telemetry::Tracer& tracer) {
    const GoldenRecipe& recipe = GetParam();
    const auto features = core::features_of(recipe.requests);
    profiles_ = features.profiles(recipe.tenants);
    core::RunConfig config = recipe.config;
    config.tracer = &tracer;
    auto device = core::make_run_device(recipe.requests, core::Strategy{},
                                        profiles_, config);
    device->run_until_arrival(cut);
    return device;
  }

  core::RunResult reference_run_;
  std::vector<core::TenantProfile> profiles_;
};

TEST_P(DeviceSnapshotTest, RestoreReplaysBitIdentically) {
  const GoldenRecipe& recipe = GetParam();
  const auto reference = reference_events();
  const std::uint64_t cut = recipe.requests.size() / 2;

  telemetry::Tracer before;
  auto device = prefix_device(cut, before);
  const std::vector<char> bytes = snapshot::save_device(*device);
  device.reset();  // the original is gone; only the bytes remain

  auto restored = snapshot::load_device(bytes);
  telemetry::Tracer after;
  restored->set_tracer(&after);
  restored->run_to_completion();

  const auto events = concat(before, after);
  const std::size_t divergence =
      telemetry::first_divergence(events, reference);
  EXPECT_EQ(divergence, telemetry::kNoDivergence)
      << recipe.name << ": interrupted replay diverges at event "
      << divergence << " (" << events.size() << " vs " << reference.size()
      << " events)";

  // The restored run's metrics must also match end-state for end-state.
  const core::RunResult resumed = core::summarize(*restored);
  EXPECT_EQ(resumed.counters.page_ops, reference_run_.counters.page_ops);
  EXPECT_EQ(resumed.avg_read_us, reference_run_.avg_read_us);
  EXPECT_EQ(resumed.avg_write_us, reference_run_.avg_write_us);
  EXPECT_EQ(resumed.p99_read_us, reference_run_.p99_read_us);
}

TEST_P(DeviceSnapshotTest, ForkMatchesRestoreAndSibling) {
  const GoldenRecipe& recipe = GetParam();
  const std::uint64_t cut = recipe.requests.size() / 2;

  telemetry::Tracer before;
  auto device = prefix_device(cut, before);
  const std::vector<char> bytes = snapshot::save_device(*device);

  auto fork_a = device->fork();
  auto fork_b = device->fork();
  auto restored = snapshot::load_device(bytes);

  telemetry::Tracer trace_a, trace_b, trace_r;
  fork_a->set_tracer(&trace_a);
  fork_b->set_tracer(&trace_b);
  restored->set_tracer(&trace_r);
  fork_a->run_to_completion();
  fork_b->run_to_completion();
  restored->run_to_completion();

  EXPECT_EQ(telemetry::first_divergence(trace_a.events(), trace_b.events()),
            telemetry::kNoDivergence)
      << recipe.name << ": sibling forks diverged";
  EXPECT_EQ(telemetry::first_divergence(trace_a.events(), trace_r.events()),
            telemetry::kNoDivergence)
      << recipe.name << ": fork and restored-from-bytes diverged";

  // The parent is untouched by its forks and can still finish the run.
  device->run_to_completion();
  EXPECT_EQ(core::summarize(*device).counters.page_ops,
            core::summarize(*fork_a).counters.page_ops);
}

TEST_P(DeviceSnapshotTest, SaveLoadSaveIsByteIdentical) {
  const std::uint64_t cut = GetParam().requests.size() / 2;
  telemetry::Tracer tracer;
  auto device = prefix_device(cut, tracer);
  const std::vector<char> first = snapshot::save_device(*device);
  const std::vector<char> second =
      snapshot::save_device(*snapshot::load_device(first));
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    AllRecipes, DeviceSnapshotTest, ::testing::ValuesIn(snapshot_recipes()),
    [](const ::testing::TestParamInfo<GoldenRecipe>& param) {
      return param.param.name;
    });

// Regression: the OPTS section used to drop the power model entirely, so
// a crash campaign resumed from a checkpoint silently lost its scheduled
// power cut (found by tools/lint/snapshot_coverage_lint.py).
TEST(DeviceSnapshot, PowerModelSurvivesRoundTrip) {
  auto recipe = testing::golden_mix1_default();
  recipe.config.ssd.power.enabled = true;
  // One scheduled cut only — the model rejects arming both kinds. The cut
  // sits past the checkpoint point, so it is still pending in the bytes.
  recipe.config.ssd.power.cut_at_arrival = recipe.requests.size() - 1;
  recipe.config.ssd.power.auto_recover = true;

  const auto features = core::features_of(recipe.requests);
  const auto profiles = features.profiles(recipe.tenants);
  auto device = core::make_run_device(recipe.requests, core::Strategy{},
                                      profiles, recipe.config);
  device->run_until_arrival(recipe.requests.size() / 2);

  auto restored = snapshot::load_device(snapshot::save_device(*device));
  const auto& power = restored->options().power;
  EXPECT_TRUE(power.enabled);
  EXPECT_EQ(power.cut_at_time, 0u);
  EXPECT_EQ(power.cut_at_arrival, recipe.requests.size() - 1);
  EXPECT_TRUE(power.auto_recover);
}

TEST(DeviceSnapshotFile, RoundTripAndCorruptionDetection) {
  const auto recipe = testing::golden_mix1_default();
  const auto features = core::features_of(recipe.requests);
  const auto profiles = features.profiles(recipe.tenants);
  auto device = core::make_run_device(recipe.requests, core::Strategy{},
                                      profiles, recipe.config);
  device->run_until_arrival(recipe.requests.size() / 2);

  const std::string path =
      ::testing::TempDir() + "/device_snapshot_test.ssdksnp";
  snapshot::save_device_file(path, *device);
  auto restored = snapshot::load_device_file(path);
  EXPECT_EQ(snapshot::save_device(*restored), snapshot::save_device(*device));

  // Truncate the file: loading must fail with a descriptive error.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_THROW(snapshot::load_device_file(path), snapshot::SnapshotError);
}

}  // namespace
}  // namespace ssdk
