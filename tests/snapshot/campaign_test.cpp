// Resumable-campaign tests: a checkpointed/resumed dataset generation must
// produce exactly the dataset a straight-through run produces, and a
// checkpoint recorded under different generation parameters must be
// refused via its config fingerprint.
#include "snapshot/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/label_gen.hpp"

namespace ssdk::snapshot {
namespace {

/// Tiny campaign: 2-channel device, short streams, a 2-tenant strategy
/// space — small enough that the full sweep stays in unit-test budget.
core::DatasetGenConfig tiny_config() {
  core::DatasetGenConfig config;
  config.tenants = 2;
  config.workloads = 6;
  config.workload_duration_s = 0.05;
  config.requests_per_workload = 400;
  config.min_rate_rps = 2'000.0;
  config.max_rate_rps = 8'000.0;
  config.address_space_pages = 2048;
  config.seed = 77;
  config.label.run.ssd.geometry.blocks_per_plane = 64;
  config.label.features.max_tenants = 2;
  return config;
}

void expect_same_samples(std::span<const core::LabeledSample> a,
                         std::span<const core::LabeledSample> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << "workload " << i;
    EXPECT_EQ(a[i].strategy_total_us, b[i].strategy_total_us)
        << "workload " << i;
    // Regression: strategy_score was once dropped by save_sample, so
    // resumed campaigns lost the objective values behind their labels.
    EXPECT_EQ(a[i].strategy_score, b[i].strategy_score) << "workload " << i;
    EXPECT_EQ(a[i].features.intensity_level, b[i].features.intensity_level);
  }
}

TEST(Campaign, CheckpointFileRoundTrips) {
  const auto space = core::StrategySpace::for_tenants(2);
  const auto config = tiny_config();
  ThreadPool pool(2);
  const auto dataset = core::generate_dataset(space, config, pool);

  const std::string path = ::testing::TempDir() + "/campaign_roundtrip.snp";
  save_campaign_file(path, config, dataset.samples);
  const auto loaded = load_campaign_file(path, config);
  expect_same_samples(loaded, dataset.samples);
  std::filesystem::remove(path);
}

TEST(Campaign, ResumeProducesIdenticalDataset) {
  const auto space = core::StrategySpace::for_tenants(2);
  const auto config = tiny_config();
  ThreadPool pool(2);
  const auto straight = core::generate_dataset(space, config, pool);

  // Simulate a crash after 2 of 6 workloads: checkpoint the partial
  // progress, then resume the campaign from the file.
  const std::string path = ::testing::TempDir() + "/campaign_resume.snp";
  save_campaign_file(
      path, config,
      std::span<const core::LabeledSample>(straight.samples.data(), 2));

  CampaignOptions options;
  options.checkpoint_path = path;
  options.resume = true;
  options.checkpoint_every = 2;
  std::vector<std::uint64_t> progress;
  options.on_progress = [&](std::uint64_t done, std::uint64_t) {
    progress.push_back(done);
  };
  const auto resumed =
      generate_dataset_resumable(space, config, pool, options);

  expect_same_samples(resumed.samples, straight.samples);
  ASSERT_EQ(resumed.data.labels().size(), straight.data.labels().size());
  // Batches of 2 starting from the 2 checkpointed workloads.
  EXPECT_EQ(progress, (std::vector<std::uint64_t>{4, 6}));
  std::filesystem::remove(path);
}

TEST(Campaign, FingerprintMismatchIsRefused) {
  const auto space = core::StrategySpace::for_tenants(2);
  const auto config = tiny_config();
  ThreadPool pool(2);
  const auto dataset = core::generate_dataset(space, config, pool);

  const std::string path = ::testing::TempDir() + "/campaign_mismatch.snp";
  save_campaign_file(path, config, dataset.samples);

  core::DatasetGenConfig other = config;
  other.seed = config.seed + 1;
  try {
    load_campaign_file(path, other);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Campaign, FingerprintCoversDeviceAndSweepParameters) {
  const auto config = tiny_config();
  const std::uint64_t base = campaign_fingerprint(config);

  auto device_changed = config;
  device_changed.label.run.ssd.geometry.channels = 4;
  EXPECT_NE(campaign_fingerprint(device_changed), base);

  auto sweep_changed = config;
  sweep_changed.label.fork_point = 0.5;
  EXPECT_NE(campaign_fingerprint(sweep_changed), base);

  // shared_prefix_fork is part of the fingerprint too: it must not change
  // results, but refusing the resume is the conservative contract.
  auto mode_changed = config;
  mode_changed.label.shared_prefix_fork = true;
  EXPECT_NE(campaign_fingerprint(mode_changed), base);

  EXPECT_EQ(campaign_fingerprint(tiny_config()), base);
}

}  // namespace
}  // namespace ssdk::snapshot
