// Archive-layer tests: scalar/vector round-trips, the SSDKSNP1 container,
// and — most importantly — the corruption paths. A damaged snapshot must
// always surface as SnapshotError with the failing offset and an
// expected/found description, never as UB or garbage state.
#include "snapshot/archive.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace ssdk::snapshot {
namespace {

TEST(Archive, ScalarRoundTrip) {
  StateWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.tag("TEST");

  StateReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_NO_THROW(r.tag("TEST"));
  EXPECT_TRUE(r.exhausted());
}

TEST(Archive, VectorRoundTrip) {
  StateWriter w;
  const std::vector<std::uint64_t> a{1, 2, ~std::uint64_t{0}};
  const std::vector<std::uint32_t> b{};
  const std::vector<double> c{-1.5, 0.0, 1e300};
  w.vec_u64(a);
  w.vec_u32(b);
  w.vec_f64(c);

  StateReader r(w.buffer());
  EXPECT_EQ(r.vec_u64(), a);
  EXPECT_EQ(r.vec_u32(), b);
  EXPECT_EQ(r.vec_f64(), c);
  EXPECT_TRUE(r.exhausted());
}

TEST(Archive, TruncatedReadThrowsWithOffset) {
  StateWriter w;
  w.u32(7);
  StateReader r(w.buffer());
  r.u32();
  try {
    r.u64();
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("offset 4"), std::string::npos);
  }
}

TEST(Archive, TagMismatchNamesBothTags) {
  StateWriter w;
  w.tag("AAAA");
  StateReader r(w.buffer());
  try {
    r.tag("BBBB");
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'BBBB'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'AAAA'"), std::string::npos) << msg;
    EXPECT_EQ(e.offset(), 0u);
  }
}

TEST(Archive, InvalidBoolThrows) {
  StateWriter w;
  w.u8(2);
  StateReader r(w.buffer());
  EXPECT_THROW(r.boolean(), SnapshotError);
}

TEST(Archive, ImplausibleCountRejectedBeforeAllocation) {
  StateWriter w;
  w.u64(~std::uint64_t{0});  // length prefix claiming 2^64-1 elements
  StateReader r(w.buffer());
  try {
    r.vec_u64();
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos);
  }
}

std::string container_bytes(PayloadKind kind,
                            const std::vector<char>& payload) {
  std::ostringstream os;
  write_container(os, kind, payload);
  return os.str();
}

TEST(Container, RoundTrip) {
  const std::vector<char> payload{'h', 'e', 'l', 'l', 'o'};
  const std::string file = container_bytes(PayloadKind::kDevice, payload);
  std::istringstream is(file);
  EXPECT_EQ(read_container(is, PayloadKind::kDevice), payload);
}

TEST(Container, EmptyPayloadRoundTrips) {
  const std::string file = container_bytes(PayloadKind::kCampaign, {});
  std::istringstream is(file);
  EXPECT_TRUE(read_container(is, PayloadKind::kCampaign).empty());
}

TEST(Container, BadMagicThrowsAtOffsetZero) {
  std::string file = container_bytes(PayloadKind::kDevice, {'x'});
  file[0] = 'Z';
  std::istringstream is(file);
  try {
    read_container(is, PayloadKind::kDevice);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.offset(), 0u);
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(Container, UnsupportedVersionThrows) {
  std::string file = container_bytes(PayloadKind::kDevice, {'x'});
  file[8] = 99;  // version field follows the 8-byte magic
  std::istringstream is(file);
  try {
    read_container(is, PayloadKind::kDevice);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version"), std::string::npos) << msg;
    EXPECT_NE(msg.find("99"), std::string::npos) << msg;
  }
}

TEST(Container, WrongPayloadKindThrows) {
  const std::string file = container_bytes(PayloadKind::kCampaign, {'x'});
  std::istringstream is(file);
  EXPECT_THROW(read_container(is, PayloadKind::kDevice), SnapshotError);
}

TEST(Container, TruncatedPayloadThrows) {
  const std::string file = container_bytes(PayloadKind::kDevice,
                                           {'a', 'b', 'c', 'd'});
  const std::string cut = file.substr(0, file.size() - 2);
  std::istringstream is(cut);
  try {
    read_container(is, PayloadKind::kDevice);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  }
}

TEST(Container, FlippedPayloadByteFailsChecksum) {
  std::string file = container_bytes(PayloadKind::kDevice,
                                     {'a', 'b', 'c', 'd'});
  file[file.size() - 1] ^= 0x40;
  std::istringstream is(file);
  try {
    read_container(is, PayloadKind::kDevice);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(Container, FileVariantReportsUnopenablePath) {
  EXPECT_THROW(
      read_container_file("/nonexistent/dir/snap.bin", PayloadKind::kDevice),
      SnapshotError);
}

}  // namespace
}  // namespace ssdk::snapshot
