#include "ftl/mapping.hpp"

#include <gtest/gtest.h>

namespace ssdk::ftl {
namespace {

TEST(Mapping, UnmappedReturnsInvalid) {
  MappingTable m;
  EXPECT_EQ(m.lookup(0, 0), sim::kInvalidPpn);
  EXPECT_EQ(m.lookup(5, 1000), sim::kInvalidPpn);
}

TEST(Mapping, UpdateAndLookup) {
  MappingTable m;
  EXPECT_EQ(m.update(0, 10, 42), sim::kInvalidPpn);
  EXPECT_EQ(m.lookup(0, 10), 42u);
  EXPECT_EQ(m.update(0, 10, 43), 42u);  // returns old
  EXPECT_EQ(m.lookup(0, 10), 43u);
}

TEST(Mapping, TenantsAreIsolated) {
  MappingTable m;
  m.update(0, 7, 100);
  m.update(1, 7, 200);
  EXPECT_EQ(m.lookup(0, 7), 100u);
  EXPECT_EQ(m.lookup(1, 7), 200u);
}

TEST(Mapping, MappedCountTracksTransitions) {
  MappingTable m;
  EXPECT_EQ(m.mapped_count(0), 0u);
  m.update(0, 1, 10);
  m.update(0, 2, 20);
  EXPECT_EQ(m.mapped_count(0), 2u);
  m.update(0, 1, 11);  // overwrite: count unchanged
  EXPECT_EQ(m.mapped_count(0), 2u);
  m.erase(0, 1);
  EXPECT_EQ(m.mapped_count(0), 1u);
  EXPECT_EQ(m.lookup(0, 1), sim::kInvalidPpn);
}

TEST(Mapping, SparseLpnGrowth) {
  MappingTable m;
  m.update(0, 1'000'000, 5);
  EXPECT_EQ(m.lookup(0, 1'000'000), 5u);
  EXPECT_EQ(m.lookup(0, 999'999), sim::kInvalidPpn);
}

TEST(Mapping, HugeTenantIdRejected) {
  MappingTable m;
  EXPECT_THROW(m.update(100'000, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ssdk::ftl
