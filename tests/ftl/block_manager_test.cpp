#include "ftl/block_manager.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ssdk::ftl {
namespace {

sim::Geometry tiny() { return sim::Geometry::tiny(); }  // 8 blocks x 8 pages

TEST(BlockManager, AllocatesSequentialPagesWithinBlock) {
  BlockManager bm(tiny());
  const auto p0 = bm.allocate_page(0);
  const auto p1 = bm.allocate_page(0);
  ASSERT_TRUE(p0 && p1);
  EXPECT_EQ(*p1, *p0 + 1);
}

TEST(BlockManager, DistinctPagesAcrossPlane) {
  BlockManager bm(tiny());
  std::set<sim::Ppn> seen;
  for (int i = 0; i < 64; ++i) {  // whole plane: 8 blocks x 8 pages
    const auto p = bm.allocate_page(0);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(seen.insert(*p).second);
  }
  EXPECT_FALSE(bm.allocate_page(0).has_value());  // plane exhausted
}

TEST(BlockManager, FreeCountsDecrease) {
  BlockManager bm(tiny());
  EXPECT_EQ(bm.free_blocks(0), 8u);
  EXPECT_EQ(bm.free_pages(0), 64u);
  bm.allocate_page(0);
  EXPECT_EQ(bm.free_blocks(0), 7u);  // one block opened
  EXPECT_EQ(bm.free_pages(0), 63u);
}

TEST(BlockManager, ValidityLifecycle) {
  BlockManager bm(tiny());
  const auto p = bm.allocate_page(0);
  EXPECT_FALSE(bm.is_valid(*p));
  bm.mark_valid(*p, 3, 77);
  EXPECT_TRUE(bm.is_valid(*p));
  const PageOwner o = bm.owner(*p);
  EXPECT_EQ(o.tenant, 3u);
  EXPECT_EQ(o.lpn, 77u);
  bm.invalidate(*p);
  EXPECT_FALSE(bm.is_valid(*p));
  EXPECT_THROW(bm.owner(*p), std::logic_error);
}

TEST(BlockManager, InvalidateIsIdempotent) {
  BlockManager bm(tiny());
  const auto p = bm.allocate_page(0);
  bm.mark_valid(*p, 0, 0);
  bm.invalidate(*p);
  bm.invalidate(*p);  // no-op
  EXPECT_EQ(bm.total_valid_pages(), 0u);
}

TEST(BlockManager, VictimIsLeastValidFullBlock) {
  BlockManager bm(tiny());
  // Fill two blocks; keep block 0 fully valid, block 1 half valid.
  std::vector<sim::Ppn> pages;
  for (int i = 0; i < 16; ++i) {
    const auto p = bm.allocate_page(0);
    bm.mark_valid(*p, 0, static_cast<std::uint64_t>(i));
    pages.push_back(*p);
  }
  for (int i = 8; i < 12; ++i) bm.invalidate(pages[static_cast<std::size_t>(i)]);
  const auto victim = bm.select_victim(0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);
  EXPECT_EQ(bm.valid_count(0, *victim), 4u);
  EXPECT_EQ(bm.valid_pages(0, *victim).size(), 4u);
}

TEST(BlockManager, NoVictimWhenAllFullyValid) {
  BlockManager bm(tiny());
  for (int i = 0; i < 8; ++i) {
    const auto p = bm.allocate_page(0);
    bm.mark_valid(*p, 0, static_cast<std::uint64_t>(i));
  }
  // One Full block, fully valid -> no useful victim.
  EXPECT_FALSE(bm.select_victim(0).has_value());
}

TEST(BlockManager, EraseResetsBlockAndBumpsWear) {
  BlockManager bm(tiny());
  std::vector<sim::Ppn> pages;
  for (int i = 0; i < 8; ++i) {
    const auto p = bm.allocate_page(0);
    bm.mark_valid(*p, 0, static_cast<std::uint64_t>(i));
    pages.push_back(*p);
  }
  for (const auto p : pages) bm.invalidate(p);
  ASSERT_EQ(bm.block_state(0, 0), BlockState::kFull);
  bm.erase_block(0, 0);
  EXPECT_EQ(bm.block_state(0, 0), BlockState::kFree);
  EXPECT_EQ(bm.erase_count(0, 0), 1u);
  EXPECT_EQ(bm.free_blocks(0), 8u);
}

TEST(BlockManager, EraseWithValidPagesThrows) {
  BlockManager bm(tiny());
  for (int i = 0; i < 8; ++i) {
    const auto p = bm.allocate_page(0);
    bm.mark_valid(*p, 0, static_cast<std::uint64_t>(i));
  }
  EXPECT_THROW(bm.erase_block(0, 0), std::logic_error);
}

TEST(BlockManager, WearLevelingPrefersLeastErased) {
  BlockManager bm(tiny());
  // Cycle block 0 through allocate -> erase several times.
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::vector<sim::Ppn> pages;
    for (int i = 0; i < 8; ++i) {
      const auto p = bm.allocate_page(0);
      bm.mark_valid(*p, 0, static_cast<std::uint64_t>(i));
      pages.push_back(*p);
    }
    const auto block =
        static_cast<std::uint32_t>(pages[0] / tiny().pages_per_block);
    for (const auto p : pages) bm.invalidate(p);
    bm.erase_block(0, block % tiny().blocks_per_plane);
  }
  const WearStats w = bm.wear_stats();
  // 3 erases spread by wear leveling: no block erased more than ... with
  // 8 blocks and least-worn-first policy each cycle uses a fresh block.
  EXPECT_EQ(w.total_erases, 3u);
  EXPECT_LE(w.max_erases, 1u);
}

TEST(BlockManager, PlanesAreIndependent) {
  const sim::Geometry g = tiny();  // 2 planes total (2 channels x 1 x 1)
  BlockManager bm(g);
  const auto a = bm.allocate_page(0);
  const auto b = bm.allocate_page(1);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a / g.pages_per_plane(), *b / g.pages_per_plane());
  EXPECT_EQ(bm.free_blocks(0), 7u);
  EXPECT_EQ(bm.free_blocks(1), 7u);
}

TEST(BlockManager, TotalValidConservation) {
  BlockManager bm(tiny());
  std::vector<sim::Ppn> pages;
  for (int i = 0; i < 20; ++i) {
    const auto p = bm.allocate_page(0);
    bm.mark_valid(*p, 0, static_cast<std::uint64_t>(i));
    pages.push_back(*p);
  }
  EXPECT_EQ(bm.total_valid_pages(), 20u);
  bm.invalidate(pages[3]);
  bm.invalidate(pages[4]);
  EXPECT_EQ(bm.total_valid_pages(), 18u);
}

}  // namespace
}  // namespace ssdk::ftl
