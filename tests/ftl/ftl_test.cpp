#include "ftl/ftl.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ssdk::ftl {
namespace {

auto idle_load() {
  return make_load_view([](std::uint32_t) -> Duration { return 0; },
                        [](std::uint32_t) -> Duration { return 0; });
}

TEST(Ftl, DefaultTenantSeesAllChannels) {
  Ftl ftl(sim::Geometry::small());
  EXPECT_EQ(ftl.tenant_channels(0).size(), 8u);
  EXPECT_EQ(ftl.tenant_alloc_mode(0), AllocMode::kStatic);
}

TEST(Ftl, SetTenantChannelsValidates) {
  Ftl ftl(sim::Geometry::small());
  EXPECT_THROW(ftl.set_tenant_channels(0, {}), std::invalid_argument);
  EXPECT_THROW(ftl.set_tenant_channels(0, {99}), std::invalid_argument);
  ftl.set_tenant_channels(0, {3, 1, 3});
  const auto& chs = ftl.tenant_channels(0);
  ASSERT_EQ(chs.size(), 2u);  // deduplicated + sorted
  EXPECT_EQ(chs[0], 1u);
  EXPECT_EQ(chs[1], 3u);
}

TEST(Ftl, WriteInstallsMappingAndInvalidatesOld) {
  Ftl ftl(sim::Geometry::small());
  const auto load = idle_load();
  const sim::Ppn p1 = ftl.allocate_write(0, 42, load);
  EXPECT_EQ(ftl.mapping().lookup(0, 42), p1);
  EXPECT_TRUE(ftl.blocks().is_valid(p1));

  const sim::Ppn p2 = ftl.allocate_write(0, 42, load);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(ftl.mapping().lookup(0, 42), p2);
  EXPECT_FALSE(ftl.blocks().is_valid(p1));
  EXPECT_TRUE(ftl.blocks().is_valid(p2));
}

TEST(Ftl, WritesRespectChannelRestriction) {
  const sim::Geometry g = sim::Geometry::small();
  Ftl ftl(g);
  ftl.set_tenant_channels(0, {2, 5});
  const auto load = idle_load();
  for (std::uint64_t lpn = 0; lpn < 200; ++lpn) {
    const sim::PhysAddr a = g.decode(ftl.allocate_write(0, lpn, load));
    EXPECT_TRUE(a.channel == 2 || a.channel == 5);
  }
}

TEST(Ftl, StaticWritesStripeAcrossChannels) {
  const sim::Geometry g = sim::Geometry::small();
  Ftl ftl(g);
  const auto load = idle_load();
  std::set<std::uint32_t> channels;
  for (std::uint64_t lpn = 0; lpn < 8; ++lpn) {
    channels.insert(g.decode(ftl.allocate_write(0, lpn, load)).channel);
  }
  EXPECT_EQ(channels.size(), 8u);
}

TEST(Ftl, ReadPrepopulatesUnmappedLpn) {
  const sim::Geometry g = sim::Geometry::small();
  Ftl ftl(g);
  const sim::Ppn p = ftl.translate_read(1, 7);
  EXPECT_NE(p, sim::kInvalidPpn);
  EXPECT_EQ(ftl.mapping().lookup(1, 7), p);
  EXPECT_TRUE(ftl.blocks().is_valid(p));
  // Second read of the same LPN returns the same location.
  EXPECT_EQ(ftl.translate_read(1, 7), p);
}

TEST(Ftl, ReadAfterWriteFindsWrittenLocation) {
  Ftl ftl(sim::Geometry::small());
  const sim::Ppn p = ftl.allocate_write(0, 5, idle_load());
  EXPECT_EQ(ftl.translate_read(0, 5), p);
}

TEST(Ftl, DynamicModeFollowsLoad) {
  const sim::Geometry g = sim::Geometry::small();
  Ftl ftl(g);
  ftl.set_tenant_alloc_mode(0, AllocMode::kDynamic);
  const auto load = make_load_view(
      [](std::uint32_t ch) -> Duration { return ch == 6 ? 0 : 10'000; },
      [](std::uint32_t) -> Duration { return 0; });
  for (std::uint64_t lpn = 0; lpn < 16; ++lpn) {
    EXPECT_EQ(g.decode(ftl.allocate_write(0, lpn, load)).channel, 6u);
  }
}

TEST(Ftl, GcThresholds) {
  sim::Geometry g = sim::Geometry::tiny();
  FtlConfig cfg;
  cfg.gc_trigger_free_blocks = 2;
  cfg.gc_target_free_blocks = 3;
  Ftl ftl(g, cfg);
  EXPECT_FALSE(ftl.needs_gc(0));  // 8 free blocks
  EXPECT_TRUE(ftl.gc_satisfied(0));
  // Consume blocks until trigger.
  const auto load = idle_load();
  ftl.set_tenant_channels(0, {0});
  std::uint64_t lpn = 0;
  while (!ftl.needs_gc(0)) {
    ftl.allocate_write(0, lpn++, load);
  }
  EXPECT_LE(ftl.blocks().free_blocks(0), 2u);
  EXPECT_FALSE(ftl.gc_satisfied(0));
}

TEST(Ftl, MigrationMovesLiveData) {
  Ftl ftl(sim::Geometry::tiny());
  const sim::Ppn src = ftl.allocate_write(0, 9, idle_load());
  const sim::Ppn dst = ftl.allocate_migration(0);
  ASSERT_NE(dst, sim::kInvalidPpn);
  EXPECT_TRUE(ftl.complete_migration(src, dst));
  EXPECT_EQ(ftl.mapping().lookup(0, 9), dst);
  EXPECT_FALSE(ftl.blocks().is_valid(src));
  EXPECT_TRUE(ftl.blocks().is_valid(dst));
}

TEST(Ftl, MigrationOfOverwrittenPageIsDiscarded) {
  Ftl ftl(sim::Geometry::tiny());
  const auto load = idle_load();
  const sim::Ppn src = ftl.allocate_write(0, 9, load);
  const sim::Ppn dst = ftl.allocate_migration(0);
  // Tenant overwrites LPN 9 while the migration is "in flight".
  const sim::Ppn fresh = ftl.allocate_write(0, 9, load);
  EXPECT_FALSE(ftl.complete_migration(src, dst));
  EXPECT_EQ(ftl.mapping().lookup(0, 9), fresh);
  EXPECT_FALSE(ftl.blocks().is_valid(dst));
}

TEST(Ftl, BadGcConfigRejected) {
  FtlConfig cfg;
  cfg.gc_trigger_free_blocks = 5;
  cfg.gc_target_free_blocks = 2;
  EXPECT_THROW(Ftl(sim::Geometry::tiny(), cfg), std::invalid_argument);
}

TEST(Ftl, DeviceFullThrows) {
  sim::Geometry g = sim::Geometry::tiny();
  Ftl ftl(g);
  const auto load = idle_load();
  // Unique LPNs, never overwritten, no GC driver -> eventually full.
  EXPECT_THROW(
      {
        for (std::uint64_t lpn = 0;; ++lpn) ftl.allocate_write(0, lpn, load);
      },
      DeviceFullError);
}

}  // namespace
}  // namespace ssdk::ftl
