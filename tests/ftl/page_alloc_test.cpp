#include "ftl/page_alloc.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ssdk::ftl {
namespace {

const sim::Geometry g = sim::Geometry::small();

TEST(StaticPlace, StripesChannelsFirst) {
  const std::vector<std::uint32_t> channels{0, 1, 2, 3};
  // Consecutive LPNs land on consecutive channels.
  for (std::uint64_t lpn = 0; lpn < 4; ++lpn) {
    const PlaneTarget t = static_place(g, channels, lpn);
    EXPECT_EQ(t.channel, channels[lpn]);
    EXPECT_EQ(t.chip, 0u);
    EXPECT_EQ(t.plane, 0u);
  }
  // After one channel round, the chip advances.
  EXPECT_EQ(static_place(g, channels, 4).chip, 1u);
  // After channels x chips, the plane advances.
  EXPECT_EQ(static_place(g, channels, 8).plane, 1u);
}

TEST(StaticPlace, RespectsRestrictedChannelSet) {
  const std::vector<std::uint32_t> channels{5, 7};
  for (std::uint64_t lpn = 0; lpn < 100; ++lpn) {
    const PlaneTarget t = static_place(g, channels, lpn);
    EXPECT_TRUE(t.channel == 5 || t.channel == 7);
  }
}

TEST(StaticPlace, DeterministicInLpn) {
  const std::vector<std::uint32_t> channels{0, 2, 4};
  const PlaneTarget a = static_place(g, channels, 12345);
  const PlaneTarget b = static_place(g, channels, 12345);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.chip, b.chip);
  EXPECT_EQ(a.plane, b.plane);
}

TEST(StaticPlace, PlaneIdMatchesGeometry) {
  const std::vector<std::uint32_t> channels{0, 1, 2, 3, 4, 5, 6, 7};
  const PlaneTarget t = static_place(g, channels, 999);
  const sim::PhysAddr a{t.channel, t.chip, t.plane, 0, 0};
  EXPECT_EQ(t.plane_id(g), g.plane_id(a));
}

TEST(DynamicPlace, PicksLeastBackloggedChannel) {
  const std::vector<std::uint32_t> channels{0, 1, 2};
  const auto load = make_load_view(
      [](std::uint32_t ch) -> Duration { return ch == 1 ? 0 : 1000; },
      [](std::uint32_t) -> Duration { return 0; });
  std::uint64_t rr = 0;
  const PlaneTarget t = dynamic_place(g, channels, load, rr);
  EXPECT_EQ(t.channel, 1u);
}

TEST(DynamicPlace, PicksLeastBackloggedChipOnChannel) {
  const std::vector<std::uint32_t> channels{3};
  const auto load = make_load_view(
      [](std::uint32_t) -> Duration { return 0; },
      [](std::uint32_t chip) -> Duration {
        // Global chips 6 and 7 live on channel 3; make chip 7 idle.
        return chip == 7 ? 0 : 500;
      });
  std::uint64_t rr = 0;
  const PlaneTarget t = dynamic_place(g, channels, load, rr);
  EXPECT_EQ(t.channel, 3u);
  EXPECT_EQ(t.chip, 1u);  // chip 7 = channel 3, chip-in-channel 1
}

TEST(DynamicPlace, RotatesPlanes) {
  const std::vector<std::uint32_t> channels{0};
  const auto load = make_load_view(
      [](std::uint32_t) -> Duration { return 0; },
      [](std::uint32_t) -> Duration { return 0; });
  std::uint64_t rr = 0;
  std::set<std::uint32_t> planes;
  for (int i = 0; i < 4; ++i) {
    planes.insert(dynamic_place(g, channels, load, rr).plane);
  }
  EXPECT_EQ(planes.size(), g.planes_per_chip);
}

TEST(DynamicPlace, TieBreaksTowardLowerChannel) {
  const std::vector<std::uint32_t> channels{2, 4, 6};
  const auto load = make_load_view(
      [](std::uint32_t) -> Duration { return 7; },
      [](std::uint32_t) -> Duration { return 7; });
  std::uint64_t rr = 0;
  EXPECT_EQ(dynamic_place(g, channels, load, rr).channel, 2u);
}

}  // namespace
}  // namespace ssdk::ftl
