// Bad-block retirement invariants: a retired block leaves every rotation
// structure (free list, append point, victim selection) and allocation can
// never hand out one of its pages again.
#include <gtest/gtest.h>

#include <set>

#include "ftl/block_manager.hpp"
#include "ftl/ftl.hpp"
#include "sim/geometry.hpp"
#include "util/rng.hpp"

namespace ssdk::ftl {
namespace {

sim::Geometry tiny() { return sim::Geometry::tiny(); }  // 8 blk x 8 pg / plane

std::uint32_t block_of(const sim::Geometry& geom, sim::Ppn ppn) {
  return static_cast<std::uint32_t>(ppn / geom.pages_per_block %
                                    geom.blocks_per_plane);
}

TEST(BlockRetirement, RetiredFreeBlockLeavesFreeList) {
  BlockManager bm(tiny());
  ASSERT_EQ(bm.free_blocks(0), 8u);
  bm.retire_block(0, 3);
  EXPECT_EQ(bm.free_blocks(0), 7u);
  EXPECT_EQ(bm.block_state(0, 3), BlockState::kRetired);
  EXPECT_EQ(bm.retired_blocks(), 1u);
}

TEST(BlockRetirement, AllocateNeverReturnsRetiredPages) {
  // Property: retire a scattering of blocks, then drain the plane; every
  // page handed out must avoid the retired set, and exhaustion happens at
  // exactly (blocks - retired) * pages_per_block.
  BlockManager bm(tiny());
  const std::set<std::uint32_t> retired{1, 4, 6};
  for (const auto b : retired) bm.retire_block(0, b);
  const auto& geom = bm.geometry();
  std::uint64_t handed_out = 0;
  while (auto ppn = bm.allocate_page(0)) {
    EXPECT_FALSE(retired.contains(block_of(geom, *ppn)));
    ++handed_out;
  }
  EXPECT_EQ(handed_out,
            (geom.blocks_per_plane - retired.size()) * geom.pages_per_block);
}

TEST(BlockRetirement, RetiredOpenBlockStopsBeingAppendPoint) {
  BlockManager bm(tiny());
  const auto first = bm.allocate_page(0);
  ASSERT_TRUE(first.has_value());
  const std::uint32_t open = block_of(bm.geometry(), *first);
  ASSERT_EQ(bm.block_state(0, open), BlockState::kOpen);
  bm.retire_block(0, open);
  // The next allocation opens a different block.
  const auto next = bm.allocate_page(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_NE(block_of(bm.geometry(), *next), open);
}

TEST(BlockRetirement, RetiredFullBlockIsNeverAVictimAndCannotBeErased) {
  BlockManager bm(tiny());
  const auto& geom = bm.geometry();
  // Fill one block completely, leaving some pages invalid so it would be
  // an attractive GC victim.
  std::uint32_t full_block = 0;
  for (std::uint32_t p = 0; p < geom.pages_per_block; ++p) {
    const auto ppn = bm.allocate_page(0);
    ASSERT_TRUE(ppn.has_value());
    full_block = block_of(geom, *ppn);
    if (p % 2 == 0) {
      bm.mark_valid(*ppn, 0, p);
    }
  }
  ASSERT_EQ(bm.block_state(0, full_block), BlockState::kFull);
  bm.retire_block(0, full_block);
  // Victim selection skips it even though it has reclaimable pages.
  const auto victim = bm.select_victim(0);
  if (victim) {
    EXPECT_NE(*victim, full_block);
  }
  // Valid pages survive retirement (rescue reads them before migration).
  EXPECT_EQ(bm.valid_count(0, full_block), geom.pages_per_block / 2);
  EXPECT_THROW(bm.erase_block(0, full_block), std::logic_error);
}

TEST(BlockRetirement, DoubleRetireThrows) {
  BlockManager bm(tiny());
  bm.retire_block(0, 0);
  EXPECT_THROW(bm.retire_block(0, 0), std::logic_error);
}

TEST(BlockRetirement, FailCountersAccumulate) {
  BlockManager bm(tiny());
  EXPECT_EQ(bm.record_program_fail(0, 2), 1u);
  EXPECT_EQ(bm.record_program_fail(0, 2), 2u);
  EXPECT_EQ(bm.record_erase_fail(0, 2), 1u);
  EXPECT_EQ(bm.record_program_fail(0, 5), 1u);  // per-block, not per-plane
}

TEST(BlockRetirement, WearGapIgnoresRetiredBlocks) {
  BlockManager bm(tiny());
  const auto& geom = bm.geometry();
  // Make every block Full, then erase all but block 0 once: the raw gap is
  // 1, but once the never-erased block 0 is retired the remaining blocks
  // are uniform and the gap must read 0.
  for (std::uint32_t b = 0; b < geom.blocks_per_plane; ++b) {
    for (std::uint32_t p = 0; p < geom.pages_per_block; ++p) {
      ASSERT_TRUE(bm.allocate_page(0).has_value());
    }
  }
  for (std::uint32_t b = 1; b < geom.blocks_per_plane; ++b) {
    bm.erase_block(0, b);
  }
  EXPECT_EQ(bm.plane_wear_gap(0), 1u);
  bm.retire_block(0, 0);
  EXPECT_EQ(bm.plane_wear_gap(0), 0u);
}

TEST(BlockRetirement, RescueAllocationSpillsAcrossPlanes) {
  // Plane 0 fully retired: allocate_rescue must fall back to another
  // plane instead of reporting the device full.
  Ftl ftl(tiny());
  for (std::uint32_t b = 0; b < ftl.geometry().blocks_per_plane; ++b) {
    ftl.retire_block(0, b);
  }
  const sim::Ppn ppn = ftl.allocate_rescue(0);
  ASSERT_NE(ppn, sim::kInvalidPpn);
  EXPECT_NE(ppn / ftl.geometry().pages_per_plane(), 0u);
}

TEST(BlockRetirement, DeviceWideRetirementExhaustsRescue) {
  Ftl ftl(tiny());
  const auto& geom = ftl.geometry();
  for (std::uint64_t pl = 0; pl < geom.total_planes(); ++pl) {
    for (std::uint32_t b = 0; b < geom.blocks_per_plane; ++b) {
      ftl.retire_block(pl, b);
    }
  }
  EXPECT_EQ(ftl.allocate_rescue(0), sim::kInvalidPpn);
  EXPECT_EQ(ftl.blocks().retired_blocks(),
            geom.total_planes() * geom.blocks_per_plane);
}

}  // namespace
}  // namespace ssdk::ftl
