// The fleet acceptance bar (ISSUE tentpole): a 32-device fleet run with
// the same seed must produce a bit-identical FleetResult at 1, 4 and 16
// worker threads, including with fault injection enabled on a device
// subset and with per-device keepers attached. Identity is compared via
// FleetResult::fingerprint(), which hashes every numeric field.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/allocator.hpp"
#include "core/strategy.hpp"
#include "fleet/fleet.hpp"
#include "nn/layer.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"
#include "sim/geometry.hpp"

namespace ssdk::fleet {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 4, 16};

FleetConfig fleet32_config() {
  FleetConfig config;
  config.devices = 32;
  config.slots_per_device = 2;
  config.epochs = 2;
  config.epoch_ns = 10 * kMillisecond;
  config.seed = 99;
  config.ssd.geometry = sim::Geometry::small();
  config.isolated_baseline = false;  // exercised in DeterministicWithBaseline
  return config;
}

/// Allocator that always answers with the given strategy index — enough
/// to exercise the keeper path deterministically (tests/core/keeper_test
/// uses the same construction).
core::ChannelAllocator constant_allocator(const core::StrategySpace& space,
                                          std::uint32_t winner) {
  nn::Matrix w(core::kFeatureDim, space.size());
  nn::Matrix b(1, space.size());
  b(0, winner) = 10.0;
  std::vector<nn::DenseLayer> layers;
  layers.emplace_back(std::move(w), std::move(b), nn::Activation::kIdentity);
  nn::StandardScaler scaler;
  scaler.set_parameters(std::vector<double>(core::kFeatureDim, 0.0),
                        std::vector<double>(core::kFeatureDim, 1.0));
  return core::ChannelAllocator(nn::Mlp(std::move(layers)),
                                std::move(scaler), space);
}

std::vector<std::uint64_t> fingerprints_across_threads(
    const FleetConfig& config, std::span<const TenantSpec> specs,
    const PlacementPolicy& policy) {
  std::vector<std::uint64_t> prints;
  for (const std::size_t threads : kThreadCounts) {
    prints.push_back(run_fleet(config, specs, policy, threads).fingerprint());
  }
  return prints;
}

TEST(FleetDeterminism, Fleet32BitIdenticalAt1_4_16Threads) {
  const FleetConfig config = fleet32_config();
  const auto specs =
      make_tenant_specs(48, config.devices, config.epoch_ns);
  WorkloadAwarePlacement policy;
  const auto prints = fingerprints_across_threads(config, specs, policy);
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
  EXPECT_NE(prints[0], 0u);
}

TEST(FleetDeterminism, FaultInjectionOnSubsetStaysBitIdentical) {
  FleetConfig config = fleet32_config();
  // Every 8th device (0, 8, 16, 24) runs with a noisy fault model.
  config.faulty_device_stride = 8;
  config.faults.read_ber = 1e-6;
  config.faults.read_ber_per_pe = 1e-9;
  config.faults.program_fail = 1e-4;
  config.faults.seed = 1234;
  const auto specs =
      make_tenant_specs(48, config.devices, config.epoch_ns);
  LeastLoadedPlacement policy;
  const auto prints = fingerprints_across_threads(config, specs, policy);
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);

  // The fault model changed the simulation, not just a flag: the faulty
  // subset must be visible in the result.
  const auto result = run_fleet(config, specs, policy, 4);
  std::uint32_t faulty = 0;
  for (const auto& d : result.device_results) {
    if (d.faulty) {
      ++faulty;
      EXPECT_EQ(d.device % 8, 0u);
    }
  }
  EXPECT_EQ(faulty, 4u);
}

TEST(FleetDeterminism, KeeperAttachedFleetStaysBitIdentical) {
  FleetConfig config = fleet32_config();
  config.devices = 8;
  const auto space = core::StrategySpace::for_tenants(4);
  const auto allocator = constant_allocator(
      space, static_cast<std::uint32_t>(space.index_of("4:2:1:1")));
  config.allocator = &allocator;
  config.keeper.collect_window_ns = 2 * kMillisecond;
  const auto specs =
      make_tenant_specs(16, config.devices, config.epoch_ns);
  RoundRobinPlacement policy;
  const auto prints = fingerprints_across_threads(config, specs, policy);
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);

  // Keeper runs diverge from keeper-less runs (the allocator reshapes
  // channel ownership mid-epoch).
  FleetConfig bare = config;
  bare.allocator = nullptr;
  EXPECT_NE(run_fleet(bare, specs, policy, 4).fingerprint(), prints[0]);
}

TEST(FleetDeterminism, DeterministicWithBaseline) {
  FleetConfig config = fleet32_config();
  config.devices = 6;
  config.isolated_baseline = true;
  const auto specs =
      make_tenant_specs(12, config.devices, config.epoch_ns);
  WorkloadAwarePlacement policy;
  const auto prints = fingerprints_across_threads(config, specs, policy);
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(FleetDeterminism, SeedAndPolicyChangeTheResult) {
  FleetConfig config = fleet32_config();
  config.devices = 6;
  const auto specs =
      make_tenant_specs(12, config.devices, config.epoch_ns);
  WorkloadAwarePlacement aware;
  RoundRobinPlacement rr;
  const auto base = run_fleet(config, specs, aware, 4).fingerprint();
  FleetConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  EXPECT_NE(run_fleet(reseeded, specs, aware, 4).fingerprint(), base);
  EXPECT_NE(run_fleet(config, specs, rr, 4).fingerprint(), base);
}

}  // namespace
}  // namespace ssdk::fleet
