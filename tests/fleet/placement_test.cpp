#include "fleet/placement.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ssdk::fleet {
namespace {

TenantLoad tenant(std::uint32_t id, double intensity,
                  double write_fraction) {
  TenantLoad t;
  t.tenant = id;
  t.intensity_rps = intensity;
  t.write_fraction = write_fraction;
  t.read_dominated = write_fraction < 0.5;
  t.requests = 1000;
  return t;
}

TEST(Placement, RoundRobinStripes) {
  const std::vector<TenantLoad> tenants = {
      tenant(0, 100, 0.9), tenant(1, 100, 0.1), tenant(2, 100, 0.9),
      tenant(3, 100, 0.1), tenant(4, 100, 0.5)};
  RoundRobinPlacement policy;
  const auto out = policy.place(tenants, 2, 4);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 0, 1, 0}));
  EXPECT_EQ(policy.name(), "round_robin");
}

TEST(Placement, CapacityViolationsThrow) {
  const std::vector<TenantLoad> tenants = {tenant(0, 1, 0.5),
                                           tenant(1, 1, 0.5)};
  RoundRobinPlacement rr;
  LeastLoadedPlacement ll;
  WorkloadAwarePlacement wa;
  EXPECT_THROW(rr.place(tenants, 0, 4), std::invalid_argument);
  EXPECT_THROW(ll.place(tenants, 2, 0), std::invalid_argument);
  EXPECT_THROW(wa.place(tenants, 1, 1), std::invalid_argument);
}

TEST(Placement, LeastLoadedBalancesIntensity) {
  // One heavy tenant and three light ones on two devices: the heavy one
  // must sit alone against the three light ones, not share with any.
  const std::vector<TenantLoad> tenants = {
      tenant(0, 9000, 0.5), tenant(1, 1000, 0.5), tenant(2, 1000, 0.5),
      tenant(3, 1000, 0.5)};
  LeastLoadedPlacement policy;
  const auto out = policy.place(tenants, 2, 4);
  EXPECT_NE(out[0], out[1]);
  EXPECT_EQ(out[1], out[2]);
  EXPECT_EQ(out[2], out[3]);
}

TEST(Placement, WorkloadAwareSeparatesWriters) {
  // Two equal-rate writers and two equal-rate readers, two devices with
  // two slots each. Intensity-blind-to-mix policies can pair the writers;
  // the workload-aware consolidator must split them.
  const std::vector<TenantLoad> tenants = {
      tenant(0, 5000, 0.9), tenant(1, 5000, 0.9), tenant(2, 5000, 0.05),
      tenant(3, 5000, 0.05)};
  WorkloadAwarePlacement policy;
  const auto out = policy.place(tenants, 2, 2);
  EXPECT_NE(out[0], out[1]) << "heavy writers were collocated";
  EXPECT_NE(out[2], out[3]);
}

TEST(Placement, DeterministicAcrossCalls) {
  std::vector<TenantLoad> tenants;
  for (std::uint32_t i = 0; i < 12; ++i) {
    tenants.push_back(tenant(i, 1000.0 + 137.0 * (i % 5),
                             (i % 3) * 0.45));
  }
  for (const auto& name : policy_names()) {
    const auto policy = make_policy(name);
    const auto a = policy->place(tenants, 4, 3);
    const auto b = policy->place(tenants, 4, 3);
    EXPECT_EQ(a, b) << name;
  }
}

TEST(Placement, FactoryRejectsUnknownNames) {
  EXPECT_THROW(make_policy("greedy"), std::invalid_argument);
  EXPECT_EQ(policy_names().size(), 3u);
  for (const auto& name : policy_names()) {
    EXPECT_EQ(make_policy(name)->name(), name);
  }
}

TEST(Placement, LoadOfCarriesStreamShape) {
  core::TenantStreamStats stats;
  stats.tenant = 7;
  stats.reads = 300;
  stats.writes = 700;
  stats.requests_per_s = 12'000.0;
  const TenantLoad load = load_of(7, stats);
  EXPECT_EQ(load.tenant, 7u);
  EXPECT_FALSE(load.read_dominated);
  EXPECT_DOUBLE_EQ(load.write_fraction, 0.7);
  EXPECT_DOUBLE_EQ(load.write_rps(), 12'000.0 * 0.7);
}

}  // namespace
}  // namespace ssdk::fleet
